// Slidingprofiles monitors a LIVE interaction stream: while the IRS
// pipeline analyzes a recorded log offline (in reverse), this example
// maintains sliding-window neighborhood profiles — the structure of the
// paper's reference [15] — as interactions arrive in time order, and
// periodically reports the currently most-connected accounts.
//
// Run with:
//
//	go run ./examples/slidingprofiles
package main

import (
	"fmt"

	"ipin"
)

func main() {
	// A Slashdot-like network replayed as a live stream.
	cfg, err := ipin.GenDataset("slashdot", 50)
	if err != nil {
		panic(err)
	}
	net, err := ipin.Generate(cfg)
	if err != nil {
		panic(err)
	}
	_, _, span := net.Span()
	window := span / 10 // profile the trailing 10% of the span
	fmt.Printf("replaying %d interactions over %d nodes; window = %d ticks\n",
		net.Len(), net.NumNodes, window)

	profiles, err := ipin.NewSlidingProfiles(net.NumNodes, ipin.DefaultPrecision, window)
	if err != nil {
		panic(err)
	}

	// Replay the log in time order, reporting at four checkpoints.
	checkpoints := map[int]bool{
		net.Len() / 4:     true,
		net.Len() / 2:     true,
		3 * net.Len() / 4: true,
		net.Len() - 1:     true,
	}
	for i, e := range net.Interactions {
		if err := profiles.Observe(e.Src, e.Dst, e.At); err != nil {
			panic(err)
		}
		if !checkpoints[i] {
			continue
		}
		fmt.Printf("\nafter %d interactions (t = %d):\n", i+1, e.At)
		for rank, u := range profiles.Top(5) {
			fmt.Printf("  %d. node %-5d ≈ %.0f distinct contacts in window\n",
				rank+1, u, profiles.Profile(u))
		}
	}
	fmt.Printf("\nprofile state: %d bytes across all nodes\n", profiles.MemoryBytes())
}
