// Quickstart walks through the paper's running example: the toy
// interaction network of Figure 1a. It computes the exact IRS summaries
// with ω = 3 (reproducing the worked Example 2 table), compares them with
// the sketch estimates, and queries the influence oracle.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"ipin"
)

func main() {
	// Build Figure 1a: nodes a..f, interactions (a,d,1), (e,f,2), (d,e,3),
	// (e,b,4), (a,b,5), (b,e,6), (e,c,7), (b,c,8).
	names := []string{"a", "b", "c", "d", "e", "f"}
	net := ipin.NewNetwork(len(names))
	type edge struct {
		src, dst ipin.NodeID
		at       ipin.Time
	}
	const a, b, c, d, e, f = 0, 1, 2, 3, 4, 5
	for _, x := range []edge{
		{a, d, 1}, {e, f, 2}, {d, e, 3}, {e, b, 4},
		{a, b, 5}, {b, e, 6}, {e, c, 7}, {b, c, 8},
	} {
		net.Add(x.src, x.dst, x.at)
	}
	net.Sort()

	// Exact IRS with window ω = 3 — the paper's Example 2.
	const omega = 3
	exact := ipin.ComputeExact(net, omega)
	fmt.Printf("Exact IRS summaries (ω = %d):\n", omega)
	for u := 0; u < len(names); u++ {
		fmt.Printf("  ϕ(%s) = {", names[u])
		first := true
		for _, v := range exact.IRS(ipin.NodeID(u)) {
			if !first {
				fmt.Print(", ")
			}
			lambda, _ := exact.Lambda(ipin.NodeID(u), v)
			fmt.Printf("(%s,%d)", names[v], lambda)
			first = false
		}
		fmt.Println("}")
	}

	// The sketch-based variant estimates the same sizes.
	approx, err := ipin.ComputeApprox(net, omega, ipin.DefaultPrecision)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nExact vs estimated |σ(u)|:")
	for u := 0; u < len(names); u++ {
		fmt.Printf("  %s: exact %d, estimate %.2f\n",
			names[u], exact.IRSSize(ipin.NodeID(u)), approx.EstimateIRS(ipin.NodeID(u)))
	}

	// Influence oracle: combined reach of a seed set.
	oracle := ipin.NewExactOracle(exact)
	fmt.Printf("\nspread({a})   = %.0f\n", oracle.Spread([]ipin.NodeID{a}))
	fmt.Printf("spread({a,e}) = %.0f\n", oracle.Spread([]ipin.NodeID{a, e}))

	// Top-k influencers via the greedy Algorithm 4.
	seeds := ipin.TopKExact(exact, 2)
	fmt.Printf("\ntop-2 influencers: %s, %s\n", names[seeds[0]], names[seeds[1]])

	// And a cascade simulation over the same network.
	spread := ipin.AverageSpread(net, seeds, ipin.CascadeConfig{Omega: omega, P: 1, Seed: 1}, 10, 2)
	fmt.Printf("TCIC spread of those seeds (p=1): %.1f nodes\n", spread)
}
