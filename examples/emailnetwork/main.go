// Emailnetwork discovers influencers in an Enron-like synthetic email
// network — the scenario the paper's introduction motivates: in a mail
// corpus we observe who mailed whom and when, nothing else, and want the
// accounts best positioned to spread information within a deadline.
//
// The example generates the network, builds sketched IRS summaries for
// three different windows, and shows how the top influencers change with
// the window — the paper's central observation (its Table 5).
//
// Run with:
//
//	go run ./examples/emailnetwork
package main

import (
	"fmt"

	"ipin"
)

func main() {
	cfg, err := ipin.GenDataset("enron", 100) // ~870 accounts, ~11.5k mails
	if err != nil {
		panic(err)
	}
	net, err := ipin.Generate(cfg)
	if err != nil {
		panic(err)
	}
	_, _, span := net.Span()
	fmt.Printf("generated email network: %d accounts, %d mails, %.0f days\n",
		net.NumNodes, net.Len(), float64(span)/86400)

	const k = 5
	type result struct {
		pct    float64
		seeds  []ipin.NodeID
		spread float64
	}
	var results []result
	for _, pct := range []float64{1, 10, 20} {
		omega := net.WindowFromPercent(pct)
		irs, err := ipin.ComputeApprox(net, omega, ipin.DefaultPrecision)
		if err != nil {
			panic(err)
		}
		oracle := ipin.NewApproxOracle(irs)
		seeds := ipin.TopKApprox(irs, k)
		results = append(results, result{pct: pct, seeds: seeds, spread: oracle.Spread(seeds)})

		fmt.Printf("\nwindow = %g%% of the time span (ω = %d ticks)\n", pct, omega)
		for i, u := range seeds {
			fmt.Printf("  %d. account %-5d individual reach %.0f\n", i+1, u, oracle.InfluenceSize(u))
		}
		fmt.Printf("  combined estimated reach: %.0f accounts\n", results[len(results)-1].spread)
	}

	// How stable are the seeds across windows? (The paper's Table 5:
	// short and long windows elect different influencers.)
	common := func(a, b []ipin.NodeID) int {
		in := map[ipin.NodeID]bool{}
		for _, u := range a {
			in[u] = true
		}
		n := 0
		for _, u := range b {
			if in[u] {
				n++
			}
		}
		return n
	}
	fmt.Printf("\nseed overlap: 1%%∩10%% = %d/%d, 1%%∩20%% = %d/%d, 10%%∩20%% = %d/%d\n",
		common(results[0].seeds, results[1].seeds), k,
		common(results[0].seeds, results[2].seeds), k,
		common(results[1].seeds, results[2].seeds), k)
}
