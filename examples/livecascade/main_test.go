package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ipin"
)

// fixtureEdges is a small cascade with strictly increasing timestamps,
// so streamed state is comparable edge-for-edge with the offline scan.
func fixtureEdges(t *testing.T, n int) []ipin.Interaction {
	t.Helper()
	net, err := ipin.Generate(ipin.GenConfig{
		Name:         "livecascade-test",
		Model:        ipin.GenCascade,
		Nodes:        200,
		Interactions: n,
		SpanTicks:    int64(n) * 10,
		Seed:         7,
		BranchMean:   1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Sort()
	edges := append([]ipin.Interaction(nil), net.Interactions...)
	for i := 1; i < len(edges); i++ {
		if edges[i].At <= edges[i-1].At {
			edges[i].At = edges[i-1].At + 1
		}
	}
	return edges
}

// offlineServer answers the same queries from an offline one-pass scan
// over a prefix of the edges — the reference the live app must match.
func offlineServer(t *testing.T, edges []ipin.Interaction, numNodes int, omega int64) *httptest.Server {
	t.Helper()
	net := ipin.NewNetwork(numNodes)
	for _, e := range edges {
		net.Add(e.Src, e.Dst, e.At)
	}
	irs, err := ipin.ComputeApprox(net, omega, ipin.DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	srv := ipin.NewQueryServer(ipin.ServeConfig{CacheSize: 0})
	srv.LoadApprox(irs)
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func newTestApp(t *testing.T, omega int64, every time.Duration) *app {
	t.Helper()
	reg := ipin.NewMetricsRegistry()
	a, err := newApp(appConfig{
		dir: t.TempDir(), omega: omega, nodes: 200,
		every: every, registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = a.close(ctx)
	})
	return a
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(out)
}

func lines(edges []ipin.Interaction) string {
	var b bytes.Buffer
	for _, e := range edges {
		fmt.Fprintf(&b, "%d %d %d\n", e.Src, e.Dst, e.At)
	}
	return b.String()
}

// TestLiveMatchesOfflineByteForByte is the subsystem's acceptance gate:
// stream a prefix over POST /ingest, force a checkpoint, and every query
// body must be byte-identical to a server computed offline over that
// same prefix; then stream the rest and match the full log.
func TestLiveMatchesOfflineByteForByte(t *testing.T) {
	edges := fixtureEdges(t, 600)
	const omega = 500
	a := newTestApp(t, omega, -1) // forced checkpoints only
	ts := httptest.NewServer(a.handler())
	defer ts.Close()

	queries := []string{
		"/spread?seeds=0,1,2",
		"/spread?seeds=5,9",
		"/influence?node=1",
		"/topk?k=4",
		fmt.Sprintf("/spreadby?seeds=0,1&deadline=%d", edges[len(edges)/2].At),
	}
	for _, cut := range []int{len(edges) / 2, len(edges)} {
		prefix := edges[:cut]
		already := 0
		if cut > len(edges)/2 {
			already = len(edges) / 2
		}
		if code, body := post(t, ts, "/ingest", lines(prefix[already:])); code != http.StatusOK {
			t.Fatalf("ingest: %d %s", code, body)
		}
		if code, body := post(t, ts, "/admin/checkpoint", ""); code != http.StatusOK {
			t.Fatalf("checkpoint: %d %s", code, body)
		}
		offline := offlineServer(t, prefix, 200, omega)
		for _, q := range queries {
			liveCode, live := get(t, ts, q)
			offCode, off := get(t, offline, q)
			if liveCode != http.StatusOK || offCode != http.StatusOK {
				t.Fatalf("%s: live %d, offline %d", q, liveCode, offCode)
			}
			if live != off {
				t.Fatalf("prefix %d, %s:\n live    %s offline %s", cut, q, live, off)
			}
		}
	}
}

// TestEdgesQueryableWithinInterval: with interval checkpoints on, a
// streamed edge must show up in query answers within one checkpoint
// interval (plus fold time), with no forced checkpoint involved.
func TestEdgesQueryableWithinInterval(t *testing.T) {
	edges := fixtureEdges(t, 400)
	const every = 50 * time.Millisecond
	a := newTestApp(t, 500, every)
	ts := httptest.NewServer(a.handler())
	defer ts.Close()

	if code, body := post(t, ts, "/ingest", lines(edges)); code != http.StatusOK {
		t.Fatalf("ingest: %d %s", code, body)
	}
	// Within a small multiple of the interval a generation must publish
	// and answer with a non-trivial spread.
	ctx, cancel := context.WithTimeout(context.Background(), 20*every)
	defer cancel()
	if err := a.srv.WaitGeneration(ctx, 1); err != nil {
		t.Fatalf("no checkpoint published within %v: %v", 20*every, err)
	}
	code, body := get(t, ts, "/spread?seeds=0,1,2")
	if code != http.StatusOK {
		t.Fatalf("/spread: %d %s", code, body)
	}
	var resp struct {
		Spread float64 `json:"spread"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil || resp.Spread < 3 {
		t.Fatalf("/spread after live checkpoint = %q (err %v)", body, err)
	}
	if code, body := get(t, ts, "/stream/stats"); code != http.StatusOK || !strings.Contains(body, `"generation"`) {
		t.Fatalf("/stream/stats: %d %s", code, body)
	}
}

// TestStreamTopK: with profiles enabled, /stream/topk is 503 before
// the first checkpoint, then serves the live influencer view with the
// checkpoint's provenance and descending scores — no Close involved.
func TestStreamTopK(t *testing.T) {
	edges := fixtureEdges(t, 300)
	const omega = 500
	a, err := newApp(appConfig{
		dir: t.TempDir(), omega: omega, nodes: 200, every: -1,
		profileWindow: omega, topK: 3, retain: omega,
		registry: ipin.NewMetricsRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = a.close(ctx)
	})
	ts := httptest.NewServer(a.handler())
	defer ts.Close()

	if code, _ := get(t, ts, "/stream/topk"); code != http.StatusServiceUnavailable {
		t.Fatalf("/stream/topk before first checkpoint: got %d, want 503", code)
	}
	if code, body := post(t, ts, "/ingest", lines(edges)); code != http.StatusOK {
		t.Fatalf("ingest: %d %s", code, body)
	}
	if code, body := post(t, ts, "/admin/checkpoint", ""); code != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", code, body)
	}
	code, body := get(t, ts, "/stream/topk")
	if code != http.StatusOK {
		t.Fatalf("/stream/topk: %d %s", code, body)
	}
	var view struct {
		Entries []struct {
			Node  int     `json:"node"`
			Score float64 `json:"score"`
		} `json:"entries"`
		CoveredEdges int64  `json:"covered_edges"`
		LastAt       int64  `json:"last_at"`
		RefreshedAt  string `json:"refreshed_at"`
	}
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatalf("/stream/topk body %q: %v", body, err)
	}
	if view.CoveredEdges != int64(len(edges)) || view.LastAt != int64(edges[len(edges)-1].At) {
		t.Fatalf("provenance = (%d edges, last_at %d), want (%d, %d)",
			view.CoveredEdges, view.LastAt, len(edges), edges[len(edges)-1].At)
	}
	if len(view.Entries) == 0 || len(view.Entries) > 3 {
		t.Fatalf("got %d entries, want 1..3", len(view.Entries))
	}
	for i, e := range view.Entries {
		if e.Score <= 0 {
			t.Fatalf("entry %d: non-positive score %v", i, e.Score)
		}
		if i > 0 && e.Score > view.Entries[i-1].Score {
			t.Fatalf("scores not descending at %d: %v > %v", i, e.Score, view.Entries[i-1].Score)
		}
	}
	if view.RefreshedAt == "" {
		t.Fatal("missing refreshed_at")
	}
}

// TestIntakeSurvivesRestart: edges POSTed before a crash are served
// after reconstruction from the WAL alone (no checkpoint forced before
// the "crash").
func TestIntakeSurvivesRestart(t *testing.T) {
	edges := fixtureEdges(t, 300)
	const omega = 500
	dir := t.TempDir()
	reg := ipin.NewMetricsRegistry()
	a, err := newApp(appConfig{dir: dir, omega: omega, nodes: 200, every: -1, registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(a.handler())
	if code, body := post(t, ts, "/ingest", lines(edges)); code != http.StatusOK {
		t.Fatalf("ingest: %d %s", code, body)
	}
	// Orderly close persists the WAL; the new app instance replays it and
	// publishes a recovery checkpoint before serving.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.close(ctx); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	b, err := newApp(appConfig{dir: dir, omega: omega, nodes: 200, every: -1, registry: ipin.NewMetricsRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.close(context.Background()) })
	ts2 := httptest.NewServer(b.handler())
	defer ts2.Close()

	offline := offlineServer(t, edges, 200, omega)
	for _, q := range []string{"/spread?seeds=0,1,2", "/topk?k=3"} {
		liveCode, live := get(t, ts2, q)
		offCode, off := get(t, offline, q)
		if liveCode != http.StatusOK || offCode != http.StatusOK {
			t.Fatalf("%s: live %d, offline %d", q, liveCode, offCode)
		}
		if live != off {
			t.Fatalf("%s after restart:\n live    %s offline %s", q, live, off)
		}
	}
}

// TestClusterModeServesMergedQueries runs the app with -shards 2 over a
// bipartite stream (sources and destinations disjoint, so scatter-gather
// answers are byte-identical to a single table) and checks the merged
// query surface against the offline reference, plus the cluster-only
// routes.
func TestClusterModeServesMergedQueries(t *testing.T) {
	const omega = 500
	edges := make([]ipin.Interaction, 600)
	for i := range edges {
		edges[i] = ipin.Interaction{
			Src: ipin.NodeID(i % 100),
			Dst: ipin.NodeID(100 + (i*7)%100),
			At:  ipin.Time(i + 1),
		}
	}
	reg := ipin.NewMetricsRegistry()
	a, err := newApp(appConfig{
		dir: t.TempDir(), omega: omega, nodes: 200, every: -1,
		registry: reg, shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.close(context.Background()) })
	ts := httptest.NewServer(a.handler())
	defer ts.Close()

	if code, body := post(t, ts, "/ingest", lines(edges)); code != http.StatusOK {
		t.Fatalf("ingest: %d %s", code, body)
	}
	if code, body := post(t, ts, "/admin/checkpoint", ""); code != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", code, body)
	}

	offline := offlineServer(t, edges, 200, omega)
	for _, q := range []string{"/influence?node=3", "/spread?seeds=0,1,2", "/topk?k=3", "/stats"} {
		liveCode, live := get(t, ts, q)
		offCode, off := get(t, offline, q)
		if liveCode != offCode || live != off {
			t.Fatalf("%s:\n cluster %d %s offline %d %s", q, liveCode, live, offCode, off)
		}
	}

	code, body := get(t, ts, "/cluster/stats")
	if code != http.StatusOK {
		t.Fatalf("/cluster/stats: %d %s", code, body)
	}
	var cs struct {
		Shards int  `json:"shards"`
		Ready  bool `json:"ready"`
	}
	if err := json.Unmarshal([]byte(body), &cs); err != nil {
		t.Fatal(err)
	}
	if cs.Shards != 2 || !cs.Ready {
		t.Fatalf("/cluster/stats = %s, want 2 ready shards", body)
	}
}

// TestReplicaFollowsAndFailsOver drives the full -listen-repl /
// -replica-of story in-process: a replica follows the primary app and
// answers queries byte-identically from read-only state; the primary
// dies; POST /admin/promote fails over; intake resumes on the replica
// and the final state matches the offline scan over everything.
func TestReplicaFollowsAndFailsOver(t *testing.T) {
	edges := fixtureEdges(t, 600)
	const omega = 500
	a := newTestApp(t, omega, -1)
	ts := httptest.NewServer(a.handler())
	defer ts.Close()
	prim, err := ipin.NewReplicationPrimary(ipin.ReplPrimaryConfig{Ingester: a.ing, HeartbeatEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()

	ra, err := newReplicaApp(replicaConfig{
		dir: t.TempDir(), primary: prim.Addr(), registry: ipin.NewMetricsRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(ra.handler())
	defer rts.Close()

	if code, body := post(t, ts, "/ingest", lines(edges[:300])); code != http.StatusOK {
		t.Fatalf("ingest: %d %s", code, body)
	}
	if code, body := post(t, ts, "/admin/checkpoint", ""); code != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", code, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for ra.rep.Position() < 300 {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at %d/300", ra.rep.Position())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The replica needs a published checkpoint to serve from; its own
	// ingester checkpoints on the same triggers as the primary's, so
	// force one through the promote-free path: the replicated ingester.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ra.rep.Ingester().Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}

	queries := []string{"/spread?seeds=0,1,2", "/influence?node=1", "/topk?k=4"}
	offline := offlineServer(t, edges[:300], 200, omega)
	for _, q := range queries {
		liveCode, live := get(t, rts, q)
		offCode, off := get(t, offline, q)
		if liveCode != http.StatusOK || offCode != http.StatusOK {
			t.Fatalf("%s: replica %d, offline %d", q, liveCode, offCode)
		}
		if live != off {
			t.Fatalf("replica diverged on %s:\n replica %s offline %s", q, live, off)
		}
	}

	// Read-only surface: reload refused, intake refused pre-promotion.
	if code, _ := post(t, rts, "/admin/reload", ""); code != http.StatusForbidden {
		t.Fatalf("/admin/reload on replica: %d, want 403", code)
	}
	if code, _ := post(t, rts, "/ingest", "1 2 3\n"); code != http.StatusServiceUnavailable {
		t.Fatalf("/ingest on un-promoted replica: %d, want 503", code)
	}

	// Primary dies; operator promotes.
	prim.Close()
	if err := a.close(ctx); err != nil {
		t.Fatal(err)
	}
	if code, body := post(t, rts, "/admin/promote", ""); code != http.StatusOK {
		t.Fatalf("promote: %d %s", code, body)
	}
	// Intake has moved here: stream the rest and match the full log.
	if code, body := post(t, rts, "/ingest", lines(edges[300:])); code != http.StatusOK {
		t.Fatalf("post-promotion ingest: %d %s", code, body)
	}
	if err := ra.rep.Ingester().Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	offlineFull := offlineServer(t, edges, 200, omega)
	for _, q := range queries {
		_, live := get(t, rts, q)
		_, off := get(t, offlineFull, q)
		if live != off {
			t.Fatalf("promoted replica diverged on %s:\n replica %s offline %s", q, live, off)
		}
	}
	if err := ra.close(ctx); err != nil {
		t.Fatal(err)
	}
}
