// Livecascade wires the live ingestion subsystem to the influence
// oracle: interaction edges stream in over HTTP while spread queries are
// answered from the most recent checkpoint — the "influence dashboard
// over a live feed" deployment the streaming layer exists for.
//
// The pipeline inside one process:
//
//	POST /ingest ──▶ Ingester (reorder → WAL → sealed chunks)
//	                   │ interval / forced checkpoints
//	                   ▼
//	            fold → checkpoint.irx → Publish
//	                   ▼
//	            QueryServer (atomic generation swap)
//	                   ▲
//	GET /spread, /topk, /influence ... answered here
//
// Queries never block on ingestion: they read the last published
// generation, and each checkpoint swaps in atomically underneath them.
// An edge becomes queryable within one checkpoint interval of arriving
// (or immediately after POST /admin/checkpoint), and the served state is
// byte-identical to running the offline one-pass scan over the same
// edges — the property the companion test enforces.
//
// By default the process feeds itself a generated information cascade at
// -eps edges per second, so a single command gives a watchable demo:
//
//	go run ./examples/livecascade -eps 2000
//	curl 'localhost:8080/spread?seeds=0,1,2'   # grows as the cascade streams in
//	curl 'localhost:8080/stream/stats'
//
// Disable the self-feed with -eps 0 and pipe a feed in instead:
//
//	gennet -model cascade -stream -skew 16 | while read line; do
//	  curl -s -XPOST --data "$line" localhost:8080/ingest >/dev/null; done
//
// Endpoints: the full query surface of examples/oracleserver (minus
// /channel), plus
//
//	POST /ingest            "src dst time" lines, any number per body
//	POST /admin/checkpoint  force a checkpoint + publish, synchronously
//	GET  /stream/stats      ingestion counters and the served generation
//	GET  /stream/topk       the live top-k influencer view, refreshed at
//	                        every checkpoint from the sliding profile
//	                        window (-topk 0 disables it)
//	GET  /metrics           Prometheus text (stream_*, serve_*, trace_*, go_*)
//	GET  /debug/pipeline    pipeline health: per-stage trace latencies,
//	                        freshness SLO budget, watermark lag, disk
//	                        footprint, recent lifecycle events
//
// Every -trace-every-th accepted edge carries an end-to-end trace record
// stamped at each pipeline stage (accept → reorder emit → WAL append and
// fsync → chunk seal → fold → checkpoint write → publish →
// serve-visible); -slo-objective sets the freshness SLO those traces are
// judged against, and -journal appends the lifecycle event log as JSON
// lines to a file. The same health document is served on a separate
// -health-addr listener when operators want it off the query port.
//
// Replication: -listen-repl accepts WAL-shipping replica sessions on the
// primary, and -replica-of runs this process as a read-only replica of
// another livecascade — it follows the primary's stream, serves the full
// query surface from byte-identical state (mutating admin routes answer
// 403), and fails over on POST /admin/promote, after which /ingest
// accepts edges here. See DESIGN.md "Replication (IREP0001)".
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"ipin"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		dir          = flag.String("dir", "", "ingester state directory (WAL + checkpoints); empty = a fresh temp dir")
		nodes        = flag.Int("nodes", 5_000, "self-feed: nodes in the generated cascade")
		interactions = flag.Int("interactions", 100_000, "self-feed: interactions in the generated cascade")
		eps          = flag.Float64("eps", 2_000, "self-feed: edges per second (0 disables the self-feed)")
		windowPct    = flag.Float64("window", 5, "influence window as % of the cascade's time span")
		retainPct    = flag.Float64("retain", 0, "retained history as % of the time span (0 = keep everything); must cover -window")
		topK         = flag.Int("topk", 10, "size of the live /stream/topk influencer view (0 disables it)")
		every        = flag.Duration("checkpoint-every", 2*time.Second, "interval between automatic checkpoints")
		slack        = flag.Int64("slack", 0, "out-of-order tolerance in ticks for externally fed edges")
		traceEvery   = flag.Int("trace-every", 1024, "trace every Nth accepted edge end to end (0 disables tracing)")
		sloObjective = flag.Duration("slo-objective", 5*time.Second, "freshness SLO: accept-to-queryable objective for traced edges (0 disables)")
		sloTarget    = flag.Float64("slo-target", 0.99, "freshness SLO: fraction of traced edges that must meet the objective")
		journalPath  = flag.String("journal", "", "append lifecycle events (rotations, seals, checkpoints, sheds) as JSON lines to this file")
		healthAddr   = flag.String("health-addr", "", "serve /debug/pipeline and /metrics on this extra address too")
		shards       = flag.Int("shards", 1, "route ingest across this many shards (each with its own WAL and checkpoints under -dir) and answer queries by scatter-gather merge; 1 = single-node")
		listenRepl   = flag.String("listen-repl", "", "accept WAL-shipping replica sessions on this address (single-node only)")
		replicaOf    = flag.String("replica-of", "", "run as a read-only replica of the primary at this address; promotes via POST /admin/promote")
	)
	flag.Parse()

	if *replicaOf != "" {
		if *shards > 1 {
			log.Fatal("-replica-of is a single-node role; -shards must be 1")
		}
		runReplica(*addr, *dir, *replicaOf, *journalPath)
		return
	}

	if *dir == "" {
		tmp, err := os.MkdirTemp("", "livecascade-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		*dir = tmp
	}

	// The self-feed workload: a branching information cascade, the shape
	// the paper's model is about. Generated up front so omega can be
	// sized from the real span before the first edge flows.
	net, err := ipin.Generate(ipin.GenConfig{
		Name:         "livecascade",
		Model:        ipin.GenCascade,
		Nodes:        *nodes,
		Interactions: *interactions,
		SpanTicks:    int64(*interactions) * 2,
		Seed:         1,
		BranchMean:   1.2,
	})
	if err != nil {
		log.Fatal(err)
	}
	sort.SliceStable(net.Interactions, func(i, j int) bool { return net.Interactions[i].At < net.Interactions[j].At })
	omega := net.WindowFromPercent(*windowPct)
	var retain int64
	if *retainPct > 0 {
		retain = net.WindowFromPercent(*retainPct)
		if retain < omega {
			retain = omega // Retain must cover the influence window
		}
	}
	var profileWindow int64
	if *topK > 0 {
		profileWindow = omega // profile the same window the oracle answers over
	}

	reg := ipin.NewMetricsRegistry()
	ipin.InstallMetrics(reg)
	ipin.InstallRuntimeMetrics(reg)

	var tr *ipin.Tracer
	if *shards > 1 && *traceEvery > 0 {
		// Edge traces are stamped serve-visible by the single-node query
		// server's generation swap; the scatter-gather frontend has no
		// equivalent single swap, so traced edges would never complete.
		log.Print("tracing disabled in cluster mode (-shards > 1)")
		*traceEvery = 0
	}
	if *traceEvery > 0 {
		tr = ipin.NewTracer(ipin.TraceConfig{
			SampleEvery: *traceEvery,
			SLO:         ipin.TraceSLOConfig{Objective: *sloObjective, Target: *sloTarget},
			Registry:    reg,
		})
	}
	var sink *os.File
	if *journalPath != "" {
		var err error
		if sink, err = os.OpenFile(*journalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
			log.Fatal(err)
		}
		defer sink.Close()
	}
	jr := ipin.NewTraceJournal(ipin.TraceJournalConfig{Sink: sink, Registry: reg})

	app, err := newApp(appConfig{
		dir: *dir, omega: omega, nodes: *nodes,
		slack: *slack, every: *every, registry: reg,
		profileWindow: profileWindow, topK: *topK, retain: retain,
		tracer: tr, journal: jr, shards: *shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *shards > 1 {
		log.Printf("live oracle on %s (ω=%d, checkpoint every %s, %d shards under %s)", *addr, omega, *every, *shards, *dir)
	} else {
		log.Printf("live oracle on %s (ω=%d, checkpoint every %s, state in %s)", *addr, omega, *every, *dir)
	}

	if *listenRepl != "" {
		if app.ing == nil {
			log.Fatal("-listen-repl is a single-node role; -shards must be 1")
		}
		prim, err := ipin.NewReplicationPrimary(ipin.ReplPrimaryConfig{
			Ingester: app.ing, Addr: *listenRepl, Registry: reg, Journal: jr,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer prim.Close()
		log.Printf("replication primary on %s", prim.Addr())
	}

	if *healthAddr != "" {
		hmux := http.NewServeMux()
		hmux.Handle("/debug/pipeline", app.health())
		hmux.Handle("/metrics", ipin.MetricsHandler(reg))
		go func() {
			hs := &http.Server{Addr: *healthAddr, Handler: hmux, ReadHeaderTimeout: 5 * time.Second}
			if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("health listener: %v", err)
			}
		}()
		log.Printf("pipeline health on %s/debug/pipeline", *healthAddr)
	}

	if *eps > 0 {
		go func() {
			if err := app.selfFeed(net, *eps); err != nil {
				log.Printf("self-feed: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           app.handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Orderly shutdown: stop intake first so the final checkpoint covers
	// everything accepted, then drain HTTP.
	log.Print("shutting down")
	closeCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := app.close(closeCtx); err != nil {
		log.Printf("ingester close: %v", err)
	}
	if err := httpSrv.Shutdown(closeCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
}

// appConfig is what the app needs beyond library defaults; the test
// constructs it directly with tight intervals.
type appConfig struct {
	dir           string
	omega         int64
	nodes         int
	slack         int64
	every         time.Duration
	profileWindow int64 // >0 maintains sliding profiles for /stream/topk
	topK          int   // size of the live top-k view
	retain        int64 // >0 bounds retained history in ticks
	shards        int   // >1 shards the intake and serves scatter-gather
	registry      *ipin.MetricsRegistry
	tracer        *ipin.Tracer       // nil disables edge tracing
	journal       *ipin.TraceJournal // nil disables the event journal
}

// engine is what the routes need from the intake side — satisfied by
// both the single-node *ipin.Ingester and the sharded
// *ipin.ClusterIngester.
type engine interface {
	Push(ipin.Interaction) error
	Checkpoint(context.Context) error
	Close(context.Context) error
	Stats() ipin.IngestStats
	Health() map[string]any
	TopK() *ipin.HotView
	Handler() http.Handler
}

// app owns the intake→serving pair and the routes that expose them.
// Exactly one of srv (single-node) or fe (cluster) is set; ing is the
// raw single-node ingester (nil in cluster mode), the handle a
// replication primary attaches to.
type app struct {
	in  engine
	ing *ipin.Ingester
	srv *ipin.QueryServer
	fe  *ipin.ClusterFrontend
	reg *ipin.MetricsRegistry
	tr  *ipin.Tracer
	jr  *ipin.TraceJournal
}

func newApp(cfg appConfig) (*app, error) {
	if cfg.shards > 1 {
		// Sharded deployment: each shard keeps its own WAL and
		// checkpoints under dir/shard-NNN, publishes into the gather
		// store, and queries merge the per-shard sketches at answer time.
		cl, err := ipin.NewClusterIngester(ipin.ClusterConfig{
			Shards: cfg.shards,
			Dir:    cfg.dir,
			Stream: ipin.IngestConfig{
				Omega:           cfg.omega,
				NumNodes:        cfg.nodes,
				Slack:           cfg.slack,
				CheckpointEvery: cfg.every,
				ProfileWindow:   cfg.profileWindow,
				TopK:            cfg.topK,
				Retain:          cfg.retain,
				Registry:        cfg.registry,
				Journal:         cfg.journal,
			},
		})
		if err != nil {
			return nil, err
		}
		fe := ipin.NewClusterFrontend(cl.Gather())
		return &app{in: cl, fe: fe, reg: cfg.registry, jr: cfg.journal}, nil
	}
	// The tracer is shared: the ingester stamps intake through publish,
	// the query server stamps serve-visible at its generation swap — the
	// moment the traced edge actually becomes queryable.
	srv := ipin.NewQueryServer(ipin.ServeConfig{
		CacheSize: 1024,
		Registry:  cfg.registry,
		Tracer:    cfg.tracer,
		Journal:   cfg.journal,
	})
	in, err := ipin.NewIngester(ipin.IngestConfig{
		Dir:             cfg.dir,
		Omega:           cfg.omega,
		NumNodes:        cfg.nodes,
		Slack:           cfg.slack,
		CheckpointEvery: cfg.every,
		ProfileWindow:   cfg.profileWindow,
		TopK:            cfg.topK,
		Retain:          cfg.retain,
		Publish:         srv.LoadApprox,
		Registry:        cfg.registry,
		Tracer:          cfg.tracer,
		Journal:         cfg.journal,
	})
	if err != nil {
		return nil, err
	}
	return &app{in: in, ing: in, srv: srv, reg: cfg.registry, tr: cfg.tracer, jr: cfg.journal}, nil
}

// generation is the served checkpoint generation: the query server's
// swap counter in single-node mode, the total shard publish count in
// cluster mode.
func (a *app) generation() uint64 {
	if a.fe != nil {
		return a.fe.Generation()
	}
	return a.srv.Generation()
}

// health builds the /debug/pipeline handler: trace and SLO state, the
// lifecycle event tail, and the ingester's live status (watermark lag,
// disk footprint) plus the served generation.
func (a *app) health() http.Handler {
	return &ipin.PipelineHealth{
		Tracer:  a.tr,
		Journal: a.jr,
		Status: func() map[string]any {
			st := a.in.Health()
			st["generation"] = a.generation()
			return st
		},
	}
}

// handler mounts the query surface next to the intake surface.
func (a *app) handler() http.Handler {
	mux := http.NewServeMux()
	var routes []string
	if a.fe != nil {
		a.fe.Register(mux)
		routes = a.fe.Routes()
	} else {
		a.srv.Register(mux)
		routes = a.srv.Routes()
	}
	mux.Handle("/ingest", a.in.Handler())
	mux.HandleFunc("/admin/checkpoint", a.forceCheckpoint)
	mux.HandleFunc("/stream/stats", a.streamStats)
	mux.HandleFunc("/stream/topk", a.streamTopK)
	mux.Handle("/metrics", ipin.MetricsHandler(a.reg))
	mux.Handle("/debug/pipeline", a.health())
	routes = append(routes, "/ingest", "/stream/stats", "/stream/topk")
	return ipin.InstrumentHTTP(a.reg, routes, mux)
}

// forceCheckpoint makes everything accepted so far queryable before the
// response returns — the knob a load test or a test harness uses instead
// of waiting out the interval.
func (a *app) forceCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeErrorJSON(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if err := a.in.Checkpoint(r.Context()); err != nil {
		writeErrorJSON(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, map[string]any{"generation": a.generation(), "stats": a.in.Stats()})
}

func (a *app) streamStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"generation": a.generation(), "stats": a.in.Stats()})
}

// streamTopK serves the continuously-maintained top-k influencer view
// the compactor snapshots with every checkpoint: who is reaching the
// most distinct nodes inside the sliding profile window right now, with
// the checkpoint provenance (covered edges, last timestamp) the scores
// were computed at. 503 until the first checkpoint publishes a view, or
// always when the view is disabled (-topk 0).
func (a *app) streamTopK(w http.ResponseWriter, r *http.Request) {
	view := a.in.TopK()
	if view == nil {
		writeErrorJSON(w, http.StatusServiceUnavailable, "no top-k view published yet (enabled via -topk)")
		return
	}
	entries := make([]map[string]any, len(view.Entries))
	for i, e := range view.Entries {
		entries[i] = map[string]any{"node": e.Node, "score": e.Score}
	}
	writeJSON(w, map[string]any{
		"entries":       entries,
		"covered_edges": view.CoveredEdges,
		"last_at":       view.LastAt,
		"refreshed_at":  view.RefreshedAt.UTC().Format(time.RFC3339Nano),
	})
}

// selfFeed replays the generated cascade into the ingester at eps edges
// per second — in-process Push, the same path POST /ingest lands on.
func (a *app) selfFeed(net *ipin.Network, eps float64) error {
	interval := time.Duration(float64(time.Second) / eps)
	start := time.Now()
	for i, e := range net.Interactions {
		if err := a.in.Push(e); err != nil {
			return err
		}
		if d := time.Until(start.Add(time.Duration(i+1) * interval)); d > 0 {
			time.Sleep(d)
		}
	}
	log.Printf("self-feed: streamed %d edges", len(net.Interactions))
	return nil
}

func (a *app) close(ctx context.Context) error { return a.in.Close(ctx) }

// replicaApp is the -replica-of role: a WAL-shipping replica feeding a
// read-only query server, with POST /admin/promote as the failover
// lever. Until promotion, /ingest answers 503 — intake belongs to the
// primary; after promotion the replica's ingester accepts it.
type replicaApp struct {
	rep *ipin.Replica
	srv *ipin.QueryServer
	reg *ipin.MetricsRegistry
	jr  *ipin.TraceJournal
}

type replicaConfig struct {
	dir      string
	primary  string
	registry *ipin.MetricsRegistry
	journal  *ipin.TraceJournal
}

func newReplicaApp(cfg replicaConfig) (*replicaApp, error) {
	srv := ipin.NewQueryServer(ipin.ServeConfig{
		CacheSize: 1024,
		ReadOnly:  true,
		Registry:  cfg.registry,
		Journal:   cfg.journal,
	})
	rep, err := ipin.NewReplica(ipin.ReplicaConfig{
		Dir:         cfg.dir,
		PrimaryAddr: cfg.primary,
		Publish:     srv.LoadApprox,
		Registry:    cfg.registry,
		Journal:     cfg.journal,
	})
	if err != nil {
		return nil, err
	}
	return &replicaApp{rep: rep, srv: srv, reg: cfg.registry, jr: cfg.journal}, nil
}

func (ra *replicaApp) handler() http.Handler {
	mux := http.NewServeMux()
	ra.srv.Register(mux)
	mux.HandleFunc("/ingest", ra.ingest)
	mux.HandleFunc("/admin/promote", ra.promote)
	mux.HandleFunc("/stream/stats", ra.streamStats)
	mux.Handle("/metrics", ipin.MetricsHandler(ra.reg))
	routes := append(ra.srv.Routes(), "/ingest", "/stream/stats")
	return ipin.InstrumentHTTP(ra.reg, routes, mux)
}

func (ra *replicaApp) ingest(w http.ResponseWriter, r *http.Request) {
	if !ra.rep.Promoted() {
		writeErrorJSON(w, http.StatusServiceUnavailable, "read-only replica: intake belongs to the primary until promotion")
		return
	}
	ra.rep.Ingester().Handler().ServeHTTP(w, r)
}

// promote seals the replicated tail under a new epoch and opens intake
// here. Idempotent: promoting a promoted replica reports the state.
func (ra *replicaApp) promote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeErrorJSON(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if err := ra.rep.Promote(r.Context()); err != nil {
		writeErrorJSON(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, map[string]any{
		"promoted": true,
		"epoch":    ra.rep.Ingester().Epoch(),
		"position": ra.rep.Position(),
	})
}

func (ra *replicaApp) streamStats(w http.ResponseWriter, r *http.Request) {
	st := map[string]any{
		"position":         ra.rep.Position(),
		"primary_position": ra.rep.PrimaryPosition(),
		"promoted":         ra.rep.Promoted(),
		"generation":       ra.srv.Generation(),
	}
	if !ra.rep.LastContact().IsZero() {
		st["last_contact"] = ra.rep.LastContact().UTC().Format(time.RFC3339Nano)
	}
	if err := ra.rep.Err(); err != nil {
		st["error"] = err.Error()
	}
	writeJSON(w, st)
}

func (ra *replicaApp) close(ctx context.Context) error { return ra.rep.Close(ctx) }

// runReplica is the -replica-of main: follow, serve read-only, promote
// on demand.
func runReplica(addr, dir, primary, journalPath string) {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "livecascade-replica-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	reg := ipin.NewMetricsRegistry()
	ipin.InstallMetrics(reg)
	ipin.InstallRuntimeMetrics(reg)
	var sink *os.File
	if journalPath != "" {
		var err error
		if sink, err = os.OpenFile(journalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
			log.Fatal(err)
		}
		defer sink.Close()
	}
	jr := ipin.NewTraceJournal(ipin.TraceJournalConfig{Sink: sink, Registry: reg})

	ra, err := newReplicaApp(replicaConfig{dir: dir, primary: primary, registry: reg, journal: jr})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("read-only replica of %s on %s (state in %s); POST /admin/promote to fail over", primary, addr, dir)

	httpSrv := &http.Server{Addr: addr, Handler: ra.handler(), ReadHeaderTimeout: 5 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down")
	closeCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ra.close(closeCtx); err != nil {
		log.Printf("replica close: %v", err)
	}
	if err := httpSrv.Shutdown(closeCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("livecascade: encode: %v", err)
	}
}

func writeErrorJSON(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{"error": msg, "status": status})
}
