// Socialcascade compares seed-selection strategies under the paper's
// Time-Constrained Information Cascade model on a retweet-style network:
// IRS-selected seeds against plain out-degree selection. This is a small
// single-panel version of the paper's Figure 5 experiment.
//
// Run with:
//
//	go run ./examples/socialcascade
package main

import (
	"fmt"
	"sort"

	"ipin"
)

func main() {
	cfg, err := ipin.GenDataset("higgs", 100) // ~3k users, ~5.3k retweets
	if err != nil {
		panic(err)
	}
	net, err := ipin.Generate(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("generated cascade network: %d users, %d interactions\n", net.NumNodes, net.Len())

	const (
		windowPct = 10
		p         = 0.5
		trials    = 50
	)
	omega := net.WindowFromPercent(windowPct)
	simCfg := ipin.CascadeConfig{Omega: omega, P: p, Seed: 7}

	// Strategy 1: IRS sketch selection (this paper).
	irs, err := ipin.ComputeApprox(net, omega, ipin.DefaultPrecision)
	if err != nil {
		panic(err)
	}

	// Strategy 2: highest distinct out-degree on the flattened graph
	// (the classic static baseline).
	degree := make([]int, net.NumNodes)
	seen := map[[2]ipin.NodeID]bool{}
	for _, e := range net.Interactions {
		key := [2]ipin.NodeID{e.Src, e.Dst}
		if e.Src != e.Dst && !seen[key] {
			seen[key] = true
			degree[e.Src]++
		}
	}
	byDegree := make([]ipin.NodeID, net.NumNodes)
	for i := range byDegree {
		byDegree[i] = ipin.NodeID(i)
	}
	sort.SliceStable(byDegree, func(i, j int) bool { return degree[byDegree[i]] > degree[byDegree[j]] })

	fmt.Printf("\nTCIC spread (ω = %g%%, p = %g, %d trials):\n", float64(windowPct), p, trials)
	fmt.Printf("%4s  %12s  %12s\n", "k", "IRS seeds", "high degree")
	for _, k := range []int{5, 10, 20, 40} {
		irsSeeds := ipin.TopKApprox(irs, k)
		irsSpread := ipin.AverageSpread(net, irsSeeds, simCfg, trials, 0)
		hdSpread := ipin.AverageSpread(net, byDegree[:k], simCfg, trials, 0)
		fmt.Printf("%4d  %12.1f  %12.1f\n", k, irsSpread, hdSpread)
	}
	fmt.Println("\nIRS seeds win where timing matters: degree counts neighbours,")
	fmt.Println("IRS counts nodes reachable through time-respecting channels.")
}
