// Oracleserver exposes the influence oracle as a small HTTP service: the
// deployment shape the paper's "influence oracle" framing suggests —
// preprocess the interaction log once, then answer spread queries in
// O(|seeds|·β) regardless of network size.
//
// It is also the repository's reference observable deployment: every
// route is wrapped in telemetry middleware, scan and sketch metrics from
// preprocessing are exposed alongside, and the process shuts down
// gracefully so the in-flight gauge drains to zero.
//
// Endpoints:
//
//	GET /influence?node=<id>           one node's estimated reach
//	GET /spread?seeds=<id>,<id>,...    combined estimated reach
//	GET /topk?k=<n>                    greedy top-k seed selection
//	GET /channel?src=<id>&dst=<id>     a witness information channel
//	GET /spreadby?seeds=...&deadline=t reach achievable BY a deadline
//	GET /stats                         network and sketch statistics
//	GET /metrics                       Prometheus text exposition
//	GET /debug/vars                    expvar JSON (same registry)
//	GET /debug/pprof/                  runtime profiles
//
// Errors come back as JSON ({"error": ..., "status": ...}) with proper
// status codes: 400 for malformed parameters, 404 for unknown nodes.
//
// Run with:
//
//	go run ./examples/oracleserver [-addr :8080] [-dataset slashdot]
//
// and query with e.g. curl 'localhost:8080/spread?seeds=1,2,3'.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ipin"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		dataset     = flag.String("dataset", "slashdot", "Table 2 dataset to serve")
		scale       = flag.Int("scale", 100, "dataset down-scaling factor")
		windowPct   = flag.Float64("window", 10, "window as % of the time span")
		parallelism = flag.Int("parallelism", 0, "workers for the startup scan and collapse (0 = GOMAXPROCS)")
	)
	flag.Parse()
	ipin.SetParallelism(*parallelism)

	reg := ipin.NewMetricsRegistry()
	ipin.InstallMetrics(reg)
	reg.PublishExpvar("ipin")

	cfg, err := ipin.GenDataset(*dataset, *scale)
	if err != nil {
		log.Fatal(err)
	}
	net, err := ipin.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	omega := net.WindowFromPercent(*windowPct)
	srv, err := buildServer(net, omega, ipin.DefaultPrecision, reg)
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("oracle for %s (%d nodes, %d interactions, ω=%d) on %s",
		*dataset, net.NumNodes, net.Len(), omega, *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting, let running requests (and the
	// in-flight gauge) finish, then exit.
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
}

type server struct {
	net    *ipin.Network
	irs    *ipin.ApproxIRS
	oracle ipin.Oracle
	omega  int64
	reg    *ipin.MetricsRegistry
}

// buildServer preprocesses the network (the expensive one-pass scan) and
// returns a query server recording into reg.
func buildServer(net *ipin.Network, omega int64, precision int, reg *ipin.MetricsRegistry) (*server, error) {
	// Parallel over time blocks; identical sketches to the sequential scan.
	irs, err := ipin.ComputeApproxParallel(net, omega, precision, 0)
	if err != nil {
		return nil, err
	}
	return &server{
		net:    net,
		irs:    irs,
		oracle: ipin.NewApproxOracle(irs),
		omega:  omega,
		reg:    reg,
	}, nil
}

// routes is the closed set of application paths the middleware tracks as
// individual metric series.
var routes = []string{"/influence", "/spread", "/topk", "/channel", "/spreadby", "/stats", "/metrics"}

// handler assembles the full route table: application endpoints wrapped
// in telemetry middleware, plus the observability endpoints themselves.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/influence", s.influence)
	mux.HandleFunc("/spread", s.spread)
	mux.HandleFunc("/topk", s.topk)
	mux.HandleFunc("/channel", s.channel)
	mux.HandleFunc("/spreadby", s.spreadBy)
	mux.HandleFunc("/stats", s.stats)
	mux.Handle("/metrics", ipin.MetricsHandler(s.reg))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return ipin.InstrumentHTTP(s.reg, routes, mux)
}

// errCounter counts application-level request errors, by route.
func (s *server) errCounter(route string) {
	s.reg.Counter(
		fmt.Sprintf(`oracle_request_errors_total{route=%q}`, route),
		"Requests rejected by oracleserver handlers (bad parameters, unknown nodes).",
	).Inc()
}

func (s *server) influence(w http.ResponseWriter, r *http.Request) {
	id, err := s.parseNode(r.URL.Query().Get("node"))
	if err != nil {
		s.error(w, r, err)
		return
	}
	writeJSON(w, map[string]any{"node": id, "influence": s.oracle.InfluenceSize(id)})
}

func (s *server) spread(w http.ResponseWriter, r *http.Request) {
	seeds, err := s.parseSeeds(r.URL.Query().Get("seeds"))
	if err != nil {
		s.error(w, r, err)
		return
	}
	writeJSON(w, map[string]any{"seeds": seeds, "spread": s.oracle.Spread(seeds)})
}

func (s *server) topk(w http.ResponseWriter, r *http.Request) {
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k < 1 || k > s.net.NumNodes {
		s.error(w, r, badParam("bad k parameter"))
		return
	}
	seeds := ipin.TopKApprox(s.irs, k)
	writeJSON(w, map[string]any{"seeds": seeds, "spread": s.oracle.Spread(seeds)})
}

// spreadBy estimates how many distinct nodes the seeds can have
// influenced by the given deadline (channels ending at or before it).
func (s *server) spreadBy(w http.ResponseWriter, r *http.Request) {
	seeds, err := s.parseSeeds(r.URL.Query().Get("seeds"))
	if err != nil {
		s.error(w, r, err)
		return
	}
	deadline, err := strconv.ParseInt(r.URL.Query().Get("deadline"), 10, 64)
	if err != nil {
		s.error(w, r, badParam("bad deadline parameter"))
		return
	}
	writeJSON(w, map[string]any{
		"seeds":    seeds,
		"deadline": deadline,
		"spread":   ipin.SpreadByEstimate(s.irs, seeds, ipin.Time(deadline)),
	})
}

// channel exhibits a witness information channel src→dst, answering WHY
// the oracle counts dst in src's influence.
func (s *server) channel(w http.ResponseWriter, r *http.Request) {
	src, err := s.parseNode(r.URL.Query().Get("src"))
	if err != nil {
		s.error(w, r, err)
		return
	}
	dst, err := s.parseNode(r.URL.Query().Get("dst"))
	if err != nil {
		s.error(w, r, err)
		return
	}
	ch := ipin.FindChannel(s.net, src, dst, s.omega)
	if ch == nil {
		writeJSON(w, map[string]any{"src": src, "dst": dst, "channel": nil})
		return
	}
	type hop struct {
		Src ipin.NodeID `json:"src"`
		Dst ipin.NodeID `json:"dst"`
		At  ipin.Time   `json:"at"`
	}
	hops := make([]hop, len(ch))
	for i, e := range ch {
		hops[i] = hop{Src: e.Src, Dst: e.Dst, At: e.At}
	}
	writeJSON(w, map[string]any{
		"src": src, "dst": dst,
		"channel": hops, "duration": ch.Duration(), "end": ch.End(),
	})
}

func (s *server) stats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"nodes":        s.net.NumNodes,
		"interactions": s.net.Len(),
		"omega":        s.omega,
		"sketch_bytes": s.irs.MemoryBytes(),
		"entries":      s.irs.EntryCount(),
	})
}

// requestError is an application error with the HTTP status it deserves.
type requestError struct {
	status int
	msg    string
}

func (e *requestError) Error() string { return e.msg }

func badParam(msg string) error { return &requestError{status: http.StatusBadRequest, msg: msg} }

func unknownNode(raw string) error {
	return &requestError{status: http.StatusNotFound, msg: fmt.Sprintf("unknown node %q", raw)}
}

// parseNode resolves a node-id parameter: 400 when malformed, 404 when
// well-formed but outside the network.
func (s *server) parseNode(raw string) (ipin.NodeID, error) {
	id, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badParam(fmt.Sprintf("bad node id %q", raw))
	}
	if id < 0 || id >= s.net.NumNodes {
		return 0, unknownNode(raw)
	}
	return ipin.NodeID(id), nil
}

// parseSeeds resolves a comma-separated seeds parameter.
func (s *server) parseSeeds(raw string) ([]ipin.NodeID, error) {
	if raw == "" {
		return nil, badParam("missing seeds parameter")
	}
	var seeds []ipin.NodeID
	for _, part := range strings.Split(raw, ",") {
		id, err := s.parseNode(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, id)
	}
	return seeds, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("oracleserver: encode: %v", err)
	}
}

// error writes a JSON error body with the status carried by err (400 for
// plain errors) and bumps the application error counter for the route.
func (s *server) error(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusBadRequest
	var re *requestError
	if errors.As(err, &re) {
		status = re.status
	}
	s.errCounter(r.URL.Path)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{"error": err.Error(), "status": status})
}
