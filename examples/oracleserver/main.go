// Oracleserver exposes the influence oracle as a small HTTP service: the
// deployment shape the paper's "influence oracle" framing suggests —
// preprocess the interaction log once, then answer spread queries in
// O(|seeds|·β) regardless of network size.
//
// Endpoints:
//
//	GET /influence?node=<id>           one node's estimated reach
//	GET /spread?seeds=<id>,<id>,...    combined estimated reach
//	GET /topk?k=<n>                    greedy top-k seed selection
//	GET /channel?src=<id>&dst=<id>     a witness information channel
//	GET /spreadby?seeds=...&deadline=t reach achievable BY a deadline
//	GET /stats                         network and sketch statistics
//
// Run with:
//
//	go run ./examples/oracleserver [-addr :8080] [-dataset slashdot]
//
// and query with e.g. curl 'localhost:8080/spread?seeds=1,2,3'.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"

	"ipin"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dataset   = flag.String("dataset", "slashdot", "Table 2 dataset to serve")
		scale     = flag.Int("scale", 100, "dataset down-scaling factor")
		windowPct = flag.Float64("window", 10, "window as % of the time span")
	)
	flag.Parse()

	cfg, err := ipin.GenDataset(*dataset, *scale)
	if err != nil {
		log.Fatal(err)
	}
	net, err := ipin.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	omega := net.WindowFromPercent(*windowPct)
	irs, err := ipin.ComputeApprox(net, omega, ipin.DefaultPrecision)
	if err != nil {
		log.Fatal(err)
	}
	srv := &server{
		net:    net,
		irs:    irs,
		oracle: ipin.NewApproxOracle(irs),
		omega:  omega,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/influence", srv.influence)
	mux.HandleFunc("/spread", srv.spread)
	mux.HandleFunc("/topk", srv.topk)
	mux.HandleFunc("/channel", srv.channel)
	mux.HandleFunc("/spreadby", srv.spreadBy)
	mux.HandleFunc("/stats", srv.stats)
	log.Printf("oracle for %s (%d nodes, %d interactions, ω=%d) on %s",
		*dataset, net.NumNodes, net.Len(), omega, *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

type server struct {
	net    *ipin.Network
	irs    *ipin.ApproxIRS
	oracle ipin.Oracle
	omega  int64
}

func (s *server) influence(w http.ResponseWriter, r *http.Request) {
	id, err := s.parseNode(r.URL.Query().Get("node"))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, map[string]any{"node": id, "influence": s.oracle.InfluenceSize(id)})
}

func (s *server) spread(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("seeds")
	if raw == "" {
		httpError(w, fmt.Errorf("missing seeds parameter"))
		return
	}
	var seeds []ipin.NodeID
	for _, part := range strings.Split(raw, ",") {
		id, err := s.parseNode(strings.TrimSpace(part))
		if err != nil {
			httpError(w, err)
			return
		}
		seeds = append(seeds, id)
	}
	writeJSON(w, map[string]any{"seeds": seeds, "spread": s.oracle.Spread(seeds)})
}

func (s *server) topk(w http.ResponseWriter, r *http.Request) {
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k < 1 || k > s.net.NumNodes {
		httpError(w, fmt.Errorf("bad k parameter"))
		return
	}
	seeds := ipin.TopKApprox(s.irs, k)
	writeJSON(w, map[string]any{"seeds": seeds, "spread": s.oracle.Spread(seeds)})
}

// spreadBy estimates how many distinct nodes the seeds can have
// influenced by the given deadline (channels ending at or before it).
func (s *server) spreadBy(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("seeds")
	if raw == "" {
		httpError(w, fmt.Errorf("missing seeds parameter"))
		return
	}
	var seeds []ipin.NodeID
	for _, part := range strings.Split(raw, ",") {
		id, err := s.parseNode(strings.TrimSpace(part))
		if err != nil {
			httpError(w, err)
			return
		}
		seeds = append(seeds, id)
	}
	deadline, err := strconv.ParseInt(r.URL.Query().Get("deadline"), 10, 64)
	if err != nil {
		httpError(w, fmt.Errorf("bad deadline parameter"))
		return
	}
	writeJSON(w, map[string]any{
		"seeds":    seeds,
		"deadline": deadline,
		"spread":   ipin.SpreadByEstimate(s.irs, seeds, ipin.Time(deadline)),
	})
}

// channel exhibits a witness information channel src→dst, answering WHY
// the oracle counts dst in src's influence.
func (s *server) channel(w http.ResponseWriter, r *http.Request) {
	src, err := s.parseNode(r.URL.Query().Get("src"))
	if err != nil {
		httpError(w, err)
		return
	}
	dst, err := s.parseNode(r.URL.Query().Get("dst"))
	if err != nil {
		httpError(w, err)
		return
	}
	ch := ipin.FindChannel(s.net, src, dst, s.omega)
	if ch == nil {
		writeJSON(w, map[string]any{"src": src, "dst": dst, "channel": nil})
		return
	}
	type hop struct {
		Src ipin.NodeID `json:"src"`
		Dst ipin.NodeID `json:"dst"`
		At  ipin.Time   `json:"at"`
	}
	hops := make([]hop, len(ch))
	for i, e := range ch {
		hops[i] = hop{Src: e.Src, Dst: e.Dst, At: e.At}
	}
	writeJSON(w, map[string]any{
		"src": src, "dst": dst,
		"channel": hops, "duration": ch.Duration(), "end": ch.End(),
	})
}

func (s *server) stats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"nodes":        s.net.NumNodes,
		"interactions": s.net.Len(),
		"omega":        s.omega,
		"sketch_bytes": s.irs.MemoryBytes(),
		"entries":      s.irs.EntryCount(),
	})
}

func (s *server) parseNode(raw string) (ipin.NodeID, error) {
	id, err := strconv.Atoi(raw)
	if err != nil || id < 0 || id >= s.net.NumNodes {
		return 0, fmt.Errorf("bad node id %q", raw)
	}
	return ipin.NodeID(id), nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("oracleserver: encode: %v", err)
	}
}

func httpError(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), http.StatusBadRequest)
}
