// Oracleserver exposes the influence oracle as a small HTTP service: the
// deployment shape the paper's "influence oracle" framing suggests —
// preprocess the interaction log once, then answer spread queries in
// O(|seeds|·β) regardless of network size.
//
// It is the repository's reference deployment of the serving layer
// (internal/serve, via the ipin facade): queries flow through admission
// control (bounded concurrency, bounded wait queue, per-request
// deadlines, 429/503 load shedding), a bounded LRU result cache with
// single-flight deduplication, and a sharded summary store that reloads
// snapshots atomically under live traffic. Every route is wrapped in
// telemetry middleware and the process shuts down gracefully so the
// in-flight gauge drains to zero.
//
// The server runs from one of two sources:
//
//   - generated mode (default): synthesize a Table 2 dataset, run the
//     one-pass sketch scan at startup, and serve the result;
//   - snapshot mode (-snapshot irs.bin): serve a precomputed IRX1
//     summary file written by cmd/irs -save. SIGHUP or POST
//     /admin/reload re-reads the file and swaps it in without dropping
//     queries — the path to zero-downtime summary refreshes.
//
// Endpoints:
//
//	GET  /influence?node=<id>           one node's estimated reach
//	GET  /spread?seeds=<id>,<id>,...    combined estimated reach
//	GET  /topk?k=<n>                    greedy top-k seed selection
//	GET  /spreadby?seeds=...&deadline=t reach achievable BY a deadline
//	GET  /channel?src=<id>&dst=<id>     a witness information channel
//	GET  /stats                         snapshot statistics
//	POST /admin/reload                  re-read -snapshot and swap it in
//	GET  /metrics                       Prometheus text exposition (runtime series included)
//	GET  /debug/vars                    expvar JSON (same registry)
//	GET  /debug/pipeline                serving health as JSON (generation, queue depth)
//	GET  /debug/pprof/                  runtime profiles
//
// Errors come back as JSON ({"error": ..., "status": ...}) with proper
// status codes: 400 for malformed parameters, 404 for unknown nodes, 429
// and 503 (with Retry-After) under load shedding. /channel needs the raw
// interaction log, which a summary snapshot does not carry, so in
// snapshot mode it answers 501.
//
// Run with:
//
//	go run ./examples/oracleserver [-addr :8080] [-dataset slashdot]
//	go run ./examples/oracleserver -snapshot irs.bin
//
// and query with e.g. curl 'localhost:8080/spread?seeds=1,2,3'.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"ipin"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		dataset     = flag.String("dataset", "slashdot", "Table 2 dataset to serve (generated mode)")
		scale       = flag.Int("scale", 100, "dataset down-scaling factor")
		windowPct   = flag.Float64("window", 10, "window as % of the time span")
		parallelism = flag.Int("parallelism", 0, "workers for the startup scan and collapse (0 = GOMAXPROCS)")
		snapshot    = flag.String("snapshot", "", "serve this IRX1 summary file (cmd/irs -save) instead of generating a dataset; reloadable via SIGHUP or POST /admin/reload")
		shards      = flag.Int("shards", 0, "summary-table shards (0 = library default)")
		cacheSize   = flag.Int("cache-size", 4096, "result-cache entries; 0 disables caching")
		maxInflight = flag.Int("max-inflight", 0, "queries computing concurrently (0 = library default, negative disables admission control)")
		queueDepth  = flag.Int("queue-depth", 0, "bounded wait queue for admission (0 = 2×max-inflight)")
		timeout     = flag.Duration("request-timeout", 0, "per-request deadline covering queue wait and computation (0 = library default)")
	)
	flag.Parse()
	ipin.SetParallelism(*parallelism)

	reg := ipin.NewMetricsRegistry()
	ipin.InstallMetrics(reg)
	ipin.InstallRuntimeMetrics(reg)
	reg.PublishExpvar("ipin")

	srv := ipin.NewQueryServer(ipin.ServeConfig{
		Shards:         *shards,
		CacheSize:      *cacheSize,
		MaxInflight:    *maxInflight,
		QueueDepth:     *queueDepth,
		RequestTimeout: *timeout,
		SnapshotPath:   *snapshot,
		Registry:       reg,
	})

	var app *appState // nil in snapshot mode: no raw log, /channel answers 501
	if *snapshot != "" {
		if err := srv.Reload(); err != nil {
			log.Fatal(err)
		}
		log.Printf("serving snapshot %s (generation %d) on %s", *snapshot, srv.Generation(), *addr)
	} else {
		cfg, err := ipin.GenDataset(*dataset, *scale)
		if err != nil {
			log.Fatal(err)
		}
		net, err := ipin.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		omega := net.WindowFromPercent(*windowPct)
		// Parallel over time blocks; identical sketches to the sequential scan.
		irs, err := ipin.ComputeApproxParallel(net, omega, ipin.DefaultPrecision, 0)
		if err != nil {
			log.Fatal(err)
		}
		srv.LoadApprox(irs)
		app = &appState{net: net, omega: omega}
		log.Printf("oracle for %s (%d nodes, %d interactions, ω=%d) on %s",
			*dataset, net.NumNodes, net.Len(), omega, *addr)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           buildHandler(srv, app, reg),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// SIGHUP = reload the snapshot file in place, the classic daemon
	// convention; queries in flight keep answering on the old snapshot.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := srv.Reload(); err != nil {
				log.Printf("reload: %v", err)
				continue
			}
			log.Printf("reloaded %s (generation %d)", *snapshot, srv.Generation())
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting, let running requests (and the
	// in-flight gauge) finish, then exit.
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
}

// appState carries what only generated mode has: the raw interaction log
// the /channel witness search walks.
type appState struct {
	net   *ipin.Network
	omega int64
}

// buildHandler assembles the full route table: the serving layer's query
// routes, the /channel diagnostic, and the observability endpoints, all
// behind telemetry middleware.
func buildHandler(srv *ipin.QueryServer, app *appState, reg *ipin.MetricsRegistry) http.Handler {
	mux := http.NewServeMux()
	srv.Register(mux)
	mux.HandleFunc("/channel", app.channel)
	mux.Handle("/metrics", ipin.MetricsHandler(reg))
	mux.Handle("/debug/pipeline", &ipin.PipelineHealth{Status: func() map[string]any {
		return map[string]any{
			"generation":  srv.Generation(),
			"queue_depth": srv.QueueDepthNow(),
		}
	}})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	routes := append(srv.Routes(), "/channel", "/metrics")
	return ipin.InstrumentHTTP(reg, routes, mux)
}

// channel exhibits a witness information channel src→dst, answering WHY
// the oracle counts dst in src's influence. It needs the raw log, so
// snapshot mode (app == nil) answers 501.
func (app *appState) channel(w http.ResponseWriter, r *http.Request) {
	if app == nil {
		writeErrorJSON(w, http.StatusNotImplemented,
			"channel reconstruction needs the interaction log; this server runs from a summary snapshot")
		return
	}
	src, err := app.parseNode(r.URL.Query().Get("src"))
	if err != nil {
		err.write(w)
		return
	}
	dst, err := app.parseNode(r.URL.Query().Get("dst"))
	if err != nil {
		err.write(w)
		return
	}
	ch := ipin.FindChannel(app.net, src, dst, app.omega)
	if ch == nil {
		writeJSON(w, map[string]any{"src": src, "dst": dst, "channel": nil})
		return
	}
	type hop struct {
		Src ipin.NodeID `json:"src"`
		Dst ipin.NodeID `json:"dst"`
		At  ipin.Time   `json:"at"`
	}
	hops := make([]hop, len(ch))
	for i, e := range ch {
		hops[i] = hop{Src: e.Src, Dst: e.Dst, At: e.At}
	}
	writeJSON(w, map[string]any{
		"src": src, "dst": dst,
		"channel": hops, "duration": ch.Duration(), "end": ch.End(),
	})
}

// requestError is an application error with the HTTP status it deserves.
type requestError struct {
	status int
	msg    string
}

func (e *requestError) write(w http.ResponseWriter) { writeErrorJSON(w, e.status, e.msg) }

// parseNode resolves a node-id parameter: 400 when malformed, 404 when
// well-formed but outside the network.
func (app *appState) parseNode(raw string) (ipin.NodeID, *requestError) {
	id, err := strconv.Atoi(raw)
	if err != nil {
		return 0, &requestError{http.StatusBadRequest, fmt.Sprintf("bad node id %q", raw)}
	}
	if id < 0 || id >= app.net.NumNodes {
		return 0, &requestError{http.StatusNotFound, fmt.Sprintf("unknown node %q", raw)}
	}
	return ipin.NodeID(id), nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("oracleserver: encode: %v", err)
	}
}

func writeErrorJSON(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{"error": msg, "status": status})
}
