package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipin"
)

// fixtureNetwork is a chain 0→1→2→3 inside the window plus one
// interaction outside it.
func fixtureNetwork(t *testing.T) *ipin.Network {
	t.Helper()
	net := ipin.NewNetwork(5)
	net.Add(0, 1, 100)
	net.Add(1, 2, 200)
	net.Add(2, 3, 300)
	net.Add(3, 4, 9000)
	net.Sort()
	return net
}

// testHandler builds the full generated-mode handler over the fixture.
func testHandler(t *testing.T) (http.Handler, *ipin.MetricsRegistry) {
	t.Helper()
	net := fixtureNetwork(t)
	reg := ipin.NewMetricsRegistry()
	ipin.InstallMetrics(reg)
	t.Cleanup(func() { ipin.InstallMetrics(nil) })
	irs, err := ipin.ComputeApprox(net, 500, ipin.DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	srv := ipin.NewQueryServer(ipin.ServeConfig{CacheSize: 64, Registry: reg})
	srv.LoadApprox(irs)
	return buildHandler(srv, &appState{net: net, omega: 500}, reg), reg
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestObservableServer(t *testing.T) {
	h, _ := testHandler(t)
	ts := httptest.NewServer(h)
	defer ts.Close()

	// A few spread queries, then scrape /metrics: the route counter and
	// latency histogram buckets must be non-zero, the preprocessing scan
	// metrics must have been recorded, and the serving layer's cache
	// counters must show the repeats were hits.
	for i := 0; i < 3; i++ {
		code, body := get(t, ts, "/spread?seeds=0,1")
		if code != http.StatusOK || !strings.Contains(body, `"spread"`) {
			t.Fatalf("spread: %d %s", code, body)
		}
	}
	code, metrics := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`http_requests_total{route="/spread",code="200"} 3`,
		`http_request_duration_seconds_bucket{route="/spread",le="+Inf"} 3`,
		`http_request_duration_seconds_count{route="/spread"} 3`,
		`ipin_scan_edges_total{algo="approx"} 4`,
		`# TYPE http_in_flight_requests gauge`,
		`serve_cache_hits_total 2`,
		`serve_cache_misses_total 1`,
		`serve_snapshot_generation 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	if !strings.Contains(metrics, "ipin_vhll_inserts_total") {
		t.Fatalf("no sketch metrics in exposition:\n%s", metrics)
	}

	// pprof must be mounted on the custom mux.
	if code, _ := get(t, ts, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}

func TestErrorResponses(t *testing.T) {
	h, reg := testHandler(t)
	ts := httptest.NewServer(h)
	defer ts.Close()

	cases := []struct {
		path string
		code int
	}{
		{"/influence?node=banana", http.StatusBadRequest},
		{"/influence?node=9999", http.StatusNotFound},
		{"/spread", http.StatusBadRequest},
		{"/spread?seeds=0,zzz", http.StatusBadRequest},
		{"/topk?k=0", http.StatusBadRequest},
		{"/spreadby?seeds=0&deadline=x", http.StatusBadRequest},
		{"/channel?src=0&dst=9999", http.StatusNotFound},
		{"/admin/reload", http.StatusMethodNotAllowed}, // GET
	}
	for _, c := range cases {
		code, body := get(t, ts, c.path)
		if code != c.code {
			t.Errorf("%s: status %d, want %d (%s)", c.path, code, c.code, body)
		}
		var e struct {
			Error  string `json:"error"`
			Status int    `json:"status"`
		}
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" || e.Status != c.code {
			t.Errorf("%s: not a JSON error body: %q (%v)", c.path, body, err)
		}
	}

	// Every rejected request lands in the middleware's HTTP error counter.
	snap := reg.Snapshot()
	if got := snap[`http_errors_total{route="/influence"}`]; got != int64(2) {
		t.Fatalf("http errors on /influence = %v, want 2", got)
	}
}

func TestSuccessPaths(t *testing.T) {
	h, _ := testHandler(t)
	ts := httptest.NewServer(h)
	defer ts.Close()

	for _, path := range []string{
		"/influence?node=0",
		"/topk?k=2",
		"/spreadby?seeds=0&deadline=400",
		"/channel?src=0&dst=3",
		"/stats",
	} {
		code, body := get(t, ts, path)
		if code != http.StatusOK {
			t.Errorf("%s: status %d (%s)", path, code, body)
		}
		if !json.Valid([]byte(body)) {
			t.Errorf("%s: invalid JSON %q", path, body)
		}
	}
}

// TestSnapshotMode drives the -snapshot deployment shape end to end:
// serve a saved IRX1 file, verify /channel degrades to 501, rewrite the
// file, and swap it in with POST /admin/reload.
func TestSnapshotMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "irs.bin")
	irs, err := ipin.ComputeApprox(fixtureNetwork(t), 500, ipin.DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	writeSnapshot := func(s *ipin.ApproxIRS) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.WriteTo(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	writeSnapshot(irs)

	reg := ipin.NewMetricsRegistry()
	srv := ipin.NewQueryServer(ipin.ServeConfig{CacheSize: 64, SnapshotPath: path, Registry: reg})
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(buildHandler(srv, nil, reg))
	defer ts.Close()

	if code, body := get(t, ts, "/spread?seeds=0"); code != http.StatusOK {
		t.Fatalf("/spread from snapshot: %d %s", code, body)
	}
	if code, _ := get(t, ts, "/channel?src=0&dst=3"); code != http.StatusNotImplemented {
		t.Fatalf("/channel in snapshot mode: status %d, want 501", code)
	}

	// Replace the file with a larger network and reload over HTTP.
	net := ipin.NewNetwork(9)
	net.Add(0, 1, 100)
	net.Add(5, 6, 200)
	net.Sort()
	irs2, err := ipin.ComputeApprox(net, 500, ipin.DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	writeSnapshot(irs2)

	resp, err := http.Post(ts.URL+"/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/admin/reload: %d %s", resp.StatusCode, body)
	}
	if srv.Generation() != 2 {
		t.Fatalf("generation after reload = %d, want 2", srv.Generation())
	}
	// Node 5 exists only in the new snapshot.
	if code, body := get(t, ts, "/influence?node=5"); code != http.StatusOK {
		t.Fatalf("/influence on reloaded snapshot: %d %s", code, body)
	}
}
