package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ipin"
)

// testServer builds the full handler over a tiny hand-made network: a
// chain 0→1→2→3 inside the window plus one interaction outside it.
func testServer(t *testing.T) (*server, *ipin.MetricsRegistry) {
	t.Helper()
	net := ipin.NewNetwork(5)
	net.Add(0, 1, 100)
	net.Add(1, 2, 200)
	net.Add(2, 3, 300)
	net.Add(3, 4, 9000)
	net.Sort()

	reg := ipin.NewMetricsRegistry()
	ipin.InstallMetrics(reg)
	t.Cleanup(func() { ipin.InstallMetrics(nil) })
	srv, err := buildServer(net, 500, ipin.DefaultPrecision, reg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, reg
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestObservableServer(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// A few spread queries, then scrape /metrics: the route counter and
	// latency histogram buckets must be non-zero, and the preprocessing
	// scan metrics must have been recorded.
	for i := 0; i < 3; i++ {
		code, body := get(t, ts, "/spread?seeds=0,1")
		if code != http.StatusOK || !strings.Contains(body, `"spread"`) {
			t.Fatalf("spread: %d %s", code, body)
		}
	}
	code, metrics := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`http_requests_total{route="/spread",code="200"} 3`,
		`http_request_duration_seconds_bucket{route="/spread",le="+Inf"} 3`,
		`http_request_duration_seconds_count{route="/spread"} 3`,
		`ipin_scan_edges_total{algo="approx"} 4`,
		`# TYPE http_in_flight_requests gauge`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	if !strings.Contains(metrics, "ipin_vhll_inserts_total") {
		t.Fatalf("no sketch metrics in exposition:\n%s", metrics)
	}

	// pprof must be mounted on the custom mux.
	if code, _ := get(t, ts, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}

func TestErrorResponses(t *testing.T) {
	srv, reg := testServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	cases := []struct {
		path string
		code int
	}{
		{"/influence?node=banana", http.StatusBadRequest},
		{"/influence?node=9999", http.StatusNotFound},
		{"/spread", http.StatusBadRequest},
		{"/spread?seeds=0,zzz", http.StatusBadRequest},
		{"/topk?k=0", http.StatusBadRequest},
		{"/spreadby?seeds=0&deadline=x", http.StatusBadRequest},
		{"/channel?src=0&dst=9999", http.StatusNotFound},
	}
	for _, c := range cases {
		code, body := get(t, ts, c.path)
		if code != c.code {
			t.Errorf("%s: status %d, want %d (%s)", c.path, code, c.code, body)
		}
		var e struct {
			Error  string `json:"error"`
			Status int    `json:"status"`
		}
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" || e.Status != c.code {
			t.Errorf("%s: not a JSON error body: %q (%v)", c.path, body, err)
		}
	}

	// Every rejected request lands in the application error counter and
	// the middleware's HTTP error counter.
	snap := reg.Snapshot()
	errs := int64(0)
	for name, v := range snap {
		if strings.HasPrefix(name, "oracle_request_errors_total") {
			errs += v.(int64)
		}
	}
	if errs != int64(len(cases)) {
		t.Fatalf("application errors = %d, want %d", errs, len(cases))
	}
	if got := snap[`http_errors_total{route="/influence"}`]; got != int64(2) {
		t.Fatalf("http errors on /influence = %v, want 2", got)
	}
}

func TestSuccessPaths(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	for _, path := range []string{
		"/influence?node=0",
		"/topk?k=2",
		"/spreadby?seeds=0&deadline=400",
		"/channel?src=0&dst=3",
		"/stats",
	} {
		code, body := get(t, ts, path)
		if code != http.StatusOK {
			t.Errorf("%s: status %d (%s)", path, code, body)
		}
		if !json.Valid([]byte(body)) {
			t.Errorf("%s: invalid JSON %q", path, body)
		}
	}
}
