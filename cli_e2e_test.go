package ipin_test

// End-to-end tests of the command-line tools: build the real binaries and
// drive them the way a user would — generate a dataset, analyze it, save
// and reload summaries, and run a small experiment.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// buildCommands compiles the three CLIs once per test run.
func buildCommands(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "ipin-cli")
		if buildErr != nil {
			return
		}
		for _, cmd := range []string{"gennet", "irs", "experiments"} {
			out, err := exec.Command("go", "build", "-o", filepath.Join(buildDir, cmd), "./cmd/"+cmd).CombinedOutput()
			if err != nil {
				buildErr = err
				buildDir = string(out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building CLIs: %v (%s)", buildErr, buildDir)
	}
	return buildDir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIGennetAndIRS(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI builds are slow")
	}
	bins := buildCommands(t)
	dir := t.TempDir()
	netFile := filepath.Join(dir, "net.txt")

	out := run(t, filepath.Join(bins, "gennet"),
		"-dataset", "slashdot", "-scale", "200", "-out", netFile)
	if !strings.Contains(out, "wrote") {
		t.Fatalf("gennet output: %s", out)
	}
	if fi, err := os.Stat(netFile); err != nil || fi.Size() == 0 {
		t.Fatalf("gennet produced no data: %v", err)
	}

	// Analyze: top-k plus a spread query over the first edge's endpoints.
	data, err := os.ReadFile(netFile)
	if err != nil {
		t.Fatal(err)
	}
	fields := strings.Fields(strings.SplitN(string(data), "\n", 2)[0])
	out = run(t, filepath.Join(bins, "irs"),
		"-in", netFile, "-window", "10", "-topk", "3",
		"-spread", fields[0]+","+fields[1],
		"-channel", fields[0]+","+fields[1])
	for _, want := range []string{"top 3 influencers", "spread(", "channel "} {
		if !strings.Contains(out, want) {
			t.Fatalf("irs output missing %q:\n%s", want, out)
		}
	}

	// Save, then reload: the reported top-k must be identical.
	sumFile := filepath.Join(dir, "irs.bin")
	first := run(t, filepath.Join(bins, "irs"),
		"-in", netFile, "-window", "10", "-save", sumFile, "-topk", "3")
	second := run(t, filepath.Join(bins, "irs"),
		"-in", netFile, "-window", "10", "-load", sumFile, "-topk", "3")
	pick := func(s string) string {
		idx := strings.Index(s, "top 3 influencers")
		if idx < 0 {
			t.Fatalf("no top-k section:\n%s", s)
		}
		return s[idx:]
	}
	if pick(first) != pick(second) {
		t.Fatalf("save/load changed the ranking:\n%s\nvs\n%s", pick(first), pick(second))
	}

	// Exact mode works too.
	out = run(t, filepath.Join(bins, "irs"),
		"-in", netFile, "-window", "10", "-exact", "-celf", "-topk", "2")
	if !strings.Contains(out, "exact summaries") {
		t.Fatalf("exact mode output:\n%s", out)
	}
}

// TestCLICodecRoundTrip pins the IRX1 snapshot codec end to end through
// the CLI: computing with -save and re-running with -load must print
// identical query answers, for both summary kinds, including the
// degenerate encodings — a sink node whose sketch payload has length 0
// and a single-node log whose summaries are all empty.
func TestCLICodecRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI builds are slow")
	}
	bins := buildCommands(t)
	irs := filepath.Join(bins, "irs")

	// queryLines keeps only the answer lines, dropping the compute/load
	// banter that legitimately differs between the two runs.
	queryLines := func(out string) string {
		var keep []string
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "spread(") || strings.Contains(line, "influencers") ||
				strings.HasPrefix(line, "  ") || strings.HasPrefix(line, "combined spread") {
				keep = append(keep, line)
			}
		}
		if len(keep) == 0 {
			t.Fatalf("no query answers in output:\n%s", out)
		}
		return strings.Join(keep, "\n")
	}

	cases := []struct {
		name    string
		content string
		seeds   string
	}{
		{"chain", "a b 100\nb c 200\nc d 5000\n", "a,b"},
		// b receives but never sends: its saved sketch has length 0.
		{"sink-empty-sketch", "a b 100\n", "b"},
		// One node, one self-interaction: every summary is empty.
		{"single-node", "a a 100\n", "a"},
	}
	for _, mode := range []string{"approx", "exact"} {
		for _, c := range cases {
			t.Run(mode+"/"+c.name, func(t *testing.T) {
				dir := t.TempDir()
				netFile := filepath.Join(dir, "net.txt")
				if err := os.WriteFile(netFile, []byte(c.content), 0o644); err != nil {
					t.Fatal(err)
				}
				sumFile := filepath.Join(dir, "irs.bin")
				args := []string{"-in", netFile, "-omega", "1000", "-topk", "1", "-spread", c.seeds}
				if mode == "exact" {
					args = append(args, "-exact")
				}
				first := run(t, irs, append(args, "-save", sumFile)...)
				if fi, err := os.Stat(sumFile); err != nil || fi.Size() == 0 {
					t.Fatalf("no summary file written: %v", err)
				}
				second := run(t, irs, append(args, "-load", sumFile)...)
				if queryLines(first) != queryLines(second) {
					t.Fatalf("answers changed across save/load:\n--- computed ---\n%s\n--- loaded ---\n%s",
						queryLines(first), queryLines(second))
				}
			})
		}
	}
}

func TestCLIExperimentsSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI builds are slow")
	}
	bins := buildCommands(t)
	dir := t.TempDir()
	out := run(t, filepath.Join(bins, "experiments"),
		"-exp", "table2", "-scale", "400", "-csv", dir)
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "enron") {
		t.Fatalf("experiments output:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "table2.csv")); err != nil {
		t.Fatalf("table2.csv not written: %v", err)
	}
}

func TestCLIExperimentsWithRealFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI builds are slow")
	}
	bins := buildCommands(t)
	dir := t.TempDir()
	// Drop a "real" enron in place; table2 must pick up its exact counts.
	content := "u1 u2 1000\nu2 u3 2000\nu3 u1 3000\n"
	if err := os.WriteFile(filepath.Join(dir, "enron.txt"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, filepath.Join(bins, "experiments"),
		"-exp", "table2", "-scale", "400", "-files", dir)
	// The enron row must reflect the 3-node file, not the generator.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "enron") {
			if !strings.Contains(line, "3") {
				t.Fatalf("enron row not from file: %q", line)
			}
			return
		}
	}
	t.Fatalf("no enron row:\n%s", out)
}
