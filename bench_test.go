package ipin

// This file exposes every experiment of the paper's evaluation — one
// testing.B benchmark per table and figure, plus the ablations — on
// laptop-scale datasets. Each benchmark drives the same harness code that
// cmd/experiments uses at full scale, so `go test -bench=.` regenerates
// the whole evaluation in miniature; the full runs (scale 20, paper
// parameters) are produced by `go run ./cmd/experiments`.

import (
	"testing"

	"ipin/internal/exp"
)

// benchScale is aggressive so a full -bench=. pass finishes in minutes:
// slashdot/100 has ~510 nodes and ~1.4k interactions, enron/100 ~870
// nodes and ~11.5k interactions.
const benchScale = 100

// benchDataset memoizes dataset generation across benchmark iterations.
var benchCache = map[string]exp.Dataset{}

func benchDataset(b *testing.B, name string) exp.Dataset {
	b.Helper()
	if d, ok := benchCache[name]; ok {
		return d
	}
	d, err := exp.Load(name, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	benchCache[name] = d
	return d
}

func benchMethodConfig() exp.MethodConfig {
	cfg := exp.DefaultMethodConfig()
	cfg.SKIM.Instances = 16
	cfg.SKIM.K = 16
	cfg.CTE.Samples = 4
	cfg.CTE.Labels = 4
	return cfg
}

// BenchmarkTable2DatasetStats regenerates Table 2: dataset
// characteristics of all six generated networks.
func BenchmarkTable2DatasetStats(b *testing.B) {
	datasets := make([]exp.Dataset, 0, 6)
	for _, n := range []string{"enron", "lkml", "facebook", "higgs", "slashdot", "us2016"} {
		datasets = append(datasets, benchDataset(b, n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := exp.Table2(datasets)
		if len(rows) != 6 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkTable3Accuracy regenerates Table 3: estimation error of the
// sketch against the exact algorithm across β and window lengths.
func BenchmarkTable3Accuracy(b *testing.B) {
	d := benchDataset(b, "slashdot")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table3(d, []int{4, 6, 9}, []float64{1, 10, 20})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 9 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkTable4Memory regenerates Table 4: sketch memory at three
// window lengths.
func BenchmarkTable4Memory(b *testing.B) {
	d := benchDataset(b, "enron")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table4(d, []float64{1, 10, 20}, 9)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Bytes == 0 {
			b.Fatal("no memory reported")
		}
	}
}

// BenchmarkFig3ProcessingTime regenerates Figure 3: one-pass processing
// time as a function of the window length.
func BenchmarkFig3ProcessingTime(b *testing.B) {
	d := benchDataset(b, "enron")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig3(d, []float64{1, 10, 20, 50, 100}, 9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4OracleQuery regenerates Figure 4: oracle query latency as
// a function of the seed-set size.
func BenchmarkFig4OracleQuery(b *testing.B) {
	d := benchDataset(b, "enron")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig4(d, []int{1, 10, 100, 500}, 20, 9, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5InfluenceSpread regenerates one panel of Figure 5: the
// TCIC spread of top-k seeds for all seven methods.
func BenchmarkFig5InfluenceSpread(b *testing.B) {
	d := benchDataset(b, "enron")
	params := exp.Fig5Params{
		Methods:   exp.AllMethods(),
		Ks:        []int{5, 25, 50},
		WindowPct: 20,
		P:         0.5,
		Trials:    5,
		Seed:      1,
	}
	cfg := benchMethodConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := exp.Fig5(d, params, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != len(params.Methods)*len(params.Ks) {
			b.Fatalf("got %d points", len(pts))
		}
	}
}

// BenchmarkTable5SeedOverlap regenerates Table 5: common top-10 seeds
// between window lengths.
func BenchmarkTable5SeedOverlap(b *testing.B) {
	d := benchDataset(b, "facebook")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table5(d, []float64{1, 10, 20}, 10, 9)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkTable6SeedTime regenerates Table 6: time to select the top-50
// seeds with every method.
func BenchmarkTable6SeedTime(b *testing.B) {
	d := benchDataset(b, "slashdot")
	cfg := benchMethodConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table6(d, exp.AllMethods(), 50, 20, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(exp.AllMethods()) {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkAblationVersioning runs ablation A1: versioned sketch vs a
// window-less HyperLogLog on windowed estimates.
func BenchmarkAblationVersioning(b *testing.B) {
	d := benchDataset(b, "slashdot")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationVersioning(d, []float64{1, 20}, 9)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkAblationCELF runs ablation A2: Algorithm 4 greedy vs CELF.
func BenchmarkAblationCELF(b *testing.B) {
	d := benchDataset(b, "facebook")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationCELF(d, []int{10, 50}, 20)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.GreedySpread != r.CELFSpread {
				b.Fatalf("greedy %g != CELF %g", r.GreedySpread, r.CELFSpread)
			}
		}
	}
}

// BenchmarkAblationBeta runs ablation A3: the precision sweep.
func BenchmarkAblationBeta(b *testing.B) {
	d := benchDataset(b, "slashdot")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationBeta(d, []int{4, 6, 9}, 10); err != nil {
			b.Fatal(err)
		}
	}
}
