package ipin_test

// End-to-end pipeline test over the checked-in fixture: parse a real
// edge-list file, compute both IRS variants, rank influencers, answer
// oracle and deadline queries, reconstruct a witness channel, persist the
// sketches and reload them — the full life of the library in one test.

import (
	"bytes"
	"os"
	"testing"

	"ipin"
)

func loadMini(t *testing.T) (*ipin.Network, *ipin.NodeTable) {
	t.Helper()
	f, err := os.Open("testdata/mini.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	net, table, err := ipin.ReadNetwork(f)
	if err != nil {
		t.Fatal(err)
	}
	return net, table
}

func TestPipelineEndToEnd(t *testing.T) {
	net, table := loadMini(t)
	if net.Len() != 20 {
		t.Fatalf("fixture has %d interactions, want 20", net.Len())
	}
	if err := net.Validate(true); err != nil {
		t.Fatal(err)
	}
	omega := net.WindowFromPercent(100) // every channel admissible

	// Exact pipeline.
	exact := ipin.ComputeExact(net, omega)
	hub1, ok := table.Lookup("hub1")
	if !ok {
		t.Fatal("hub1 missing from table")
	}
	hub2, _ := table.Lookup("hub2")
	leafG, _ := table.Lookup("leafG")

	// hub1 relays through chain1..chain4 to leafG.
	if _, ok := exact.Lambda(hub1, leafG); !ok {
		t.Error("hub1 does not reach leafG through the relay")
	}
	// The top influencer must be hub1: it reaches its direct leaves plus
	// the whole relay.
	seeds := ipin.TopKExact(exact, 2)
	if seeds[0] != hub1 {
		t.Errorf("top influencer = %s, want hub1", table.Name(seeds[0]))
	}
	if seeds[1] != hub2 {
		t.Errorf("second influencer = %s, want hub2", table.Name(seeds[1]))
	}

	// Witness channel hub1 → leafG: four hops, strictly increasing times.
	ch := ipin.FindChannel(net, hub1, leafG, omega)
	if len(ch) != 5 {
		t.Fatalf("witness channel has %d hops, want 5 (hub1→chain1→chain2→chain3→chain4→leafG): %v", len(ch), ch)
	}

	// Deadline semantics: by t=40 hub1 has reached chain1, leafA, leafB,
	// chain2 only.
	if got := ipin.SpreadBy(exact, []ipin.NodeID{hub1}, 40); got != 4 {
		t.Errorf("SpreadBy(hub1, 40) = %d, want 4", got)
	}

	// Approximate pipeline agrees on this scale (sets below the
	// linear-counting threshold are near-exact).
	approx, err := ipin.ComputeApprox(net, omega, ipin.DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	oe, oa := ipin.NewExactOracle(exact), ipin.NewApproxOracle(approx)
	for _, u := range []ipin.NodeID{hub1, hub2, leafG} {
		ex, ap := oe.InfluenceSize(u), oa.InfluenceSize(u)
		if ap < ex-0.5 || ap > ex+1.5 {
			t.Errorf("%s: approx influence %.2f vs exact %.0f", table.Name(u), ap, ex)
		}
	}

	// Cascade at p=1 from hub1 stays within σ_{ω+1} ∪ {hub1}.
	spread := ipin.Simulate(net, []ipin.NodeID{hub1}, ipin.CascadeConfig{Omega: omega, P: 1, Seed: 1})
	sPlus := ipin.ComputeExact(net, omega+1)
	if spread-1 > sPlus.IRSSize(hub1) {
		t.Errorf("cascade spread %d exceeds |σ_{ω+1}(hub1)|+1 = %d", spread, sPlus.IRSSize(hub1)+1)
	}

	// Persistence round trip preserves every oracle answer.
	var buf bytes.Buffer
	if _, err := approx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := ipin.ReadApproxIRS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	or := ipin.NewApproxOracle(reloaded)
	if got, want := or.Spread(seeds), oa.Spread(seeds); got != want {
		t.Errorf("reloaded oracle spread %.3f != %.3f", got, want)
	}
}

func TestPipelineWindowSensitivity(t *testing.T) {
	net, table := loadMini(t)
	hub1, _ := table.Lookup("hub1")
	leafG, _ := table.Lookup("leafG")

	// The relay hub1→…→leafG spans times 10..110: duration 101. With a
	// window of 100 ticks it must disappear; direct influence stays.
	wide := ipin.ComputeExact(net, 101)
	if _, ok := wide.Lambda(hub1, leafG); !ok {
		t.Error("relay missing at ω=101")
	}
	narrow := ipin.ComputeExact(net, 100)
	if _, ok := narrow.Lambda(hub1, leafG); ok {
		t.Error("relay survived at ω=100")
	}
	leafA, _ := table.Lookup("leafA")
	if _, ok := narrow.Lambda(hub1, leafA); !ok {
		t.Error("direct influence lost at ω=100")
	}
}
