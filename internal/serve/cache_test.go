package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ipin/internal/obs"
)

func testCache(max int, reg *obs.Registry) *cache {
	return newCache(max, newMetrics(reg))
}

func TestCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := testCache(2, reg)
	val := func(s string) func() ([]byte, error) {
		return func() ([]byte, error) { return []byte(s), nil }
	}
	ctx := context.Background()
	for _, k := range []string{"a", "b", "c"} { // c evicts a
		if _, err := c.do(ctx, k, val(k)); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.len(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	// b then c are resident; a recomputes.
	recomputed := false
	if _, err := c.do(ctx, "a", func() ([]byte, error) { recomputed = true; return []byte("a"), nil }); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Fatal("evicted key served from cache")
	}
	snap := reg.Snapshot()
	if snap[MetricCacheEvicted].(int64) < 1 {
		t.Fatalf("no evictions recorded: %v", snap)
	}
	// "a" re-inserted evicted "b"; "c" must still be a hit.
	hit := true
	if _, err := c.do(ctx, "c", func() ([]byte, error) { hit = false; return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("most-recently-used entry was evicted")
	}
}

// TestCacheSingleFlight: N concurrent requests for one key run the
// compute function exactly once and all see its bytes.
func TestCacheSingleFlight(t *testing.T) {
	reg := obs.NewRegistry()
	c := testCache(8, reg)
	var computes atomic.Int64
	gate := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, err := c.do(context.Background(), "k", func() ([]byte, error) {
				computes.Add(1)
				<-gate // hold every follower in the wait path
				return []byte("body"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = body
		}(i)
	}
	// Let followers pile up, then release the leader.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for i, b := range results {
		if string(b) != "body" {
			t.Fatalf("request %d got %q", i, b)
		}
	}
	snap := reg.Snapshot()
	if snap[MetricCacheMisses] != int64(1) {
		t.Fatalf("misses = %v, want 1", snap[MetricCacheMisses])
	}
}

// TestCacheSingleFlightAbandon: a follower whose context expires leaves
// without the result; the leader's entry stays valid for others.
func TestCacheSingleFlightAbandon(t *testing.T) {
	c := testCache(8, obs.NewRegistry())
	gate := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _ = c.do(context.Background(), "k", func() ([]byte, error) {
			<-gate
			return []byte("late"), nil
		})
	}()
	// Wait until the leader's entry is registered.
	for c.len() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := c.do(ctx, "k", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("abandoning follower: err = %v, want DeadlineExceeded", err)
	}
	close(gate)
	<-leaderDone
	body, err := c.do(context.Background(), "k", func() ([]byte, error) {
		return nil, fmt.Errorf("should have been cached")
	})
	if err != nil || string(body) != "late" {
		t.Fatalf("after abandon: %q, %v", body, err)
	}
}

// TestCacheErrorNotCached: failures propagate to the waiters of that
// flight but are not stored.
func TestCacheErrorNotCached(t *testing.T) {
	c := testCache(8, obs.NewRegistry())
	boom := errors.New("boom")
	if _, err := c.do(context.Background(), "k", func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := c.len(); n != 0 {
		t.Fatalf("failed entry cached (%d entries)", n)
	}
	body, err := c.do(context.Background(), "k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(body) != "ok" {
		t.Fatalf("retry after error: %q, %v", body, err)
	}
}

func TestCachePurge(t *testing.T) {
	c := testCache(8, obs.NewRegistry())
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := c.do(ctx, fmt.Sprintf("k%d", i), func() ([]byte, error) { return []byte("v"), nil }); err != nil {
			t.Fatal(err)
		}
	}
	c.purge()
	if n := c.len(); n != 0 {
		t.Fatalf("purge left %d entries", n)
	}
	// nil cache (disabled) purge must be a no-op, not a panic.
	var nilCache *cache
	nilCache.purge()
}
