package serve

import "ipin/internal/obs"

// Serving metric names (per-route HTTP series come from obs.Middleware).
const (
	MetricCacheHits    = "serve_cache_hits_total"
	MetricCacheMisses  = "serve_cache_misses_total"
	MetricCacheShared  = "serve_cache_singleflight_shared_total"
	MetricCacheEvicted = "serve_cache_evictions_total"
	MetricCachePurges  = "serve_cache_purges_total"
	MetricCacheEntries = "serve_cache_entries"
	MetricShed         = "serve_shed_total"
	MetricQueueDepth   = "serve_queue_depth"
	MetricReloads      = "serve_snapshot_reloads_total"
	MetricGeneration   = "serve_snapshot_generation"
)

// metrics bundles the serving-layer instruments. Built over a nil
// registry every field is a nil no-op instrument, preserving obs's
// zero-cost-when-disabled contract.
type metrics struct {
	hits, misses, shared, evictions, purges *obs.Counter
	shedQueueFull, shedDeadline             *obs.Counter
	reloads                                 *obs.Counter
	queueDepth, generation                  *obs.Gauge
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		hits:          reg.Counter(MetricCacheHits, "Result-cache hits (response served from stored bytes)."),
		misses:        reg.Counter(MetricCacheMisses, "Result-cache misses (response computed)."),
		shared:        reg.Counter(MetricCacheShared, "Requests that waited on an identical in-flight computation."),
		evictions:     reg.Counter(MetricCacheEvicted, "Result-cache entries evicted by the LRU bound."),
		purges:        reg.Counter(MetricCachePurges, "Result-cache purges (one per snapshot reload)."),
		shedQueueFull: reg.Counter(MetricShed+`{reason="queue_full"}`, "Requests shed with 429 because the wait queue was full."),
		shedDeadline:  reg.Counter(MetricShed+`{reason="deadline"}`, "Requests shed with 503 because their deadline expired in the queue."),
		reloads:       reg.Counter(MetricReloads, "Snapshots installed (initial load included)."),
		queueDepth:    reg.Gauge(MetricQueueDepth, "Requests currently waiting for an inflight slot."),
		generation:    reg.Gauge(MetricGeneration, "Generation of the snapshot currently serving."),
	}
}
