package serve

import (
	"strings"
	"testing"

	"ipin/internal/obs"
)

// The golden exposition test pins the metric families a served, cached,
// middleware-wrapped query server exposes. A renamed series, one
// registered but never exported, or one exported by accident diffs
// against the pinned list.
func TestMetricsGoldenExposition(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{CacheSize: 8, Registry: reg})
	h := s.Handler()
	for _, path := range []string{
		"/influence?node=0", // cache miss
		"/influence?node=0", // cache hit
		"/topk?k=2",
		"/stats",
		"/influence?node=banana", // 400 → error counter
	} {
		get(t, h, path)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, line := range strings.Split(b.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			got = append(got, rest)
		}
	}
	want := []string{
		"http_errors_total counter",
		"http_in_flight_requests gauge",
		"http_request_duration_seconds histogram",
		"http_requests_total counter",
		"serve_cache_entries gauge",
		"serve_cache_evictions_total counter",
		"serve_cache_hits_total counter",
		"serve_cache_misses_total counter",
		"serve_cache_purges_total counter",
		"serve_cache_singleflight_shared_total counter",
		"serve_queue_depth gauge",
		"serve_shed_total counter",
		"serve_snapshot_generation gauge",
		"serve_snapshot_reloads_total counter",
	}
	for i := 0; i < len(got) || i < len(want); i++ {
		switch {
		case i >= len(got):
			t.Errorf("missing family %q", want[i])
		case i >= len(want):
			t.Errorf("unexpected family %q", got[i])
		case got[i] != want[i]:
			t.Errorf("family %d = %q, want %q", i, got[i], want[i])
		}
	}

	// The workload must move what it touched: a series stuck at zero here
	// is exported but never updated.
	snap := reg.Snapshot()
	for name, min := range map[string]int64{
		MetricCacheHits:    1,
		MetricCacheMisses:  1, // /influence cold, /topk, /stats bypasses cache
		MetricCacheEntries: 1,
		MetricReloads:      1,
		MetricGeneration:   1,
		`http_requests_total{route="/influence",code="200"}`: 2,
		`http_requests_total{route="/influence",code="400"}`: 1,
		`http_errors_total{route="/influence"}`:              1,
	} {
		if v, ok := snap[name].(int64); !ok || v < min {
			t.Errorf("%s = %v, want >= %d", name, snap[name], min)
		}
	}
	if h, ok := snap[`http_request_duration_seconds{route="/influence"}`].(obs.HistogramSnapshot); !ok || h.Count < 3 {
		t.Errorf("influence latency histogram count = %v", snap[`http_request_duration_seconds{route="/influence"}`])
	}
}
