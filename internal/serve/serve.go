// Package serve is the production-shaped query layer between computed IRS
// summaries and HTTP: everything a process needs to keep answering
// influence-oracle queries fast and predictably while snapshots reload
// underneath it and traffic exceeds what the host can absorb.
//
// The layer has three independent mechanisms, composed in request order:
//
//   - Admission control (admission.go): a concurrency limiter with a
//     bounded FIFO wait queue and per-request deadlines. Requests beyond
//     the queue bound are shed immediately with 429 and Retry-After;
//     requests whose deadline expires while queued get 503. Latency under
//     overload therefore stays bounded by design instead of growing
//     without limit.
//
//   - A result cache (cache.go): a bounded LRU over fully rendered
//     response bodies, keyed on the route, the canonicalized (sorted,
//     deduplicated) seed set, and the snapshot generation, with
//     single-flight deduplication — concurrent identical queries compute
//     once and share the bytes. Because the cache stores the exact bytes
//     a cold computation would produce, responses are byte-identical with
//     the cache on or off.
//
//   - A sharded summary store (store.go): collapsed per-node sketches (or
//     exact summary maps) spread across N shards with per-shard RWMutexes
//     plus a seqlock-style generation counter, so concurrent queries
//     proceed without a global lock and a live snapshot reload (SIGHUP or
//     POST /admin/reload) swaps in the new table with only per-pointer
//     write-lock pauses — the expensive decode and collapse work happens
//     entirely off the read path. HyperLogLog union is a cell-wise
//     maximum, so query answers are independent of the shard count.
//
// All three are instrumented through internal/obs (cache hit/miss/
// single-flight counters, shed counters by reason, queue-depth gauge,
// reload counter; per-route latency histograms come from obs.Middleware
// wrapped around the handler). A nil Registry keeps every instrument a
// no-op.
//
// Typical wiring (examples/oracleserver is the reference deployment):
//
//	srv := serve.New(serve.Config{CacheSize: 4096, MaxInflight: 64,
//		QueueDepth: 128, SnapshotPath: "irs.bin", Registry: reg})
//	srv.LoadApprox(summaries)          // or srv.Reload() from SnapshotPath
//	http.ListenAndServe(addr, srv.Handler())
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ipin/internal/graph"
	"ipin/internal/obs"
	"ipin/internal/trace"
)

// Config parameterizes a query server. The zero value is usable: defaults
// fill in below, and a zero CacheSize simply disables the result cache.
type Config struct {
	// Shards is the number of summary-table shards; 0 selects
	// DefaultShards. The shard count never affects query answers.
	Shards int
	// CacheSize bounds the result cache in entries; 0 disables caching
	// (and with it single-flight deduplication).
	CacheSize int
	// MaxInflight bounds the number of queries computing concurrently;
	// 0 selects DefaultMaxInflight, negative disables admission control.
	MaxInflight int
	// QueueDepth bounds how many requests may wait for an inflight slot;
	// 0 selects 2×MaxInflight. Requests beyond the bound are shed with
	// 429 immediately.
	QueueDepth int
	// RequestTimeout is the per-request deadline covering queue wait and
	// computation; 0 selects DefaultRequestTimeout.
	RequestTimeout time.Duration
	// SnapshotPath, when set, is the IRX1 summary file Reload and the
	// /admin/reload route re-read.
	SnapshotPath string
	// ReadOnly marks this server as a replica's read-only view: snapshots
	// arrive only through the in-process publish path (LoadApprox from
	// the replication apply loop), and the mutating admin surface
	// (/admin/reload) answers 403 instead of swapping state underneath
	// the replicated lineage.
	ReadOnly bool
	// Registry receives the serving metrics; nil disables them.
	Registry *obs.Registry
	// Tracer, when non-nil, is stamped serve-visible after every snapshot
	// install — the terminal stage of the pipeline's end-to-end traces.
	Tracer *trace.Tracer
	// Journal, when non-nil, receives snapshot-reload and shed events.
	Journal *trace.Journal
}

// Defaults for the zero Config.
const (
	DefaultShards         = 8
	DefaultMaxInflight    = 64
	DefaultRequestTimeout = 10 * time.Second
)

// Server is the query layer: a sharded snapshot store, an optional result
// cache, and admission control, exposed as HTTP handlers.
type Server struct {
	cfg   Config
	store *store
	cache *cache   // nil when disabled
	lim   *limiter // nil when disabled
	mx    *metrics
	// genMu guards genCh, which is closed and replaced on every snapshot
	// install; WaitGeneration blocks on it.
	genMu sync.Mutex
	genCh chan struct{}
}

// New returns a query server with no snapshot loaded; every query route
// answers 503 until LoadExact, LoadApprox, or Reload installs one.
func New(cfg Config) *Server {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.MaxInflight
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	mx := newMetrics(cfg.Registry)
	s := &Server{cfg: cfg, store: newStore(cfg.Shards), mx: mx, genCh: make(chan struct{})}
	if cfg.CacheSize > 0 {
		s.cache = newCache(cfg.CacheSize, mx)
	}
	if cfg.MaxInflight > 0 {
		s.lim = newLimiter(cfg.MaxInflight, cfg.QueueDepth, mx)
	}
	// Read-time gauge: a push-style gauge would have to be updated on
	// every insert/evict/purge; the count is cheap to read on demand.
	cfg.Registry.GaugeFunc(MetricCacheEntries, "Result-cache entries currently resident.", func() int64 {
		return int64(s.cache.len())
	})
	return s
}

// Generation returns the store generation: it starts at zero and grows
// with every loaded snapshot, and response caching is keyed on it.
func (s *Server) Generation() uint64 { return s.store.generation() }

// WaitGeneration blocks until the store generation reaches at least g or
// ctx expires. It is how a caller that just handed summaries to a
// live-ingestion publisher waits for them to become queryable.
func (s *Server) WaitGeneration(ctx context.Context, g uint64) error {
	for {
		s.genMu.Lock()
		ch := s.genCh
		s.genMu.Unlock()
		if s.Generation() >= g {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// QueueDepthNow returns the number of requests currently waiting for an
// inflight slot, zero when admission control is disabled. It can never
// exceed Config.QueueDepth — requests beyond the bound are shed, not
// queued.
func (s *Server) QueueDepthNow() int64 {
	if s.lim == nil {
		return 0
	}
	return s.lim.waiting.Load()
}

// Routes returns the URL paths Register installs, the closed set an
// obs.Middleware wrapper should track individually.
func (s *Server) Routes() []string {
	return []string{"/influence", "/spread", "/topk", "/spreadby", "/spreadwindow", "/stats", "/admin/reload"}
}

// Register installs the query routes on mux. Query routes pass through
// admission control; /admin/reload does not, so operators keep control
// of an overloaded server.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("/influence", s.admit(s.influence))
	mux.HandleFunc("/spread", s.admit(s.spread))
	mux.HandleFunc("/topk", s.admit(s.topk))
	mux.HandleFunc("/spreadby", s.admit(s.spreadBy))
	mux.HandleFunc("/spreadwindow", s.admit(s.spreadWindow))
	mux.HandleFunc("/stats", s.admit(s.stats))
	mux.HandleFunc("/admin/reload", s.reload)
}

// Handler returns the standalone handler: the registered routes wrapped
// in obs.Middleware over the configured registry.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Register(mux)
	return obs.Middleware(s.cfg.Registry, s.Routes(), mux)
}

// requestError is an application error with the HTTP status it deserves.
type requestError struct {
	status int
	msg    string
}

func (e *requestError) Error() string { return e.msg }

func badParam(format string, args ...any) error {
	return &requestError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

var errNoSnapshot = &requestError{status: http.StatusServiceUnavailable, msg: "no snapshot loaded"}

// admit wraps a query handler with the per-request deadline and the
// concurrency limiter, shedding with 429 (queue full) or 503 (deadline
// spent in queue) before the handler runs.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		if s.lim != nil {
			if err := s.lim.acquire(ctx); err != nil {
				s.shed(w, err)
				return
			}
			defer s.lim.release()
		}
		h(w, r)
	}
}

// shed writes the load-shedding response for a limiter error, with a
// Retry-After hint so well-behaved clients back off.
func (s *Server) shed(w http.ResponseWriter, err error) {
	status := http.StatusServiceUnavailable
	cause := "deadline"
	if errors.Is(err, errQueueFull) {
		status = http.StatusTooManyRequests
		cause = "queue_full"
	}
	s.cfg.Journal.Record(trace.EventShed, cause, 0, map[string]any{
		"queued": s.QueueDepthNow(),
	})
	w.Header().Set("Retry-After", "1")
	writeError(w, &requestError{status: status, msg: err.Error()})
}

// answer runs the cached-query protocol: resolve the current generation,
// look the canonical key up in the cache (computing once under
// single-flight on a miss), and write the stored bytes. With the cache
// disabled it computes directly — the bytes are identical either way.
func (s *Server) answer(w http.ResponseWriter, r *http.Request, key string, compute func() (any, error)) {
	render := func() ([]byte, error) {
		v, err := compute()
		if err != nil {
			return nil, err
		}
		return marshalBody(v)
	}
	var (
		body []byte
		err  error
	)
	if s.cache != nil {
		body, err = s.cache.do(r.Context(), key, render)
	} else {
		body, err = render()
	}
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

func (s *Server) influence(w http.ResponseWriter, r *http.Request) {
	snap := s.store.current()
	if snap == nil {
		writeError(w, errNoSnapshot)
		return
	}
	u, err := parseNode(r.URL.Query().Get("node"), snap.numNodes)
	if err != nil {
		writeError(w, err)
		return
	}
	key := fmt.Sprintf("influence|%d|%d", snap.gen, u)
	s.answer(w, r, key, func() (any, error) {
		return map[string]any{"node": u, "influence": s.store.influence(u)}, nil
	})
}

func (s *Server) spread(w http.ResponseWriter, r *http.Request) {
	snap := s.store.current()
	if snap == nil {
		writeError(w, errNoSnapshot)
		return
	}
	seeds, err := parseSeeds(r.URL.Query().Get("seeds"), snap.numNodes)
	if err != nil {
		writeError(w, err)
		return
	}
	key := fmt.Sprintf("spread|%d|%s", snap.gen, seedKey(seeds))
	s.answer(w, r, key, func() (any, error) {
		return map[string]any{"seeds": seeds, "spread": s.store.spread(seeds)}, nil
	})
}

func (s *Server) topk(w http.ResponseWriter, r *http.Request) {
	snap := s.store.current()
	if snap == nil {
		writeError(w, errNoSnapshot)
		return
	}
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k < 1 || k > snap.numNodes {
		writeError(w, badParam("bad k parameter"))
		return
	}
	key := fmt.Sprintf("topk|%d|%d", snap.gen, k)
	s.answer(w, r, key, func() (any, error) {
		seeds := snap.topK(k)
		return map[string]any{"seeds": seeds, "spread": s.store.spread(seeds)}, nil
	})
}

func (s *Server) spreadBy(w http.ResponseWriter, r *http.Request) {
	snap := s.store.current()
	if snap == nil {
		writeError(w, errNoSnapshot)
		return
	}
	seeds, err := parseSeeds(r.URL.Query().Get("seeds"), snap.numNodes)
	if err != nil {
		writeError(w, err)
		return
	}
	deadline, err := strconv.ParseInt(r.URL.Query().Get("deadline"), 10, 64)
	if err != nil {
		writeError(w, badParam("bad deadline parameter"))
		return
	}
	key := fmt.Sprintf("spreadby|%d|%s|%d", snap.gen, seedKey(seeds), deadline)
	s.answer(w, r, key, func() (any, error) {
		return map[string]any{
			"seeds":    seeds,
			"deadline": deadline,
			"spread":   snap.spreadBy(seeds, graph.Time(deadline)),
		}, nil
	})
}

// errWindowNeedsApprox is the /spreadwindow answer on an exact snapshot:
// the request is well-formed but conflicts with the loaded summary kind.
var errWindowNeedsApprox = &requestError{
	status: http.StatusConflict,
	msg:    "window queries require an approx snapshot",
}

// spreadWindow answers the jumping/sliding-window spread: the estimated
// number of distinct nodes first influenced by the seed set inside
// [at, at+horizon−1], with horizon defaulting to the snapshot's omega
// (so a bare at gives one jumping-window position). Only approx
// snapshots retain the versioned sketches this needs; on an exact
// snapshot the route answers 409 Conflict.
func (s *Server) spreadWindow(w http.ResponseWriter, r *http.Request) {
	snap := s.store.current()
	if snap == nil {
		writeError(w, errNoSnapshot)
		return
	}
	seeds, err := parseSeeds(r.URL.Query().Get("seeds"), snap.numNodes)
	if err != nil {
		writeError(w, err)
		return
	}
	at, err := strconv.ParseInt(r.URL.Query().Get("at"), 10, 64)
	if err != nil {
		writeError(w, badParam("bad at parameter"))
		return
	}
	horizon := snap.omega()
	if raw := r.URL.Query().Get("horizon"); raw != "" {
		horizon, err = strconv.ParseInt(raw, 10, 64)
		if err != nil || horizon < 1 {
			writeError(w, badParam("bad horizon parameter"))
			return
		}
	}
	key := fmt.Sprintf("spreadwindow|%d|%s|%d|%d", snap.gen, seedKey(seeds), at, horizon)
	s.answer(w, r, key, func() (any, error) {
		spread, ok := snap.spreadWindow(seeds, at, horizon)
		if !ok {
			return nil, errWindowNeedsApprox
		}
		return map[string]any{
			"seeds":   seeds,
			"at":      at,
			"horizon": horizon,
			"spread":  spread,
		}, nil
	})
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	snap := s.store.current()
	if snap == nil {
		writeError(w, errNoSnapshot)
		return
	}
	body, err := marshalBody(snap.statsBody())
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// reload re-reads the configured snapshot file and swaps it in. Exposed
// as POST /admin/reload; the same Reload method backs SIGHUP handling.
func (s *Server) reload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, &requestError{status: http.StatusMethodNotAllowed, msg: "POST required"})
		return
	}
	if s.cfg.ReadOnly {
		writeError(w, &requestError{status: http.StatusForbidden, msg: "read-only replica: snapshots arrive via replication"})
		return
	}
	if err := s.Reload(); err != nil {
		writeError(w, &requestError{status: http.StatusConflict, msg: err.Error()})
		return
	}
	body, err := marshalBody(map[string]any{"reloaded": s.cfg.SnapshotPath, "generation": s.Generation()})
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// parseNode resolves a node-id parameter: 400 when malformed, 404 when
// well-formed but outside the snapshot.
func parseNode(raw string, numNodes int) (graph.NodeID, error) {
	id, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badParam("bad node id %q", raw)
	}
	if id < 0 || id >= numNodes {
		return 0, &requestError{status: http.StatusNotFound, msg: fmt.Sprintf("unknown node %q", raw)}
	}
	return graph.NodeID(id), nil
}

// parseSeeds resolves a comma-separated seeds parameter into the
// canonical (sorted, deduplicated) seed set. Responses echo this
// canonical set, so equivalent queries share one cache entry and one
// body.
func parseSeeds(raw string, numNodes int) ([]graph.NodeID, error) {
	if raw == "" {
		return nil, badParam("missing seeds parameter")
	}
	parts := strings.Split(raw, ",")
	seeds := make([]graph.NodeID, 0, len(parts))
	for _, part := range parts {
		id, err := parseNode(strings.TrimSpace(part), numNodes)
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, id)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	dedup := seeds[:1]
	for _, u := range seeds[1:] {
		if u != dedup[len(dedup)-1] {
			dedup = append(dedup, u)
		}
	}
	return dedup, nil
}

// seedKey renders a canonical seed set as a cache-key fragment.
func seedKey(seeds []graph.NodeID) string {
	var b strings.Builder
	for i, u := range seeds {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(u)))
	}
	return b.String()
}

// marshalBody renders a response value exactly as json.Encoder would
// (trailing newline included), the byte shape both the cold and the
// cached path serve.
func marshalBody(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// writeError writes a JSON error body with the status carried by err
// (500 for plain errors).
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var re *requestError
	if errors.As(err, &re) {
		status = re.status
	} else if errors.Is(err, context.DeadlineExceeded) {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{"error": err.Error(), "status": status})
}
