package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// Limiter errors, mapped to load-shedding statuses by Server.shed.
var (
	// errQueueFull sheds immediately with 429: admitting the request
	// would grow the wait queue beyond its bound.
	errQueueFull = errors.New("server overloaded: wait queue full")
	// errDeadline sheds with 503: the request's deadline expired while
	// it waited for an inflight slot.
	errDeadline = errors.New("server overloaded: timed out waiting for capacity")
)

// limiter is the admission controller: at most maxInflight requests
// compute concurrently, at most queueDepth more wait, everything beyond
// that is shed immediately. Bounding the queue bounds worst-case latency:
// an admitted request waits behind at most queueDepth predecessors, and
// its own deadline caps even that.
type limiter struct {
	slots   chan struct{} // buffered to maxInflight; holding a token = computing
	depth   int64
	waiting atomic.Int64
	mx      *metrics
}

func newLimiter(maxInflight, queueDepth int, mx *metrics) *limiter {
	return &limiter{
		slots: make(chan struct{}, maxInflight),
		depth: int64(queueDepth),
		mx:    mx,
	}
}

// acquire obtains an inflight slot, queueing up to the depth bound while
// ctx lasts. It returns errQueueFull or errDeadline when the request
// should be shed instead.
func (l *limiter) acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	w := l.waiting.Add(1)
	if w > l.depth {
		l.mx.queueDepth.Set(l.waiting.Add(-1))
		l.mx.shedQueueFull.Inc()
		return errQueueFull
	}
	l.mx.queueDepth.Set(w)
	defer func() {
		l.mx.queueDepth.Set(l.waiting.Add(-1))
	}()
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		l.mx.shedDeadline.Inc()
		return errDeadline
	}
}

// release returns an acquired slot.
func (l *limiter) release() { <-l.slots }
