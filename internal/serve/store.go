package serve

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ipin/internal/core"
	"ipin/internal/graph"
	"ipin/internal/hll"
	"ipin/internal/trace"
)

// store holds the queryable snapshot state. The hot per-node table —
// collapsed HyperLogLog sketches for approx snapshots, summary maps for
// exact ones — is sharded: node u lives in shard u%N at slot u/N, behind
// that shard's RWMutex. Heavyweight analytical state (the full summaries
// topk and spreadby need) hangs off an atomic snapshot pointer.
//
// Reloads are seqlock-shaped. All decode/collapse work happens before any
// lock is taken; the swap phase then makes the generation counter odd,
// replaces each shard's slice pointer under its own write lock, installs
// the new snapshot pointer, and makes the generation even again. Readers
// never wait on the expensive part of a reload: a per-node read blocks
// only behind a pointer assignment, and multi-node reads re-run when the
// generation moved underneath them, so they never return a table mixing
// two snapshots.
type store struct {
	nshards int
	shards  []shard
	// gen is even outside reloads and odd during the swap phase; it is
	// bumped twice per reload, so gen/2 counts installed snapshots.
	gen  atomic.Uint64
	snap atomic.Pointer[snapshot]
	// reloadMu serializes whole reloads (not reads).
	reloadMu sync.Mutex
}

type shard struct {
	mu        sync.RWMutex
	collapsed []*hll.Sketch                 // approx kind; nil entries = empty IRS
	phi       []map[graph.NodeID]graph.Time // exact kind
}

// snapshot is the immutable view of one loaded summary set.
type snapshot struct {
	gen      uint64 // even generation value current when this snapshot was installed
	exact    *core.ExactSummaries
	approx   *core.ApproxSummaries
	numNodes int
}

func newStore(nshards int) *store {
	return &store{nshards: nshards, shards: make([]shard, nshards)}
}

// generation returns the number of snapshots installed so far.
func (st *store) generation() uint64 { return st.gen.Load() / 2 }

// current returns the installed snapshot, nil before the first load.
func (st *store) current() *snapshot { return st.snap.Load() }

// loadApprox collapses the summaries into the sharded table and swaps it
// in. The collapse runs off the read path, parallel per the library-wide
// worker setting.
func (st *store) loadApprox(s *core.ApproxSummaries) {
	n := s.NumNodes()
	tables := make([][]*hll.Sketch, st.nshards)
	for sh := range tables {
		tables[sh] = make([]*hll.Sketch, shardLen(n, st.nshards, sh))
	}
	oracle := core.NewApproxOracle(s) // parallel per-node collapse
	for u := 0; u < n; u++ {
		tables[u%st.nshards][u/st.nshards] = oracle.Collapsed(graph.NodeID(u))
	}
	st.swap(tables, nil, &snapshot{approx: s, numNodes: n})
}

// loadExact shards the exact summary maps and swaps them in.
func (st *store) loadExact(s *core.ExactSummaries) {
	n := s.NumNodes()
	tables := make([][]map[graph.NodeID]graph.Time, st.nshards)
	for sh := range tables {
		tables[sh] = make([]map[graph.NodeID]graph.Time, shardLen(n, st.nshards, sh))
	}
	for u := 0; u < n; u++ {
		tables[u%st.nshards][u/st.nshards] = s.Phi[u]
	}
	st.swap(nil, tables, &snapshot{exact: s, numNodes: n})
}

// loadFile reads an IRX1 snapshot of either kind and installs it.
func (st *store) loadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	exact, approx, err := core.ReadSummaries(f)
	if err != nil {
		return fmt.Errorf("snapshot %s: %v", path, err)
	}
	if exact != nil {
		st.loadExact(exact)
	} else {
		st.loadApprox(approx)
	}
	return nil
}

// swap is the only writer of shard state: generation odd → per-shard
// pointer replacement under the shard locks → snapshot install →
// generation even. The snapshot pointer is stored before the final bump
// so a reader that observes the new (even) generation always sees a
// snapshot at least as new as the shard tables it read.
func (st *store) swap(collapsed [][]*hll.Sketch, phi [][]map[graph.NodeID]graph.Time, snap *snapshot) {
	st.reloadMu.Lock()
	defer st.reloadMu.Unlock()
	odd := st.gen.Add(1) // odd: swap in progress
	for sh := range st.shards {
		s := &st.shards[sh]
		s.mu.Lock()
		if collapsed != nil {
			s.collapsed, s.phi = collapsed[sh], nil
		} else {
			s.collapsed, s.phi = nil, phi[sh]
		}
		s.mu.Unlock()
	}
	snap.gen = odd + 1
	st.snap.Store(snap)
	st.gen.Add(1) // even: swap complete
}

// shardLen returns the slot count of shard sh for n nodes striped u%k.
func shardLen(n, k, sh int) int {
	return (n - sh + k - 1) / k
}

// read runs fn against a consistent table generation: it retries whenever
// a reload's swap phase overlapped the reads fn performed. fn must touch
// shard state only through readNode-style per-shard locking.
func (st *store) read(fn func()) {
	for {
		g := st.gen.Load()
		if g&1 == 0 {
			fn()
			if st.gen.Load() == g {
				return
			}
		}
		// A swap is in (or passed through) progress; its critical section
		// is pointer assignments only, so yielding briefly is enough.
		runtime.Gosched()
	}
}

// sketchAt returns the collapsed sketch in the slot, nil when the shard
// currently holds no approx table or the slot is beyond it (a smaller
// snapshot was, or is being, swapped in). Callers hold the shard RLock;
// the store.read generation check turns any mid-swap nil into a retry.
func (sh *shard) sketchAt(slot int) *hll.Sketch {
	if slot >= len(sh.collapsed) {
		return nil
	}
	return sh.collapsed[slot]
}

// phiAt is sketchAt for exact tables; len(nil) = 0 reads as an empty IRS.
func (sh *shard) phiAt(slot int) map[graph.NodeID]graph.Time {
	if slot >= len(sh.phi) {
		return nil
	}
	return sh.phi[slot]
}

// influence returns |σω(u)| (exact) or its estimate from u's shard.
func (st *store) influence(u graph.NodeID) float64 {
	var out float64
	st.read(func() {
		snap := st.snap.Load()
		sh := &st.shards[int(u)%st.nshards]
		slot := int(u) / st.nshards
		sh.mu.RLock()
		if snap.approx != nil {
			if sk := sh.sketchAt(slot); sk != nil {
				out = sk.Estimate()
			} else {
				out = 0
			}
		} else {
			out = float64(len(sh.phiAt(slot)))
		}
		sh.mu.RUnlock()
	})
	return out
}

// spread returns |⋃ σω(u)| over the seeds, unioning shard entries in seed
// order — HLL union is a cell-wise maximum and exact union is a set
// union, so neither the shard count nor the shard layout can change the
// answer.
func (st *store) spread(seeds []graph.NodeID) float64 {
	var out float64
	st.read(func() {
		snap := st.snap.Load()
		if snap.approx != nil {
			union := hll.MustNew(snap.approx.Precision)
			for _, u := range seeds {
				sh := &st.shards[int(u)%st.nshards]
				sh.mu.RLock()
				sk := sh.sketchAt(int(u) / st.nshards)
				sh.mu.RUnlock()
				if sk != nil {
					// Same-precision merge cannot fail.
					_ = union.Merge(sk)
				}
			}
			out = union.Estimate()
			return
		}
		set := make(map[graph.NodeID]struct{})
		for _, u := range seeds {
			sh := &st.shards[int(u)%st.nshards]
			sh.mu.RLock()
			phi := sh.phiAt(int(u) / st.nshards)
			sh.mu.RUnlock()
			for v := range phi {
				set[v] = struct{}{}
			}
		}
		out = float64(len(set))
	})
	return out
}

// topK selects the top-k seeds on the snapshot's full summaries.
func (s *snapshot) topK(k int) []graph.NodeID {
	if s.approx != nil {
		return core.TopKApproxSeeds(s.approx, k)
	}
	return core.TopKExact(s.exact, k)
}

// spreadBy answers the deadline-bounded spread on the full summaries.
func (s *snapshot) spreadBy(seeds []graph.NodeID, deadline graph.Time) float64 {
	if s.approx != nil {
		return s.approx.SpreadByEstimate(seeds, deadline)
	}
	return float64(s.exact.SpreadBy(seeds, deadline))
}

// omega returns the channel-duration bound the snapshot was built with.
func (s *snapshot) omega() int64 {
	if s.approx != nil {
		return s.approx.Omega
	}
	return s.exact.Omega
}

// spreadWindow answers the window-restricted spread |⋃ σ(u)| counting
// only nodes first influenced inside [at, at+horizon−1], on the full
// approx summaries. The second return is false on exact snapshots:
// their summary maps record only the earliest influence time per pair,
// not the versioned staircases a window query needs, so the handler
// turns that into 409 rather than serving a silently wrong number.
func (s *snapshot) spreadWindow(seeds []graph.NodeID, at, horizon int64) (float64, bool) {
	if s.approx == nil {
		return 0, false
	}
	return s.approx.SpreadEstimateWindow(seeds, at, horizon), true
}

// statsBody is the /stats response: snapshot-level facts only, so the
// body is independent of shard count and cache configuration.
func (s *snapshot) statsBody() map[string]any {
	if s.approx != nil {
		return map[string]any{
			"kind":          "approx",
			"nodes":         s.numNodes,
			"omega":         s.approx.Omega,
			"precision":     s.approx.Precision,
			"entries":       s.approx.EntryCount(),
			"summary_bytes": s.approx.MemoryBytes(),
		}
	}
	return map[string]any{
		"kind":          "exact",
		"nodes":         s.numNodes,
		"omega":         s.exact.Omega,
		"entries":       s.exact.EntryCount(),
		"summary_bytes": s.exact.MemoryBytes(),
	}
}

// LoadApprox installs sketched summaries as the served snapshot. Safe
// under live traffic: queries in flight finish on a consistent table.
func (s *Server) LoadApprox(sum *core.ApproxSummaries) {
	start := time.Now()
	s.store.loadApprox(sum)
	s.afterLoad("load_approx", start)
}

// LoadExact installs exact summaries as the served snapshot.
func (s *Server) LoadExact(sum *core.ExactSummaries) {
	start := time.Now()
	s.store.loadExact(sum)
	s.afterLoad("load_exact", start)
}

// Reload re-reads Config.SnapshotPath and swaps the result in atomically.
// It errors when no snapshot path is configured or the file is
// unreadable; the previous snapshot keeps serving in every error case.
func (s *Server) Reload() error {
	if s.cfg.SnapshotPath == "" {
		return fmt.Errorf("serve: no snapshot path configured")
	}
	start := time.Now()
	if err := s.store.loadFile(s.cfg.SnapshotPath); err != nil {
		return err
	}
	s.afterLoad("reload", start)
	return nil
}

// afterLoad runs the bookkeeping common to all snapshot installs: old
// cache entries can never be served again (keys embed the generation),
// so drop them eagerly, count the reload, wake WaitGeneration callers,
// and — the generation swap being the moment the new data became
// queryable — stamp waiting trace records serve-visible.
func (s *Server) afterLoad(cause string, start time.Time) {
	s.cache.purge()
	s.mx.reloads.Inc()
	s.mx.generation.Set(int64(s.Generation()))
	s.genMu.Lock()
	close(s.genCh)
	s.genCh = make(chan struct{})
	s.genMu.Unlock()
	s.cfg.Tracer.StampVisible()
	s.cfg.Journal.Record(trace.EventSnapshotReload, cause, time.Since(start), map[string]any{
		"generation": s.Generation(),
	})
}
