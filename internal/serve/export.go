package serve

import (
	"net/http"

	"ipin/internal/graph"
)

// Exports for the scatter-gather cluster frontend (internal/cluster),
// which replicates this package's request parsing, response bodies, and
// error shapes byte-for-byte so a merged K-shard answer is
// indistinguishable from a single-node one on the wire.

// ParseNode resolves a node-id query parameter exactly as the query
// routes do: 400 when malformed, 404 when well-formed but outside the
// node range.
func ParseNode(raw string, numNodes int) (graph.NodeID, error) { return parseNode(raw, numNodes) }

// ParseSeeds resolves a comma-separated seeds parameter into the
// canonical (sorted, deduplicated) seed set the routes echo.
func ParseSeeds(raw string, numNodes int) ([]graph.NodeID, error) { return parseSeeds(raw, numNodes) }

// MarshalBody renders a response value in the exact byte shape the query
// routes serve (json.Marshal plus a trailing newline).
func MarshalBody(v any) ([]byte, error) { return marshalBody(v) }

// WriteError writes the JSON error body with the status carried by err,
// 500 for plain errors.
func WriteError(w http.ResponseWriter, err error) { writeError(w, err) }

// BadParam returns a 400 request error with a formatted message.
func BadParam(format string, args ...any) error { return badParam(format, args...) }

// ErrNoSnapshot is the 503 "no snapshot loaded" request error every
// query route answers before the first snapshot install.
func ErrNoSnapshot() error { return errNoSnapshot }

// ErrWindowNeedsApprox is the 409 answer to a window query against an
// exact snapshot.
func ErrWindowNeedsApprox() error { return errWindowNeedsApprox }
