package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ipin/internal/core"
	"ipin/internal/graph"
	"ipin/internal/obs"
)

// testLog is the chain 0→1→2→3 inside the window plus one interaction
// outside it, the same fixture the oracleserver tests use.
func testLog(t *testing.T) *graph.Log {
	t.Helper()
	l := graph.New(5)
	l.Add(0, 1, 100)
	l.Add(1, 2, 200)
	l.Add(2, 3, 300)
	l.Add(3, 4, 9000)
	l.Sort()
	return l
}

func testApprox(t *testing.T) *core.ApproxSummaries {
	t.Helper()
	s, err := core.ComputeApprox(testLog(t), 500, core.DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	s.LoadApprox(testApprox(t))
	return s
}

func get(t *testing.T, h http.Handler, path string) (int, http.Header, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, res.Header, string(body)
}

func TestRoutes(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: 16})
	h := s.Handler()
	for _, path := range []string{
		"/influence?node=0",
		"/spread?seeds=0,1",
		"/topk?k=2",
		"/spreadby?seeds=0&deadline=400",
		"/spreadwindow?seeds=0&at=100",
		"/spreadwindow?seeds=0,1&at=100&horizon=250",
		"/stats",
	} {
		code, _, body := get(t, h, path)
		if code != http.StatusOK {
			t.Errorf("%s: status %d (%s)", path, code, body)
		}
		if !json.Valid([]byte(body)) || !strings.HasSuffix(body, "\n") {
			t.Errorf("%s: not a JSON line: %q", path, body)
		}
	}
}

func TestErrorStatuses(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: 16})
	h := s.Handler()
	cases := []struct {
		path string
		code int
	}{
		{"/influence?node=banana", http.StatusBadRequest},
		{"/influence?node=9999", http.StatusNotFound},
		{"/spread", http.StatusBadRequest},
		{"/spread?seeds=0,zzz", http.StatusBadRequest},
		{"/topk?k=0", http.StatusBadRequest},
		{"/spreadby?seeds=0&deadline=x", http.StatusBadRequest},
		{"/spreadwindow?seeds=0", http.StatusBadRequest},
		{"/spreadwindow?seeds=0&at=x", http.StatusBadRequest},
		{"/spreadwindow?seeds=0&at=100&horizon=0", http.StatusBadRequest},
		{"/admin/reload", http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		code, _, body := get(t, h, c.path)
		if code != c.code {
			t.Errorf("%s: status %d, want %d (%s)", c.path, code, c.code, body)
		}
		var e struct {
			Error  string `json:"error"`
			Status int    `json:"status"`
		}
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" || e.Status != c.code {
			t.Errorf("%s: not a JSON error body: %q", c.path, body)
		}
	}
}

func TestNoSnapshotIs503(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	for _, path := range []string{"/influence?node=0", "/spread?seeds=0", "/topk?k=1", "/spreadby?seeds=0&deadline=1", "/spreadwindow?seeds=0&at=1", "/stats"} {
		if code, _, _ := get(t, h, path); code != http.StatusServiceUnavailable {
			t.Errorf("%s before load: status %d, want 503", path, code)
		}
	}
}

// TestByteIdentity pins the acceptance property: every query body is
// byte-identical with the cache on or off and across shard counts, for
// both summary kinds — and repeated queries (cache hits) return the same
// bytes again.
func TestByteIdentity(t *testing.T) {
	paths := []string{
		"/influence?node=0",
		"/influence?node=4",
		"/spread?seeds=0,1,2",
		"/spread?seeds=2,1,0,1", // canonicalizes to 0,1,2
		"/topk?k=3",
		"/spreadby?seeds=0,3&deadline=400",
		"/stats",
	}
	exact := core.ComputeExact(testLog(t), 500)
	for _, kind := range []string{"approx", "exact"} {
		var want map[string]string
		for _, shards := range []int{1, 4} {
			for _, cacheSize := range []int{0, 64} {
				s := New(Config{Shards: shards, CacheSize: cacheSize})
				if kind == "approx" {
					s.LoadApprox(testApprox(t))
				} else {
					s.LoadExact(exact)
				}
				h := s.Handler()
				for round := 0; round < 2; round++ { // second round hits the cache
					got := make(map[string]string, len(paths))
					for _, p := range paths {
						code, _, body := get(t, h, p)
						if code != http.StatusOK {
							t.Fatalf("%s %s: status %d (%s)", kind, p, code, body)
						}
						got[p] = body
					}
					if want == nil {
						want = got
						continue
					}
					for _, p := range paths {
						if got[p] != want[p] {
							t.Errorf("%s %s (shards=%d cache=%d round=%d): body %q != %q",
								kind, p, shards, cacheSize, round, got[p], want[p])
						}
					}
				}
			}
		}
	}
}

// TestSpreadWindow pins the window route: the body echoes the resolved
// window, horizon defaults to the snapshot's omega, the answer matches
// the summaries' own window estimate, and an exact snapshot answers 409
// (its maps hold only earliest influence times, not the versioned
// staircases a window query needs).
func TestSpreadWindow(t *testing.T) {
	sum := testApprox(t)
	s := New(Config{CacheSize: 16})
	s.LoadApprox(sum)
	h := s.Handler()

	code, _, body := get(t, h, "/spreadwindow?seeds=0&at=100&horizon=150")
	if code != http.StatusOK {
		t.Fatalf("status %d (%s)", code, body)
	}
	var v struct {
		At      int64   `json:"at"`
		Horizon int64   `json:"horizon"`
		Spread  float64 `json:"spread"`
	}
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.At != 100 || v.Horizon != 150 {
		t.Fatalf("window echoed as at=%d horizon=%d, want 100 and 150", v.At, v.Horizon)
	}
	if want := sum.SpreadEstimateWindow([]graph.NodeID{0}, 100, 150); v.Spread != want {
		t.Fatalf("spread %v, want the summaries' own estimate %v", v.Spread, want)
	}

	// A bare at resolves horizon to the snapshot omega — one jumping-
	// window position of the width the summaries were built for.
	code, _, body = get(t, h, "/spreadwindow?seeds=0&at=100")
	if code != http.StatusOK {
		t.Fatalf("default-horizon status %d (%s)", code, body)
	}
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.Horizon != sum.Omega {
		t.Fatalf("default horizon %d, want omega %d", v.Horizon, sum.Omega)
	}

	se := New(Config{})
	se.LoadExact(core.ComputeExact(testLog(t), 500))
	code, _, body = get(t, se.Handler(), "/spreadwindow?seeds=0&at=100")
	if code != http.StatusConflict {
		t.Fatalf("exact snapshot: status %d (%s), want 409", code, body)
	}
}

// TestCanonicalSeeds pins that equivalent seed-set spellings share one
// cache entry and one body.
func TestCanonicalSeeds(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{CacheSize: 16, Registry: reg})
	h := s.Handler()
	_, _, a := get(t, h, "/spread?seeds=2,1,0")
	_, _, b := get(t, h, "/spread?seeds=0,1,2,2,1")
	if a != b {
		t.Fatalf("equivalent seed sets differ: %q vs %q", a, b)
	}
	if !strings.Contains(a, `"seeds":[0,1,2]`) {
		t.Fatalf("response does not echo the canonical seed set: %q", a)
	}
	snap := reg.Snapshot()
	if hits, misses := snap[MetricCacheHits], snap[MetricCacheMisses]; hits != int64(1) || misses != int64(1) {
		t.Fatalf("hits=%v misses=%v, want 1 and 1", hits, misses)
	}
}

func TestAdmissionControl(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{
		MaxInflight:    1,
		QueueDepth:     1,
		RequestTimeout: 50 * time.Millisecond,
		Registry:       reg,
	})
	h := s.Handler()

	// Occupy the single inflight slot directly.
	if err := s.lim.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// One request fits in the queue and times out with 503.
	var wg sync.WaitGroup
	wg.Add(1)
	var queuedCode int
	var queuedHeader http.Header
	go func() {
		defer wg.Done()
		queuedCode, queuedHeader, _ = get(t, h, "/stats")
	}()
	// Wait for it to be queued, then overflow the queue: immediate 429.
	deadline := time.Now().Add(time.Second)
	for s.lim.waiting.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	code, header, body := get(t, h, "/stats")
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d (%s), want 429", code, body)
	}
	if header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	wg.Wait()
	if queuedCode != http.StatusServiceUnavailable {
		t.Fatalf("queued request: status %d, want 503", queuedCode)
	}
	if queuedHeader.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	s.lim.release()

	// Capacity restored: requests flow again.
	if code, _, _ := get(t, h, "/stats"); code != http.StatusOK {
		t.Fatalf("after release: status %d, want 200", code)
	}
	snap := reg.Snapshot()
	if snap[MetricShed+`{reason="queue_full"}`] != int64(1) || snap[MetricShed+`{reason="deadline"}`] != int64(1) {
		t.Fatalf("shed counters wrong: %v", snap)
	}
}

// TestReload drives the snapshot-file path: serve one snapshot, replace
// the file, POST /admin/reload, and watch the answers, generation, and
// cache change — all while readers hammer the server (exercised under
// -race in CI).
func TestReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "irs.bin")

	writeSnapshot := func(s *core.ApproxSummaries) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.WriteTo(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	writeSnapshot(testApprox(t))

	reg := obs.NewRegistry()
	s := New(Config{CacheSize: 16, Shards: 4, SnapshotPath: path, Registry: reg})
	if err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if g := s.Generation(); g != 1 {
		t.Fatalf("generation after first load = %d, want 1", g)
	}
	_, _, before := get(t, h, "/influence?node=0")

	// Readers hammer every route while the snapshot swaps underneath.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, p := range []string{"/influence?node=0", "/spread?seeds=0,1,2,3", "/stats"} {
					if code, _, body := get(t, h, p); code != http.StatusOK {
						t.Errorf("%s during reload: %d (%s)", p, code, body)
						return
					}
				}
			}
		}()
	}

	// New snapshot: a denser network where node 0 reaches everyone.
	l := graph.New(5)
	l.Add(0, 1, 100)
	l.Add(0, 2, 110)
	l.Add(0, 3, 120)
	l.Add(0, 4, 130)
	l.Sort()
	s2, err := core.ComputeApprox(l, 500, core.DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	writeSnapshot(s2)
	req := httptest.NewRequest(http.MethodPost, "/admin/reload", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/admin/reload: %d (%s)", rec.Code, rec.Body)
	}
	close(stop)
	wg.Wait()

	if g := s.Generation(); g != 2 {
		t.Fatalf("generation after reload = %d, want 2", g)
	}
	_, _, after := get(t, h, "/influence?node=0")
	if before == after {
		t.Fatalf("reload did not change the served snapshot: %q", after)
	}
	var v struct{ Influence float64 }
	if err := json.Unmarshal([]byte(after), &v); err != nil || v.Influence < 3 {
		t.Fatalf("post-reload influence of node 0 = %q, want ≈4", after)
	}
	if got := reg.Snapshot()[MetricReloads]; got != int64(2) {
		t.Fatalf("reload counter = %v, want 2", got)
	}
}

// TestReloadErrors pins that a failed reload keeps the old snapshot.
func TestReloadErrors(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: 4})
	if err := s.Reload(); err == nil {
		t.Fatal("Reload without SnapshotPath should fail")
	}
	s2 := New(Config{SnapshotPath: "/nonexistent/irs.bin"})
	s2.LoadApprox(testApprox(t))
	if err := s2.Reload(); err == nil {
		t.Fatal("Reload of missing file should fail")
	}
	if code, _, _ := get(t, s2.Handler(), "/stats"); code != http.StatusOK {
		t.Fatal("failed reload broke the serving snapshot")
	}
}

// TestShardedStoreMatchesOracle cross-checks the sharded spread/influence
// against the plain oracle on a larger random-ish log, for several shard
// counts.
func TestShardedStoreMatchesOracle(t *testing.T) {
	l := graph.New(64)
	tick := int64(0)
	for i := 0; i < 400; i++ {
		tick += int64(i%7 + 1)
		l.Add(graph.NodeID((i*13)%64), graph.NodeID((i*29+5)%64), graph.Time(tick))
	}
	l.Sort()
	sum, err := core.ComputeApprox(l, 300, core.DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	oracle := core.NewApproxOracle(sum)
	seeds := []graph.NodeID{3, 17, 42, 63, 0}
	for _, shards := range []int{1, 2, 7, 64} {
		st := newStore(shards)
		st.loadApprox(sum)
		if got, want := st.spread(seeds), oracle.Spread(seeds); got != want {
			t.Errorf("shards=%d: spread %v != oracle %v", shards, got, want)
		}
		for u := 0; u < 64; u++ {
			if got, want := st.influence(graph.NodeID(u)), oracle.InfluenceSize(graph.NodeID(u)); got != want {
				t.Errorf("shards=%d node %d: influence %v != %v", shards, u, got, want)
			}
		}
	}
}

// TestReadOnlyRefusesReload: a replica's read-only view refuses the
// mutating admin surface — snapshots arrive only through the in-process
// publish path — while query routes keep answering.
func TestReadOnlyRefusesReload(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: 4, SnapshotPath: "/nonexistent/irs.bin", ReadOnly: true})
	h := s.Handler()
	req := httptest.NewRequest(http.MethodPost, "/admin/reload", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusForbidden {
		t.Fatalf("/admin/reload on a read-only server: %d, want 403", rec.Code)
	}
	if code, _, _ := get(t, h, "/influence?node=0"); code != http.StatusOK {
		t.Fatal("read-only server stopped answering queries")
	}
	// The publish path still works: that is how replication feeds it.
	s.LoadApprox(testApprox(t))
	if g := s.Generation(); g != 2 {
		t.Fatalf("generation after publish = %d, want 2", g)
	}
}
