package serve

import (
	"container/list"
	"context"
	"sync"
)

// cache is a bounded LRU over rendered response bodies with single-flight
// deduplication: the first request for a key computes while concurrent
// requests for the same key wait on the entry and share the bytes.
// Entries are keyed on (route, canonical parameters, snapshot
// generation), so a reload can never serve stale bodies — old-generation
// keys simply stop being asked for (and purge drops them eagerly).
type cache struct {
	max int
	mu  sync.Mutex
	ll  *list.List // front = most recently used
	idx map[string]*list.Element
	mx  *metrics
}

// entry is one cache slot. done is closed when body/err are final; until
// then followers wait (bounded by their request context).
type entry struct {
	key  string
	done chan struct{}
	body []byte
	err  error
}

func newCache(max int, mx *metrics) *cache {
	return &cache{
		max: max,
		ll:  list.New(),
		idx: make(map[string]*list.Element, max),
		mx:  mx,
	}
}

// do returns the body for key, computing it with fn on a miss. Identical
// concurrent misses compute once; followers wait for the leader or give
// up when ctx expires. Errors are never cached: the failed entry is
// removed so the next request retries.
func (c *cache) do(ctx context.Context, key string, fn func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	if el, ok := c.idx[key]; ok {
		e := el.Value.(*entry)
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		select {
		case <-e.done:
		default:
			// Leader still computing: this request shares its result.
			c.mx.shared.Inc()
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if e.err != nil {
			return nil, e.err
		}
		c.mx.hits.Inc()
		return e.body, nil
	}
	// Miss: insert the in-flight entry, then compute outside the lock.
	c.mx.misses.Inc()
	e := &entry{key: key, done: make(chan struct{})}
	el := c.ll.PushFront(e)
	c.idx[key] = el
	for c.ll.Len() > c.max {
		c.evict(c.ll.Back())
	}
	c.mu.Unlock()

	e.body, e.err = fn()
	close(e.done)
	if e.err != nil {
		c.mu.Lock()
		// Drop the failed entry unless a purge/evict already did.
		if cur, ok := c.idx[key]; ok && cur == el {
			c.evict(el)
		}
		c.mu.Unlock()
	}
	return e.body, e.err
}

// evict removes one element; callers hold the lock. Evicting an in-flight
// entry is safe: its followers hold the *entry and still see the result,
// the key is just recomputable again.
func (c *cache) evict(el *list.Element) {
	if el == nil {
		return
	}
	c.ll.Remove(el)
	delete(c.idx, el.Value.(*entry).key)
	c.mx.evictions.Inc()
}

// purge empties the cache (after a snapshot reload). No-op on nil.
func (c *cache) purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.ll.Init()
	c.idx = make(map[string]*list.Element, c.max)
	c.mu.Unlock()
	c.mx.purges.Inc()
}

// len reports the live entry count (tests and the size gauge).
func (c *cache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	n := c.ll.Len()
	c.mu.Unlock()
	return n
}
