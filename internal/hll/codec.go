package hll

import (
	"bytes"
	"fmt"
)

// Binary format: 4-byte magic "HLL1", 1-byte precision, then the raw
// register array (2^precision bytes). The format is versioned through the
// magic so later revisions can coexist.
var hllMagic = [4]byte{'H', 'L', 'L', '1'}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(5 + len(s.registers))
	buf.Write(hllMagic[:])
	buf.WriteByte(s.precision)
	buf.Write(s.registers)
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 5 || !bytes.Equal(data[:4], hllMagic[:]) {
		return fmt.Errorf("hll: bad magic")
	}
	p := int(data[4])
	if p < MinPrecision || p > MaxPrecision {
		return fmt.Errorf("hll: bad precision %d", p)
	}
	want := 1 << p
	if len(data) != 5+want {
		return fmt.Errorf("hll: want %d register bytes, have %d", want, len(data)-5)
	}
	s.precision = uint8(p)
	s.registers = append([]uint8(nil), data[5:]...)
	for i, r := range s.registers {
		if int(r) > 64-p+1 {
			return fmt.Errorf("hll: register %d holds impossible rank %d", i, r)
		}
	}
	return nil
}
