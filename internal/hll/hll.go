// Package hll implements the HyperLogLog cardinality sketch of Flajolet,
// Fusy, Gandouet and Meunier (paper §3.2.1, reference [9]), from scratch on
// the standard library only.
//
// A sketch with β = 2^k cells approximates the number of distinct items
// inserted with a standard error of about 1.04/√β using β bytes of state.
// Two sketches over the same β merge by taking the cell-wise maximum, which
// is exactly the union operation the paper's influence oracle relies on
// (§4.1: "HyperLogLog sketch union requires taking the maximum at each
// bucket index").
//
// Items are 64-bit values; callers hash their domain values first (see
// Hash64). The first k bits of the hash select the cell, and the rank — the
// number of leading zeros of the remaining bits plus one — is what the cell
// stores.
package hll

import (
	"fmt"
	"math"
	"math/bits"
)

// MinPrecision and MaxPrecision bound the supported k = log2(β).
const (
	MinPrecision = 4
	MaxPrecision = 18
)

// Sketch is a HyperLogLog counter. The zero value is unusable; construct
// with New.
type Sketch struct {
	precision uint8   // k
	registers []uint8 // β = 2^k cells, each the max rank seen
}

// New returns an empty sketch with 2^precision cells. It returns an error
// if precision is outside [MinPrecision, MaxPrecision].
func New(precision int) (*Sketch, error) {
	if precision < MinPrecision || precision > MaxPrecision {
		return nil, fmt.Errorf("hll: precision %d outside [%d,%d]", precision, MinPrecision, MaxPrecision)
	}
	return &Sketch{
		precision: uint8(precision),
		registers: make([]uint8, 1<<precision),
	}, nil
}

// MustNew is New for statically known precisions; it panics on error.
func MustNew(precision int) *Sketch {
	s, err := New(precision)
	if err != nil {
		panic(err)
	}
	return s
}

// Precision returns k = log2(number of cells).
func (s *Sketch) Precision() int { return int(s.precision) }

// NumCells returns β, the number of cells.
func (s *Sketch) NumCells() int { return len(s.registers) }

// Split decomposes a 64-bit hash into the cell index ι(x) (the top k bits)
// and the rank ρ(x) (leading zeros of the remaining 64−k bits, plus one).
// The rank is capped at 64−k+1, which the estimator never distinguishes in
// practice.
func Split(hash uint64, precision int) (cell uint32, rank uint8) {
	cell = uint32(hash >> (64 - precision))
	rest := hash << precision
	// After the shift the low `precision` bits are zero; they must not
	// contribute to the rank, so cap explicitly.
	r := bits.LeadingZeros64(rest) + 1
	if max := 64 - precision + 1; r > max {
		r = max
	}
	return cell, uint8(r)
}

// AddHash inserts a pre-hashed item.
func (s *Sketch) AddHash(hash uint64) {
	cell, rank := Split(hash, int(s.precision))
	if rank > s.registers[cell] {
		s.registers[cell] = rank
	}
}

// Add inserts an item identified by a 64-bit value, hashing it first.
func (s *Sketch) Add(item uint64) { s.AddHash(Hash64(item)) }

// SetRegister raises cell to at least rank. It is the primitive the
// versioned sketch uses when collapsing a window into a plain HLL.
func (s *Sketch) SetRegister(cell uint32, rank uint8) {
	if rank > s.registers[cell] {
		s.registers[cell] = rank
	}
}

// Register returns the current rank stored in cell.
func (s *Sketch) Register(cell uint32) uint8 { return s.registers[cell] }

// Merge unions other into s (cell-wise maximum). Both sketches must share
// the same precision.
func (s *Sketch) Merge(other *Sketch) error {
	if other.precision != s.precision {
		return fmt.Errorf("hll: cannot merge precision %d into %d", other.precision, s.precision)
	}
	for i, r := range other.registers {
		if r > s.registers[i] {
			s.registers[i] = r
		}
	}
	return nil
}

// Clone returns a deep copy.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{precision: s.precision, registers: make([]uint8, len(s.registers))}
	copy(c.registers, s.registers)
	return c
}

// Reset empties the sketch.
func (s *Sketch) Reset() {
	for i := range s.registers {
		s.registers[i] = 0
	}
}

// Estimate returns the approximate number of distinct items inserted,
// using the bias-corrected raw estimate with small-range linear counting,
// as in Flajolet et al.
func (s *Sketch) Estimate() float64 {
	return EstimateRegisters(s.registers)
}

// exp2neg[r] = 2^−r for every possible register value. Ranks are exact
// binary exponents, so the table entries are the same float64s math.Exp2
// produces call by call — estimates are bit-identical, minus a ~10 ns
// transcendental call per register on the summation hot path.
var exp2neg = func() (t [256]float64) {
	for i := range t {
		t[i] = math.Exp2(-float64(i))
	}
	return t
}()

// EstimateRegisters runs the HyperLogLog estimator over a raw register
// array (whose length must be a power of two). It is shared with the
// versioned sketch, which materializes windowed register arrays.
func EstimateRegisters(registers []uint8) float64 {
	m := float64(len(registers))
	var sum float64
	zeros := 0
	for _, r := range registers {
		sum += exp2neg[r]
		if r == 0 {
			zeros++
		}
	}
	raw := alpha(len(registers)) * m * m / sum
	// Small-range correction: fall back to linear counting while any cell
	// is still empty and the raw estimate is below the 5/2·m threshold.
	if raw <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return raw
}

// alpha is the bias-correction constant α_m from Flajolet et al.
func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// MemoryBytes returns the payload size of the sketch: one byte per cell.
func (s *Sketch) MemoryBytes() int { return len(s.registers) }

// Hash64 maps a 64-bit value to a well-mixed 64-bit hash using the
// splitmix64 finalizer. It is deterministic across runs, which keeps every
// experiment in this repository reproducible.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashString maps a string to a 64-bit hash (FNV-1a folded through
// Hash64), for callers whose items are external identifiers.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return Hash64(h)
}
