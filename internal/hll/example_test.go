package hll_test

import (
	"fmt"

	"ipin/internal/hll"
)

// Counting a million distinct items in 512 bytes.
func ExampleSketch() {
	s := hll.MustNew(9) // β = 2^9 = 512 cells
	for i := 0; i < 1_000_000; i++ {
		s.Add(uint64(i))
	}
	est := s.Estimate()
	fmt.Println(est > 900_000 && est < 1_100_000)
	fmt.Println(s.MemoryBytes())
	// Output:
	// true
	// 512
}

// Sketches over the same precision union by cell-wise maximum.
func ExampleSketch_Merge() {
	a, b := hll.MustNew(9), hll.MustNew(9)
	for i := 0; i < 1000; i++ {
		a.Add(uint64(i))
		b.Add(uint64(i + 500)) // overlap: 500..999
	}
	if err := a.Merge(b); err != nil {
		panic(err)
	}
	est := a.Estimate()
	fmt.Println(est > 1350 && est < 1650) // ≈1500 distinct
	// Output:
	// true
}
