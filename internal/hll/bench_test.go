package hll

import "testing"

func BenchmarkAdd(b *testing.B) {
	s := MustNew(9)
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i))
	}
}

func BenchmarkEstimate(b *testing.B) {
	s := MustNew(9)
	for i := 0; i < 100000; i++ {
		s.Add(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Estimate()
	}
}

func BenchmarkMerge(b *testing.B) {
	x, y := MustNew(9), MustNew(9)
	for i := 0; i < 50000; i++ {
		x.Add(uint64(i))
		y.Add(uint64(i + 25000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Merge into a clone so the target does not saturate.
		_ = x.Clone().Merge(y)
	}
}

func BenchmarkHash64(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= Hash64(uint64(i))
	}
	benchSink = acc
}

var benchSink uint64
