package hll

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidatesPrecision(t *testing.T) {
	if _, err := New(MinPrecision - 1); err == nil {
		t.Error("precision below minimum accepted")
	}
	if _, err := New(MaxPrecision + 1); err == nil {
		t.Error("precision above maximum accepted")
	}
	s, err := New(9)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumCells() != 512 || s.Precision() != 9 {
		t.Fatalf("NumCells=%d Precision=%d", s.NumCells(), s.Precision())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestSplitProperties(t *testing.T) {
	for _, p := range []int{4, 9, 14} {
		maxRank := uint8(64 - p + 1)
		for x := uint64(0); x < 4096; x++ {
			cell, rank := Split(Hash64(x), p)
			if cell >= uint32(1)<<p {
				t.Fatalf("p=%d x=%d: cell %d out of range", p, x, cell)
			}
			if rank < 1 || rank > maxRank {
				t.Fatalf("p=%d x=%d: rank %d out of range [1,%d]", p, x, rank, maxRank)
			}
		}
	}
	// An all-zero remainder hits the cap exactly.
	if _, rank := Split(0, 9); rank != 64-9+1 {
		t.Fatalf("zero-hash rank = %d, want %d", rank, 64-9+1)
	}
}

func TestEstimateAccuracy(t *testing.T) {
	// Standard error is ~1.04/sqrt(beta); allow 5 sigma.
	cases := []struct {
		precision int
		n         int
	}{
		{9, 100},
		{9, 1000},
		{9, 50000},
		{7, 10000},
		{12, 100000},
	}
	for _, tc := range cases {
		s := MustNew(tc.precision)
		for i := 0; i < tc.n; i++ {
			s.Add(uint64(i))
		}
		est := s.Estimate()
		tol := 5 * 1.04 / math.Sqrt(float64(s.NumCells()))
		if rel := math.Abs(est-float64(tc.n)) / float64(tc.n); rel > tol {
			t.Errorf("p=%d n=%d: estimate %.1f (rel err %.3f > tol %.3f)", tc.precision, tc.n, est, rel, tol)
		}
	}
}

func TestEstimateSmallRangeIsNearExact(t *testing.T) {
	// Linear counting keeps tiny cardinalities nearly exact.
	s := MustNew(9)
	for i := 0; i < 10; i++ {
		s.Add(uint64(i * 7919))
	}
	if est := s.Estimate(); math.Abs(est-10) > 1.5 {
		t.Errorf("estimate %.2f for 10 items", est)
	}
}

func TestEmptyEstimateIsZero(t *testing.T) {
	if est := MustNew(9).Estimate(); est != 0 {
		t.Fatalf("empty sketch estimate %.3f, want 0", est)
	}
}

func TestDuplicatesDoNotChangeSketch(t *testing.T) {
	a := MustNew(9)
	for i := 0; i < 1000; i++ {
		a.Add(uint64(i))
	}
	before := a.Estimate()
	for i := 0; i < 1000; i++ {
		a.Add(uint64(i))
	}
	if after := a.Estimate(); after != before {
		t.Fatalf("duplicates changed estimate %.3f → %.3f", before, after)
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	a, b, u := MustNew(9), MustNew(9), MustNew(9)
	for i := 0; i < 5000; i++ {
		a.Add(uint64(i))
		u.Add(uint64(i))
	}
	for i := 2500; i < 7500; i++ {
		b.Add(uint64(i))
		u.Add(uint64(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got, want := a.Estimate(), u.Estimate(); got != want {
		t.Fatalf("merged estimate %.3f != union estimate %.3f", got, want)
	}
}

func TestMergePrecisionMismatch(t *testing.T) {
	if err := MustNew(9).Merge(MustNew(10)); err == nil {
		t.Fatal("precision mismatch not rejected")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := MustNew(6)
	a.Add(1)
	c := a.Clone()
	c.Add(2)
	c.Add(3)
	if a.Estimate() == c.Estimate() {
		t.Fatal("clone shares registers")
	}
}

func TestResetAndMemory(t *testing.T) {
	s := MustNew(6)
	for i := 0; i < 100; i++ {
		s.Add(uint64(i))
	}
	s.Reset()
	if est := s.Estimate(); est != 0 {
		t.Fatalf("estimate %.3f after Reset", est)
	}
	if got := s.MemoryBytes(); got != 64 {
		t.Fatalf("MemoryBytes = %d, want 64", got)
	}
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64(42) != Hash64(42) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(42) == Hash64(43) {
		t.Fatal("Hash64(42) == Hash64(43)")
	}
	// Golden value pins the hash across refactors: the sketches and every
	// experiment table depend on it.
	if got := Hash64(1); got != 0x910a2dec89025cc1 {
		t.Fatalf("Hash64(1) = %#x changed; sketches are no longer comparable across versions", got)
	}
}

func TestHashString(t *testing.T) {
	if HashString("alice") == HashString("bob") {
		t.Fatal("string hash collision on trivial input")
	}
	if HashString("alice") != HashString("alice") {
		t.Fatal("HashString not deterministic")
	}
}

// Property: merge is commutative and idempotent at the register level.
func TestMergePropertyQuick(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a1, b1 := MustNew(6), MustNew(6)
		a2, b2 := MustNew(6), MustNew(6)
		for _, x := range xs {
			a1.Add(uint64(x))
			a2.Add(uint64(x))
		}
		for _, y := range ys {
			b1.Add(uint64(y))
			b2.Add(uint64(y))
		}
		_ = a1.Merge(b1) // a ∪ b
		_ = b2.Merge(a2) // b ∪ a
		if a1.Estimate() != b2.Estimate() {
			return false
		}
		// Idempotence: merging again changes nothing.
		before := a1.Estimate()
		_ = a1.Merge(b1)
		return a1.Estimate() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: registers never decrease as items are added (the estimator
// itself is allowed a small discontinuity where linear counting hands
// over to the raw formula, so the register level is the right invariant),
// and the estimate never drifts far below its running maximum.
func TestRegistersMonotoneQuick(t *testing.T) {
	f := func(xs []uint32) bool {
		s := MustNew(6)
		prev := make([]uint8, s.NumCells())
		peak := 0.0
		for _, x := range xs {
			s.Add(uint64(x))
			for c := uint32(0); c < uint32(s.NumCells()); c++ {
				if s.Register(c) < prev[c] {
					return false
				}
				prev[c] = s.Register(c)
			}
			est := s.Estimate()
			if est < 0.8*peak-1 {
				return false
			}
			if est > peak {
				peak = est
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
