package hll

import "testing"

func TestSketchRoundTrip(t *testing.T) {
	s := MustNew(8)
	for i := 0; i < 10000; i++ {
		s.Add(uint64(i))
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Sketch
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Precision() != 8 {
		t.Fatalf("precision %d after round trip", got.Precision())
	}
	if got.Estimate() != s.Estimate() {
		t.Fatal("estimate changed across round trip")
	}
}

func TestUnmarshalRejectsBadInput(t *testing.T) {
	var s Sketch
	if err := s.UnmarshalBinary(nil); err == nil {
		t.Error("nil accepted")
	}
	if err := s.UnmarshalBinary([]byte{'H', 'L', 'L', '1', 3}); err == nil {
		t.Error("precision below minimum accepted")
	}
	good, err := MustNew(4).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.UnmarshalBinary(good[:len(good)-1]); err == nil {
		t.Error("truncated registers accepted")
	}
	// A register holding an impossible rank is rejected.
	bad := append([]byte(nil), good...)
	bad[5] = 255
	if err := s.UnmarshalBinary(bad); err == nil {
		t.Error("impossible register accepted")
	}
}
