// Package baseline implements the non-sketch seed-selection baselines the
// paper compares against in §6: PageRank (on the reversed static graph),
// High Degree, and Smart High Degree (greedy distinct-neighbour coverage,
// which the paper notes is the ω→minimal special case of IRS selection).
package baseline

import (
	"sort"

	"ipin/internal/graph"
)

// PageRankConfig carries the parameters the paper uses: restart
// probability 0.15 (damping 0.85) and an L1 stopping tolerance of 1e-4
// between successive iterations.
type PageRankConfig struct {
	Damping   float64
	Tolerance float64
	MaxIter   int
}

// DefaultPageRank is the configuration from the paper's evaluation.
func DefaultPageRank() PageRankConfig {
	return PageRankConfig{Damping: 0.85, Tolerance: 1e-4, MaxIter: 100}
}

// PageRank computes PageRank scores on s by power iteration with dangling
// mass redistributed uniformly. Scores sum to 1.
func PageRank(s *graph.Static, cfg PageRankConfig) []float64 {
	n := s.NumNodes
	if n == 0 {
		return nil
	}
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = 1.0 / float64(n)
	}
	base := (1 - cfg.Damping) / float64(n)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		dangling := 0.0
		for i := range next {
			next[i] = 0
		}
		for u := 0; u < n; u++ {
			adj := s.Out[u]
			if len(adj) == 0 {
				dangling += cur[u]
				continue
			}
			share := cur[u] / float64(len(adj))
			for _, v := range adj {
				next[v] += share
			}
		}
		spread := cfg.Damping * dangling / float64(n)
		var l1 float64
		for i := range next {
			next[i] = base + cfg.Damping*next[i] + spread
			d := next[i] - cur[i]
			if d < 0 {
				d = -d
			}
			l1 += d
		}
		cur, next = next, cur
		if l1 < cfg.Tolerance {
			break
		}
	}
	return cur
}

// TopKPageRank selects the k highest-PageRank nodes of the REVERSED static
// projection of l, the transformation the paper applies so that incoming
// importance measures outgoing influence (§6).
func TopKPageRank(l *graph.Log, k int, cfg PageRankConfig) []graph.NodeID {
	scores := PageRank(graph.StaticFrom(l).Reversed(), cfg)
	return TopKByScore(scores, k)
}

// TopKByScore returns the k indices with the highest scores, ties broken
// by smaller NodeID for determinism.
func TopKByScore(scores []float64, k int) []graph.NodeID {
	order := make([]graph.NodeID, len(scores))
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sort.SliceStable(order, func(i, j int) bool { return scores[order[i]] > scores[order[j]] })
	if k > len(order) {
		k = len(order)
	}
	return order[:k]
}

// TopKHighDegree selects the k nodes with the most distinct out-neighbours
// in the static projection (the paper's HD baseline).
func TopKHighDegree(s *graph.Static, k int) []graph.NodeID {
	scores := make([]float64, s.NumNodes)
	for u := range scores {
		scores[u] = float64(s.OutDegree(graph.NodeID(u)))
	}
	return TopKByScore(scores, k)
}

// TopKSmartHighDegree selects k nodes greedily maximizing the number of
// DISTINCT covered out-neighbours (the paper's SHD baseline): at each step
// the node adding the most uncovered neighbours wins. Candidates are
// scanned in descending degree order with the same early-exit as the IRS
// greedy — a node's marginal gain never exceeds its degree.
func TopKSmartHighDegree(s *graph.Static, k int) []graph.NodeID {
	n := s.NumNodes
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return s.OutDegree(order[i]) > s.OutDegree(order[j])
	})
	if k > n {
		k = n
	}
	covered := make([]bool, n)
	chosen := make([]bool, n)
	selected := make([]graph.NodeID, 0, k)
	for len(selected) < k {
		best := graph.NodeID(-1)
		bestGain := 0
		for _, u := range order {
			if chosen[u] {
				continue
			}
			if bestGain >= s.OutDegree(u) {
				break
			}
			g := 0
			for _, v := range s.Out[u] {
				if !covered[v] {
					g++
				}
			}
			if g > bestGain {
				bestGain = g
				best = u
			}
		}
		if best < 0 {
			for _, u := range order {
				if !chosen[u] {
					best = u
					break
				}
			}
			if best < 0 {
				break
			}
		}
		chosen[best] = true
		for _, v := range s.Out[best] {
			covered[v] = true
		}
		selected = append(selected, best)
	}
	return selected
}
