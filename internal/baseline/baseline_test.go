package baseline

import (
	"math"
	"testing"

	"ipin/internal/graph"
)

// lineStatic builds the static projection of a simple directed path
// 0→1→2→3.
func lineStatic() *graph.Static {
	l := graph.New(4)
	l.Add(0, 1, 1)
	l.Add(1, 2, 2)
	l.Add(2, 3, 3)
	l.Sort()
	return graph.StaticFrom(l)
}

func TestPageRankSumsToOne(t *testing.T) {
	pr := PageRank(lineStatic(), DefaultPageRank())
	sum := 0.0
	for _, v := range pr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("PageRank sums to %.8f", sum)
	}
}

func TestPageRankOrderOnPath(t *testing.T) {
	// On 0→1→2→3 importance accumulates downstream: pr(3) > pr(2) >
	// pr(1) > pr(0)? Node 3 is dangling; mass flows 0→1→2→3 and recycles.
	pr := PageRank(lineStatic(), DefaultPageRank())
	if !(pr[3] > pr[2] && pr[2] > pr[1] && pr[1] > pr[0]) {
		t.Fatalf("PageRank order wrong: %v", pr)
	}
}

func TestPageRankStarCenter(t *testing.T) {
	// Edges all point INTO node 0: it must dominate.
	l := graph.New(5)
	for v := 1; v < 5; v++ {
		l.Add(graph.NodeID(v), 0, graph.Time(v))
	}
	l.Sort()
	pr := PageRank(graph.StaticFrom(l), DefaultPageRank())
	for v := 1; v < 5; v++ {
		if pr[0] <= pr[v] {
			t.Fatalf("star center pr %.4f not above leaf pr %.4f", pr[0], pr[v])
		}
	}
}

func TestPageRankRespectsMaxIter(t *testing.T) {
	// A two-node cycle with tolerance 0 would iterate forever without the
	// MaxIter bound; scores still normalize.
	l := graph.New(2)
	l.Add(0, 1, 1)
	l.Add(1, 0, 2)
	l.Sort()
	pr := PageRank(graph.StaticFrom(l), PageRankConfig{Damping: 0.85, Tolerance: 0, MaxIter: 25})
	if math.Abs(pr[0]+pr[1]-1) > 1e-9 {
		t.Fatalf("scores sum to %g", pr[0]+pr[1])
	}
	if math.Abs(pr[0]-pr[1]) > 1e-9 {
		t.Fatalf("symmetric cycle has asymmetric scores: %v", pr)
	}
}

func TestPageRankEmptyGraph(t *testing.T) {
	if pr := PageRank(&graph.Static{}, DefaultPageRank()); pr != nil {
		t.Fatalf("PageRank on empty graph = %v, want nil", pr)
	}
}

func TestTopKPageRankReversesEdges(t *testing.T) {
	// Interactions flow OUT of node 0 into everything; after the paper's
	// edge reversal node 0 collects all importance and must rank first.
	l := graph.New(5)
	for v := 1; v < 5; v++ {
		l.Add(0, graph.NodeID(v), graph.Time(v))
	}
	l.Sort()
	seeds := TopKPageRank(l, 1, DefaultPageRank())
	if len(seeds) != 1 || seeds[0] != 0 {
		t.Fatalf("TopKPageRank = %v, want [0]", seeds)
	}
}

func TestTopKByScoreTiesAreDeterministic(t *testing.T) {
	scores := []float64{1, 3, 3, 2}
	got := TopKByScore(scores, 3)
	want := []graph.NodeID{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopKByScore = %v, want %v", got, want)
		}
	}
	// k beyond n clamps.
	if got := TopKByScore(scores, 99); len(got) != 4 {
		t.Fatalf("clamp failed: %v", got)
	}
}

func TestTopKHighDegree(t *testing.T) {
	l := graph.New(6)
	// Node 0 → {1,2,3}; node 1 → {2,3}; node 2 → {3}.
	l.Add(0, 1, 1)
	l.Add(0, 2, 2)
	l.Add(0, 3, 3)
	l.Add(1, 2, 4)
	l.Add(1, 3, 5)
	l.Add(2, 3, 6)
	// Repeats must not inflate the degree.
	l.Add(2, 3, 7)
	l.Sort()
	s := graph.StaticFrom(l)
	got := TopKHighDegree(s, 3)
	want := []graph.NodeID{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HD = %v, want %v", got, want)
		}
	}
}

func TestSmartHighDegreePrefersDisjointCoverage(t *testing.T) {
	// Node 0 covers {1,2,3}; node 4 covers {2,3} (subset of 0's); node 5
	// covers {6,7}. Plain HD picks {0,4}; SHD must pick {0,5}.
	l := graph.New(8)
	l.Add(0, 1, 1)
	l.Add(0, 2, 2)
	l.Add(0, 3, 3)
	l.Add(4, 2, 4)
	l.Add(4, 3, 5)
	l.Add(5, 6, 6)
	l.Add(5, 7, 7)
	l.Sort()
	s := graph.StaticFrom(l)

	hd := TopKHighDegree(s, 2)
	if hd[0] != 0 || (hd[1] != 4 && hd[1] != 5) {
		t.Fatalf("HD = %v", hd)
	}
	shd := TopKSmartHighDegree(s, 2)
	if shd[0] != 0 || shd[1] != 5 {
		t.Fatalf("SHD = %v, want [0 5]", shd)
	}
}

func TestSmartHighDegreeFillsWhenCoverageExhausts(t *testing.T) {
	l := graph.New(4)
	l.Add(0, 1, 1)
	l.Sort()
	s := graph.StaticFrom(l)
	got := TopKSmartHighDegree(s, 3)
	if len(got) != 3 {
		t.Fatalf("got %d seeds, want 3", len(got))
	}
	seen := map[graph.NodeID]bool{}
	for _, u := range got {
		if seen[u] {
			t.Fatalf("duplicate seed in %v", got)
		}
		seen[u] = true
	}
}
