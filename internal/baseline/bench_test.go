package baseline

import (
	"math/rand"
	"testing"

	"ipin/internal/graph"
)

var benchStatic = func() *graph.Static {
	rng := rand.New(rand.NewSource(9))
	l := graph.New(5000)
	for i := 0; i < 50000; i++ {
		l.Add(graph.NodeID(rng.Intn(5000)), graph.NodeID(rng.Intn(5000)), graph.Time(i+1))
	}
	l.Sort()
	return graph.StaticFrom(l)
}()

func BenchmarkPageRank(b *testing.B) {
	cfg := DefaultPageRank()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = PageRank(benchStatic, cfg)
	}
}

func BenchmarkSmartHighDegree50(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = TopKSmartHighDegree(benchStatic, 50)
	}
}
