package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"ipin/internal/graph"
	"ipin/internal/vhll"
)

// foldBytes encodes summaries to their canonical IRX1 bytes.
func foldBytes(t *testing.T, s *ApproxSummaries) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

// appendRandomChunks slices l into random contiguous chunks and appends
// each; returns the builder.
func appendRandomChunks(t *testing.T, rng *rand.Rand, l *graph.Log, omega int64, precision int) *IncrementalApprox {
	t.Helper()
	inc, err := NewIncrementalApprox(omega, precision, l.NumNodes)
	if err != nil {
		t.Fatal(err)
	}
	edges := l.Interactions
	for lo := 0; lo < len(edges); {
		hi := lo + 1 + rng.Intn(len(edges)-lo)
		if err := inc.AppendChunk(edges[lo:hi], l.NumNodes); err != nil {
			t.Fatalf("AppendChunk[%d:%d]: %v", lo, hi, err)
		}
		lo = hi
	}
	return inc
}

// TestIncrementalFoldIdentity: folding randomly sized sealed chunks must
// reproduce the sequential one-pass scan byte for byte, across windows
// from a single tick to beyond the whole span (the latter defeats the
// boundary walk's early break, exercising full-chunk stitches).
func TestIncrementalFoldIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		m := 1 + rng.Intn(400)
		l := randomLog(rng, n, m)
		for _, omega := range []int64{1, 3, int64(m/4 + 1), int64(m) + 10} {
			want := foldBytes(t, mustApprox(t, l, omega, 4))
			inc := appendRandomChunks(t, rng, l, omega, 4)
			got := foldBytes(t, inc.View().Fold())
			if !bytes.Equal(got, want) {
				t.Fatalf("trial %d omega %d: fold differs from ComputeApprox (n=%d m=%d chunks=%d)",
					trial, omega, n, m, inc.NumChunks())
			}
		}
	}
}

func mustApprox(t *testing.T, l *graph.Log, omega int64, precision int) *ApproxSummaries {
	t.Helper()
	s, err := ComputeApprox(l, omega, precision)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestIncrementalFoldDoesNotMutateChunks: a fold must leave the cached
// block-local state intact, so folding again — with or without more
// chunks in between — still matches the offline scan over the covered
// prefix.
func TestIncrementalFoldDoesNotMutateChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := randomLog(rng, 25, 300)
	const omega = 40
	inc, err := NewIncrementalApprox(omega, 4, l.NumNodes)
	if err != nil {
		t.Fatal(err)
	}
	edges := l.Interactions
	cut := len(edges) / 3
	if err := inc.AppendChunk(edges[:cut], l.NumNodes); err != nil {
		t.Fatal(err)
	}
	prefix := &graph.Log{NumNodes: l.NumNodes, Interactions: edges[:cut]}
	wantPrefix := foldBytes(t, mustApprox(t, prefix, omega, 4))
	first := foldBytes(t, inc.View().Fold())
	if !bytes.Equal(first, wantPrefix) {
		t.Fatal("first fold differs from offline prefix scan")
	}
	// Fold the same view again: identical, so the first fold mutated
	// nothing it shouldn't have.
	if again := foldBytes(t, inc.View().Fold()); !bytes.Equal(again, first) {
		t.Fatal("refold of the same view differs")
	}
	if err := inc.AppendChunk(edges[cut:], l.NumNodes); err != nil {
		t.Fatal(err)
	}
	wantFull := foldBytes(t, mustApprox(t, l, omega, 4))
	if got := foldBytes(t, inc.View().Fold()); !bytes.Equal(got, wantFull) {
		t.Fatal("fold after further appends differs from offline full scan")
	}
}

// TestIncrementalFoldConcurrentWithAppend: a snapshot taken with View
// may fold on another goroutine while the owner seals more chunks — the
// compactor/ingester split of internal/stream. Run under -race.
func TestIncrementalFoldConcurrentWithAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	l := randomLog(rng, 30, 2000)
	const omega = 100
	inc, err := NewIncrementalApprox(omega, 4, l.NumNodes)
	if err != nil {
		t.Fatal(err)
	}
	edges := l.Interactions
	half := len(edges) / 2
	if err := inc.AppendChunk(edges[:half], l.NumNodes); err != nil {
		t.Fatal(err)
	}
	view := inc.View()
	var wg sync.WaitGroup
	var folded *ApproxSummaries
	wg.Add(1)
	go func() {
		defer wg.Done()
		folded = view.Fold()
	}()
	for lo := half; lo < len(edges); {
		hi := lo + 100
		if hi > len(edges) {
			hi = len(edges)
		}
		if err := inc.AppendChunk(edges[lo:hi], l.NumNodes); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
	wg.Wait()
	prefix := &graph.Log{NumNodes: l.NumNodes, Interactions: edges[:half]}
	if !bytes.Equal(foldBytes(t, folded), foldBytes(t, mustApprox(t, prefix, omega, 4))) {
		t.Fatal("concurrent fold differs from offline prefix scan")
	}
	if got := foldBytes(t, inc.View().Fold()); !bytes.Equal(got, foldBytes(t, mustApprox(t, l, omega, 4))) {
		t.Fatal("final fold differs from offline full scan")
	}
}

// TestIncrementalGrowNodes: later chunks may widen the node range; the
// fold matches an offline scan over the final range.
func TestIncrementalGrowNodes(t *testing.T) {
	inc, err := NewIncrementalApprox(10, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.AppendChunk([]graph.Interaction{{Src: 0, Dst: 1, At: 1}}, 2); err != nil {
		t.Fatal(err)
	}
	if err := inc.AppendChunk([]graph.Interaction{{Src: 1, Dst: 4, At: 3}, {Src: 4, Dst: 3, At: 5}}, 5); err != nil {
		t.Fatal(err)
	}
	if inc.NumNodes() != 5 || inc.EdgeCount() != 3 || inc.LastAt() != 5 {
		t.Fatalf("state = %d nodes, %d edges, last %d", inc.NumNodes(), inc.EdgeCount(), inc.LastAt())
	}
	l := graph.New(5)
	l.Add(0, 1, 1)
	l.Add(1, 4, 3)
	l.Add(4, 3, 5)
	if !bytes.Equal(foldBytes(t, inc.View().Fold()), foldBytes(t, mustApprox(t, l, 10, 4))) {
		t.Fatal("grown fold differs from offline scan")
	}
}

// TestFoldCacheIncrementalIdentity: folding after EVERY appended chunk —
// so each fold past the first takes the cached-delta path, chained on
// the previous fold's cache — must stay byte-identical to the offline
// one-pass scan over the covered prefix, across windows from one tick to
// beyond the whole span. This is the property that licenses amortized
// checkpoints in internal/stream.
func TestFoldCacheIncrementalIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(40)
		m := 1 + rng.Intn(400)
		l := randomLog(rng, n, m)
		for _, omega := range []int64{1, 3, int64(m/4 + 1), int64(m) + 10} {
			inc, err := NewIncrementalApprox(omega, 4, l.NumNodes)
			if err != nil {
				t.Fatal(err)
			}
			edges := l.Interactions
			for lo := 0; lo < len(edges); {
				hi := lo + 1 + rng.Intn(len(edges)-lo)
				if err := inc.AppendChunk(edges[lo:hi], l.NumNodes); err != nil {
					t.Fatalf("AppendChunk[%d:%d]: %v", lo, hi, err)
				}
				prefix := &graph.Log{NumNodes: l.NumNodes, Interactions: edges[:hi]}
				want := foldBytes(t, mustApprox(t, prefix, omega, 4))
				if got := foldBytes(t, inc.View().Fold()); !bytes.Equal(got, want) {
					t.Fatalf("trial %d omega %d: cached fold over edges[:%d] differs from ComputeApprox (n=%d m=%d chunks=%d)",
						trial, omega, hi, n, m, inc.NumChunks())
				}
				lo = hi
			}
		}
	}
}

// TestFoldCacheGrowNodes: the delta path must stay identical when new
// chunks widen the node range past the cached summaries' length.
func TestFoldCacheGrowNodes(t *testing.T) {
	inc, err := NewIncrementalApprox(10, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.AppendChunk([]graph.Interaction{{Src: 0, Dst: 1, At: 1}}, 2); err != nil {
		t.Fatal(err)
	}
	_ = inc.View().Fold() // cache covers 1 chunk over 2 nodes
	if err := inc.AppendChunk([]graph.Interaction{{Src: 1, Dst: 4, At: 3}, {Src: 4, Dst: 3, At: 5}}, 5); err != nil {
		t.Fatal(err)
	}
	l := graph.New(5)
	l.Add(0, 1, 1)
	l.Add(1, 4, 3)
	l.Add(4, 3, 5)
	if !bytes.Equal(foldBytes(t, inc.View().Fold()), foldBytes(t, mustApprox(t, l, 10, 4))) {
		t.Fatal("cached fold across node growth differs from offline scan")
	}
}

// TestSeedFoldCache: priming a fresh builder's cache from a decoded
// checkpoint (the recovery path) must make later folds byte-identical to
// both the offline scan and an unseeded fold.
func TestSeedFoldCache(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	l := randomLog(rng, 30, 400)
	const omega, prec = 50, 4
	edges := l.Interactions
	cut := len(edges) / 2

	build := func(upto int) *IncrementalApprox {
		inc, err := NewIncrementalApprox(omega, prec, l.NumNodes)
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < upto; {
			hi := lo + 37
			if hi > upto {
				hi = upto
			}
			if err := inc.AppendChunk(edges[lo:hi], l.NumNodes); err != nil {
				t.Fatal(err)
			}
			lo = hi
		}
		return inc
	}

	// Checkpoint the first half, round-trip it through the codec.
	first := build(cut)
	ckpt := foldBytes(t, first.View().Fold())
	decoded, err := ReadApproxSummaries(bytes.NewReader(ckpt))
	if err != nil {
		t.Fatal(err)
	}

	// "Recover": rebuild the same chunks, seed the cache, append the rest.
	second := build(cut)
	chunks := second.NumChunks()
	if err := second.SeedFoldCache(decoded, chunks); err != nil {
		t.Fatalf("SeedFoldCache: %v", err)
	}
	for lo := cut; lo < len(edges); {
		hi := lo + 37
		if hi > len(edges) {
			hi = len(edges)
		}
		if err := second.AppendChunk(edges[lo:hi], l.NumNodes); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
	want := foldBytes(t, mustApprox(t, l, omega, prec))
	if got := foldBytes(t, second.View().Fold()); !bytes.Equal(got, want) {
		t.Fatal("seeded fold differs from offline scan")
	}
	// And the seeded prefix itself must reproduce the checkpoint.
	third := build(cut)
	if err := third.SeedFoldCache(decoded, third.NumChunks()); err != nil {
		t.Fatal(err)
	}
	if got := foldBytes(t, third.View().Fold()); !bytes.Equal(got, ckpt) {
		t.Fatal("seeded refold of the covered prefix differs from the checkpoint")
	}
}

func TestSeedFoldCacheValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	l := randomLog(rng, 10, 60)
	inc := appendRandomChunks(t, rng, l, 20, 4)
	sum := inc.View().Fold()
	if err := inc.SeedFoldCache(nil, 1); err == nil {
		t.Error("nil summaries accepted")
	}
	bad := *sum
	bad.Omega = 999
	if err := inc.SeedFoldCache(&bad, inc.NumChunks()); err == nil {
		t.Error("omega mismatch accepted")
	}
	bad = *sum
	bad.Precision = 9
	if err := inc.SeedFoldCache(&bad, inc.NumChunks()); err == nil {
		t.Error("precision mismatch accepted")
	}
	if err := inc.SeedFoldCache(sum, 0); err == nil {
		t.Error("zero chunk count accepted")
	}
	if err := inc.SeedFoldCache(sum, inc.NumChunks()+1); err == nil {
		t.Error("chunk count beyond builder accepted")
	}
	if err := inc.SeedFoldCache(sum, inc.NumChunks()); err != nil {
		t.Errorf("valid seed rejected: %v", err)
	}
}

// TestAppendSealedChunk: sealing a chunk with precomputed locals (the
// sidecar recovery path) must behave exactly like AppendChunk.
func TestAppendSealedChunk(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	l := randomLog(rng, 20, 200)
	const omega, prec = 30, 4
	edges := l.Interactions

	// Build once with AppendChunk to harvest the block-local sketches.
	donor, err := NewIncrementalApprox(omega, prec, l.NumNodes)
	if err != nil {
		t.Fatal(err)
	}
	var bounds []int
	for lo := 0; lo < len(edges); {
		hi := lo + 1 + rng.Intn(60)
		if hi > len(edges) {
			hi = len(edges)
		}
		if err := donor.AppendChunk(edges[lo:hi], l.NumNodes); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, hi)
		lo = hi
	}

	recovered, err := NewIncrementalApprox(omega, prec, l.NumNodes)
	if err != nil {
		t.Fatal(err)
	}
	dv := donor.View()
	for i := 0; i < dv.NumChunks(); i++ {
		ce, cl := dv.Chunk(i)
		if err := recovered.AppendSealedChunk(ce, cl, len(cl)); err != nil {
			t.Fatalf("AppendSealedChunk %d: %v", i, err)
		}
	}
	if recovered.EdgeCount() != donor.EdgeCount() || recovered.LastAt() != donor.LastAt() {
		t.Fatalf("recovered state %d/%d, donor %d/%d",
			recovered.EdgeCount(), recovered.LastAt(), donor.EdgeCount(), donor.LastAt())
	}
	want := foldBytes(t, mustApprox(t, l, omega, prec))
	if got := foldBytes(t, recovered.View().Fold()); !bytes.Equal(got, want) {
		t.Fatal("fold over sealed chunks differs from offline scan")
	}

	// Validation: locals length and precision must match.
	fresh, _ := NewIncrementalApprox(omega, prec, l.NumNodes)
	ce, cl := dv.Chunk(0)
	if err := fresh.AppendSealedChunk(ce, cl[:len(cl)-1], len(cl)); err == nil {
		t.Error("short locals accepted")
	}
	wrong := make([]*vhll.Sketch, len(cl))
	copy(wrong, cl)
	wrong[0] = vhll.MustNew(prec + 1)
	if err := fresh.AppendSealedChunk(ce, wrong, len(cl)); err == nil {
		t.Error("wrong-precision local accepted")
	}
}

func TestAppendChunkValidation(t *testing.T) {
	inc, err := NewIncrementalApprox(10, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.AppendChunk(nil, 3); err == nil {
		t.Error("empty chunk accepted")
	}
	if err := inc.AppendChunk([]graph.Interaction{{Src: 0, Dst: 5, At: 1}}, 3); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := inc.AppendChunk([]graph.Interaction{{Src: 0, Dst: 1, At: 2}, {Src: 1, Dst: 2, At: 2}}, 3); err == nil {
		t.Error("tied timestamps accepted")
	}
	if err := inc.AppendChunk([]graph.Interaction{{Src: 0, Dst: 1, At: 2}}, 3); err != nil {
		t.Fatal(err)
	}
	if err := inc.AppendChunk([]graph.Interaction{{Src: 1, Dst: 2, At: 2}}, 3); err == nil {
		t.Error("chunk not after previous accepted")
	}
	if err := inc.AppendChunk([]graph.Interaction{{Src: 1, Dst: 2, At: 3}}, 2); err == nil {
		t.Error("shrinking node range accepted")
	}
	if _, err := NewIncrementalApprox(10, 99, 3); err == nil {
		t.Error("bad precision accepted")
	}
	if _, err := NewIncrementalApprox(0, 4, 3); err == nil {
		t.Error("zero omega accepted")
	}
}

// TestEmptyViewFold: a fold before any chunk yields empty summaries over
// the configured node range.
func TestEmptyViewFold(t *testing.T) {
	inc, err := NewIncrementalApprox(5, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := inc.View().Fold()
	if s.NumNodes() != 4 || s.EntryCount() != 0 {
		t.Fatalf("empty fold: %d nodes, %d entries", s.NumNodes(), s.EntryCount())
	}
}

// TestRetireFoldIdentity: after retiring the prefix below a horizon, the
// fold over the retained suffix must be byte-identical to the offline
// scan over exactly those edges — retirement sheds state without
// perturbing what remains, across random chunkings and horizons.
func TestRetireFoldIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(30)
		m := 40 + rng.Intn(300)
		l := randomLog(rng, n, m)
		const omega = 20
		inc := appendRandomChunks(t, rng, l, omega, 4)
		horizon := int64(1 + rng.Intn(m+10))
		chunks, edges := inc.Retire(horizon)
		if edges != inc.RetiredEdges() {
			t.Fatalf("trial %d: Retire reported %d edges, accounting says %d", trial, edges, inc.RetiredEdges())
		}
		if chunks != inc.FirstChunk() {
			t.Fatalf("trial %d: Retire reported %d chunks, base moved to %d", trial, chunks, inc.FirstChunk())
		}
		// Chunk-granular horizon: every retired edge is strictly below it,
		// and every interaction at or after it is still covered.
		retained := l.Interactions[inc.RetiredEdges():]
		for _, e := range l.Interactions[:inc.RetiredEdges()] {
			if int64(e.At) >= horizon {
				t.Fatalf("trial %d: retired edge at %d >= horizon %d", trial, e.At, horizon)
			}
		}
		if inc.RetainedEdges() == 0 {
			continue // nothing left to fold; the stream layer never folds an empty view
		}
		want := foldBytes(t, mustApprox(t, &graph.Log{NumNodes: l.NumNodes, Interactions: retained}, omega, 4))
		if got := foldBytes(t, inc.View().Fold()); !bytes.Equal(got, want) {
			t.Fatalf("trial %d horizon %d: fold after Retire differs from offline scan over the retained %d edges",
				trial, horizon, len(retained))
		}
		// Idempotent: the same horizon retires nothing further.
		if c, e := inc.Retire(horizon); c != 0 || e != 0 {
			t.Fatalf("trial %d: second Retire(%d) shed %d chunks / %d edges", trial, horizon, c, e)
		}
	}
}

// TestFoldFromIdentity: FoldFrom(k) is the offline scan over the chunk
// suffix [k, NumChunks) — the exact window-restricted fold at chunk
// granularity — and rejects indices outside the retained range.
func TestFoldFromIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	l := randomLog(rng, 20, 200)
	const omega = 30
	inc, err := NewIncrementalApprox(omega, 4, l.NumNodes)
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 25
	for lo := 0; lo < len(l.Interactions); lo += chunk {
		hi := min(lo+chunk, len(l.Interactions))
		if err := inc.AppendChunk(l.Interactions[lo:hi], l.NumNodes); err != nil {
			t.Fatal(err)
		}
	}
	inc.Retire(int64(l.Interactions[60].At)) // move the base off zero
	v := inc.View()
	for from := v.FirstChunk(); from < v.NumChunks(); from++ {
		got, err := v.FoldFrom(from)
		if err != nil {
			t.Fatalf("FoldFrom(%d): %v", from, err)
		}
		suffix := &graph.Log{NumNodes: l.NumNodes, Interactions: l.Interactions[from*chunk:]}
		if !bytes.Equal(foldBytes(t, got), foldBytes(t, mustApprox(t, suffix, omega, 4))) {
			t.Fatalf("FoldFrom(%d) differs from offline scan over chunks [%d, %d)", from, from, v.NumChunks())
		}
	}
	for _, from := range []int{v.FirstChunk() - 1, v.NumChunks(), -1} {
		if _, err := v.FoldFrom(from); err == nil {
			t.Fatalf("FoldFrom(%d) accepted outside [%d, %d)", from, v.FirstChunk(), v.NumChunks())
		}
	}
}

// TestResumeAt: a fresh builder primed with ResumeAt and fed the retained
// chunks reproduces the retired builder's state — absolute indices, edge
// clocks, and fold bytes — and rejects being primed when non-empty.
func TestResumeAt(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	l := randomLog(rng, 15, 150)
	const omega, chunk = 25, 30
	a, err := NewIncrementalApprox(omega, 4, l.NumNodes)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(l.Interactions); lo += chunk {
		if err := a.AppendChunk(l.Interactions[lo:min(lo+chunk, len(l.Interactions))], l.NumNodes); err != nil {
			t.Fatal(err)
		}
	}
	a.Retire(int64(l.Interactions[70].At))
	if a.FirstChunk() == 0 {
		t.Fatal("fixture retired nothing")
	}

	b, err := NewIncrementalApprox(omega, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ResumeAt(a.FirstChunk(), a.RetiredEdges()); err != nil {
		t.Fatal(err)
	}
	av := a.View()
	for c := av.FirstChunk(); c < av.NumChunks(); c++ {
		edges, _ := av.Chunk(c)
		if err := b.AppendChunk(edges, l.NumNodes); err != nil {
			t.Fatalf("resumed append of chunk %d: %v", c, err)
		}
	}
	if b.FirstChunk() != a.FirstChunk() || b.NumChunks() != a.NumChunks() ||
		b.EdgeCount() != a.EdgeCount() || b.RetiredEdges() != a.RetiredEdges() {
		t.Fatalf("resumed clocks: first=%d chunks=%d edges=%d retired=%d, want first=%d chunks=%d edges=%d retired=%d",
			b.FirstChunk(), b.NumChunks(), b.EdgeCount(), b.RetiredEdges(),
			a.FirstChunk(), a.NumChunks(), a.EdgeCount(), a.RetiredEdges())
	}
	if !bytes.Equal(foldBytes(t, b.View().Fold()), foldBytes(t, a.View().Fold())) {
		t.Fatal("resumed fold differs from the retired builder's fold")
	}

	if err := b.ResumeAt(0, 0); err == nil {
		t.Fatal("ResumeAt accepted on a non-empty builder")
	}
	fresh, err := NewIncrementalApprox(omega, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.ResumeAt(-1, 0); err == nil {
		t.Fatal("negative firstChunk accepted")
	}
}
