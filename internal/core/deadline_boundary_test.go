package core

import (
	"math/rand"
	"testing"

	"ipin/internal/graph"
	"ipin/internal/hll"
)

// dagLog builds a log whose interactions all point from lower to higher
// node ids, so no temporal path ever returns to its origin: the sketches
// then hold no phantom self-cycle entries and can be compared register-
// for-register against references built from the exact summaries.
func dagLog(rng *rand.Rand, n, m int) *graph.Log {
	l := graph.New(n)
	for i := 0; i < m; i++ {
		src := graph.NodeID(rng.Intn(n - 1))
		dst := src + 1 + graph.NodeID(rng.Intn(n-int(src)-1))
		l.Add(src, dst, graph.Time(i+1))
	}
	l.Sort()
	return l
}

// TestDeadlineBoundaryParity pins the inclusive boundary convention of
// the deadline queries on BOTH representations: SpreadBy keeps λ ≤
// deadline, and CollapseBefore keeps sketch timestamps ≤ deadline. The
// deadlines probed are the λ values themselves (every one the end time of
// some admissible channel) and λ−1, so a node whose λ equals the deadline
// exactly must flip from excluded to included at that very tick in both
// representations. On an acyclic log the collapsed registers must equal a
// reference HyperLogLog fed exactly {v : λ(u,v) ≤ deadline} — any
// off-by-one between the two filters shows up as a register mismatch.
func TestDeadlineBoundaryParity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	l := dagLog(rng, 40, 400)
	const omega = 120
	es := ComputeExact(l, omega)
	as, err := ComputeApprox(l, omega, DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for u := 0; u < l.NumNodes; u++ {
		phi := es.Phi[graph.NodeID(u)]
		sk := as.Sketches[u]
		if phi == nil || sk == nil {
			continue
		}
		deadlines := make(map[graph.Time]struct{})
		for _, lambda := range phi {
			deadlines[lambda] = struct{}{}
			if lambda > 0 {
				deadlines[lambda-1] = struct{}{}
			}
		}
		for d := range deadlines {
			ref := hll.MustNew(as.Precision)
			want := 0
			for v, lambda := range phi {
				if lambda <= d {
					ref.AddHash(hll.Hash64(uint64(v)))
					want++
				}
			}
			if got := es.InfluenceSizeBy(graph.NodeID(u), d); got != want {
				t.Fatalf("node %d deadline %d: InfluenceSizeBy = %d, want %d", u, d, got, want)
			}
			collapsed := sk.CollapseBefore(int64(d))
			for c := 0; c < ref.NumCells(); c++ {
				if collapsed.Register(uint32(c)) != ref.Register(uint32(c)) {
					t.Fatalf("node %d deadline %d cell %d: collapsed register %d, reference %d — boundary conventions diverge",
						u, d, c, collapsed.Register(uint32(c)), ref.Register(uint32(c)))
				}
			}
			checked++
		}
	}
	if checked < 100 {
		t.Fatalf("only %d (node, deadline) pairs exercised; generator too sparse", checked)
	}
}
