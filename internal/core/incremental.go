package core

import (
	"fmt"
	"sync/atomic"

	"ipin/internal/graph"
	"ipin/internal/hll"
	"ipin/internal/obs"
	"ipin/internal/par"
	"ipin/internal/vhll"
)

// Incremental IRS construction over an interaction stream.
//
// The one-pass algorithms scan the log in REVERSE chronological order, so
// a live stream — which grows at the late end — cannot extend a finished
// scan directly: every new interaction would have to be processed before
// everything already seen. What does survive appends is the block
// decomposition of parallel.go: the log is kept partitioned into sealed,
// contiguous time chunks, each chunk carries its block-local reverse-scan
// sketches (computed once, when the chunk is sealed), and producing full
// summaries is a fold over the chunks — the same boundary stitch the
// parallel scan runs, against cached block-local state.
//
// Appending a chunk therefore costs one reverse scan of the NEW
// interactions only; a fold costs the boundary walks (bounded by ω around
// each chunk edge) plus per-node sketch merges, parallelized across the
// library worker pool. The fold is identical — not merely equivalent — to
// ComputeApprox over the concatenated chunks, by the same argument as the
// parallel scan: a versioned-HLL cell is a pure function of the inserted
// (rank, timestamp) pair set, independent of insertion order. The
// property tests in incremental_test.go pin byte-identical IRX1 output
// against the sequential scan on randomized logs and partitions.
//
// IncrementalApprox itself is not goroutine-safe: one owner appends.
// View() snapshots the sealed-chunk state into a ChunkView whose Fold may
// run on any goroutine, concurrently with further appends — sealed chunks
// are immutable and the fold only clones out of them. This split is what
// lets internal/stream keep ingesting while a background compactor folds
// a checkpoint.
//
// Folds are amortized: every Fold caches its per-node result together
// with the number of chunks it covered, and the next Fold over a view
// with more chunks reuses the cached summaries as the folded prefix. Only
// the new chunks are scanned, and their contribution propagates backward
// through the old chunks as a windowed delta — MergeWindow drops entries
// outside ω, so the backward walk terminates as soon as each chunk
// boundary falls out of the window. The cached and delta paths produce
// output byte-identical to a from-scratch fold (and therefore to
// ComputeApprox): a vHLL cell is a pure, order-independent function of
// its inserted (rank, timestamp) pair set, and the delta decomposition
// feeds every cell the same pair set along the same ω-bounded paths.
type IncrementalApprox struct {
	omega     int64
	precision int
	numNodes  int
	edgeCount int // total interactions ever sealed, including retired ones
	lastAt    graph.Time
	anchored  bool // a chunk has been sealed; lastAt bounds the next one
	hashes    []uint64
	chunks    []approxChunk // the retained chunks; chunks[0] has index firstChunk
	// firstChunk is the absolute index of chunks[0]: Retire advances it as
	// whole chunks age past the retention horizon. Chunk indices are
	// absolute everywhere in the API, so sidecar file names, fold-cache
	// tags, and checkpoint metadata stay stable across retirement.
	firstChunk   int
	retiredEdges int // interactions inside retired chunks
	cache        *cacheBox
}

// foldCache is the result of a completed fold: the per-node summaries
// covering absolute chunks [base, chunks). base is the firstChunk of the
// view that folded; a view whose retained range starts elsewhere cannot
// reuse the cache (sketches cannot subtract a retired prefix back out).
// The sketch slice is shared — with the ApproxSummaries handed to the
// caller and potentially with later folds' outputs — and is immutable by
// convention: folds clone before merging into any cached sketch.
type foldCache struct {
	base     int
	chunks   int
	sketches []*vhll.Sketch
}

// cacheBox shares the latest fold result between the appending owner and
// any number of concurrently folding views. Stores race benignly: a stale
// winner only costs the next fold some speed, never correctness, because
// every cache entry is a valid fold of a chunk prefix.
type cacheBox struct {
	p atomic.Pointer[foldCache]
}

// approxChunk is one sealed, immutable time slice of the stream: its
// interactions in ascending time order plus the block-local sketches of a
// reverse scan restricted to the slice. locals is indexed by NodeID and
// sized to the node count at seal time; nodes introduced by later chunks
// simply read as nil here.
type approxChunk struct {
	edges  []graph.Interaction
	locals []*vhll.Sketch
}

func (c *approxChunk) local(u graph.NodeID) *vhll.Sketch {
	if int(u) >= len(c.locals) {
		return nil
	}
	return c.locals[int(u)]
}

// NewIncrementalApprox returns an empty incremental builder for window
// omega and the given sketch precision, initially covering numNodes nodes
// (AppendChunk grows the node range as the stream introduces new IDs).
func NewIncrementalApprox(omega int64, precision, numNodes int) (*IncrementalApprox, error) {
	if precision < hll.MinPrecision || precision > hll.MaxPrecision {
		return nil, errPrecision(precision)
	}
	if omega < 1 {
		return nil, fmt.Errorf("core: omega must be >= 1, got %d", omega)
	}
	if numNodes < 0 {
		return nil, fmt.Errorf("core: negative node count %d", numNodes)
	}
	return &IncrementalApprox{omega: omega, precision: precision, numNodes: numNodes, cache: &cacheBox{}}, nil
}

// Omega returns the window the summaries are built with.
func (inc *IncrementalApprox) Omega() int64 { return inc.omega }

// Precision returns the sketch precision.
func (inc *IncrementalApprox) Precision() int { return inc.precision }

// NumNodes returns the current node range [0, n).
func (inc *IncrementalApprox) NumNodes() int { return inc.numNodes }

// EdgeCount returns the total number of interactions ever sealed,
// including those inside retired chunks — it is the stream's emit index
// and never decreases.
func (inc *IncrementalApprox) EdgeCount() int { return inc.edgeCount }

// RetainedEdges returns the number of interactions inside the retained
// chunks, the set a Fold actually covers.
func (inc *IncrementalApprox) RetainedEdges() int { return inc.edgeCount - inc.retiredEdges }

// RetiredEdges returns the number of interactions Retire has shed.
func (inc *IncrementalApprox) RetiredEdges() int { return inc.retiredEdges }

// LastAt returns the timestamp of the latest sealed interaction (zero
// before the first chunk; check EdgeCount to disambiguate).
func (inc *IncrementalApprox) LastAt() graph.Time { return inc.lastAt }

// NumChunks returns the total number of chunks ever sealed (retired ones
// included): absolute chunk indices run [0, NumChunks()), and the
// retained range is [FirstChunk(), NumChunks()).
func (inc *IncrementalApprox) NumChunks() int { return inc.firstChunk + len(inc.chunks) }

// FirstChunk returns the absolute index of the oldest retained chunk.
func (inc *IncrementalApprox) FirstChunk() int { return inc.firstChunk }

// RetainedInteractions calls fn once per retained chunk, oldest first,
// with that chunk's interactions in stream order. The slices alias the
// builder's internal state and must not be mutated or held past the
// call; callers that need edges for longer must copy.
func (inc *IncrementalApprox) RetainedInteractions(fn func([]graph.Interaction)) {
	for i := range inc.chunks {
		fn(inc.chunks[i].edges)
	}
}

// Retire drops every retained chunk whose entire span lies before
// horizon — whose last interaction satisfies At < horizon. Chunks are
// time-ordered, so the retired set is always a prefix, and retirement is
// exhaustive and deterministic: the retained range afterwards is a pure
// function of the sealed chunks and the horizon, which is what lets a
// recovered builder reproduce byte-identical folds (recovery re-retires
// under the same rule; see internal/stream). Retirement is chunk-
// granular: a chunk straddling the horizon is kept whole, so a fold
// after Retire still covers every interaction at or after horizon.
//
// The fold cache is left alone: cache entries are tagged with the base
// they folded from, and a base mismatch makes the next Fold start from
// scratch over the retained chunks (bounded by the horizon, which is the
// point). Returns the number of chunks and interactions retired.
func (inc *IncrementalApprox) Retire(horizon int64) (chunks, edges int) {
	k := 0
	for k < len(inc.chunks) {
		es := inc.chunks[k].edges
		if int64(es[len(es)-1].At) >= horizon {
			break
		}
		edges += len(es)
		k++
	}
	if k == 0 {
		return 0, 0
	}
	// Reallocate instead of reslicing: a concurrently folding ChunkView
	// may still reference the old backing array, so the retired entries
	// can neither be zeroed in place nor kept pinning the array head.
	inc.chunks = append([]approxChunk(nil), inc.chunks[k:]...)
	inc.firstChunk += k
	inc.retiredEdges += edges
	return k, edges
}

// ResumeAt primes an empty builder to continue a stream whose chunk
// prefix [0, firstChunk) was retired before a restart: absolute chunk
// indices resume at firstChunk and EdgeCount at retiredEdges, so emit
// clocks and sidecar file names line up with the pre-restart run. The
// first chunk sealed afterwards has no lower time bound (the retired
// prefix that would have bounded it is gone); ordering within and
// between the resumed chunks is validated as usual.
func (inc *IncrementalApprox) ResumeAt(firstChunk, retiredEdges int) error {
	if inc.edgeCount != 0 || len(inc.chunks) != 0 {
		return fmt.Errorf("core: ResumeAt on a non-empty builder (%d chunks, %d edges)", len(inc.chunks), inc.edgeCount)
	}
	if firstChunk < 0 || retiredEdges < 0 {
		return fmt.Errorf("core: ResumeAt(%d, %d) negative", firstChunk, retiredEdges)
	}
	inc.firstChunk = firstChunk
	inc.retiredEdges = retiredEdges
	inc.edgeCount = retiredEdges
	return nil
}

// AppendChunk seals edges as the next time chunk and runs its block-local
// reverse scan. The slice is retained; callers must not modify it
// afterwards. Edges must be strictly ascending in time, strictly after
// every previously sealed interaction, and reference nodes < numNodes;
// numNodes may exceed the current range to introduce new nodes.
func (inc *IncrementalApprox) AppendChunk(edges []graph.Interaction, numNodes int) error {
	if err := inc.validateChunk(edges, numNodes); err != nil {
		return err
	}
	span := obs.NewSpan(sink(), "scan/chunk")
	locals := make([]*vhll.Sketch, numNodes)
	scanApproxBlock(edges, locals, inc.hashes, inc.omega, inc.precision)
	inc.seal(edges, locals)
	span.Endf("%s edges sealed (chunk %d, %s total)",
		obs.Count(int64(len(edges))), len(inc.chunks), obs.Count(int64(inc.edgeCount)))
	return nil
}

// AppendSealedChunk seals edges together with precomputed block-local
// sketches — a chunk recovered from a durable sidecar rather than
// rescanned. locals must be what AppendChunk would have computed: indexed
// by NodeID, len(locals) == numNodes, built with the same omega and
// precision (precision is checked; omega cannot be verified here, so
// callers must gate on their own recorded value). Both slices are
// retained. The same ordering/range validation as AppendChunk applies.
func (inc *IncrementalApprox) AppendSealedChunk(edges []graph.Interaction, locals []*vhll.Sketch, numNodes int) error {
	if err := inc.validateChunk(edges, numNodes); err != nil {
		return err
	}
	if len(locals) != numNodes {
		return fmt.Errorf("core: sealed chunk has %d local sketches for %d nodes", len(locals), numNodes)
	}
	for u, sk := range locals {
		if sk != nil && sk.Precision() != inc.precision {
			return fmt.Errorf("core: sealed chunk local %d has precision %d, want %d", u, sk.Precision(), inc.precision)
		}
	}
	inc.seal(edges, locals)
	return nil
}

// validateChunk checks chunk ordering and node range, then grows the node
// range and hash cache. It mutates inc only on success.
func (inc *IncrementalApprox) validateChunk(edges []graph.Interaction, numNodes int) error {
	if len(edges) == 0 {
		return fmt.Errorf("core: empty chunk")
	}
	if numNodes < inc.numNodes {
		return fmt.Errorf("core: node range cannot shrink (%d -> %d)", inc.numNodes, numNodes)
	}
	prev := inc.lastAt
	first := !inc.anchored
	for i, e := range edges {
		if int(e.Src) < 0 || int(e.Src) >= numNodes || int(e.Dst) < 0 || int(e.Dst) >= numNodes {
			return fmt.Errorf("core: chunk edge %d (%d,%d,%d) out of range for %d nodes", i, e.Src, e.Dst, e.At, numNodes)
		}
		if !first && e.At <= prev {
			return fmt.Errorf("core: chunk edge %d at time %d not after %d", i, e.At, prev)
		}
		prev, first = e.At, false
	}
	inc.numNodes = numNodes
	for len(inc.hashes) < numNodes {
		inc.hashes = append(inc.hashes, hll.Hash64(uint64(len(inc.hashes))))
	}
	return nil
}

// seal appends a validated chunk.
func (inc *IncrementalApprox) seal(edges []graph.Interaction, locals []*vhll.Sketch) {
	inc.chunks = append(inc.chunks, approxChunk{edges: edges, locals: locals})
	inc.edgeCount += len(edges)
	inc.lastAt = edges[len(edges)-1].At
	inc.anchored = true
}

// SeedFoldCache primes the fold cache with summaries recovered from a
// checkpoint that covers exactly the retained chunks below absolute
// index `chunks` — the recovery analogue of the cache a completed Fold
// leaves behind, so the first post-recovery fold is already incremental.
// The summaries must have been produced by Fold (or decode to the same
// bytes) over chunks [FirstChunk(), chunks) under the same omega and
// precision; the sketch slice is adopted as shared immutable state and
// must not be mutated afterwards. Seeding with anything else silently
// corrupts every later fold, so callers gate on their own durable
// metadata; the structural subset checked here (window, precision, chunk
// and node ranges) rejects the detectable mismatches.
func (inc *IncrementalApprox) SeedFoldCache(s *ApproxSummaries, chunks int) error {
	if s == nil {
		return fmt.Errorf("core: nil summaries")
	}
	if s.Omega != inc.omega {
		return fmt.Errorf("core: seed omega %d, builder has %d", s.Omega, inc.omega)
	}
	if s.Precision != inc.precision {
		return fmt.Errorf("core: seed precision %d, builder has %d", s.Precision, inc.precision)
	}
	if chunks <= inc.firstChunk || chunks > inc.NumChunks() {
		return fmt.Errorf("core: seed covers chunks below %d, builder retains [%d,%d)", chunks, inc.firstChunk, inc.NumChunks())
	}
	if len(s.Sketches) > inc.numNodes {
		return fmt.Errorf("core: seed spans %d nodes, builder has %d", len(s.Sketches), inc.numNodes)
	}
	inc.cache.p.Store(&foldCache{base: inc.firstChunk, chunks: chunks, sketches: s.Sketches})
	return nil
}

// View snapshots the sealed state. The snapshot is immutable: its Fold
// may run on another goroutine while the owner keeps appending chunks.
func (inc *IncrementalApprox) View() ChunkView {
	return ChunkView{
		omega:        inc.omega,
		precision:    inc.precision,
		numNodes:     inc.numNodes,
		edgeCount:    inc.edgeCount,
		lastAt:       inc.lastAt,
		firstChunk:   inc.firstChunk,
		retiredEdges: inc.retiredEdges,
		chunks:       inc.chunks[:len(inc.chunks):len(inc.chunks)],
		cache:        inc.cache,
	}
}

// ChunkView is an immutable snapshot of sealed chunks, the unit a
// background compactor folds into a checkpoint. Views created from the
// same builder share its fold cache, so folding a newer view reuses the
// result of the previous fold.
type ChunkView struct {
	omega        int64
	precision    int
	numNodes     int
	edgeCount    int
	lastAt       graph.Time
	firstChunk   int
	retiredEdges int
	chunks       []approxChunk
	cache        *cacheBox
}

// NumNodes returns the node range of the snapshot.
func (v ChunkView) NumNodes() int { return v.numNodes }

// EdgeCount returns the total number of interactions ever covered by the
// snapshot's builder, retired ones included — the emit index.
func (v ChunkView) EdgeCount() int { return v.edgeCount }

// RetainedEdges returns the number of interactions inside the retained
// chunks, the set Fold covers.
func (v ChunkView) RetainedEdges() int { return v.edgeCount - v.retiredEdges }

// RetiredEdges returns the number of interactions inside retired chunks.
func (v ChunkView) RetiredEdges() int { return v.retiredEdges }

// LastAt returns the latest covered timestamp.
func (v ChunkView) LastAt() graph.Time { return v.lastAt }

// NumChunks returns the total number of chunks ever sealed; the retained
// range is [FirstChunk(), NumChunks()).
func (v ChunkView) NumChunks() int { return v.firstChunk + len(v.chunks) }

// FirstChunk returns the absolute index of the oldest retained chunk.
func (v ChunkView) FirstChunk() int { return v.firstChunk }

// EachEdge calls fn for every retained interaction in ascending time
// order, the suffix a fold's output summarizes.
func (v ChunkView) EachEdge(fn func(graph.Interaction)) {
	for _, c := range v.chunks {
		for _, e := range c.edges {
			fn(e)
		}
	}
}

// MemoryBytes returns the bytes actually retained by the chunks' cached
// block-local sketches (arena capacity plus indexes, vhll.MemoryBytes) —
// the resident sketch state the retention horizon bounds (fold outputs
// and caches are shared snapshots on top of it).
func (v ChunkView) MemoryBytes() int {
	n := 0
	for i := range v.chunks {
		for _, sk := range v.chunks[i].locals {
			if sk != nil {
				n += sk.MemoryBytes()
			}
		}
	}
	return n
}

// Chunk exposes sealed chunk i (an ABSOLUTE index in
// [FirstChunk(), NumChunks())): its interactions in ascending time order
// and its block-local sketches (indexed by NodeID, sized to the node
// range at seal time). Both slices are the live cached state — callers
// must treat them as read-only. This is what lets internal/stream
// persist sealed chunks as durable sidecars without recomputing them.
func (v ChunkView) Chunk(i int) (edges []graph.Interaction, locals []*vhll.Sketch) {
	c := &v.chunks[i-v.firstChunk]
	return c.edges, c.locals
}

// Fold produces full summaries over every retained chunk —
// byte-identical to ComputeApprox over the concatenated retained
// interactions (the reverse scan's prefix is the log's suffix, so a
// fold over a chunk suffix is exactly the offline scan of those edges).
// It never mutates chunk state: block-local sketches are cloned on
// adoption (that is the one divergence from the parallel scan's stitch,
// which owns its locals), so a view can be folded repeatedly and
// concurrently with appends. The per-node merge fan-out runs on the
// library worker pool.
//
// When the view's cache holds a previous fold covering a prefix of its
// chunks, only the chunks past that prefix are folded from scratch; the
// prefix contributes through the cached summaries plus an ω-bounded
// backward delta walk (see foldDelta). The returned sketches may be
// shared with earlier Fold results and with the internal cache, so
// callers must treat ApproxSummaries.Sketches as read-only — which the
// serving layer already does.
func (v ChunkView) Fold() *ApproxSummaries {
	workers := Parallelism()
	s := &ApproxSummaries{
		Omega:     v.omega,
		Precision: v.precision,
	}
	if len(v.chunks) == 0 {
		s.Sketches = make([]*vhll.Sketch, v.numNodes)
		return s
	}
	span := obs.NewSpan(sink(), "scan/fold")
	fc := v.cachedPrefix()
	var out []*vhll.Sketch
	reused := 0
	switch {
	case fc != nil && fc.chunks == v.NumChunks():
		// The cache already covers the whole view; reshare it (padding
		// the node range if the view grew it without sealing chunks).
		out = fc.sketches
		if len(out) != v.numNodes {
			padded := make([]*vhll.Sketch, v.numNodes)
			copy(padded, out)
			out = padded
		}
		reused = fc.chunks - fc.base
	case fc != nil:
		out = v.foldDelta(fc, workers)
		reused = fc.chunks - fc.base
	default:
		out = v.foldSuffix(0, workers)
	}
	s.Sketches = out
	if v.cache != nil {
		v.cache.p.Store(&foldCache{base: v.firstChunk, chunks: v.NumChunks(), sketches: out})
	}
	span.Endf("%s edges, %d chunks (%d cached), %s entries",
		obs.Count(int64(v.RetainedEdges())), len(v.chunks), reused, obs.Count(int64(s.EntryCount())))
	return s
}

// FoldFrom folds the retained chunks at or past absolute index from into
// fresh summaries, bypassing the fold cache — byte-identical to
// ComputeApprox over exactly those chunks' interactions, because the
// reverse scan's prefix is the log's suffix. This is the chunk-granular
// window-query entry point: anchor a horizon at a chunk boundary and the
// result is the offline scan of the admissible suffix, not an estimate.
func (v ChunkView) FoldFrom(from int) (*ApproxSummaries, error) {
	if from < v.firstChunk || from >= v.NumChunks() {
		return nil, fmt.Errorf("core: FoldFrom(%d) outside retained chunks [%d,%d)", from, v.firstChunk, v.NumChunks())
	}
	s := &ApproxSummaries{
		Omega:     v.omega,
		Precision: v.precision,
		Sketches:  v.foldSuffix(from-v.firstChunk, Parallelism()),
	}
	return s, nil
}

// cachedPrefix returns the shared fold cache if it was folded from this
// view's retained base and covers a non-empty prefix of its chunks, nil
// otherwise. Chunks are append-only and immutable, so a same-base cache
// recorded through absolute chunk k is always a fold of this view's
// chunks below k; a cache from a different base is useless — sketches
// cannot subtract the chunks Retire removed.
func (v ChunkView) cachedPrefix() *foldCache {
	if v.cache == nil {
		return nil
	}
	fc := v.cache.p.Load()
	if fc == nil || fc.base != v.firstChunk || fc.chunks <= fc.base ||
		fc.chunks > v.NumChunks() || len(fc.sketches) > v.numNodes {
		return nil
	}
	return fc
}

// foldSuffix folds chunks[from:] into fresh per-node sketches over the
// view's full node range — for from == 0, the complete fold. Every
// non-nil sketch in the result is owned by the caller (cloned or newly
// built), never shared with chunk state.
func (v ChunkView) foldSuffix(from, workers int) []*vhll.Sketch {
	out := make([]*vhll.Sketch, v.numNodes)
	// Adopt the latest chunk by clone: the stitch mutates suffix state in
	// place, and the cached locals must survive for the next fold.
	last := &v.chunks[len(v.chunks)-1]
	par.ForEach(workers, v.numNodes, func(ui int) {
		if sk := last.local(graph.NodeID(ui)); sk != nil {
			out[ui] = sk.Clone()
		}
	})
	for b := len(v.chunks) - 2; b >= from; b-- {
		c := &v.chunks[b]
		boundary := v.chunks[b+1].edges[0].At
		// Boundary walk: propagate suffix entries back through this
		// chunk's edges, exactly as the parallel scan's stitch does. The
		// walk stops once the chunk boundary falls out of the window.
		delta := make(map[graph.NodeID]*vhll.Sketch)
		for i := len(c.edges) - 1; i >= 0; i-- {
			e := c.edges[i]
			if int64(boundary-e.At) >= v.omega {
				break
			}
			if e.Src == e.Dst {
				continue
			}
			skV, dV := out[e.Dst], delta[e.Dst]
			if skV == nil && dV == nil {
				continue
			}
			dU := delta[e.Src]
			if dU == nil {
				dU = vhll.MustNew(v.precision)
				delta[e.Src] = dU
			}
			// Same-precision merges cannot fail.
			if skV != nil {
				_ = dU.MergeWindow(skV, int64(e.At), v.omega)
			}
			if dV != nil {
				_ = dU.MergeWindow(dV, int64(e.At), v.omega)
			}
		}
		// Fold the chunk-local sketches and the propagated deltas into the
		// suffix state. Deltas are fresh, so they may be adopted outright;
		// locals are cached, so they fold in through the clone-safe merge.
		par.ForEach(workers, v.numNodes, func(ui int) {
			u := graph.NodeID(ui)
			dst := vhll.MergeInto(out[u], c.local(u))
			if d := delta[u]; d != nil {
				if dst == nil {
					dst = d
				} else {
					_ = dst.Merge(d)
				}
			}
			out[u] = dst
		})
	}
	return out
}

// foldDelta folds a view whose first fc.chunks chunks are covered by the
// cached summaries. The new chunks fold from scratch (foldSuffix), their
// contribution walks backward through the old chunks as a windowed
// delta, and the result is cached-prefix ∪ delta per node.
//
// Correctness: a sketch is the canonical form of its inserted pair set,
// so the full fold's result at node u is (pairs reaching u through the
// old chunks' stitch) ∪ (pairs originating in the new chunks reaching u
// through the same ω-bounded edge paths). The first set is exactly the
// cached summaries — the cached fold ran the identical walk over the
// identical old chunks. The second set is what this delta walk computes:
// it replays the old chunks' boundary walks with the suffix state
// restricted to new-chunk contributions. Window filtering applies per
// entry, so filtering the union equals the union of filtered parts, and
// both paths feed every cell the same pair set. Non-nil structure is
// preserved for byte identity: a delta sketch is created (possibly
// empty) exactly when the full walk would have created one from a
// new-chunk source, and old-source creations are already in the cache.
func (v ChunkView) foldDelta(fc *foldCache, workers int) []*vhll.Sketch {
	k := fc.chunks - v.firstChunk // relative index of the first uncached chunk
	d := v.foldSuffix(k, workers)
	// Every entry in d carries a timestamp from the new chunks, i.e.
	// ≥ newStart, and merges preserve original timestamps. MergeWindow
	// keeps entries with At − t < ω, so once an old edge sits ω or more
	// before newStart the merge is provably a no-op and can be skipped.
	// The sketch creation above it must still run: the full fold creates
	// a (possibly empty) sketch there, and byte identity tracks the
	// nil/non-nil pattern as much as the contents.
	newStart := v.chunks[k].edges[0].At
	for b := k - 1; b >= 0; b-- {
		c := &v.chunks[b]
		boundary := v.chunks[b+1].edges[0].At
		for i := len(c.edges) - 1; i >= 0; i-- {
			e := c.edges[i]
			if int64(boundary-e.At) >= v.omega {
				break
			}
			if e.Src == e.Dst {
				continue
			}
			dV := d[e.Dst]
			if dV == nil {
				continue
			}
			dU := d[e.Src]
			if dU == nil {
				dU = vhll.MustNew(v.precision)
				d[e.Src] = dU
			}
			if int64(newStart-e.At) >= v.omega {
				continue
			}
			_ = dU.MergeWindow(dV, int64(e.At), v.omega)
		}
	}
	out := make([]*vhll.Sketch, v.numNodes)
	par.ForEach(workers, v.numNodes, func(ui int) {
		var base *vhll.Sketch
		if ui < len(fc.sketches) {
			base = fc.sketches[ui]
		}
		switch {
		case d[ui] == nil:
			out[ui] = base // untouched by new chunks: share the cached sketch
		case base == nil:
			out[ui] = d[ui] // fresh delta, owned by this fold
		case d[ui].Empty():
			// Creation-only delta: the full fold would merge nothing into
			// the cached sketch, so its bytes are exactly the cached ones.
			out[ui] = base
		default:
			sk := base.Clone() // cached sketches are shared — never mutate
			_ = sk.Merge(d[ui])
			out[ui] = sk
		}
	})
	return out
}
