package core

import (
	"fmt"

	"ipin/internal/graph"
	"ipin/internal/hll"
	"ipin/internal/obs"
	"ipin/internal/par"
	"ipin/internal/vhll"
)

// Incremental IRS construction over an interaction stream.
//
// The one-pass algorithms scan the log in REVERSE chronological order, so
// a live stream — which grows at the late end — cannot extend a finished
// scan directly: every new interaction would have to be processed before
// everything already seen. What does survive appends is the block
// decomposition of parallel.go: the log is kept partitioned into sealed,
// contiguous time chunks, each chunk carries its block-local reverse-scan
// sketches (computed once, when the chunk is sealed), and producing full
// summaries is a fold over the chunks — the same boundary stitch the
// parallel scan runs, against cached block-local state.
//
// Appending a chunk therefore costs one reverse scan of the NEW
// interactions only; a fold costs the boundary walks (bounded by ω around
// each chunk edge) plus per-node sketch merges, parallelized across the
// library worker pool. The fold is identical — not merely equivalent — to
// ComputeApprox over the concatenated chunks, by the same argument as the
// parallel scan: a versioned-HLL cell is a pure function of the inserted
// (rank, timestamp) pair set, independent of insertion order. The
// property tests in incremental_test.go pin byte-identical IRX1 output
// against the sequential scan on randomized logs and partitions.
//
// IncrementalApprox itself is not goroutine-safe: one owner appends.
// View() snapshots the sealed-chunk state into a ChunkView whose Fold may
// run on any goroutine, concurrently with further appends — sealed chunks
// are immutable and the fold only clones out of them. This split is what
// lets internal/stream keep ingesting while a background compactor folds
// a checkpoint.
type IncrementalApprox struct {
	omega     int64
	precision int
	numNodes  int
	edgeCount int
	lastAt    graph.Time
	hashes    []uint64
	chunks    []approxChunk
}

// approxChunk is one sealed, immutable time slice of the stream: its
// interactions in ascending time order plus the block-local sketches of a
// reverse scan restricted to the slice. locals is indexed by NodeID and
// sized to the node count at seal time; nodes introduced by later chunks
// simply read as nil here.
type approxChunk struct {
	edges  []graph.Interaction
	locals []*vhll.Sketch
}

func (c *approxChunk) local(u graph.NodeID) *vhll.Sketch {
	if int(u) >= len(c.locals) {
		return nil
	}
	return c.locals[int(u)]
}

// NewIncrementalApprox returns an empty incremental builder for window
// omega and the given sketch precision, initially covering numNodes nodes
// (AppendChunk grows the node range as the stream introduces new IDs).
func NewIncrementalApprox(omega int64, precision, numNodes int) (*IncrementalApprox, error) {
	if precision < hll.MinPrecision || precision > hll.MaxPrecision {
		return nil, errPrecision(precision)
	}
	if omega < 1 {
		return nil, fmt.Errorf("core: omega must be >= 1, got %d", omega)
	}
	if numNodes < 0 {
		return nil, fmt.Errorf("core: negative node count %d", numNodes)
	}
	return &IncrementalApprox{omega: omega, precision: precision, numNodes: numNodes}, nil
}

// Omega returns the window the summaries are built with.
func (inc *IncrementalApprox) Omega() int64 { return inc.omega }

// Precision returns the sketch precision.
func (inc *IncrementalApprox) Precision() int { return inc.precision }

// NumNodes returns the current node range [0, n).
func (inc *IncrementalApprox) NumNodes() int { return inc.numNodes }

// EdgeCount returns the total number of sealed interactions.
func (inc *IncrementalApprox) EdgeCount() int { return inc.edgeCount }

// LastAt returns the timestamp of the latest sealed interaction (zero
// before the first chunk; check EdgeCount to disambiguate).
func (inc *IncrementalApprox) LastAt() graph.Time { return inc.lastAt }

// NumChunks returns the number of sealed chunks.
func (inc *IncrementalApprox) NumChunks() int { return len(inc.chunks) }

// AppendChunk seals edges as the next time chunk and runs its block-local
// reverse scan. The slice is retained; callers must not modify it
// afterwards. Edges must be strictly ascending in time, strictly after
// every previously sealed interaction, and reference nodes < numNodes;
// numNodes may exceed the current range to introduce new nodes.
func (inc *IncrementalApprox) AppendChunk(edges []graph.Interaction, numNodes int) error {
	if len(edges) == 0 {
		return fmt.Errorf("core: empty chunk")
	}
	if numNodes < inc.numNodes {
		return fmt.Errorf("core: node range cannot shrink (%d -> %d)", inc.numNodes, numNodes)
	}
	prev := inc.lastAt
	first := inc.edgeCount == 0
	for i, e := range edges {
		if int(e.Src) < 0 || int(e.Src) >= numNodes || int(e.Dst) < 0 || int(e.Dst) >= numNodes {
			return fmt.Errorf("core: chunk edge %d (%d,%d,%d) out of range for %d nodes", i, e.Src, e.Dst, e.At, numNodes)
		}
		if !first && e.At <= prev {
			return fmt.Errorf("core: chunk edge %d at time %d not after %d", i, e.At, prev)
		}
		prev, first = e.At, false
	}
	inc.numNodes = numNodes
	for len(inc.hashes) < numNodes {
		inc.hashes = append(inc.hashes, hll.Hash64(uint64(len(inc.hashes))))
	}
	span := obs.NewSpan(sink(), "scan/chunk")
	locals := make([]*vhll.Sketch, numNodes)
	scanApproxBlock(edges, locals, inc.hashes, inc.omega, inc.precision)
	inc.chunks = append(inc.chunks, approxChunk{edges: edges, locals: locals})
	inc.edgeCount += len(edges)
	inc.lastAt = edges[len(edges)-1].At
	span.Endf("%s edges sealed (chunk %d, %s total)",
		obs.Count(int64(len(edges))), len(inc.chunks), obs.Count(int64(inc.edgeCount)))
	return nil
}

// View snapshots the sealed state. The snapshot is immutable: its Fold
// may run on another goroutine while the owner keeps appending chunks.
func (inc *IncrementalApprox) View() ChunkView {
	return ChunkView{
		omega:     inc.omega,
		precision: inc.precision,
		numNodes:  inc.numNodes,
		edgeCount: inc.edgeCount,
		lastAt:    inc.lastAt,
		chunks:    inc.chunks[:len(inc.chunks):len(inc.chunks)],
	}
}

// ChunkView is an immutable snapshot of sealed chunks, the unit a
// background compactor folds into a checkpoint.
type ChunkView struct {
	omega     int64
	precision int
	numNodes  int
	edgeCount int
	lastAt    graph.Time
	chunks    []approxChunk
}

// NumNodes returns the node range of the snapshot.
func (v ChunkView) NumNodes() int { return v.numNodes }

// EdgeCount returns the number of interactions covered by the snapshot.
func (v ChunkView) EdgeCount() int { return v.edgeCount }

// LastAt returns the latest covered timestamp.
func (v ChunkView) LastAt() graph.Time { return v.lastAt }

// NumChunks returns the number of sealed chunks in the snapshot.
func (v ChunkView) NumChunks() int { return len(v.chunks) }

// EachEdge calls fn for every covered interaction in ascending time
// order, the prefix a fold's output summarizes.
func (v ChunkView) EachEdge(fn func(graph.Interaction)) {
	for _, c := range v.chunks {
		for _, e := range c.edges {
			fn(e)
		}
	}
}

// Fold produces full summaries over every sealed chunk — byte-identical
// to ComputeApprox over the concatenated interactions. It never mutates
// chunk state: block-local sketches are cloned on adoption (that is the
// one divergence from the parallel scan's stitch, which owns its locals),
// so a view can be folded repeatedly and concurrently with appends. The
// per-node merge fan-out runs on the library worker pool.
func (v ChunkView) Fold() *ApproxSummaries {
	workers := Parallelism()
	s := &ApproxSummaries{
		Omega:     v.omega,
		Precision: v.precision,
		Sketches:  make([]*vhll.Sketch, v.numNodes),
	}
	if len(v.chunks) == 0 {
		return s
	}
	span := obs.NewSpan(sink(), "scan/fold")
	// Adopt the latest chunk by clone: the stitch mutates suffix state in
	// place, and the cached locals must survive for the next fold.
	last := &v.chunks[len(v.chunks)-1]
	par.ForEach(workers, v.numNodes, func(ui int) {
		if sk := last.local(graph.NodeID(ui)); sk != nil {
			s.Sketches[ui] = sk.Clone()
		}
	})
	for b := len(v.chunks) - 2; b >= 0; b-- {
		c := &v.chunks[b]
		boundary := v.chunks[b+1].edges[0].At
		// Boundary walk: propagate suffix entries back through this
		// chunk's edges, exactly as the parallel scan's stitch does. The
		// walk stops once the chunk boundary falls out of the window.
		delta := make(map[graph.NodeID]*vhll.Sketch)
		for i := len(c.edges) - 1; i >= 0; i-- {
			e := c.edges[i]
			if int64(boundary-e.At) >= v.omega {
				break
			}
			if e.Src == e.Dst {
				continue
			}
			skV, dV := s.Sketches[e.Dst], delta[e.Dst]
			if skV == nil && dV == nil {
				continue
			}
			dU := delta[e.Src]
			if dU == nil {
				dU = vhll.MustNew(v.precision)
				delta[e.Src] = dU
			}
			// Same-precision merges cannot fail.
			if skV != nil {
				_ = dU.MergeWindow(skV, int64(e.At), v.omega)
			}
			if dV != nil {
				_ = dU.MergeWindow(dV, int64(e.At), v.omega)
			}
		}
		// Fold the chunk-local sketches and the propagated deltas into the
		// suffix state. Deltas are fresh, so they may be adopted outright;
		// locals are cached, so they fold in through the clone-safe merge.
		par.ForEach(workers, v.numNodes, func(ui int) {
			u := graph.NodeID(ui)
			dst := vhll.MergeInto(s.Sketches[u], c.local(u))
			if d := delta[u]; d != nil {
				if dst == nil {
					dst = d
				} else {
					_ = dst.Merge(d)
				}
			}
			s.Sketches[u] = dst
		})
	}
	span.Endf("%s edges, %d chunks, %s entries",
		obs.Count(int64(v.edgeCount)), len(v.chunks), obs.Count(int64(s.EntryCount())))
	return s
}
