package core

import (
	"fmt"

	"ipin/internal/graph"
	"ipin/internal/par"
	"ipin/internal/vhll"
)

// Merge-at-query entry points for sharded deployments (internal/cluster).
//
// A versioned sketch is a canonical form of the set of (rank, timestamp)
// pairs inserted into it — insertion order never changes the stored
// staircases — so the union of per-shard sketches for one node is exactly
// the sketch a single scan over the concatenated substreams would have
// built from the same insertions. UnionApproxSummaries exploits that to
// combine summary sets computed over disjoint partitions of one edge
// stream: when every edge with source u went to exactly one partition
// (the cluster router's invariant), node u's merged sketch is
// byte-identical to the sketch of the substream that saw u's edges.

// UnionApproxSummaries merges per-partition sketched summaries into one
// summary set by per-node sketch union (vhll cell-wise dominance merge).
// The parts must agree on Omega and Precision; nil parts are skipped.
// The node range of the result is the widest of the parts. Input
// sketches are never mutated: each output sketch is built on a clone.
func UnionApproxSummaries(parts ...*ApproxSummaries) (*ApproxSummaries, error) {
	live := parts[:0:0]
	for _, p := range parts {
		if p != nil {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("core: union of no summaries")
	}
	omega, precision := live[0].Omega, live[0].Precision
	n := 0
	for _, p := range live {
		if p.Omega != omega {
			return nil, fmt.Errorf("core: union omega mismatch: %d vs %d", p.Omega, omega)
		}
		if p.Precision != precision {
			return nil, fmt.Errorf("core: union precision mismatch: %d vs %d", p.Precision, precision)
		}
		if p.NumNodes() > n {
			n = p.NumNodes()
		}
	}
	out := &ApproxSummaries{Omega: omega, Precision: precision, Sketches: make([]*vhll.Sketch, n)}
	// Per-node unions are independent; run them across the worker pool
	// like the oracle collapse does.
	par.ForEach(Parallelism(), n, func(u int) {
		var merged *vhll.Sketch
		for _, p := range live {
			if u < p.NumNodes() {
				merged = vhll.MergeInto(merged, p.Sketches[u])
			}
		}
		out.Sketches[u] = merged
	})
	return out, nil
}

// UnionSketch returns the union of node u's sketches across the parts —
// the per-node scatter-gather step a sharded query layer runs for each
// seed. Parts that are nil or do not cover u contribute nothing; the
// result is nil when no part holds a sketch for u, and is otherwise a
// freshly built sketch the caller owns (the inputs are never mutated).
func UnionSketch(u graph.NodeID, parts ...*ApproxSummaries) *vhll.Sketch {
	var merged *vhll.Sketch
	for _, p := range parts {
		if p != nil && int(u) < p.NumNodes() {
			merged = vhll.MergeInto(merged, p.Sketches[u])
		}
	}
	return merged
}
