package core

import "testing"

// BenchmarkDisabledScanEvent measures the per-event cost the scan hot
// path pays when no collector is installed: one atomic metrics-pointer
// load plus a nil-counter increment — the sequence ComputeExact and
// ComputeApprox run per edge. The acceptance bar is < 5 ns/op.
func BenchmarkDisabledScanEvent(b *testing.B) {
	InstallMetrics(nil)
	for i := 0; i < b.N; i++ {
		mx := m()
		mx.exactEdges.Inc()
	}
}

// BenchmarkDisabledScanEventAmortized is the realistic shape: the
// metrics pointer is loaded once per scan, and only nil-counter calls
// remain on the per-edge path.
func BenchmarkDisabledScanEventAmortized(b *testing.B) {
	InstallMetrics(nil)
	mx := m()
	for i := 0; i < b.N; i++ {
		mx.exactEdges.Inc()
		mx.exactMerges.Inc()
		mx.exactMergeEntries.Add(int64(i))
	}
}
