// Package core implements the paper's primary contribution: one-pass
// computation of Influence Reachability Sets (IRS) over an interaction
// network, in an exact and a sketch-based approximate variant, plus the
// influence oracle and greedy influence maximization built on top.
//
// Definitions (paper §2):
//
//   - An information channel u→v is a sequence of interactions
//     (u,n₁,t₁),(n₁,n₂,t₂),…,(n_k,v,t_k) with t₁ < t₂ < … < t_k. Its
//     duration is t_k − t₁ + 1 and its end time is t_k.
//   - σω(u), the IRS of u, is the set of nodes v reachable from u through
//     at least one channel of duration ≤ ω.
//   - The IRS summary ϕω(u) stores, for each v ∈ σω(u), the earliest end
//     time λ(u,v) over all admissible channels (Definition 4); this is the
//     exact piece of state that makes a single reverse-chronological pass
//     sufficient (Lemmas 1 and 2).
//
// ComputeExact realizes Algorithm 2 with per-node hash maps; it is exact
// but needs O(n²) space in the worst case. ComputeApprox realizes
// Algorithm 3, replacing each map by a versioned HyperLogLog sketch
// (internal/vhll) for O(β·log²ω) expected space per node.
//
// Both variants expose an Oracle (paper §4.1) answering
// |⋃_{u∈S} σω(u)| for arbitrary seed sets S, and feed the greedy seed
// selection of Algorithm 4 (TopK*, paper §4.2) as well as a lazy CELF
// variant this repository adds as an extension.
package core
