package core

import (
	"math/rand"
	"testing"

	"ipin/internal/graph"
)

// starsLog builds two disjoint temporal stars plus a small chain:
// node 0 reaches {10..19}, node 1 reaches {10..14, 20..22}, node 2
// reaches {30}. Greedy must pick 0 first (largest set), then 1 (largest
// marginal: {20,21,22} beats 2's {30}), then 2.
func starsLog() *graph.Log {
	l := graph.New(31)
	t := graph.Time(1)
	for v := 10; v < 20; v++ {
		l.Add(0, graph.NodeID(v), t)
		t++
	}
	for v := 10; v < 15; v++ {
		l.Add(1, graph.NodeID(v), t)
		t++
	}
	for v := 20; v < 23; v++ {
		l.Add(1, graph.NodeID(v), t)
		t++
	}
	l.Add(2, 30, t)
	l.Sort()
	return l
}

func TestTopKExactGreedyOrder(t *testing.T) {
	s := ComputeExact(starsLog(), 1)
	seeds := TopKExact(s, 3)
	want := []graph.NodeID{0, 1, 2}
	if len(seeds) != 3 {
		t.Fatalf("got %d seeds, want 3", len(seeds))
	}
	for i := range want {
		if seeds[i] != want[i] {
			t.Fatalf("seeds = %v, want %v", seeds, want)
		}
	}
}

func TestTopKExactCELFAgreesWithGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		l := randomLog(rng, 60, 500)
		s := ComputeExact(l, 100)
		for _, k := range []int{1, 5, 10} {
			greedy := TopKExact(s, k)
			celf := TopKExactCELF(s, k)
			// The seed SETS can differ on ties, but the achieved coverage
			// cannot: both are exact greedy.
			if g, c := s.SpreadExact(greedy), s.SpreadExact(celf); g != c {
				t.Fatalf("trial %d k=%d: greedy spread %d != CELF spread %d", trial, k, g, c)
			}
		}
	}
}

// TestGreedyIsNearOptimal compares greedy coverage against the true
// optimum (exhaustive search) on small instances: greedy must achieve at
// least (1−1/e) ≈ 0.632 of it; on these sizes it is usually optimal.
func TestGreedyIsNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		l := randomLog(rng, 12, 70)
		s := ComputeExact(l, 20)
		k := 3
		greedy := TopKExact(s, k)
		gv := s.SpreadExact(greedy)
		// Exhaustive optimum over all 3-subsets.
		best := 0
		n := s.NumNodes()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				for m := j + 1; m < n; m++ {
					v := s.SpreadExact([]graph.NodeID{graph.NodeID(i), graph.NodeID(j), graph.NodeID(m)})
					if v > best {
						best = v
					}
				}
			}
		}
		if float64(gv) < 0.632*float64(best) {
			t.Errorf("trial %d: greedy %d below 0.632·opt (opt %d)", trial, gv, best)
		}
	}
}

func TestTopKRequestsMoreThanNodes(t *testing.T) {
	l := graph.New(3)
	l.Add(0, 1, 1)
	l.Sort()
	s := ComputeExact(l, 5)
	seeds := TopKExact(s, 10)
	if len(seeds) != 3 {
		t.Fatalf("got %d seeds, want clamp to 3", len(seeds))
	}
	seen := map[graph.NodeID]bool{}
	for _, u := range seeds {
		if seen[u] {
			t.Fatalf("duplicate seed %d in %v", u, seeds)
		}
		seen[u] = true
	}
}

func TestTopKZeroCoverageFillsDeterministically(t *testing.T) {
	// Empty log: all IRS are empty; the selection must still return k
	// distinct seeds and be stable across calls.
	s := ComputeExact(graph.New(5), 5)
	a1 := TopKExact(s, 4)
	a2 := TopKExact(s, 4)
	if len(a1) != 4 {
		t.Fatalf("got %d seeds", len(a1))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("fill not deterministic")
		}
	}
}

func TestTopKApproxMatchesExactOnSeparatedSizes(t *testing.T) {
	// The three stars have well-separated sizes (10, 8, 1), far beyond
	// sketch noise, so the approximate greedy must find the same order.
	l := starsLog()
	s, err := ComputeApprox(l, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	seeds := TopKApproxSeeds(s, 3)
	want := []graph.NodeID{0, 1, 2}
	for i := range want {
		if seeds[i] != want[i] {
			t.Fatalf("approx seeds = %v, want %v", seeds, want)
		}
	}
	celf := TopKApproxCELF(s, 3)
	for i := range want {
		if celf[i] != want[i] {
			t.Fatalf("approx CELF seeds = %v, want %v", celf, want)
		}
	}
}

func TestTopKApproxReusableSelector(t *testing.T) {
	l := starsLog()
	s, err := ComputeApprox(l, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	sel := TopKApprox(s)
	if got := sel(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("sel(1) = %v", got)
	}
	// A second call with larger k starts fresh, not from leftover state.
	if got := sel(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("sel(2) = %v", got)
	}
}

func TestOracleInterfaces(t *testing.T) {
	l := fig1a()
	exact := ComputeExact(l, 3)
	approx, err := ComputeApprox(l, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	var oe Oracle = ExactOracle{S: exact}
	var oa Oracle = NewApproxOracle(approx)
	if oe.NumNodes() != 6 || oa.NumNodes() != 6 {
		t.Fatal("NumNodes mismatch")
	}
	if oe.InfluenceSize(a) != 4 {
		t.Errorf("exact oracle |σ(a)| = %.0f, want 4", oe.InfluenceSize(a))
	}
	if got := oa.InfluenceSize(a); got < 3.5 || got > 4.5 {
		t.Errorf("approx oracle |σ(a)| = %.2f, want ≈4", got)
	}
	if oe.Spread([]graph.NodeID{a, e}) != 5 {
		t.Errorf("exact oracle spread = %.0f, want 5", oe.Spread([]graph.NodeID{a, e}))
	}
	// Approx spread of {a,e}: {b,c,d,e} ∪ {b,c,f,e(self-cycle phantom)}
	// ≈ 6 hashed items.
	if got := oa.Spread([]graph.NodeID{a, e}); got < 4.5 || got > 7 {
		t.Errorf("approx oracle spread = %.2f, want ≈6", got)
	}
	if got := oa.Spread(nil); got != 0 {
		t.Errorf("approx oracle empty spread = %.2f", got)
	}
	if oa.InfluenceSize(c) != 0 {
		t.Errorf("approx oracle sink influence = %.2f", oa.InfluenceSize(c))
	}
}
