package core

import (
	"fmt"

	"ipin/internal/graph"
	"ipin/internal/hll"
	"ipin/internal/vbk"
)

// BottomKSummaries holds per-node IRS summaries sketched with the
// versioned bottom-k sketch (internal/vbk) instead of the versioned
// HyperLogLog. It exists as the alternative design point Ablation A4 of
// the harness evaluates: same one-pass algorithm, different sketch
// family.
type BottomKSummaries struct {
	// Omega is the maximum channel duration the summaries were built with.
	Omega int64
	// K is the bottom-k sketch size.
	K int
	// Sketches[u] approximates ϕω(u); nil means σω(u) is empty.
	Sketches []*vbk.Sketch
}

// ComputeApproxBK runs the one-pass approximate IRS algorithm with
// versioned bottom-k sketches: identical scan and merge discipline to
// ComputeApprox, with vbk in place of vhll.
func ComputeApproxBK(l *graph.Log, omega int64, k int) (*BottomKSummaries, error) {
	if k < 3 {
		return nil, fmt.Errorf("core: bottom-k size must be >= 3, got %d", k)
	}
	s := &BottomKSummaries{Omega: omega, K: k, Sketches: make([]*vbk.Sketch, l.NumNodes)}
	hashes := make([]uint64, l.NumNodes)
	for i := range hashes {
		hashes[i] = hll.Hash64(uint64(i))
	}
	edges := l.Interactions
	for i := len(edges) - 1; i >= 0; i-- {
		e := edges[i]
		if e.Src == e.Dst {
			continue
		}
		sk := s.Sketches[e.Src]
		if sk == nil {
			sk = vbk.MustNew(k)
			s.Sketches[e.Src] = sk
		}
		sk.AddHash(hashes[e.Dst], int64(e.At))
		if skV := s.Sketches[e.Dst]; skV != nil {
			// Same-k merge cannot fail.
			_ = sk.MergeWindow(skV, int64(e.At), omega)
		}
	}
	return s, nil
}

// NumNodes returns n.
func (s *BottomKSummaries) NumNodes() int { return len(s.Sketches) }

// EstimateIRS returns the estimated |σω(u)|.
func (s *BottomKSummaries) EstimateIRS(u graph.NodeID) float64 {
	sk := s.Sketches[u]
	if sk == nil {
		return 0
	}
	return sk.Estimate()
}

// MemoryBytes returns the payload size of all sketches.
func (s *BottomKSummaries) MemoryBytes() int {
	n := 0
	for _, sk := range s.Sketches {
		if sk != nil {
			n += sk.MemoryBytes()
		}
	}
	return n
}

// SpreadEstimate estimates |⋃_{u∈S} σω(u)| by merging the seeds'
// sketches and estimating once.
func (s *BottomKSummaries) SpreadEstimate(seeds []graph.NodeID) float64 {
	union := vbk.MustNew(s.K)
	for _, u := range seeds {
		if sk := s.Sketches[u]; sk != nil {
			_ = union.Merge(sk)
		}
	}
	return union.Estimate()
}
