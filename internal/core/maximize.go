package core

import (
	"container/heap"
	"sort"

	"ipin/internal/graph"
	"ipin/internal/hll"
	"ipin/internal/obs"
)

// This file implements influence maximization on top of the IRS state:
// the paper's Algorithm 4 (greedy marginal gain with a sorted-size early
// exit) and, as an extension, the CELF lazy-greedy strategy of Leskovec et
// al., which the paper cites as prior art. Both strategies work over the
// exact summaries and over the sketches; the four entry points share one
// greedy core through the coverage interface.
//
// The maximization problem is NP-hard (paper Lemma 7) but the objective
// |⋃ σω(u)| is monotone and submodular (Lemma 8), so greedy achieves the
// usual (1−1/e) approximation.

// coverage tracks the running union ⋃_{u∈selected} σω(u) and answers
// marginal-gain queries against it.
type coverage interface {
	// gain returns |covered ∪ σω(u)| − |covered| (or its estimate).
	gain(u graph.NodeID) float64
	// add folds σω(u) into the covered set.
	add(u graph.NodeID)
}

// exactCoverage is the coverage over exact summaries.
type exactCoverage struct {
	s       *ExactSummaries
	covered map[graph.NodeID]struct{}
}

func newExactCoverage(s *ExactSummaries) *exactCoverage {
	return &exactCoverage{s: s, covered: make(map[graph.NodeID]struct{})}
}

func (c *exactCoverage) gain(u graph.NodeID) float64 {
	g := 0
	for v := range c.s.Phi[u] {
		if _, ok := c.covered[v]; !ok {
			g++
		}
	}
	return float64(g)
}

func (c *exactCoverage) add(u graph.NodeID) {
	for v := range c.s.Phi[u] {
		c.covered[v] = struct{}{}
	}
}

// approxCoverage is the coverage over collapsed sketches: the union is a
// plain HyperLogLog, marginal gain is estimated by a clone-merge-estimate.
type approxCoverage struct {
	collapsed []*hll.Sketch
	precision int
	union     *hll.Sketch
	current   float64
}

func newApproxCoverage(s *ApproxSummaries) *approxCoverage {
	c := &approxCoverage{
		collapsed: make([]*hll.Sketch, s.NumNodes()),
		precision: s.Precision,
		union:     hll.MustNew(s.Precision),
	}
	for u, sk := range s.Sketches {
		if sk != nil {
			c.collapsed[u] = sk.Collapse()
		}
	}
	return c
}

func (c *approxCoverage) gain(u graph.NodeID) float64 {
	if c.collapsed[u] == nil {
		return 0
	}
	merged := c.union.Clone()
	// Same-precision merge cannot fail.
	_ = merged.Merge(c.collapsed[u])
	g := merged.Estimate() - c.current
	if g < 0 {
		g = 0
	}
	return g
}

func (c *approxCoverage) add(u graph.NodeID) {
	if c.collapsed[u] == nil {
		return
	}
	_ = c.union.Merge(c.collapsed[u])
	c.current = c.union.Estimate()
}

// greedyTopK is Algorithm 4. Candidates are scanned in descending order of
// their individual influence size; the scan stops as soon as the best
// marginal gain found so far is at least the next candidate's full size,
// because a marginal gain never exceeds the full set size. When no
// remaining candidate adds coverage, the seed set is completed with the
// largest-size unselected nodes so callers always receive k seeds.
func greedyTopK(n, k int, size []float64, cov coverage) []graph.NodeID {
	mx := m()
	span := obs.NewSpan(sink(), "select/greedy")
	gainEvals := int64(0)
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sort.SliceStable(order, func(i, j int) bool { return size[order[i]] > size[order[j]] })

	if k > n {
		k = n
	}
	selected := make([]graph.NodeID, 0, k)
	chosen := make([]bool, n)
	for len(selected) < k {
		best := graph.NodeID(-1)
		bestGain := 0.0
		for _, u := range order {
			if chosen[u] {
				continue
			}
			if bestGain >= size[u] {
				break
			}
			gainEvals++
			mx.greedyGainEvals.Inc()
			if g := cov.gain(u); g > bestGain {
				bestGain = g
				best = u
			}
		}
		if best < 0 {
			// Residual coverage is exhausted; fill deterministically.
			for _, u := range order {
				if !chosen[u] {
					best = u
					break
				}
			}
			if best < 0 {
				break
			}
		}
		chosen[best] = true
		cov.add(best)
		selected = append(selected, best)
		mx.greedySeeds.Inc()
		if span.Due() {
			span.Progressf("%d/%d seeds, %s gain evaluations", len(selected), k, obs.Count(gainEvals))
		}
	}
	span.Endf("%d seeds, %s gain evaluations", len(selected), obs.Count(gainEvals))
	return selected
}

// TopKExact selects k seeds from exact summaries with Algorithm 4.
func TopKExact(s *ExactSummaries, k int) []graph.NodeID {
	n := s.NumNodes()
	size := make([]float64, n)
	for u := range size {
		size[u] = float64(s.IRSSize(graph.NodeID(u)))
	}
	return greedyTopK(n, k, size, newExactCoverage(s))
}

// TopKApprox selects k seeds from sketch summaries with Algorithm 4.
func TopKApprox(s *ApproxSummaries) func(k int) []graph.NodeID {
	// The collapse work is shared across calls with different k.
	cov := newApproxCoverage(s)
	n := s.NumNodes()
	size := make([]float64, n)
	for u := range size {
		if cov.collapsed[u] != nil {
			size[u] = cov.collapsed[u].Estimate()
		}
	}
	return func(k int) []graph.NodeID {
		fresh := &approxCoverage{
			collapsed: cov.collapsed,
			precision: cov.precision,
			union:     hll.MustNew(cov.precision),
		}
		return greedyTopK(n, k, size, fresh)
	}
}

// TopKApproxSeeds is the common single-shot form of TopKApprox.
func TopKApproxSeeds(s *ApproxSummaries, k int) []graph.NodeID {
	return TopKApprox(s)(k)
}

// celfItem is a heap entry carrying a possibly stale marginal gain.
type celfItem struct {
	node  graph.NodeID
	gain  float64
	round int // selection round in which gain was computed
}

type celfHeap []celfItem

func (h celfHeap) Len() int            { return len(h) }
func (h celfHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h celfHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *celfHeap) Push(x interface{}) { *h = append(*h, x.(celfItem)) }
func (h *celfHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// celfTopK is the lazy-greedy variant: marginal gains are kept in a
// max-heap and only re-evaluated when a stale entry reaches the top.
// Submodularity guarantees gains only shrink, so a re-evaluated top entry
// that stays on top is the true maximizer. Returns the same seed quality
// as Algorithm 4 with far fewer gain evaluations on large candidate sets.
func celfTopK(n, k int, size []float64, cov coverage) []graph.NodeID {
	mx := m()
	span := obs.NewSpan(sink(), "select/celf")
	gainEvals := int64(0)
	h := make(celfHeap, 0, n)
	for u := 0; u < n; u++ {
		if size[u] > 0 {
			h = append(h, celfItem{node: graph.NodeID(u), gain: size[u], round: -1})
		}
	}
	heap.Init(&h)
	if k > n {
		k = n
	}
	selected := make([]graph.NodeID, 0, k)
	for len(selected) < k && h.Len() > 0 {
		it := heap.Pop(&h).(celfItem)
		if it.round == len(selected) {
			cov.add(it.node)
			selected = append(selected, it.node)
			mx.celfSeeds.Inc()
			if span.Due() {
				span.Progressf("%d/%d seeds, %s gain evaluations", len(selected), k, obs.Count(gainEvals))
			}
			continue
		}
		gainEvals++
		mx.celfGainEvals.Inc()
		it.gain = cov.gain(it.node)
		it.round = len(selected)
		heap.Push(&h, it)
	}
	// If every remaining gain was zero the heap may drain before k seeds
	// are found; fill with the largest-size unselected nodes, matching
	// greedyTopK's behaviour.
	if len(selected) < k {
		chosen := make([]bool, n)
		for _, u := range selected {
			chosen[u] = true
		}
		order := make([]graph.NodeID, n)
		for i := range order {
			order[i] = graph.NodeID(i)
		}
		sort.SliceStable(order, func(i, j int) bool { return size[order[i]] > size[order[j]] })
		for _, u := range order {
			if len(selected) >= k {
				break
			}
			if !chosen[u] {
				selected = append(selected, u)
				mx.celfSeeds.Inc()
			}
		}
	}
	span.Endf("%d seeds, %s gain evaluations", len(selected), obs.Count(gainEvals))
	return selected
}

// TopKExactCELF selects k seeds from exact summaries with lazy greedy.
func TopKExactCELF(s *ExactSummaries, k int) []graph.NodeID {
	n := s.NumNodes()
	size := make([]float64, n)
	for u := range size {
		size[u] = float64(s.IRSSize(graph.NodeID(u)))
	}
	return celfTopK(n, k, size, newExactCoverage(s))
}

// TopKApproxCELF selects k seeds from sketch summaries with lazy greedy.
func TopKApproxCELF(s *ApproxSummaries, k int) []graph.NodeID {
	cov := newApproxCoverage(s)
	n := s.NumNodes()
	size := make([]float64, n)
	for u := range size {
		if cov.collapsed[u] != nil {
			size[u] = cov.collapsed[u].Estimate()
		}
	}
	return celfTopK(n, k, size, cov)
}
