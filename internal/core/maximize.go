package core

import (
	"container/heap"
	"sort"

	"ipin/internal/graph"
	"ipin/internal/hll"
	"ipin/internal/obs"
	"ipin/internal/par"
)

// This file implements influence maximization on top of the IRS state:
// the paper's Algorithm 4 (greedy marginal gain with a sorted-size early
// exit) and, as an extension, the CELF lazy-greedy strategy of Leskovec et
// al., which the paper cites as prior art. Both strategies work over the
// exact summaries and over the sketches; the four entry points share one
// greedy core through the coverage interface.
//
// The maximization problem is NP-hard (paper Lemma 7) but the objective
// |⋃ σω(u)| is monotone and submodular (Lemma 8), so greedy achieves the
// usual (1−1/e) approximation.

// celfBatchPerWorker sizes the speculative gain-prefetch batches in
// celfTopK.
const celfBatchPerWorker = 8

// coverage tracks the running union ⋃_{u∈selected} σω(u) and answers
// marginal-gain queries against it.
type coverage interface {
	// gain returns |covered ∪ σω(u)| − |covered| (or its estimate).
	gain(u graph.NodeID) float64
	// add folds σω(u) into the covered set.
	add(u graph.NodeID)
}

// exactCoverage is the coverage over exact summaries.
type exactCoverage struct {
	s       *ExactSummaries
	covered map[graph.NodeID]struct{}
}

func newExactCoverage(s *ExactSummaries) *exactCoverage {
	return &exactCoverage{s: s, covered: make(map[graph.NodeID]struct{})}
}

func (c *exactCoverage) gain(u graph.NodeID) float64 {
	g := 0
	for v := range c.s.Phi[u] {
		if _, ok := c.covered[v]; !ok {
			g++
		}
	}
	return float64(g)
}

func (c *exactCoverage) add(u graph.NodeID) {
	for v := range c.s.Phi[u] {
		c.covered[v] = struct{}{}
	}
}

// approxCoverage is the coverage over collapsed sketches: the union is a
// plain HyperLogLog, marginal gain is estimated by a clone-merge-estimate.
type approxCoverage struct {
	collapsed []*hll.Sketch
	precision int
	union     *hll.Sketch
	current   float64
}

func newApproxCoverage(s *ApproxSummaries) *approxCoverage {
	c := &approxCoverage{
		collapsed: make([]*hll.Sketch, s.NumNodes()),
		precision: s.Precision,
		union:     hll.MustNew(s.Precision),
	}
	// Collapsing walks every staircase entry of every sketch; each node is
	// independent, so fan the flatten out across the worker pool.
	par.ForEach(Parallelism(), len(s.Sketches), func(u int) {
		if sk := s.Sketches[u]; sk != nil {
			c.collapsed[u] = sk.Collapse()
		}
	})
	return c
}

func (c *approxCoverage) gain(u graph.NodeID) float64 {
	if c.collapsed[u] == nil {
		return 0
	}
	merged := c.union.Clone()
	// Same-precision merge cannot fail.
	_ = merged.Merge(c.collapsed[u])
	g := merged.Estimate() - c.current
	if g < 0 {
		g = 0
	}
	return g
}

func (c *approxCoverage) add(u graph.NodeID) {
	if c.collapsed[u] == nil {
		return
	}
	_ = c.union.Merge(c.collapsed[u])
	c.current = c.union.Estimate()
}

// greedyTopK is Algorithm 4. Candidates are scanned in descending order of
// their individual influence size; the scan stops as soon as the best
// marginal gain found so far is at least the next candidate's full size,
// because a marginal gain never exceeds the full set size. When no
// remaining candidate adds coverage, the seed set is completed with the
// largest-size unselected nodes so callers always receive k seeds.
//
// The early exit is sound only while size[u] upper-bounds every marginal
// gain of u. That holds exactly for exact summaries (submodularity), but
// an estimated coverage can report a first-round gain above its own size
// estimate and the exit would then skip the true best candidate. Callers
// with such a coverage pass noisy=true: every candidate's first-round
// gain is evaluated once (in parallel), size[] is lifted to the observed
// gains and re-sorted, making the bound consistent with the coverage's
// own estimator. Later rounds can still, in principle, see an estimated
// marginal gain above the lifted size — submodularity only bounds the
// true gains — but that residue is second-order noise on an estimator
// whose relative error is already ≈1/√β; the selection tolerance is
// pinned by TestGreedyNoisyCoverageClampsEarlyExit.
//
// The pre-pass is also where the parallelism lives: the first round is
// the only one that evaluates a gain per candidate (later rounds are
// pruned hard by the early exit), its evaluations are independent reads
// against an empty union, and each lands in its own clamped[] slot, so
// the result is bit-identical at every worker count.
func greedyTopK(n, k int, size []float64, cov coverage, noisy bool) []graph.NodeID {
	mx := m()
	span := obs.NewSpan(sink(), "select/greedy")
	gainEvals := int64(0)
	workers := Parallelism()
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sort.SliceStable(order, func(i, j int) bool { return size[order[i]] > size[order[j]] })

	if noisy && n > 0 {
		clamped := make([]float64, n)
		copy(clamped, size)
		par.ForEach(workers, n, func(u int) {
			if g := cov.gain(graph.NodeID(u)); g > clamped[u] {
				clamped[u] = g
			}
		})
		gainEvals += int64(n)
		mx.greedyGainEvals.Add(int64(n))
		size = clamped
		sort.SliceStable(order, func(i, j int) bool { return size[order[i]] > size[order[j]] })
	}

	if k > n {
		k = n
	}
	selected := make([]graph.NodeID, 0, k)
	chosen := make([]bool, n)
	for len(selected) < k {
		best := graph.NodeID(-1)
		bestGain := 0.0
		for _, u := range order {
			if chosen[u] {
				continue
			}
			if bestGain >= size[u] {
				break
			}
			gainEvals++
			mx.greedyGainEvals.Inc()
			if g := cov.gain(u); g > bestGain {
				bestGain = g
				best = u
			}
		}
		if best < 0 {
			// Residual coverage is exhausted; fill deterministically.
			for _, u := range order {
				if !chosen[u] {
					best = u
					break
				}
			}
			if best < 0 {
				break
			}
		}
		chosen[best] = true
		cov.add(best)
		selected = append(selected, best)
		mx.greedySeeds.Inc()
		if span.Due() {
			span.Progressf("%d/%d seeds, %s gain evaluations", len(selected), k, obs.Count(gainEvals))
		}
	}
	span.Endf("%d seeds, %s gain evaluations", len(selected), obs.Count(gainEvals))
	return selected
}

// TopKExact selects k seeds from exact summaries with Algorithm 4.
func TopKExact(s *ExactSummaries, k int) []graph.NodeID {
	n := s.NumNodes()
	size := make([]float64, n)
	for u := range size {
		size[u] = float64(s.IRSSize(graph.NodeID(u)))
	}
	return greedyTopK(n, k, size, newExactCoverage(s), false)
}

// TopKApprox selects k seeds from sketch summaries with Algorithm 4.
func TopKApprox(s *ApproxSummaries) func(k int) []graph.NodeID {
	// The collapse work is shared across calls with different k.
	cov := newApproxCoverage(s)
	n := s.NumNodes()
	size := make([]float64, n)
	par.ForEach(Parallelism(), n, func(u int) {
		if cov.collapsed[u] != nil {
			size[u] = cov.collapsed[u].Estimate()
		}
	})
	return func(k int) []graph.NodeID {
		fresh := &approxCoverage{
			collapsed: cov.collapsed,
			precision: cov.precision,
			union:     hll.MustNew(cov.precision),
		}
		return greedyTopK(n, k, size, fresh, true)
	}
}

// TopKApproxSeeds is the common single-shot form of TopKApprox.
func TopKApproxSeeds(s *ApproxSummaries, k int) []graph.NodeID {
	return TopKApprox(s)(k)
}

// celfItem is a heap entry carrying a possibly stale marginal gain.
type celfItem struct {
	node  graph.NodeID
	gain  float64
	size  float64 // individual influence size, the gain's initial value
	round int     // selection round in which gain was computed
}

type celfHeap []celfItem

func (h celfHeap) Len() int { return len(h) }

// Less imposes a total order — gain desc, then individual size desc, then
// node id asc — so the heap top is deterministic under ties. This is the
// same tie rule as greedyTopK's size-sorted first-max scan, which keeps
// the two strategies selecting identical seeds, and it makes the batched
// parallel re-evaluation below order-insensitive: re-evaluating more
// stale entries than the sequential pop order would have cannot change
// which entry ends up on top.
func (h celfHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	if h[i].size != h[j].size {
		return h[i].size > h[j].size
	}
	return h[i].node < h[j].node
}
func (h celfHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *celfHeap) Push(x interface{}) { *h = append(*h, x.(celfItem)) }
func (h *celfHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// celfTopK is the lazy-greedy variant: marginal gains are kept in a
// max-heap and only re-evaluated when a stale entry reaches the top.
// Submodularity guarantees gains only shrink, so a re-evaluated top entry
// that stays on top is the true maximizer. Returns the same seed quality
// as Algorithm 4 with far fewer gain evaluations on large candidate sets.
// When more than one worker is configured, re-evaluations are prefetched:
// the top stale entries are popped together, their gains computed
// concurrently, and the entries pushed back UNCHANGED with the values
// kept in a per-round cache. The coverage is frozen between selections,
// so a cached value is exactly what an inline evaluation would return,
// and because the heap entries themselves are only updated when the
// sequential pop order demands it, the refresh history — and therefore
// every selection — is identical at any worker count, even for noisy
// estimators whose re-evaluated gains can grow. The cache is dropped at
// each selection, when the coverage advances.
func celfTopK(n, k int, size []float64, cov coverage) []graph.NodeID {
	mx := m()
	span := obs.NewSpan(sink(), "select/celf")
	gainEvals := int64(0)
	workers := Parallelism()
	batch := make([]celfItem, 0, workers*celfBatchPerWorker)
	var prefetched map[graph.NodeID]float64
	h := make(celfHeap, 0, n)
	for u := 0; u < n; u++ {
		if size[u] > 0 {
			h = append(h, celfItem{node: graph.NodeID(u), gain: size[u], size: size[u], round: -1})
		}
	}
	heap.Init(&h)
	if k > n {
		k = n
	}
	selected := make([]graph.NodeID, 0, k)
	for len(selected) < k && h.Len() > 0 {
		it := heap.Pop(&h).(celfItem)
		if it.round == len(selected) {
			cov.add(it.node)
			selected = append(selected, it.node)
			prefetched = nil // coverage advanced; cached gains are stale
			mx.celfSeeds.Inc()
			if span.Due() {
				span.Progressf("%d/%d seeds, %s gain evaluations", len(selected), k, obs.Count(gainEvals))
			}
			continue
		}
		g, ok := prefetched[it.node]
		if !ok && workers > 1 {
			// Prefetch this entry and the next stale tops concurrently;
			// push the extras back untouched.
			batch = append(batch[:0], it)
			for len(batch) < cap(batch) && h.Len() > 0 && h[0].round != len(selected) {
				batch = append(batch, heap.Pop(&h).(celfItem))
			}
			gains := par.Map(workers, len(batch), func(i int) float64 {
				return cov.gain(batch[i].node)
			})
			gainEvals += int64(len(batch))
			mx.celfGainEvals.Add(int64(len(batch)))
			if prefetched == nil {
				prefetched = make(map[graph.NodeID]float64, cap(batch))
			}
			for i, b := range batch {
				prefetched[b.node] = gains[i]
			}
			for _, b := range batch[1:] {
				heap.Push(&h, b)
			}
			g, ok = gains[0], true
		}
		if !ok {
			gainEvals++
			mx.celfGainEvals.Inc()
			g = cov.gain(it.node)
		}
		it.gain = g
		it.round = len(selected)
		heap.Push(&h, it)
	}
	// If every remaining gain was zero the heap may drain before k seeds
	// are found; fill with the largest-size unselected nodes, matching
	// greedyTopK's behaviour.
	if len(selected) < k {
		chosen := make([]bool, n)
		for _, u := range selected {
			chosen[u] = true
		}
		order := make([]graph.NodeID, n)
		for i := range order {
			order[i] = graph.NodeID(i)
		}
		sort.SliceStable(order, func(i, j int) bool { return size[order[i]] > size[order[j]] })
		for _, u := range order {
			if len(selected) >= k {
				break
			}
			if !chosen[u] {
				selected = append(selected, u)
				mx.celfSeeds.Inc()
			}
		}
	}
	span.Endf("%d seeds, %s gain evaluations", len(selected), obs.Count(gainEvals))
	return selected
}

// TopKExactCELF selects k seeds from exact summaries with lazy greedy.
func TopKExactCELF(s *ExactSummaries, k int) []graph.NodeID {
	n := s.NumNodes()
	size := make([]float64, n)
	for u := range size {
		size[u] = float64(s.IRSSize(graph.NodeID(u)))
	}
	return celfTopK(n, k, size, newExactCoverage(s))
}

// TopKApproxCELF selects k seeds from sketch summaries with lazy greedy.
func TopKApproxCELF(s *ApproxSummaries, k int) []graph.NodeID {
	cov := newApproxCoverage(s)
	n := s.NumNodes()
	size := make([]float64, n)
	par.ForEach(Parallelism(), n, func(u int) {
		if cov.collapsed[u] != nil {
			size[u] = cov.collapsed[u].Estimate()
		}
	})
	return celfTopK(n, k, size, cov)
}
