package core

import (
	"ipin/internal/graph"
	"ipin/internal/hll"
	"ipin/internal/par"
)

// Oracle answers influence queries over precomputed IRS state: the size
// (or estimated size) of the combined influence reachability set of an
// arbitrary seed set (paper Definition 3). Implementations are cheap,
// reusable views over ExactSummaries or ApproxSummaries.
type Oracle interface {
	// NumNodes returns n, the number of nodes in the underlying network.
	NumNodes() int
	// InfluenceSize returns |σω(u)| (exact) or its estimate (approximate).
	InfluenceSize(u graph.NodeID) float64
	// Spread returns |⋃_{u∈S} σω(u)| or its estimate.
	Spread(seeds []graph.NodeID) float64
}

// ExactOracle adapts ExactSummaries to the Oracle interface.
type ExactOracle struct{ S *ExactSummaries }

// NumNodes implements Oracle.
func (o ExactOracle) NumNodes() int { return o.S.NumNodes() }

// InfluenceSize implements Oracle.
func (o ExactOracle) InfluenceSize(u graph.NodeID) float64 { return float64(o.S.IRSSize(u)) }

// Spread implements Oracle.
func (o ExactOracle) Spread(seeds []graph.NodeID) float64 { return float64(o.S.SpreadExact(seeds)) }

// ApproxOracle adapts ApproxSummaries to the Oracle interface. It
// collapses every node sketch once at construction, so each Spread query
// costs O(|S|·β) regardless of the network size — the property Figure 4
// measures.
type ApproxOracle struct {
	precision int
	collapsed []*hll.Sketch // nil where σω(u) is empty
}

// NewApproxOracle finalizes the sketches of s into an oracle. The
// per-node collapses are independent and run across the worker pool
// configured with SetParallelism.
func NewApproxOracle(s *ApproxSummaries) *ApproxOracle {
	o := &ApproxOracle{precision: s.Precision, collapsed: make([]*hll.Sketch, s.NumNodes())}
	par.ForEach(Parallelism(), len(s.Sketches), func(u int) {
		if sk := s.Sketches[u]; sk != nil {
			o.collapsed[u] = sk.Collapse()
		}
	})
	return o
}

// NumNodes implements Oracle.
func (o *ApproxOracle) NumNodes() int { return len(o.collapsed) }

// Collapsed returns u's collapsed sketch, nil when σω(u) is empty. The
// serving layer's sharded store is built from these, reusing the oracle's
// parallel collapse instead of re-collapsing per shard.
func (o *ApproxOracle) Collapsed(u graph.NodeID) *hll.Sketch { return o.collapsed[u] }

// InfluenceSize implements Oracle.
func (o *ApproxOracle) InfluenceSize(u graph.NodeID) float64 {
	if o.collapsed[u] == nil {
		return 0
	}
	return o.collapsed[u].Estimate()
}

// Spread implements Oracle. Large seed sets union in a tree: contiguous
// seed ranges merge into partial unions concurrently, then the partials
// fold together. HyperLogLog union is a cell-wise maximum — associative
// and commutative — so the regrouping returns exactly the sequential
// union's registers.
func (o *ApproxOracle) Spread(seeds []graph.NodeID) float64 {
	workers := Parallelism()
	if workers > 1 && len(seeds) >= spreadParallelMinSeeds {
		blocks := par.Blocks(len(seeds), workers)
		partials := par.Map(workers, len(blocks), func(b int) *hll.Sketch {
			union := hll.MustNew(o.precision)
			for _, u := range seeds[blocks[b].Lo:blocks[b].Hi] {
				if sk := o.collapsed[u]; sk != nil {
					// Same-precision merge cannot fail.
					_ = union.Merge(sk)
				}
			}
			return union
		})
		union := partials[0]
		for _, p := range partials[1:] {
			_ = union.Merge(p)
		}
		return union.Estimate()
	}
	union := hll.MustNew(o.precision)
	for _, u := range seeds {
		if sk := o.collapsed[u]; sk != nil {
			// Same-precision merge cannot fail.
			_ = union.Merge(sk)
		}
	}
	return union.Estimate()
}
