package core

import (
	"ipin/internal/graph"
	"ipin/internal/hll"
)

// Oracle answers influence queries over precomputed IRS state: the size
// (or estimated size) of the combined influence reachability set of an
// arbitrary seed set (paper Definition 3). Implementations are cheap,
// reusable views over ExactSummaries or ApproxSummaries.
type Oracle interface {
	// NumNodes returns n, the number of nodes in the underlying network.
	NumNodes() int
	// InfluenceSize returns |σω(u)| (exact) or its estimate (approximate).
	InfluenceSize(u graph.NodeID) float64
	// Spread returns |⋃_{u∈S} σω(u)| or its estimate.
	Spread(seeds []graph.NodeID) float64
}

// ExactOracle adapts ExactSummaries to the Oracle interface.
type ExactOracle struct{ S *ExactSummaries }

// NumNodes implements Oracle.
func (o ExactOracle) NumNodes() int { return o.S.NumNodes() }

// InfluenceSize implements Oracle.
func (o ExactOracle) InfluenceSize(u graph.NodeID) float64 { return float64(o.S.IRSSize(u)) }

// Spread implements Oracle.
func (o ExactOracle) Spread(seeds []graph.NodeID) float64 { return float64(o.S.SpreadExact(seeds)) }

// ApproxOracle adapts ApproxSummaries to the Oracle interface. It
// collapses every node sketch once at construction, so each Spread query
// costs O(|S|·β) regardless of the network size — the property Figure 4
// measures.
type ApproxOracle struct {
	precision int
	collapsed []*hll.Sketch // nil where σω(u) is empty
}

// NewApproxOracle finalizes the sketches of s into an oracle.
func NewApproxOracle(s *ApproxSummaries) *ApproxOracle {
	o := &ApproxOracle{precision: s.Precision, collapsed: make([]*hll.Sketch, s.NumNodes())}
	for u, sk := range s.Sketches {
		if sk != nil {
			o.collapsed[u] = sk.Collapse()
		}
	}
	return o
}

// NumNodes implements Oracle.
func (o *ApproxOracle) NumNodes() int { return len(o.collapsed) }

// InfluenceSize implements Oracle.
func (o *ApproxOracle) InfluenceSize(u graph.NodeID) float64 {
	if o.collapsed[u] == nil {
		return 0
	}
	return o.collapsed[u].Estimate()
}

// Spread implements Oracle.
func (o *ApproxOracle) Spread(seeds []graph.NodeID) float64 {
	union := hll.MustNew(o.precision)
	for _, u := range seeds {
		if sk := o.collapsed[u]; sk != nil {
			// Same-precision merge cannot fail.
			_ = union.Merge(sk)
		}
	}
	return union.Estimate()
}
