package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"ipin/internal/graph"
)

// bigRandomLog builds a log large enough to cross minParallelEdges, with
// timestamps 1..m so block boundaries fall mid-stream. tieWidth > 1
// collapses that many consecutive interactions onto one timestamp to
// exercise tied times at block edges.
func bigRandomLog(rng *rand.Rand, n, m, tieWidth int) *graph.Log {
	l := graph.New(n)
	for i := 0; i < m; i++ {
		src := graph.NodeID(rng.Intn(n))
		dst := graph.NodeID(rng.Intn(n))
		at := i + 1
		if tieWidth > 1 {
			at = i/tieWidth + 1
		}
		l.Add(src, dst, graph.Time(at))
	}
	l.Sort()
	return l
}

func exactBytes(t *testing.T, s *ExactSummaries) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

func approxBytes(t *testing.T, s *ApproxSummaries) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

// TestComputeExactParallelMatchesSequential pins the time-sliced scan to
// the sequential one: not just equivalent summaries, byte-identical
// canonical encodings, across worker counts and window widths that force
// heavy cross-block stitching.
func TestComputeExactParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		n, m, tie int
		omega     int64
		workers   int
	}{
		{n: 150, m: minParallelEdges, tie: 1, omega: 40, workers: 2},
		{n: 150, m: minParallelEdges, tie: 1, omega: 40, workers: 5},
		{n: 60, m: minParallelEdges, tie: 1, omega: 200, workers: 3},
		{n: 150, m: minParallelEdges, tie: 4, omega: 25, workers: 4},
	} {
		l := bigRandomLog(rng, tc.n, tc.m, tc.tie)
		if !sliceable(l, tc.omega, tc.workers) {
			t.Fatalf("config %+v does not take the parallel path", tc)
		}
		want := ComputeExact(l, tc.omega)
		got := ComputeExactParallel(l, tc.omega, tc.workers)
		if !reflect.DeepEqual(want.Phi, got.Phi) {
			t.Fatalf("config %+v: parallel Phi differs from sequential", tc)
		}
		if !bytes.Equal(exactBytes(t, want), exactBytes(t, got)) {
			t.Fatalf("config %+v: encodings differ", tc)
		}
	}
}

// TestComputeApproxParallelMatchesSequential pins the sketch contents —
// every (rank, timestamp) staircase, via the canonical encoding — of the
// time-sliced scan to the sequential one.
func TestComputeApproxParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		n, m, tie int
		omega     int64
		workers   int
	}{
		{n: 150, m: minParallelEdges, tie: 1, omega: 40, workers: 2},
		{n: 60, m: minParallelEdges, tie: 1, omega: 150, workers: 4},
		{n: 150, m: minParallelEdges, tie: 3, omega: 30, workers: 3},
	} {
		l := bigRandomLog(rng, tc.n, tc.m, tc.tie)
		if !sliceable(l, tc.omega, tc.workers) {
			t.Fatalf("config %+v does not take the parallel path", tc)
		}
		want, err := ComputeApprox(l, tc.omega, DefaultPrecision)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ComputeApproxParallel(l, tc.omega, DefaultPrecision, tc.workers)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(approxBytes(t, want), approxBytes(t, got)) {
			t.Fatalf("config %+v: sketch encodings differ", tc)
		}
	}
}

// TestParallelFallback checks the small-log and wide-window guards: both
// parallel entry points must quietly produce the sequential result.
func TestParallelFallback(t *testing.T) {
	l := fig1a()
	want := ComputeExact(l, 5)
	got := ComputeExactParallel(l, 5, 8)
	if !reflect.DeepEqual(want.Phi, got.Phi) {
		t.Fatal("fallback exact result differs")
	}
	wantA, err := ComputeApprox(l, 5, DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := ComputeApproxParallel(l, 5, DefaultPrecision, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(approxBytes(t, wantA), approxBytes(t, gotA)) {
		t.Fatal("fallback approx result differs")
	}
	if _, err := ComputeApproxParallel(graph.New(2), 5, 1, 8); err == nil {
		t.Fatal("bad precision accepted")
	}
}

func TestSliceable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	small := bigRandomLog(rng, 20, 100, 1)
	if sliceable(small, 10, 4) {
		t.Fatal("tiny log reported sliceable")
	}
	big := bigRandomLog(rng, 100, minParallelEdges, 1)
	if !sliceable(big, 10, 4) {
		t.Fatal("large log with narrow window not sliceable")
	}
	// ω covering most of the span defeats the decomposition.
	_, _, span := big.Span()
	if sliceable(big, span, 4) {
		t.Fatal("window spanning the log reported sliceable")
	}
	if sliceable(big, 10, 1) {
		t.Fatal("single block reported sliceable")
	}
}

func TestSetParallelism(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d after SetParallelism(3)", got)
	}
	SetParallelism(-1)
	if got := Parallelism(); got < 1 {
		t.Fatalf("Parallelism() = %d after reset", got)
	}
}
