package core

import (
	"math"
	"math/rand"
	"testing"

	"ipin/internal/graph"
	"ipin/internal/stats"
)

func TestComputeApproxBKValidates(t *testing.T) {
	if _, err := ComputeApproxBK(graph.New(2), 5, 2); err == nil {
		t.Error("k=2 accepted")
	}
}

func TestBottomKSmallGraphNearExact(t *testing.T) {
	l := fig1a()
	exact := ComputeExact(l, 3)
	bk, err := ComputeApproxBK(l, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < l.NumNodes; u++ {
		got := bk.EstimateIRS(graph.NodeID(u))
		want := float64(exact.IRSSize(graph.NodeID(u)))
		if u == int(e) {
			want++ // self-cycle phantom, same as the vHLL variant
		}
		if math.Abs(got-want) > 0.01 {
			t.Errorf("node %d: estimate %.2f, want %.0f (below k ⇒ exact)", u, got, want)
		}
	}
	// Sink nodes have no sketch.
	if bk.Sketches[c] != nil || bk.Sketches[f] != nil {
		t.Error("sink nodes were allocated sketches")
	}
	if bk.EstimateIRS(c) != 0 {
		t.Error("sink estimate nonzero")
	}
}

func TestBottomKAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	l := randomLog(rng, 400, 6000)
	omega := int64(600)
	exact := ComputeExact(l, omega)
	bk, err := ComputeApproxBK(l, omega, 64)
	if err != nil {
		t.Fatal(err)
	}
	var errs []float64
	for u := 0; u < l.NumNodes; u++ {
		truth := float64(exact.IRSSize(graph.NodeID(u)))
		if truth == 0 {
			continue
		}
		errs = append(errs, stats.RelErr(bk.EstimateIRS(graph.NodeID(u)), truth))
	}
	if mean := stats.Mean(errs); mean > 0.15 {
		t.Errorf("average relative error %.4f at k=64", mean)
	}
}

func TestBottomKSpreadEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	l := randomLog(rng, 200, 3000)
	omega := int64(500)
	exact := ComputeExact(l, omega)
	bk, err := ComputeApproxBK(l, omega, 64)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []graph.NodeID{1, 7, 13, 42}
	truth := float64(exact.SpreadExact(seeds))
	got := bk.SpreadEstimate(seeds)
	if truth > 0 {
		if rel := stats.RelErr(got, truth); rel > 0.25 {
			t.Errorf("spread estimate %.1f vs %.0f (rel %.3f)", got, truth, rel)
		}
	}
	if bk.SpreadEstimate(nil) != 0 {
		t.Error("empty spread nonzero")
	}
}

func TestBottomKMemoryIsEntryDriven(t *testing.T) {
	l := fig1a()
	bk, err := ComputeApproxBK(l, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if bk.MemoryBytes() == 0 {
		t.Fatal("no memory reported")
	}
	if bk.NumNodes() != 6 {
		t.Fatalf("NumNodes = %d", bk.NumNodes())
	}
}
