package core

import (
	"math/rand"
	"testing"

	"ipin/internal/graph"
)

// benchLog builds a reproducible 50k-interaction network once.
var benchLog = func() *graph.Log {
	rng := rand.New(rand.NewSource(1))
	l := graph.New(5000)
	for i := 0; i < 50000; i++ {
		l.Add(graph.NodeID(rng.Intn(5000)), graph.NodeID(rng.Intn(5000)), graph.Time(i+1))
	}
	l.Sort()
	return l
}()

func BenchmarkComputeExact(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ComputeExact(benchLog, 5000)
	}
}

func BenchmarkComputeApprox(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeApprox(benchLog, 5000, 9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOracleSpread100(b *testing.B) {
	s, err := ComputeApprox(benchLog, 5000, 9)
	if err != nil {
		b.Fatal(err)
	}
	oracle := NewApproxOracle(s)
	seeds := make([]graph.NodeID, 100)
	for i := range seeds {
		seeds[i] = graph.NodeID(i * 37 % benchLog.NumNodes)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = oracle.Spread(seeds)
	}
}

func BenchmarkTopKApprox50(b *testing.B) {
	s, err := ComputeApprox(benchLog, 5000, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TopKApproxSeeds(s, 50)
	}
}

func BenchmarkTopKApproxCELF50(b *testing.B) {
	s, err := ComputeApprox(benchLog, 5000, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TopKApproxCELF(s, 50)
	}
}
