package core

import (
	"fmt"

	"ipin/internal/graph"
	"ipin/internal/hll"
	"ipin/internal/obs"
	"ipin/internal/vhll"
)

// DefaultPrecision is the sketch precision used throughout the paper's
// evaluation after the accuracy study of Table 3 settled on β = 512 cells.
const DefaultPrecision = 9 // β = 512

// ApproxSummaries holds the output of the approximate one-pass algorithm:
// a versioned HyperLogLog sketch per node in place of the exact summary
// map.
type ApproxSummaries struct {
	// Omega is the maximum channel duration the summaries were built with.
	Omega int64
	// Precision is log2 of the number of cells per sketch.
	Precision int
	// Sketches[u] approximates ϕω(u); nil means σω(u) is empty.
	Sketches []*vhll.Sketch
}

// ComputeApprox runs the paper's Algorithm 3: the same reverse-
// chronological scan as ComputeExact, with ApproxAdd and ApproxMerge over
// versioned HyperLogLog sketches. Processing interaction (u,v,t) inserts
// v's hash at time t into ϕ(u) and then window-merges ϕ(v) into ϕ(u),
// keeping entries with t_x − t < ω.
//
// Expected time is O(m·β·log²ω) and expected space O(n·β·log²ω) (paper
// Lemmas 5 and 6). The log must be sorted ascending with distinct
// timestamps, the paper's standing assumption — run Log.Detie on tied
// input first. Unlike the exact variant, which filters on strictly
// increasing times, the sketch cannot tell a same-timestamp entry apart
// from a later one and would let it chain into a channel.
//
// ComputeApproxParallel produces identical sketches from a time-sliced
// concurrent scan; see parallel.go for the decomposition.
func ComputeApprox(l *graph.Log, omega int64, precision int) (*ApproxSummaries, error) {
	if precision < hll.MinPrecision || precision > hll.MaxPrecision {
		return nil, errPrecision(precision)
	}
	s := &ApproxSummaries{
		Omega:     omega,
		Precision: precision,
		Sketches:  make([]*vhll.Sketch, l.NumNodes),
	}
	// Node hashes are pure functions of the ID; cache them once.
	hashes := make([]uint64, l.NumNodes)
	for i := range hashes {
		hashes[i] = hll.Hash64(uint64(i))
	}
	mx := m()
	span := obs.NewSpan(sink(), "scan/approx")
	edges := l.Interactions
	total := int64(len(edges))
	var summaries int64
	for i := len(edges) - 1; i >= 0; i-- {
		e := edges[i]
		mx.approxEdges.Inc()
		if e.Src == e.Dst {
			continue
		}
		sk := s.Sketches[e.Src]
		if sk == nil {
			sk = vhll.MustNew(precision)
			s.Sketches[e.Src] = sk
			summaries++
			mx.approxSummaries.Inc()
		}
		sk.AddHash(hashes[e.Dst], int64(e.At))
		if skV := s.Sketches[e.Dst]; skV != nil {
			mx.approxMerges.Inc()
			// Same-precision merge cannot fail.
			_ = sk.MergeWindow(skV, int64(e.At), omega)
		}
		if done := total - int64(i); done&progressMask == 0 && span.Due() {
			// Entry and byte counts walk every sketch; they run only at
			// the rate-limited progress checkpoints.
			span.Progressf("%s/%s edges, %s summaries, %s",
				obs.Count(done), obs.Count(total), obs.Count(summaries), obs.Bytes(int64(s.MemoryBytes())))
		}
	}
	span.Endf("%s edges, %s summaries, %s entries, %s",
		obs.Count(total), obs.Count(summaries), obs.Count(int64(s.EntryCount())), obs.Bytes(int64(s.MemoryBytes())))
	return s, nil
}

// errPrecision is the shared out-of-range precision error of the approx
// constructors.
func errPrecision(precision int) error {
	return fmt.Errorf("core: precision %d outside [%d,%d]", precision, hll.MinPrecision, hll.MaxPrecision)
}

// NumNodes returns n.
func (s *ApproxSummaries) NumNodes() int { return len(s.Sketches) }

// EstimateIRS returns the estimated |σω(u)|.
func (s *ApproxSummaries) EstimateIRS(u graph.NodeID) float64 {
	sk := s.Sketches[u]
	if sk == nil {
		return 0
	}
	return sk.Estimate()
}

// Collapse returns u's summary flattened to a plain HyperLogLog, the form
// the oracle unions in O(β). The result is nil when σω(u) is empty.
func (s *ApproxSummaries) Collapse(u graph.NodeID) *hll.Sketch {
	sk := s.Sketches[u]
	if sk == nil {
		return nil
	}
	return sk.Collapse()
}

// EntryCount returns the total number of stored (rank, timestamp) pairs
// across all node sketches.
func (s *ApproxSummaries) EntryCount() int {
	n := 0
	for _, sk := range s.Sketches {
		if sk != nil {
			n += sk.EntryCount()
		}
	}
	return n
}

// MemoryBytes returns the payload size of all sketches (Table 4's
// quantity: EntryBytes per stored pair, independent of how a sketch lays
// entries out in RAM). For actual retained bytes see vhll.MemoryBytes on
// the individual sketches.
func (s *ApproxSummaries) MemoryBytes() int {
	n := 0
	for _, sk := range s.Sketches {
		if sk != nil {
			n += sk.PayloadBytes()
		}
	}
	return n
}

// SpreadEstimate estimates |⋃_{u∈S} σω(u)| by unioning the collapsed
// sketches of the seeds (cell-wise maximum) and running the HyperLogLog
// estimator once, exactly as described in paper §4.1.
func (s *ApproxSummaries) SpreadEstimate(seeds []graph.NodeID) float64 {
	union := hll.MustNew(s.Precision)
	for _, u := range seeds {
		if sk := s.Sketches[u]; sk != nil {
			// Same-precision merge cannot fail.
			_ = union.Merge(sk.Collapse())
		}
	}
	return union.Estimate()
}

// EstimateIRSWindow estimates how many nodes u first becomes able to
// reach during the window [at, at+horizon−1]: the summary timestamps are
// the earliest admissible channel end times λ(u,v), so restricting the
// sketch to that window counts the nodes whose earliest influence lands
// inside it. This is the jumping/sliding-window influence view of the
// time-decaying formulations (PAPERS.md): an ESTIMATE, not an exact
// restriction — dominance pruning may have dropped an in-window entry
// whose dominator (an earlier λ) fell before the window, so tight
// windows can under-count relative to a from-scratch scan of the window.
// For exact window semantics at chunk granularity use
// ChunkView.FoldFrom, which re-folds the admissible suffix.
func (s *ApproxSummaries) EstimateIRSWindow(u graph.NodeID, at, horizon int64) float64 {
	sk := s.Sketches[u]
	if sk == nil {
		return 0
	}
	return sk.EstimateWindow(at, horizon)
}

// SpreadEstimateWindow is EstimateIRSWindow over a seed set: the
// estimated number of distinct nodes first reachable from any seed
// during [at, at+horizon−1], by unioning the window-collapsed sketches.
// The same estimate caveat as EstimateIRSWindow applies.
func (s *ApproxSummaries) SpreadEstimateWindow(seeds []graph.NodeID, at, horizon int64) float64 {
	union := hll.MustNew(s.Precision)
	for _, u := range seeds {
		if sk := s.Sketches[u]; sk != nil {
			// Same-precision merge cannot fail.
			_ = union.Merge(sk.CollapseWindow(at, horizon))
		}
	}
	return union.Estimate()
}
