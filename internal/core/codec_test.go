package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"ipin/internal/graph"
)

func TestExactRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	l := randomLog(rng, 80, 800)
	orig := ComputeExact(l, 150)

	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadExactSummaries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Omega != orig.Omega || got.NumNodes() != orig.NumNodes() {
		t.Fatalf("header mismatch: %d/%d vs %d/%d", got.Omega, got.NumNodes(), orig.Omega, orig.NumNodes())
	}
	for u := range orig.Phi {
		a, b := orig.Phi[u], got.Phi[u]
		if len(a) == 0 && len(b) == 0 {
			continue
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("node %d: %v != %v", u, a, b)
		}
	}
}

func TestApproxRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	l := randomLog(rng, 120, 1500)
	orig, err := ComputeApprox(l, 300, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadApproxSummaries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Omega != orig.Omega || got.Precision != orig.Precision || got.NumNodes() != orig.NumNodes() {
		t.Fatalf("header mismatch: %+v-ish", got)
	}
	// Every estimate and the oracle output must be bit-identical.
	for u := 0; u < l.NumNodes; u++ {
		if got.EstimateIRS(graph.NodeID(u)) != orig.EstimateIRS(graph.NodeID(u)) {
			t.Fatalf("node %d estimate changed across round trip", u)
		}
	}
	seeds := []graph.NodeID{1, 5, 9}
	if got.SpreadEstimate(seeds) != orig.SpreadEstimate(seeds) {
		t.Fatal("spread changed across round trip")
	}
}

func TestApproxRoundTripEmpty(t *testing.T) {
	orig, err := ComputeApprox(graph.New(5), 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadApproxSummaries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 5 || got.EntryCount() != 0 {
		t.Fatalf("empty round trip: %d nodes, %d entries", got.NumNodes(), got.EntryCount())
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := ReadExactSummaries(bytes.NewReader([]byte("not a summary"))); err == nil {
		t.Error("garbage accepted as exact summaries")
	}
	if _, err := ReadApproxSummaries(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted as approx summaries")
	}
}

func TestCodecRejectsKindMismatch(t *testing.T) {
	l := fig1a()
	exact := ComputeExact(l, 3)
	var buf bytes.Buffer
	if _, err := exact.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadApproxSummaries(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("exact payload accepted as approx summaries")
	}
}

func TestCodecRejectsTruncation(t *testing.T) {
	l := fig1a()
	approx, err := ComputeApprox(l, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := approx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) / 4, len(full) / 2, len(full) - 1} {
		if _, err := ReadApproxSummaries(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestCodecRejectsCorruptedEntry(t *testing.T) {
	l := fig1a()
	exact := ComputeExact(l, 3)
	var buf bytes.Buffer
	if _, err := exact.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip bytes in the body; most flips must be caught (out-of-range
	// node, bad varint, duplicate). A few may decode to a different but
	// structurally valid summary — that is acceptable for a checksummed-
	// free format, so only assert that no flip panics.
	for i := 6; i < len(data); i++ {
		corrupted := append([]byte(nil), data...)
		corrupted[i] ^= 0xff
		_, _ = ReadExactSummaries(bytes.NewReader(corrupted))
	}
}
