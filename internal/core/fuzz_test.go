package core

import (
	"bytes"
	"testing"

	"ipin/internal/graph"
)

// FuzzReadExactSummaries: arbitrary bytes either fail cleanly or decode
// to structurally valid summaries.
func FuzzReadExactSummaries(f *testing.F) {
	var buf bytes.Buffer
	if _, err := ComputeExact(fig1a(), 3).WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("IRX1E"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadExactSummaries(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted summaries must be internally consistent: every entry
		// references a node inside the declared range.
		n := s.NumNodes()
		for u, phi := range s.Phi {
			for v := range phi {
				if int(v) < 0 || int(v) >= n {
					t.Fatalf("node %d references out-of-range %d", u, v)
				}
			}
		}
		// And usable: spread queries must not panic.
		if n > 0 {
			_ = s.SpreadExact([]graph.NodeID{0})
		}
	})
}

// FuzzReadApproxSummaries mirrors the exact variant for sketches.
func FuzzReadApproxSummaries(f *testing.F) {
	approx, err := ComputeApprox(fig1a(), 3, 4)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := approx.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("IRX1A"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadApproxSummaries(bytes.NewReader(data))
		if err != nil {
			return
		}
		if s.NumNodes() > 0 {
			_ = s.EstimateIRS(0)
			_ = s.SpreadEstimate([]graph.NodeID{0})
		}
	})
}
