package core

import (
	"bytes"
	"testing"

	"ipin/internal/graph"
	"ipin/internal/vhll"
)

// mkRankHash builds a hash landing in cell with the given rank under
// precision p, tolerating the capped rank 64−p+1 (all remaining bits
// zero).
func mkRankHash(p int, cell uint32, rank uint8) uint64 {
	h := uint64(cell) << (64 - p)
	if max := uint8(64 - p + 1); rank < max {
		h |= uint64(1) << (64 - int(rank) - p)
	}
	return h
}

// FuzzReadExactSummaries: arbitrary bytes either fail cleanly or decode
// to structurally valid summaries.
func FuzzReadExactSummaries(f *testing.F) {
	var buf bytes.Buffer
	if _, err := ComputeExact(fig1a(), 3).WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("IRX1E"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadExactSummaries(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted summaries must be internally consistent: every entry
		// references a node inside the declared range.
		n := s.NumNodes()
		for u, phi := range s.Phi {
			for v := range phi {
				if int(v) < 0 || int(v) >= n {
					t.Fatalf("node %d references out-of-range %d", u, v)
				}
			}
		}
		// And usable: spread queries must not panic.
		if n > 0 {
			_ = s.SpreadExact([]graph.NodeID{0})
		}
	})
}

// FuzzReadSummaries drives the kind-dispatching loader (the one serving
// snapshots pass through) over arbitrary bytes.
func FuzzReadSummaries(f *testing.F) {
	var exact bytes.Buffer
	if _, err := ComputeExact(fig1a(), 3).WriteTo(&exact); err != nil {
		f.Fatal(err)
	}
	f.Add(exact.Bytes())
	approx, err := ComputeApprox(fig1a(), 3, 4)
	if err != nil {
		f.Fatal(err)
	}
	var abuf bytes.Buffer
	if _, err := approx.WriteTo(&abuf); err != nil {
		f.Fatal(err)
	}
	f.Add(abuf.Bytes())
	f.Add([]byte("IRX1Z"))
	// Arena-shaped sketch payloads: summaries whose embedded VHL1 sketches
	// hit the flat layout's boundaries — a node with an empty sketch next
	// to one whose single cell holds a maximal staircase, and cells pinned
	// at the rank cap.
	{
		s := &ApproxSummaries{Omega: 10, Precision: 4, Sketches: make([]*vhll.Sketch, 3)}
		full := vhll.MustNew(4)
		for r := 1; r <= 61; r++ {
			full.AddHash(mkRankHash(4, 7, uint8(r)), int64(r))
		}
		capped := vhll.MustNew(4)
		for c := uint32(0); c < 16; c += 2 {
			capped.AddHash(mkRankHash(4, c, 61), int64(100-int64(c)))
		}
		s.Sketches[0] = full
		s.Sketches[2] = capped
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Hostile headers: a huge declared node count over a tiny input must
	// fail fast without allocating what the header promises.
	f.Add([]byte{'I', 'R', 'X', '1', 'E', 6, 0xFF, 0xFF, 0xFF, 0xFF, 0x07})
	f.Add([]byte{'I', 'R', 'X', '1', 'A', 6, 0xFF, 0xFF, 0xFF, 0xFF, 0x07})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, a, err := ReadSummaries(bytes.NewReader(data))
		if err != nil {
			return
		}
		if (e == nil) == (a == nil) {
			t.Fatal("accepted input decoded to neither or both kinds")
		}
	})
}

// TestDecodeHostileHeaders pins the over-allocation fixes: headers
// declaring huge element counts over tiny inputs must error without
// ballooning memory (they used to pre-allocate the declared size).
func TestDecodeHostileHeaders(t *testing.T) {
	hostile := [][]byte{
		// numNodes = 2^31-1 over an empty body.
		{'I', 'R', 'X', '1', 'E', 6, 0xFF, 0xFF, 0xFF, 0xFF, 0x07},
		{'I', 'R', 'X', '1', 'A', 6, 0xFF, 0xFF, 0xFF, 0xFF, 0x07},
		// One node whose entry count / sketch size is absurd.
		{'I', 'R', 'X', '1', 'E', 6, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F},
		{'I', 'R', 'X', '1', 'A', 6, 1, 0xFF, 0xFF, 0xFF, 0x1F},
	}
	for i, data := range hostile {
		if _, err := ReadExactSummaries(bytes.NewReader(data)); err == nil && data[4] == 'E' {
			t.Errorf("hostile %d accepted by exact reader", i)
		}
		if _, err := ReadApproxSummaries(bytes.NewReader(data)); err == nil && data[4] == 'A' {
			t.Errorf("hostile %d accepted by approx reader", i)
		}
	}
}

// FuzzReadApproxSummaries mirrors the exact variant for sketches.
func FuzzReadApproxSummaries(f *testing.F) {
	approx, err := ComputeApprox(fig1a(), 3, 4)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := approx.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("IRX1A"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadApproxSummaries(bytes.NewReader(data))
		if err != nil {
			return
		}
		if s.NumNodes() > 0 {
			_ = s.EstimateIRS(0)
			_ = s.SpreadEstimate([]graph.NodeID{0})
		}
	})
}
