package core_test

import (
	"fmt"

	"ipin/internal/core"
	"ipin/internal/graph"
)

// The paper's Figure 1a network, end to end: exact summaries, oracle
// query, and greedy seed selection.
func Example() {
	l := graph.New(6)
	const a, b, c, d, e, f = 0, 1, 2, 3, 4, 5
	l.Add(a, d, 1)
	l.Add(e, f, 2)
	l.Add(d, e, 3)
	l.Add(e, b, 4)
	l.Add(a, b, 5)
	l.Add(b, e, 6)
	l.Add(e, c, 7)
	l.Add(b, c, 8)
	l.Sort()

	s := core.ComputeExact(l, 3)
	fmt.Println("|σ(a)| =", s.IRSSize(a))
	lambda, _ := s.Lambda(a, e)
	fmt.Println("λ(a,e) =", lambda)

	oracle := core.ExactOracle{S: s}
	fmt.Println("spread({a,e}) =", oracle.Spread([]graph.NodeID{a, e}))

	seeds := core.TopKExact(s, 1)
	fmt.Println("top influencer:", seeds[0])
	// Output:
	// |σ(a)| = 4
	// λ(a,e) = 3
	// spread({a,e}) = 5
	// top influencer: 0
}
