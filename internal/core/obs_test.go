package core

import (
	"testing"

	"ipin/internal/graph"
	"ipin/internal/obs"
	"ipin/internal/vhll"
)

// obsLog builds a small chain-plus-fanout log for instrumentation tests.
func obsLog() *graph.Log {
	l := graph.New(5)
	l.Add(0, 1, 10)
	l.Add(1, 2, 20)
	l.Add(2, 3, 30)
	l.Add(3, 4, 40)
	l.Add(0, 0, 45) // self-loop: scanned but never merged
	l.Add(1, 4, 50)
	l.Sort()
	return l
}

func TestScanMetricsExact(t *testing.T) {
	reg := obs.NewRegistry()
	InstallMetrics(reg)
	t.Cleanup(func() { InstallMetrics(nil) })

	s := ComputeExact(obsLog(), 100)
	snap := reg.Snapshot()
	if got := snap[`ipin_scan_edges_total{algo="exact"}`]; got != int64(6) {
		t.Fatalf("edges = %v, want 6", got)
	}
	added, ok := snap[`ipin_scan_entries_added_total{algo="exact"}`].(int64)
	if !ok || int(added) != s.EntryCount() {
		t.Fatalf("entries added = %v, want %d", added, s.EntryCount())
	}
	if got := snap[`ipin_scan_summaries_created_total{algo="exact"}`]; got != int64(4) {
		t.Fatalf("summaries = %v, want 4", got)
	}
}

func TestScanMetricsApprox(t *testing.T) {
	reg := obs.NewRegistry()
	InstallMetrics(reg)
	vhll.InstallMetrics(reg)
	t.Cleanup(func() {
		InstallMetrics(nil)
		vhll.InstallMetrics(nil)
	})

	if _, err := ComputeApprox(obsLog(), 100, DefaultPrecision); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap[`ipin_scan_edges_total{algo="approx"}`]; got != int64(6) {
		t.Fatalf("edges = %v, want 6", got)
	}
	if got, _ := snap[`ipin_vhll_inserts_total`].(int64); got == 0 {
		t.Fatal("no vhll inserts recorded")
	}
}

func TestSelectionMetricsAndProgress(t *testing.T) {
	reg := obs.NewRegistry()
	InstallMetrics(reg)
	var events []obs.Event
	SetProgressSink(func(e obs.Event) { events = append(events, e) })
	t.Cleanup(func() {
		InstallMetrics(nil)
		SetProgressSink(nil)
	})

	s := ComputeExact(obsLog(), 100)
	if got := TopKExact(s, 2); len(got) != 2 {
		t.Fatalf("topk = %v", got)
	}
	if got := TopKExactCELF(s, 2); len(got) != 2 {
		t.Fatalf("celf topk = %v", got)
	}

	snap := reg.Snapshot()
	if got := snap[`ipin_select_seeds_total{strategy="greedy"}`]; got != int64(2) {
		t.Fatalf("greedy seeds = %v, want 2", got)
	}
	if got := snap[`ipin_select_seeds_total{strategy="celf"}`]; got != int64(2) {
		t.Fatalf("celf seeds = %v, want 2", got)
	}
	if got, _ := snap[`ipin_select_gain_evaluations_total{strategy="celf"}`].(int64); got == 0 {
		t.Fatal("no celf gain evaluations recorded")
	}

	// Each phase must have emitted exactly one Done event: scan/exact,
	// select/greedy, select/celf.
	phases := map[string]int{}
	for _, e := range events {
		if e.Done {
			phases[e.Phase]++
		}
	}
	for _, phase := range []string{"scan/exact", "select/greedy", "select/celf"} {
		if phases[phase] != 1 {
			t.Fatalf("phase %q done events = %d, want 1 (events: %+v)", phase, phases[phase], events)
		}
	}
}

// TestMetricsUninstalled pins that scans run clean with no collector —
// the default state every other test in this package exercises.
func TestMetricsUninstalled(t *testing.T) {
	InstallMetrics(nil)
	SetProgressSink(nil)
	s := ComputeExact(obsLog(), 100)
	if s.EntryCount() == 0 {
		t.Fatal("scan produced nothing")
	}
}
