package core

import (
	"math/rand"
	"reflect"
	"testing"

	"ipin/internal/graph"
	"ipin/internal/temporal"
)

// Node labels of the paper's figures.
const (
	a graph.NodeID = iota
	b
	c
	d
	e
	f
)

// fig1a is the interaction network of the paper's Figure 1a.
func fig1a() *graph.Log {
	l := graph.New(6)
	l.Add(a, d, 1)
	l.Add(e, f, 2)
	l.Add(d, e, 3)
	l.Add(e, b, 4)
	l.Add(a, b, 5)
	l.Add(b, e, 6)
	l.Add(e, c, 7)
	l.Add(b, c, 8)
	l.Sort()
	return l
}

// TestPaperExample2 checks the final summaries of the paper's worked
// Example 2 (Figure 1a, ω = 3) entry by entry.
func TestPaperExample2(t *testing.T) {
	s := ComputeExact(fig1a(), 3)
	want := []map[graph.NodeID]graph.Time{
		a: {b: 5, c: 7, e: 3, d: 1},
		b: {c: 7, e: 6},
		c: {},
		d: {e: 3, b: 4},
		e: {c: 7, b: 4, f: 2},
		f: {},
	}
	for u := range want {
		got := s.Phi[u]
		if len(got) != len(want[u]) {
			t.Errorf("ϕ(%d) = %v, want %v", u, got, want[u])
			continue
		}
		for v, tm := range want[u] {
			if got[v] != tm {
				t.Errorf("node %d: λ(%d) = %d, want %d", u, v, got[v], tm)
			}
		}
	}
}

// TestExampleTraceIntermediates checks two intermediate states the paper
// narrates: after edge (b,e,6) node b's entry for c improves from 8 to 7,
// and during (a,b,5) the entry (e,6) of ϕ(b) is admitted while (c,7) stays
// within the window.
func TestExampleTraceIntermediates(t *testing.T) {
	// Process only the suffix starting at time 5 (reverse order).
	l := graph.New(6)
	l.Add(a, b, 5)
	l.Add(b, e, 6)
	l.Add(e, c, 7)
	l.Add(b, c, 8)
	l.Sort()
	s := ComputeExact(l, 3)
	// ϕ(b): direct (c,8) improved via e to (c,7); (e,6).
	if s.Phi[b][c] != 7 {
		t.Errorf("λ(b,c) = %d, want 7 (improved through e)", s.Phi[b][c])
	}
	if s.Phi[b][e] != 6 {
		t.Errorf("λ(b,e) = %d, want 6", s.Phi[b][e])
	}
	// ϕ(a): (b,5) and (c,7) [7−5 < 3] and (e,6) [6−5 < 3].
	wantA := map[graph.NodeID]graph.Time{b: 5, c: 7, e: 6}
	if !reflect.DeepEqual(s.Phi[a], wantA) {
		t.Errorf("ϕ(a) = %v, want %v", s.Phi[a], wantA)
	}
}

// TestExactMatchesBruteForce cross-checks the one-pass algorithm against
// the definition-level brute force on random interaction networks over a
// sweep of window lengths.
func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(12)
		m := 10 + rng.Intn(80)
		l := graph.New(n)
		for i := 0; i < m; i++ {
			l.Add(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), graph.Time(i+1))
		}
		l.Sort()
		for _, omega := range []int64{1, 2, 5, int64(m / 2), int64(m + 1)} {
			got := ComputeExact(l, omega)
			want := temporal.ReachSets(l, omega)
			for u := 0; u < n; u++ {
				gu := got.Phi[u]
				if gu == nil {
					gu = map[graph.NodeID]graph.Time{}
				}
				if len(gu) != len(want[u]) {
					t.Fatalf("trial %d ω=%d node %d: got %v, want %v", trial, omega, u, gu, want[u])
				}
				for v, tm := range want[u] {
					if gu[v] != tm {
						t.Fatalf("trial %d ω=%d: λ(%d,%d) = %d, want %d", trial, omega, u, v, gu[v], tm)
					}
				}
			}
		}
	}
}

func TestExactAccessors(t *testing.T) {
	s := ComputeExact(fig1a(), 3)
	if s.NumNodes() != 6 {
		t.Errorf("NumNodes = %d", s.NumNodes())
	}
	if s.IRSSize(a) != 4 {
		t.Errorf("|σ(a)| = %d, want 4", s.IRSSize(a))
	}
	if got := len(s.IRS(a)); got != 4 {
		t.Errorf("IRS(a) has %d nodes, want 4", got)
	}
	if tm, ok := s.Lambda(a, e); !ok || tm != 3 {
		t.Errorf("Lambda(a,e) = %d,%v, want 3,true", tm, ok)
	}
	if _, ok := s.Lambda(c, a); ok {
		t.Error("Lambda(c,a) exists, want absent")
	}
	// 4+2+0+2+3+0 = 11 entries, 12 bytes each.
	if got := s.EntryCount(); got != 11 {
		t.Errorf("EntryCount = %d, want 11", got)
	}
	if got := s.MemoryBytes(); got != 11*12 {
		t.Errorf("MemoryBytes = %d, want %d", got, 11*12)
	}
}

func TestSpreadExact(t *testing.T) {
	s := ComputeExact(fig1a(), 3)
	// σ(a) = {b,c,d,e}, σ(e) = {b,c,f}: union has 5 elements.
	if got := s.SpreadExact([]graph.NodeID{a, e}); got != 5 {
		t.Errorf("Spread({a,e}) = %d, want 5", got)
	}
	if got := s.SpreadExact(nil); got != 0 {
		t.Errorf("Spread(∅) = %d, want 0", got)
	}
	// Duplicated seeds change nothing.
	if got := s.SpreadExact([]graph.NodeID{a, a, a}); got != 4 {
		t.Errorf("Spread({a,a,a}) = %d, want 4", got)
	}
}

func TestOmegaOneIsDirectInteractions(t *testing.T) {
	s := ComputeExact(fig1a(), 1)
	// With ω=1 only single interactions qualify.
	want := []int{
		a: 2, // d, b
		b: 2, // e, c
		c: 0,
		d: 1, // e
		e: 3, // f, b, c
		f: 0,
	}
	for u, w := range want {
		if got := s.IRSSize(graph.NodeID(u)); got != w {
			t.Errorf("|σ1(%d)| = %d, want %d", u, got, w)
		}
	}
}

func TestLargeOmegaEqualsUnbounded(t *testing.T) {
	l := fig1a()
	_, _, span := l.Span()
	s1 := ComputeExact(l, span)
	s2 := ComputeExact(l, span*10)
	for u := 0; u < l.NumNodes; u++ {
		if s1.IRSSize(graph.NodeID(u)) != s2.IRSSize(graph.NodeID(u)) {
			t.Errorf("node %d: ω=span differs from ω=10·span", u)
		}
	}
}

func TestSelfLoopInteractionsIgnored(t *testing.T) {
	l := graph.New(2)
	l.Add(0, 0, 1)
	l.Add(0, 1, 2)
	l.Add(1, 1, 3)
	l.Sort()
	s := ComputeExact(l, 10)
	if s.IRSSize(0) != 1 {
		t.Errorf("|σ(0)| = %d, want 1", s.IRSSize(0))
	}
	if s.IRSSize(1) != 0 {
		t.Errorf("|σ(1)| = %d, want 0", s.IRSSize(1))
	}
}

func TestTiedTimestampsDoNotChain(t *testing.T) {
	// Definition 1 requires strictly increasing times; two interactions
	// sharing a timestamp must not form a channel, even though the paper
	// assumes such inputs never occur.
	l := graph.New(3)
	l.Add(0, 1, 5)
	l.Add(1, 2, 5)
	l.Sort()
	s := ComputeExact(l, 100)
	if _, ok := s.Lambda(0, 2); ok {
		t.Error("channel chained through tied timestamps")
	}
	// Agreement with the brute force on the tied input.
	want := temporal.ReachSets(l, 100)
	for u := 0; u < 3; u++ {
		if s.IRSSize(graph.NodeID(u)) != len(want[u]) {
			t.Errorf("node %d: %d vs brute force %d", u, s.IRSSize(graph.NodeID(u)), len(want[u]))
		}
	}
}

func TestEmptyLog(t *testing.T) {
	s := ComputeExact(graph.New(4), 5)
	if s.EntryCount() != 0 {
		t.Fatalf("EntryCount = %d on empty log", s.EntryCount())
	}
	if got := s.SpreadExact([]graph.NodeID{0, 1, 2, 3}); got != 0 {
		t.Fatalf("Spread = %d on empty log", got)
	}
}
