package core

import (
	"ipin/internal/graph"
	"ipin/internal/obs"
)

// ExactSummaries holds the output of the exact one-pass algorithm: for
// every node u, the IRS summary ϕω(u) mapping each reachable node v to
// λ(u,v), the earliest end time of an admissible channel u→v.
type ExactSummaries struct {
	// Omega is the maximum channel duration the summaries were built with.
	Omega int64
	// Phi[u] is ϕω(u). A nil map means σω(u) is empty.
	Phi []map[graph.NodeID]graph.Time
}

// ComputeExact runs the paper's Algorithm 2: a single scan over the
// interactions in reverse chronological order. Processing interaction
// (u,v,t) first adds (v,t) to ϕ(u) — the channel consisting of that one
// interaction — and then merges in every entry (x,t_x) of ϕ(v) with
// t_x − t < ω, i.e. every channel from v that still fits the window when
// prefixed with (u,v,t). Entries keep the minimum end time (Add).
//
// The log must be sorted ascending; ComputeExact scans it backwards
// without copying. Self-loops are skipped: they create no channel to a
// new node. Time is O(n·m) worst case and space O(n²) (paper Lemma 3).
func ComputeExact(l *graph.Log, omega int64) *ExactSummaries {
	mx := m()
	span := obs.NewSpan(sink(), "scan/exact")
	s := &ExactSummaries{Omega: omega, Phi: make([]map[graph.NodeID]graph.Time, l.NumNodes)}
	edges := l.Interactions
	total := int64(len(edges))
	var summaries, entries int64
	for i := len(edges) - 1; i >= 0; i-- {
		e := edges[i]
		mx.exactEdges.Inc()
		if e.Src == e.Dst {
			continue
		}
		phiU := s.Phi[e.Src]
		if phiU == nil {
			phiU = make(map[graph.NodeID]graph.Time)
			s.Phi[e.Src] = phiU
			summaries++
			mx.exactSummaries.Inc()
		}
		added := int64(0)
		if add(phiU, e.Dst, e.At) {
			added++
		}
		if phiV := s.Phi[e.Dst]; phiV != nil {
			mx.exactMerges.Inc()
			mx.exactMergeEntries.Add(int64(len(phiV)))
			skipped := int64(0)
			for x, tx := range phiV {
				// x == e.Src would record u as influencing itself through
				// a temporal cycle; the paper's worked Example 2 excludes
				// such self-entries, so Merge skips them. tx > e.At keeps
				// channels strictly time-increasing (Definition 1) even
				// when the input violates the distinct-timestamps
				// assumption; on distinct stamps it is always true here.
				if x != e.Src && tx > e.At && int64(tx-e.At) < omega {
					if add(phiU, x, tx) {
						added++
					}
				} else {
					skipped++
				}
			}
			mx.exactWindowSkips.Add(skipped)
		}
		entries += added
		mx.exactEntriesAdded.Add(added)
		if done := total - int64(i); done&progressMask == 0 && span.Due() {
			span.Progressf("%s/%s edges, %s summaries, %s entries, %s",
				obs.Count(done), obs.Count(total), obs.Count(summaries),
				obs.Count(entries), obs.Bytes(entries*entryBytesExact))
		}
	}
	span.Endf("%s edges, %s summaries, %s entries, %s",
		obs.Count(total), obs.Count(summaries), obs.Count(entries), obs.Bytes(entries*entryBytesExact))
	return s
}

// add is the Add of Algorithm 2: insert (v,t) keeping the minimum end time
// when v is already present. It reports whether v was newly inserted.
func add(phi map[graph.NodeID]graph.Time, v graph.NodeID, t graph.Time) bool {
	old, ok := phi[v]
	if !ok || t < old {
		phi[v] = t
	}
	return !ok
}

// NumNodes returns n.
func (s *ExactSummaries) NumNodes() int { return len(s.Phi) }

// IRSSize returns |σω(u)|.
func (s *ExactSummaries) IRSSize(u graph.NodeID) int { return len(s.Phi[u]) }

// IRS returns σω(u) as a copied slice of node IDs (unordered).
func (s *ExactSummaries) IRS(u graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(s.Phi[u]))
	for v := range s.Phi[u] {
		out = append(out, v)
	}
	return out
}

// Lambda returns λ(u,v) and whether v ∈ σω(u).
func (s *ExactSummaries) Lambda(u, v graph.NodeID) (graph.Time, bool) {
	t, ok := s.Phi[u][v]
	return t, ok
}

// EntryCount returns the total number of (v, λ) entries over all nodes —
// the quantity whose worst case is n² (paper Lemma 3).
func (s *ExactSummaries) EntryCount() int {
	n := 0
	for _, phi := range s.Phi {
		n += len(phi)
	}
	return n
}

// entryBytesExact is the payload of one exact summary entry: a 4-byte
// node ID plus an 8-byte timestamp.
const entryBytesExact = 12

// MemoryBytes returns the payload size of all summaries, mirroring the
// accounting used for the sketches so Table 4 comparisons are fair.
func (s *ExactSummaries) MemoryBytes() int { return s.EntryCount() * entryBytesExact }

// SpreadExact returns |⋃_{u∈S} σω(u)|, the exact influence oracle of
// paper §4.1, by unioning the summaries and discarding duplicates.
func (s *ExactSummaries) SpreadExact(seeds []graph.NodeID) int {
	union := make(map[graph.NodeID]struct{})
	for _, u := range seeds {
		for v := range s.Phi[u] {
			union[v] = struct{}{}
		}
	}
	return len(union)
}
