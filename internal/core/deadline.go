package core

import (
	"ipin/internal/graph"
	"ipin/internal/hll"
)

// Deadline-bounded influence queries. The summaries keep, for every
// reachable node v, the earliest end time λ(u,v) of an admissible channel
// (paper Definition 4) — the algorithm needs it for the reverse-scan
// merges, but it also answers a query the paper's framing invites and
// plain reachability cannot: "how many nodes can the seeds have
// influenced BY time T?". SpreadBy counts exactly the union of
// {v : λ(u,v) ≤ T}; the sketch variant estimates it losslessly because
// dominance pruning preserves prefix maxima.

// SpreadBy returns |⋃_{u∈S} {v ∈ σω(u) : λ(u,v) ≤ deadline}| — the exact
// number of distinct nodes reachable from the seed set through channels
// that END no later than deadline.
func (s *ExactSummaries) SpreadBy(seeds []graph.NodeID, deadline graph.Time) int {
	union := make(map[graph.NodeID]struct{})
	for _, u := range seeds {
		for v, lambda := range s.Phi[u] {
			if lambda <= deadline {
				union[v] = struct{}{}
			}
		}
	}
	return len(union)
}

// InfluenceSizeBy returns |{v ∈ σω(u) : λ(u,v) ≤ deadline}|.
func (s *ExactSummaries) InfluenceSizeBy(u graph.NodeID, deadline graph.Time) int {
	n := 0
	for _, lambda := range s.Phi[u] {
		if lambda <= deadline {
			n++
		}
	}
	return n
}

// SpreadByEstimate estimates the deadline-bounded spread from the
// sketches: per seed, the summary is collapsed to entries with timestamp
// (= λ) at most deadline, then unioned cell-wise.
func (s *ApproxSummaries) SpreadByEstimate(seeds []graph.NodeID, deadline graph.Time) float64 {
	union := hll.MustNew(s.Precision)
	for _, u := range seeds {
		if sk := s.Sketches[u]; sk != nil {
			// Same-precision merge cannot fail.
			_ = union.Merge(sk.CollapseBefore(int64(deadline)))
		}
	}
	return union.Estimate()
}

// EstimateIRSBy estimates |{v ∈ σω(u) : λ(u,v) ≤ deadline}|.
func (s *ApproxSummaries) EstimateIRSBy(u graph.NodeID, deadline graph.Time) float64 {
	sk := s.Sketches[u]
	if sk == nil {
		return 0
	}
	return sk.EstimateBefore(int64(deadline))
}
