package core

import (
	"math/rand"
	"reflect"
	"testing"

	"ipin/internal/graph"
)

// noisyCoverage simulates an estimator whose first-round gain exceeds the
// caller-provided individual size for some nodes — the condition under
// which Algorithm 4's sorted-size early exit is unsound.
type noisyCoverage struct {
	gain1 []float64
	added []graph.NodeID
}

func (c *noisyCoverage) gain(u graph.NodeID) float64 {
	g := c.gain1[u]
	// Gains collapse after the first selection; only the first pick matters.
	for range c.added {
		g /= 16
	}
	return g
}

func (c *noisyCoverage) add(u graph.NodeID) { c.added = append(c.added, u) }

// TestGreedyNoisyCoverageClampsEarlyExit is the regression test for the
// early-exit bug: node 2's real first-round gain (20) exceeds its size
// estimate (1), so the unclamped scan evaluates node 0 (gain 10), sees
// bestGain ≥ size[1] and exits without ever evaluating node 2. With
// noisy=true the pre-pass lifts size[2] to the observed gain and node 2
// wins the first round.
func TestGreedyNoisyCoverageClampsEarlyExit(t *testing.T) {
	size := []float64{10, 5, 1}
	cov := &noisyCoverage{gain1: []float64{10, 5, 20}}
	seeds := greedyTopK(3, 1, size, cov, true)
	if len(seeds) != 1 || seeds[0] != 2 {
		t.Fatalf("noisy greedy selected %v, want [2]", seeds)
	}
	// Demonstrate the bug the clamp fixes: the same coverage under the
	// unclamped scan picks the wrong node. This pins the failure mode so
	// the test fails on the old behaviour.
	cov = &noisyCoverage{gain1: []float64{10, 5, 20}}
	seeds = greedyTopK(3, 1, size, cov, false)
	if len(seeds) != 1 || seeds[0] != 0 {
		t.Fatalf("unclamped greedy selected %v; the early-exit premise changed, revisit the clamp", seeds)
	}
}

// TestSelectionParallelismInvariant pins that the worker count never
// changes which seeds any strategy selects: the chunked greedy evaluation
// and the batched CELF re-evaluation must reproduce the sequential scan's
// choices exactly.
func TestSelectionParallelismInvariant(t *testing.T) {
	defer SetParallelism(0)
	rng := rand.New(rand.NewSource(21))
	l := randomLog(rng, 120, 900)
	const omega, k = 60, 8
	es := ComputeExact(l, omega)
	as, err := ComputeApprox(l, omega, DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	run := func() [][]graph.NodeID {
		return [][]graph.NodeID{
			TopKExact(es, k),
			TopKApproxSeeds(as, k),
			TopKExactCELF(es, k),
			TopKApproxCELF(as, k),
		}
	}
	SetParallelism(1)
	want := run()
	for _, workers := range []int{2, 4, 7} {
		SetParallelism(workers)
		got := run()
		for s := range want {
			if !reflect.DeepEqual(want[s], got[s]) {
				t.Fatalf("workers=%d strategy %d selected %v, sequential %v", workers, s, got[s], want[s])
			}
		}
	}
}

// TestCELFMatchesGreedySeedForSeed: with the total-order heap tie rule
// (gain desc, size desc, node asc) CELF's selection is identical to the
// greedy scan's first-max rule, not merely equal in spread.
func TestCELFMatchesGreedySeedForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 5; trial++ {
		l := randomLog(rng, 80, 600)
		es := ComputeExact(l, 50)
		greedy := TopKExact(es, 6)
		celf := TopKExactCELF(es, 6)
		if !reflect.DeepEqual(greedy, celf) {
			t.Fatalf("trial %d: greedy %v != celf %v", trial, greedy, celf)
		}
	}
}

// TestSpreadParallelismInvariant pins the tree-merge union in
// ApproxOracle.Spread to the sequential union — identical registers,
// hence identical estimates, for seed sets past the parallel threshold.
func TestSpreadParallelismInvariant(t *testing.T) {
	defer SetParallelism(0)
	rng := rand.New(rand.NewSource(5))
	n := 3 * spreadParallelMinSeeds
	l := randomLog(rng, n, 4000)
	as, err := ComputeApprox(l, 80, DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	o := NewApproxOracle(as)
	seeds := make([]graph.NodeID, n)
	for i := range seeds {
		seeds[i] = graph.NodeID(i)
	}
	SetParallelism(1)
	want := o.Spread(seeds)
	for _, workers := range []int{2, 4} {
		SetParallelism(workers)
		if got := o.Spread(seeds); got != want {
			t.Fatalf("workers=%d: Spread = %v, sequential %v", workers, got, want)
		}
	}
}
