package core

import (
	"sync/atomic"

	"ipin/internal/obs"
)

// metrics are the package's telemetry instruments, covering the reverse
// scans (paper Algorithms 2 and 3) and the greedy/CELF selection loops
// (Algorithm 4). All fields are nil until InstallMetrics runs, so every
// record site is a no-op by default — the disabled hot path costs one
// atomic pointer load per function plus a nil check per event.
type metrics struct {
	exactEdges        *obs.Counter
	exactSummaries    *obs.Counter
	exactMerges       *obs.Counter
	exactMergeEntries *obs.Counter
	exactEntriesAdded *obs.Counter
	exactWindowSkips  *obs.Counter

	approxEdges     *obs.Counter
	approxSummaries *obs.Counter
	approxMerges    *obs.Counter

	greedyGainEvals *obs.Counter
	greedySeeds     *obs.Counter
	celfGainEvals   *obs.Counter
	celfSeeds       *obs.Counter
}

var (
	installed atomic.Pointer[metrics]
	noop      = new(metrics)
)

// m returns the active metrics set, never nil.
func m() *metrics {
	if p := installed.Load(); p != nil {
		return p
	}
	return noop
}

// InstallMetrics registers this package's instruments in reg and starts
// recording into them; nil uninstalls. The sketch-level costs of the
// approximate scan (register updates, dominance prunes, merge entries)
// live in package vhll — install its metrics alongside.
func InstallMetrics(reg *obs.Registry) {
	if reg == nil {
		installed.Store(nil)
		return
	}
	installed.Store(&metrics{
		exactEdges:        reg.Counter(`ipin_scan_edges_total{algo="exact"}`, "Interactions examined by the reverse IRS scans."),
		exactSummaries:    reg.Counter(`ipin_scan_summaries_created_total{algo="exact"}`, "Per-node summaries created by the scans."),
		exactMerges:       reg.Counter(`ipin_scan_merges_total{algo="exact"}`, "Summary merge operations performed by the scans."),
		exactMergeEntries: reg.Counter(`ipin_scan_merge_entries_total{algo="exact"}`, "Summary entries examined during exact merges."),
		exactEntriesAdded: reg.Counter(`ipin_scan_entries_added_total{algo="exact"}`, "New (node, time) entries stored in exact summaries."),
		exactWindowSkips:  reg.Counter(`ipin_scan_window_skips_total{algo="exact"}`, "Merge entries dropped by the window / self-loop filters."),

		approxEdges:     reg.Counter(`ipin_scan_edges_total{algo="approx"}`, "Interactions examined by the reverse IRS scans."),
		approxSummaries: reg.Counter(`ipin_scan_summaries_created_total{algo="approx"}`, "Per-node summaries created by the scans."),
		approxMerges:    reg.Counter(`ipin_scan_merges_total{algo="approx"}`, "Summary merge operations performed by the scans."),

		greedyGainEvals: reg.Counter(`ipin_select_gain_evaluations_total{strategy="greedy"}`, "Marginal-gain oracle calls made by seed selection."),
		greedySeeds:     reg.Counter(`ipin_select_seeds_total{strategy="greedy"}`, "Seeds selected."),
		celfGainEvals:   reg.Counter(`ipin_select_gain_evaluations_total{strategy="celf"}`, "Marginal-gain oracle calls made by seed selection."),
		celfSeeds:       reg.Counter(`ipin_select_seeds_total{strategy="celf"}`, "Seeds selected."),
	})
}

// sinkBox wraps a Sink so it can live in an atomic pointer.
type sinkBox struct{ sink obs.Sink }

var progressSink atomic.Pointer[sinkBox]

// SetProgressSink installs a sink receiving phase progress events from
// the scans and selection loops ("scan/exact", "scan/approx",
// "select/greedy", "select/celf"); nil uninstalls. With no sink the
// phases emit nothing and pay nothing beyond a gated counter check.
func SetProgressSink(s obs.Sink) {
	if s == nil {
		progressSink.Store(nil)
		return
	}
	progressSink.Store(&sinkBox{sink: s})
}

// sink returns the installed progress sink, or nil.
func sink() obs.Sink {
	if b := progressSink.Load(); b != nil {
		return b.sink
	}
	return nil
}

// progressMask gates progress checks in scan loops: the span's rate
// limiter is consulted only once per this many edges, keeping the
// per-edge cost to one mask-and-branch.
const progressMask = 1<<16 - 1
