package core

import (
	"math"
	"math/rand"
	"testing"

	"ipin/internal/graph"
	"ipin/internal/stats"
)

// randomLog builds a random interaction network with distinct timestamps.
func randomLog(rng *rand.Rand, n, m int) *graph.Log {
	l := graph.New(n)
	for i := 0; i < m; i++ {
		src := graph.NodeID(rng.Intn(n))
		dst := graph.NodeID(rng.Intn(n))
		l.Add(src, dst, graph.Time(i+1))
	}
	l.Sort()
	return l
}

func TestComputeApproxValidatesPrecision(t *testing.T) {
	if _, err := ComputeApprox(graph.New(2), 5, 1); err == nil {
		t.Error("precision 1 accepted")
	}
	if _, err := ComputeApprox(graph.New(2), 5, 99); err == nil {
		t.Error("precision 99 accepted")
	}
}

// TestApproxSmallGraphNearExact: on the paper's toy graph the sets are
// tiny, so the linear-counting regime should recover them almost exactly.
// The one systematic difference is documented in DESIGN.md: node e lies
// on the temporal cycle e→b→e, and the sketch cannot filter the hashed
// self-entry the cycle feeds back, so e's estimate runs one high.
func TestApproxSmallGraphNearExact(t *testing.T) {
	l := fig1a()
	exact := ComputeExact(l, 3)
	approx, err := ComputeApprox(l, 3, DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < l.NumNodes; u++ {
		got := approx.EstimateIRS(graph.NodeID(u))
		want := float64(exact.IRSSize(graph.NodeID(u)))
		if u == int(e) {
			want++ // self-cycle phantom
		}
		if math.Abs(got-want) > 0.5 {
			t.Errorf("node %d: estimate %.2f, want %.0f", u, got, want)
		}
	}
}

// TestApproxAccuracyBeta512 mirrors the paper's Table 3 finding: at
// β = 512 the average relative error of the IRS size estimates stays in
// the low percents.
func TestApproxAccuracyBeta512(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := randomLog(rng, 400, 6000)
	omega := int64(600)
	exact := ComputeExact(l, omega)
	approx, err := ComputeApprox(l, omega, 9)
	if err != nil {
		t.Fatal(err)
	}
	var errs []float64
	for u := 0; u < l.NumNodes; u++ {
		truth := float64(exact.IRSSize(graph.NodeID(u)))
		if truth == 0 {
			continue
		}
		errs = append(errs, stats.RelErr(approx.EstimateIRS(graph.NodeID(u)), truth))
	}
	if len(errs) == 0 {
		t.Fatal("no nodes with nonempty IRS")
	}
	if mean := stats.Mean(errs); mean > 0.12 {
		t.Errorf("average relative error %.4f exceeds 0.12 at β=512", mean)
	}
}

// TestApproxAccuracyImprovesWithBeta mirrors Table 3's trend: error
// shrinks as β grows.
func TestApproxAccuracyImprovesWithBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := randomLog(rng, 300, 5000)
	omega := int64(800)
	exact := ComputeExact(l, omega)
	meanErr := func(precision int) float64 {
		approx, err := ComputeApprox(l, omega, precision)
		if err != nil {
			t.Fatal(err)
		}
		var errs []float64
		for u := 0; u < l.NumNodes; u++ {
			truth := float64(exact.IRSSize(graph.NodeID(u)))
			if truth == 0 {
				continue
			}
			errs = append(errs, stats.RelErr(approx.EstimateIRS(graph.NodeID(u)), truth))
		}
		return stats.Mean(errs)
	}
	e4 := meanErr(4)
	e9 := meanErr(9)
	if e9 >= e4 {
		t.Errorf("error did not improve with β: β=16 → %.4f, β=512 → %.4f", e4, e9)
	}
}

// TestSpreadEstimateTracksExact checks the oracle union estimate against
// the exact union for random seed sets.
func TestSpreadEstimateTracksExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := randomLog(rng, 300, 4000)
	omega := int64(500)
	exact := ComputeExact(l, omega)
	approx, err := ComputeApprox(l, omega, 9)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		k := 1 + rng.Intn(20)
		seeds := make([]graph.NodeID, k)
		for i := range seeds {
			seeds[i] = graph.NodeID(rng.Intn(l.NumNodes))
		}
		truth := float64(exact.SpreadExact(seeds))
		got := approx.SpreadEstimate(seeds)
		if truth == 0 {
			if got != 0 {
				t.Errorf("trial %d: estimate %.1f for empty union", trial, got)
			}
			continue
		}
		if rel := stats.RelErr(got, truth); rel > 0.2 {
			t.Errorf("trial %d: spread estimate %.1f vs exact %.0f (rel %.3f)", trial, got, truth, rel)
		}
	}
}

// TestApproxWindowMonotone: growing ω can only grow each node's IRS, and
// the estimates should reflect that within sketch noise.
func TestApproxWindowMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := randomLog(rng, 200, 3000)
	small, err := ComputeApprox(l, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	big, err := ComputeApprox(l, 3000, 9)
	if err != nil {
		t.Fatal(err)
	}
	worse := 0
	for u := 0; u < l.NumNodes; u++ {
		if big.EstimateIRS(graph.NodeID(u)) < small.EstimateIRS(graph.NodeID(u))-1 {
			worse++
		}
	}
	if worse > l.NumNodes/50 {
		t.Errorf("%d/%d nodes shrank when ω grew 30×", worse, l.NumNodes)
	}
}

func TestApproxMemoryAccounting(t *testing.T) {
	l := fig1a()
	approx, err := ComputeApprox(l, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if approx.EntryCount() == 0 {
		t.Fatal("no sketch entries after processing")
	}
	if approx.MemoryBytes() != approx.EntryCount()*9 {
		t.Fatalf("MemoryBytes %d != 9·EntryCount %d", approx.MemoryBytes(), approx.EntryCount())
	}
	// Nodes that never act as a source have no sketch.
	if approx.Sketches[c] != nil || approx.Sketches[f] != nil {
		t.Error("sink nodes were allocated sketches")
	}
	if approx.EstimateIRS(c) != 0 {
		t.Error("sink node has nonzero estimate")
	}
}

// TestApproxDeterminism: the pass is fully deterministic.
func TestApproxDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := randomLog(rng, 100, 1000)
	a1, err := ComputeApprox(l, 200, 8)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ComputeApprox(l, 200, 8)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < l.NumNodes; u++ {
		if a1.EstimateIRS(graph.NodeID(u)) != a2.EstimateIRS(graph.NodeID(u)) {
			t.Fatalf("node %d: nondeterministic estimate", u)
		}
	}
}
