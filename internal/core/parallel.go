package core

import (
	"sync/atomic"

	"ipin/internal/graph"
	"ipin/internal/hll"
	"ipin/internal/obs"
	"ipin/internal/par"
	"ipin/internal/vhll"
)

// Time-sliced parallel IRS construction.
//
// The reverse-chronological scans of Algorithms 2 and 3 look inherently
// sequential — processing interaction (u,v,t) merges ϕ(v), which depends
// on every later interaction — but the summaries themselves merge
// (paper Lemmas 5–6), which admits a block decomposition:
//
//  1. Partition the sorted log into contiguous time blocks B_1 < … < B_k
//     and run the ordinary reverse scan on each block independently, in
//     parallel. The block-local summaries capture exactly the channels
//     that live entirely inside one block.
//  2. Stitch the boundaries sequentially from the latest block to the
//     earliest: maintain S, the finished summaries over blocks > b, and
//     re-walk block b in reverse propagating ONLY suffix entries (those
//     from S) through block b's edges into delta summaries D. An edge at
//     time t can pick up a suffix entry (x, t_x) only while t_x − t < ω,
//     and every suffix timestamp exceeds the block boundary, so the walk
//     stops as soon as the boundary falls out of the window — the stitch
//     touches only interactions within ω of a block edge. Fold the
//     block-local summaries and D into S and move to the next block.
//
// The result is IDENTICAL to the sequential scan, not merely equivalent:
//
//   - Exact: ϕ(u) maps each reachable node to the minimum admissible
//     channel end time, and min is associative/commutative, so splitting
//     the channel set by originating block and folding preserves every
//     value. A suffix entry the sequential scan would have overwritten
//     (its local counterpart has a strictly earlier end time) passes the
//     window filter only when the local counterpart does too, so the
//     extra propagation folds away under min.
//   - Approx: a versioned-HLL cell is the Pareto staircase (earliest
//     time, highest rank) of the pairs inserted into it, which is a pure
//     function of the pair SET, independent of insertion order. Local
//     pairs carry earlier timestamps than suffix pairs, so neither scan
//     order can suppress a pair the other would keep.
//
// The property tests in parallel_test.go pin byte-identical output
// against the sequential scans on randomized logs.

// Parallelism knob for the package's internal parallel paths (oracle
// collapse, greedy gain evaluation, spread tree-merges). Zero (the
// default) means GOMAXPROCS.
var defaultWorkers atomic.Int32

// SetParallelism sets the worker count used by this package's parallel
// paths; n ≤ 0 restores the GOMAXPROCS default.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// Parallelism reports the effective worker count.
func Parallelism() int { return par.Workers(int(defaultWorkers.Load())) }

const (
	// minParallelEdges gates the time-sliced scans: below this the
	// per-block bookkeeping costs more than it saves.
	minParallelEdges = 1 << 14
	// spreadParallelMinSeeds gates the tree-merge union in Spread.
	spreadParallelMinSeeds = 64
)

// sliceable reports whether the log is worth time-slicing into blocks
// for the given window: parallel blocks only pay off while ω is small
// against each block's time span, because the boundary stitch
// re-examines every interaction within ω of a block edge.
func sliceable(l *graph.Log, omega int64, blocks int) bool {
	if l.Len() < minParallelEdges || blocks < 2 {
		return false
	}
	_, _, span := l.Span()
	return 2*omega*int64(blocks) <= span
}

// ComputeExactParallel is ComputeExact over time-sliced blocks scanned
// concurrently by up to workers goroutines (≤ 0 selects GOMAXPROCS).
// Its output is byte-identical to the sequential scan; it falls back to
// ComputeExact outright when the log is small or ω spans most of it.
func ComputeExactParallel(l *graph.Log, omega int64, workers int) *ExactSummaries {
	workers = par.Workers(workers)
	if workers < 2 || !sliceable(l, omega, workers) {
		return ComputeExact(l, omega)
	}
	span := obs.NewSpan(sink(), "scan/exact-par")
	edges := l.Interactions
	blocks := par.Blocks(len(edges), workers)

	// Phase 1: block-local reverse scans, in parallel.
	locals := par.Map(workers, len(blocks), func(b int) []map[graph.NodeID]graph.Time {
		phi := make([]map[graph.NodeID]graph.Time, l.NumNodes)
		scanExactBlock(edges[blocks[b].Lo:blocks[b].Hi], phi, omega)
		return phi
	})
	span.Progressf("%d block scans done (%s edges)", len(blocks), obs.Count(int64(len(edges))))

	// Phase 2: sequential boundary stitch, latest block first.
	s := &ExactSummaries{Omega: omega, Phi: locals[len(locals)-1]}
	for b := len(blocks) - 2; b >= 0; b-- {
		boundary := edges[blocks[b+1].Lo].At
		delta := make(map[graph.NodeID]map[graph.NodeID]graph.Time)
		for i := blocks[b].Hi - 1; i >= blocks[b].Lo; i-- {
			e := edges[i]
			if int64(boundary-e.At) >= omega {
				// Every remaining edge is even earlier; no suffix entry
				// can fit its window. The stitch for this block is done.
				break
			}
			if e.Src == e.Dst {
				continue
			}
			phiV, dV := s.Phi[e.Dst], delta[e.Dst]
			if phiV == nil && dV == nil {
				continue
			}
			dU := delta[e.Src]
			stitch := func(src map[graph.NodeID]graph.Time) {
				for x, tx := range src {
					if x != e.Src && tx > e.At && int64(tx-e.At) < omega {
						if dU == nil {
							dU = make(map[graph.NodeID]graph.Time)
							delta[e.Src] = dU
						}
						add(dU, x, tx)
					}
				}
			}
			stitch(phiV)
			stitch(dV)
		}
		// Fold the block-local summaries and the propagated deltas into S.
		// Each node's fold touches only its own slot (delta is read-only
		// here), so the folds fan out across the workers; only the short
		// boundary walk above is inherently sequential.
		local := locals[b]
		par.ForEach(workers, l.NumNodes, func(ui int) {
			u := graph.NodeID(ui)
			phi, d := local[u], delta[u]
			dst := s.Phi[u]
			if dst == nil {
				if phi == nil {
					if d != nil {
						s.Phi[u] = d
					}
					return
				}
				s.Phi[u] = phi
				dst = phi
			} else if phi != nil {
				for v, tv := range phi {
					add(dst, v, tv)
				}
			}
			for v, tv := range d {
				add(dst, v, tv)
			}
		})
	}
	span.Endf("%s edges, %d blocks, %s entries",
		obs.Count(int64(len(edges))), len(blocks), obs.Count(int64(s.EntryCount())))
	return s
}

// scanExactBlock is the inner loop of ComputeExact over one contiguous
// edge slice. It must mirror ComputeExact's per-edge processing exactly;
// the byte-identity property test pins the two together.
func scanExactBlock(edges []graph.Interaction, phi []map[graph.NodeID]graph.Time, omega int64) {
	mx := m()
	for i := len(edges) - 1; i >= 0; i-- {
		e := edges[i]
		mx.exactEdges.Inc()
		if e.Src == e.Dst {
			continue
		}
		phiU := phi[e.Src]
		if phiU == nil {
			phiU = make(map[graph.NodeID]graph.Time)
			phi[e.Src] = phiU
			mx.exactSummaries.Inc()
		}
		add(phiU, e.Dst, e.At)
		if phiV := phi[e.Dst]; phiV != nil {
			mx.exactMerges.Inc()
			for x, tx := range phiV {
				if x != e.Src && tx > e.At && int64(tx-e.At) < omega {
					add(phiU, x, tx)
				}
			}
		}
	}
}

// ComputeApproxParallel is ComputeApprox over time-sliced blocks scanned
// concurrently by up to workers goroutines (≤ 0 selects GOMAXPROCS).
// The resulting sketches are identical to the sequential scan's; it
// falls back to ComputeApprox when the log is small or ω spans most of
// it.
func ComputeApproxParallel(l *graph.Log, omega int64, precision, workers int) (*ApproxSummaries, error) {
	workers = par.Workers(workers)
	if workers < 2 || !sliceable(l, omega, workers) {
		return ComputeApprox(l, omega, precision)
	}
	if precision < hll.MinPrecision || precision > hll.MaxPrecision {
		return nil, errPrecision(precision)
	}
	span := obs.NewSpan(sink(), "scan/approx-par")
	edges := l.Interactions
	blocks := par.Blocks(len(edges), workers)

	// Node hashes are pure functions of the ID; share one table.
	hashes := make([]uint64, l.NumNodes)
	par.ForEach(workers, len(hashes), func(i int) {
		hashes[i] = hll.Hash64(uint64(i))
	})

	// Phase 1: block-local reverse scans, in parallel.
	locals := par.Map(workers, len(blocks), func(b int) []*vhll.Sketch {
		sketches := make([]*vhll.Sketch, l.NumNodes)
		scanApproxBlock(edges[blocks[b].Lo:blocks[b].Hi], sketches, hashes, omega, precision)
		return sketches
	})
	span.Progressf("%d block scans done (%s edges)", len(blocks), obs.Count(int64(len(edges))))

	// Phase 2: sequential boundary stitch, latest block first.
	s := &ApproxSummaries{Omega: omega, Precision: precision, Sketches: locals[len(locals)-1]}
	for b := len(blocks) - 2; b >= 0; b-- {
		boundary := edges[blocks[b+1].Lo].At
		delta := make(map[graph.NodeID]*vhll.Sketch)
		for i := blocks[b].Hi - 1; i >= blocks[b].Lo; i-- {
			e := edges[i]
			if int64(boundary-e.At) >= omega {
				break
			}
			if e.Src == e.Dst {
				continue
			}
			skV, dV := s.Sketches[e.Dst], delta[e.Dst]
			if skV == nil && dV == nil {
				continue
			}
			dU := delta[e.Src]
			if dU == nil {
				dU = vhll.MustNew(precision)
				delta[e.Src] = dU
			}
			// Same-precision merges cannot fail.
			if skV != nil {
				_ = dU.MergeWindow(skV, int64(e.At), omega)
			}
			if dV != nil {
				_ = dU.MergeWindow(dV, int64(e.At), omega)
			}
		}
		// Fold the block-local sketches and the propagated deltas into S.
		// Each node's fold touches only its own slot (delta is read-only
		// here), so the folds fan out across the workers; only the short
		// boundary walk above is inherently sequential.
		local := locals[b]
		par.ForEach(workers, l.NumNodes, func(ui int) {
			u := graph.NodeID(ui)
			sk, d := local[u], delta[u]
			dst := s.Sketches[u]
			if dst == nil {
				if sk == nil {
					if d != nil {
						s.Sketches[u] = d
					}
					return
				}
				s.Sketches[u] = sk
				dst = sk
			} else if sk != nil {
				_ = dst.Merge(sk)
			}
			if d != nil {
				_ = dst.Merge(d)
			}
		})
	}
	span.Endf("%s edges, %d blocks, %s entries",
		obs.Count(int64(len(edges))), len(blocks), obs.Count(int64(s.EntryCount())))
	return s, nil
}

// scanApproxBlock is the inner loop of ComputeApprox over one contiguous
// edge slice. It must mirror ComputeApprox's per-edge processing exactly;
// the identity property test pins the two together.
func scanApproxBlock(edges []graph.Interaction, sketches []*vhll.Sketch, hashes []uint64, omega int64, precision int) {
	mx := m()
	for i := len(edges) - 1; i >= 0; i-- {
		e := edges[i]
		mx.approxEdges.Inc()
		if e.Src == e.Dst {
			continue
		}
		sk := sketches[e.Src]
		if sk == nil {
			sk = vhll.MustNew(precision)
			sketches[e.Src] = sk
			mx.approxSummaries.Inc()
		}
		sk.AddHash(hashes[e.Dst], int64(e.At))
		if skV := sketches[e.Dst]; skV != nil {
			mx.approxMerges.Inc()
			// Same-precision merge cannot fail.
			_ = sk.MergeWindow(skV, int64(e.At), omega)
		}
	}
}
