package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"ipin/internal/graph"
	"ipin/internal/vhll"
)

// Persistence for computed summaries: the expensive one-pass computation
// can be run once (cmd/irs -save) and the resulting state reloaded to
// serve oracle queries without touching the interaction log again
// (cmd/irs -load, examples/oracleserver).
//
// Stream layout (all integers varint/uvarint, little-endian inside):
//
//	magic "IRX1" | kind byte ('E' exact, 'A' approx) | omega varint
//	| numNodes uvarint | per-node payload
//
// Exact per-node payload: uvarint entry count, then (uvarint node,
// zigzag-varint time delta) pairs sorted by node. Approx per-node
// payload: uvarint sketch length (0 = absent) followed by the vhll
// binary encoding.

var irsMagic = [4]byte{'I', 'R', 'X', '1'}

const (
	kindExact  = 'E'
	kindApprox = 'A'
)

// WriteTo serializes exact summaries.
func (s *ExactSummaries) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	if err := writeHeader(cw, kindExact, s.Omega, len(s.Phi)); err != nil {
		return cw.n, err
	}
	var tmp [binary.MaxVarintLen64]byte
	for _, phi := range s.Phi {
		n := binary.PutUvarint(tmp[:], uint64(len(phi)))
		if _, err := cw.Write(tmp[:n]); err != nil {
			return cw.n, err
		}
		// Sort by node for a canonical encoding.
		nodes := make([]graph.NodeID, 0, len(phi))
		for v := range phi {
			nodes = append(nodes, v)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		prevT := int64(0)
		for _, v := range nodes {
			n = binary.PutUvarint(tmp[:], uint64(v))
			if _, err := cw.Write(tmp[:n]); err != nil {
				return cw.n, err
			}
			t := int64(phi[v])
			n = binary.PutVarint(tmp[:], t-prevT)
			if _, err := cw.Write(tmp[:n]); err != nil {
				return cw.n, err
			}
			prevT = t
		}
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// ReadExactSummaries deserializes exact summaries.
func ReadExactSummaries(r io.Reader) (*ExactSummaries, error) {
	br := bufio.NewReader(r)
	omega, numNodes, err := readHeader(br, kindExact)
	if err != nil {
		return nil, err
	}
	// Grow the table as payloads actually decode instead of trusting the
	// header: every node costs at least one input byte, so a hostile
	// numNodes cannot demand allocations the input never backs.
	s := &ExactSummaries{Omega: omega, Phi: make([]map[graph.NodeID]graph.Time, 0, allocHint(numNodes))}
	for u := 0; u < numNodes; u++ {
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("core: node %d entry count: %v", u, err)
		}
		if count == 0 {
			s.Phi = append(s.Phi, nil)
			continue
		}
		// Each entry takes >= 2 input bytes; a larger count cannot decode.
		phi := make(map[graph.NodeID]graph.Time, allocHint(int(min(count, uint64(numNodes)))))
		prevT := int64(0)
		for j := uint64(0); j < count; j++ {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("core: node %d entry %d: %v", u, j, err)
			}
			if v >= uint64(numNodes) {
				return nil, fmt.Errorf("core: node %d references out-of-range node %d", u, v)
			}
			delta, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("core: node %d entry %d time: %v", u, j, err)
			}
			prevT += delta
			phi[graph.NodeID(v)] = graph.Time(prevT)
		}
		if uint64(len(phi)) != count {
			return nil, fmt.Errorf("core: node %d has duplicate entries", u)
		}
		s.Phi = append(s.Phi, phi)
	}
	return s, nil
}

// WriteTo serializes approximate summaries.
func (s *ApproxSummaries) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	if err := writeHeader(cw, kindApprox, s.Omega, len(s.Sketches)); err != nil {
		return cw.n, err
	}
	var tmp [binary.MaxVarintLen64]byte
	for u, sk := range s.Sketches {
		if sk == nil {
			if _, err := cw.Write([]byte{0}); err != nil {
				return cw.n, err
			}
			continue
		}
		payload, err := sk.MarshalBinary()
		if err != nil {
			return cw.n, fmt.Errorf("core: sketch %d: %v", u, err)
		}
		n := binary.PutUvarint(tmp[:], uint64(len(payload)))
		if _, err := cw.Write(tmp[:n]); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(payload); err != nil {
			return cw.n, err
		}
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// ReadApproxSummaries deserializes approximate summaries.
func ReadApproxSummaries(r io.Reader) (*ApproxSummaries, error) {
	br := bufio.NewReader(r)
	omega, numNodes, err := readHeader(br, kindApprox)
	if err != nil {
		return nil, err
	}
	// Same lazy-growth discipline as the exact reader: neither the node
	// table nor a sketch payload is allocated beyond what the input
	// actually delivers.
	s := &ApproxSummaries{Omega: omega, Sketches: make([]*vhll.Sketch, 0, allocHint(numNodes))}
	for u := 0; u < numNodes; u++ {
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("core: sketch %d size: %v", u, err)
		}
		if size == 0 {
			s.Sketches = append(s.Sketches, nil)
			continue
		}
		if size > 1<<30 {
			return nil, fmt.Errorf("core: sketch %d size %d implausible", u, size)
		}
		// CopyN grows the buffer only as bytes arrive, so a huge declared
		// size over a short input fails without the up-front allocation.
		var pbuf bytes.Buffer
		if _, err := io.CopyN(&pbuf, br, int64(size)); err != nil {
			return nil, fmt.Errorf("core: sketch %d payload: %v", u, err)
		}
		payload := pbuf.Bytes()
		sk := &vhll.Sketch{}
		if err := sk.UnmarshalBinary(payload); err != nil {
			return nil, fmt.Errorf("core: sketch %d: %v", u, err)
		}
		if s.Precision == 0 {
			s.Precision = sk.Precision()
		} else if sk.Precision() != s.Precision {
			return nil, fmt.Errorf("core: sketch %d precision %d != %d", u, sk.Precision(), s.Precision)
		}
		s.Sketches = append(s.Sketches, sk)
	}
	if s.Precision == 0 {
		// Every sketch was empty; any valid precision serves.
		s.Precision = DefaultPrecision
	}
	return s, nil
}

// ReadSummaries reads an IRX1 stream of either kind, dispatching on the
// kind byte: exactly one of the returned summary sets is non-nil. It is
// the loader behind snapshot files whose kind is not known up front
// (internal/serve, oracleserver -snapshot).
func ReadSummaries(r io.Reader) (*ExactSummaries, *ApproxSummaries, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(5)
	if err != nil {
		return nil, nil, fmt.Errorf("core: header: %v", err)
	}
	if string(head[:4]) != string(irsMagic[:]) {
		return nil, nil, fmt.Errorf("core: bad magic")
	}
	switch head[4] {
	case kindExact:
		s, err := ReadExactSummaries(br)
		return s, nil, err
	case kindApprox:
		s, err := ReadApproxSummaries(br)
		return nil, s, err
	default:
		return nil, nil, fmt.Errorf("core: unknown summary kind %q", head[4])
	}
}

func writeHeader(w io.Writer, kind byte, omega int64, numNodes int) error {
	if _, err := w.Write(irsMagic[:]); err != nil {
		return err
	}
	if _, err := w.Write([]byte{kind}); err != nil {
		return err
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], omega)
	if _, err := w.Write(tmp[:n]); err != nil {
		return err
	}
	n = binary.PutUvarint(tmp[:], uint64(numNodes))
	_, err := w.Write(tmp[:n])
	return err
}

func readHeader(r *bufio.Reader, wantKind byte) (omega int64, numNodes int, err error) {
	var magic [5]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return 0, 0, fmt.Errorf("core: header: %v", err)
	}
	if string(magic[:4]) != string(irsMagic[:]) {
		return 0, 0, fmt.Errorf("core: bad magic")
	}
	if magic[4] != wantKind {
		return 0, 0, fmt.Errorf("core: summary kind %q, want %q", magic[4], wantKind)
	}
	omega, err = binary.ReadVarint(r)
	if err != nil {
		return 0, 0, fmt.Errorf("core: omega: %v", err)
	}
	nn, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, fmt.Errorf("core: node count: %v", err)
	}
	if nn > 1<<31 {
		return 0, 0, fmt.Errorf("core: node count %d implausible", nn)
	}
	return omega, int(nn), nil
}

// allocHint clamps a header-declared element count to a safe initial
// allocation; the container grows past it only as input actually
// decodes. 64Ki entries keeps the worst pre-input allocation around a
// megabyte.
func allocHint(n int) int {
	const maxHint = 1 << 16
	if n < 0 {
		return 0
	}
	if n > maxHint {
		return maxHint
	}
	return n
}

// countingWriter tracks bytes written for the io.WriterTo contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
