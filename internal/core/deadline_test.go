package core

import (
	"math/rand"
	"testing"

	"ipin/internal/graph"
	"ipin/internal/stats"
)

func TestSpreadByFig1a(t *testing.T) {
	s := ComputeExact(fig1a(), 3)
	// ϕ(a) = {(b,5),(c,7),(e,3),(d,1)}.
	cases := []struct {
		deadline graph.Time
		want     int
	}{
		{0, 0},
		{1, 1},  // d
		{3, 2},  // d, e
		{5, 3},  // d, e, b
		{7, 4},  // all
		{99, 4}, // saturated
	}
	for _, tc := range cases {
		if got := s.InfluenceSizeBy(a, tc.deadline); got != tc.want {
			t.Errorf("InfluenceSizeBy(a, %d) = %d, want %d", tc.deadline, got, tc.want)
		}
		if got := s.SpreadBy([]graph.NodeID{a}, tc.deadline); got != tc.want {
			t.Errorf("SpreadBy({a}, %d) = %d, want %d", tc.deadline, got, tc.want)
		}
	}
	// Union semantics: {a,e} by time 4 → a gives {d,e}, e gives {f,b}.
	if got := s.SpreadBy([]graph.NodeID{a, e}, 4); got != 4 {
		t.Errorf("SpreadBy({a,e},4) = %d, want 4", got)
	}
}

func TestDeadlineMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	l := randomLog(rng, 100, 1200)
	s := ComputeExact(l, 200)
	approx, err := ComputeApprox(l, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []graph.NodeID{1, 2, 3}
	prevExact := -1
	prevApprox := -1.0
	for _, d := range []graph.Time{0, 100, 300, 600, 1200} {
		ex := s.SpreadBy(seeds, d)
		if ex < prevExact {
			t.Fatalf("exact deadline spread decreased at %d", d)
		}
		prevExact = ex
		ap := approx.SpreadByEstimate(seeds, d)
		if ap < prevApprox-1e-9 {
			t.Fatalf("approx deadline spread decreased at %d", d)
		}
		prevApprox = ap
	}
	// At the horizon the deadline query equals the plain spread.
	if got, want := s.SpreadBy(seeds, 1<<40), s.SpreadExact(seeds); got != want {
		t.Fatalf("unbounded deadline %d != spread %d", got, want)
	}
	if got, want := approx.SpreadByEstimate(seeds, 1<<40), approx.SpreadEstimate(seeds); got != want {
		t.Fatalf("unbounded approx deadline %.3f != spread %.3f", got, want)
	}
}

func TestDeadlineEstimateTracksExact(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	l := randomLog(rng, 300, 4000)
	s := ComputeExact(l, 800)
	approx, err := ComputeApprox(l, 800, 9)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		seeds := []graph.NodeID{
			graph.NodeID(rng.Intn(l.NumNodes)),
			graph.NodeID(rng.Intn(l.NumNodes)),
			graph.NodeID(rng.Intn(l.NumNodes)),
		}
		deadline := graph.Time(rng.Intn(4000))
		truth := float64(s.SpreadBy(seeds, deadline))
		got := approx.SpreadByEstimate(seeds, deadline)
		if truth == 0 {
			// Allow phantom self-cycle entries but nothing substantial.
			if got > 3 {
				t.Errorf("trial %d: estimate %.1f for empty deadline spread", trial, got)
			}
			continue
		}
		if rel := stats.RelErr(got, truth); rel > 0.3 {
			t.Errorf("trial %d: deadline spread %.1f vs %.0f (rel %.3f)", trial, got, truth, rel)
		}
	}
	// Per-node variant.
	u := graph.NodeID(1)
	if got := approx.EstimateIRSBy(u, 1<<40); got != approx.EstimateIRS(u) {
		t.Error("unbounded EstimateIRSBy != EstimateIRS")
	}
}
