package core

import (
	"math/rand"
	"testing"

	"ipin/internal/cascade"
	"ipin/internal/graph"
)

// This file cross-checks the IRS algorithms against the TCIC cascade
// model they are meant to predict. The two are linked by a containment
// invariant: with infection probability 1 and a single seed u, every node
// the cascade infects (other than u) is reachable from u by an
// information channel of duration at most ω+1.
//
// Why ω+1 and not ω: Algorithm 1 admits a hop at time t while
// t − activateTime ≤ ω, so the last interaction of an infection path can
// lie a full ω after the first, giving channel duration
// t_k − t_1 + 1 ≤ ω + 1. And why containment rather than equality: the
// cascade anchors u's window at its FIRST interaction in the network,
// while σ admits channels starting at any of u's interactions — so σ can
// strictly exceed the deterministic cascade.

// tcicSubsetOfIRS checks the invariant for every node of a log.
func tcicSubsetOfIRS(t *testing.T, l *graph.Log, omega int64) {
	t.Helper()
	s := ComputeExact(l, omega+1)
	for u := 0; u < l.NumNodes; u++ {
		spread := cascade.Simulate(l, []graph.NodeID{graph.NodeID(u)}, cascade.Config{
			Omega: omega, P: 1, Seed: 1,
		})
		if spread == 0 {
			continue // seed never activates
		}
		infected := spread - 1 // minus the seed itself
		if infected > s.IRSSize(graph.NodeID(u)) {
			t.Errorf("ω=%d node %d: cascade infects %d nodes but |σ_{ω+1}| = %d",
				omega, u, infected, s.IRSSize(graph.NodeID(u)))
		}
	}
}

func TestCascadeSpreadWithinIRSRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		n := 8 + rng.Intn(15)
		m := 20 + rng.Intn(120)
		l := graph.New(n)
		for i := 0; i < m; i++ {
			l.Add(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), graph.Time(i+1))
		}
		l.Sort()
		for _, omega := range []int64{1, 3, 10, int64(m)} {
			tcicSubsetOfIRS(t, l, omega)
		}
	}
}

func TestCascadeSpreadWithinIRSFig1a(t *testing.T) {
	for _, omega := range []int64{1, 2, 3, 5, 8} {
		tcicSubsetOfIRS(t, fig1a(), omega)
	}
}

// TestCascadeMatchesIRSOnChain: on a single chain whose seed is the head,
// the deterministic cascade and σ agree exactly (the head's first
// interaction is the only channel start).
func TestCascadeMatchesIRSOnChain(t *testing.T) {
	l := graph.New(6)
	for i := 0; i < 5; i++ {
		l.Add(graph.NodeID(i), graph.NodeID(i+1), graph.Time(10*(i+1)))
	}
	l.Sort()
	for _, omega := range []int64{1, 15, 25, 45} {
		s := ComputeExact(l, omega)
		spread := cascade.Simulate(l, []graph.NodeID{0}, cascade.Config{Omega: omega, P: 1, Seed: 1})
		// The cascade admits hops while t−t1 ≤ ω (duration ≤ ω+1), so
		// compare against σ_{ω+1}; on this chain the two coincide:
		// every infected non-seed node has a channel and vice versa.
		sPlus := ComputeExact(l, omega+1)
		if spread-1 != sPlus.IRSSize(0) {
			t.Errorf("ω=%d: cascade %d−1 vs |σ_{ω+1}(head)| %d", omega, spread, sPlus.IRSSize(0))
		}
		// And σ_ω is a lower bound.
		if s.IRSSize(0) > spread-1 {
			t.Errorf("ω=%d: |σ_ω| %d exceeds deterministic spread %d", omega, s.IRSSize(0), spread-1)
		}
	}
}

// TestIRSSeedsBeatRandomSeedsUnderTCIC: the end-to-end promise of the
// paper — on a structured network, IRS-selected seeds outperform random
// seeds under the cascade model.
func TestIRSSeedsBeatRandomSeedsUnderTCIC(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// A network with strong hubs: hub i sprays interactions over time.
	n := 300
	l := graph.New(n)
	tick := graph.Time(1)
	for round := 0; round < 20; round++ {
		for hub := 0; hub < 5; hub++ {
			for j := 0; j < 8; j++ {
				l.Add(graph.NodeID(hub), graph.NodeID(5+rng.Intn(n-5)), tick)
				tick++
			}
		}
		// Background noise.
		for j := 0; j < 40; j++ {
			l.Add(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), tick)
			tick++
		}
	}
	l.Sort()
	omega := int64(tick) / 4
	s := ComputeExact(l, omega)
	irsSeeds := TopKExact(s, 5)
	simCfg := cascade.Config{Omega: omega, P: 0.5, Seed: 3}
	irsSpread := cascade.AverageSpread(l, irsSeeds, simCfg, 30, 0)

	worse := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		random := make([]graph.NodeID, 5)
		for j := range random {
			random[j] = graph.NodeID(rng.Intn(n))
		}
		if cascade.AverageSpread(l, random, simCfg, 30, 0) < irsSpread {
			worse++
		}
	}
	if worse < trials-1 {
		t.Errorf("random seeds beat IRS seeds in %d/%d trials (IRS spread %.1f)", trials-worse, trials, irsSpread)
	}
}
