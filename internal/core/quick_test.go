package core

import (
	"testing"
	"testing/quick"

	"ipin/internal/graph"
	"ipin/internal/temporal"
)

// logFromBytes deterministically builds a small interaction network from
// an arbitrary byte string, letting testing/quick explore the space of
// networks.
func logFromBytes(raw []byte, nodes int) *graph.Log {
	l := graph.New(nodes)
	for i := 0; i+1 < len(raw); i += 2 {
		src := graph.NodeID(int(raw[i]) % nodes)
		dst := graph.NodeID(int(raw[i+1]) % nodes)
		l.Add(src, dst, graph.Time(i+1))
	}
	l.Sort()
	return l
}

// Property: the one-pass exact algorithm agrees with the definition-level
// brute force on every generated network and window.
func TestQuickExactEqualsBruteForce(t *testing.T) {
	f := func(raw []byte, omegaSeed uint8) bool {
		if len(raw) < 4 {
			return true
		}
		l := logFromBytes(raw, 7)
		omega := int64(omegaSeed%40) + 1
		got := ComputeExact(l, omega)
		want := temporal.ReachSets(l, omega)
		for u := 0; u < l.NumNodes; u++ {
			gu := got.Phi[u]
			if len(gu) != len(want[u]) {
				return false
			}
			for v, tm := range want[u] {
				if gu[v] != tm {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the influence objective is monotone — adding any seed never
// shrinks the exact spread (paper Lemma 8's monotonicity).
func TestQuickSpreadMonotone(t *testing.T) {
	f := func(raw []byte, extra uint8) bool {
		if len(raw) < 6 {
			return true
		}
		l := logFromBytes(raw, 9)
		s := ComputeExact(l, 20)
		seeds := []graph.NodeID{graph.NodeID(raw[0]) % 9, graph.NodeID(raw[1]) % 9}
		with := append(append([]graph.NodeID(nil), seeds...), graph.NodeID(extra)%9)
		return s.SpreadExact(with) >= s.SpreadExact(seeds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the influence objective is submodular — the marginal gain of
// a node shrinks as the seed set grows (paper Lemma 8).
func TestQuickSpreadSubmodular(t *testing.T) {
	f := func(raw []byte, xByte, extraByte uint8) bool {
		if len(raw) < 6 {
			return true
		}
		l := logFromBytes(raw, 9)
		s := ComputeExact(l, 25)
		small := []graph.NodeID{graph.NodeID(raw[0]) % 9}
		big := append(append([]graph.NodeID(nil), small...), graph.NodeID(extraByte)%9)
		x := graph.NodeID(xByte) % 9
		gainSmall := s.SpreadExact(append(append([]graph.NodeID(nil), small...), x)) - s.SpreadExact(small)
		gainBig := s.SpreadExact(append(append([]graph.NodeID(nil), big...), x)) - s.SpreadExact(big)
		return gainSmall >= gainBig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: deadline-bounded spread interpolates between 0 and the full
// spread, and never decreases in the deadline.
func TestQuickDeadlineInterpolates(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) < 6 {
			return true
		}
		l := logFromBytes(raw, 8)
		s := ComputeExact(l, 30)
		seeds := []graph.NodeID{graph.NodeID(raw[0]) % 8, graph.NodeID(raw[1]) % 8}
		prev := 0
		for d := graph.Time(0); d <= graph.Time(len(raw)+2); d += 3 {
			cur := s.SpreadBy(seeds, d)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return prev == s.SpreadExact(seeds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
