package temporal

import (
	"testing"

	"ipin/internal/graph"
)

// Node labels of the paper's figures.
const (
	a graph.NodeID = iota
	b
	c
	d
	e
	f
)

// fig1a is the interaction network of the paper's Figure 1a.
func fig1a() *graph.Log {
	l := graph.New(6)
	l.Add(a, d, 1)
	l.Add(e, f, 2)
	l.Add(d, e, 3)
	l.Add(e, b, 4)
	l.Add(a, b, 5)
	l.Add(b, e, 6)
	l.Add(e, c, 7)
	l.Add(b, c, 8)
	l.Sort()
	return l
}

// fig2 reconstructs the interaction network of the paper's Figure 2 from
// the worked values the text states for it:
//
//	ϕ3(a) = {(b,1),(d,2),(c,4)}      σ3(a) = {b,c,d}   σ5(a) = {b,c,d,f}
//	ϕ3(c) = {(f,5),(e,3)}            λ(c,f) = 5
//	exactly two channels c→f: duration 1 ending at 8, duration 3 ending 5
//
// The unique 7-edge assignment over labels {1,2,3,4,5,6,8} satisfying all
// of these is: (a,b,1),(a,d,2),(c,e,3),(d,c,4),(e,f,5),(d,f,6),(c,f,8).
func fig2() *graph.Log {
	l := graph.New(6)
	l.Add(a, b, 1)
	l.Add(a, d, 2)
	l.Add(c, e, 3)
	l.Add(d, c, 4)
	l.Add(e, f, 5)
	l.Add(d, f, 6)
	l.Add(c, f, 8)
	l.Sort()
	return l
}

func TestFig1aBasicChannels(t *testing.T) {
	l := fig1a()
	// The paper: "there is an information channel from a to e, but not
	// from a to f" (with unbounded window).
	span := int64(8)
	if !ChannelExists(l, a, e, span) {
		t.Error("no channel a→e found")
	}
	if ChannelExists(l, a, f, span) {
		t.Error("phantom channel a→f (the only edge into f is at time 2)")
	}
}

func TestFig1aReachSetsOmega3(t *testing.T) {
	l := fig1a()
	got := ReachSets(l, 3)
	want := []map[graph.NodeID]graph.Time{
		a: {b: 5, c: 7, e: 3, d: 1},
		b: {c: 7, e: 6},
		c: {},
		d: {e: 3, b: 4},
		e: {c: 7, b: 4, f: 2},
		f: {},
	}
	for u := range want {
		if len(got[u]) != len(want[u]) {
			t.Errorf("node %d: got %v, want %v", u, got[u], want[u])
			continue
		}
		for v, tm := range want[u] {
			if got[u][v] != tm {
				t.Errorf("node %d: λ(%d) = %d, want %d", u, v, got[u][v], tm)
			}
		}
	}
}

func TestFig2PaperValues(t *testing.T) {
	l := fig2()
	phiA := ReachSet(l, a, 3)
	wantA := map[graph.NodeID]graph.Time{b: 1, d: 2, c: 4}
	if len(phiA) != len(wantA) {
		t.Fatalf("ϕ3(a) = %v, want %v", phiA, wantA)
	}
	for v, tm := range wantA {
		if phiA[v] != tm {
			t.Errorf("λ(a,%d) = %d, want %d", v, phiA[v], tm)
		}
	}
	// σ5(a) additionally reaches f (a→b@1, b→c@4, c→f@5: duration 5).
	phiA5 := ReachSet(l, a, 5)
	if _, ok := phiA5[f]; !ok {
		t.Errorf("σ5(a) = %v, missing f", phiA5)
	}
	if _, ok := phiA5[e]; ok {
		t.Errorf("σ5(a) contains e; the only paths to e need duration > 5")
	}
	// λ(c,f): two channels c→f exist — the direct edge at 5 (duration 1)
	// and none shorter; the earliest end is 5.
	phiC := ReachSet(l, c, 3)
	if phiC[f] != 5 {
		t.Errorf("λ(c,f) = %d, want 5", phiC[f])
	}
	if phiC[e] != 3 {
		t.Errorf("λ(c,e) = %d, want 3", phiC[e])
	}
}

func TestWindowOneIsDirectNeighbours(t *testing.T) {
	// ω=1: only single interactions qualify (duration of one edge is 1).
	l := fig1a()
	got := ReachSet(l, e, 1)
	want := map[graph.NodeID]graph.Time{f: 2, b: 4, c: 7}
	if len(got) != len(want) {
		t.Fatalf("σ1(e) = %v, want %v", got, want)
	}
	for v, tm := range want {
		if got[v] != tm {
			t.Errorf("λ(e,%d) = %d, want %d", v, got[v], tm)
		}
	}
}

func TestStrictTimeIncrease(t *testing.T) {
	// Equal timestamps do not chain: t must strictly increase.
	l := graph.New(3)
	l.Add(0, 1, 5)
	l.Add(1, 2, 5)
	l.Sort()
	if ChannelExists(l, 0, 2, 100) {
		t.Error("channel chained through equal timestamps")
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	l := graph.New(2)
	l.Add(0, 0, 1)
	l.Add(0, 1, 2)
	l.Sort()
	got := ReachSet(l, 0, 10)
	if len(got) != 1 || got[1] != 2 {
		t.Fatalf("σ(0) = %v, want {1:2}", got)
	}
}

func TestCycleDoesNotReachSelf(t *testing.T) {
	// a→b@1, b→a@2: the temporal cycle exists, but a node never counts as
	// influencing itself — the paper's worked Example 2 drops the
	// self-entry a cycle would produce.
	l := graph.New(2)
	l.Add(0, 1, 1)
	l.Add(1, 0, 2)
	l.Sort()
	got := ReachSet(l, 0, 10)
	if _, ok := got[0]; ok {
		t.Errorf("σ(a) = %v contains a itself", got)
	}
	if got[1] != 1 {
		t.Errorf("λ(a,b) = %d, want 1", got[1])
	}
	// The cycle still forwards influence: b reaches a.
	gotB := ReachSet(l, 1, 10)
	if gotB[0] != 2 {
		t.Errorf("λ(b,a) = %d, want 2", gotB[0])
	}
}
