package temporal

import (
	"math/rand"
	"testing"

	"ipin/internal/graph"
)

// checkChannel verifies that ch is a well-formed information channel
// u→v of duration ≤ omega using only edges of l.
func checkChannel(t *testing.T, l *graph.Log, ch Channel, u, v graph.NodeID, omega int64) {
	t.Helper()
	if len(ch) == 0 {
		t.Fatal("empty channel")
	}
	if ch[0].Src != u {
		t.Fatalf("channel starts at %d, want %d", ch[0].Src, u)
	}
	if ch[len(ch)-1].Dst != v {
		t.Fatalf("channel ends at %d, want %d", ch[len(ch)-1].Dst, v)
	}
	if ch.Duration() > omega {
		t.Fatalf("duration %d exceeds ω=%d", ch.Duration(), omega)
	}
	present := map[graph.Interaction]bool{}
	for _, e := range l.Interactions {
		present[e] = true
	}
	for i, e := range ch {
		if !present[e] {
			t.Fatalf("edge %v not in the log", e)
		}
		if i > 0 {
			if ch[i-1].Dst != e.Src {
				t.Fatalf("edge %d does not continue the path", i)
			}
			if e.At <= ch[i-1].At {
				t.Fatalf("edge %d breaks time order", i)
			}
		}
	}
}

func TestFindChannelFig1a(t *testing.T) {
	l := fig1a()
	// λ(a,e) = 3 with ω=3: the witness is a→d@1, d→e@3.
	ch := FindChannel(l, a, e, 3)
	checkChannel(t, l, ch, a, e, 3)
	if ch.End() != 3 {
		t.Fatalf("channel ends at %d, want λ(a,e)=3", ch.End())
	}
	if len(ch) != 2 {
		t.Fatalf("channel length %d, want 2", len(ch))
	}
	// No channel a→f at any window (f's only in-edge is at time 2).
	if ch := FindChannel(l, a, f, 8); ch != nil {
		t.Fatalf("phantom channel a→f: %v", ch)
	}
	// Direct edge: λ(e,f) = 2.
	ch = FindChannel(l, e, f, 1)
	checkChannel(t, l, ch, e, f, 1)
	if len(ch) != 1 {
		t.Fatalf("direct channel length %d", len(ch))
	}
}

func TestFindChannelDegenerate(t *testing.T) {
	l := fig1a()
	if ch := FindChannel(l, a, a, 5); ch != nil {
		t.Error("self channel returned")
	}
	if ch := FindChannel(l, a, e, 0); ch != nil {
		t.Error("ω=0 returned a channel")
	}
}

// TestFindChannelMatchesReachSet: FindChannel must return a witness
// exactly when ReachSet lists the target, with the same λ end time.
func TestFindChannelMatchesReachSet(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 15; trial++ {
		n := 6 + rng.Intn(10)
		m := 15 + rng.Intn(60)
		l := graph.New(n)
		for i := 0; i < m; i++ {
			l.Add(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), graph.Time(i+1))
		}
		l.Sort()
		for _, omega := range []int64{2, 7, int64(m)} {
			for u := 0; u < n; u++ {
				rs := ReachSet(l, graph.NodeID(u), omega)
				for v := 0; v < n; v++ {
					if u == v {
						continue
					}
					ch := FindChannel(l, graph.NodeID(u), graph.NodeID(v), omega)
					lambda, ok := rs[graph.NodeID(v)]
					if !ok {
						if ch != nil {
							t.Fatalf("trial %d ω=%d: channel %d→%d exists but ReachSet says no", trial, omega, u, v)
						}
						continue
					}
					if ch == nil {
						t.Fatalf("trial %d ω=%d: no witness for %d→%d (λ=%d)", trial, omega, u, v, lambda)
					}
					checkChannel(t, l, ch, graph.NodeID(u), graph.NodeID(v), omega)
					if ch.End() != lambda {
						t.Fatalf("trial %d ω=%d: witness ends at %d, λ=%d", trial, omega, ch.End(), lambda)
					}
				}
			}
		}
	}
}

func TestChannelAccessorsEmpty(t *testing.T) {
	var ch Channel
	if ch.Duration() != 0 || ch.End() != 0 {
		t.Fatal("empty channel accessors")
	}
}
