// Package temporal computes exact temporal reachability by brute force.
//
// It exists as the independent ground truth against which the one-pass IRS
// algorithms of internal/core are tested: it enumerates information
// channels (paper Definition 1) directly from their definition — paths of
// strictly time-increasing interactions whose total duration t_k − t_1 + 1
// is at most ω — without any of the reverse-scan machinery under test.
//
// Complexity is O(deg(u) · m) per source node, so it is only suitable for
// the small and medium graphs used in tests; that is its purpose.
package temporal

import (
	"ipin/internal/graph"
)

// ReachSet computes the exact IRS summary of node u: for every node v with
// an information channel u→v of duration ≤ omega, the earliest end time
// λ(u, v) over all such channels (paper Definition 4). The log must be
// sorted ascending by time.
func ReachSet(l *graph.Log, u graph.NodeID, omega int64) map[graph.NodeID]graph.Time {
	out := make(map[graph.NodeID]graph.Time)
	edges := l.Interactions
	arrival := make([]graph.Time, l.NumNodes)
	reached := make([]bool, l.NumNodes)
	var touched []graph.NodeID

	for i, start := range edges {
		if start.Src != u || start.Src == start.Dst {
			continue
		}
		// Channels beginning with this interaction may end no later than
		// start.At + omega − 1 (duration = end − start + 1 ≤ ω).
		deadline := start.At + graph.Time(omega) - 1
		if graph.Time(omega) <= 0 {
			continue
		}
		// Earliest-arrival scan: edges are ascending in time, so the first
		// time a node is assigned an arrival it is the earliest one for
		// channels starting at this interaction.
		reached[start.Dst] = true
		arrival[start.Dst] = start.At
		touched = append(touched[:0], start.Dst)
		for j := i + 1; j < len(edges); j++ {
			e := edges[j]
			if e.At > deadline {
				break
			}
			if e.Src == e.Dst {
				continue
			}
			if reached[e.Src] && e.At > arrival[e.Src] && !reached[e.Dst] {
				reached[e.Dst] = true
				arrival[e.Dst] = e.At
				touched = append(touched, e.Dst)
			}
		}
		for _, v := range touched {
			// A node does not count as influencing itself, even through a
			// temporal cycle — the paper's worked Example 2 drops the
			// self-entry (e,6) that the cycle e→b→e would produce.
			if v != u {
				if old, ok := out[v]; !ok || arrival[v] < old {
					out[v] = arrival[v]
				}
			}
			reached[v] = false
		}
	}
	return out
}

// ReachSets computes the exact IRS summary for every node. It is the full
// ground truth for the exact algorithm's output.
func ReachSets(l *graph.Log, omega int64) []map[graph.NodeID]graph.Time {
	out := make([]map[graph.NodeID]graph.Time, l.NumNodes)
	for u := 0; u < l.NumNodes; u++ {
		out[u] = ReachSet(l, graph.NodeID(u), omega)
	}
	return out
}

// ChannelExists reports whether at least one information channel of
// duration ≤ omega leads from u to v.
func ChannelExists(l *graph.Log, u, v graph.NodeID, omega int64) bool {
	_, ok := ReachSet(l, u, omega)[v]
	return ok
}
