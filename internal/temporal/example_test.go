package temporal_test

import (
	"fmt"

	"ipin/internal/graph"
	"ipin/internal/temporal"
)

// Exhibiting the information channel that lets node 0 influence node 3.
func ExampleFindChannel() {
	l := graph.New(4)
	l.Add(0, 1, 10)
	l.Add(1, 2, 20)
	l.Add(2, 3, 25)
	l.Sort()

	ch := temporal.FindChannel(l, 0, 3, 16)
	for _, e := range ch {
		fmt.Printf("%d→%d @ %d\n", e.Src, e.Dst, e.At)
	}
	fmt.Println("duration:", ch.Duration())
	// Output:
	// 0→1 @ 10
	// 1→2 @ 20
	// 2→3 @ 25
	// duration: 16
}
