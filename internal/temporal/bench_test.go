package temporal

import (
	"math/rand"
	"testing"

	"ipin/internal/graph"
)

var benchLog = func() *graph.Log {
	rng := rand.New(rand.NewSource(8))
	l := graph.New(200)
	for i := 0; i < 2000; i++ {
		l.Add(graph.NodeID(rng.Intn(200)), graph.NodeID(rng.Intn(200)), graph.Time(i+1))
	}
	l.Sort()
	return l
}()

func BenchmarkReachSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = ReachSet(benchLog, graph.NodeID(i%200), 500)
	}
}

func BenchmarkFindChannel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = FindChannel(benchLog, graph.NodeID(i%200), graph.NodeID((i+100)%200), 500)
	}
}
