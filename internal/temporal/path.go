package temporal

import (
	"ipin/internal/graph"
)

// Channel is one concrete information channel: the sequence of
// interactions, time-ascending, leading from its first edge's source to
// its last edge's destination.
type Channel []graph.Interaction

// Duration returns t_k − t_1 + 1 (paper Definition 1); zero for an empty
// channel.
func (c Channel) Duration() int64 {
	if len(c) == 0 {
		return 0
	}
	return int64(c[len(c)-1].At-c[0].At) + 1
}

// End returns the channel's end time t_k.
func (c Channel) End() graph.Time {
	if len(c) == 0 {
		return 0
	}
	return c[len(c)-1].At
}

// FindChannel reconstructs an information channel u→v of duration ≤ omega
// whose end time equals λ(u,v) — the earliest-ending admissible channel,
// the witness behind the summaries' entries. It returns nil when no
// admissible channel exists. This answers the diagnostic question "WHY
// does u influence v": the IRS algorithms only certify reachability, the
// brute force can exhibit the path.
func FindChannel(l *graph.Log, u, v graph.NodeID, omega int64) Channel {
	if omega <= 0 || u == v {
		return nil
	}
	edges := l.Interactions
	arrival := make([]graph.Time, l.NumNodes)
	via := make([]int, l.NumNodes) // index of the edge that reached the node
	reached := make([]bool, l.NumNodes)
	var touched []graph.NodeID

	var best Channel
	var bestEnd graph.Time
	for i, start := range edges {
		if start.Src != u || start.Src == start.Dst {
			continue
		}
		if best != nil && start.At >= bestEnd {
			// Channels starting here end strictly later than the best
			// found; with edges ascending no further start can improve.
			break
		}
		deadline := start.At + graph.Time(omega) - 1
		reached[start.Dst] = true
		arrival[start.Dst] = start.At
		via[start.Dst] = i
		touched = append(touched[:0], start.Dst)
		for j := i + 1; j < len(edges); j++ {
			e := edges[j]
			if e.At > deadline {
				break
			}
			if e.Src == e.Dst {
				continue
			}
			if reached[e.Src] && e.At > arrival[e.Src] && !reached[e.Dst] {
				reached[e.Dst] = true
				arrival[e.Dst] = e.At
				via[e.Dst] = j
				touched = append(touched, e.Dst)
				if e.Dst == v {
					break
				}
			}
		}
		if reached[v] && (best == nil || arrival[v] < bestEnd) {
			// Walk the via chain backwards to materialize the path. Every
			// reached node's chain terminates at the start edge (index i),
			// whose destination was the scan's first reached node.
			var rev Channel
			cur := v
			for {
				idx := via[cur]
				rev = append(rev, edges[idx])
				if idx == i {
					break
				}
				cur = edges[idx].Src
			}
			// Reverse into time order.
			for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
				rev[a], rev[b] = rev[b], rev[a]
			}
			best = rev
			bestEnd = arrival[v]
		}
		for _, w := range touched {
			reached[w] = false
		}
	}
	return best
}
