// Package stats provides the small numeric helpers the experiment harness
// and tests share: means, relative errors, percentiles, and set overlap.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation, or 0 for fewer than
// two values.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// RelErr returns |estimate − truth| / truth, or 0 when both are zero, or
// |estimate| when only truth is zero (so a spurious estimate still counts
// as error mass rather than dividing by zero).
func RelErr(estimate, truth float64) float64 {
	if truth == 0 {
		if estimate == 0 {
			return 0
		}
		return math.Abs(estimate)
	}
	return math.Abs(estimate-truth) / truth
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by nearest-rank on
// a copy of xs, or 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(cp)))) - 1
	if rank < 0 {
		rank = 0
	}
	return cp[rank]
}

// Overlap returns the number of elements the two slices share, treating
// each as a set. It is how Table 5 counts common seeds between windows.
func Overlap[T comparable](a, b []T) int {
	set := make(map[T]struct{}, len(a))
	for _, x := range a {
		set[x] = struct{}{}
	}
	n := 0
	seen := make(map[T]struct{}, len(b))
	for _, x := range b {
		if _, dup := seen[x]; dup {
			continue
		}
		seen[x] = struct{}{}
		if _, ok := set[x]; ok {
			n++
		}
	}
	return n
}
