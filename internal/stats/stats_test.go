package stats

import (
	"math"
	"testing"
)

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
}

func TestStddev(t *testing.T) {
	if got := Stddev([]float64{5}); got != 0 {
		t.Errorf("Stddev single = %g", got)
	}
	if got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Stddev = %g, want 2", got)
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr = %g, want 0.1", got)
	}
	if got := RelErr(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr = %g, want 0.1", got)
	}
	if got := RelErr(0, 0); got != 0 {
		t.Errorf("RelErr(0,0) = %g", got)
	}
	if got := RelErr(3, 0); got != 3 {
		t.Errorf("RelErr(3,0) = %g, want 3", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %g", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("p100 = %g", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("p50 = %g", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %g", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentile sorted its input in place")
	}
}

func TestOverlap(t *testing.T) {
	if got := Overlap([]int{1, 2, 3}, []int{2, 3, 4}); got != 2 {
		t.Errorf("Overlap = %d, want 2", got)
	}
	if got := Overlap([]int{}, []int{1}); got != 0 {
		t.Errorf("Overlap empty = %d", got)
	}
	// Duplicates in either argument count once.
	if got := Overlap([]int{1, 1, 2}, []int{1, 1, 1}); got != 1 {
		t.Errorf("Overlap dup = %d, want 1", got)
	}
	if got := Overlap([]string{"a", "b"}, []string{"b", "c"}); got != 1 {
		t.Errorf("Overlap strings = %d, want 1", got)
	}
}
