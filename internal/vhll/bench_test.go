package vhll

import (
	"testing"

	"ipin/internal/hll"
)

func BenchmarkAddReverseStream(b *testing.B) {
	s := MustNew(9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Reverse-chronological arrival, 64k distinct items.
		s.AddHash(hll.Hash64(uint64(i%65536)), int64(1<<40-i))
	}
}

func BenchmarkMergeWindow(b *testing.B) {
	src := MustNew(9)
	for i := 0; i < 4096; i++ {
		src.AddHash(hll.Hash64(uint64(i)), int64(1000000-i))
	}
	dst := MustNew(9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.MergeWindow(src, 900000, 80000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateWindow(b *testing.B) {
	s := MustNew(9)
	for i := 0; i < 100000; i++ {
		s.AddHash(hll.Hash64(uint64(i)), int64(1000000-i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.EstimateWindow(900000, 50000)
	}
}

func BenchmarkCollapse(b *testing.B) {
	s := MustNew(9)
	for i := 0; i < 100000; i++ {
		s.AddHash(hll.Hash64(uint64(i)), int64(1000000-i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Collapse()
	}
}
