package vhll

import (
	"testing"

	"ipin/internal/hll"
)

func BenchmarkAddReverseStream(b *testing.B) {
	s := MustNew(9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Reverse-chronological arrival, 64k distinct items.
		s.AddHash(hll.Hash64(uint64(i%65536)), int64(1<<40-i))
	}
}

func BenchmarkMergeWindow(b *testing.B) {
	src := MustNew(9)
	for i := 0; i < 4096; i++ {
		src.AddHash(hll.Hash64(uint64(i)), int64(1000000-i))
	}
	dst := MustNew(9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.MergeWindow(src, 900000, 80000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAddHashBatch(b *testing.B) {
	s := MustNew(9)
	const batch = 256
	hashes := make([]uint64, batch)
	ats := make([]int64, batch)
	for i := range hashes {
		hashes[i] = hll.Hash64(uint64(i % 65536))
	}
	at := int64(1 << 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		for j := range ats {
			at--
			ats[j] = at
		}
		s.AddHashBatch(hashes, ats)
	}
}

func BenchmarkMerge(b *testing.B) {
	// Steady-state union: dst has already adopted src's content, so every
	// iteration re-merges in place — the shape of the incremental fold's
	// repeated block stitching.
	src := MustNew(9)
	for i := 0; i < 4096; i++ {
		src.AddHash(hll.Hash64(uint64(i)), int64(1000000-i))
	}
	dst := MustNew(9)
	if err := dst.Merge(src); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.Merge(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateWindow(b *testing.B) {
	s := MustNew(9)
	for i := 0; i < 100000; i++ {
		s.AddHash(hll.Hash64(uint64(i)), int64(1000000-i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.EstimateWindow(900000, 50000)
	}
}

func BenchmarkCollapse(b *testing.B) {
	s := MustNew(9)
	for i := 0; i < 100000; i++ {
		s.AddHash(hll.Hash64(uint64(i)), int64(1000000-i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Collapse()
	}
}
