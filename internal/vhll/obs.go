package vhll

import (
	"sync/atomic"

	"ipin/internal/obs"
)

// metrics are the package's telemetry instruments. All fields are nil
// until InstallMetrics runs, and every obs method is a no-op on nil, so
// the uninstrumented hot path costs one atomic pointer load plus nil
// checks (see the disabled-path benchmarks in internal/obs).
type metrics struct {
	inserts       *obs.Counter
	dominated     *obs.Counter
	evicted       *obs.Counter
	merges        *obs.Counter
	mergeEntries  *obs.Counter
	prunes        *obs.Counter
	prunedEntries *obs.Counter
}

var (
	installed atomic.Pointer[metrics]
	noop      = new(metrics) // all-nil instruments: every record is a no-op
)

// m returns the active metrics set, never nil.
func m() *metrics {
	if p := installed.Load(); p != nil {
		return p
	}
	return noop
}

// InstallMetrics registers this package's instruments in reg and starts
// recording into them. Passing nil uninstalls, reverting every record
// site to a no-op. Install before starting work that should be observed;
// swapping collectors mid-scan is safe but splits counts between them.
func InstallMetrics(reg *obs.Registry) {
	if reg == nil {
		installed.Store(nil)
		return
	}
	installed.Store(&metrics{
		inserts:       reg.Counter("ipin_vhll_inserts_total", "Register update attempts on versioned HLL cells (ApproxAdd and merge inserts)."),
		dominated:     reg.Counter("ipin_vhll_dominated_total", "Register updates rejected because an existing (rank, time) pair dominated them."),
		evicted:       reg.Counter("ipin_vhll_evicted_total", "Stored (rank, time) pairs evicted by a dominating insert."),
		merges:        reg.Counter("ipin_vhll_merges_total", "Sketch merge operations (windowed and plain)."),
		mergeEntries:  reg.Counter("ipin_vhll_merge_entries_total", "Entries examined by sketch merges — the merge cost of paper Algorithm 3."),
		prunes:        reg.Counter("ipin_vhll_prunes_total", "Prune passes over sketches."),
		prunedEntries: reg.Counter("ipin_vhll_pruned_entries_total", "Entries dropped by prune passes."),
	})
}
