package vhll

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"ipin/internal/hll"
)

// Binary format: 4-byte magic "VHL1", 1-byte precision, then per cell a
// uvarint entry count followed by the entries as (zigzag-varint timestamp
// delta, rank byte) pairs. Timestamps within a cell ascend, so deltas
// against the previous entry compress well.
//
// The encoder walks cells in index order 0..β−1 through the slot map, so
// the bytes depend only on per-cell staircase CONTENT — the arena's
// first-touch region order, capacities, and garbage are invisible, which
// is what keeps the format bit-identical across the flat-layout refactor.
var vhllMagic = [4]byte{'V', 'H', 'L', '1'}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(vhllMagic[:])
	buf.WriteByte(s.precision)
	var tmp [binary.MaxVarintLen64]byte
	for i := 0; i < s.NumCells(); i++ {
		var list []Entry
		if si := s.slot[i]; si != 0 {
			list = s.cellEntries(int(si - 1))
		}
		n := binary.PutUvarint(tmp[:], uint64(len(list)))
		buf.Write(tmp[:n])
		prev := int64(0)
		for _, e := range list {
			n = binary.PutVarint(tmp[:], e.At-prev)
			buf.Write(tmp[:n])
			buf.WriteByte(e.Rank)
			prev = e.At
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The decoded
// sketch is verified against the staircase invariant, so corrupted or
// adversarial input is rejected rather than silently accepted. Cell
// regions are built tight (capacity = length) in cell order; later
// inserts regrow them on demand.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 5 || !bytes.Equal(data[:4], vhllMagic[:]) {
		return fmt.Errorf("vhll: bad magic")
	}
	p := int(data[4])
	if p < hll.MinPrecision || p > hll.MaxPrecision {
		return fmt.Errorf("vhll: bad precision %d", p)
	}
	r := bytes.NewReader(data[5:])
	decoded := &Sketch{precision: uint8(p), slot: make([]uint32, 1<<p)}
	for i := 0; i < 1<<p; i++ {
		count, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("vhll: cell %d count: %v", i, err)
		}
		// Each entry consumes at least 2 bytes (varint delta + rank), so a
		// larger count is structurally impossible and would only inflate
		// the allocation below.
		if count > uint64(r.Len())/2 {
			return fmt.Errorf("vhll: cell %d count %d exceeds remaining input", i, count)
		}
		// Ranks are strictly ascending uint8s, so no valid cell can exceed
		// maxCellEntries; reject before allocating rather than after via
		// the invariant check.
		if count > maxCellEntries {
			return fmt.Errorf("vhll: cell %d count %d exceeds max staircase length %d", i, count, maxCellEntries)
		}
		if count == 0 {
			continue
		}
		off := len(decoded.arena)
		decoded.arena = append(decoded.arena, make([]Entry, count)...)
		list := decoded.arena[off:]
		prev := int64(0)
		for j := range list {
			delta, err := binary.ReadVarint(r)
			if err != nil {
				return fmt.Errorf("vhll: cell %d entry %d time: %v", i, j, err)
			}
			rank, err := r.ReadByte()
			if err != nil {
				return fmt.Errorf("vhll: cell %d entry %d rank: %v", i, j, err)
			}
			prev += delta
			list[j] = Entry{At: prev, Rank: rank}
		}
		decoded.regs = append(decoded.regs, region{off: uint32(off), n: uint16(count), c: uint16(count)})
		decoded.occupied = append(decoded.occupied, uint32(i))
		decoded.slot[i] = uint32(len(decoded.occupied))
		decoded.live += int(count)
	}
	if r.Len() != 0 {
		return fmt.Errorf("vhll: %d trailing bytes", r.Len())
	}
	if err := decoded.CheckInvariant(); err != nil {
		return fmt.Errorf("vhll: corrupt payload: %v", err)
	}
	*s = *decoded
	return nil
}
