package vhll

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"ipin/internal/hll"
)

// Binary format: 4-byte magic "VHL1", 1-byte precision, then per cell a
// uvarint entry count followed by the entries as (zigzag-varint timestamp
// delta, rank byte) pairs. Timestamps within a cell ascend, so deltas
// against the previous entry compress well.
var vhllMagic = [4]byte{'V', 'H', 'L', '1'}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(vhllMagic[:])
	buf.WriteByte(s.precision)
	var tmp [binary.MaxVarintLen64]byte
	for _, list := range s.cells {
		n := binary.PutUvarint(tmp[:], uint64(len(list)))
		buf.Write(tmp[:n])
		prev := int64(0)
		for _, e := range list {
			n = binary.PutVarint(tmp[:], e.At-prev)
			buf.Write(tmp[:n])
			buf.WriteByte(e.Rank)
			prev = e.At
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The decoded
// sketch is verified against the staircase invariant, so corrupted or
// adversarial input is rejected rather than silently accepted.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 5 || !bytes.Equal(data[:4], vhllMagic[:]) {
		return fmt.Errorf("vhll: bad magic")
	}
	p := int(data[4])
	if p < hll.MinPrecision || p > hll.MaxPrecision {
		return fmt.Errorf("vhll: bad precision %d", p)
	}
	r := bytes.NewReader(data[5:])
	cells := make([][]Entry, 1<<p)
	for i := range cells {
		count, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("vhll: cell %d count: %v", i, err)
		}
		// Each entry consumes at least 2 bytes (varint delta + rank), so a
		// larger count is structurally impossible and would only inflate
		// the allocation below.
		if count > uint64(r.Len())/2 {
			return fmt.Errorf("vhll: cell %d count %d exceeds remaining input", i, count)
		}
		if count == 0 {
			continue
		}
		list := make([]Entry, count)
		prev := int64(0)
		for j := range list {
			delta, err := binary.ReadVarint(r)
			if err != nil {
				return fmt.Errorf("vhll: cell %d entry %d time: %v", i, j, err)
			}
			rank, err := r.ReadByte()
			if err != nil {
				return fmt.Errorf("vhll: cell %d entry %d rank: %v", i, j, err)
			}
			prev += delta
			list[j] = Entry{At: prev, Rank: rank}
		}
		cells[i] = list
	}
	if r.Len() != 0 {
		return fmt.Errorf("vhll: %d trailing bytes", r.Len())
	}
	decoded := &Sketch{precision: uint8(p), cells: cells}
	for i := range cells {
		if len(cells[i]) > 0 {
			decoded.occupied = append(decoded.occupied, uint32(i))
		}
	}
	if err := decoded.CheckInvariant(); err != nil {
		return fmt.Errorf("vhll: corrupt payload: %v", err)
	}
	*s = *decoded
	return nil
}
