package vhll

import (
	"testing"
	"testing/quick"

	"ipin/internal/hll"
)

// Property: the staircase invariant survives arbitrary reverse-ordered
// insertion sequences.
func TestQuickInvariantUnderInsertion(t *testing.T) {
	f := func(items []uint16, gaps []uint8) bool {
		s := MustNew(4)
		cur := int64(1 << 30)
		for i, it := range items {
			if i < len(gaps) {
				cur -= int64(gaps[i]%7) + 1
			} else {
				cur--
			}
			s.AddHash(hll.Hash64(uint64(it)), cur)
		}
		return s.CheckInvariant() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging preserves the invariant and dominates both operands
// cell-wise — every cell's maximum rank after the merge is at least each
// operand's. (The scalar estimate itself is NOT strictly monotone: the
// estimator's switch between linear counting and the raw formula is
// discontinuous, so the register-level property is the right one.)
func TestQuickMergeInvariantAndDominance(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := MustNew(4), MustNew(4)
		cur := int64(1 << 20)
		for _, x := range xs {
			cur--
			a.AddHash(hll.Hash64(uint64(x)), cur)
		}
		for _, y := range ys {
			cur--
			b.AddHash(hll.Hash64(uint64(y)), cur)
		}
		ca, cb := a.Collapse(), b.Collapse()
		if err := a.Merge(b); err != nil {
			return false
		}
		if a.CheckInvariant() != nil {
			return false
		}
		merged := a.Collapse()
		for cell := uint32(0); cell < uint32(a.NumCells()); cell++ {
			if merged.Register(cell) < ca.Register(cell) || merged.Register(cell) < cb.Register(cell) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Prune never changes the estimate anchored at the current
// (earliest) time with the pruning window.
func TestQuickPrunePreservesAnchoredEstimate(t *testing.T) {
	f := func(items []uint16, omegaSeed uint8) bool {
		if len(items) == 0 {
			return true
		}
		s := MustNew(4)
		cur := int64(1 << 20)
		for _, it := range items {
			cur--
			s.AddHash(hll.Hash64(uint64(it)), cur)
		}
		omega := int64(omegaSeed%50) + 1
		before := s.EstimateWindow(cur, omega)
		s.Prune(cur, omega)
		after := s.EstimateWindow(cur, omega)
		return before == after && s.CheckInvariant() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
