package vhll

import (
	"testing"

	"ipin/internal/hll"
)

// FuzzUnmarshalBinary: arbitrary bytes either fail cleanly or decode to a
// sketch whose invariants hold and which re-encodes losslessly.
func FuzzUnmarshalBinary(f *testing.F) {
	// Seed with a few valid encodings.
	for _, n := range []int{0, 3, 50} {
		s := MustNew(4)
		cur := int64(1000)
		for i := 0; i < n; i++ {
			cur--
			s.AddHash(hll.Hash64(uint64(i)), cur)
		}
		data, err := s.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Arena-shaped edge cases: the flat layout's interesting boundaries
	// are long empty-cell runs, one cell holding a maximal staircase, and
	// runs of rank-capped entries.
	{
		// Single full cell: ascending time + ascending rank never
		// dominates, building the longest legal staircase (ranks
		// 1..64−p+1), with every other cell empty.
		s := MustNew(4)
		for r := 1; r <= 61; r++ {
			s.AddHash(goldenHash(4, 7, uint8(r)), int64(r))
		}
		data, err := s.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	{
		// Max-rank runs: several cells pinned at the rank cap.
		s := MustNew(4)
		for c := uint32(0); c < 16; c += 2 {
			s.AddHash(goldenHash(4, c, 61), int64(100-c))
		}
		data, err := s.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Hostile cell count just above the staircase maximum: must be
	// rejected before the decoder materializes it.
	f.Add(append([]byte{'V', 'H', 'L', '1', 4}, 0x81, 0x02)) // cell 0 count = 257
	f.Add([]byte("VHL1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Sketch
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		if err := s.CheckInvariant(); err != nil {
			t.Fatalf("accepted payload violates invariant: %v", err)
		}
		// Lossless re-encode.
		out, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		var s2 Sketch
		if err := s2.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-unmarshal: %v", err)
		}
		if s2.Estimate() != s.Estimate() {
			t.Fatal("estimate changed across re-encode")
		}
	})
}
