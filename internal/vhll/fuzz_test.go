package vhll

import (
	"testing"

	"ipin/internal/hll"
)

// FuzzUnmarshalBinary: arbitrary bytes either fail cleanly or decode to a
// sketch whose invariants hold and which re-encodes losslessly.
func FuzzUnmarshalBinary(f *testing.F) {
	// Seed with a few valid encodings.
	for _, n := range []int{0, 3, 50} {
		s := MustNew(4)
		cur := int64(1000)
		for i := 0; i < n; i++ {
			cur--
			s.AddHash(hll.Hash64(uint64(i)), cur)
		}
		data, err := s.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("VHL1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Sketch
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		if err := s.CheckInvariant(); err != nil {
			t.Fatalf("accepted payload violates invariant: %v", err)
		}
		// Lossless re-encode.
		out, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		var s2 Sketch
		if err := s2.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-unmarshal: %v", err)
		}
		if s2.Estimate() != s.Estimate() {
			t.Fatal("estimate changed across re-encode")
		}
	})
}
