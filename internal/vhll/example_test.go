package vhll_test

import (
	"fmt"

	"ipin/internal/vhll"
)

// The versioned sketch ingests a reverse-chronological stream and answers
// distinct counts restricted to a window.
func ExampleSketch_EstimateWindow() {
	s := vhll.MustNew(10)
	// 1000 distinct items at times 10000, 9999, ..., 9001 (newest first,
	// as the IRS reverse scan produces them).
	for i := 0; i < 1000; i++ {
		s.Add(uint64(i), int64(10000-i))
	}
	// How many distinct items fall in the 500-tick window [9001, 9500]?
	est := s.EstimateWindow(9001, 500)
	fmt.Println(est > 400 && est < 600)
	// Output:
	// true
}
