package vhll

import (
	"math/rand"
	"testing"

	"ipin/internal/hll"
)

func TestSketchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := MustNew(7)
	cur := int64(1 << 30)
	for i := 0; i < 2000; i++ {
		cur -= int64(rng.Intn(5))
		s.AddHash(hll.Hash64(uint64(rng.Intn(500))), cur)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Sketch
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Precision() != s.Precision() || got.EntryCount() != s.EntryCount() {
		t.Fatalf("shape mismatch after round trip")
	}
	for i := 0; i < s.NumCells(); i++ {
		a, b := s.Cell(i), got.Cell(i)
		if len(a) != len(b) {
			t.Fatalf("cell %d length %d != %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("cell %d entry %d: %v != %v", i, j, a[j], b[j])
			}
		}
	}
	if got.Estimate() != s.Estimate() {
		t.Fatal("estimate changed across round trip")
	}
	if got.EstimateWindow(cur, 1000) != s.EstimateWindow(cur, 1000) {
		t.Fatal("windowed estimate changed across round trip")
	}
}

func TestSketchRoundTripNegativeTimes(t *testing.T) {
	// The sliding-window adapter stores negated timestamps; the varint
	// encoding must handle them.
	s := MustNew(5)
	s.AddHash(hll.Hash64(1), -100)
	s.AddHash(hll.Hash64(2), -200)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Sketch
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != s.Estimate() {
		t.Fatal("estimate changed")
	}
}

func TestUnmarshalRejectsBadInput(t *testing.T) {
	var s Sketch
	if err := s.UnmarshalBinary(nil); err == nil {
		t.Error("nil accepted")
	}
	if err := s.UnmarshalBinary([]byte("WRONGMAGIC")); err == nil {
		t.Error("bad magic accepted")
	}
	if err := s.UnmarshalBinary([]byte{'V', 'H', 'L', '1', 99}); err == nil {
		t.Error("bad precision accepted")
	}
	// Valid header but truncated body.
	src := MustNew(5)
	src.AddHash(hll.Hash64(7), 50)
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.UnmarshalBinary(data[:len(data)-1]); err == nil {
		t.Error("truncated body accepted")
	}
	if err := s.UnmarshalBinary(append(data, 0xAB)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestUnmarshalRejectsInvariantViolations(t *testing.T) {
	// Hand-craft a payload whose cell breaks the staircase (descending
	// rank): magic, precision 4, cell 0 with two entries, rest empty.
	payload := []byte{'V', 'H', 'L', '1', 4,
		2,    // cell 0: two entries
		2, 9, // entry (t=1 zigzag→2? varint(1)=0x02) rank 9
		2, 3, // entry (t=2) rank 3 < 9: violates strict ascent
	}
	for i := 0; i < 15; i++ {
		payload = append(payload, 0) // 15 empty cells
	}
	var s Sketch
	if err := s.UnmarshalBinary(payload); err == nil {
		t.Fatal("staircase violation accepted")
	}
}
