package vhll

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ipin/internal/hll"
)

// The representation-identity suite: deterministic random streams are
// driven through the public API and every observable output — VHL1 codec
// bytes, Estimate/EstimateWindow/EstimateBefore, collapsed HLL bytes,
// entry counts — is compared against golden files recorded at the pinned
// pre-refactor commit (the cells [][]Entry layout). The flat-arena layout
// must reproduce every byte; a mismatch means the refactor changed
// observable state, not just its in-memory shape.
//
// Regenerate (only legitimate when the FORMAT of the golden file changes,
// never to paper over an identity break):
//
//	go test ./internal/vhll -run TestGoldenRepresentationIdentity -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the representation-identity golden file")

// goldenCase derives one deterministic operation stream from its seed.
type goldenCase struct {
	Name      string `json:"name"`
	Precision int    `json:"precision"`
	Ops       int    `json:"ops"`
	Seed      int64  `json:"seed"`
	// Mode selects the stream shape: "reverse" (IRS-style descending
	// timestamps), "forward" (swhll-style ascending, fed negated),
	// "adversarial" (crafted cell/rank collisions incl. max ranks),
	// "prune" (reverse with interleaved Prune calls),
	// "dense" (small precision, enough distinct items to leave sparse()).
	Mode string `json:"mode"`
}

// goldenOut is everything observable about the final state of one case.
type goldenOut struct {
	SketchHex         string `json:"sketch_hex"`
	EntryCount        int    `json:"entry_count"`
	Estimate          string `json:"estimate"`        // float64 bits, hex
	EstimateWindow    string `json:"estimate_window"` // at recorded anchor
	EstimateBefore    string `json:"estimate_before"`
	CollapseHex       string `json:"collapse_hex"`
	CollapseBeforeHex string `json:"collapse_before_hex"`
	CollapseWindowHex string `json:"collapse_window_hex"`
	MergedHex         string `json:"merged_hex"`         // Merge(other) result
	MergeWindowedHex  string `json:"merge_windowed_hex"` // MergeWindow(other) result
	CloneHex          string `json:"clone_hex"`
}

var goldenCases = []goldenCase{
	{Name: "reverse-small", Precision: 4, Ops: 200, Seed: 1, Mode: "reverse"},
	{Name: "reverse-default", Precision: 9, Ops: 5000, Seed: 2, Mode: "reverse"},
	{Name: "forward-mirrored", Precision: 9, Ops: 3000, Seed: 3, Mode: "forward"},
	{Name: "adversarial-collisions", Precision: 4, Ops: 1500, Seed: 4, Mode: "adversarial"},
	{Name: "prune-interleaved", Precision: 6, Ops: 4000, Seed: 5, Mode: "prune"},
	{Name: "dense-exit-sparse", Precision: 4, Ops: 8000, Seed: 6, Mode: "dense"},
	{Name: "reverse-ties", Precision: 5, Ops: 2500, Seed: 7, Mode: "adversarial"},
}

// goldenHash builds a hash landing in cell with rank under precision p,
// mirroring mkHash but tolerant of the max-rank case (all-zero rest).
func goldenHash(p int, cell uint32, rank uint8) uint64 {
	h := uint64(cell) << (64 - p)
	maxRank := uint8(64 - p + 1)
	if rank > maxRank {
		rank = maxRank
	}
	if rank < maxRank {
		h |= uint64(1) << (64 - int(rank) - p)
	}
	return h
}

// runGoldenCase drives the case's op stream and captures outputs.
func runGoldenCase(t *testing.T, gc goldenCase) goldenOut {
	t.Helper()
	rng := rand.New(rand.NewSource(gc.Seed))
	s := MustNew(gc.Precision)
	other := MustNew(gc.Precision)

	const span = int64(1 << 20)
	cur := span
	minAt, maxAt := span, int64(0)
	add := func(dst *Sketch, h uint64, at int64) {
		dst.AddHash(h, at)
		if at < minAt {
			minAt = at
		}
		if at > maxAt {
			maxAt = at
		}
	}
	for i := 0; i < gc.Ops; i++ {
		// Timestamps: mostly strictly decreasing, sometimes repeated,
		// sometimes jumping far back.
		switch rng.Intn(10) {
		case 0: // repeat the current timestamp
		case 1:
			cur -= int64(rng.Intn(1000)) + 1
		default:
			cur--
		}
		var h uint64
		switch gc.Mode {
		case "adversarial":
			// Crafted collisions: few cells, clustered ranks, max-rank runs.
			cell := uint32(rng.Intn(4))
			rank := uint8(rng.Intn(6) + 1)
			if rng.Intn(20) == 0 {
				rank = uint8(64 - gc.Precision + 1) // max rank
			}
			h = goldenHash(gc.Precision, cell, rank)
		case "dense":
			h = hll.Hash64(uint64(rng.Intn(1 << 14)))
		default:
			h = hll.Hash64(uint64(rng.Intn(4096)))
		}
		if gc.Mode == "forward" {
			// Forward stream fed mirrored, as swhll does.
			add(s, h, -(span - cur))
		} else {
			add(s, h, cur)
		}
		if rng.Intn(3) == 0 {
			add(other, hll.Hash64(uint64(rng.Intn(4096))), cur)
		}
		if gc.Mode == "prune" && i%500 == 499 {
			s.Prune(cur, span/8)
		}
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatalf("%s: invariant after ops: %v", gc.Name, err)
	}

	anchor := minAt + (maxAt-minAt)/3
	window := (maxAt-minAt)/2 + 1
	out := goldenOut{
		EntryCount:     s.EntryCount(),
		Estimate:       f64hex(s.Estimate()),
		EstimateWindow: f64hex(s.EstimateWindow(anchor, window)),
		EstimateBefore: f64hex(s.EstimateBefore(anchor + window)),
	}
	out.SketchHex = mustHex(t, s)
	out.CollapseHex = mustHexHLL(t, s.Collapse())
	out.CollapseBeforeHex = mustHexHLL(t, s.CollapseBefore(anchor+window))
	out.CollapseWindowHex = mustHexHLL(t, s.CollapseWindow(anchor, window))
	out.CloneHex = mustHex(t, s.Clone())

	merged := s.Clone()
	if err := merged.Merge(other); err != nil {
		t.Fatalf("%s: merge: %v", gc.Name, err)
	}
	if err := merged.CheckInvariant(); err != nil {
		t.Fatalf("%s: invariant after merge: %v", gc.Name, err)
	}
	out.MergedHex = mustHex(t, merged)

	windowed := s.Clone()
	if err := windowed.MergeWindow(other, anchor, window); err != nil {
		t.Fatalf("%s: merge window: %v", gc.Name, err)
	}
	if err := windowed.CheckInvariant(); err != nil {
		t.Fatalf("%s: invariant after merge window: %v", gc.Name, err)
	}
	out.MergeWindowedHex = mustHex(t, windowed)
	return out
}

func mustHex(t *testing.T, s *Sketch) string {
	t.Helper()
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through the codec while we are here: decode must accept
	// its own output and re-encode identically.
	var back Sketch
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatalf("round-trip decode: %v", err)
	}
	again, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("codec round-trip not byte-identical")
	}
	return hex.EncodeToString(data)
}

func mustHexHLL(t *testing.T, s *hll.Sketch) string {
	t.Helper()
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return hex.EncodeToString(data)
}

func f64hex(v float64) string {
	return fmt.Sprintf("%016x", math.Float64bits(v))
}

func goldenPath() string {
	return filepath.Join("testdata", "golden_streams.json")
}

func TestGoldenRepresentationIdentity(t *testing.T) {
	type entry struct {
		Case goldenCase `json:"case"`
		Out  goldenOut  `json:"out"`
	}
	if *updateGolden {
		var entries []entry
		for _, gc := range goldenCases {
			entries = append(entries, entry{Case: gc, Out: runGoldenCase(t, gc)})
		}
		data, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cases)", goldenPath(), len(entries))
		return
	}
	data, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("golden file missing (generate with -update-golden at the pinned pre-refactor commit): %v", err)
	}
	var entries []entry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(goldenCases) {
		t.Fatalf("golden file has %d cases, test defines %d", len(entries), len(goldenCases))
	}
	for i, e := range entries {
		e := e
		t.Run(e.Case.Name, func(t *testing.T) {
			if goldenCases[i] != e.Case {
				t.Fatalf("case definition drifted from golden file: %+v vs %+v", goldenCases[i], e.Case)
			}
			got := runGoldenCase(t, e.Case)
			if got != e.Out {
				t.Errorf("representation identity broken:\n got %+v\nwant %+v", got, e.Out)
			}
		})
	}
}
