package vhll

import (
	"math/rand"
	"reflect"
	"testing"

	"ipin/internal/hll"
)

// mkHash builds a hash that lands in the given cell with the given rank
// under precision p (rank must be ≤ 64−p).
func mkHash(p int, cell uint32, rank uint8) uint64 {
	h := uint64(cell) << (64 - p)
	h |= uint64(1) << (64 - int(rank) - p)
	// Sanity-check the construction against the real splitter.
	c, r := hll.Split(h, p)
	if c != cell || r != rank {
		panic("mkHash construction broken")
	}
	return h
}

const testPrecision = 4

// addCR inserts an item with a crafted (cell, rank) at time t.
func addCR(s *Sketch, cell uint32, rank uint8, t int64) {
	s.AddHash(mkHash(testPrecision, cell, rank), t)
}

// cellOf reads the staircase of one cell.
func cellOf(s *Sketch, cell int) []Entry { return s.Cell(cell) }

// TestPaperExample3 replays the paper's Example 3: items with
// (ι, ρ) = a:(1,3) b:(3,1) c:(3,2) d:(2,2) e:(2,1), processed in reverse
// order (a,t6),(b,t5),(a,t4),(c,t3),(d,t2),(e,t1).
func TestPaperExample3(t *testing.T) {
	s := MustNew(testPrecision)
	addCR(s, 1, 3, 6) // (a, t6)
	addCR(s, 3, 1, 5) // (b, t5)
	addCR(s, 1, 3, 4) // (a, t4): dominates and replaces (3, t6)
	if got, want := cellOf(s, 1), []Entry{{At: 4, Rank: 3}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("cell 1 after (a,t4) = %v, want %v", got, want)
	}
	addCR(s, 3, 2, 3) // (c, t3): dominates and replaces (1, t5)
	if got, want := cellOf(s, 3), []Entry{{At: 3, Rank: 2}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("cell 3 after (c,t3) = %v, want %v", got, want)
	}
	addCR(s, 2, 2, 2) // (d, t2)
	addCR(s, 2, 1, 1) // (e, t1): kept alongside (2, t2)
	if got, want := cellOf(s, 2), []Entry{{At: 1, Rank: 1}, {At: 2, Rank: 2}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("cell 2 final = %v, want %v", got, want)
	}
	if got := cellOf(s, 0); len(got) != 0 {
		t.Fatalf("cell 0 = %v, want empty", got)
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestPaperExample4 replays the merge of the paper's Example 4.
func TestPaperExample4(t *testing.T) {
	a := MustNew(testPrecision)
	addCR(a, 1, 3, 4)
	addCR(a, 2, 2, 2)
	addCR(a, 2, 1, 1)
	addCR(a, 3, 2, 3)

	b := MustNew(testPrecision)
	addCR(b, 0, 5, 1)
	addCR(b, 1, 3, 2)
	addCR(b, 2, 4, 3)
	addCR(b, 3, 1, 4)

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	want := [][]Entry{
		{{At: 1, Rank: 5}},
		{{At: 2, Rank: 3}}, // (3,t2) dominates (3,t4)
		{{At: 1, Rank: 1}, {At: 2, Rank: 2}, {At: 3, Rank: 4}},
		{{At: 3, Rank: 2}}, // (2,t3) dominates (1,t4)
	}
	for i, w := range want {
		if got := cellOf(a, i); !reflect.DeepEqual(got, w) {
			t.Errorf("cell %d = %v, want %v", i, got, w)
		}
	}
	if err := a.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestDominatedInsertIsIgnored(t *testing.T) {
	s := MustNew(testPrecision)
	addCR(s, 0, 4, 5)
	addCR(s, 0, 3, 7) // later time, smaller rank → dominated
	if got, want := cellOf(s, 0), []Entry{{At: 5, Rank: 4}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("cell 0 = %v, want %v", got, want)
	}
}

func TestEqualTimeKeepsMaxRank(t *testing.T) {
	s := MustNew(testPrecision)
	addCR(s, 0, 2, 5)
	addCR(s, 0, 6, 5) // same timestamp, larger rank replaces
	if got, want := cellOf(s, 0), []Entry{{At: 5, Rank: 6}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("cell 0 = %v, want %v", got, want)
	}
	addCR(s, 0, 3, 5) // same timestamp, smaller rank ignored
	if got, want := cellOf(s, 0), []Entry{{At: 5, Rank: 6}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("cell 0 = %v, want %v", got, want)
	}
}

func TestEstimateWindowBounds(t *testing.T) {
	s := MustNew(9)
	// 100 distinct items at times 1000..901 (reverse ingestion).
	for i := 0; i < 100; i++ {
		s.Add(uint64(i), int64(1000-i))
	}
	// Window covering everything.
	if est := s.EstimateWindow(901, 100); est < 80 || est > 120 {
		t.Errorf("full-window estimate %.1f for 100 items", est)
	}
	// Window covering nothing.
	if est := s.EstimateWindow(1, 10); est != 0 {
		t.Errorf("empty-window estimate %.1f, want 0", est)
	}
	// Half window [951, 1000] holds the first 50 ingested items.
	if est := s.EstimateWindow(951, 50); est < 35 || est > 65 {
		t.Errorf("half-window estimate %.1f for 50 items", est)
	}
}

func TestEstimateMatchesCollapse(t *testing.T) {
	s := MustNew(9)
	for i := 0; i < 1000; i++ {
		s.Add(uint64(i), int64(100000-i))
	}
	if a, b := s.Estimate(), s.Collapse().Estimate(); a != b {
		t.Fatalf("Estimate %.3f != Collapse().Estimate %.3f", a, b)
	}
}

func TestCollapseWindowMatchesEstimateWindow(t *testing.T) {
	s := MustNew(9)
	for i := 0; i < 500; i++ {
		s.Add(uint64(i), int64(5000-3*i))
	}
	for _, w := range []struct{ t, omega int64 }{{4000, 500}, {3500, 1501}, {3500, 10}} {
		if a, b := s.EstimateWindow(w.t, w.omega), s.CollapseWindow(w.t, w.omega).Estimate(); a != b {
			t.Fatalf("window (%d,%d): EstimateWindow %.3f != CollapseWindow %.3f", w.t, w.omega, a, b)
		}
	}
}

func TestPrune(t *testing.T) {
	s := MustNew(testPrecision)
	addCR(s, 0, 5, 100)
	addCR(s, 0, 3, 50)
	addCR(s, 0, 1, 10)
	// Anchor 10, window 50: entries after 59 can never matter again.
	s.Prune(10, 50)
	got := cellOf(s, 0)
	if len(got) != 2 || got[0].At != 10 || got[1].At != 50 {
		t.Fatalf("after prune: %v", got)
	}
	// A window entirely in the pruned region is empty now.
	if est := s.EstimateWindow(90, 20); est != 0 {
		t.Errorf("pruned-region estimate %.3f, want 0", est)
	}
}

func TestMergeWindowFiltersByDuration(t *testing.T) {
	a := MustNew(testPrecision)
	b := MustNew(testPrecision)
	addCR(b, 0, 2, 100)
	addCR(b, 1, 3, 104)
	addCR(b, 2, 4, 110)
	// Anchor t=100, ω=5: keep entries with At−100 < 5, i.e. at 100 and 104.
	if err := a.MergeWindow(b, 100, 5); err != nil {
		t.Fatal(err)
	}
	if got := cellOf(a, 0); len(got) != 1 {
		t.Errorf("cell 0 = %v, want 1 entry", got)
	}
	if got := cellOf(a, 1); len(got) != 1 {
		t.Errorf("cell 1 = %v, want 1 entry", got)
	}
	if got := cellOf(a, 2); len(got) != 0 {
		t.Errorf("cell 2 = %v, want empty (outside window)", got)
	}
}

func TestPrecisionMismatch(t *testing.T) {
	if err := MustNew(5).Merge(MustNew(6)); err == nil {
		t.Error("Merge precision mismatch not rejected")
	}
	if err := MustNew(5).MergeWindow(MustNew(6), 0, 10); err == nil {
		t.Error("MergeWindow precision mismatch not rejected")
	}
	if _, err := New(1); err == nil {
		t.Error("precision below minimum accepted")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := MustNew(testPrecision)
	addCR(a, 0, 3, 10)
	c := a.Clone()
	addCR(c, 0, 1, 5)
	if len(cellOf(a, 0)) != 1 {
		t.Fatal("clone shares cell storage")
	}
	if len(cellOf(c, 0)) != 2 {
		t.Fatal("clone did not accept new entry")
	}
}

func TestMemoryAccounting(t *testing.T) {
	s := MustNew(testPrecision)
	if s.PayloadBytes() != 0 || s.EntryCount() != 0 {
		t.Fatal("empty sketch reports payload")
	}
	// An empty sketch still retains its slot map and struct — MemoryBytes
	// is truthful about that, and PayloadBytes is not allowed to count it.
	if got, floor := s.MemoryBytes(), s.NumCells()*4; got < floor {
		t.Fatalf("MemoryBytes = %d below slot-map floor %d", got, floor)
	}
	addCR(s, 0, 1, 10)
	addCR(s, 1, 2, 9)
	if got := s.EntryCount(); got != 2 {
		t.Fatalf("EntryCount = %d, want 2", got)
	}
	if got := s.PayloadBytes(); got != 2*EntryBytes {
		t.Fatalf("PayloadBytes = %d, want %d", got, 2*EntryBytes)
	}
	// Retained bytes must cover at least what the live entries occupy.
	if got := s.MemoryBytes(); got < s.NumCells()*4+2*16 {
		t.Fatalf("MemoryBytes = %d does not cover retained state", got)
	}
}

// naiveVHLL retains every (cell, rank, time) triple and computes windowed
// registers by full scan — the reference the real sketch must match
// exactly for admissible queries (anchor ≤ every inserted timestamp).
type naiveVHLL struct {
	precision int
	triples   []struct {
		cell uint32
		rank uint8
		at   int64
	}
}

func (n *naiveVHLL) add(hash uint64, t int64) {
	c, r := hll.Split(hash, n.precision)
	n.triples = append(n.triples, struct {
		cell uint32
		rank uint8
		at   int64
	}{c, r, t})
}

func (n *naiveVHLL) estimateWindow(t, omega int64) float64 {
	regs := make([]uint8, 1<<n.precision)
	hi := t + omega - 1
	for _, tr := range n.triples {
		if tr.at >= t && tr.at <= hi && tr.rank > regs[tr.cell] {
			regs[tr.cell] = tr.rank
		}
	}
	return hll.EstimateRegisters(regs)
}

// TestWindowEstimateMatchesNaive drives random reverse-ordered streams
// into both implementations and checks exact agreement on every
// admissible window query. This is the dominance-is-lossless property the
// design relies on.
func TestWindowEstimateMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		p := 4 + rng.Intn(3)
		s := MustNew(p)
		naive := &naiveVHLL{precision: p}
		cur := int64(1000000)
		for i := 0; i < 300; i++ {
			cur -= int64(1 + rng.Intn(5))
			h := hll.Hash64(uint64(rng.Intn(200)))
			s.AddHash(h, cur)
			naive.add(h, cur)
		}
		if err := s.CheckInvariant(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for q := 0; q < 40; q++ {
			anchor := cur - int64(rng.Intn(10)) // anchor ≤ min time: admissible
			omega := int64(1 + rng.Intn(2000))
			got := s.EstimateWindow(anchor, omega)
			want := naive.estimateWindow(anchor, omega)
			if got != want {
				t.Fatalf("trial %d query (t=%d, ω=%d): got %.6f, want %.6f", trial, anchor, omega, got, want)
			}
		}
	}
}

// TestEstimateBeforeMatchesNaive: prefix (deadline) queries must agree
// exactly with the keep-everything reference for ANY deadline — the
// dominance rule is lossless for prefixes regardless of the anchor.
func TestEstimateBeforeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		p := 4 + rng.Intn(3)
		s := MustNew(p)
		naive := &naiveVHLL{precision: p}
		cur := int64(500000)
		for i := 0; i < 250; i++ {
			cur -= int64(1 + rng.Intn(6))
			h := hll.Hash64(uint64(rng.Intn(150)))
			s.AddHash(h, cur)
			naive.add(h, cur)
		}
		for q := 0; q < 40; q++ {
			deadline := cur + int64(rng.Intn(2500))
			got := s.EstimateBefore(deadline)
			// The naive window [minInt, deadline] is the same prefix.
			want := naive.estimateWindow(deadline-1<<40, 1<<40+1)
			if got != want {
				t.Fatalf("trial %d deadline %d: got %.6f, want %.6f", trial, deadline, got, want)
			}
			if a, b := s.CollapseBefore(deadline).Estimate(), got; a != b {
				t.Fatalf("CollapseBefore %.6f != EstimateBefore %.6f", a, b)
			}
		}
	}
}

// TestMergeMatchesInterleaved checks that merging two sketches equals
// building one sketch from the interleaved stream, for reverse-ordered
// inputs (merge processes entries out of time order internally, which is
// exactly what the staircase insert must tolerate).
func TestMergeMatchesInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		a := MustNew(5)
		b := MustNew(5)
		both := MustNew(5)
		cur := int64(100000)
		for i := 0; i < 200; i++ {
			cur -= int64(1 + rng.Intn(4))
			h := hll.Hash64(uint64(rng.Intn(100)))
			if rng.Intn(2) == 0 {
				a.AddHash(h, cur)
			} else {
				b.AddHash(h, cur)
			}
			both.AddHash(h, cur)
		}
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		if err := a.CheckInvariant(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Windowed estimates agree on admissible anchors.
		for q := 0; q < 20; q++ {
			omega := int64(1 + rng.Intn(5000))
			got := a.EstimateWindow(cur, omega)
			want := both.EstimateWindow(cur, omega)
			if got != want {
				t.Fatalf("trial %d ω=%d: merged %.6f != interleaved %.6f", trial, omega, got, want)
			}
		}
	}
}
