package vhll

import (
	"math/rand"
	"slices"
	"testing"
)

// Tests for the flat arena layout and the two audited defect classes:
// dominated entries surviving insert's staircase truncation, and stale
// occupied slots surviving Prune.

// maximalStaircase computes the dominance-maximal set of (rank, time)
// pairs by brute force: for each distinct timestamp keep the max rank,
// sweep in ascending time, and keep a pair only when its rank exceeds
// every rank at an earlier-or-equal time. This is the ground truth a
// cell's staircase must equal after ANY insertion order.
func maximalStaircase(pairs []Entry) []Entry {
	if len(pairs) == 0 {
		return nil
	}
	byAt := map[int64]uint8{}
	for _, e := range pairs {
		if e.Rank > byAt[e.At] {
			byAt[e.At] = e.Rank
		}
	}
	ats := make([]int64, 0, len(byAt))
	for at := range byAt {
		ats = append(ats, at)
	}
	slices.Sort(ats)
	var out []Entry
	best := -1
	for _, at := range ats {
		if r := byAt[at]; int(r) > best {
			out = append(out, Entry{At: at, Rank: r})
			best = int(r)
		}
	}
	return out
}

// TestInsertDominanceAudit is the satellite-1 audit pinned as a test:
// adversarial insertion orders — equal ranks arriving at newer
// timestamps, dominated entries arriving before their dominators, ties
// on both axes — must never leave a dominated pair in a cell. The
// staircase must equal the brute-force maximal set exactly, and
// CheckInvariant (which rejects equal-time pairs as dominated) must hold
// after every single insert.
func TestInsertDominanceAudit(t *testing.T) {
	// Hand-built orders that would expose a truncation defect: each is a
	// sequence of (rank, at) into one cell.
	adversarial := [][]Entry{
		// Equal rank, newer timestamp after older: the newer one is
		// dominated and must not survive.
		{{At: 10, Rank: 5}, {At: 20, Rank: 5}},
		// Same, arriving oldest-last (reverse ingestion): the late-arriving
		// older entry must evict the newer equal-rank one.
		{{At: 20, Rank: 5}, {At: 10, Rank: 5}},
		// A low-rank entry sandwiched so that the eviction run must clear
		// multiple successors at once.
		{{At: 30, Rank: 3}, {At: 20, Rank: 2}, {At: 10, Rank: 1}, {At: 5, Rank: 3}},
		// Equal timestamp, ascending ranks: only the max survives.
		{{At: 10, Rank: 1}, {At: 10, Rank: 2}, {At: 10, Rank: 3}},
		// Equal timestamp, descending ranks.
		{{At: 10, Rank: 3}, {At: 10, Rank: 2}, {At: 10, Rank: 1}},
		// Insert between two staircase steps dominating neither side.
		{{At: 10, Rank: 1}, {At: 30, Rank: 5}, {At: 20, Rank: 3}},
		// Insert dominating its successor but not predecessor, with an
		// equal-time twin of the successor present.
		{{At: 10, Rank: 2}, {At: 20, Rank: 3}, {At: 15, Rank: 3}},
	}
	for i, seq := range adversarial {
		s := MustNew(testPrecision)
		for _, e := range seq {
			s.AddHash(mkHash(testPrecision, 0, e.Rank), e.At)
			if err := s.CheckInvariant(); err != nil {
				t.Fatalf("case %d: invariant after inserting %+v: %v", i, e, err)
			}
		}
		want := maximalStaircase(seq)
		if got := s.Cell(0); !slices.Equal(got, want) {
			t.Errorf("case %d: staircase %+v, want maximal set %+v", i, got, want)
		}
	}

	// Randomized sweep: arbitrary orders, heavy rank/time collisions.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		s := MustNew(testPrecision)
		perCell := map[uint32][]Entry{}
		for op := 0; op < 120; op++ {
			cell := uint32(rng.Intn(3))
			e := Entry{At: int64(rng.Intn(12)), Rank: uint8(rng.Intn(5) + 1)}
			s.AddHash(mkHash(testPrecision, cell, e.Rank), e.At)
			perCell[cell] = append(perCell[cell], e)
			if err := s.CheckInvariant(); err != nil {
				t.Fatalf("trial %d op %d: %v", trial, op, err)
			}
		}
		for cell, pairs := range perCell {
			want := maximalStaircase(pairs)
			if got := s.Cell(int(cell)); !slices.Equal(got, want) {
				t.Fatalf("trial %d cell %d: staircase %+v, want %+v", trial, cell, got, want)
			}
		}
	}
}

// TestPruneCompactsOccupied is the satellite-2 regression: after Prune
// empties cells, the occupied index must shrink with them — iteration
// cost and EntryCount must agree — and re-populating a pruned cell must
// not duplicate its index entry.
func TestPruneCompactsOccupied(t *testing.T) {
	s := MustNew(6)
	// Prune drops entries NEWER than the horizon current+ω−1 (the reverse
	// scan's anchor only ever moves earlier). Give the odd cells entries
	// beyond the horizon so they prune empty.
	for cell := 0; cell < 64; cell++ {
		at := int64(10 + cell)
		if cell%2 == 1 {
			at = int64(1000 + cell) // beyond the horizon below
		}
		s.AddHash(mkHash(6, uint32(cell), 3), at)
	}
	s.Prune(50, 100) // horizon 149: only the even cells survive
	populated := 0
	entries := 0
	for cell := 0; cell < s.NumCells(); cell++ {
		if l := s.Cell(cell); len(l) > 0 {
			populated++
			entries += len(l)
		}
	}
	if len(s.occupied) != populated {
		t.Fatalf("occupied index has %d slots for %d populated cells", len(s.occupied), populated)
	}
	if got := s.EntryCount(); got != entries {
		t.Fatalf("EntryCount %d, cells hold %d", got, entries)
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatal(err)
	}

	// Re-populate a pruned cell and prune again: exactly one index slot.
	s.AddHash(mkHash(6, 1, 4), 120)
	s.AddHash(mkHash(6, 1, 5), 110)
	if err := s.CheckInvariant(); err != nil {
		t.Fatalf("after re-populating pruned cell: %v", err)
	}
	count := 0
	for _, cell := range s.occupied {
		if cell == 1 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("cell 1 appears %d times in occupied", count)
	}

	// Prune everything (horizon before every entry): the index must drain.
	s.Prune(-500, 10)
	if !s.Empty() || s.EntryCount() != 0 || len(s.occupied) != 0 {
		t.Fatalf("full prune left live=%d occupied=%d", s.EntryCount(), len(s.occupied))
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestPruneBoundsRetainedMemory: a sketch that cycles through populate/
// prune must not accrete arena garbage without bound — reserve compacts
// once garbage dominates, so retained bytes stay proportional to the
// working set, which is what MemoryBytes now reports.
func TestPruneBoundsRetainedMemory(t *testing.T) {
	s := MustNew(6)
	peak := 0
	at := int64(1 << 40)
	for cycle := 0; cycle < 200; cycle++ {
		for i := 0; i < 200; i++ {
			at--
			s.AddHash(mkHash(6, uint32(i%64), uint8(i%20+1)), at)
		}
		s.Prune(at, 50)
		if b := s.MemoryBytes(); b > peak {
			peak = b
		}
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	// The working set is at most ~64 cells × a short staircase; 64 KiB of
	// retained state means compaction never ran.
	if peak > 64<<10 {
		t.Fatalf("retained memory peaked at %d bytes; garbage is not being compacted", peak)
	}
}

// TestSteadyStateAllocFree pins the tentpole's allocation contract: at
// steady state (regions warmed to their working capacity) Add, Merge and
// MergeWindow perform zero heap allocations per op.
func TestSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	// Add: reverse stream of repeating items — every op is an in-place
	// front eviction once the staircase is warm.
	s := MustNew(9)
	at := int64(1 << 40)
	hashes := make([]uint64, 4096)
	for i := range hashes {
		hashes[i] = mkHash(9, uint32(i%512), uint8(i%16+1))
	}
	for i := 0; i < 3*len(hashes); i++ {
		at--
		s.AddHash(hashes[i%len(hashes)], at)
	}
	i := 0
	if got := testing.AllocsPerRun(2000, func() {
		at--
		s.AddHash(hashes[i%len(hashes)], at)
		i++
	}); got != 0 {
		t.Errorf("Add steady state: %.1f allocs/op, want 0", got)
	}

	// Merge: once dst has adopted src's cells, re-merging the same content
	// unions in place.
	src := MustNew(9)
	for j := 0; j < 4096; j++ {
		src.AddHash(hashes[j%len(hashes)], int64(1<<30-j))
	}
	dst := MustNew(9)
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(500, func() {
		if err := dst.Merge(src); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("Merge steady state: %.1f allocs/op, want 0", got)
	}

	// MergeWindow over the same warmed destination.
	if err := dst.MergeWindow(src, 1<<30-5000, 10000); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(500, func() {
		if err := dst.MergeWindow(src, 1<<30-5000, 10000); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("MergeWindow steady state: %.1f allocs/op, want 0", got)
	}
}
