// Package vhll implements the versioned HyperLogLog sketch of the paper
// (§3.2.2): a HyperLogLog in which every cell stores a small dominance-
// pruned list of (rank, timestamp) pairs instead of a single rank, so that
// the sketch can answer cardinality estimates restricted to a time window
// and can be merged with window filtering.
//
// The sketch is designed for reverse-chronological ingestion: items arrive
// with non-increasing timestamps (the IRS algorithms scan the interaction
// log backwards), and queries ask for the number of distinct items whose
// timestamp falls in [t, t+ω−1] where t is never later than the most recent
// arrival. Under that regime a pair (r, t) is *dominated* by a pair
// (r', t') with t' ≤ t and r' ≥ r: every admissible window containing t
// also contains t', so (r, t) can never determine a cell's maximum.
//
// Each cell list is therefore kept sorted by strictly ascending timestamp
// with strictly ascending ranks — a monotonic staircase. Its expected
// length is O(log ω) (paper Lemma 4), which is what makes the whole IRS
// sketch of a node cost O(β·log²ω) expected space (Lemma 6).
//
// # Flat arena layout
//
// Cell lists live in ONE contiguous []Entry arena per sketch instead of a
// per-cell slice each. A compact region table (offset, length, capacity —
// 8 bytes per populated cell) indexes the arena in first-touch order, and
// a per-cell slot map resolves cell → region in O(1). Staircase walks,
// Prune, Merge and CollapseWindow therefore scan adjacent memory, and the
// mutating hot paths are allocation-free at steady state: an insert that
// fits its region's capacity shifts in place; one that does not relocates
// the region to the arena frontier (amortized by capacity doubling);
// merge unions are written two-pointer style into reserved frontier space
// and copied back when they fit. Dead space left by relocation is tracked
// and squeezed out by an in-place generation of the arena once it exceeds
// half the allocation. None of this changes observable state: the codec,
// the estimators, and every collapse see exactly the per-cell staircases,
// and the representation-identity suite (golden_test.go) pins all of it
// byte for byte against the previous cells [][]Entry layout.
package vhll

import (
	"fmt"
	"slices"
	"unsafe"

	"ipin/internal/hll"
)

// Entry is one (rank, timestamp) pair in a cell list.
type Entry struct {
	At   int64
	Rank uint8
}

// EntryBytes is the payload size of one entry used for the paper-
// comparable accounting (PayloadBytes): an 8-byte timestamp plus a 1-byte
// rank. Go's in-memory representation pads this to 16 bytes; PayloadBytes
// deliberately counts payload so Table 4 is implementation-neutral, while
// MemoryBytes reports what the process actually retains (see DESIGN.md).
const EntryBytes = 9

// maxCellEntries bounds one cell's staircase: ranks are uint8 and
// strictly ascending, so no valid cell can hold more than 256 entries.
// The decoder enforces it up front instead of allocating first and
// rejecting through the invariant check afterwards.
const maxCellEntries = 256

// regionInitCap is the capacity of a freshly allocated cell region.
const regionInitCap = 4

// region locates one populated cell's staircase inside the arena:
// arena[off : off+n] holds the entries, arena[off : off+c] is the space
// the cell owns (n ≤ c). Relocation abandons the owned space to garbage.
type region struct {
	off uint32
	n   uint16
	c   uint16
}

// Sketch is a versioned HyperLogLog. The zero value is unusable; construct
// with New.
type Sketch struct {
	precision uint8
	live      int // total stored entries, Σ region.n
	// garbage counts arena slots owned by no region — space abandoned by
	// relocations and prunes. Invariant: Σ region.c + garbage == len(arena).
	garbage int
	arena   []Entry
	// regs and occupied are parallel: occupied[k] is the cell whose
	// staircase regs[k] locates. First-touch order; merges and counts
	// touch only populated cells, which in the IRS scan is a handful of
	// the β cells — the difference between O(β) and O(populated) per edge.
	regs     []region
	occupied []uint32
	// slot maps cell → 1+index into occupied/regs, 0 = unpopulated. The
	// index is exact: a cell pruned empty leaves it (and occupied), so
	// iteration cost always equals the populated-cell count.
	slot []uint32
}

// New returns an empty sketch with 2^precision cells. Precision bounds are
// those of package hll.
func New(precision int) (*Sketch, error) {
	if precision < hll.MinPrecision || precision > hll.MaxPrecision {
		return nil, fmt.Errorf("vhll: precision %d outside [%d,%d]", precision, hll.MinPrecision, hll.MaxPrecision)
	}
	return &Sketch{precision: uint8(precision), slot: make([]uint32, 1<<precision)}, nil
}

// MustNew is New for statically known precisions; it panics on error.
func MustNew(precision int) *Sketch {
	s, err := New(precision)
	if err != nil {
		panic(err)
	}
	return s
}

// Precision returns k = log2(number of cells).
func (s *Sketch) Precision() int { return int(s.precision) }

// NumCells returns β.
func (s *Sketch) NumCells() int { return 1 << s.precision }

// Empty reports whether the sketch currently holds no entries.
func (s *Sketch) Empty() bool { return s.live == 0 }

// AddHash inserts a pre-hashed item observed at time t. This is the
// ApproxAdd of the paper's Algorithm 3: the pair is ignored when
// dominated, and evicts every pair it dominates.
func (s *Sketch) AddHash(hash uint64, t int64) {
	cell, rank := hll.Split(hash, int(s.precision))
	s.insert(cell, Entry{At: t, Rank: rank})
}

// Add inserts an item identified by a 64-bit value at time t.
func (s *Sketch) Add(item uint64, t int64) { s.AddHash(hll.Hash64(item), t) }

// AddHashBatch inserts a batch of pre-hashed items, hashes[i] observed at
// ats[i]. Ingest paths hash a whole edge batch first (a tight, cache-
// friendly loop) and then touch cells once per item; both slices must
// have equal length.
func (s *Sketch) AddHashBatch(hashes []uint64, ats []int64) {
	if len(hashes) != len(ats) {
		panic(fmt.Sprintf("vhll: AddHashBatch with %d hashes, %d timestamps", len(hashes), len(ats)))
	}
	p := int(s.precision)
	for i, h := range hashes {
		cell, rank := hll.Split(h, p)
		s.insert(cell, Entry{At: ats[i], Rank: rank})
	}
}

// cellEntries returns the live staircase of region k.
func (s *Sketch) cellEntries(k int) []Entry {
	r := s.regs[k]
	return s.arena[r.off : uint32(r.off)+uint32(r.n)]
}

// insert places e into cell, maintaining the staircase invariant:
// strictly ascending At, strictly ascending Rank, no dominated pairs.
func (s *Sketch) insert(cell uint32, e Entry) {
	mx := m()
	mx.inserts.Inc()
	si := s.slot[cell]
	if si == 0 {
		s.newRegion(cell, e)
		return
	}
	r := &s.regs[si-1]
	n := int(r.n)
	list := s.arena[r.off : int(r.off)+n]
	// idx = number of entries with At <= e.At (insertion point). Reverse-
	// chronological ingestion lands before the whole list almost every
	// time, so short-circuit the binary search on that case.
	idx := 0
	if e.At >= list[0].At {
		idx = upperBound(list, e.At)
	}
	// Dominated by an earlier-or-equal-time entry with rank >= ours?
	if idx > 0 && list[idx-1].Rank >= e.Rank {
		mx.dominated.Inc()
		return
	}
	// Evict an equal-time predecessor with a smaller rank (same version,
	// larger rank wins).
	lo := idx
	for lo > 0 && list[lo-1].At == e.At && list[lo-1].Rank < e.Rank {
		lo--
	}
	// Evict the run of later-time entries we dominate (ranks ascend, so
	// the dominated entries form a contiguous run starting at idx).
	hi := idx
	for hi < n && list[hi].Rank <= e.Rank {
		hi++
	}
	if lo == hi {
		// Pure insertion: shift in place when the region has room, else
		// relocate to the frontier with doubled capacity.
		if n < int(r.c) {
			room := s.arena[r.off : int(r.off)+n+1]
			copy(room[lo+1:], room[lo:n])
			room[lo] = e
			r.n++
			s.live++
			return
		}
		s.growInsert(si, lo, e)
		return
	}
	// Replace list[lo:hi] with e — never longer than before, so always in
	// place.
	mx.evicted.Add(int64(hi - lo))
	list[lo] = e
	copy(list[lo+1:], list[hi:])
	removed := hi - lo - 1
	r.n = uint16(n - removed)
	s.live -= removed
}

// newRegion allocates a region for a first-touched cell holding only e.
func (s *Sketch) newRegion(cell uint32, e Entry) {
	s.reserve(regionInitCap)
	off := len(s.arena)
	s.arena = s.arena[:off+regionInitCap]
	s.arena[off] = e
	s.regs = append(s.regs, region{off: uint32(off), n: 1, c: regionInitCap})
	s.occupied = append(s.occupied, cell)
	s.slot[cell] = uint32(len(s.occupied))
	s.live++
}

// growInsert relocates region si-1 to the arena frontier with doubled
// capacity, inserting e at staircase position lo on the way.
func (s *Sketch) growInsert(si uint32, lo int, e Entry) {
	n := int(s.regs[si-1].n)
	nc := int(s.regs[si-1].c) * 2
	if nc > maxCellEntries {
		nc = maxCellEntries
	}
	if nc < n+1 {
		nc = n + 1
	}
	s.reserve(nc)
	// reserve may have compacted; re-read the region after it.
	r := &s.regs[si-1]
	old := s.arena[r.off : int(r.off)+n]
	front := len(s.arena)
	s.arena = s.arena[:front+nc]
	dst := s.arena[front:]
	copy(dst, old[:lo])
	dst[lo] = e
	copy(dst[lo+1:], old[lo:])
	s.garbage += int(r.c)
	r.off = uint32(front)
	r.n = uint16(n + 1)
	r.c = uint16(nc)
	s.live++
}

// reserve makes room for k more arena slots, compacting the arena first
// when garbage dominates it (so retained memory tracks live state) and
// growing the allocation amortized-doubling otherwise.
func (s *Sketch) reserve(k int) {
	if cap(s.arena)-len(s.arena) >= k {
		return
	}
	if s.garbage*2 > len(s.arena) {
		s.compact(k)
		if cap(s.arena)-len(s.arena) >= k {
			return
		}
	}
	s.arena = slices.Grow(s.arena, k)
}

// compact rewrites the arena without the garbage left by relocations,
// preserving each region's capacity, with room for extra more slots.
func (s *Sketch) compact(extra int) {
	na := make([]Entry, 0, len(s.arena)-s.garbage+extra)
	for i := range s.regs {
		r := &s.regs[i]
		off := len(na)
		na = append(na, s.arena[r.off:int(r.off)+int(r.n)]...)
		na = na[:off+int(r.c)]
		r.off = uint32(off)
	}
	s.arena = na
	s.garbage = 0
}

// upperBound returns the number of entries with At <= t.
func upperBound(list []Entry, t int64) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid].At <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// maxRankInWindow returns the largest rank among entries of list whose
// timestamp lies in [lo, hi], or 0 if none does. Because ranks ascend with
// time, that is the rank of the last entry with At <= hi, provided it is
// not before lo.
func maxRankInWindow(list []Entry, lo, hi int64) uint8 {
	idx := upperBound(list, hi)
	if idx == 0 {
		return 0
	}
	if e := list[idx-1]; e.At >= lo {
		return e.Rank
	}
	return 0
}

// EstimateWindow approximates the number of distinct items whose timestamp
// lies in [t, t+omega−1].
func (s *Sketch) EstimateWindow(t, omega int64) float64 {
	registers := make([]uint8, s.NumCells())
	hi := t + omega - 1
	for k, cell := range s.occupied {
		if r := maxRankInWindow(s.cellEntries(k), t, hi); r > 0 {
			registers[cell] = r
		}
	}
	return hll.EstimateRegisters(registers)
}

// Estimate approximates the number of distinct items ever inserted,
// ignoring timestamps (every version participates).
func (s *Sketch) Estimate() float64 {
	registers := make([]uint8, s.NumCells())
	for k, cell := range s.occupied {
		r := s.regs[k]
		registers[cell] = s.arena[int(r.off)+int(r.n)-1].Rank
	}
	return hll.EstimateRegisters(registers)
}

// Collapse flattens the sketch into a plain HyperLogLog holding, per cell,
// the maximum rank over all versions. The result supports O(β) unions,
// which is how the influence oracle combines per-node summaries (§4.1).
func (s *Sketch) Collapse() *hll.Sketch {
	out := hll.MustNew(int(s.precision))
	for k, cell := range s.occupied {
		r := s.regs[k]
		out.SetRegister(cell, s.arena[int(r.off)+int(r.n)-1].Rank)
	}
	return out
}

// EstimateBefore approximates the number of distinct items whose
// timestamp is at most deadline. Prefix queries are lossless under the
// dominance rule: a dropped pair's dominator has an earlier timestamp, so
// it is inside every prefix the dropped pair was. In the IRS summaries,
// where an item's timestamp is λ(u,v), this estimates how many nodes u
// reaches BY the deadline.
func (s *Sketch) EstimateBefore(deadline int64) float64 {
	registers := make([]uint8, s.NumCells())
	for k, cell := range s.occupied {
		list := s.cellEntries(k)
		if idx := upperBound(list, deadline); idx > 0 {
			registers[cell] = list[idx-1].Rank
		}
	}
	return hll.EstimateRegisters(registers)
}

// CollapseBefore flattens the sketch restricted to timestamps at most
// deadline, for O(β) unions of deadline-bounded summaries.
func (s *Sketch) CollapseBefore(deadline int64) *hll.Sketch {
	out := hll.MustNew(int(s.precision))
	for k, cell := range s.occupied {
		list := s.cellEntries(k)
		if idx := upperBound(list, deadline); idx > 0 {
			out.SetRegister(cell, list[idx-1].Rank)
		}
	}
	return out
}

// CollapseWindow flattens the sketch restricted to timestamps in
// [t, t+omega−1].
func (s *Sketch) CollapseWindow(t, omega int64) *hll.Sketch {
	out := hll.MustNew(int(s.precision))
	hi := t + omega - 1
	for k, cell := range s.occupied {
		if r := maxRankInWindow(s.cellEntries(k), t, hi); r > 0 {
			out.SetRegister(cell, r)
		}
	}
	return out
}

// MergeWindow folds other into s, keeping only entries whose timestamp tx
// satisfies tx − t < omega. This is the ApproxMerge of Algorithm 3: when
// the IRS scan processes interaction (u, v, t), node u inherits from ϕ(v)
// exactly the reachability entries still inside the window anchored at t.
//
// The admissible prefix of a staircase is itself a staircase, so each
// source cell folds in through the same two-pointer union as Merge —
// linear in the touched entries and allocation-free at steady state —
// instead of entry-by-entry insertion.
func (s *Sketch) MergeWindow(other *Sketch, t, omega int64) error {
	if other.precision != s.precision {
		return fmt.Errorf("vhll: cannot merge precision %d into %d", other.precision, s.precision)
	}
	mx := m()
	mx.merges.Inc()
	examined := int64(0)
	for k, cell := range other.occupied {
		r := other.regs[k]
		list := other.arena[r.off : int(r.off)+int(r.n)]
		// Cell entries ascend in At; once one falls outside the window
		// every later one does too. Whole-cell misses (common when the
		// window trails far behind the cell's activity) cost one compare.
		if list[0].At-t >= omega {
			examined++ // the entry that broke the walk was examined
			continue
		}
		cut := 1
		for cut < len(list) && list[cut].At-t < omega {
			cut++
		}
		examined += int64(cut)
		if cut < len(list) {
			examined++
		}
		s.mergeCell(cell, list[:cut])
	}
	mx.mergeEntries.Add(examined)
	return nil
}

// Merge folds every entry of other into s (no window filter), the general
// sketch union of paper Example 4.
func (s *Sketch) Merge(other *Sketch) error {
	if other.precision != s.precision {
		return fmt.Errorf("vhll: cannot merge precision %d into %d", other.precision, s.precision)
	}
	if other == s {
		return nil // self-union is the identity
	}
	mx := m()
	mx.merges.Inc()
	examined := int64(0)
	for k, cell := range other.occupied {
		list := other.cellEntries(k)
		examined += int64(len(list))
		s.mergeCell(cell, list)
	}
	mx.mergeEntries.Add(examined)
	return nil
}

// MergeInto folds src into dst without ever mutating src and returns the
// resulting sketch: a nil dst adopts a deep copy of src, a nil src leaves
// dst untouched. It is the clone-safe chunk-merge entry point of the
// incremental fold (core.ChunkView.Fold), where the source sketches are
// cached block-local state that must survive for the next fold and the
// destination starts out nil for most nodes. Both sketches must share a
// precision; MergeInto panics otherwise, because the incremental callers
// construct every sketch at one configured precision and a mismatch is a
// programming error, not input error.
func MergeInto(dst, src *Sketch) *Sketch {
	if src == nil {
		return dst
	}
	if dst == nil {
		return src.Clone()
	}
	if err := dst.Merge(src); err != nil {
		panic(err)
	}
	return dst
}

// mergeCell folds one source staircase into cell. Both lists are
// staircases (ascending At, strictly ascending Rank), so the union is a
// single linear sweep in time order keeping entries whose rank exceeds
// everything emitted so far — O(m+n), against the O(m·n) worst case of
// rebuilding insert by insert. The union is written into reserved space
// at the arena frontier (never aliasing either input) and copied back
// into the cell's region when it fits its capacity; otherwise the
// frontier space becomes the cell's new region. Steady-state merges —
// where the destination cell has seen the churn before — allocate
// nothing. The parallel scan's stitch fold leans on this: it re-merges
// whole block-local sketches once per block boundary.
func (s *Sketch) mergeCell(cell uint32, other []Entry) {
	if len(other) == 0 {
		return
	}
	si := s.slot[cell]
	if si == 0 {
		// First touch: adopt a tight copy.
		s.reserve(len(other))
		off := len(s.arena)
		s.arena = s.arena[:off+len(other)]
		copy(s.arena[off:], other)
		s.regs = append(s.regs, region{off: uint32(off), n: uint16(len(other)), c: uint16(len(other))})
		s.occupied = append(s.occupied, cell)
		s.slot[cell] = uint32(len(s.occupied))
		s.live += len(other)
		return
	}
	need := int(s.regs[si-1].n) + len(other)
	s.reserve(need)
	r := &s.regs[si-1]
	list := s.arena[r.off : int(r.off)+int(r.n)]
	front := len(s.arena)
	out := s.arena[front : front+need] // reserved, beyond len, within cap
	n := unionStaircase(out, list, other)
	if n <= int(r.c) {
		// The union fits where the cell already lives; the frontier stays
		// untouched scratch.
		copy(s.arena[r.off:int(r.off)+n], out[:n])
		s.live += n - int(r.n)
		r.n = uint16(n)
		return
	}
	s.arena = s.arena[:front+need]
	s.garbage += int(r.c)
	s.live += n - int(r.n)
	r.off = uint32(front)
	r.n = uint16(n)
	r.c = uint16(need)
}

// unionStaircase merges staircases a and b into dst (which must not alias
// either and must hold len(a)+len(b) entries), keeping the dominance-
// maximal pairs: sweep in time order, emit when the rank exceeds
// everything emitted. Returns the number of entries written.
func unionStaircase(dst, a, b []Entry) int {
	n := 0
	last := -1 // rank of the last emitted entry; ranks fit in uint8
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var e Entry
		switch {
		case j == len(b):
			e = a[i]
			i++
		case i == len(a):
			e = b[j]
			j++
		case a[i].At < b[j].At:
			e = a[i]
			i++
		case b[j].At < a[i].At:
			e = b[j]
			j++
		default: // same version: the larger rank wins
			e = a[i]
			if b[j].Rank > e.Rank {
				e = b[j]
			}
			i++
			j++
		}
		if int(e.Rank) > last {
			dst[n] = e
			n++
			last = int(e.Rank)
		}
	}
	return n
}

// Prune drops entries that can never again influence a window query
// anchored at or before current: those with At − current + 1 > omega.
// This is the "periodically entries are removed" step of §3.2.2, used by
// sliding-window distinct counting. The IRS algorithms do NOT prune,
// because their final per-node estimates span every entry ever retained.
// A cell pruned empty leaves the occupied index immediately (its region
// returns to garbage), so iteration cost after a prune always matches the
// surviving entry count — a long-lived sketch never walks stale slots.
func (s *Sketch) Prune(current, omega int64) {
	mx := m()
	mx.prunes.Inc()
	dropped := int64(0)
	hi := current + omega - 1
	for k := 0; k < len(s.occupied); {
		r := &s.regs[k]
		list := s.arena[r.off : int(r.off)+int(r.n)]
		idx := upperBound(list, hi)
		if idx < len(list) {
			dropped += int64(len(list) - idx)
			s.live -= len(list) - idx
			r.n = uint16(idx)
		}
		if r.n == 0 {
			s.removeRegion(k)
			continue // the swapped-in region re-examines index k
		}
		k++
	}
	mx.prunedEntries.Add(dropped)
}

// removeRegion unlinks region k (its cell pruned empty), swapping the
// last region into its place and returning the owned space to garbage.
func (s *Sketch) removeRegion(k int) {
	cell := s.occupied[k]
	s.garbage += int(s.regs[k].c)
	last := len(s.occupied) - 1
	if k != last {
		s.occupied[k] = s.occupied[last]
		s.regs[k] = s.regs[last]
		s.slot[s.occupied[k]] = uint32(k + 1)
	}
	s.occupied = s.occupied[:last]
	s.regs = s.regs[:last]
	s.slot[cell] = 0
}

// EntryCount returns the total number of stored (rank, timestamp) pairs.
func (s *Sketch) EntryCount() int { return s.live }

// PayloadBytes returns the implementation-neutral payload size of the
// sketch — EntryBytes per stored pair, the quantity of the paper's
// Table 4. Empty cells cost nothing.
func (s *Sketch) PayloadBytes() int { return s.live * EntryBytes }

// entrySize and regionSize are the in-memory footprints the truthful
// accounting multiplies by.
const (
	entrySize  = int(unsafe.Sizeof(Entry{}))
	regionSize = int(unsafe.Sizeof(region{}))
)

// MemoryBytes returns the bytes the sketch actually retains: the arena
// allocation (capacity, not just live entries), the region and occupied
// indexes, and the per-cell slot map. This is what a resident-memory
// budget observes; for the paper-comparable payload accounting use
// PayloadBytes.
func (s *Sketch) MemoryBytes() int {
	return cap(s.arena)*entrySize +
		cap(s.regs)*regionSize +
		cap(s.occupied)*4 +
		len(s.slot)*4 +
		int(unsafe.Sizeof(*s))
}

// Clone returns a deep copy. The copy's arena is rebuilt tight — live
// entries only, no relocation garbage, capacities trimmed — because
// clones are what fold caches and checkpoints retain long-term.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{
		precision: s.precision,
		live:      s.live,
		arena:     make([]Entry, 0, s.live),
		regs:      make([]region, 0, len(s.regs)),
		occupied:  append([]uint32(nil), s.occupied...),
		slot:      append([]uint32(nil), s.slot...),
	}
	for k := range s.regs {
		r := s.regs[k]
		off := len(c.arena)
		c.arena = append(c.arena, s.arena[r.off:int(r.off)+int(r.n)]...)
		c.regs = append(c.regs, region{off: uint32(off), n: r.n, c: r.n})
	}
	return c
}

// Cell exposes a copy of one cell's list, for tests and diagnostics.
func (s *Sketch) Cell(i int) []Entry {
	if si := s.slot[i]; si != 0 {
		return append([]Entry(nil), s.cellEntries(int(si-1))...)
	}
	return nil
}

// CheckInvariant verifies the staircase property of every cell list —
// strictly ascending timestamps, strictly ascending ranks, which together
// mean no stored pair dominates another — and the consistency of the flat
// layout: slot map and occupied index agree exactly, regions are in
// bounds and disjoint, and the live/garbage accounting sums match the
// arena. It returns the first violation, or nil. Property tests call this
// after random operation sequences.
func (s *Sketch) CheckInvariant() error {
	if len(s.regs) != len(s.occupied) {
		return fmt.Errorf("vhll: %d regions for %d occupied cells", len(s.regs), len(s.occupied))
	}
	if len(s.slot) != s.NumCells() {
		return fmt.Errorf("vhll: slot map covers %d of %d cells", len(s.slot), s.NumCells())
	}
	live, caps := 0, 0
	for k, cell := range s.occupied {
		if int(cell) >= s.NumCells() {
			return fmt.Errorf("vhll: occupied cell %d out of range", cell)
		}
		if s.slot[cell] != uint32(k+1) {
			return fmt.Errorf("vhll: cell %d at occupied slot %d but slot map says %d", cell, k, int(s.slot[cell])-1)
		}
		r := s.regs[k]
		if r.n == 0 {
			return fmt.Errorf("vhll: cell %d occupied with an empty region", cell)
		}
		if r.n > r.c {
			return fmt.Errorf("vhll: cell %d region holds %d entries over capacity %d", cell, r.n, r.c)
		}
		if int(r.off)+int(r.c) > len(s.arena) {
			return fmt.Errorf("vhll: cell %d region [%d,%d) outside arena of %d", cell, r.off, int(r.off)+int(r.c), len(s.arena))
		}
		live += int(r.n)
		caps += int(r.c)
		list := s.arena[r.off : int(r.off)+int(r.n)]
		for j := 1; j < len(list); j++ {
			if list[j].At < list[j-1].At {
				return fmt.Errorf("vhll: cell %d: timestamps out of order at %d (%d < %d)", cell, j, list[j].At, list[j-1].At)
			}
			if list[j].At == list[j-1].At {
				// Equal-time pairs cannot both be maximal: the higher rank
				// dominates the lower. Unreachable through the API (the
				// dominance property test pins it); only hostile decode
				// input can present one.
				return fmt.Errorf("vhll: cell %d: dominated pair at %d (equal time %d)", cell, j, list[j].At)
			}
			if list[j].Rank <= list[j-1].Rank {
				return fmt.Errorf("vhll: cell %d: ranks not strictly ascending at %d (%d <= %d)", cell, j, list[j].Rank, list[j-1].Rank)
			}
		}
	}
	for cell, si := range s.slot {
		if si == 0 {
			continue
		}
		if int(si) > len(s.occupied) || s.occupied[si-1] != uint32(cell) {
			return fmt.Errorf("vhll: slot map points cell %d at occupied entry %d", cell, si-1)
		}
	}
	if live != s.live {
		return fmt.Errorf("vhll: live count %d, regions hold %d", s.live, live)
	}
	if caps+s.garbage != len(s.arena) {
		return fmt.Errorf("vhll: capacities %d + garbage %d != arena %d", caps, s.garbage, len(s.arena))
	}
	// Regions must not overlap: sort by offset and check adjacency.
	if len(s.regs) > 1 {
		order := make([]int, len(s.regs))
		for i := range order {
			order[i] = i
		}
		slices.SortFunc(order, func(a, b int) int { return int(s.regs[a].off) - int(s.regs[b].off) })
		for i := 1; i < len(order); i++ {
			prev, cur := s.regs[order[i-1]], s.regs[order[i]]
			if int(prev.off)+int(prev.c) > int(cur.off) {
				return fmt.Errorf("vhll: regions of cells %d and %d overlap", s.occupied[order[i-1]], s.occupied[order[i]])
			}
		}
	}
	return nil
}
