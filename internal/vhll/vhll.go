// Package vhll implements the versioned HyperLogLog sketch of the paper
// (§3.2.2): a HyperLogLog in which every cell stores a small dominance-
// pruned list of (rank, timestamp) pairs instead of a single rank, so that
// the sketch can answer cardinality estimates restricted to a time window
// and can be merged with window filtering.
//
// The sketch is designed for reverse-chronological ingestion: items arrive
// with non-increasing timestamps (the IRS algorithms scan the interaction
// log backwards), and queries ask for the number of distinct items whose
// timestamp falls in [t, t+ω−1] where t is never later than the most recent
// arrival. Under that regime a pair (r, t) is *dominated* by a pair
// (r', t') with t' ≤ t and r' ≥ r: every admissible window containing t
// also contains t', so (r, t) can never determine a cell's maximum.
//
// Each cell list is therefore kept sorted by ascending timestamp with
// strictly ascending ranks — a monotonic staircase. Its expected length is
// O(log ω) (paper Lemma 4), which is what makes the whole IRS sketch of a
// node cost O(β·log²ω) expected space (Lemma 6).
package vhll

import (
	"fmt"

	"ipin/internal/hll"
)

// Entry is one (rank, timestamp) pair in a cell list.
type Entry struct {
	At   int64
	Rank uint8
}

// EntryBytes is the payload size of one entry used for memory accounting:
// an 8-byte timestamp plus a 1-byte rank. Go's in-memory representation
// pads this to 16 bytes; the accounting deliberately counts payload so
// Table 4 is implementation-neutral (see DESIGN.md).
const EntryBytes = 9

// Sketch is a versioned HyperLogLog. The zero value is unusable; construct
// with New.
type Sketch struct {
	precision uint8
	cells     [][]Entry
	// occupied lists the indices of cells that have (or once had) entries,
	// so merges and counts touch only populated cells. In the IRS scan
	// most nodes populate a handful of the β cells, and the merge step
	// runs once per interaction — skipping empty cells is the difference
	// between O(β) and O(populated) per edge. A cell index may appear
	// twice only if Prune emptied the cell and a later insert refilled
	// it; iteration skips empty cells, so duplicates are harmless.
	occupied []uint32
}

// New returns an empty sketch with 2^precision cells. Precision bounds are
// those of package hll.
func New(precision int) (*Sketch, error) {
	if precision < hll.MinPrecision || precision > hll.MaxPrecision {
		return nil, fmt.Errorf("vhll: precision %d outside [%d,%d]", precision, hll.MinPrecision, hll.MaxPrecision)
	}
	return &Sketch{precision: uint8(precision), cells: make([][]Entry, 1<<precision)}, nil
}

// MustNew is New for statically known precisions; it panics on error.
func MustNew(precision int) *Sketch {
	s, err := New(precision)
	if err != nil {
		panic(err)
	}
	return s
}

// Precision returns k = log2(number of cells).
func (s *Sketch) Precision() int { return int(s.precision) }

// NumCells returns β.
func (s *Sketch) NumCells() int { return len(s.cells) }

// Empty reports whether the sketch has never held an entry. After Prune
// a drained sketch may still report false (occupied keeps once-filled
// cells), so callers may use a true result as a no-content fast path
// but must not read anything into false.
func (s *Sketch) Empty() bool { return len(s.occupied) == 0 }

// AddHash inserts a pre-hashed item observed at time t. This is the
// ApproxAdd of the paper's Algorithm 3: the pair is ignored when
// dominated, and evicts every pair it dominates.
func (s *Sketch) AddHash(hash uint64, t int64) {
	cell, rank := hll.Split(hash, int(s.precision))
	s.insert(cell, Entry{At: t, Rank: rank})
}

// Add inserts an item identified by a 64-bit value at time t.
func (s *Sketch) Add(item uint64, t int64) { s.AddHash(hll.Hash64(item), t) }

// insert places e into cell, maintaining the staircase invariant:
// ascending At, strictly ascending Rank, no dominated pairs.
func (s *Sketch) insert(cell uint32, e Entry) {
	mx := m()
	mx.inserts.Inc()
	list := s.cells[cell]
	if len(list) == 0 {
		s.occupied = append(s.occupied, cell)
	}
	// idx = number of entries with At <= e.At (insertion point).
	idx := upperBound(list, e.At)
	// Dominated by an earlier-or-equal-time entry with rank >= ours?
	if idx > 0 && list[idx-1].Rank >= e.Rank {
		mx.dominated.Inc()
		return
	}
	// Evict an equal-time predecessor with a smaller rank (same version,
	// larger rank wins).
	lo := idx
	for lo > 0 && list[lo-1].At == e.At && list[lo-1].Rank < e.Rank {
		lo--
	}
	// Evict the run of later-time entries we dominate (ranks ascend, so
	// the dominated entries form a contiguous run starting at idx).
	hi := idx
	for hi < len(list) && list[hi].Rank <= e.Rank {
		hi++
	}
	// Replace list[lo:hi] with e.
	if lo == hi {
		list = append(list, Entry{})
		copy(list[lo+1:], list[lo:])
		list[lo] = e
	} else {
		mx.evicted.Add(int64(hi - lo))
		list[lo] = e
		list = append(list[:lo+1], list[hi:]...)
	}
	s.cells[cell] = list
}

// upperBound returns the number of entries with At <= t.
func upperBound(list []Entry, t int64) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid].At <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// maxRankInWindow returns the largest rank among entries of list whose
// timestamp lies in [lo, hi], or 0 if none does. Because ranks ascend with
// time, that is the rank of the last entry with At <= hi, provided it is
// not before lo.
func maxRankInWindow(list []Entry, lo, hi int64) uint8 {
	idx := upperBound(list, hi)
	if idx == 0 {
		return 0
	}
	if e := list[idx-1]; e.At >= lo {
		return e.Rank
	}
	return 0
}

// EstimateWindow approximates the number of distinct items whose timestamp
// lies in [t, t+omega−1].
func (s *Sketch) EstimateWindow(t, omega int64) float64 {
	registers := make([]uint8, len(s.cells))
	hi := t + omega - 1
	for _, i := range s.occupied {
		if r := maxRankInWindow(s.cells[i], t, hi); r > registers[i] {
			registers[i] = r
		}
	}
	return hll.EstimateRegisters(registers)
}

// Estimate approximates the number of distinct items ever inserted,
// ignoring timestamps (every version participates).
func (s *Sketch) Estimate() float64 {
	registers := make([]uint8, len(s.cells))
	for _, i := range s.occupied {
		if n := len(s.cells[i]); n > 0 && s.cells[i][n-1].Rank > registers[i] {
			registers[i] = s.cells[i][n-1].Rank
		}
	}
	return hll.EstimateRegisters(registers)
}

// Collapse flattens the sketch into a plain HyperLogLog holding, per cell,
// the maximum rank over all versions. The result supports O(β) unions,
// which is how the influence oracle combines per-node summaries (§4.1).
func (s *Sketch) Collapse() *hll.Sketch {
	out := hll.MustNew(int(s.precision))
	for _, i := range s.occupied {
		if n := len(s.cells[i]); n > 0 {
			out.SetRegister(i, s.cells[i][n-1].Rank)
		}
	}
	return out
}

// EstimateBefore approximates the number of distinct items whose
// timestamp is at most deadline. Prefix queries are lossless under the
// dominance rule: a dropped pair's dominator has an earlier timestamp, so
// it is inside every prefix the dropped pair was. In the IRS summaries,
// where an item's timestamp is λ(u,v), this estimates how many nodes u
// reaches BY the deadline.
func (s *Sketch) EstimateBefore(deadline int64) float64 {
	registers := make([]uint8, len(s.cells))
	for _, i := range s.occupied {
		list := s.cells[i]
		if idx := upperBound(list, deadline); idx > 0 && list[idx-1].Rank > registers[i] {
			registers[i] = list[idx-1].Rank
		}
	}
	return hll.EstimateRegisters(registers)
}

// CollapseBefore flattens the sketch restricted to timestamps at most
// deadline, for O(β) unions of deadline-bounded summaries.
func (s *Sketch) CollapseBefore(deadline int64) *hll.Sketch {
	out := hll.MustNew(int(s.precision))
	for _, i := range s.occupied {
		list := s.cells[i]
		if idx := upperBound(list, deadline); idx > 0 {
			out.SetRegister(i, list[idx-1].Rank)
		}
	}
	return out
}

// CollapseWindow flattens the sketch restricted to timestamps in
// [t, t+omega−1].
func (s *Sketch) CollapseWindow(t, omega int64) *hll.Sketch {
	out := hll.MustNew(int(s.precision))
	hi := t + omega - 1
	for _, i := range s.occupied {
		if r := maxRankInWindow(s.cells[i], t, hi); r > 0 {
			out.SetRegister(i, r)
		}
	}
	return out
}

// MergeWindow folds other into s, keeping only entries whose timestamp tx
// satisfies tx − t < omega. This is the ApproxMerge of Algorithm 3: when
// the IRS scan processes interaction (u, v, t), node u inherits from ϕ(v)
// exactly the reachability entries still inside the window anchored at t.
func (s *Sketch) MergeWindow(other *Sketch, t, omega int64) error {
	if other.precision != s.precision {
		return fmt.Errorf("vhll: cannot merge precision %d into %d", other.precision, s.precision)
	}
	mx := m()
	mx.merges.Inc()
	examined := int64(0)
	if other.sparse() {
		for _, i := range other.occupied {
			for _, e := range other.cells[i] {
				examined++
				// Cell entries ascend in At; once one falls outside the
				// window every later one does too.
				if e.At-t >= omega {
					break
				}
				s.insert(i, e)
			}
		}
		mx.mergeEntries.Add(examined)
		return nil
	}
	for i, list := range other.cells {
		for _, e := range list {
			examined++
			if e.At-t >= omega {
				break
			}
			s.insert(uint32(i), e)
		}
	}
	mx.mergeEntries.Add(examined)
	return nil
}

// sparse reports whether visiting cells through the occupied index beats
// a linear scan: indirection wins only while few cells are populated;
// once most are, the sequential scan's locality wins.
func (s *Sketch) sparse() bool { return len(s.occupied)*4 < len(s.cells) }

// Merge folds every entry of other into s (no window filter), the general
// sketch union of paper Example 4.
func (s *Sketch) Merge(other *Sketch) error {
	if other.precision != s.precision {
		return fmt.Errorf("vhll: cannot merge precision %d into %d", other.precision, s.precision)
	}
	mx := m()
	mx.merges.Inc()
	examined := int64(0)
	if other.sparse() {
		for _, i := range other.occupied {
			examined += int64(len(other.cells[i]))
			s.mergeCell(i, other.cells[i])
		}
		mx.mergeEntries.Add(examined)
		return nil
	}
	for i, list := range other.cells {
		examined += int64(len(list))
		s.mergeCell(uint32(i), list)
	}
	mx.mergeEntries.Add(examined)
	return nil
}

// MergeInto folds src into dst without ever mutating src and returns the
// resulting sketch: a nil dst adopts a deep copy of src, a nil src leaves
// dst untouched. It is the clone-safe chunk-merge entry point of the
// incremental fold (core.ChunkView.Fold), where the source sketches are
// cached block-local state that must survive for the next fold and the
// destination starts out nil for most nodes. Both sketches must share a
// precision; MergeInto panics otherwise, because the incremental callers
// construct every sketch at one configured precision and a mismatch is a
// programming error, not input error.
func MergeInto(dst, src *Sketch) *Sketch {
	if src == nil {
		return dst
	}
	if dst == nil {
		return src.Clone()
	}
	if err := dst.Merge(src); err != nil {
		panic(err)
	}
	return dst
}

// mergeCell folds one source cell list into cell i. Both lists are
// staircases (ascending At, strictly ascending Rank), so the union is a
// single linear sweep in time order keeping entries whose rank exceeds
// everything emitted so far — O(m+n), against the O(m·n) worst case of
// rebuilding insert by insert. An empty destination cell just adopts a
// copy. The parallel scan's stitch fold leans on this: it re-merges
// whole block-local sketches once per block boundary.
func (s *Sketch) mergeCell(i uint32, other []Entry) {
	if len(other) == 0 {
		return
	}
	list := s.cells[i]
	if len(list) == 0 {
		s.cells[i] = append([]Entry(nil), other...)
		s.occupied = append(s.occupied, i)
		return
	}
	merged := make([]Entry, 0, len(list)+len(other))
	last := -1 // rank of the last emitted entry; ranks fit in uint8
	a, b := 0, 0
	for a < len(list) || b < len(other) {
		var e Entry
		switch {
		case b == len(other):
			e = list[a]
			a++
		case a == len(list):
			e = other[b]
			b++
		case list[a].At < other[b].At:
			e = list[a]
			a++
		case other[b].At < list[a].At:
			e = other[b]
			b++
		default: // same version: the larger rank wins
			e = list[a]
			if other[b].Rank > e.Rank {
				e = other[b]
			}
			a++
			b++
		}
		if int(e.Rank) > last {
			merged = append(merged, e)
			last = int(e.Rank)
		}
	}
	s.cells[i] = merged
}

// Prune drops entries that can never again influence a window query
// anchored at or before current: those with At − current + 1 > omega.
// This is the "periodically entries are removed" step of §3.2.2, used by
// sliding-window distinct counting. The IRS algorithms do NOT prune,
// because their final per-node estimates span every entry ever retained.
// Prune also rebuilds the occupied-cell index, so it is the only
// operation after which a cell can leave it — keeping the index
// duplicate-free for the counting paths.
func (s *Sketch) Prune(current, omega int64) {
	mx := m()
	mx.prunes.Inc()
	dropped := int64(0)
	hi := current + omega - 1
	kept := s.occupied[:0]
	for _, i := range s.occupied {
		list := s.cells[i]
		idx := upperBound(list, hi)
		if idx < len(list) {
			dropped += int64(len(list) - idx)
			s.cells[i] = list[:idx]
		}
		if len(s.cells[i]) > 0 {
			kept = append(kept, i)
		}
	}
	s.occupied = kept
	mx.prunedEntries.Add(dropped)
}

// EntryCount returns the total number of stored (rank, timestamp) pairs.
func (s *Sketch) EntryCount() int {
	n := 0
	for _, i := range s.occupied {
		n += len(s.cells[i])
	}
	return n
}

// MemoryBytes returns the payload size of the sketch: EntryBytes per
// stored pair. Empty cells cost nothing.
func (s *Sketch) MemoryBytes() int { return s.EntryCount() * EntryBytes }

// Clone returns a deep copy.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{
		precision: s.precision,
		cells:     make([][]Entry, len(s.cells)),
		occupied:  append([]uint32(nil), s.occupied...),
	}
	for i, list := range s.cells {
		if len(list) > 0 {
			c.cells[i] = append([]Entry(nil), list...)
		}
	}
	return c
}

// Cell exposes a copy of one cell's list, for tests and diagnostics.
func (s *Sketch) Cell(i int) []Entry {
	return append([]Entry(nil), s.cells[i]...)
}

// CheckInvariant verifies the staircase property of every cell list —
// ascending timestamps, strictly ascending ranks — and the consistency of
// the occupied-cell index: every populated cell is listed exactly once.
// It returns the first violation, or nil. Property tests call this after
// random operation sequences.
func (s *Sketch) CheckInvariant() error {
	for i, list := range s.cells {
		for j := 1; j < len(list); j++ {
			if list[j].At < list[j-1].At {
				return fmt.Errorf("vhll: cell %d: timestamps out of order at %d (%d < %d)", i, j, list[j].At, list[j-1].At)
			}
			if list[j].Rank <= list[j-1].Rank {
				return fmt.Errorf("vhll: cell %d: ranks not strictly ascending at %d (%d <= %d)", i, j, list[j].Rank, list[j-1].Rank)
			}
		}
	}
	seen := make(map[uint32]bool, len(s.occupied))
	for _, i := range s.occupied {
		if seen[i] {
			return fmt.Errorf("vhll: cell %d listed twice in occupied index", i)
		}
		seen[i] = true
	}
	for i, list := range s.cells {
		if len(list) > 0 && !seen[uint32(i)] {
			return fmt.Errorf("vhll: populated cell %d missing from occupied index", i)
		}
	}
	return nil
}
