//go:build !race

package vhll

// raceEnabled reports whether the race detector is compiled in; the
// allocation-count tests skip under it, since instrumentation allocates.
const raceEnabled = false
