// Package skim reimplements SKIM — Sketch-based Influence Maximization of
// Cohen, Delling, Pajor and Werneck (CIKM 2014) — the strongest static-
// graph competitor in the paper's evaluation (§6).
//
// SKIM works on the flattened static projection of the interaction network
// under the Independent Cascade model. It materializes ℓ live-edge
// instances (every edge survives independently with probability p), so a
// node's influence is (1/ℓ)·|{(v,i) : v reachable from u in instance i}|.
// Bottom-k rank sketches of those reachability sets are built by reverse
// searches from (node, instance) pairs in ascending rank order, pruned at
// nodes whose sketch is already full; the first node whose sketch reaches
// k entries is (with high probability) the node of maximum residual
// influence and is selected as the next seed. Selection triggers exact
// coverage: forward searches from the seed mark every reached pair
// covered, covered entries are evicted from all sketches through an
// inverted index, and the ascending-rank pair processing resumes for the
// residual problem. If the rank stream is exhausted before enough seeds
// are found, remaining seeds are chosen greedily by live sketch size.
//
// This is the algorithm the paper ran via the authors' binary; here it is
// rebuilt from scratch on the standard library so the whole comparison is
// self-contained.
package skim

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"ipin/internal/graph"
)

// Config parameterizes SKIM.
type Config struct {
	// K is the bottom-k sketch size; Cohen et al. default to 64.
	K int
	// Instances is ℓ, the number of live-edge instances (max 64 so edge
	// membership packs into one uint64 mask per edge).
	Instances int
	// P is the Independent Cascade edge survival probability.
	P float64
	// Seed seeds the deterministic RNG.
	Seed uint64
}

// DefaultConfig mirrors the parameters of Cohen et al.'s evaluation.
func DefaultConfig() Config {
	return Config{K: 64, Instances: 64, P: 0.5, Seed: 1}
}

// instanceGraph holds the ℓ sampled instances in CSR form, with one
// bitmask per edge recording the instances the edge survives in.
type instanceGraph struct {
	n         int
	instances int
	fwdStart  []int32
	fwdTo     []graph.NodeID
	fwdMask   []uint64
	revStart  []int32
	revTo     []graph.NodeID
	revMask   []uint64
}

func sampleInstances(s *graph.Static, cfg Config, rng *rand.Rand) *instanceGraph {
	n := s.NumNodes
	g := &instanceGraph{n: n, instances: cfg.Instances}
	m := s.NumEdges()
	g.fwdStart = make([]int32, n+1)
	g.fwdTo = make([]graph.NodeID, 0, m)
	g.fwdMask = make([]uint64, 0, m)
	revDeg := make([]int32, n+1)
	for u := 0; u < n; u++ {
		g.fwdStart[u] = int32(len(g.fwdTo))
		for _, v := range s.Out[u] {
			var mask uint64
			for i := 0; i < cfg.Instances; i++ {
				if cfg.P >= 1.0 || rng.Float64() < cfg.P {
					mask |= 1 << uint(i)
				}
			}
			g.fwdTo = append(g.fwdTo, v)
			g.fwdMask = append(g.fwdMask, mask)
			revDeg[v]++
		}
	}
	g.fwdStart[n] = int32(len(g.fwdTo))
	// Build the reverse CSR.
	g.revStart = make([]int32, n+1)
	var acc int32
	for v := 0; v <= n; v++ {
		g.revStart[v] = acc
		if v < n {
			acc += revDeg[v]
		}
	}
	g.revTo = make([]graph.NodeID, len(g.fwdTo))
	g.revMask = make([]uint64, len(g.fwdTo))
	fill := make([]int32, n)
	for u := 0; u < n; u++ {
		for ei := g.fwdStart[u]; ei < g.fwdStart[u+1]; ei++ {
			v := g.fwdTo[ei]
			pos := g.revStart[v] + fill[v]
			g.revTo[pos] = graph.NodeID(u)
			g.revMask[pos] = g.fwdMask[ei]
			fill[v]++
		}
	}
	return g
}

// TopK selects k seed nodes from the static projection s. It returns the
// seeds in selection order.
func TopK(s *graph.Static, k int, cfg Config) ([]graph.NodeID, error) {
	if cfg.K < 2 {
		return nil, fmt.Errorf("skim: sketch size K must be at least 2, got %d", cfg.K)
	}
	if cfg.Instances < 1 || cfg.Instances > 64 {
		return nil, fmt.Errorf("skim: instances must be in [1,64], got %d", cfg.Instances)
	}
	if cfg.P <= 0 || cfg.P > 1 {
		return nil, fmt.Errorf("skim: probability must be in (0,1], got %g", cfg.P)
	}
	n := s.NumNodes
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5e1d))
	g := sampleInstances(s, cfg, rng)
	st := newState(g, cfg, rng)
	return st.run(k), nil
}

// pairID packs (node, instance) as node*instances + instance.
type pairID int32

type state struct {
	g   *instanceGraph
	cfg Config

	// order is every (node, instance) pair sorted by ascending rank; pos
	// is the resume point of the global rank scan.
	order []pairID
	pos   int

	covered []bool // by pairID
	chosen  []bool // by node

	// sketches[u] holds live (not yet covered) pair ids in ascending rank
	// order; liveSize[u] counts them (entries are evicted eagerly).
	sketches [][]pairID
	liveSize []int

	// containing[p] lists the nodes whose sketch currently holds pair p.
	containing map[pairID][]graph.NodeID

	// visited epoch marking for searches.
	mark    []int32
	curMark int32

	queue []graph.NodeID
}

func newState(g *instanceGraph, cfg Config, rng *rand.Rand) *state {
	total := g.n * g.instances
	st := &state{
		g:          g,
		cfg:        cfg,
		order:      make([]pairID, total),
		covered:    make([]bool, total),
		chosen:     make([]bool, g.n),
		sketches:   make([][]pairID, g.n),
		liveSize:   make([]int, g.n),
		containing: make(map[pairID][]graph.NodeID),
		mark:       make([]int32, g.n),
	}
	ranks := make([]float64, total)
	for i := range st.order {
		st.order[i] = pairID(i)
		ranks[i] = rng.Float64()
	}
	sort.Slice(st.order, func(a, b int) bool { return ranks[st.order[a]] < ranks[st.order[b]] })
	return st
}

func (st *state) pairNode(p pairID) graph.NodeID { return graph.NodeID(int(p) / st.g.instances) }
func (st *state) pairInstance(p pairID) int      { return int(p) % st.g.instances }

// run drives selection until k seeds are chosen.
func (st *state) run(k int) []graph.NodeID {
	selected := make([]graph.NodeID, 0, k)
	for len(selected) < k {
		seed, ok := st.nextByRankScan()
		if !ok {
			// Rank stream exhausted: fall back to greedy residual
			// selection by live sketch size.
			seed, ok = st.largestLiveSketch()
			if !ok {
				// Coverage complete; fill deterministically by degree of
				// residual reach being zero — any unchosen node will do.
				seed, ok = st.anyUnchosen()
				if !ok {
					break
				}
			}
		}
		st.selectSeed(seed)
		selected = append(selected, seed)
	}
	return selected
}

// nextByRankScan advances the global ascending-rank scan until some node's
// sketch reaches K entries, and returns that node.
func (st *state) nextByRankScan() (graph.NodeID, bool) {
	for st.pos < len(st.order) {
		p := st.order[st.pos]
		st.pos++
		if st.covered[p] {
			continue
		}
		if full, ok := st.reverseSearch(p); ok {
			return full, true
		}
	}
	return 0, false
}

// reverseSearch runs the pruned reverse reachability search from pair p,
// appending p to the sketch of every reached node with spare capacity. It
// returns the first node whose sketch filled to K, if any.
func (st *state) reverseSearch(p pairID) (graph.NodeID, bool) {
	src := st.pairNode(p)
	inst := uint(st.pairInstance(p))
	bit := uint64(1) << inst
	st.curMark++
	st.queue = st.queue[:0]
	st.queue = append(st.queue, src)
	st.mark[src] = st.curMark
	var filled graph.NodeID = -1
	for qi := 0; qi < len(st.queue); qi++ {
		u := st.queue[qi]
		if !st.chosen[u] && st.liveSize[u] < st.cfg.K {
			st.sketches[u] = append(st.sketches[u], p)
			st.liveSize[u]++
			st.containing[p] = append(st.containing[p], u)
			if filled < 0 && st.liveSize[u] == st.cfg.K {
				filled = u
			}
		} else if !st.chosen[u] {
			// Saturated: prune — do not expand through u.
			continue
		}
		for ei := st.g.revStart[u]; ei < st.g.revStart[u+1]; ei++ {
			if st.g.revMask[ei]&bit == 0 {
				continue
			}
			w := st.g.revTo[ei]
			if st.mark[w] != st.curMark {
				st.mark[w] = st.curMark
				st.queue = append(st.queue, w)
			}
		}
	}
	if filled >= 0 {
		return filled, true
	}
	return 0, false
}

// selectSeed covers everything the seed reaches and evicts the covered
// pairs from all sketches.
func (st *state) selectSeed(seed graph.NodeID) {
	st.chosen[seed] = true
	st.sketches[seed] = nil
	st.liveSize[seed] = 0
	for inst := 0; inst < st.g.instances; inst++ {
		st.forwardCover(seed, inst)
	}
}

// forwardCover marks every pair (v, inst) with v forward-reachable from
// seed in instance inst as covered, and evicts those pairs from sketches.
func (st *state) forwardCover(seed graph.NodeID, inst int) {
	bit := uint64(1) << uint(inst)
	st.curMark++
	st.queue = st.queue[:0]
	st.queue = append(st.queue, seed)
	st.mark[seed] = st.curMark
	for qi := 0; qi < len(st.queue); qi++ {
		u := st.queue[qi]
		p := pairID(int(u)*st.g.instances + inst)
		if !st.covered[p] {
			st.covered[p] = true
			st.evict(p)
		}
		for ei := st.g.fwdStart[u]; ei < st.g.fwdStart[u+1]; ei++ {
			if st.g.fwdMask[ei]&bit == 0 {
				continue
			}
			v := st.g.fwdTo[ei]
			if st.mark[v] != st.curMark {
				st.mark[v] = st.curMark
				st.queue = append(st.queue, v)
			}
		}
	}
}

// evict removes the newly covered pair p from every sketch containing it.
func (st *state) evict(p pairID) {
	nodes := st.containing[p]
	if nodes == nil {
		return
	}
	delete(st.containing, p)
	for _, u := range nodes {
		if st.chosen[u] {
			continue
		}
		sk := st.sketches[u]
		for i, q := range sk {
			if q == p {
				st.sketches[u] = append(sk[:i], sk[i+1:]...)
				st.liveSize[u]--
				break
			}
		}
	}
}

// largestLiveSketch returns the unchosen node with the largest live sketch.
func (st *state) largestLiveSketch() (graph.NodeID, bool) {
	best := graph.NodeID(-1)
	bestSize := 0
	for u := 0; u < st.g.n; u++ {
		if !st.chosen[u] && st.liveSize[u] > bestSize {
			bestSize = st.liveSize[u]
			best = graph.NodeID(u)
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// anyUnchosen returns the smallest-ID unchosen node.
func (st *state) anyUnchosen() (graph.NodeID, bool) {
	for u := 0; u < st.g.n; u++ {
		if !st.chosen[u] {
			return graph.NodeID(u), true
		}
	}
	return 0, false
}
