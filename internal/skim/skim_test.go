package skim

import (
	"testing"

	"ipin/internal/graph"
)

// threeStars builds a static graph with clearly separated star sizes:
// 0 → 1..15 (reach 16), 20 → 21..28 (reach 9), 40 → 41..43 (reach 4),
// plus one isolated edge 50 → 51 (reach 2).
func threeStars() *graph.Static {
	l := graph.New(52)
	t := graph.Time(1)
	for v := 1; v <= 15; v++ {
		l.Add(0, graph.NodeID(v), t)
		t++
	}
	for v := 21; v <= 28; v++ {
		l.Add(20, graph.NodeID(v), t)
		t++
	}
	for v := 41; v <= 43; v++ {
		l.Add(40, graph.NodeID(v), t)
		t++
	}
	l.Add(50, 51, t)
	l.Sort()
	return graph.StaticFrom(l)
}

func TestConfigValidation(t *testing.T) {
	s := threeStars()
	if _, err := TopK(s, 1, Config{K: 1, Instances: 4, P: 0.5}); err == nil {
		t.Error("K=1 accepted")
	}
	if _, err := TopK(s, 1, Config{K: 8, Instances: 0, P: 0.5}); err == nil {
		t.Error("0 instances accepted")
	}
	if _, err := TopK(s, 1, Config{K: 8, Instances: 65, P: 0.5}); err == nil {
		t.Error("65 instances accepted")
	}
	if _, err := TopK(s, 1, Config{K: 8, Instances: 4, P: 0}); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := TopK(s, 1, Config{K: 8, Instances: 4, P: 1.5}); err == nil {
		t.Error("P>1 accepted")
	}
}

func TestTopKFindsStarCenters(t *testing.T) {
	// With P=1 reachability is deterministic: per instance node 0 covers
	// 16 pairs, node 20 covers 9, node 40 covers 4, node 50 covers 2,
	// everything else at most 2. The selection is sketch-based so the
	// ordering is only probabilistic, but at these margins and K=16 it is
	// reliable.
	seeds, err := TopK(threeStars(), 3, Config{K: 16, Instances: 32, P: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.NodeID{0, 20, 40}
	if len(seeds) != 3 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	for i := range want {
		if seeds[i] != want[i] {
			t.Fatalf("seeds = %v, want %v", seeds, want)
		}
	}
}

func TestTopKChainP1(t *testing.T) {
	// 0→1→2→3→4: node 0 reaches everything; it must be selected first.
	l := graph.New(5)
	for v := 0; v < 4; v++ {
		l.Add(graph.NodeID(v), graph.NodeID(v+1), graph.Time(v+1))
	}
	l.Sort()
	seeds, err := TopK(graph.StaticFrom(l), 1, Config{K: 3, Instances: 8, P: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seeds[0] != 0 {
		t.Fatalf("first seed = %d, want 0", seeds[0])
	}
}

func TestTopKDeterministicForSeed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Instances = 16
	cfg.K = 8
	a, err := TopK(threeStars(), 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TopK(threeStars(), 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: %v vs %v", a, b)
		}
	}
}

func TestTopKReturnsDistinctSeeds(t *testing.T) {
	cfg := Config{K: 4, Instances: 8, P: 0.5, Seed: 7}
	seeds, err := TopK(threeStars(), 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 10 {
		t.Fatalf("got %d seeds, want 10", len(seeds))
	}
	seen := map[graph.NodeID]bool{}
	for _, u := range seeds {
		if seen[u] {
			t.Fatalf("duplicate seed %d in %v", u, seeds)
		}
		seen[u] = true
	}
}

func TestTopKClampsToNodeCount(t *testing.T) {
	l := graph.New(3)
	l.Add(0, 1, 1)
	l.Add(1, 2, 2)
	l.Sort()
	seeds, err := TopK(graph.StaticFrom(l), 99, Config{K: 4, Instances: 4, P: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 3 {
		t.Fatalf("got %d seeds, want 3", len(seeds))
	}
}

func TestTopKSparseProbabilityStillFillsSeeds(t *testing.T) {
	// With a tiny edge probability most instances are empty: no sketch
	// ever fills, so selection exercises the largest-live-sketch and
	// any-unchosen fallbacks. It must still return k distinct seeds.
	seeds, err := TopK(threeStars(), 6, Config{K: 16, Instances: 16, P: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 6 {
		t.Fatalf("got %d seeds, want 6", len(seeds))
	}
	seen := map[graph.NodeID]bool{}
	for _, u := range seeds {
		if seen[u] {
			t.Fatalf("duplicate seed in %v", seeds)
		}
		seen[u] = true
	}
}

func TestTopKSingleInstance(t *testing.T) {
	seeds, err := TopK(threeStars(), 2, Config{K: 4, Instances: 1, P: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 2 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	if seeds[0] != 0 {
		t.Fatalf("first seed = %d, want star centre 0", seeds[0])
	}
}

func TestSampleInstancesP1KeepsAllEdges(t *testing.T) {
	s := threeStars()
	cfg := Config{K: 4, Instances: 8, P: 1, Seed: 1}
	g := sampleInstances(s, cfg, newTestRNG())
	fullMask := uint64(1)<<uint(cfg.Instances) - 1
	for _, m := range g.fwdMask {
		if m != fullMask {
			t.Fatalf("edge mask %b with P=1, want %b", m, fullMask)
		}
	}
	// Reverse CSR carries the same edge count.
	if len(g.revTo) != len(g.fwdTo) {
		t.Fatalf("reverse CSR has %d edges, forward %d", len(g.revTo), len(g.fwdTo))
	}
}
