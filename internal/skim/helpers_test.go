package skim

import "math/rand/v2"

// newTestRNG returns a fixed-seed RNG for white-box tests.
func newTestRNG() *rand.Rand {
	return rand.New(rand.NewPCG(99, 0x5e1d))
}
