package skim

import (
	"testing"

	"ipin/internal/graph"
)

// White-box tests of the SKIM state machinery.

func newTestState(s *graph.Static, cfg Config) *state {
	rng := newTestRNG()
	g := sampleInstances(s, cfg, rng)
	return newState(g, cfg, rng)
}

func TestPairCodec(t *testing.T) {
	s := threeStars()
	cfg := Config{K: 4, Instances: 8, P: 1, Seed: 1}
	st := newTestState(s, cfg)
	for node := 0; node < 5; node++ {
		for inst := 0; inst < cfg.Instances; inst++ {
			p := pairID(node*cfg.Instances + inst)
			if st.pairNode(p) != graph.NodeID(node) || st.pairInstance(p) != inst {
				t.Fatalf("pair codec broken for (%d,%d)", node, inst)
			}
		}
	}
}

func TestRankOrderIsPermutation(t *testing.T) {
	s := threeStars()
	st := newTestState(s, Config{K: 4, Instances: 4, P: 1, Seed: 1})
	seen := make([]bool, s.NumNodes*4)
	for _, p := range st.order {
		if seen[p] {
			t.Fatalf("pair %d listed twice", p)
		}
		seen[p] = true
	}
	for i, b := range seen {
		if !b {
			t.Fatalf("pair %d missing from order", i)
		}
	}
}

func TestEvictRemovesFromSketches(t *testing.T) {
	s := threeStars()
	st := newTestState(s, Config{K: 8, Instances: 4, P: 1, Seed: 1})
	// Drive the rank scan until the first seed would be selected.
	if _, ok := st.nextByRankScan(); !ok {
		t.Fatal("rank scan found no full sketch")
	}
	// Pick any pair held by some sketch and evict it.
	var victim pairID = -1
	var holder graph.NodeID
	for p, nodes := range st.containing {
		if len(nodes) > 0 {
			victim, holder = p, nodes[0]
			break
		}
	}
	if victim < 0 {
		t.Fatal("no pair in any sketch")
	}
	before := st.liveSize[holder]
	st.covered[victim] = true
	st.evict(victim)
	if st.liveSize[holder] != before-1 {
		t.Fatalf("liveSize %d, want %d", st.liveSize[holder], before-1)
	}
	for _, q := range st.sketches[holder] {
		if q == victim {
			t.Fatal("victim still in sketch")
		}
	}
	if _, ok := st.containing[victim]; ok {
		t.Fatal("containing index not cleaned")
	}
	// Re-evicting is a no-op.
	st.evict(victim)
}

func TestSelectSeedCoversReachablePairs(t *testing.T) {
	s := threeStars()
	cfg := Config{K: 4, Instances: 4, P: 1, Seed: 1}
	st := newTestState(s, cfg)
	st.selectSeed(0) // the big star's centre
	// With P=1, pairs (0,i) and (v,i) for v = 1..15 are covered in every
	// instance.
	for inst := 0; inst < cfg.Instances; inst++ {
		for node := 0; node <= 15; node++ {
			p := pairID(node*cfg.Instances + inst)
			if !st.covered[p] {
				t.Fatalf("pair (%d,%d) not covered by seed 0", node, inst)
			}
		}
		// Unreachable nodes stay uncovered.
		p := pairID(20*cfg.Instances + inst)
		if st.covered[p] {
			t.Fatalf("pair (20,%d) wrongly covered", inst)
		}
	}
	if !st.chosen[0] || st.liveSize[0] != 0 {
		t.Fatal("seed not marked chosen")
	}
}

func TestLargestLiveSketchAndFallbacks(t *testing.T) {
	s := threeStars()
	st := newTestState(s, Config{K: 64, Instances: 2, P: 1, Seed: 1})
	// With K=64 no sketch ever fills (52 nodes × 2 instances = 104 pairs,
	// but per-node reach is at most 32 pairs), so the scan exhausts.
	if _, ok := st.nextByRankScan(); ok {
		t.Fatal("scan unexpectedly found a full sketch")
	}
	// The largest live sketch belongs to the big star's centre.
	best, ok := st.largestLiveSketch()
	if !ok || best != 0 {
		t.Fatalf("largestLiveSketch = %d,%v, want 0,true", best, ok)
	}
	// After choosing everything, anyUnchosen drains deterministically.
	for i := 0; i < s.NumNodes; i++ {
		u, ok := st.anyUnchosen()
		if !ok {
			t.Fatalf("anyUnchosen exhausted at %d", i)
		}
		st.chosen[u] = true
	}
	if _, ok := st.anyUnchosen(); ok {
		t.Fatal("anyUnchosen returned after all chosen")
	}
}
