package skim

import (
	"math/rand"
	"testing"

	"ipin/internal/graph"
)

var benchStatic = func() *graph.Static {
	rng := rand.New(rand.NewSource(4))
	l := graph.New(2000)
	for i := 0; i < 20000; i++ {
		l.Add(graph.NodeID(rng.Intn(2000)), graph.NodeID(rng.Intn(2000)), graph.Time(i+1))
	}
	l.Sort()
	return graph.StaticFrom(l)
}()

func BenchmarkTopK10(b *testing.B) {
	cfg := Config{K: 32, Instances: 32, P: 0.5, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TopK(benchStatic, 10, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
