package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ipin/internal/core"
	"ipin/internal/graph"
	"ipin/internal/serve"
)

// testLog builds a deterministic interaction stream with strictly
// increasing timestamps.
func testLog(rng *rand.Rand, n, m int) []graph.Interaction {
	edges := make([]graph.Interaction, m)
	at := graph.Time(0)
	for i := range edges {
		at += graph.Time(1 + rng.Int63n(3))
		edges[i] = graph.Interaction{
			Src: graph.NodeID(rng.Intn(n)),
			Dst: graph.NodeID(rng.Intn(n)),
			At:  at,
		}
	}
	return edges
}

// offlineBytes runs the offline one-pass scan over the edges and
// returns the canonical IRX1 encoding.
func offlineBytes(t *testing.T, edges []graph.Interaction, numNodes int, omega int64, precision int) []byte {
	t.Helper()
	n := numNodes
	for _, e := range edges {
		if m := int(max(e.Src, e.Dst)) + 1; m > n {
			n = m
		}
	}
	l := &graph.Log{NumNodes: n, Interactions: edges}
	s, err := core.ComputeApprox(l, omega, precision)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func summaryBytes(t *testing.T, s *core.ApproxSummaries) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIngestCheckpointIdentity: push an ordered stream, force a
// checkpoint, and the published summaries — and the checkpoint.irx file
// — are byte-identical to the offline ComputeApprox over the same
// edges.
func TestIngestCheckpointIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	edges := testLog(rng, 40, 700)
	dir := t.TempDir()
	var published *core.ApproxSummaries
	in, err := New(Config{
		Dir:             dir,
		Omega:           25,
		Precision:       4,
		ChunkEdges:      64,
		CheckpointEvery: -1, // forced checkpoints only: deterministic
		SyncEvery:       -1,
		Publish:         func(s *core.ApproxSummaries) { published = s },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := in.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := in.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if published == nil {
		t.Fatal("nothing published")
	}
	want := offlineBytes(t, edges, 0, 25, 4)
	if !bytes.Equal(summaryBytes(t, published), want) {
		t.Fatal("published summaries differ from offline ComputeApprox")
	}
	ckpt, err := os.ReadFile(filepath.Join(dir, CheckpointName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckpt, want) {
		t.Fatal("checkpoint.irx differs from offline ComputeApprox")
	}
	var meta struct {
		Edges int   `json:"edges"`
		Last  int64 `json:"last_at"`
	}
	raw, err := os.ReadFile(filepath.Join(dir, CheckpointMetaName))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Edges != len(edges) || meta.Last != int64(edges[len(edges)-1].At) {
		t.Fatalf("meta = %+v, want %d edges last %d", meta, len(edges), edges[len(edges)-1].At)
	}
	st := in.Stats()
	if st.Emitted != int64(len(edges)) || st.ReorderDrops != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestIngestOutOfOrderWithinSlack: a skewed stream within the slack
// produces the same summaries as the sorted stream (no drops).
func TestIngestOutOfOrderWithinSlack(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	edges := testLog(rng, 30, 500)
	const slackPositions = 16
	// Block-shuffle arrival order; timestamps stay attached to edges.
	arrivals := append([]graph.Interaction(nil), edges...)
	for lo := 0; lo < len(arrivals); lo += slackPositions {
		hi := min(lo+slackPositions, len(arrivals))
		rng.Shuffle(hi-lo, func(i, j int) {
			arrivals[lo+i], arrivals[lo+j] = arrivals[lo+j], arrivals[lo+i]
		})
	}
	// Positions displace < 16; each position is <= 3 ticks, so 64 ticks
	// of slack safely covers the worst displacement.
	dir := t.TempDir()
	var published *core.ApproxSummaries
	in, err := New(Config{
		Dir:             dir,
		Omega:           20,
		Precision:       4,
		Slack:           64,
		ChunkEdges:      100,
		CheckpointEvery: -1,
		IdleFlush:       -1, // only Close flushes: no mid-stream watermark jump
		SyncEvery:       -1,
		Publish:         func(s *core.ApproxSummaries) { published = s },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range arrivals {
		if err := in.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	if st.ReorderDrops != 0 {
		t.Fatalf("%d drops within slack", st.ReorderDrops)
	}
	if st.Emitted != int64(len(edges)) {
		t.Fatalf("emitted %d of %d", st.Emitted, len(edges))
	}
	want := offlineBytes(t, edges, 0, 20, 4)
	if !bytes.Equal(summaryBytes(t, published), want) {
		t.Fatal("skewed-arrival summaries differ from sorted-stream scan")
	}
}

// TestIngestServeRoundTrip is the end-to-end acceptance path: edges go
// in through the HTTP source, a checkpoint publishes into a live
// serve.Server, and /spread answers match the offline oracle on the
// same prefix byte for byte.
func TestIngestServeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	edges := testLog(rng, 25, 400)
	srv := serve.New(serve.Config{CacheSize: 64})
	dir := t.TempDir()
	in, err := New(Config{
		Dir:             dir,
		Omega:           30,
		Precision:       5,
		ChunkEdges:      64,
		CheckpointEvery: -1,
		SyncEvery:       -1,
		Publish:         srv.LoadApprox,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Feed through the HTTP intake in two bursts, line format on the wire.
	intake := httptest.NewServer(in.Handler())
	defer intake.Close()
	var body strings.Builder
	for _, e := range edges {
		fmt.Fprintf(&body, "%d %d %d\n", e.Src, e.Dst, e.At)
	}
	resp, err := intake.Client().Post(intake.URL, "text/plain", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	var ack struct {
		Accepted int64 `json:"accepted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ack.Accepted != int64(len(edges)) {
		t.Fatalf("accepted %d of %d", ack.Accepted, len(edges))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := in.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.WaitGeneration(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// Query through the real HTTP surface.
	query := httptest.NewServer(srv.Handler())
	defer query.Close()
	offline, err := core.ComputeApprox(&graph.Log{NumNodes: 25, Interactions: edges}, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, seeds := range [][]graph.NodeID{{0}, {1, 2, 3}, {0, 5, 10, 15, 20}} {
		parts := make([]string, len(seeds))
		for i, u := range seeds {
			parts[i] = fmt.Sprint(u)
		}
		resp, err := query.Client().Get(query.URL + "/spread?seeds=" + strings.Join(parts, ","))
		if err != nil {
			t.Fatal(err)
		}
		var got struct {
			Spread float64 `json:"spread"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		want := offline.SpreadEstimate(seeds)
		if got.Spread != want {
			t.Fatalf("spread(%v) = %v, want %v", seeds, got.Spread, want)
		}
	}
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestIngestTimerCheckpoint: with a short interval and no forced
// checkpoints, streamed edges become queryable on their own within a
// couple of intervals.
func TestIngestTimerCheckpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	edges := testLog(rng, 20, 300)
	srv := serve.New(serve.Config{})
	in, err := New(Config{
		Dir:             t.TempDir(),
		Omega:           15,
		Precision:       4,
		CheckpointEvery: 50 * time.Millisecond,
		IdleFlush:       10 * time.Millisecond,
		SyncEvery:       -1,
		Publish:         srv.LoadApprox,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := in.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.WaitGeneration(ctx, 1); err != nil {
		t.Fatalf("no timer checkpoint arrived: %v", err)
	}
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if in.Stats().Checkpoints < 1 {
		t.Fatal("no checkpoints counted")
	}
}

// TestIngestGrowsNodes: the node range follows the IDs the stream
// introduces, starting from zero configured nodes.
func TestIngestGrowsNodes(t *testing.T) {
	var published *core.ApproxSummaries
	in, err := New(Config{
		Dir:             t.TempDir(),
		Omega:           10,
		Precision:       4,
		CheckpointEvery: -1,
		SyncEvery:       -1,
		Publish:         func(s *core.ApproxSummaries) { published = s },
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := []graph.Interaction{{Src: 0, Dst: 7, At: 1}, {Src: 7, Dst: 3, At: 2}, {Src: 3, Dst: 12, At: 4}}
	for _, e := range stream {
		if err := in.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if published == nil || published.NumNodes() != 13 {
		t.Fatalf("published over %v nodes, want 13", published.NumNodes())
	}
	if !bytes.Equal(summaryBytes(t, published), offlineBytes(t, stream, 0, 10, 4)) {
		t.Fatal("grown-range summaries differ from offline scan")
	}
}

// TestPushAfterClose: Push fails cleanly once Close has begun.
func TestPushAfterClose(t *testing.T) {
	in, err := New(Config{Dir: t.TempDir(), Omega: 5, SyncEvery: -1, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := in.Push(graph.Interaction{Src: 0, Dst: 1, At: 1}); err == nil {
		t.Fatal("Push succeeded after Close")
	}
}

// TestIngestProfiles: with ProfileWindow set, a RUNNING ingester answers
// Hot from the checkpoint-published top-k snapshot — the regression this
// pins is Hot silently returning nil for the whole life of the stream —
// and after Close it ranks the exact current profiles.
func TestIngestProfiles(t *testing.T) {
	in, err := New(Config{
		Dir:             t.TempDir(),
		Omega:           100,
		ProfileWindow:   100,
		TopK:            4,
		CheckpointEvery: -1,
		SyncEvery:       -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// No checkpoint has published a view yet.
	if in.Hot(1) != nil {
		t.Fatal("Hot answered before the first checkpoint")
	}
	// Node 2 talks to four distinct targets, node 0 to one.
	stream := []graph.Interaction{
		{Src: 2, Dst: 3, At: 1}, {Src: 2, Dst: 4, At: 2}, {Src: 0, Dst: 1, At: 3},
		{Src: 2, Dst: 5, At: 4}, {Src: 2, Dst: 6, At: 5},
	}
	for _, e := range stream {
		if err := in.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	// Still running: Hot answers from the compactor's snapshot.
	if hot := in.Hot(2); len(hot) != 2 || hot[0] != 2 {
		t.Fatalf("live Hot(2) = %v, want node 2 first", hot)
	}
	view := in.TopK()
	if view == nil {
		t.Fatal("TopK view missing after checkpoint")
	}
	if view.CoveredEdges != int64(len(stream)) || view.LastAt != 5 {
		t.Fatalf("TopK provenance = %d edges through %d, want %d through 5",
			view.CoveredEdges, view.LastAt, len(stream))
	}
	if len(view.Entries) != 2 || view.Entries[0].Node != 2 || view.Entries[0].Score <= view.Entries[1].Score {
		t.Fatalf("TopK entries = %+v, want node 2 ranked first", view.Entries)
	}
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
	hot := in.Hot(2)
	if len(hot) != 2 || hot[0] != 2 {
		t.Fatalf("Hot(2) = %v, want node 2 first", hot)
	}
}
