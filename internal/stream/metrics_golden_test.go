package stream

import (
	"context"
	"strings"
	"testing"
	"time"

	"ipin/internal/graph"
	"ipin/internal/obs"
	"ipin/internal/trace"
)

// typeLines extracts the sorted "# TYPE name kind" declarations from a
// registry's exposition — the stable contract a scrape config binds to.
func typeLines(t *testing.T, reg *obs.Registry) []string {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var types []string
	for _, line := range strings.Split(b.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			types = append(types, rest)
		}
	}
	return types
}

// The golden exposition test pins the full set of metric families an
// instrumented ingester (tracer and journal included) exposes. A rename,
// a series registered but never exported, or one exported by accident
// shows up here as a diff against the pinned list.
func TestMetricsGoldenExposition(t *testing.T) {
	reg := obs.NewRegistry()
	tr := trace.New(trace.Config{
		SampleEvery: 1,
		SLO:         trace.SLOConfig{Objective: time.Minute},
		Registry:    reg,
	})
	jr := trace.NewJournal(trace.JournalConfig{Registry: reg})
	in, err := New(Config{
		Dir: t.TempDir(), Omega: 25, Precision: 4, NumNodes: 16,
		ChunkEdges: 32, CheckpointEvery: -1, IdleFlush: 5 * time.Millisecond,
		Slack: 4, Retain: 50, ProfileWindow: 25, TopK: 5,
		Registry: reg, Tracer: tr, Journal: jr,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A workload touching every update path: paired timestamps force
	// de-tie bumps, the straggler arrives past the slack and is dropped,
	// the forced mid-run checkpoint makes the first batch's sidecars
	// durable so the second batch's checkpoint can retire them past the
	// 50-tick retention horizon (publishing a top-k view both times),
	// and Close seals, folds, and publishes the final checkpoint.
	const m = 200
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < m; i++ {
		e := graph.Interaction{Src: graph.NodeID(i % 16), Dst: graph.NodeID((i + 1) % 16), At: graph.Time(1 + i/2)}
		if err := in.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Push(graph.Interaction{Src: 0, Dst: 1, At: 1}); err != nil {
		t.Fatal(err)
	}
	if err := in.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		e := graph.Interaction{Src: graph.NodeID(i % 16), Dst: graph.NodeID((i + 1) % 16), At: graph.Time(101 + i/2)}
		if err := in.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}

	want := []string{
		"stream_checkpoint_age_seconds gauge",
		"stream_checkpoint_edges gauge",
		"stream_checkpoint_seconds histogram",
		"stream_checkpoints_skipped_total counter",
		"stream_checkpoints_total counter",
		"stream_chunk_file_bytes_total counter",
		"stream_chunk_files_total counter",
		"stream_chunk_retired_bytes_total counter",
		"stream_chunks_retired_total counter",
		"stream_chunks_sealed_total counter",
		"stream_detie_bumps_total counter",
		"stream_dir_syncs_total counter",
		"stream_edges_accepted_total counter",
		"stream_edges_emitted_total counter",
		"stream_parse_errors_total counter",
		"stream_recovered_chunk_edges gauge",
		"stream_recovered_wal_edges gauge",
		"stream_reorder_depth gauge",
		"stream_reorder_drops_total counter",
		"stream_sketch_bytes gauge",
		"stream_topk_refreshes_total counter",
		"stream_topk_size gauge",
		"stream_wal_bytes_total counter",
		"stream_wal_deleted_bytes_total counter",
		"stream_wal_deleted_segments_total counter",
		"stream_wal_fsync_seconds histogram",
		"stream_wal_records_total counter",
		"stream_wal_segments_total counter",
		"stream_wal_truncated_bytes_total counter",
		"stream_watermark_lag_ticks gauge",
		"trace_e2e_seconds histogram",
		"trace_journal_events_total counter",
		"trace_records_cancelled_total counter",
		"trace_records_completed_total counter",
		"trace_records_evicted_total counter",
		"trace_records_inflight gauge",
		"trace_records_lost_total counter",
		"trace_records_sampled_total counter",
		"trace_slo_attainment_ppm gauge",
		"trace_slo_breaches_total counter",
		"trace_slo_budget_remaining_ppm gauge",
		"trace_slo_burn_rate_ppm gauge",
		"trace_slo_objective_ms gauge",
		"trace_slo_observed_total counter",
		"trace_slo_target_ppm gauge",
		"trace_stage_seconds histogram",
	}
	got := typeLines(t, reg)
	if len(got) != len(want) {
		t.Errorf("exposition has %d families, golden list has %d", len(got), len(want))
	}
	for i := 0; i < len(got) || i < len(want); i++ {
		switch {
		case i >= len(got):
			t.Errorf("missing family %q", want[i])
		case i >= len(want):
			t.Errorf("unexpected family %q", got[i])
		case got[i] != want[i]:
			t.Errorf("family %d = %q, want %q", i, got[i], want[i])
		}
	}

	// Every family the workload exercised must actually move — a series
	// that stayed at zero here is exported but never updated.
	snap := reg.Snapshot()
	for _, name := range []string{
		MetricEdgesAccepted, MetricEdgesEmitted, MetricReorderDrops,
		MetricDetieBumps, MetricWALRecords, MetricWALBytes, MetricWALSegments,
		MetricChunksSealed, MetricCheckpoints, MetricCheckpointEdge,
		MetricChunkFiles, MetricChunkFileBytes, MetricDirSyncs,
		MetricChunksRetired, MetricChunkRetiredBytes,
		MetricSketchBytes, MetricTopkRefreshes, MetricTopkSize,
		trace.MetricSampled, trace.MetricCompleted, trace.MetricCancelled,
		trace.MetricSLOOK, trace.MetricSLOAttain,
		trace.MetricJournalEvt + `{type="segment_rotate"}`,
		trace.MetricJournalEvt + `{type="chunk_seal"}`,
		trace.MetricJournalEvt + `{type="chunk_retire"}`,
		trace.MetricJournalEvt + `{type="checkpoint"}`,
	} {
		if v, ok := snap[name].(int64); !ok || v <= 0 {
			t.Errorf("%s = %v, want > 0", name, snap[name])
		}
	}
	for _, name := range []string{
		MetricWALFsync, MetricCheckpointDur,
		trace.MetricEndToEnd,
		trace.MetricStage + `{stage="serve_visible"}`,
	} {
		if h, ok := snap[name].(obs.HistogramSnapshot); !ok || h.Count == 0 {
			t.Errorf("%s never observed (%v)", name, snap[name])
		}
	}
}
