package stream

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestFutureEpochErrorOnStaleOpen: a writer asserting an epoch older
// than what the directory's WAL headers carry must be refused with the
// typed *FutureEpochError — never silently truncated or appended over —
// while adopting (Epoch 0) or asserting the current/newer epoch works.
func TestFutureEpochErrorOnStaleOpen(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rng := rand.New(rand.NewSource(61))
	edges := testLog(rng, 30, 200)
	dir := t.TempDir()
	cfg := Config{Dir: dir, Omega: 20, Precision: 4, ChunkEdges: 50, CheckpointEvery: -1}

	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := in.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.AdvanceEpoch(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// A stale writer asserting epoch 1 against an epoch-2 directory.
	stale := cfg
	stale.Epoch = 1
	if _, err := New(stale); err == nil {
		t.Fatal("stale-epoch open succeeded; want *FutureEpochError")
	} else {
		var fe *FutureEpochError
		if !errors.As(err, &fe) {
			t.Fatalf("stale-epoch open failed with %T (%v); want *FutureEpochError", err, err)
		}
		if fe.Epoch != 2 || fe.Asserted != 1 || fe.Segment == "" {
			t.Fatalf("FutureEpochError fields: %+v", fe)
		}
	}

	// Epoch 0 adopts the directory's epoch; no data is lost.
	in, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Epoch(); got != 2 {
		t.Fatalf("adopted epoch %d, want 2", got)
	}
	if got := in.Stats().Emitted; got != int64(len(edges)) {
		t.Fatalf("recovered %d edges, want %d", got, len(edges))
	}
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Asserting an epoch ahead of the directory rotates it forward.
	ahead := cfg
	ahead.Epoch = 5
	in, err = New(ahead)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Epoch(); got != 5 {
		t.Fatalf("asserted-ahead epoch %d, want 5", got)
	}
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestAdvanceEpochPreservesFold: an epoch advance mid-stream is a pure
// fencing event — the fold over edges before and after it recovers
// byte-identically to the offline scan, and the epoch survives both
// recovery and the checkpoint metadata.
func TestAdvanceEpochPreservesFold(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rng := rand.New(rand.NewSource(62))
	edges := testLog(rng, 30, 600)
	dir := t.TempDir()
	cfg := Config{Dir: dir, Omega: 20, Precision: 4, ChunkEdges: 50, CheckpointEvery: -1}

	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges[:300] {
		if err := in.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.AdvanceEpoch(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := in.AdvanceEpoch(ctx, 1); err == nil {
		t.Fatal("non-advancing epoch accepted")
	}
	for _, e := range edges[300:] {
		if err := in.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}

	published, in2 := recoverPublished(t, dir, cfg)
	defer in2.Close(ctx)
	if got := in2.Epoch(); got != 1 {
		t.Fatalf("recovered epoch %d, want 1", got)
	}
	if !bytes.Equal(summaryBytes(t, published), offlineBytes(t, edges, 0, 20, 4)) {
		t.Fatal("fold across an epoch advance differs from offline scan")
	}
	info, ok := ReadCheckpointInfo(dir)
	if !ok {
		t.Fatal("no checkpoint meta after close")
	}
	if info.Epoch != 1 {
		t.Fatalf("checkpoint meta epoch %d, want 1", info.Epoch)
	}
}
