package stream

import (
	"bytes"
	"context"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"ipin/internal/core"
	"ipin/internal/graph"
)

// Crash/recovery determinism: kill the ingester mid-stream (simulated by
// abandoning it without Close and corrupting or truncating the WAL tail
// the way a power cut would), reopen the directory, and the recovered
// sketch state must be byte-identical to an uninterrupted run over the
// same surviving prefix — and to the offline ComputeApprox over it.

// ingestAll runs a fresh ingester over edges and returns the final
// published summaries.
func ingestAll(t *testing.T, dir string, edges []graph.Interaction, cfg Config) *core.ApproxSummaries {
	t.Helper()
	var published *core.ApproxSummaries
	cfg.Dir = dir
	cfg.Publish = func(s *core.ApproxSummaries) { published = s }
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := in.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
	return published
}

// segFiles lists the WAL segments in dir, sorted.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	return names
}

// wipeDurable deletes the chunk sidecars and checkpoint files from dir,
// leaving only the WAL — the state a crash leaves behind when it lands
// before the first compactor pass. WAL-tearing tests need this: after a
// clean Close every edge is durable in sidecars, so a torn WAL tail
// would otherwise lose nothing.
func wipeDurable(t *testing.T, dir string) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, chunkFilePattern))
	if err != nil {
		t.Fatal(err)
	}
	names = append(names, filepath.Join(dir, CheckpointName), filepath.Join(dir, CheckpointMetaName))
	for _, name := range names {
		if err := os.Remove(name); err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
	}
}

// recoverPublished reopens dir and returns the recovery checkpoint that
// New publishes from the replayed WAL.
func recoverPublished(t *testing.T, dir string, cfg Config) (*core.ApproxSummaries, *Ingester) {
	t.Helper()
	var published *core.ApproxSummaries
	cfg.Dir = dir
	cfg.Publish = func(s *core.ApproxSummaries) { published = s }
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return published, in
}

// TestRecoverySegmentBoundary: crash exactly at a segment boundary (all
// segments intact, process simply gone). Replay recovers everything.
func TestRecoverySegmentBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	edges := testLog(rng, 30, 600)
	cfg := Config{Omega: 20, Precision: 4, ChunkEdges: 50, CheckpointEvery: -1, SegmentBytes: 512}
	dir := t.TempDir()
	// Run to completion; Close syncs every segment. "Crash" = no process
	// state survives, only the directory.
	ingestAll(t, dir, edges, cfg)
	recovered, in2 := recoverPublished(t, dir, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer in2.Close(ctx)
	if recovered == nil {
		t.Fatal("no recovery checkpoint published")
	}
	want := offlineBytes(t, edges, 0, 20, 4)
	if !bytes.Equal(summaryBytes(t, recovered), want) {
		t.Fatal("recovered summaries differ from offline scan over the full log")
	}
}

// TestRecoveryMidBatchTorn: crash mid-record — the final segment ends in
// a half-written frame. Replay truncates the tear and the recovered
// state matches an uninterrupted run over the surviving prefix, which
// matches the offline scan.
func TestRecoveryMidBatchTorn(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	edges := testLog(rng, 25, 500)
	cfg := Config{Omega: 15, Precision: 4, ChunkEdges: 40, CheckpointEvery: -1, SegmentBytes: 1 << 20}
	dir := t.TempDir()
	ingestAll(t, dir, edges, cfg)
	wipeDurable(t, dir)
	segs := segFiles(t, dir)
	final := segs[len(segs)-1]
	data, err := os.ReadFile(final)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the tail mid-record: cut 60% of the way into the file, almost
	// certainly splitting a frame.
	cut := len(data) * 6 / 10
	if cut < len(walMagic) {
		cut = len(walMagic)
	}
	if err := os.WriteFile(final, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	// First recovery: replay the torn log, note what survived.
	recovered, in2 := recoverPublished(t, dir, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if recovered == nil {
		t.Fatal("no recovery checkpoint published")
	}
	var survived []graph.Interaction
	in2.inc.View().EachEdge(func(e graph.Interaction) { survived = append(survived, e) })
	if len(survived) == 0 || len(survived) >= len(edges) {
		t.Fatalf("torn replay survived %d of %d edges", len(survived), len(edges))
	}
	// The surviving sequence must be a strict prefix of the emitted one.
	for i, e := range survived {
		if e != edges[i] {
			t.Fatalf("survivor %d = %+v, want %+v", i, e, edges[i])
		}
	}
	if err := in2.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Recovered state == offline scan over the prefix == a fresh
	// uninterrupted ingester fed exactly the prefix.
	want := offlineBytes(t, survived, 0, 15, 4)
	if !bytes.Equal(summaryBytes(t, recovered), want) {
		t.Fatal("recovered summaries differ from offline scan over surviving prefix")
	}
	fresh := ingestAll(t, t.TempDir(), survived, cfg)
	if !bytes.Equal(summaryBytes(t, fresh), want) {
		t.Fatal("uninterrupted run over the prefix differs")
	}
	// And a third recovery of the (now truncated+resealed) log is stable.
	again, in3 := recoverPublished(t, dir, cfg)
	defer in3.Close(ctx)
	if !bytes.Equal(summaryBytes(t, again), want) {
		t.Fatal("second recovery differs from first")
	}
}

// TestRecoveryResumeAppending: recover from a torn log, stream more
// edges, and the final state matches the offline scan over prefix +
// continuation — replay and live intake compose seamlessly.
func TestRecoveryResumeAppending(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	edges := testLog(rng, 20, 400)
	half := len(edges) / 2
	cfg := Config{Omega: 25, Precision: 4, ChunkEdges: 30, CheckpointEvery: -1}
	dir := t.TempDir()
	ingestAll(t, dir, edges[:half], cfg)
	wipeDurable(t, dir)
	// Tear a few bytes off the final segment: lose the last record(s).
	segs := segFiles(t, dir)
	final := segs[len(segs)-1]
	st, err := os.Stat(final)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(final, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	var published *core.ApproxSummaries
	cfg.Dir = dir
	cfg.Publish = func(s *core.ApproxSummaries) { published = s }
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var prefix []graph.Interaction
	in.inc.View().EachEdge(func(e graph.Interaction) { prefix = append(prefix, e) })
	// Continue the stream from after the surviving prefix.
	for _, e := range edges[half:] {
		if err := in.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
	full := append(append([]graph.Interaction(nil), prefix...), edges[half:]...)
	if !bytes.Equal(summaryBytes(t, published), offlineBytes(t, full, 0, 25, 4)) {
		t.Fatal("resume-after-recovery state differs from offline scan")
	}
}

// TestRecoveryDropsReplayedStragglers: after recovery, an arrival at or
// below the recovered tail timestamp is already covered by replayed
// history and must drop rather than double-count.
func TestRecoveryDropsReplayedStragglers(t *testing.T) {
	cfg := Config{Omega: 10, Precision: 4, CheckpointEvery: -1}
	dir := t.TempDir()
	seedEdges := []graph.Interaction{{Src: 0, Dst: 1, At: 10}, {Src: 1, Dst: 2, At: 20}}
	ingestAll(t, dir, seedEdges, cfg)
	_, in := recoverPublished(t, dir, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// A straggler from before the recovered tail must not re-enter.
	if err := in.Push(graph.Interaction{Src: 2, Dst: 0, At: 15}); err != nil {
		t.Fatal(err)
	}
	if err := in.Push(graph.Interaction{Src: 2, Dst: 0, At: 21}); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	if st.ReorderDrops != 1 {
		t.Fatalf("drops = %d, want 1 (the pre-tail straggler)", st.ReorderDrops)
	}
	if st.Emitted != 3 {
		t.Fatalf("emitted = %d, want 3", st.Emitted)
	}
}

// TestRecoveryCorruptCRC: a bit flip inside a record payload of the
// final segment truncates from that record on (CRC catches it), and the
// prefix before the flip survives.
func TestRecoveryCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, WALConfig{SyncEvery: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := w.Append([]graph.Interaction{{Src: 0, Dst: 1, At: graph.Time(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := segFiles(t, dir)[0]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Find the 6th record's payload and flip a bit: frame-walk from the
	// header like replay does.
	off := len(walMagic)
	for i := 0; i < 5; i++ {
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		off += walFrameBytes + plen
	}
	data[off+walFrameBytes] ^= 0x01
	// Sanity: the flip must actually break the stored CRC.
	plen := int(binary.LittleEndian.Uint32(data[off:]))
	if crc32.Checksum(data[off+walFrameBytes:off+walFrameBytes+plen], walCRC) == binary.LittleEndian.Uint32(data[off+4:]) {
		t.Fatal("bit flip did not change the checksum")
	}
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, got, err := OpenWAL(dir, WALConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("recovered %d edges, want the 5 before the flip", len(got))
	}
}
