package stream

import (
	"math/rand"
	"sort"
	"testing"

	"ipin/internal/graph"
)

func drainAll(r *reorder, arrivals []graph.Interaction) (out []graph.Interaction, dropped int) {
	for _, e := range arrivals {
		if !r.offer(e, nil, &out) {
			dropped++
		}
	}
	r.flush(&out)
	return out, dropped
}

// TestReorderSortsWithinSlack: arrivals shuffled within a displacement
// bound smaller than the slack come out fully sorted, nothing dropped.
func TestReorderSortsWithinSlack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		m := 200 + rng.Intn(200)
		edges := make([]graph.Interaction, m)
		for i := range edges {
			edges[i] = graph.Interaction{Src: 0, Dst: 1, At: graph.Time(i + 1)}
		}
		// Block shuffle: permuting within k-sized blocks bounds every
		// element's lateness below k ticks, so slack k loses nothing.
		k := 1 + rng.Intn(20)
		shuffled := append([]graph.Interaction(nil), edges...)
		for lo := 0; lo < len(shuffled); lo += k {
			hi := min(lo+k, len(shuffled))
			rng.Shuffle(hi-lo, func(i, j int) {
				shuffled[lo+i], shuffled[lo+j] = shuffled[lo+j], shuffled[lo+i]
			})
		}
		r := newReorder(int64(k), nil, nil)
		out, dropped := drainAll(r, shuffled)
		if dropped != 0 || r.drops != 0 {
			t.Fatalf("trial %d: dropped %d within slack", trial, dropped)
		}
		if len(out) != m {
			t.Fatalf("trial %d: emitted %d of %d", trial, len(out), m)
		}
		if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i].At < out[j].At }) {
			t.Fatalf("trial %d: output not sorted", trial)
		}
		// Distinct inputs within slack: no de-tie bumps, so the multiset of
		// timestamps is preserved exactly.
		for i, e := range out {
			if e.At != graph.Time(i+1) {
				t.Fatalf("trial %d: out[%d].At = %d, want %d", trial, i, e.At, i+1)
			}
		}
	}
}

// TestReorderDropsBeyondSlack: an edge arriving further behind the max
// seen than the slack is dropped and everything else still sequences.
func TestReorderDropsBeyondSlack(t *testing.T) {
	r := newReorder(2, nil, nil)
	var out []graph.Interaction
	for _, at := range []graph.Time{10, 11, 12, 13} {
		if !r.offer(graph.Interaction{Src: 0, Dst: 1, At: at}, nil, &out) {
			t.Fatalf("in-order edge at %d dropped", at)
		}
	}
	// Watermark is 13-2 = 11; an arrival at 5 is behind it.
	if r.offer(graph.Interaction{Src: 0, Dst: 1, At: 5}, nil, &out) {
		t.Fatal("stale edge accepted")
	}
	if r.drops != 1 {
		t.Fatalf("drops = %d, want 1", r.drops)
	}
	r.flush(&out)
	if len(out) != 4 {
		t.Fatalf("emitted %d, want 4", len(out))
	}
}

// TestReorderDetie: simultaneous arrivals are bumped apart in arrival
// order, mirroring graph.Log.Detie.
func TestReorderDetie(t *testing.T) {
	r := newReorder(0, nil, nil)
	var out []graph.Interaction
	r.offer(graph.Interaction{Src: 0, Dst: 1, At: 7}, nil, &out)
	r.offer(graph.Interaction{Src: 1, Dst: 2, At: 7}, nil, &out)
	r.offer(graph.Interaction{Src: 2, Dst: 3, At: 7}, nil, &out)
	r.flush(&out)
	if len(out) != 3 {
		t.Fatalf("emitted %d, want 3", len(out))
	}
	want := []graph.Time{7, 8, 9}
	for i, e := range out {
		if e.At != want[i] {
			t.Fatalf("out[%d].At = %d, want %d", i, e.At, want[i])
		}
	}
	if out[0].Src != 0 || out[1].Src != 1 || out[2].Src != 2 {
		t.Fatal("tie broken out of arrival order")
	}
	if r.bumps != 2 {
		t.Fatalf("bumps = %d, want 2", r.bumps)
	}
}

// TestReorderStrictlyIncreasing: whatever the arrival pattern, emitted
// timestamps are strictly increasing — the WAL invariant.
func TestReorderStrictlyIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		r := newReorder(int64(rng.Intn(10)), nil, nil)
		var out []graph.Interaction
		at := int64(0)
		for i := 0; i < 500; i++ {
			at += rng.Int63n(3) // ties and repeats on purpose
			jitter := rng.Int63n(15) - 7
			r.offer(graph.Interaction{Src: 0, Dst: 1, At: graph.Time(at + jitter)}, nil, &out)
		}
		r.flush(&out)
		for i := 1; i < len(out); i++ {
			if out[i].At <= out[i-1].At {
				t.Fatalf("trial %d: out[%d].At=%d not after %d", trial, i, out[i].At, out[i-1].At)
			}
		}
	}
}
