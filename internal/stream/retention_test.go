package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ipin/internal/core"
	"ipin/internal/graph"
	"ipin/internal/obs"
	"ipin/internal/vhll"
)

// Retention tests: with Config.Retain set, sketch memory and sidecar disk
// must track the window instead of the stream, the accounting surfaces
// (Stats, Health, metrics, checkpoint metadata) must stay truthful after
// files are deleted, and recovery over a directory with a retired prefix
// must replay to the same published bytes the retention rule produces in
// an uninterrupted run.

// retainedEdges is the deterministic two-phase workload the retention
// tests share: 200 edges at ticks 1..200 over 16 nodes, 25-edge chunk
// alignment, so phase one seals chunks 0..3 and phase two chunks 4..7.
func retainedEdges() []graph.Interaction {
	edges := make([]graph.Interaction, 200)
	for i := range edges {
		edges[i] = graph.Interaction{Src: graph.NodeID(i % 16), Dst: graph.NodeID((i + 7) % 16), At: graph.Time(i + 1)}
	}
	return edges
}

func retainedConfig(reg *obs.Registry) Config {
	return Config{
		Omega: 25, Precision: 4, NumNodes: 16,
		ChunkEdges: 25, Retain: 50,
		CheckpointEvery: -1, SyncEvery: -1,
		Registry: reg,
	}
}

// runRetained streams the workload in two checkpointed phases and closes:
// the second checkpoint's horizon (capped at the durable coverage of the
// first) retires phase one's four chunks and deletes their sidecars.
func runRetained(t *testing.T, dir string, reg *obs.Registry) ([]graph.Interaction, *core.ApproxSummaries) {
	t.Helper()
	edges := retainedEdges()
	var published *core.ApproxSummaries
	cfg := retainedConfig(reg)
	cfg.Dir = dir
	cfg.Publish = func(s *core.ApproxSummaries) { published = s }
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, half := range [][]graph.Interaction{edges[:100], edges[100:]} {
		for _, e := range half {
			if err := in.Push(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := in.Checkpoint(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
	return edges, published
}

// diskOf unpacks the Health "disk" sub-map.
func diskOf(t *testing.T, in *Ingester) map[string]any {
	t.Helper()
	d, ok := in.Health()["disk"].(map[string]any)
	if !ok {
		t.Fatal("Health has no disk map")
	}
	return d
}

// TestRetentionBoundsDiskAndAccounting: the second checkpoint retires the
// first phase's chunks; afterwards the sidecar count is back to four, the
// directory-measured chunk bytes equal written-minus-retired (the
// accounting bugfix: Health and the counter pair must agree with the
// files actually on disk), and the published summaries are byte-identical
// to the offline scan over the retained suffix alone.
func TestRetentionBoundsDiskAndAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	edges := retainedEdges()
	dir := t.TempDir()
	var published *core.ApproxSummaries
	cfg := retainedConfig(reg)
	cfg.Dir = dir
	cfg.Publish = func(s *core.ApproxSummaries) { published = s }
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, e := range edges[:100] {
		if err := in.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	disk1 := diskOf(t, in)
	if got := disk1["chunk_files"].(int); got != 4 {
		t.Fatalf("phase 1: %d sidecars, want 4", got)
	}
	if st := in.Stats(); st.RetiredChunks != 0 {
		t.Fatalf("phase 1 retired %d chunks; the first checkpoint has no durable coverage to retire against", st.RetiredChunks)
	}

	for _, e := range edges[100:] {
		if err := in.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	if st.RetiredChunks != 4 || st.RetiredEdges != 100 {
		t.Fatalf("retired %d chunks / %d edges, want 4 / 100", st.RetiredChunks, st.RetiredEdges)
	}
	if st.Emitted != 200 || st.CoveredEdges != 200 {
		t.Fatalf("emit clocks moved: emitted %d covered %d, want 200/200 (they count retired edges too)", st.Emitted, st.CoveredEdges)
	}
	disk2 := diskOf(t, in)
	if got := disk2["chunk_files"].(int); got != 4 {
		t.Fatalf("after retirement: %d sidecars on disk, want the 4 retained", got)
	}
	snap := reg.Snapshot()
	if v := snap[MetricChunksRetired].(int64); v != 4 {
		t.Fatalf("%s = %d, want 4", MetricChunksRetired, v)
	}
	retiredBytes := snap[MetricChunkRetiredBytes].(int64)
	if retiredBytes <= 0 {
		t.Fatalf("%s = %d, want > 0", MetricChunkRetiredBytes, retiredBytes)
	}
	// The truthfulness identity: bytes on disk = bytes ever written −
	// bytes reclaimed. A stale Health that kept counting deleted files, or
	// a counter that missed a deletion, breaks this exactly.
	written := snap[MetricChunkFileBytes].(int64)
	if got := disk2["chunk_bytes"].(int64); got != written-retiredBytes {
		t.Fatalf("disk chunk_bytes = %d, want written %d − retired %d = %d", got, written, retiredBytes, written-retiredBytes)
	}
	if d1, d2 := disk1["total_bytes"].(int64), disk2["total_bytes"].(int64); d2 >= d1+retiredBytes {
		t.Fatalf("total_bytes did not drop by the retired sidecars: %d → %d with %d retired", d1, d2, retiredBytes)
	}
	if v := snap[MetricSketchBytes].(int64); v <= 0 {
		t.Fatalf("%s = %d, want > 0", MetricSketchBytes, v)
	}
	h := in.Health()
	if h["retired_chunks"].(int64) != 4 || h["retired_edges"].(int64) != 100 {
		t.Fatalf("Health retirement keys = %v / %v, want 4 / 100", h["retired_chunks"], h["retired_edges"])
	}

	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Published coverage is the retained suffix, byte-identical to the
	// offline scan over exactly those edges.
	want := offlineBytes(t, edges[100:], 16, 25, 4)
	if !bytes.Equal(summaryBytes(t, published), want) {
		t.Fatal("published summaries differ from offline scan over the retained suffix")
	}
	var meta struct {
		FirstChunk   int `json:"first_chunk"`
		RetiredEdges int `json:"retired_edges"`
	}
	raw, err := os.ReadFile(filepath.Join(dir, CheckpointMetaName))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.FirstChunk != 4 || meta.RetiredEdges != 100 {
		t.Fatalf("meta records first_chunk=%d retired_edges=%d, want 4 / 100", meta.FirstChunk, meta.RetiredEdges)
	}
}

// TestRecoveryWithRetiredPrefix: reopening a directory whose chunk prefix
// was retired (sidecars 0..3 deleted, metadata floor at 4) must rebuild
// from the retained sidecars alone, re-apply the retention rule — with
// everything durable the horizon now reaches LastAt−Retain+1, retiring
// two more chunks exactly as an uninterrupted run's next checkpoint
// would — and publish bytes identical to the offline scan over the range
// its own metadata claims.
func TestRecoveryWithRetiredPrefix(t *testing.T) {
	dir := t.TempDir()
	edges, published := runRetained(t, dir, nil)
	if !bytes.Equal(summaryBytes(t, published), offlineBytes(t, edges[100:], 16, 25, 4)) {
		t.Fatal("pre-restart published summaries differ from offline scan over retained suffix")
	}
	for c := 0; c < 4; c++ {
		if _, err := os.Stat(chunkFileName(dir, c)); !os.IsNotExist(err) {
			t.Fatalf("retired sidecar %d still on disk", c)
		}
	}

	cfg := retainedConfig(nil)
	recovered, in2 := recoverPublished(t, dir, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer in2.Close(ctx)
	if recovered == nil {
		t.Fatal("no recovery checkpoint published")
	}
	st := in2.Stats()
	if st.RecoveredChunkEdges != 100 || st.RecoveredWALEdges != 0 {
		t.Fatalf("recovered %d chunk / %d wal edges, want 100 / 0", st.RecoveredChunkEdges, st.RecoveredWALEdges)
	}
	// Recovery retirement: horizon 200−50+1 = 151 sheds chunks 4 and 5.
	if st.RetiredChunks != 2 || st.RetiredEdges != 50 {
		t.Fatalf("recovery retired %d chunks / %d edges, want 2 / 50", st.RetiredChunks, st.RetiredEdges)
	}
	var meta struct {
		FirstChunk   int   `json:"first_chunk"`
		RetiredEdges int   `json:"retired_edges"`
		Edges        int64 `json:"edges"`
		LastAt       int64 `json:"last_at"`
	}
	raw, err := os.ReadFile(filepath.Join(dir, CheckpointMetaName))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.FirstChunk != 6 || meta.RetiredEdges != 150 || meta.Edges != 200 || meta.LastAt != 200 {
		t.Fatalf("recovery meta = %+v, want first_chunk=6 retired=150 edges=200 last_at=200", meta)
	}
	// The identity gate: published bytes == offline scan over exactly the
	// range the metadata claims, and the checkpoint file agrees.
	want := offlineBytes(t, edges[meta.RetiredEdges:], 16, 25, 4)
	if !bytes.Equal(summaryBytes(t, recovered), want) {
		t.Fatal("recovered summaries differ from offline scan over the claimed retained range")
	}
	ckpt, err := os.ReadFile(filepath.Join(dir, CheckpointName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckpt, want) {
		t.Fatal("checkpoint.irx differs from offline scan over the claimed retained range")
	}
	// The newly retired sidecars are deleted before New returns (the
	// recovery checkpoint is synchronous).
	for c := 4; c < 6; c++ {
		if _, err := os.Stat(chunkFileName(dir, c)); !os.IsNotExist(err) {
			t.Fatalf("recovery-retired sidecar %d still on disk", c)
		}
	}
}

// TestRecoveryHealsRetirementLeftover: a crash between the checkpoint
// metadata landing (floor moved) and the sidecar deletions leaves
// below-floor files behind. loadChunks must treat them as leftovers —
// delete, not load — and recovery must proceed exactly as if the
// deletion had completed.
func TestRecoveryHealsRetirementLeftover(t *testing.T) {
	dir := t.TempDir()
	edges, _ := runRetained(t, dir, nil)
	// Resurrect a below-floor sidecar: the state a crash mid-deletion
	// leaves when chunk 3's unlink never happened.
	locals := make([]*vhll.Sketch, 16)
	if err := writeChunkFile(dir, 3, 25, 4, edges[75:100], locals, &metrics{}); err != nil {
		t.Fatal(err)
	}

	cfg := retainedConfig(nil)
	recovered, in2 := recoverPublished(t, dir, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer in2.Close(ctx)
	if _, err := os.Stat(chunkFileName(dir, 3)); !os.IsNotExist(err) {
		t.Fatal("below-floor leftover survived recovery")
	}
	if recovered == nil {
		t.Fatal("no recovery checkpoint published")
	}
	// Same outcome as the clean retired-prefix recovery: the leftover
	// neither rejoins the state nor perturbs the retained fold.
	st := in2.Stats()
	if st.RecoveredChunkEdges != 100 || st.RetiredChunks != 2 {
		t.Fatalf("recovered %d chunk edges / retired %d chunks, want 100 / 2", st.RecoveredChunkEdges, st.RetiredChunks)
	}
	if !bytes.Equal(summaryBytes(t, recovered), offlineBytes(t, edges[150:], 16, 25, 4)) {
		t.Fatal("recovery after leftover cleanup differs from offline scan over the retained range")
	}
}

// TestRecoveryRebuildsTopKView: recovered edges bypass the emit path, so
// without an explicit rebuild the profile table after a restart would be
// empty and the recovery checkpoint would publish a top-k view with zero
// entries while claiming full coverage. The rebuild feeds the retained
// chunks back through the profiles, and window estimates depend only on
// the edges inside the window, so the recovered view must equal the
// pre-restart one entry for entry.
func TestRecoveryRebuildsTopKView(t *testing.T) {
	dir := t.TempDir()
	edges := retainedEdges()
	cfg := retainedConfig(nil)
	cfg.Dir = dir
	cfg.ProfileWindow = 50
	cfg.TopK = 3
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, half := range [][]graph.Interaction{edges[:100], edges[100:]} {
		for _, e := range half {
			if err := in.Push(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := in.Checkpoint(ctx); err != nil {
			t.Fatal(err)
		}
	}
	before := in.TopK()
	if before == nil || len(before.Entries) == 0 {
		t.Fatalf("pre-restart TopK view = %+v, want entries", before)
	}
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}

	cfg2 := retainedConfig(nil)
	cfg2.Dir = dir
	cfg2.ProfileWindow = 50
	cfg2.TopK = 3
	in2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Close(ctx)
	after := in2.TopK()
	if after == nil {
		t.Fatal("no TopK view published by the recovery checkpoint")
	}
	if len(after.Entries) == 0 {
		t.Fatal("recovered TopK view has no entries (profiles not rebuilt)")
	}
	if !reflect.DeepEqual(after.Entries, before.Entries) {
		t.Fatalf("recovered TopK entries = %+v, want pre-restart %+v", after.Entries, before.Entries)
	}
	if after.CoveredEdges != before.CoveredEdges || after.LastAt != before.LastAt {
		t.Fatalf("recovered TopK provenance = %d/%d, want %d/%d",
			after.CoveredEdges, after.LastAt, before.CoveredEdges, before.LastAt)
	}
}
