package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"ipin/internal/graph"
	"ipin/internal/trace"
)

// Write-ahead log: the durability substrate of the ingester. Edges that
// cleared the reordering buffer are appended in batches before they touch
// any sketch state, so a crash loses at most the batches that were never
// acknowledged, and replaying the segments reproduces the exact emitted
// edge sequence — the property the recovery-determinism tests pin.
//
// Layout (normative spec in DESIGN.md): a directory of segment files
// wal-%08d.seg. Each segment starts with the 8-byte header "IWAL0001";
// records follow back to back:
//
//	uint32 LE payload length | uint32 LE CRC-32C of payload | payload
//
// A payload is one batch: uvarint edge count, then per edge uvarint src,
// uvarint dst, and the timestamp — varint absolute for the first edge,
// uvarint delta to the predecessor for the rest (emitted timestamps are
// strictly increasing, so deltas are ≥ 1 and compress well). Records are
// self-contained: decoding needs no state from earlier records.
//
// Crash safety: segments are rotated by fsync-then-close before the next
// one is created, so an interrupted write can only produce a torn tail in
// the FINAL segment. Replay truncates the final segment at the first
// incomplete or CRC-failing record and resumes appending there; the same
// damage in any earlier segment is real corruption and fails the open.

// walMagic is the epoch-zero segment header. Segments written before
// replication existed carry it, and epoch-zero writers keep using it so
// their files stay readable by older code.
var walMagic = [8]byte{'I', 'W', 'A', 'L', '0', '0', '0', '1'}

// walMagicV2 is the epoched segment header: the 8-byte magic followed by
// a uint64 LE epoch number. Epochs fence writers across failovers — a
// promoted replica bumps the epoch, so a demoted primary reopening old
// state sees segments from the future and refuses instead of appending.
var walMagicV2 = [8]byte{'I', 'W', 'A', 'L', '0', '0', '0', '2'}

// FutureEpochError reports a WAL segment stamped with a later epoch than
// the caller asserted: the directory was taken over by a newer writer (a
// promoted replica), and appending under the stale epoch would clobber
// replicated history. Callers match it with errors.As.
type FutureEpochError struct {
	Segment  string // offending segment file
	Epoch    uint64 // epoch found in its header
	Asserted uint64 // epoch the opener asserted
}

func (e *FutureEpochError) Error() string {
	return fmt.Sprintf("stream: wal segment %s carries epoch %d, newer than asserted epoch %d: directory was fenced by a newer writer", e.Segment, e.Epoch, e.Asserted)
}

// walCRC is the Castagnoli table used for record checksums.
var walCRC = crc32.MakeTable(crc32.Castagnoli)

const (
	walFrameBytes = 8 // length + checksum
	// maxRecordBytes caps a record payload; a longer length prefix can
	// only come from a torn or corrupt frame, never from Append (the
	// ingester batches far below this), so replay treats it as damage
	// instead of allocating whatever a garbage length demands.
	maxRecordBytes = 64 << 20
)

// WALConfig parameterizes the log; the zero value is usable.
type WALConfig struct {
	// SegmentBytes is the rotation threshold; 0 selects 4 MiB.
	SegmentBytes int64
	// SyncEvery fsyncs after every n appended records: 0 selects 1
	// (every record), negative disables fsync entirely (crash durability
	// then depends on the OS; rotation and Close still sync).
	SyncEvery int
	// Journal, when non-nil, receives lifecycle events: segment
	// rotations, torn-tail truncations, compaction deletions.
	Journal *trace.Journal
	// Epoch, when > 0, asserts the fencing epoch this writer believes it
	// owns: opening fails with *FutureEpochError if any segment carries a
	// later epoch, and the directory is rotated up to Epoch if it is
	// behind. 0 adopts whatever epoch the directory holds (0 for fresh or
	// pre-replication directories).
	Epoch uint64
}

// WAL is an append-only segmented edge log. Not goroutine-safe: the
// ingest loop is the only writer.
type WAL struct {
	dir       string
	cfg       WALConfig
	mx        *metrics
	f         *os.File
	seq       int
	segBytes  int64
	sinceSync int
	syncs     int64 // fsyncs completed; trace stamping compares before/after
	segments  int64
	bytes     int64
	lastAt    int64    // timestamp of the newest appended/replayed edge
	sealed    []walSeg // rotated-out segments still on disk, oldest first
	epoch     uint64   // fencing epoch stamped into new segment headers
}

// walSeg describes one sealed (fsynced and closed) segment awaiting
// compaction: once every edge it holds is covered by durable chunk
// sidecars, DeleteCovered may remove it.
type walSeg struct {
	seq    int
	lastAt int64 // newest timestamp in the segment
	bytes  int64
}

// OpenWAL opens (creating if needed) the segmented log in dir, replays
// every record, and positions the writer at the tail. It returns the
// recovered edge sequence in emitted order. A torn tail in the final
// segment is truncated (the damage is counted in stream_wal_truncated_
// bytes_total); damage anywhere else fails the open.
func OpenWAL(dir string, cfg WALConfig, mx *metrics) (*WAL, []graph.Interaction, error) {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 4 << 20
	}
	if cfg.SyncEvery == 0 {
		cfg.SyncEvery = 1
	}
	if mx == nil {
		mx = &metrics{}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	w := &WAL{dir: dir, cfg: cfg, mx: mx}
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return nil, nil, err
	}
	// Sort numerically by sequence number: lexicographic order diverges
	// from replay order once a sequence outgrows the zero-padded width
	// (wal-99999999.seg sorts after wal-100000000.seg), and compaction
	// only ever pushes sequences upward.
	seqs := make([]int, len(names))
	for i, name := range names {
		if seqs[i], err = segmentSeq(name); err != nil {
			return nil, nil, err
		}
	}
	sort.Sort(&segOrder{seqs: seqs, names: names})
	var edges []graph.Interaction
	lastAt := int64(math.MinInt64)
	var dirEpoch uint64
	epochSeg := ""
	for i, name := range names {
		final := i == len(names)-1
		n, epoch, err := w.replaySegment(name, final, &edges, &lastAt)
		if err != nil {
			return nil, nil, err
		}
		if epoch < dirEpoch {
			return nil, nil, fmt.Errorf("stream: wal segment %s: epoch %d regressed below %d (%s)", name, epoch, dirEpoch, epochSeg)
		}
		if epoch > dirEpoch {
			dirEpoch, epochSeg = epoch, name
		}
		if final {
			w.seq = seqs[i]
			w.segBytes = n
		} else {
			w.sealed = append(w.sealed, walSeg{seq: seqs[i], lastAt: lastAt, bytes: n})
		}
	}
	// Fencing: a segment from a later epoch means a newer writer (a
	// promoted replica) owns this history now. Surfacing the typed error
	// here — before any truncation or append — is what keeps a demoted
	// primary from clobbering replicated state.
	if cfg.Epoch > 0 && dirEpoch > cfg.Epoch {
		return nil, nil, &FutureEpochError{Segment: filepath.Base(epochSeg), Epoch: dirEpoch, Asserted: cfg.Epoch}
	}
	w.epoch = max(dirEpoch, cfg.Epoch)
	w.lastAt = lastAt
	w.segments = int64(len(names))
	if len(names) == 0 {
		if err := w.rotate(); err != nil {
			return nil, nil, err
		}
	} else if w.segBytes < int64(len(walMagic)) {
		// The final segment was truncated all the way into its header
		// (a crash during segment creation); rebuild it empty so the
		// next replay sees a well-formed file.
		header := walHeader(w.epoch)
		f, err := os.OpenFile(names[len(names)-1], os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, nil, err
		}
		if _, err := f.Write(header); err != nil {
			f.Close()
			return nil, nil, err
		}
		w.f = f
		w.segBytes = int64(len(header))
	} else {
		f, err := os.OpenFile(names[len(names)-1], os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		w.f = f
		if w.epoch > dirEpoch {
			// The asserted epoch is ahead of the directory: rotate so the
			// active segment's header carries it — epoch ownership must be
			// durable before any record is appended under it.
			if err := w.rotate(); err != nil {
				return nil, nil, err
			}
		}
	}
	return w, edges, nil
}

// walHeader renders the segment header for epoch e: the legacy 8-byte
// magic at epoch zero (readable by pre-replication code), the epoched
// 16-byte header otherwise.
func walHeader(e uint64) []byte {
	if e == 0 {
		return walMagic[:]
	}
	h := make([]byte, len(walMagicV2)+8)
	copy(h, walMagicV2[:])
	binary.LittleEndian.PutUint64(h[len(walMagicV2):], e)
	return h
}

// segOrder sorts segment names and their parsed sequence numbers in
// lockstep, numerically.
type segOrder struct {
	seqs  []int
	names []string
}

func (s *segOrder) Len() int           { return len(s.seqs) }
func (s *segOrder) Less(i, j int) bool { return s.seqs[i] < s.seqs[j] }
func (s *segOrder) Swap(i, j int) {
	s.seqs[i], s.seqs[j] = s.seqs[j], s.seqs[i]
	s.names[i], s.names[j] = s.names[j], s.names[i]
}

// segmentName renders the file name of segment seq.
func (w *WAL) segmentName(seq int) string {
	return filepath.Join(w.dir, fmt.Sprintf("wal-%08d.seg", seq))
}

// syncDir fsyncs a directory, making renames, creations, and deletions
// inside it durable. Filesystems may not support fsync on directories
// (notably some network mounts); those errors are ignored, matching the
// usual database practice — the sync is best-effort hardening.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		if errors.Is(serr, syscall.EINVAL) || errors.Is(serr, syscall.ENOTSUP) {
			return nil
		}
		return serr
	}
	return cerr
}

// segmentSeq parses the sequence number out of a segment file name.
// The scan verb is width-free on purpose: %08d would stop after eight
// digits and reject the very names this parser exists to order.
func segmentSeq(name string) (int, error) {
	var seq int
	if _, err := fmt.Sscanf(filepath.Base(name), "wal-%d.seg", &seq); err != nil {
		return 0, fmt.Errorf("stream: segment name %q: %v", name, err)
	}
	return seq, nil
}

// replaySegment reads one segment, appending decoded edges, and returns
// the segment's epoch. For the final segment it truncates at the first
// torn record and returns the resulting (valid) size; for earlier
// segments any damage is fatal.
func (w *WAL) replaySegment(name string, final bool, edges *[]graph.Interaction, lastAt *int64) (int64, uint64, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return 0, 0, err
	}
	torn := func(off int64, why string) (int64, error) {
		if !final {
			return 0, fmt.Errorf("stream: wal segment %s corrupt at %d (%s): only the final segment may have a torn tail", name, off, why)
		}
		w.mx.walTrunc.Add(int64(len(data)) - off)
		if err := os.Truncate(name, off); err != nil {
			return 0, fmt.Errorf("stream: truncating torn tail of %s: %v", name, err)
		}
		w.cfg.Journal.Record(trace.EventWALTruncate, why, 0, map[string]any{
			"segment": filepath.Base(name), "bytes": int64(len(data)) - off,
		})
		return off, nil
	}
	hdr, epoch, err := parseSegmentHeader(data)
	if err != nil {
		if hdr < 0 {
			return 0, 0, fmt.Errorf("stream: wal segment %s: %v", name, err)
		}
		n, terr := torn(0, err.Error())
		return n, 0, terr
	}
	off := int64(hdr)
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < walFrameBytes {
			n, err := torn(off, "short frame")
			return n, epoch, err
		}
		plen := int64(binary.LittleEndian.Uint32(rest))
		sum := binary.LittleEndian.Uint32(rest[4:])
		if plen > maxRecordBytes {
			n, err := torn(off, "implausible record length")
			return n, epoch, err
		}
		if int64(len(rest)) < walFrameBytes+plen {
			n, err := torn(off, "short payload")
			return n, epoch, err
		}
		payload := rest[walFrameBytes : walFrameBytes+plen]
		if crc32.Checksum(payload, walCRC) != sum {
			n, err := torn(off, "checksum mismatch")
			return n, epoch, err
		}
		// The checksum held, so a decode failure is not a torn write —
		// it is corruption (or a writer bug) and always fatal.
		if err := decodeRecord(payload, edges, lastAt); err != nil {
			return 0, epoch, fmt.Errorf("stream: wal segment %s record at %d: %v", name, off, err)
		}
		off += walFrameBytes + plen
	}
	return off, epoch, nil
}

// parseSegmentHeader recognizes either header variant and returns its
// length and the segment epoch. A short header is reported with a
// non-negative length (a torn write, repairable in the final segment);
// an unrecognized magic is reported with length −1 (real corruption).
func parseSegmentHeader(data []byte) (int, uint64, error) {
	if len(data) < len(walMagic) {
		return 0, 0, errors.New("short header")
	}
	switch {
	case string(data[:len(walMagic)]) == string(walMagic[:]):
		return len(walMagic), 0, nil
	case string(data[:len(walMagicV2)]) == string(walMagicV2[:]):
		if len(data) < len(walMagicV2)+8 {
			return 0, 0, errors.New("short header")
		}
		epoch := binary.LittleEndian.Uint64(data[len(walMagicV2):])
		if epoch == 0 {
			return -1, 0, errors.New("epoched header with epoch 0")
		}
		return len(walMagicV2) + 8, epoch, nil
	default:
		return -1, 0, errors.New("bad magic")
	}
}

// decodeRecord appends one record's edges, enforcing the strictly
// increasing timestamp invariant across the whole log.
func decodeRecord(payload []byte, edges *[]graph.Interaction, lastAt *int64) error {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return fmt.Errorf("bad edge count")
	}
	payload = payload[n:]
	// Each edge takes at least 3 bytes (src, dst, time); a larger count
	// is structurally impossible and would only inflate the allocation.
	if count > uint64(len(payload))/3+1 {
		return fmt.Errorf("edge count %d exceeds payload", count)
	}
	for i := uint64(0); i < count; i++ {
		src, n := binary.Uvarint(payload)
		if n <= 0 || src > math.MaxInt32 {
			return fmt.Errorf("edge %d: bad src", i)
		}
		payload = payload[n:]
		dst, n := binary.Uvarint(payload)
		if n <= 0 || dst > math.MaxInt32 {
			return fmt.Errorf("edge %d: bad dst", i)
		}
		payload = payload[n:]
		var at int64
		if i == 0 {
			v, n := binary.Varint(payload)
			if n <= 0 {
				return fmt.Errorf("edge %d: bad time", i)
			}
			payload = payload[n:]
			at = v
		} else {
			d, n := binary.Uvarint(payload)
			if n <= 0 || d == 0 || d > math.MaxInt64 {
				return fmt.Errorf("edge %d: bad time delta", i)
			}
			payload = payload[n:]
			// A wrapped sum falls below lastAt and fails the increasing
			// check right after.
			at = *lastAt + int64(d)
		}
		if at <= *lastAt && !(len(*edges) == 0 && i == 0) {
			return fmt.Errorf("edge %d: time %d not increasing past %d", i, at, *lastAt)
		}
		*lastAt = at
		*edges = append(*edges, graph.Interaction{Src: graph.NodeID(src), Dst: graph.NodeID(dst), At: graph.Time(at)})
	}
	if len(payload) != 0 {
		return fmt.Errorf("%d trailing bytes", len(payload))
	}
	return nil
}

// Append writes one record holding the batch (which must continue the
// strictly increasing timestamp order) and applies the fsync policy.
func (w *WAL) Append(batch []graph.Interaction) error {
	if len(batch) == 0 {
		return nil
	}
	payload := encodeRecord(batch)
	var frame [walFrameBytes]byte
	binary.LittleEndian.PutUint32(frame[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, walCRC))
	if _, err := w.f.Write(frame[:]); err != nil {
		return err
	}
	if _, err := w.f.Write(payload); err != nil {
		return err
	}
	n := int64(walFrameBytes + len(payload))
	w.segBytes += n
	w.bytes += n
	w.lastAt = int64(batch[len(batch)-1].At)
	w.mx.walRecords.Inc()
	w.mx.walBytes.Add(n)
	w.sinceSync++
	if w.cfg.SyncEvery > 0 && w.sinceSync >= w.cfg.SyncEvery {
		if err := w.Sync(); err != nil {
			return err
		}
	}
	if w.segBytes >= w.cfg.SegmentBytes {
		return w.rotate()
	}
	return nil
}

// encodeRecord renders one batch payload.
func encodeRecord(batch []graph.Interaction) []byte {
	buf := make([]byte, 0, 4+9*len(batch))
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(batch)))
	buf = append(buf, tmp[:n]...)
	prev := int64(0)
	for i, e := range batch {
		n = binary.PutUvarint(tmp[:], uint64(e.Src))
		buf = append(buf, tmp[:n]...)
		n = binary.PutUvarint(tmp[:], uint64(e.Dst))
		buf = append(buf, tmp[:n]...)
		if i == 0 {
			n = binary.PutVarint(tmp[:], int64(e.At))
		} else {
			n = binary.PutUvarint(tmp[:], uint64(int64(e.At)-prev))
		}
		buf = append(buf, tmp[:n]...)
		prev = int64(e.At)
	}
	return buf
}

// Sync flushes the current segment to stable storage, recording the
// latency. The checkpointer calls it before stamping metadata so a
// checkpoint never claims edges the log could still lose.
func (w *WAL) Sync() error {
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.mx.walFsync.Observe(time.Since(start).Seconds())
	w.sinceSync = 0
	w.syncs++
	return nil
}

// SyncCount returns the number of fsyncs completed so far. The ingester
// compares it around an Append to learn whether the sync policy covered
// the appended edges (and may stamp their trace records at wal_fsync).
func (w *WAL) SyncCount() int64 { return w.syncs }

// rotate seals the current segment (fsync + close, so torn tails can
// only ever live in the newest segment) and starts the next one. The
// directory is fsynced after the new segment is created: without it a
// crash could lose the dirent for a file whose records were already
// acknowledged as synced.
func (w *WAL) rotate() error {
	if w.f != nil {
		if err := w.Sync(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return err
		}
		w.sealed = append(w.sealed, walSeg{seq: w.seq, lastAt: w.lastAt, bytes: w.segBytes})
		w.seq++
	} else if w.seq == 0 {
		w.seq = 1
	}
	header := walHeader(w.epoch)
	f, err := os.OpenFile(w.segmentName(w.seq), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(header); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.mx.dirSyncs.Inc()
	cause := "size"
	if w.f == nil {
		cause = "open"
	}
	w.f = f
	w.segBytes = int64(len(header))
	w.segments++
	w.mx.walSegments.Inc()
	w.cfg.Journal.Record(trace.EventSegmentRotate, cause, 0, map[string]any{"segment": w.seq})
	return nil
}

// DeleteCovered removes sealed segments whose every edge is at or below
// coveredAt — edges that durable chunk sidecars already hold, making the
// segments dead weight for recovery. The active segment is never
// touched. Returns the number of segments deleted; the directory is
// fsynced once per non-empty batch so the deletions are durable in the
// same sense the creations were.
func (w *WAL) DeleteCovered(coveredAt int64) (int, error) {
	removed := 0
	var freed int64
	kept := w.sealed[:0]
	for _, s := range w.sealed {
		if s.lastAt > coveredAt {
			kept = append(kept, s)
			continue
		}
		if err := os.Remove(w.segmentName(s.seq)); err != nil && !os.IsNotExist(err) {
			w.sealed = append(kept, w.sealed[removed+len(kept):]...)
			return removed, err
		}
		removed++
		freed += s.bytes
		w.mx.walDeleted.Inc()
		w.mx.walDeletedBytes.Add(s.bytes)
	}
	w.sealed = kept
	if removed > 0 {
		if err := syncDir(w.dir); err != nil {
			return removed, err
		}
		w.mx.dirSyncs.Inc()
		w.cfg.Journal.Record(trace.EventCompactionDelete, "sidecar-coverage", 0, map[string]any{
			"segments": removed, "bytes": freed,
		})
	}
	return removed, nil
}

// Epoch returns the fencing epoch stamped into new segment headers.
func (w *WAL) Epoch() uint64 { return w.epoch }

// AdvanceEpoch seals the active segment and starts a new one under the
// given (strictly greater) epoch. This is promotion's fencing step: once
// the rotation's directory fsync lands, any writer still asserting the
// old epoch fails its next open with *FutureEpochError.
func (w *WAL) AdvanceEpoch(epoch uint64) error {
	if epoch <= w.epoch {
		return fmt.Errorf("stream: epoch %d does not advance past %d", epoch, w.epoch)
	}
	w.epoch = epoch
	return w.rotate()
}

// SealedSegments returns the number of rotated-out segments still on
// disk (the active segment not included).
func (w *WAL) SealedSegments() int { return len(w.sealed) }

// Segments returns the number of segments this WAL has (recovered plus
// created).
func (w *WAL) Segments() int64 { return w.segments }

// TotalBytes returns the bytes appended by this process (recovered
// segments not included).
func (w *WAL) TotalBytes() int64 { return w.bytes }

// Close syncs and closes the active segment.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	if err := w.Sync(); err != nil {
		w.f.Close()
		return err
	}
	err := w.f.Close()
	w.f = nil
	return err
}
