package stream

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"

	"ipin/internal/graph"
)

// Shipping: read-only views of an ingester state directory, the
// full-sync source for internal/repl. A replication session reads the
// primary's own files — checkpoint metadata, chunk sidecars, WAL
// segments — WITHOUT taking any lock on the run loop, which keeps
// ingestion entirely unaware of how many replicas are syncing. The
// protocol that makes this safe:
//
//   - the session registers its live tap (SetEmitSink fan-out) BEFORE
//     reading the directory, so every edge emitted after registration
//     arrives over the tap;
//   - the directory read then covers at least every edge emitted before
//     registration (WAL appends happen before the sink call), so the
//     snapshot and the tap overlap rather than gap — overlap is resolved
//     by emit positions;
//   - concurrent writers can still tear the read (a segment mid-append,
//     a sidecar mid-retirement): a torn tail in the final segment simply
//     ends the snapshot (the tap has the rest), and a meta change
//     observed across the read retries it.

// EncodeBatch renders a batch of edges (strictly increasing timestamps)
// in the WAL record encoding — the payload body of an IREP0001 Edges
// frame and of WAL and sidecar records alike.
func EncodeBatch(batch []graph.Interaction) []byte { return encodeRecord(batch) }

// DecodeBatch parses one WAL-encoded edge batch.
func DecodeBatch(payload []byte) ([]graph.Interaction, error) {
	var edges []graph.Interaction
	lastAt := int64(math.MinInt64)
	if err := decodeRecord(payload, &edges, &lastAt); err != nil {
		return nil, err
	}
	return edges, nil
}

// CheckpointInfo is the decoded checkpoint.meta.json sidecar in exported
// form: what a checkpoint claimed when it landed. Replication uses it as
// the snapshot's base coordinates.
type CheckpointInfo struct {
	Edges        int64 // emit index one past the last covered edge
	LastAt       int64 // newest covered timestamp
	Chunks       int   // chunks folded (retired included)
	FirstChunk   int   // first retained chunk index
	RetiredEdges int   // edges in chunks below FirstChunk
	Omega        int64
	Precision    int
	Epoch        uint64 // fencing epoch the checkpoint was written under
}

// ReadCheckpointInfo loads the checkpoint metadata of a state directory;
// ok is false when none exists (or it is unparseable, which recovery
// treats the same way).
func ReadCheckpointInfo(dir string) (*CheckpointInfo, bool) {
	m := readCheckpointMeta(dir)
	if m == nil {
		return nil, false
	}
	return &CheckpointInfo{
		Edges: m.Edges, LastAt: m.LastAt, Chunks: m.Chunks, FirstChunk: m.FirstChunk,
		RetiredEdges: m.RetiredEdges, Omega: m.Omega, Precision: m.Precision, Epoch: m.Epoch,
	}, true
}

// Snapshot is one consistent read-only decode of a state directory: the
// retained emitted prefix, where it starts, and the sidecar files that
// cover its head. It is what a replication session ships on attach.
type Snapshot struct {
	// MetaJSON is the raw checkpoint.meta.json contents, nil when the
	// directory has never checkpointed. A fresh replica writes these
	// bytes verbatim so its recovery sees exactly the primary's floor.
	MetaJSON []byte
	// Base is the emit index of Edges[0]: the retired-edge count. Edges
	// below Base were retired past the retention horizon and cannot be
	// shipped — a replica behind Base must resync from scratch.
	Base int64
	// BaseLastAt is the newest timestamp of the retired prefix
	// (math.MinInt64 when nothing was retired).
	BaseLastAt int64
	// Edges is every retained emitted edge, in emit order: sidecar chunks
	// first, then the WAL suffix past them.
	Edges []graph.Interaction
	// FirstChunk and ChunkFiles name the contiguous sidecar run on disk;
	// ChunkEdges is how many of Edges they cover (a prefix).
	FirstChunk int
	ChunkFiles []string
	ChunkEdges int64
	// Epoch is the newest epoch across the WAL segment headers.
	Epoch uint64
}

// End returns the emit index one past the last snapshot edge.
func (s *Snapshot) End() int64 { return s.Base + int64(len(s.Edges)) }

// ReadSnapshot decodes a state directory read-only — nothing is
// truncated, repaired, or deleted, so it is safe against a live
// ingester's directory. A torn tail in the final WAL segment ends the
// edge sequence (the live tap covers the rest); a checkpoint or
// retirement racing the read is detected by re-reading the metadata and
// retrying.
func ReadSnapshot(dir string) (*Snapshot, error) {
	const attempts = 5
	var err error
	for i := 0; i < attempts; i++ {
		var s *Snapshot
		s, err = readSnapshotOnce(dir)
		if err == nil {
			return s, nil
		}
	}
	return nil, fmt.Errorf("stream: snapshot of %s: %w", dir, err)
}

func readSnapshotOnce(dir string) (*Snapshot, error) {
	metaRaw, _ := os.ReadFile(filepath.Join(dir, CheckpointMetaName))
	var meta *ckptMeta
	if len(metaRaw) > 0 {
		m := decodeCkptMeta(metaRaw)
		if m == nil {
			return nil, fmt.Errorf("unparseable checkpoint metadata")
		}
		meta = m
	}
	floor, retired, metaLastAt := 0, 0, int64(math.MinInt64)
	if meta != nil {
		floor, retired, metaLastAt = meta.FirstChunk, meta.RetiredEdges, meta.LastAt
	}
	s := &Snapshot{MetaJSON: metaRaw, Base: int64(retired), BaseLastAt: math.MinInt64, FirstChunk: floor}
	if floor > 0 {
		s.BaseLastAt = metaLastAt
	}
	files, err := listChunkFiles(dir, floor)
	if err != nil {
		return nil, err
	}
	chunkLastAt := int64(math.MinInt64)
	for i, name := range files {
		c, err := readChunkFile(name, floor+i)
		if err != nil {
			return nil, err
		}
		s.Edges = append(s.Edges, c.edges...)
		chunkLastAt = int64(c.edges[len(c.edges)-1].At)
	}
	s.ChunkFiles = files
	s.ChunkEdges = int64(len(s.Edges))
	walEdges, epoch, err := readSegmentsReadOnly(dir)
	if err != nil {
		return nil, err
	}
	s.Epoch = epoch
	// Same suffix rule as recovery: sidecars cover the WAL up to the last
	// sidecar timestamp; with every sidecar retired, the metadata's
	// last_at marks the covered prefix instead.
	skipAt := chunkLastAt
	if len(files) == 0 && floor > 0 {
		skipAt = metaLastAt
	}
	for len(walEdges) > 0 && int64(walEdges[0].At) <= skipAt {
		walEdges = walEdges[1:]
	}
	s.Edges = append(s.Edges, walEdges...)
	// Consistency check: if a checkpoint or retirement rewrote the
	// metadata while we were reading, the floor coordinates above may
	// describe files that no longer exist. Retry in that case.
	metaRaw2, _ := os.ReadFile(filepath.Join(dir, CheckpointMetaName))
	if !bytes.Equal(metaRaw, metaRaw2) {
		return nil, fmt.Errorf("checkpoint metadata changed during read")
	}
	return s, nil
}

// decodeCkptMeta parses raw checkpoint metadata bytes (readCheckpointMeta
// reads from disk; this works on bytes already in hand).
func decodeCkptMeta(raw []byte) *ckptMeta {
	var meta ckptMeta
	if json.Unmarshal(raw, &meta) != nil {
		return nil
	}
	if meta.FirstChunk < 0 || meta.RetiredEdges < 0 || meta.Chunks < meta.FirstChunk {
		return nil
	}
	return &meta
}

// listChunkFiles returns the contiguous sidecar run floor, floor+1, …
// present in dir, non-destructively (unlike loadChunks it never deletes
// orphans — the directory belongs to a live ingester).
func listChunkFiles(dir string, floor int) ([]string, error) {
	names, err := filepath.Glob(filepath.Join(dir, chunkFilePattern))
	if err != nil {
		return nil, err
	}
	byIndex := make(map[int]string, len(names))
	indices := make([]int, 0, len(names))
	for _, name := range names {
		i, err := chunkFileIndex(name)
		if err != nil {
			return nil, err
		}
		if i < floor {
			continue
		}
		byIndex[i] = name
		indices = append(indices, i)
	}
	sort.Ints(indices)
	var run []string
	for len(run) < len(indices) && indices[len(run)] == floor+len(run) {
		run = append(run, byIndex[floor+len(run)])
	}
	return run, nil
}

// readSegmentsReadOnly decodes every WAL segment in dir without
// repairing anything: a torn tail in the final segment ends the decode,
// a missing file (compacted away mid-read) is skipped — its edges were
// sidecar-covered — and damage in an earlier segment is an error. It
// returns the decoded edges and the newest segment epoch.
func readSegmentsReadOnly(dir string) ([]graph.Interaction, uint64, error) {
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return nil, 0, err
	}
	seqs := make([]int, len(names))
	for i, name := range names {
		if seqs[i], err = segmentSeq(name); err != nil {
			return nil, 0, err
		}
	}
	sort.Sort(&segOrder{seqs: seqs, names: names})
	var edges []graph.Interaction
	lastAt := int64(math.MinInt64)
	var epoch uint64
	for i, name := range names {
		final := i == len(names)-1
		data, err := os.ReadFile(name)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, 0, err
		}
		hdr, segEpoch, err := parseSegmentHeader(data)
		if err != nil {
			if final && hdr >= 0 {
				break // torn header on the active segment: snapshot ends here
			}
			return nil, 0, fmt.Errorf("stream: wal segment %s: %v", name, err)
		}
		if segEpoch > epoch {
			epoch = segEpoch
		}
		off := int64(hdr)
		for off < int64(len(data)) {
			rest := data[off:]
			if len(rest) < walFrameBytes {
				break
			}
			plen := int64(binary.LittleEndian.Uint32(rest))
			sum := binary.LittleEndian.Uint32(rest[4:])
			if plen > maxRecordBytes || int64(len(rest)) < walFrameBytes+plen {
				break
			}
			payload := rest[walFrameBytes : walFrameBytes+plen]
			if crc32.Checksum(payload, walCRC) != sum {
				break
			}
			if err := decodeRecord(payload, &edges, &lastAt); err != nil {
				return nil, 0, fmt.Errorf("stream: wal segment %s record at %d: %v", name, off, err)
			}
			off += walFrameBytes + plen
		}
		if off < int64(len(data)) && !final {
			return nil, 0, fmt.Errorf("stream: wal segment %s corrupt at %d: only the final segment may have a torn tail", name, off)
		}
	}
	return edges, epoch, nil
}

// WriteShippedMeta installs checkpoint metadata shipped by a primary
// into a (fresh) replica state directory, after validating it parses.
// Written via tmp + rename like every other metadata write.
func WriteShippedMeta(dir string, metaJSON []byte) error {
	if decodeCkptMeta(metaJSON) == nil {
		return fmt.Errorf("stream: shipped checkpoint metadata unparseable")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, CheckpointMetaName)
	if err := os.WriteFile(path+".tmp", metaJSON, 0o644); err != nil {
		return err
	}
	if err := os.Rename(path+".tmp", path); err != nil {
		return err
	}
	return syncDir(dir)
}

// WriteShippedChunk installs a raw chunk sidecar file shipped by a
// primary, validating framing, checksum, and index before anything
// touches the directory. tmp + fsync + rename, matching writeChunkFile's
// contract that a sidecar present under its final name is complete.
func WriteShippedChunk(dir string, index int, data []byte) error {
	if len(data) < len(chunkMagic)+walFrameBytes {
		return fmt.Errorf("stream: shipped chunk %d: short file", index)
	}
	if string(data[:len(chunkMagic)]) != string(chunkMagic[:]) {
		return fmt.Errorf("stream: shipped chunk %d: bad magic", index)
	}
	rest := data[len(chunkMagic):]
	plen := int64(binary.LittleEndian.Uint32(rest))
	sum := binary.LittleEndian.Uint32(rest[4:])
	if plen > maxRecordBytes || int64(len(rest)) != walFrameBytes+plen {
		return fmt.Errorf("stream: shipped chunk %d: bad length", index)
	}
	payload := rest[walFrameBytes:]
	if crc32.Checksum(payload, walCRC) != sum {
		return fmt.Errorf("stream: shipped chunk %d: checksum mismatch", index)
	}
	c, err := decodeChunkPayload(payload)
	if err != nil {
		return fmt.Errorf("stream: shipped chunk %d: %v", index, err)
	}
	if c.index != index {
		return fmt.Errorf("stream: shipped chunk file holds index %d, want %d", c.index, index)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := chunkFileName(dir, index)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
