package stream

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"ipin/internal/graph"
)

// Edge sources: thin adapters that turn bytes into Push calls. The wire
// format is the same everywhere — one edge per line, "src dst time" in
// decimal, '#'-prefixed lines and blank lines ignored — so the same
// gennet -stream output can be piped into a file tail, a TCP socket, or
// an HTTP POST body interchangeably. Malformed lines are counted
// (stream_parse_errors_total) and skipped, never fatal: a live feed with
// one bad producer should not stop the pipeline.

// ParseEdge parses one "src dst time" line. It is exported for the
// tools (gennet, benchstream) that speak the same wire format.
func ParseEdge(line string) (graph.Interaction, error) {
	var e graph.Interaction
	var src, dst, at int64
	rest := line
	var err error
	if src, rest, err = field(rest); err != nil {
		return e, fmt.Errorf("src: %w", err)
	}
	if dst, rest, err = field(rest); err != nil {
		return e, fmt.Errorf("dst: %w", err)
	}
	if at, rest, err = field(rest); err != nil {
		return e, fmt.Errorf("time: %w", err)
	}
	if strings.TrimSpace(rest) != "" {
		return e, fmt.Errorf("trailing %q", strings.TrimSpace(rest))
	}
	if src < 0 || dst < 0 {
		return e, fmt.Errorf("negative node id")
	}
	return graph.Interaction{Src: graph.NodeID(src), Dst: graph.NodeID(dst), At: graph.Time(at)}, nil
}

// field scans one whitespace-delimited decimal integer off the front of
// s, returning the value and the remainder. Hand-rolled instead of
// strings.Fields+ParseInt so the hot intake path does not allocate a
// slice per line.
func field(s string) (int64, string, error) {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
		i++
	}
	start := i
	neg := false
	if i < len(s) && (s[i] == '-' || s[i] == '+') {
		neg = s[i] == '-'
		i++
	}
	var v int64
	digits := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		d := int64(s[i] - '0')
		if v > (1<<63-1-d)/10 {
			return 0, s, fmt.Errorf("overflow")
		}
		v = v*10 + d
		digits++
		i++
	}
	if digits == 0 {
		return 0, s, fmt.Errorf("missing integer at %q", s[start:])
	}
	if neg {
		v = -v
	}
	return v, s[i:], nil
}

// ReadFrom pushes every edge line read from r until EOF or the ingester
// closes. It returns the number of accepted edges and the first
// non-parse error (parse errors are counted and skipped).
func (in *Ingester) ReadFrom(r io.Reader) (int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var n int64
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := ParseEdge(line)
		if err != nil {
			in.mx.parseErrors.Inc()
			continue
		}
		if err := in.Push(e); err != nil {
			return n, err
		}
		n++
	}
	return n, sc.Err()
}

// ServeTCP accepts connections on l and feeds each connection's lines
// into the pipeline until the listener is closed (typically by the
// caller when the ingester shuts down). Connections are independent: a
// slow or broken client never blocks another beyond the shared intake
// queue.
func (in *Ingester) ServeTCP(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func(c net.Conn) {
			defer c.Close()
			_, _ = in.ReadFrom(c)
		}(conn)
	}
}

// Handler returns an HTTP handler accepting POSTed edge lines (any
// content type; the body is the same line format). The response reports
// how many edges were accepted:
//
//	{"accepted": 128}
//
// A 503 with an error body signals the ingester is closed.
func (in *Ingester) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, `{"error":"POST required"}`, http.StatusMethodNotAllowed)
			return
		}
		n, err := in.ReadFrom(r.Body)
		if err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"accepted":%d,"error":%q}`+"\n", n, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"accepted":%d}`+"\n", n)
	})
}

// TailFile follows path like tail -f: it pushes existing content (from
// the start when fromStart, else only new data), then polls for
// appended lines until ctx is cancelled or the ingester closes. The
// file may not exist yet; TailFile waits for it to appear.
func (in *Ingester) TailFile(ctx context.Context, path string, fromStart bool) error {
	const poll = 100 * time.Millisecond
	var f *os.File
	for {
		var err error
		f, err = os.Open(path)
		if err == nil {
			break
		}
		if !os.IsNotExist(err) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-in.stopped:
			return errClosed
		case <-time.After(poll):
		}
	}
	defer f.Close()
	if !fromStart {
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			return err
		}
	}
	r := bufio.NewReader(f)
	var partial strings.Builder
	for {
		line, err := r.ReadString('\n')
		if err == nil {
			if partial.Len() > 0 {
				line = partial.String() + line
				partial.Reset()
			}
			trimmed := strings.TrimRight(line, "\r\n")
			if trimmed != "" && !strings.HasPrefix(trimmed, "#") {
				e, perr := ParseEdge(trimmed)
				if perr != nil {
					in.mx.parseErrors.Inc()
				} else if perr := in.Push(e); perr != nil {
					return perr
				}
			}
			continue
		}
		if !errors.Is(err, io.EOF) {
			return err
		}
		// Stash the incomplete tail (a writer mid-line) and wait for more.
		partial.WriteString(line)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-in.stopped:
			return errClosed
		case <-time.After(poll):
		}
	}
}
