package stream

import "ipin/internal/obs"

// Streaming metric names. The serving-side series (generation, reloads)
// stay in internal/serve; these cover intake → WAL → checkpoint.
const (
	MetricEdgesAccepted  = "stream_edges_accepted_total"
	MetricEdgesEmitted   = "stream_edges_emitted_total"
	MetricReorderDrops   = "stream_reorder_drops_total"
	MetricReorderDepth   = "stream_reorder_depth"
	MetricWatermarkLag   = "stream_watermark_lag_ticks"
	MetricDetieBumps     = "stream_detie_bumps_total"
	MetricParseErrors    = "stream_parse_errors_total"
	MetricWALRecords     = "stream_wal_records_total"
	MetricWALBytes       = "stream_wal_bytes_total"
	MetricWALSegments    = "stream_wal_segments_total"
	MetricWALTruncated   = "stream_wal_truncated_bytes_total"
	MetricWALFsync       = "stream_wal_fsync_seconds"
	MetricChunksSealed   = "stream_chunks_sealed_total"
	MetricCheckpoints    = "stream_checkpoints_total"
	MetricCheckpointSkip = "stream_checkpoints_skipped_total"
	MetricCheckpointDur  = "stream_checkpoint_seconds"
	MetricCheckpointAge  = "stream_checkpoint_age_seconds"
	MetricCheckpointEdge = "stream_checkpoint_edges"

	MetricWALDeletedSegs  = "stream_wal_deleted_segments_total"
	MetricWALDeletedBytes = "stream_wal_deleted_bytes_total"
	MetricChunkFiles      = "stream_chunk_files_total"
	MetricChunkFileBytes  = "stream_chunk_file_bytes_total"
	MetricDirSyncs        = "stream_dir_syncs_total"
	MetricRecoveredChunk  = "stream_recovered_chunk_edges"
	MetricRecoveredWAL    = "stream_recovered_wal_edges"

	MetricChunksRetired     = "stream_chunks_retired_total"
	MetricChunkRetiredBytes = "stream_chunk_retired_bytes_total"
	MetricSketchBytes       = "stream_sketch_bytes"
	MetricTopkRefreshes     = "stream_topk_refreshes_total"
	MetricTopkSize          = "stream_topk_size"
)

// metrics bundles the ingestion instruments. Built over a nil registry
// every field is a nil no-op instrument, preserving obs's
// zero-cost-when-disabled contract.
type metrics struct {
	accepted, emitted, drops, detie, parseErrors *obs.Counter
	reorderDepth, watermarkLag                   *obs.Gauge
	walRecords, walBytes, walSegments, walTrunc  *obs.Counter
	walFsync                                     *obs.Histogram
	chunks, checkpoints, checkpointSkips         *obs.Counter
	checkpointDur                                *obs.Histogram
	checkpointEdges                              *obs.Gauge
	walDeleted, walDeletedBytes                  *obs.Counter
	chunkFiles, chunkFileBytes, dirSyncs         *obs.Counter
	recoveredChunkEdges, recoveredWALEdges       *obs.Gauge
	chunksRetired, chunkRetiredBytes             *obs.Counter
	sketchBytes                                  *obs.Gauge
	topkRefreshes                                *obs.Counter
	topkSize                                     *obs.Gauge
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		accepted:            reg.Counter(MetricEdgesAccepted, "Edges accepted from sources into the reordering buffer."),
		emitted:             reg.Counter(MetricEdgesEmitted, "Edges released past the watermark into the WAL and sketch state."),
		drops:               reg.Counter(MetricReorderDrops, "Edges dropped for arriving later than the reorder slack allows."),
		detie:               reg.Counter(MetricDetieBumps, "Emitted timestamps bumped to keep the log strictly increasing."),
		parseErrors:         reg.Counter(MetricParseErrors, "Malformed input lines rejected by the edge parser."),
		reorderDepth:        reg.Gauge(MetricReorderDepth, "Edges currently held in the reordering buffer."),
		watermarkLag:        reg.Gauge(MetricWatermarkLag, "Ticks between the latest arrival and the emission watermark."),
		walRecords:          reg.Counter(MetricWALRecords, "Records appended to the write-ahead log."),
		walBytes:            reg.Counter(MetricWALBytes, "Bytes appended to the write-ahead log."),
		walSegments:         reg.Counter(MetricWALSegments, "WAL segments created (rotations plus the initial segment)."),
		walTrunc:            reg.Counter(MetricWALTruncated, "Torn-tail bytes truncated from the final segment during replay."),
		walFsync:            reg.Histogram(MetricWALFsync, "WAL fsync latency in seconds.", nil),
		chunks:              reg.Counter(MetricChunksSealed, "Sketch chunks sealed from pending edges."),
		checkpoints:         reg.Counter(MetricCheckpoints, "Checkpoints folded, written, and published."),
		checkpointSkips:     reg.Counter(MetricCheckpointSkip, "Interval checkpoints skipped because the compactor was busy."),
		checkpointDur:       reg.Histogram(MetricCheckpointDur, "Checkpoint latency (fold + write + publish) in seconds.", nil),
		checkpointEdges:     reg.Gauge(MetricCheckpointEdge, "Edges covered by the last published checkpoint."),
		walDeleted:          reg.Counter(MetricWALDeletedSegs, "WAL segments deleted after their edges became durable in chunk sidecars."),
		walDeletedBytes:     reg.Counter(MetricWALDeletedBytes, "Bytes reclaimed by deleting covered WAL segments."),
		chunkFiles:          reg.Counter(MetricChunkFiles, "Chunk sidecar files written."),
		chunkFileBytes:      reg.Counter(MetricChunkFileBytes, "Bytes written to chunk sidecar files."),
		dirSyncs:            reg.Counter(MetricDirSyncs, "Directory fsyncs after renames, creations, and deletions."),
		recoveredChunkEdges: reg.Gauge(MetricRecoveredChunk, "Edges recovered from durable chunk sidecars at startup."),
		recoveredWALEdges:   reg.Gauge(MetricRecoveredWAL, "Edges recovered by WAL suffix replay at startup."),
		chunksRetired:       reg.Counter(MetricChunksRetired, "Chunk sidecar files deleted after aging past the retention horizon."),
		chunkRetiredBytes:   reg.Counter(MetricChunkRetiredBytes, "Bytes reclaimed by deleting retired chunk sidecar files."),
		sketchBytes:         reg.Gauge(MetricSketchBytes, "Resident block-local sketch bytes across the retained chunks."),
		topkRefreshes:       reg.Counter(MetricTopkRefreshes, "Live top-k view refreshes published alongside checkpoints."),
		topkSize:            reg.Gauge(MetricTopkSize, "Entries in the last published live top-k view."),
	}
}
