// Package stream is the live ingestion subsystem: it turns a feed of
// timestamped interactions into continuously refreshed IRS summaries and
// hands them to the serving layer without a restart.
//
// The pipeline, in edge order:
//
//	sources (TCP / HTTP / file tail / ReadFrom)
//	  → reordering buffer (bounded out-of-order tolerance, watermarks)
//	  → write-ahead log (durable, crash-safe segment rotation)
//	  → pending batch → sealed chunks (core.IncrementalApprox)
//	  → background compactor: fold → checkpoint.irx → Publish
//
// One goroutine — the run loop — owns the reorder buffer, the WAL, and
// the incremental sketch state, so none of them need locks. The
// compactor is a second goroutine that folds immutable ChunkView
// snapshots; ingestion never stalls behind a checkpoint. Publishing is a
// callback (wired to serve.Server.LoadApprox in process) so the serving
// layer's generation-counted swap is the only handoff point.
//
// Durability is two-tier. Chunk sidecars (chunkfile.go) persist each
// sealed chunk's edges and block-local sketches the next time the
// compactor runs, so recovery loads the sidecar prefix with
// AppendSealedChunk — no rescan — and replays only the WAL suffix past
// it (truncating a torn tail in the final segment only). WAL segments
// entirely covered by durable sidecars are deleted, bounding the log.
// The fold cache seeded from checkpoint.irx makes the first
// post-recovery checkpoint incremental too. Chunk boundaries do not
// affect fold output, so the recovered summaries are byte-identical to
// those of an uninterrupted run over the same emitted prefix — the
// property the crash tests in recovery_test.go pin.
package stream

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ipin/internal/core"
	"ipin/internal/graph"
	"ipin/internal/obs"
	"ipin/internal/swhll"
	"ipin/internal/trace"
	"ipin/internal/vhll"
)

// Config parameterizes an Ingester. Dir and Omega are required; every
// other field has a usable zero value.
type Config struct {
	// Dir is the ingester's state directory: WAL segments and checkpoint
	// files live here. Created if missing.
	Dir string
	// Omega is the influence window in ticks (required, >= 1).
	Omega int64
	// Precision is the vHLL sketch precision; 0 selects
	// core.DefaultPrecision.
	Precision int
	// NumNodes is the initial node range; the range grows automatically
	// as the stream introduces larger IDs.
	NumNodes int
	// Slack is the out-of-order tolerance in ticks: an edge may arrive up
	// to Slack ticks behind the newest timestamp seen and still be
	// sequenced. 0 means in-order input (late edges drop immediately).
	Slack int64
	// ChunkEdges is the sealed-chunk size; 0 selects 16384. Smaller
	// chunks lower checkpoint latency, larger ones lower fold overhead.
	ChunkEdges int
	// CheckpointEvery is the interval between automatic checkpoints; 0
	// selects 5s, negative disables interval checkpoints (forced
	// Checkpoint calls and the final Close checkpoint still run).
	CheckpointEvery time.Duration
	// CheckpointEdges additionally triggers a checkpoint whenever this
	// many new edges sealed since the last one; 0 disables the edge
	// trigger.
	CheckpointEdges int
	// IdleFlush bounds how long a buffered edge may wait for the
	// watermark to advance: after this long with no arrivals the reorder
	// buffer flushes fully. 0 selects 250ms, negative disables.
	IdleFlush time.Duration
	// QueueDepth bounds the intake channel; 0 selects 8192. Push blocks
	// when the run loop falls behind.
	QueueDepth int
	// SegmentBytes and SyncEvery configure the WAL (see WALConfig).
	SegmentBytes int64
	SyncEvery    int
	// Epoch, when > 0, asserts the replication fencing epoch this
	// ingester believes it owns: New fails with *FutureEpochError if the
	// directory holds WAL segments from a later epoch (it was taken over
	// by a promoted replica), and rotates the directory up to Epoch if it
	// is behind. 0 adopts the directory's epoch. See WALConfig.Epoch.
	Epoch uint64
	// ProfileWindow, when > 0, additionally maintains sliding-window
	// out-neighborhood profiles (internal/swhll) over the emitted stream,
	// exposed through the live Hot/TopK view and, exactly, after Close.
	// 0 disables them.
	ProfileWindow int64
	// TopK is the size of the continuously-maintained top-k influencer
	// view refreshed at every checkpoint when ProfileWindow enables
	// profiles; 0 selects 10.
	TopK int
	// Retain, when > 0, bounds the retained history in ticks: at every
	// checkpoint, sealed chunks whose entire span lies before
	// LastAt−Retain+1 are retired — dropped from sketch state, their
	// sidecars deleted once the checkpoint metadata recording the new
	// retained range is durable. Published summaries then cover the
	// retained suffix only (byte-identical to the offline scan over it),
	// so Retain must be at least Omega or in-window queries would lose
	// admissible edges. 0 keeps everything forever.
	Retain int64
	// Publish receives each folded checkpoint, in order. Wire it to
	// serve.Server.LoadApprox for in-process hot swap; nil means
	// checkpoints are only written to disk. The summaries are shared
	// with the ingester's fold cache (the base later incremental folds
	// build on), so the callback must treat them as read-only.
	Publish func(*core.ApproxSummaries)
	// Registry receives the stream_* metrics; nil disables them.
	Registry *obs.Registry
	// Tracer, when non-nil, samples accepted edges into end-to-end trace
	// records stamped at every pipeline stage (see internal/trace). The
	// same Tracer may be handed to a successor ingester over the same
	// directory; New reconciles records open across the restart.
	Tracer *trace.Tracer
	// Journal, when non-nil, receives structured lifecycle events:
	// recovery, segment rotations, chunk seals and persists, checkpoints,
	// compaction deletions.
	Journal *trace.Journal
}

// CheckpointName and CheckpointMetaName are the file names a checkpoint
// writes inside Dir: the IRX1 summary snapshot and its JSON sidecar.
const (
	CheckpointName     = "checkpoint.irx"
	CheckpointMetaName = "checkpoint.meta.json"
)

// Stats is a point-in-time snapshot of ingestion progress, readable from
// any goroutine.
type Stats struct {
	Accepted     int64 // edges accepted from sources into the pipeline (drops excluded)
	Emitted      int64 // edges past the watermark, logged and sealed/pending
	ReorderDrops int64 // edges dropped for exceeding the slack
	Checkpoints  int64 // checkpoints published
	LastAt       int64 // latest emitted timestamp
	CoveredEdges int64 // edges covered by the last published checkpoint

	// RecoveredChunkEdges and RecoveredWALEdges split the startup
	// recovery by source: edges rebuilt from durable chunk sidecars
	// (no rescan) versus edges replayed from the WAL suffix. Their sum
	// is the recovered prefix; a well-compacted directory recovers
	// almost everything from sidecars.
	RecoveredChunkEdges int64
	RecoveredWALEdges   int64

	// RetiredChunks and RetiredEdges count what the retention horizon
	// has shed from sketch state (Config.Retain); Emitted and
	// CoveredEdges keep counting retired edges — they are emit clocks,
	// not residency gauges.
	RetiredChunks int64
	RetiredEdges  int64
}

// HotView is one published snapshot of the continuously-maintained
// top-k influencer view: the nodes with the largest sliding-window
// out-neighborhood profiles as of the checkpoint that published it.
type HotView struct {
	// Entries holds the top nodes with their estimated distinct
	// out-neighbor counts, descending, ties broken by smaller NodeID.
	Entries []swhll.TopEntry
	// CoveredEdges is the emit index of the publishing checkpoint.
	CoveredEdges int64
	// LastAt is the newest emitted timestamp the view covers.
	LastAt int64
	// RefreshedAt is when the compactor published the view.
	RefreshedAt time.Time
}

var errClosed = errors.New("stream: ingester closed")

// Ingester is the live intake pipeline. Construct with New, feed edges
// with Push (or the source helpers in source.go), and stop with Close.
type Ingester struct {
	cfg Config
	mx  *metrics
	tr  *trace.Tracer
	jr  *trace.Journal

	intake  chan graph.Interaction
	force   chan chan error // forced Checkpoint requests
	advance chan advanceReq // AdvanceEpoch requests (replica promotion)
	stopped chan struct{}   // closed when the run loop must exit
	done    chan struct{}   // closed when the run loop has exited
	stopMu  sync.Mutex
	closed  bool
	runErr  atomic.Pointer[error]

	// Replication hooks, set by internal/repl. emitSink observes every
	// emitted batch on the run loop; walFloor caps WAL compaction at the
	// replicas' acknowledged position.
	emitSink atomic.Pointer[func(base int64, batch []graph.Interaction)]
	walFloor atomic.Pointer[func() int64]
	epoch    atomic.Uint64

	// Owned by the run loop.
	buf            *reorder
	wal            *WAL
	inc            *core.IncrementalApprox
	pending        []graph.Interaction
	profiles       *swhll.Profiles
	sinceCkpt      int
	walCompactedAt int64 // timestamp DeleteCovered last ran with
	sealLive       bool  // false during New's replay: recovered chunks are not re-stamped

	// Owned by the compactor goroutine (initialized before it starts).
	durableChunks int // sealed chunks already persisted as sidecars
	retiredFloor  int // lowest chunk sidecar index still on disk

	// folds carries snapshots to the compactor goroutine; foldsPending
	// counts submitted-but-unfinished jobs so triggers can skip without
	// sealing while a fold is in flight.
	folds        chan foldJob
	foldsPending atomic.Int32

	accepted    atomic.Int64
	emitted     atomic.Int64
	drops       atomic.Int64
	checkpoints atomic.Int64
	lastAt      atomic.Int64
	ckptEdges   atomic.Int64
	lastCkpt    atomic.Int64 // unix nanos of the last publish
	durableAt   atomic.Int64 // newest timestamp covered by durable sidecars
	wmLag       atomic.Int64 // maxSeen − watermark, in ticks (health surface)
	bufDepth    atomic.Int64 // reorder buffer depth (health surface)

	retiredChunks atomic.Int64 // chunks shed from sketch state (run loop writes)
	retiredEdges  atomic.Int64 // edges inside those chunks
	sketchBytes   atomic.Int64 // retained block-local sketch bytes, as of the last checkpoint
	hot           atomic.Pointer[HotView]

	recoveredChunkEdges int64 // set once in New, before the loops start
	recoveredWALEdges   int64
}

// foldJob asks the compactor to fold one snapshot; done receives the
// result exactly once. cause labels the trigger in the journal. hot is
// the refreshed top-k view the run loop computed when it cut the
// snapshot (nil when profiles are disabled); the compactor publishes it
// alongside the checkpoint.
type foldJob struct {
	view  core.ChunkView
	hot   []swhll.TopEntry
	cause string
	done  chan error
}

// advanceReq asks the run loop to advance the WAL fencing epoch — the
// sealing step of replica promotion. done receives the result exactly
// once.
type advanceReq struct {
	epoch uint64
	done  chan error
}

// New opens (or creates) the state directory, loads the durable chunk
// sidecars, replays the WAL suffix past them, rebuilds the sketch state,
// seeds the fold cache from the checkpoint, publishes a recovery
// checkpoint when anything was recovered, deletes WAL segments the
// sidecars cover, and starts the intake loop and compactor.
func New(cfg Config) (*Ingester, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("stream: Config.Dir is required")
	}
	if cfg.Omega < 1 {
		return nil, fmt.Errorf("stream: Config.Omega must be >= 1, got %d", cfg.Omega)
	}
	if cfg.Slack < 0 {
		return nil, fmt.Errorf("stream: negative Slack %d", cfg.Slack)
	}
	if cfg.Retain < 0 {
		return nil, fmt.Errorf("stream: negative Retain %d", cfg.Retain)
	}
	if cfg.Retain > 0 && cfg.Retain < cfg.Omega {
		return nil, fmt.Errorf("stream: Retain %d shorter than Omega %d would retire admissible edges", cfg.Retain, cfg.Omega)
	}
	if cfg.TopK < 0 {
		return nil, fmt.Errorf("stream: negative TopK %d", cfg.TopK)
	}
	if cfg.TopK == 0 {
		cfg.TopK = 10
	}
	if cfg.Precision == 0 {
		cfg.Precision = core.DefaultPrecision
	}
	if cfg.ChunkEdges <= 0 {
		cfg.ChunkEdges = 16384
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 5 * time.Second
	}
	if cfg.IdleFlush == 0 {
		cfg.IdleFlush = 250 * time.Millisecond
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8192
	}
	startNew := time.Now()
	mx := newMetrics(cfg.Registry)
	in := &Ingester{
		cfg:     cfg,
		mx:      mx,
		tr:      cfg.Tracer,
		jr:      cfg.Journal,
		intake:  make(chan graph.Interaction, cfg.QueueDepth),
		force:   make(chan chan error),
		advance: make(chan advanceReq),
		stopped: make(chan struct{}),
		done:    make(chan struct{}),
		folds:   make(chan foldJob),
		buf:     newReorder(cfg.Slack, mx, cfg.Tracer),
	}
	// The checkpoint age is computed at exposition time: a push-style
	// gauge can only report the age as of its last incidental update.
	cfg.Registry.GaugeFunc(MetricCheckpointAge, "Seconds since the last published checkpoint.", func() int64 {
		at := in.lastCkpt.Load()
		if at == 0 {
			return 0
		}
		return int64(time.Since(time.Unix(0, at)).Seconds())
	})
	inc, err := core.NewIncrementalApprox(cfg.Omega, cfg.Precision, cfg.NumNodes)
	if err != nil {
		return nil, err
	}
	in.inc = inc
	if cfg.ProfileWindow > 0 {
		p, err := swhll.NewProfiles(cfg.NumNodes, cfg.Precision, cfg.ProfileWindow)
		if err != nil {
			return nil, err
		}
		in.profiles = p
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	// The checkpoint metadata is the durable record of retirement: chunks
	// below meta.FirstChunk were shed from sketch state, and their
	// sidecars (and the WAL segments covering them) may already be gone.
	// It is read FIRST so the sidecar load knows its floor — a sidecar
	// below the floor is a crash leftover, not a gap.
	meta := readCheckpointMeta(cfg.Dir)
	floor, metaRetired, metaLastAt := 0, 0, int64(math.MinInt64)
	if meta != nil {
		floor, metaRetired, metaLastAt = meta.FirstChunk, meta.RetiredEdges, meta.LastAt
	}
	if floor > 0 || metaRetired > 0 {
		if err := inc.ResumeAt(floor, metaRetired); err != nil {
			return nil, fmt.Errorf("stream: resume after retirement: %w", err)
		}
	}
	// Tier 1: durable chunk sidecars. Each carries a sealed chunk's edges
	// and block-local sketches, so the state rebuilds without a rescan.
	sidecars, err := loadChunks(cfg.Dir, floor)
	if err != nil {
		return nil, err
	}
	chunkLastAt := int64(math.MinInt64)
	var chunkEdges int64
	for _, c := range sidecars {
		if c.omega != cfg.Omega || c.precision != cfg.Precision {
			// The sidecar was written under a different configuration; its
			// cached sketches are useless, but its edges are not — rescan.
			if err := in.seal(c.edges); err != nil {
				return nil, fmt.Errorf("stream: chunk sidecar %d replay: %w", c.index, err)
			}
		} else {
			locals, nodes := c.locals, c.numNodes
			if n := inc.NumNodes(); n > nodes {
				// The configured node range outgrew the sidecar's; pad with
				// nils, exactly what a rescan would produce for idle nodes.
				padded := make([]*vhll.Sketch, n)
				copy(padded, locals)
				locals, nodes = padded, n
			}
			if err := inc.AppendSealedChunk(c.edges, locals, nodes); err != nil {
				return nil, fmt.Errorf("stream: chunk sidecar %d: %w", c.index, err)
			}
			mx.chunks.Inc()
			in.sinceCkpt += len(c.edges)
		}
		chunkEdges += int64(len(c.edges))
		chunkLastAt = int64(c.edges[len(c.edges)-1].At)
	}
	// Tier 2: the WAL. Replay still reads every surviving segment, but
	// only the suffix past the sidecar coverage is new — the overlap (the
	// segment that was active when the last sidecar batch landed) is
	// skipped, and fully covered segments were already deleted.
	wal, recovered, err := OpenWAL(cfg.Dir, WALConfig{SegmentBytes: cfg.SegmentBytes, SyncEvery: cfg.SyncEvery, Journal: cfg.Journal, Epoch: cfg.Epoch}, mx)
	if err != nil {
		return nil, err
	}
	in.wal = wal
	in.epoch.Store(wal.Epoch())
	suffix := recovered
	// The replay skip threshold is normally the last sidecar timestamp.
	// When retirement deleted EVERY sidecar (the retained range is empty
	// on disk), the checkpoint metadata's last_at takes over: at the
	// moment that metadata became durable the sealed prefix was exactly
	// the retired prefix, so WAL edges at or before it are covered.
	skipAt := chunkLastAt
	if len(sidecars) == 0 && floor > 0 {
		skipAt = metaLastAt
	}
	for len(suffix) > 0 && int64(suffix[0].At) <= skipAt {
		suffix = suffix[1:]
	}
	// Rebuild the rest of the sketch state from the replayed suffix. The
	// replayed edges already passed the reorder buffer in their first
	// life, so they feed the chunk builder directly; the fresh reorder
	// buffer is primed past the recovered tail so replayed history cannot
	// be re-emitted.
	for lo := 0; lo < len(suffix); lo += cfg.ChunkEdges {
		hi := min(lo+cfg.ChunkEdges, len(suffix))
		if err := in.seal(suffix[lo:hi]); err != nil {
			wal.Close()
			return nil, fmt.Errorf("stream: replay: %w", err)
		}
	}
	if n := inc.EdgeCount(); n > 0 {
		last := inc.LastAt()
		if inc.RetainedEdges() == 0 {
			// Everything sealed was retired and nothing replayed: the
			// builder has no chunk to read a clock from, but the stream's
			// time did advance to the retired prefix's end.
			last = graph.Time(metaLastAt)
		}
		in.buf.wm = last
		in.buf.maxSeen = last
		in.buf.seen = true
		in.buf.lastOut = last
		in.buf.emitted = true
		in.lastAt.Store(int64(last))
		in.emitted.Store(int64(n))
	}
	// The emit-index clocks (reorder count, emitted counter) resume at the
	// recovered prefix; a reused tracer retires records the crash lost so
	// fresh edges cannot collide with their emit indices.
	in.buf.count = int64(inc.EdgeCount())
	in.tr.Recovered(int64(inc.EdgeCount()))
	in.recoveredChunkEdges = chunkEdges
	in.recoveredWALEdges = int64(len(suffix))
	mx.recoveredChunkEdges.Set(chunkEdges)
	mx.recoveredWALEdges.Set(int64(len(suffix)))
	in.durableChunks = floor + len(sidecars)
	in.retiredFloor = floor
	in.durableAt.Store(chunkLastAt)
	// Re-apply the retention horizon to the rebuilt state before anything
	// folds: retirement is deterministic (same sealed chunks, same
	// horizon, same result), so a recovered builder retires exactly what
	// the pre-crash run had — or would have — retired, and the recovery
	// checkpoint below publishes the same retained range.
	in.retire()
	// Recovered edges bypass the emit path, so the profile table is empty
	// here; rebuild it from the retained chunks before the recovery
	// checkpoint cuts a top-k view, or a restarted process would publish
	// an empty view while claiming full coverage. The retained suffix
	// spans at least the profile window (Retain >= ProfileWindow after
	// clamping), and window estimates are a pure function of the edges
	// inside the window, so the rebuilt view matches the pre-crash one.
	if in.profiles != nil {
		var perr error
		inc.RetainedInteractions(func(batch []graph.Interaction) {
			if perr == nil {
				perr = in.profiles.ObserveBatch(batch)
			}
		})
		if perr != nil {
			wal.Close()
			return nil, fmt.Errorf("stream: recovery profiles: %w", perr)
		}
		in.profiles.Prune()
	}
	// Seed the fold cache from the durable checkpoint, so the first
	// post-recovery fold is already incremental.
	in.seedFoldCache(meta, sidecars)
	in.walCompactedAt = math.MinInt64
	go in.compactor()
	// Publish the recovered state before accepting new edges, so a
	// restarted process serves its pre-crash coverage immediately.
	// Retained, not total: when everything sealed has aged past the
	// horizon there is nothing to fold, and a checkpoint cut from an
	// empty view would regress the metadata's clocks.
	if inc.RetainedEdges() > 0 {
		if err := in.checkpointNow("recovery"); err != nil {
			close(in.folds)
			wal.Close()
			return nil, fmt.Errorf("stream: recovery checkpoint: %w", err)
		}
	}
	// Reclaim WAL segments the (possibly just-extended) sidecar coverage
	// makes redundant — including deletions a pre-crash run never got to.
	if err := in.compactWAL(); err != nil {
		close(in.folds)
		wal.Close()
		return nil, err
	}
	if chunkEdges > 0 || len(suffix) > 0 {
		in.jr.Record(trace.EventRecovery, "startup", time.Since(startNew), map[string]any{
			"chunk_edges": chunkEdges, "wal_edges": int64(len(suffix)),
		})
	}
	in.sealLive = true
	go in.run()
	return in, nil
}

// ckptMeta is the decoded checkpoint.meta.json sidecar. FirstChunk and
// RetiredEdges decode as zero from pre-retirement metadata, which reads
// exactly as "nothing retired".
type ckptMeta struct {
	Edges        int64  `json:"edges"`
	LastAt       int64  `json:"last_at"`
	Chunks       int    `json:"chunks"`
	FirstChunk   int    `json:"first_chunk"`
	RetiredEdges int    `json:"retired_edges"`
	Omega        int64  `json:"omega"`
	Precision    int    `json:"precision"`
	Epoch        uint64 `json:"epoch,omitempty"`
}

// readCheckpointMeta loads the checkpoint metadata sidecar, nil when it
// is missing or unparseable (recovery then proceeds as if no checkpoint
// had ever been published, which is always safe: retirement only
// deletes data after this file is durable).
func readCheckpointMeta(dir string) *ckptMeta {
	raw, err := os.ReadFile(filepath.Join(dir, CheckpointMetaName))
	if err != nil {
		return nil
	}
	return decodeCkptMeta(raw)
}

// seedFoldCache primes the incremental fold cache from checkpoint.irx
// when the checkpoint's own metadata proves it covers exactly the
// retained sidecar prefix under the current configuration. Any mismatch
// — missing or legacy meta, different window or precision, a retained
// range moved by recovery retirement, edge counts that do not line up —
// silently skips seeding; the first fold is then computed from scratch,
// which is always correct.
func (in *Ingester) seedFoldCache(meta *ckptMeta, sidecars []*chunkData) {
	if meta == nil {
		return
	}
	if meta.Chunks <= meta.FirstChunk || meta.Chunks > meta.FirstChunk+len(sidecars) ||
		meta.Omega != in.cfg.Omega || meta.Precision != in.cfg.Precision {
		return
	}
	// The checkpoint folded chunks [meta.FirstChunk, meta.Chunks); the
	// cache is only valid from the builder's CURRENT base — if recovery
	// retirement just advanced it, the cached fold still covers chunks
	// the builder shed, and sketches cannot subtract them back out.
	if meta.FirstChunk != in.inc.FirstChunk() || meta.RetiredEdges != in.inc.RetiredEdges() {
		return
	}
	var edges int64
	for _, c := range sidecars[:meta.Chunks-meta.FirstChunk] {
		if c.omega != in.cfg.Omega || c.precision != in.cfg.Precision {
			return // those chunks were resealed with fresh boundaries-by-rescan
		}
		edges += int64(len(c.edges))
	}
	if edges != meta.Edges-int64(meta.RetiredEdges) {
		return
	}
	f, err := os.Open(filepath.Join(in.cfg.Dir, CheckpointName))
	if err != nil {
		return
	}
	defer f.Close()
	sum, err := core.ReadApproxSummaries(f)
	if err != nil {
		return
	}
	// SeedFoldCache re-validates omega/precision/ranges; an all-empty
	// checkpoint decodes with the default precision and is rejected
	// there, which only costs the first fold its shortcut.
	_ = in.inc.SeedFoldCache(sum, meta.Chunks)
}

// retire applies the retention horizon to the sketch state: chunks whose
// entire span lies before LastAt−Retain+1 are dropped from the builder.
// Retirement is additionally capped at the durable-sidecar coverage —
// a chunk is only shed from memory once its sidecar is on disk, so the
// WAL segments covering it (deleted against durableAt) are never the
// last copy of edges the checkpoint metadata does not yet account for.
// Runs on the builder's owning goroutine (the run loop, or New during
// recovery). The on-disk sidecars are deleted later, by the compactor,
// after the checkpoint metadata recording the new retained range is
// durable — see retireSidecars.
func (in *Ingester) retire() {
	if in.cfg.Retain == 0 || in.inc.RetainedEdges() == 0 {
		return
	}
	horizon := int64(in.inc.LastAt()) - in.cfg.Retain + 1
	if durable := in.durableAt.Load(); durable < horizon-1 {
		horizon = durable + 1
	}
	chunks, edges := in.inc.Retire(horizon)
	if chunks == 0 {
		return
	}
	in.retiredChunks.Add(int64(chunks))
	in.retiredEdges.Add(int64(edges))
	in.jr.Record(trace.EventChunkRetire, "", 0, map[string]any{
		"chunks": chunks, "edges": edges, "first_chunk": in.inc.FirstChunk(), "horizon": horizon,
	})
}

// retireSidecars deletes the sidecar files of chunks the snapshot has
// retired. Runs on the compactor goroutine, strictly AFTER
// writeCheckpoint made the metadata recording view.FirstChunk() durable:
// a crash before that metadata landed must find the files still present,
// or recovery would see a gap at the old floor and discard the retained
// suffix. A crash between the metadata and the deletions is healed by
// loadChunks, which treats below-floor files as leftovers.
func (in *Ingester) retireSidecars(view core.ChunkView) error {
	lo, hi := in.retiredFloor, view.FirstChunk()
	if hi <= lo {
		return nil
	}
	start := time.Now()
	var bytes int64
	for c := lo; c < hi; c++ {
		name := chunkFileName(in.cfg.Dir, c)
		if fi, err := os.Stat(name); err == nil {
			bytes += fi.Size()
		}
		if err := os.Remove(name); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("stream: retire sidecar %d: %w", c, err)
		}
	}
	if err := syncDir(in.cfg.Dir); err != nil {
		return err
	}
	in.mx.dirSyncs.Inc()
	in.retiredFloor = hi
	in.mx.chunksRetired.Add(int64(hi - lo))
	in.mx.chunkRetiredBytes.Add(bytes)
	in.jr.Record(trace.EventChunkRetire, "sidecars", time.Since(start), map[string]any{
		"chunks": hi - lo, "bytes": bytes, "floor": hi,
	})
	return nil
}

// compactWAL deletes WAL segments whose edges are all covered by durable
// chunk sidecars — capped at the replication floor, so a segment a
// connected replica has not yet acknowledged is never deleted even when
// sidecars cover it (the retention floor is min(durable frontier,
// replica ack)). Runs on the WAL's owning goroutine (the run loop, or
// New before the loop starts); the compactor only publishes the covered
// timestamp.
func (in *Ingester) compactWAL() error {
	at := in.durableAt.Load()
	if fn := in.walFloor.Load(); fn != nil {
		if f := (*fn)(); f < at {
			at = f
		}
	}
	if at <= in.walCompactedAt {
		return nil
	}
	if _, err := in.wal.DeleteCovered(at); err != nil {
		return fmt.Errorf("stream: wal compaction: %w", err)
	}
	in.walCompactedAt = at
	return nil
}

// Push offers one edge to the pipeline, blocking while the intake queue
// is full. It fails once Close has begun or the run loop has died.
func (in *Ingester) Push(e graph.Interaction) error {
	if e.Src < 0 || e.Dst < 0 {
		return fmt.Errorf("stream: negative node id (%d,%d)", e.Src, e.Dst)
	}
	select {
	case <-in.stopped:
		return errClosed
	default:
	}
	select {
	case in.intake <- e:
		return nil
	case <-in.stopped:
		return errClosed
	}
}

// markStopped closes the stopped channel exactly once, unblocking every
// Push. Called by Close and by the run loop on a terminal error.
func (in *Ingester) markStopped() {
	in.stopMu.Lock()
	if !in.closed {
		in.closed = true
		close(in.stopped)
	}
	in.stopMu.Unlock()
}

// run is the single-owner intake loop.
func (in *Ingester) run() {
	defer close(in.done)
	var idle *time.Timer
	var idleC <-chan time.Time
	if in.cfg.IdleFlush > 0 {
		idle = time.NewTimer(in.cfg.IdleFlush)
		defer idle.Stop()
		idleC = idle.C
	}
	var tickC <-chan time.Time
	if in.cfg.CheckpointEvery > 0 {
		tick := time.NewTicker(in.cfg.CheckpointEvery)
		defer tick.Stop()
		tickC = tick.C
	}
	var out []graph.Interaction
	fail := func(err error) {
		in.runErr.Store(&err)
		in.markStopped()
		close(in.folds)
		in.wal.Close()
	}
	for {
		out = out[:0]
		select {
		case e := <-in.intake:
			in.take(e, &out)
			// Drain whatever else is queued before touching the WAL, so
			// one record covers the whole burst.
		burst:
			for len(out) < in.cfg.ChunkEdges {
				select {
				case e := <-in.intake:
					in.take(e, &out)
				default:
					break burst
				}
			}
			if idle != nil {
				if !idle.Stop() {
					select {
					case <-idle.C:
					default:
					}
				}
				idle.Reset(in.cfg.IdleFlush)
			}
			if err := in.absorb(out); err != nil {
				fail(err)
				return
			}
			if err := in.compactWAL(); err != nil {
				fail(err)
				return
			}
		case <-idleC:
			in.buf.flush(&out)
			idle.Reset(in.cfg.IdleFlush)
			if err := in.absorb(out); err != nil {
				fail(err)
				return
			}
			if err := in.compactWAL(); err != nil {
				fail(err)
				return
			}
		case <-tickC:
			if err := in.maybeCheckpoint(false, "interval"); err != nil {
				fail(err)
				return
			}
			if err := in.compactWAL(); err != nil {
				fail(err)
				return
			}
		case done := <-in.force:
			// Absorb everything already queued so the checkpoint covers
			// every edge Push accepted before the call (edges still inside
			// the reorder slack stay buffered: a forced checkpoint must not
			// collapse the watermark and turn future stragglers into drops).
		forced:
			for {
				select {
				case e := <-in.intake:
					in.take(e, &out)
				default:
					break forced
				}
			}
			err := in.absorb(out)
			if err == nil {
				err = in.maybeCheckpoint(true, "forced")
			}
			if err == nil {
				err = in.compactWAL()
			}
			done <- err
			if err != nil {
				fail(err)
				return
			}
		case req := <-in.advance:
			if req.epoch <= in.wal.Epoch() {
				// A caller error, not a pipeline failure: refuse without
				// killing the run loop.
				req.done <- fmt.Errorf("stream: epoch %d does not advance past %d", req.epoch, in.wal.Epoch())
				continue
			}
			// Absorb everything already queued so the sealed tail covers
			// every edge accepted under the old epoch, then rotate into a
			// segment stamped with the new one.
		adv:
			for {
				select {
				case e := <-in.intake:
					in.take(e, &out)
				default:
					break adv
				}
			}
			err := in.absorb(out)
			if err == nil {
				err = in.wal.AdvanceEpoch(req.epoch)
			}
			if err == nil {
				in.epoch.Store(req.epoch)
			}
			req.done <- err
			if err != nil {
				fail(err)
				return
			}
		case <-in.stopped:
			// Final drain: edges already queued are accepted; then flush
			// the buffer, seal, checkpoint, and stop the compactor.
		drain:
			for {
				select {
				case e := <-in.intake:
					in.take(e, &out)
				default:
					break drain
				}
			}
			in.buf.flush(&out)
			err := in.absorb(out)
			if err == nil {
				err = in.sealPending()
			}
			if err == nil && int64(in.inc.EdgeCount()) > in.ckptEdges.Load() {
				err = in.checkpointNow("final")
			}
			if err == nil {
				err = in.compactWAL()
			}
			if err != nil {
				in.runErr.Store(&err)
			}
			close(in.folds)
			if cerr := in.wal.Close(); cerr != nil && in.runErr.Load() == nil {
				in.runErr.Store(&cerr)
			}
			return
		}
	}
}

// take routes one arrival through the reorder buffer. Only edges the
// buffer actually accepts count as accepted — a reorder-dropped edge
// never enters the pipeline, so counting it would break the invariant
// that Accepted − Emitted bounds the buffered depth.
func (in *Ingester) take(e graph.Interaction, out *[]graph.Interaction) {
	rec := in.tr.SampleAccept(e)
	if !in.buf.offer(e, rec, out) {
		in.tr.Cancel(rec)
		in.drops.Add(1)
		return
	}
	in.accepted.Add(1)
	in.mx.accepted.Inc()
}

// absorb logs and stages a drained batch, sealing chunks as they fill
// and applying the edge-count checkpoint trigger.
func (in *Ingester) absorb(out []graph.Interaction) error {
	in.bufDepth.Store(int64(in.buf.depth()))
	if in.buf.seen {
		in.wmLag.Store(int64(in.buf.maxSeen - in.buf.wm))
	}
	if len(out) == 0 {
		return nil
	}
	// base is the emit index of out[0]: the reorder buffer assigned
	// indices base..base+len(out)-1 as it drained this batch.
	base := in.emitted.Load()
	// Cap record size at the chunk size: a crash then loses at most one
	// bounded record, and replay allocations stay proportional to it.
	for lo := 0; lo < len(out); lo += in.cfg.ChunkEdges {
		hi := min(lo+in.cfg.ChunkEdges, len(out))
		syncsBefore := in.wal.SyncCount()
		if err := in.wal.Append(out[lo:hi]); err != nil {
			return fmt.Errorf("stream: wal append: %w", err)
		}
		in.tr.StampThrough(trace.StageWALAppend, base+int64(hi))
		if in.wal.SyncCount() != syncsBefore {
			in.tr.StampThrough(trace.StageWALFsync, base+int64(hi))
		}
	}
	in.emitted.Add(int64(len(out)))
	in.mx.emitted.Add(int64(len(out)))
	in.lastAt.Store(int64(out[len(out)-1].At))
	if sink := in.emitSink.Load(); sink != nil {
		// The batch is logged (appended, possibly not yet fsynced) before
		// the sink sees it, so a replica can never apply an edge the
		// primary's WAL has no record of. The sink runs on the run loop
		// and must not retain the slice.
		(*sink)(base, out)
	}
	if in.profiles != nil {
		if err := in.profiles.ObserveBatch(out); err != nil {
			return fmt.Errorf("stream: profiles: %w", err)
		}
	}
	in.pending = append(in.pending, out...)
	for len(in.pending) >= in.cfg.ChunkEdges {
		if err := in.seal(in.pending[:in.cfg.ChunkEdges]); err != nil {
			return err
		}
		// seal copied the chunk, so resliding past it is safe even though
		// later appends reuse the backing array.
		in.pending = in.pending[in.cfg.ChunkEdges:]
	}
	if in.cfg.CheckpointEdges > 0 && in.sinceCkpt+len(in.pending) >= in.cfg.CheckpointEdges {
		return in.maybeCheckpoint(false, "edges")
	}
	return nil
}

// seal appends one chunk to the incremental state, growing the node
// range to fit. The slice is copied: AppendChunk retains its argument
// and callers reuse their buffers.
func (in *Ingester) seal(edges []graph.Interaction) error {
	if len(edges) == 0 {
		return nil
	}
	n := in.inc.NumNodes()
	for _, e := range edges {
		if m := int(max(e.Src, e.Dst)) + 1; m > n {
			n = m
		}
	}
	start := time.Now()
	cp := append([]graph.Interaction(nil), edges...)
	if err := in.inc.AppendChunk(cp, n); err != nil {
		return fmt.Errorf("stream: seal chunk: %w", err)
	}
	in.mx.chunks.Inc()
	in.sinceCkpt += len(edges)
	if in.sealLive {
		// EdgeCount after the append is exactly the emit index one past
		// the sealed chunk's last edge.
		in.tr.StampThrough(trace.StageChunkSeal, int64(in.inc.EdgeCount()))
		if in.profiles != nil {
			// Chunk sealing is the natural batch boundary for the window
			// cleanup: force the profiles' vhll.Prune so per-node counter
			// state sheds entries no admissible sliding-window query can
			// still observe, keeping the live top-k view's memory
			// proportional to the window rather than the stream. The
			// chunk's block-local sketches are NOT pruned — fold output
			// must stay byte-identical to the offline scan, and bounded
			// residency for them comes from chunk retirement instead.
			in.profiles.Prune()
		}
		in.jr.Record(trace.EventChunkSeal, "", time.Since(start), map[string]any{
			"edges": len(edges), "chunks": in.inc.NumChunks(),
		})
	}
	return nil
}

// sealPending seals whatever partial chunk is staged.
func (in *Ingester) sealPending() error {
	if len(in.pending) == 0 {
		return nil
	}
	err := in.seal(in.pending)
	in.pending = nil
	return err
}

// maybeCheckpoint seals the pending batch, makes the covered edges
// durable, and hands the snapshot to the compactor. When the compactor
// is still folding the previous snapshot, interval/edge triggers skip
// (counted) — before sealing anything: a skipped trigger must not seal
// the pending partial chunk, or every tick during a slow fold would
// seal another tiny chunk and permanently fragment the chunk sequence.
// Forced requests (wait=true) block until the fold lands.
func (in *Ingester) maybeCheckpoint(wait bool, cause string) error {
	if !wait && in.foldsPending.Load() > 0 {
		in.mx.checkpointSkips.Inc()
		return nil
	}
	if err := in.sealPending(); err != nil {
		return err
	}
	if int64(in.inc.EdgeCount()) == in.ckptEdges.Load() {
		return nil // nothing new to cover
	}
	// Shed chunks past the retention horizon before cutting the snapshot,
	// so the fold below only covers — and the checkpoint only claims —
	// the retained suffix.
	in.retire()
	// Sync here, on the WAL's owning goroutine, so the checkpoint never
	// claims edges the log could still lose.
	if err := in.wal.Sync(); err != nil {
		return fmt.Errorf("stream: checkpoint wal sync: %w", err)
	}
	// Everything emitted so far is appended and now fsynced.
	in.tr.StampThrough(trace.StageWALFsync, in.emitted.Load())
	job := foldJob{view: in.inc.View(), cause: cause, done: make(chan error, 1)}
	if in.profiles != nil {
		// The profile table is run-loop state: the top-k view is computed
		// here and published by the compactor after the checkpoint lands.
		job.hot = in.profiles.TopEntries(in.cfg.TopK)
	}
	in.foldsPending.Add(1)
	if wait {
		in.folds <- job
		if err := <-job.done; err != nil {
			return err
		}
		in.sinceCkpt = 0
		return nil
	}
	select {
	case in.folds <- job:
		in.sinceCkpt = 0
	default:
		// The compactor had not reached its receive yet (it decrements
		// between finishing a job and blocking again); treat as busy.
		in.foldsPending.Add(-1)
		in.mx.checkpointSkips.Inc()
	}
	return nil
}

// checkpointNow is maybeCheckpoint(wait=true) for paths that must not
// skip: recovery publish and the final Close checkpoint.
func (in *Ingester) checkpointNow(cause string) error { return in.maybeCheckpoint(true, cause) }

// compactor folds snapshots into checkpoints, one at a time, in order.
func (in *Ingester) compactor() {
	for job := range in.folds {
		err := in.checkpoint(job)
		in.foldsPending.Add(-1)
		job.done <- err
	}
}

// checkpoint persists the snapshot's new chunks as durable sidecars,
// folds it (incrementally, against the cached previous fold), writes
// the IRX1 snapshot and its metadata sidecar atomically, publishes, and
// finally deletes the sidecars of chunks the snapshot retired. Runs on
// the compactor goroutine; it touches no run-loop state beyond the
// immutable view. Sidecars go first: once they are durable the
// checkpoint may claim chunk coverage, and the run loop may delete the
// WAL segments they cover. Retired-sidecar deletion goes last, after
// the metadata recording the new retained range is durable — before
// that, the files are still recovery's only proof the floor moved.
func (in *Ingester) checkpoint(job foldJob) error {
	view, cause := job.view, job.cause
	start := time.Now()
	covered := int64(view.EdgeCount())
	if err := in.persistChunks(view); err != nil {
		return err
	}
	foldStart := time.Now()
	sum := view.Fold()
	foldDur := time.Since(foldStart)
	in.tr.StampThrough(trace.StageFold, covered)
	if err := in.writeCheckpoint(sum, view, foldDur); err != nil {
		return err
	}
	in.tr.StampThrough(trace.StageCheckpointWrite, covered)
	if err := in.retireSidecars(view); err != nil {
		return err
	}
	// Covered records are marked awaiting visibility before the handoff:
	// the serving layer's generation swap stamps serve_visible, or
	// FinishPublish completes them when nothing downstream will.
	in.tr.BeginPublish(covered)
	if in.cfg.Publish != nil {
		in.cfg.Publish(sum)
	}
	in.tr.FinishPublish()
	if in.profiles != nil {
		in.hot.Store(&HotView{
			Entries:      job.hot,
			CoveredEdges: covered,
			LastAt:       int64(view.LastAt()),
			RefreshedAt:  time.Now(),
		})
		in.mx.topkRefreshes.Inc()
		in.mx.topkSize.Set(int64(len(job.hot)))
	}
	sketchBytes := int64(view.MemoryBytes())
	in.sketchBytes.Store(sketchBytes)
	in.mx.sketchBytes.Set(sketchBytes)
	in.checkpoints.Add(1)
	in.ckptEdges.Store(covered)
	in.lastCkpt.Store(time.Now().UnixNano())
	in.mx.checkpoints.Inc()
	in.mx.checkpointDur.Observe(time.Since(start).Seconds())
	in.mx.checkpointEdges.Set(covered)
	in.jr.Record(trace.EventCheckpoint, cause, time.Since(start), map[string]any{
		"edges": covered, "chunks": view.NumChunks(), "first_chunk": view.FirstChunk(),
		"fold_ms": float64(foldDur) / 1e6,
	})
	return nil
}

// persistChunks writes a sidecar for every sealed chunk the snapshot
// holds beyond the durable prefix, then fsyncs the directory once and
// advances the covered timestamp the run loop compacts the WAL against.
func (in *Ingester) persistChunks(view core.ChunkView) error {
	n := view.NumChunks()
	if n <= in.durableChunks {
		return nil
	}
	start := time.Now()
	wrote := n - in.durableChunks
	for c := in.durableChunks; c < n; c++ {
		edges, locals := view.Chunk(c)
		if err := writeChunkFile(in.cfg.Dir, c, in.cfg.Omega, in.cfg.Precision, edges, locals, in.mx); err != nil {
			return fmt.Errorf("stream: chunk sidecar %d: %w", c, err)
		}
	}
	if err := syncDir(in.cfg.Dir); err != nil {
		return err
	}
	in.mx.dirSyncs.Inc()
	in.durableChunks = n
	in.durableAt.Store(int64(view.LastAt()))
	in.jr.Record(trace.EventChunkPersist, "", time.Since(start), map[string]any{
		"chunks": wrote, "durable": n,
	})
	return nil
}

// writeCheckpoint persists the folded summaries via tmp + rename so a
// crash mid-write never leaves a torn checkpoint file, then fsyncs the
// directory — without that, a crash after the rename could lose the
// dirent and resurrect the previous checkpoint (or none at all).
func (in *Ingester) writeCheckpoint(sum *core.ApproxSummaries, view core.ChunkView, foldDur time.Duration) error {
	start := time.Now()
	path := filepath.Join(in.cfg.Dir, CheckpointName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := sum.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("stream: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	meta := fmt.Sprintf(`{"edges":%d,"last_at":%d,"nodes":%d,"omega":%d,"precision":%d,"chunks":%d,"first_chunk":%d,"retired_edges":%d,"epoch":%d,"fold_seconds":%.6f,"write_seconds":%.6f}`+"\n",
		view.EdgeCount(), view.LastAt(), view.NumNodes(), in.cfg.Omega, in.cfg.Precision,
		view.NumChunks(), view.FirstChunk(), view.RetiredEdges(), in.epoch.Load(), foldDur.Seconds(), time.Since(start).Seconds())
	metaPath := filepath.Join(in.cfg.Dir, CheckpointMetaName)
	if err := os.WriteFile(metaPath+".tmp", []byte(meta), 0o644); err != nil {
		return err
	}
	if err := os.Rename(metaPath+".tmp", metaPath); err != nil {
		return err
	}
	if err := syncDir(in.cfg.Dir); err != nil {
		return err
	}
	in.mx.dirSyncs.Inc()
	return nil
}

// Checkpoint forces a synchronous checkpoint: it absorbs every edge
// Push accepted before the call (edges still held by the reorder slack
// stay buffered), seals the pending batch, folds, writes, and publishes
// before returning. ctx bounds the wait.
func (in *Ingester) Checkpoint(ctx context.Context) error {
	done := make(chan error, 1)
	select {
	case in.force <- done:
	case <-in.done:
		return errClosed
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Omega returns the influence window the ingester folds under.
func (in *Ingester) Omega() int64 { return in.cfg.Omega }

// Precision returns the vHLL sketch precision (after defaulting).
func (in *Ingester) Precision() int { return in.cfg.Precision }

// Dir returns the ingester's state directory.
func (in *Ingester) Dir() string { return in.cfg.Dir }

// Epoch returns the replication fencing epoch the WAL is writing under:
// 0 until a promotion ever touched this directory, and thereafter the
// epoch asserted at open or set by the latest AdvanceEpoch.
func (in *Ingester) Epoch() uint64 { return in.epoch.Load() }

// AdvanceEpoch absorbs every edge accepted so far, seals the active WAL
// segment, and starts a new one stamped with the given (strictly
// greater) epoch. This is the fencing half of replica promotion: once it
// returns, a writer still asserting the old epoch fails its next open of
// this directory with *FutureEpochError, and the ingester keeps
// accepting edges — now as the epoch's owner. ctx bounds the wait.
func (in *Ingester) AdvanceEpoch(ctx context.Context, epoch uint64) error {
	req := advanceReq{epoch: epoch, done: make(chan error, 1)}
	select {
	case in.advance <- req:
	case <-in.done:
		return errClosed
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case err := <-req.done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SetEmitSink installs (or, with nil, removes) the replication tap: fn
// observes every emitted batch, on the run loop, with base the emit
// index of batch[0], immediately after the batch was appended to the
// WAL. fn must be fast and must not retain the slice — encode and hand
// off. Batches emitted before the sink was installed are not replayed;
// internal/repl bridges the gap by reading the state directory.
func (in *Ingester) SetEmitSink(fn func(base int64, batch []graph.Interaction)) {
	if fn == nil {
		in.emitSink.Store(nil)
		return
	}
	in.emitSink.Store(&fn)
}

// SetWALFloor installs (or, with nil, removes) the replication retention
// floor: WAL compaction deletes a sealed segment only when every edge in
// it is at or below BOTH the durable-sidecar frontier and fn(). fn is
// called on the run loop and must be cheap; internal/repl wires it to
// the minimum acknowledged timestamp across connected replicas, so a
// lagging replica can always delta-sync from the primary's log.
func (in *Ingester) SetWALFloor(fn func() int64) {
	if fn == nil {
		in.walFloor.Store(nil)
		return
	}
	in.walFloor.Store(&fn)
}

// Close stops intake, drains queued edges, flushes the reorder buffer,
// seals, runs a final checkpoint when anything new was emitted, and
// closes the WAL. ctx bounds the wait for the run loop to finish.
func (in *Ingester) Close(ctx context.Context) error {
	in.markStopped()
	select {
	case <-in.done:
		return in.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Err returns the run loop's terminal error, nil while running or after
// a clean shutdown.
func (in *Ingester) Err() error {
	if p := in.runErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Stats returns a snapshot of the progress counters; safe from any
// goroutine.
func (in *Ingester) Stats() Stats {
	return Stats{
		Accepted:            in.accepted.Load(),
		Emitted:             in.emitted.Load(),
		ReorderDrops:        in.drops.Load(),
		Checkpoints:         in.checkpoints.Load(),
		LastAt:              in.lastAt.Load(),
		CoveredEdges:        in.ckptEdges.Load(),
		RecoveredChunkEdges: in.recoveredChunkEdges,
		RecoveredWALEdges:   in.recoveredWALEdges,
		RetiredChunks:       in.retiredChunks.Load(),
		RetiredEdges:        in.retiredEdges.Load(),
	}
}

// Health returns the live pipeline state for the /debug/pipeline
// endpoint: progress counters, watermark lag, reorder and intake depth,
// checkpoint age, and the on-disk footprint of the WAL, the chunk
// sidecars, and the checkpoint. Safe from any goroutine; the disk
// numbers come from a directory listing, not run-loop state.
func (in *Ingester) Health() map[string]any {
	st := in.Stats()
	h := map[string]any{
		"accepted":              st.Accepted,
		"emitted":               st.Emitted,
		"reorder_drops":         st.ReorderDrops,
		"checkpoints":           st.Checkpoints,
		"covered_edges":         st.CoveredEdges,
		"last_at":               st.LastAt,
		"watermark_lag":         in.wmLag.Load(),
		"reorder_depth":         in.bufDepth.Load(),
		"intake_queued":         len(in.intake),
		"recovered_chunk_edges": st.RecoveredChunkEdges,
		"recovered_wal_edges":   st.RecoveredWALEdges,
		"retired_chunks":        st.RetiredChunks,
		"retired_edges":         st.RetiredEdges,
		"sketch_bytes":          in.sketchBytes.Load(),
	}
	if at := in.lastCkpt.Load(); at > 0 {
		h["checkpoint_age_seconds"] = time.Since(time.Unix(0, at)).Seconds()
	}
	var walBytes, chunkBytes, ckptBytes int64
	var walSegs, chunkFiles int
	for _, g := range []struct {
		pat   string
		bytes *int64
		files *int
	}{
		{"wal-*.seg", &walBytes, &walSegs},
		{"chunk-*.blk", &chunkBytes, &chunkFiles},
		{CheckpointName, &ckptBytes, nil},
	} {
		names, _ := filepath.Glob(filepath.Join(in.cfg.Dir, g.pat))
		for _, name := range names {
			if fi, err := os.Stat(name); err == nil {
				*g.bytes += fi.Size()
				if g.files != nil {
					*g.files++
				}
			}
		}
	}
	h["disk"] = map[string]any{
		"wal_bytes": walBytes, "wal_segments": walSegs,
		"chunk_bytes": chunkBytes, "chunk_files": chunkFiles,
		"checkpoint_bytes": ckptBytes,
		"total_bytes":      walBytes + chunkBytes + ckptBytes,
	}
	return h
}

// Hot returns the k nodes with the largest sliding-window out-
// neighborhood profiles, nil unless Config.ProfileWindow enabled them.
// While the ingester runs it answers from the top-k view the compactor
// published with the latest checkpoint (nil before the first one, and
// truncated to Config.TopK entries); after Close it reads the final
// profile table directly — the run loop has exited, so the exact
// end-of-run state is safe to walk.
func (in *Ingester) Hot(k int) []graph.NodeID {
	select {
	case <-in.done:
		if in.profiles == nil {
			return nil
		}
		return in.profiles.Top(k)
	default:
	}
	hv := in.hot.Load()
	if hv == nil {
		return nil
	}
	if k > len(hv.Entries) {
		k = len(hv.Entries)
	}
	out := make([]graph.NodeID, k)
	for i := range out {
		out[i] = hv.Entries[i].Node
	}
	return out
}

// TopK returns the latest published top-k influencer view with scores
// and provenance (which checkpoint, how fresh), nil before the first
// checkpoint or when Config.ProfileWindow is zero. The snapshot is
// immutable; callers may retain it.
func (in *Ingester) TopK() *HotView { return in.hot.Load() }
