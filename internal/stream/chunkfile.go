package stream

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"

	"ipin/internal/graph"
	"ipin/internal/vhll"
)

// Chunk sidecars: the durable form of sealed chunks, what makes recovery
// cost proportional to the WAL suffix instead of the whole log. Every
// time the compactor runs, it first persists each newly sealed chunk —
// its edges AND its block-local reverse-scan sketches — as one sidecar
// file, so a restart can rebuild the incremental state with
// AppendSealedChunk instead of replaying and rescanning the full WAL.
// Once a chunk batch is durable (files written, directory fsynced), the
// WAL segments it covers are dead weight and DeleteCovered reclaims
// them.
//
// Layout (normative spec in DESIGN.md): one file per sealed chunk,
// chunk-%08d.blk, numbered by chunk index from zero. A file starts with
// the 8-byte header "ICHK0001" and holds exactly one record framed like
// a WAL record:
//
//	uint32 LE payload length | uint32 LE CRC-32C of payload | payload
//
// The payload is: uvarint chunk index (must match the file name),
// uvarint omega, uvarint precision, uvarint node range at seal time,
// uvarint edge-block length followed by the edges in WAL record
// encoding (uvarint count, per edge uvarint src/dst, varint absolute
// first timestamp then uvarint deltas), uvarint populated-sketch count,
// then per populated node in ascending order: uvarint node id, uvarint
// sketch length, and the sketch in vhll VHL1 encoding.
//
// Crash safety: files are written tmp + fsync + rename, so a sidecar
// that EXISTS under its final name is complete — any content damage is
// real corruption and fails recovery. Renames can still hit the
// directory out of order before the batch's dir fsync, so recovery
// loads only the contiguous prefix chunk-0..chunk-k and deletes any
// orphan past a gap; the WAL still covers those edges, because segments
// are only deleted after the sidecar batch (and its dir fsync) landed.

// chunkMagic is the sidecar header.
var chunkMagic = [8]byte{'I', 'C', 'H', 'K', '0', '0', '0', '1'}

// chunkFilePattern matches sidecar files inside the state directory.
const chunkFilePattern = "chunk-*.blk"

// chunkFileName renders the sidecar file name of chunk index i.
func chunkFileName(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("chunk-%08d.blk", i))
}

// chunkFileIndex parses the chunk index out of a sidecar file name.
// Width-free %d, not %08d: a scan width caps the digits read, which
// would misparse indices past the zero-padded range.
func chunkFileIndex(name string) (int, error) {
	var i int
	if _, err := fmt.Sscanf(filepath.Base(name), "chunk-%d.blk", &i); err != nil {
		return 0, fmt.Errorf("stream: chunk file name %q: %v", name, err)
	}
	return i, nil
}

// chunkData is one decoded sidecar.
type chunkData struct {
	index     int
	omega     int64
	precision int
	numNodes  int
	edges     []graph.Interaction
	locals    []*vhll.Sketch
}

// encodeChunkPayload renders the sidecar payload for sealed chunk i.
func encodeChunkPayload(i int, omega int64, precision int, edges []graph.Interaction, locals []*vhll.Sketch) ([]byte, error) {
	var tmp [binary.MaxVarintLen64]byte
	put := func(buf []byte, v uint64) []byte {
		n := binary.PutUvarint(tmp[:], v)
		return append(buf, tmp[:n]...)
	}
	buf := make([]byte, 0, 16+9*len(edges))
	buf = put(buf, uint64(i))
	buf = put(buf, uint64(omega))
	buf = put(buf, uint64(precision))
	buf = put(buf, uint64(len(locals)))
	eb := encodeRecord(edges)
	buf = put(buf, uint64(len(eb)))
	buf = append(buf, eb...)
	populated := 0
	for _, sk := range locals {
		if sk != nil {
			populated++
		}
	}
	buf = put(buf, uint64(populated))
	for u, sk := range locals {
		if sk == nil {
			continue
		}
		sb, err := sk.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("stream: chunk %d sketch %d: %w", i, u, err)
		}
		buf = put(buf, uint64(u))
		buf = put(buf, uint64(len(sb)))
		buf = append(buf, sb...)
	}
	return buf, nil
}

// decodeChunkPayload parses one sidecar payload.
func decodeChunkPayload(payload []byte) (*chunkData, error) {
	take := func(what string) (uint64, error) {
		v, n := binary.Uvarint(payload)
		if n <= 0 {
			return 0, fmt.Errorf("bad %s", what)
		}
		payload = payload[n:]
		return v, nil
	}
	idx, err := take("chunk index")
	if err != nil {
		return nil, err
	}
	omega, err := take("omega")
	if err != nil {
		return nil, err
	}
	prec, err := take("precision")
	if err != nil {
		return nil, err
	}
	nodes, err := take("node count")
	if err != nil {
		return nil, err
	}
	if idx > math.MaxInt32 || omega == 0 || omega > math.MaxInt64 || prec > 64 || nodes > math.MaxInt32 {
		return nil, fmt.Errorf("implausible header (index %d, omega %d, precision %d, nodes %d)", idx, omega, prec, nodes)
	}
	elen, err := take("edge block length")
	if err != nil {
		return nil, err
	}
	if elen > uint64(len(payload)) {
		return nil, fmt.Errorf("edge block length %d exceeds payload", elen)
	}
	var edges []graph.Interaction
	lastAt := int64(math.MinInt64)
	if err := decodeRecord(payload[:elen], &edges, &lastAt); err != nil {
		return nil, fmt.Errorf("edge block: %v", err)
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("empty chunk")
	}
	payload = payload[elen:]
	count, err := take("sketch count")
	if err != nil {
		return nil, err
	}
	if count > nodes {
		return nil, fmt.Errorf("sketch count %d exceeds %d nodes", count, nodes)
	}
	locals := make([]*vhll.Sketch, nodes)
	prev := -1
	for s := uint64(0); s < count; s++ {
		u, err := take("sketch node")
		if err != nil {
			return nil, err
		}
		if u >= nodes || int(u) <= prev {
			return nil, fmt.Errorf("sketch node %d out of order or range", u)
		}
		slen, err := take("sketch length")
		if err != nil {
			return nil, err
		}
		if slen > uint64(len(payload)) {
			return nil, fmt.Errorf("sketch %d length %d exceeds payload", u, slen)
		}
		var sk vhll.Sketch
		if err := sk.UnmarshalBinary(payload[:slen]); err != nil {
			return nil, fmt.Errorf("sketch %d: %v", u, err)
		}
		if sk.Precision() != int(prec) {
			return nil, fmt.Errorf("sketch %d precision %d, header says %d", u, sk.Precision(), prec)
		}
		payload = payload[slen:]
		locals[u] = &sk
		prev = int(u)
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("%d trailing bytes", len(payload))
	}
	return &chunkData{
		index:     int(idx),
		omega:     int64(omega),
		precision: int(prec),
		numNodes:  int(nodes),
		edges:     edges,
		locals:    locals,
	}, nil
}

// writeChunkFile persists sealed chunk i via tmp + fsync + rename. The
// caller fsyncs the directory once per batch.
func writeChunkFile(dir string, i int, omega int64, precision int, edges []graph.Interaction, locals []*vhll.Sketch, mx *metrics) error {
	payload, err := encodeChunkPayload(i, omega, precision, edges, locals)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, len(chunkMagic)+walFrameBytes+len(payload))
	buf = append(buf, chunkMagic[:]...)
	var frame [walFrameBytes]byte
	binary.LittleEndian.PutUint32(frame[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, walCRC))
	buf = append(buf, frame[:]...)
	buf = append(buf, payload...)

	path := chunkFileName(dir, i)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	mx.chunkFiles.Inc()
	mx.chunkFileBytes.Add(int64(len(buf)))
	return nil
}

// readChunkFile reads and validates one sidecar; the decoded index must
// match want (the index implied by the file name and load order).
func readChunkFile(name string, want int) (*chunkData, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if len(data) < len(chunkMagic)+walFrameBytes {
		return nil, fmt.Errorf("stream: chunk file %s: short header", name)
	}
	if string(data[:len(chunkMagic)]) != string(chunkMagic[:]) {
		return nil, fmt.Errorf("stream: chunk file %s: bad magic", name)
	}
	rest := data[len(chunkMagic):]
	plen := int64(binary.LittleEndian.Uint32(rest))
	sum := binary.LittleEndian.Uint32(rest[4:])
	if plen > maxRecordBytes || int64(len(rest)) != walFrameBytes+plen {
		return nil, fmt.Errorf("stream: chunk file %s: bad length %d for %d-byte file", name, plen, len(data))
	}
	payload := rest[walFrameBytes:]
	if crc32.Checksum(payload, walCRC) != sum {
		return nil, fmt.Errorf("stream: chunk file %s: checksum mismatch", name)
	}
	c, err := decodeChunkPayload(payload)
	if err != nil {
		return nil, fmt.Errorf("stream: chunk file %s: %v", name, err)
	}
	if c.index != want {
		return nil, fmt.Errorf("stream: chunk file %s holds index %d", name, c.index)
	}
	return c, nil
}

// loadChunks reads the contiguous sidecar run chunk-floor..chunk-k from
// dir. floor is the first retained chunk index recorded by the durable
// checkpoint metadata: files BELOW it were retired — their deletion is
// allowed only after that metadata landed, so any still on disk are the
// leftovers of a crash mid-retirement and are deleted here. Files past a
// gap in the index sequence are orphans — renames that landed without
// their batch's dir fsync before a crash — and are deleted (their edges
// are still in the WAL, which is only compacted after a batch is fully
// durable). A sidecar that exists but fails validation is real
// corruption and fails the load: its content was fsynced before the
// rename, so presence implies completeness.
func loadChunks(dir string, floor int) ([]*chunkData, error) {
	names, err := filepath.Glob(filepath.Join(dir, chunkFilePattern))
	if err != nil {
		return nil, err
	}
	byIndex := make(map[int]string, len(names))
	indices := make([]int, 0, len(names))
	removedOrphans := false
	for _, name := range names {
		i, err := chunkFileIndex(name)
		if err != nil {
			return nil, err
		}
		if i < floor {
			if err := os.Remove(name); err != nil && !os.IsNotExist(err) {
				return nil, err
			}
			removedOrphans = true
			continue
		}
		byIndex[i] = name
		indices = append(indices, i)
	}
	sort.Ints(indices)
	var chunks []*chunkData
	for len(chunks) < len(indices) && indices[len(chunks)] == floor+len(chunks) {
		next := floor + len(chunks)
		c, err := readChunkFile(byIndex[next], next)
		if err != nil {
			return nil, err
		}
		chunks = append(chunks, c)
	}
	for _, i := range indices[len(chunks):] {
		if err := os.Remove(byIndex[i]); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
		removedOrphans = true
	}
	// Stray tmp files from an interrupted write are garbage by definition.
	tmps, err := filepath.Glob(filepath.Join(dir, chunkFilePattern+".tmp"))
	if err != nil {
		return nil, err
	}
	for _, name := range tmps {
		if err := os.Remove(name); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
		removedOrphans = true
	}
	if removedOrphans {
		if err := syncDir(dir); err != nil {
			return nil, err
		}
	}
	return chunks, nil
}
