package stream

import (
	"container/heap"

	"ipin/internal/graph"
	"ipin/internal/trace"
)

// Reordering buffer: live sources deliver edges roughly — not exactly —
// in timestamp order, while everything downstream (WAL, chunk scans, the
// paper's algorithms) requires a strictly increasing sequence. The buffer
// holds arrivals in a min-heap keyed by timestamp and releases them once
// the watermark passes: an edge leaves only when every edge that could
// still legally precede it has had its chance to arrive.
//
// The watermark is maxSeen − slack, where maxSeen is the largest
// timestamp observed so far and slack is the configured out-of-order
// tolerance in ticks. An arrival with a timestamp strictly below the
// already-drained watermark cannot be sequenced without rewriting emitted
// history, so it is dropped and counted (stream_reorder_drops_total) —
// the standard bounded-disorder contract of streaming watermarks.
//
// Emission applies the same de-tie rule as graph.Log.Detie: a released
// edge whose timestamp does not exceed the previously emitted one is
// bumped one tick past it, keeping the emitted log strictly increasing
// while preserving order. Ties between buffered edges break by arrival
// order, so the emitted sequence is a deterministic function of the
// arrival sequence — which is what makes WAL replay reproducible.
type reorder struct {
	slack   int64
	h       edgeHeap
	seq     uint64
	maxSeen graph.Time
	seen    bool
	wm      graph.Time // watermark already drained through (original stamps)
	lastOut graph.Time // last emitted (possibly bumped) timestamp
	emitted bool
	drops   int64
	bumps   int64
	count   int64 // edges emitted so far (the next edge's emit index)
	mx      *metrics
	tr      *trace.Tracer
}

// heapEntry carries a buffered edge plus, for sampled edges, the trace
// record that co-travels with it until emission assigns an emit index.
type heapEntry struct {
	e   graph.Interaction
	rec *trace.Record
	seq uint64
}

type edgeHeap []heapEntry

func (h edgeHeap) Len() int { return len(h) }
func (h edgeHeap) Less(i, j int) bool {
	if h[i].e.At != h[j].e.At {
		return h[i].e.At < h[j].e.At
	}
	return h[i].seq < h[j].seq
}
func (h edgeHeap) Swap(i, j int)    { h[i], h[j] = h[j], h[i] }
func (h *edgeHeap) Push(x any)      { *h = append(*h, x.(heapEntry)) }
func (h *edgeHeap) Pop() any        { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h edgeHeap) peek() graph.Time { return h[0].e.At }

func newReorder(slack int64, mx *metrics, tr *trace.Tracer) *reorder {
	if mx == nil {
		mx = &metrics{}
	}
	return &reorder{slack: slack, mx: mx, tr: tr}
}

// offer accepts an arrival into the buffer and drains everything the
// advanced watermark releases into out, in timestamp order. It reports
// whether the edge was accepted (false = dropped as too late). rec is the
// edge's trace record (nil for unsampled edges); it rides the heap entry
// and is registered with its emit index on release.
func (r *reorder) offer(e graph.Interaction, rec *trace.Record, out *[]graph.Interaction) bool {
	if r.seen && e.At < r.wm {
		r.drops++
		r.mx.drops.Inc()
		return false
	}
	heap.Push(&r.h, heapEntry{e: e, rec: rec, seq: r.seq})
	r.seq++
	if !r.seen || e.At > r.maxSeen {
		r.maxSeen = e.At
		r.seen = true
	}
	if wm := r.maxSeen - graph.Time(r.slack); wm > r.wm || (r.wm == 0 && !r.emitted) {
		r.wm = wm
	}
	r.drainTo(r.wm, out)
	r.mx.reorderDepth.Set(int64(len(r.h)))
	r.mx.watermarkLag.Set(int64(r.maxSeen - r.wm))
	return true
}

// flush releases every buffered edge regardless of slack — end of input,
// or an idle stream whose watermark would otherwise never advance. The
// watermark jumps to maxSeen, so later stragglers below it are dropped.
func (r *reorder) flush(out *[]graph.Interaction) {
	if r.wm < r.maxSeen {
		r.wm = r.maxSeen
	}
	r.drainTo(r.wm, out)
	r.mx.reorderDepth.Set(int64(len(r.h)))
	r.mx.watermarkLag.Set(0)
}

// drainTo pops every buffered edge with an original timestamp ≤ wm,
// applying the de-tie bump on emission.
func (r *reorder) drainTo(wm graph.Time, out *[]graph.Interaction) {
	for len(r.h) > 0 && r.h.peek() <= wm {
		ent := heap.Pop(&r.h).(heapEntry)
		e := ent.e
		if r.emitted && e.At <= r.lastOut {
			e.At = r.lastOut + 1
			r.bumps++
			r.mx.detie.Inc()
		}
		r.lastOut = e.At
		r.emitted = true
		if ent.rec != nil {
			// r.count is exactly this edge's position in the emitted
			// sequence — the coordinate every later stage stamps by.
			r.tr.Emitted(ent.rec, r.count)
		}
		r.count++
		*out = append(*out, e)
	}
}

// depth returns the number of buffered edges.
func (r *reorder) depth() int { return len(r.h) }
