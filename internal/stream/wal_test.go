package stream

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ipin/internal/graph"
)

// randomBatches builds a strictly-increasing-time edge sequence split
// into random batches, the shape Append receives from the run loop.
func randomBatches(rng *rand.Rand, n, m int) [][]graph.Interaction {
	at := graph.Time(rng.Int63n(100))
	var all []graph.Interaction
	for i := 0; i < m; i++ {
		at += graph.Time(1 + rng.Int63n(5))
		all = append(all, graph.Interaction{
			Src: graph.NodeID(rng.Intn(n)),
			Dst: graph.NodeID(rng.Intn(n)),
			At:  at,
		})
	}
	var batches [][]graph.Interaction
	for lo := 0; lo < len(all); {
		hi := lo + 1 + rng.Intn(len(all)-lo)
		batches = append(batches, all[lo:hi])
		lo = hi
	}
	return batches
}

func flatten(batches [][]graph.Interaction) []graph.Interaction {
	var all []graph.Interaction
	for _, b := range batches {
		all = append(all, b...)
	}
	return all
}

// TestWALRoundTrip: append batches, close, reopen, and get the same
// edge sequence back — across segment rotations.
func TestWALRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		dir := t.TempDir()
		// Tiny segments force rotations mid-stream.
		cfg := WALConfig{SegmentBytes: 256, SyncEvery: -1}
		w, recovered, err := OpenWAL(dir, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(recovered) != 0 {
			t.Fatalf("fresh WAL recovered %d edges", len(recovered))
		}
		batches := randomBatches(rng, 50, 200)
		for _, b := range batches {
			if err := w.Append(b); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		w2, got, err := OpenWAL(dir, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := flatten(batches)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: replay mismatch: got %d edges, want %d", trial, len(got), len(want))
		}
		if w2.Segments() < 2 {
			t.Fatalf("expected rotations, got %d segments", w2.Segments())
		}
		// The reopened WAL must still be appendable.
		tail := []graph.Interaction{{Src: 1, Dst: 2, At: want[len(want)-1].At + 1}}
		if err := w2.Append(tail); err != nil {
			t.Fatal(err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		_, got3, err := OpenWAL(dir, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got3, append(want, tail...)) {
			t.Fatal("append after reopen lost edges")
		}
	}
}

// TestWALTornTail: truncating the final segment at every possible byte
// offset must recover exactly the record-aligned prefix, never error.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	cfg := WALConfig{SegmentBytes: 1 << 20, SyncEvery: -1}
	w, _, err := OpenWAL(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var all []graph.Interaction
	at := graph.Time(0)
	for i := 0; i < 20; i++ {
		var batch []graph.Interaction
		for j := 0; j < 5; j++ {
			at++
			batch = append(batch, graph.Interaction{Src: graph.NodeID(i), Dst: graph.NodeID(j), At: at})
		}
		if err := w.Append(batch); err != nil {
			t.Fatal(err)
		}
		all = append(all, batch...)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "wal-00000001.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries: replay counts must be non-increasing in cut
	// position and equal to the number of fully persisted records.
	for cut := len(data); cut >= 0; cut -= 7 {
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, "wal-00000001.seg"), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, got, err := OpenWAL(dir2, cfg, nil)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got)%5 != 0 {
			t.Fatalf("cut %d: recovered %d edges, not record-aligned", cut, len(got))
		}
		for i, e := range got {
			if e != all[i] {
				t.Fatalf("cut %d: recovered edge %d = %+v, want %+v", cut, i, e, all[i])
			}
		}
		// The truncated log must accept appends continuing from its tail.
		next := graph.Time(1)
		if len(got) > 0 {
			next = got[len(got)-1].At + 1
		}
		if err := w2.Append([]graph.Interaction{{Src: 0, Dst: 1, At: next}}); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		_, got2, err := OpenWAL(dir2, cfg, nil)
		if err != nil {
			t.Fatalf("cut %d: reopen after append: %v", cut, err)
		}
		if len(got2) != len(got)+1 {
			t.Fatalf("cut %d: %d edges after append, want %d", cut, len(got2), len(got)+1)
		}
	}
}

// TestWALCorruptEarlierSegmentFatal: damage outside the final segment
// must fail the open instead of silently dropping history.
func TestWALCorruptEarlierSegmentFatal(t *testing.T) {
	dir := t.TempDir()
	cfg := WALConfig{SegmentBytes: 128, SyncEvery: -1}
	w, _, err := OpenWAL(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		if err := w.Append([]graph.Interaction{{Src: 0, Dst: 1, At: graph.Time(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Segments() < 3 {
		t.Fatalf("want >= 3 segments, got %d", w.Segments())
	}
	first := filepath.Join(dir, "wal-00000001.seg")
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // flip a payload byte: CRC mismatch
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(dir, cfg, nil); err == nil {
		t.Fatal("corrupt non-final segment accepted")
	}
}

// TestWALBadMagic: a segment with the wrong header is rejected.
func TestWALBadMagic(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-00000001.seg"), []byte("NOTAWAL!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(dir, WALConfig{}, nil); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestWALHeaderTorn: a final segment cut inside its 8-byte header is
// rebuilt empty and stays usable.
func TestWALHeaderTorn(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-00000003.seg"), []byte("IWA"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, got, err := OpenWAL(dir, WALConfig{SyncEvery: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("recovered %d edges from torn header", len(got))
	}
	if err := w.Append([]graph.Interaction{{Src: 0, Dst: 1, At: 5}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, got2, err := OpenWAL(dir, WALConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 1 || got2[0].At != 5 {
		t.Fatalf("rebuilt segment replayed %v", got2)
	}
}
