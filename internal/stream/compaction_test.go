package stream

import (
	"bytes"
	"context"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"ipin/internal/core"
	"ipin/internal/graph"
	"ipin/internal/obs"
	"ipin/internal/vhll"
)

// Regression tests for the incremental-checkpoint / WAL-compaction work:
// chunk sidecar durability, covered-segment deletion, and the sweep of
// live-pipeline fixes (pending-chunk fragmentation, accepted-count
// inflation, numeric segment ordering, live checkpoint age).

// pollUntil spins until cond holds or the deadline passes.
func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCheckpointSkipKeepsPendingUnsealed: while the compactor is busy,
// edge-triggered checkpoints must skip WITHOUT sealing the pending
// partial chunk. The old code sealed first and skipped after, so every
// trigger during a slow fold sealed another tiny chunk — with
// CheckpointEdges=5 and a stalled publish this fragmented a 100-edge
// stream into ~20 five-edge chunks. Fixed, the stream seals a handful.
func TestCheckpointSkipKeepsPendingUnsealed(t *testing.T) {
	reg := obs.NewRegistry()
	started := make(chan struct{})
	gate := make(chan struct{})
	var pubs atomic.Int32
	in, err := New(Config{
		Dir:             t.TempDir(),
		Omega:           50,
		Precision:       4,
		ChunkEdges:      1000,
		CheckpointEdges: 5,
		CheckpointEvery: -1,
		SyncEvery:       -1,
		Registry:        reg,
		Publish: func(*core.ApproxSummaries) {
			if pubs.Add(1) == 1 {
				close(started)
				<-gate // stall the compactor mid-checkpoint
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Push one edge at a time, waiting for each to be absorbed: the run
	// loop coalesces queued bursts into one batch, and fragmentation only
	// shows when separate absorbs re-trigger the edge threshold.
	push := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if err := in.Push(graph.Interaction{Src: graph.NodeID(i % 7), Dst: graph.NodeID(i % 5), At: graph.Time(i + 1)}); err != nil {
				t.Fatal(err)
			}
			want := int64(i + 1)
			pollUntil(t, "edge absorption", func() bool { return in.Stats().Emitted == want })
		}
	}
	push(0, 5) // reaches the edge trigger, submits checkpoint #1
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("first checkpoint never started")
	}
	push(5, 100) // every absorb past the threshold re-triggers; all must skip
	pollUntil(t, "a skipped checkpoint", func() bool {
		return reg.Snapshot()[MetricCheckpointSkip].(int64) >= 1
	})
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if got := in.inc.NumChunks(); got > 4 {
		t.Fatalf("stalled compactor fragmented the stream into %d chunks", got)
	}
	if st := in.Stats(); st.Emitted != 100 {
		t.Fatalf("emitted = %d, want 100", st.Emitted)
	}
}

// TestAcceptedExcludesDrops: an edge the reorder buffer rejects never
// enters the pipeline and must not count as accepted. The old code
// incremented Accepted before offering, so Accepted − Emitted drifted
// upward by one per drop and no longer bounded the buffered depth.
func TestAcceptedExcludesDrops(t *testing.T) {
	in, err := New(Config{Dir: t.TempDir(), Omega: 10, Precision: 4, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []graph.Time{10, 20, 15, 30} { // 15 is a late straggler
		if err := in.Push(graph.Interaction{Src: 0, Dst: 1, At: at}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	if st.ReorderDrops != 1 {
		t.Fatalf("drops = %d, want 1", st.ReorderDrops)
	}
	if st.Accepted != 3 {
		t.Fatalf("accepted = %d, want 3 (dropped straggler must not count)", st.Accepted)
	}
	if st.Emitted != 3 {
		t.Fatalf("emitted = %d, want 3", st.Emitted)
	}
}

// TestCheckpointAgeLive: stream_checkpoint_age_seconds must be computed
// at exposition time. The old gauge was only refreshed inside Stats(),
// so a scrape that never called Stats read a stale age forever.
func TestCheckpointAgeLive(t *testing.T) {
	reg := obs.NewRegistry()
	in, err := New(Config{Dir: t.TempDir(), Omega: 10, CheckpointEvery: -1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer in.Close(ctx)
	if v := reg.Snapshot()[MetricCheckpointAge].(int64); v != 0 {
		t.Fatalf("age before any checkpoint = %d, want 0", v)
	}
	in.lastCkpt.Store(time.Now().Add(-3 * time.Second).UnixNano())
	// Deliberately no Stats() call: the scrape alone must see the age.
	if v := reg.Snapshot()[MetricCheckpointAge].(int64); v < 2 || v > 30 {
		t.Fatalf("age = %ds, want ≈3", v)
	}
}

// writeSegment fabricates a well-formed WAL segment holding one record.
func writeSegment(t *testing.T, name string, batch []graph.Interaction) {
	t.Helper()
	payload := encodeRecord(batch)
	buf := append([]byte(nil), walMagic[:]...)
	var frame [walFrameBytes]byte
	binary.LittleEndian.PutUint32(frame[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, walCRC))
	buf = append(buf, frame[:]...)
	buf = append(buf, payload...)
	if err := os.WriteFile(name, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestWALSegmentNumericOrder: once a sequence number outgrows the
// zero-padded width, lexicographic order inverts replay order —
// "wal-100000000.seg" sorts before "wal-99999999.seg". The old
// sort.Strings replayed them backwards and died on the decreasing
// timestamp; segments must sort numerically by sequence.
func TestWALSegmentNumericOrder(t *testing.T) {
	dir := t.TempDir()
	writeSegment(t, filepath.Join(dir, "wal-99999999.seg"), []graph.Interaction{{Src: 0, Dst: 1, At: 1}})
	writeSegment(t, filepath.Join(dir, "wal-100000000.seg"), []graph.Interaction{{Src: 1, Dst: 2, At: 2}})
	w, recovered, err := OpenWAL(dir, WALConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(recovered) != 2 || recovered[0].At != 1 || recovered[1].At != 2 {
		t.Fatalf("replayed %+v, want the two edges in timestamp order", recovered)
	}
	if w.seq != 100000000 {
		t.Fatalf("writer resumed at segment %d, want 100000000", w.seq)
	}
	// The log must remain appendable past the recovered tail.
	if err := w.Append([]graph.Interaction{{Src: 2, Dst: 0, At: 3}}); err != nil {
		t.Fatal(err)
	}
}

// TestChunkSidecarRoundTrip: the sidecar codec reproduces edges and
// block-local sketches (nil pattern included) exactly, and the file
// layer rejects an index/name mismatch and trailing garbage.
func TestChunkSidecarRoundTrip(t *testing.T) {
	a := vhll.MustNew(4)
	a.Add(11, 5)
	a.Add(12, 9)
	empty := vhll.MustNew(4) // populated-but-empty is legal and distinct from nil
	locals := []*vhll.Sketch{nil, a, nil, empty}
	edges := []graph.Interaction{{Src: 1, Dst: 3, At: 4}, {Src: 3, Dst: 0, At: 9}}

	payload, err := encodeChunkPayload(7, 20, 4, edges, locals)
	if err != nil {
		t.Fatal(err)
	}
	c, err := decodeChunkPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if c.index != 7 || c.omega != 20 || c.precision != 4 || c.numNodes != 4 {
		t.Fatalf("header round-trip: %+v", c)
	}
	if len(c.edges) != 2 || c.edges[0] != edges[0] || c.edges[1] != edges[1] {
		t.Fatalf("edges round-trip: %+v", c.edges)
	}
	for u, want := range locals {
		got := c.locals[u]
		if (got == nil) != (want == nil) {
			t.Fatalf("node %d nil pattern lost", u)
		}
		if want == nil {
			continue
		}
		wb, _ := want.MarshalBinary()
		gb, _ := got.MarshalBinary()
		if !bytes.Equal(wb, gb) {
			t.Fatalf("node %d sketch differs after round-trip", u)
		}
	}
	if _, err := decodeChunkPayload(append(append([]byte(nil), payload...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}

	dir := t.TempDir()
	if err := writeChunkFile(dir, 7, 20, 4, edges, locals, &metrics{}); err != nil {
		t.Fatal(err)
	}
	if _, err := readChunkFile(chunkFileName(dir, 7), 7); err != nil {
		t.Fatal(err)
	}
	if _, err := readChunkFile(chunkFileName(dir, 7), 6); err == nil {
		t.Fatal("index/name mismatch accepted")
	}
}

// TestRecoveryFromSidecars: after a clean shutdown every sealed chunk is
// durable as a sidecar, so recovery rebuilds the whole state from
// sidecars with zero WAL replay, serves the identical bytes, and keeps
// ingesting correctly on top of the recovered (cache-seeded) state.
func TestRecoveryFromSidecars(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	edges := testLog(rng, 30, 500)
	cfg := Config{Omega: 30, Precision: 4, ChunkEdges: 50, CheckpointEvery: -1}
	dir := t.TempDir()
	ingestAll(t, dir, edges, cfg)

	var published *core.ApproxSummaries
	cfg.Dir = dir
	cfg.Publish = func(s *core.ApproxSummaries) { published = s }
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	if st.RecoveredChunkEdges != int64(len(edges)) || st.RecoveredWALEdges != 0 {
		t.Fatalf("recovered %d chunk / %d wal edges, want %d / 0",
			st.RecoveredChunkEdges, st.RecoveredWALEdges, len(edges))
	}
	if !bytes.Equal(summaryBytes(t, published), offlineBytes(t, edges, 0, 30, 4)) {
		t.Fatal("sidecar recovery differs from offline scan")
	}
	// Resume streaming on the recovered state: the fold cache seeded from
	// the checkpoint must compose with fresh chunks.
	more := testLog(rng, 30, 200)
	base := edges[len(edges)-1].At
	for i := range more {
		more[i].At += base
	}
	for _, e := range more {
		if err := in.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
	full := append(append([]graph.Interaction(nil), edges...), more...)
	if !bytes.Equal(summaryBytes(t, published), offlineBytes(t, full, 0, 30, 4)) {
		t.Fatal("resumed stream differs from offline scan over the full log")
	}
}

// TestWALCompactionBoundsDisk: once chunk sidecars cover a sealed WAL
// segment's edges, the segment is deleted — after a clean close only
// the active segment remains, regardless of how many rotations the
// stream forced.
func TestWALCompactionBoundsDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	edges := testLog(rng, 25, 600)
	reg := obs.NewRegistry()
	cfg := Config{Omega: 20, Precision: 4, ChunkEdges: 25, CheckpointEvery: -1,
		SegmentBytes: 256, SyncEvery: -1, Registry: reg}
	dir := t.TempDir()
	ingestAll(t, dir, edges, cfg)

	snap := reg.Snapshot()
	if deleted := snap[MetricWALDeletedSegs].(int64); deleted < 1 {
		t.Fatalf("no WAL segments deleted across %d rotations", snap[MetricWALSegments].(int64))
	}
	if segs := segFiles(t, dir); len(segs) != 1 {
		t.Fatalf("%d WAL segments on disk after close, want only the active one", len(segs))
	}
	// The pruned directory still recovers the full state.
	recovered, in2 := recoverPublished(t, dir, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer in2.Close(ctx)
	if !bytes.Equal(summaryBytes(t, recovered), offlineBytes(t, edges, 0, 20, 4)) {
		t.Fatal("recovery after compaction differs from offline scan")
	}
}

// TestRecoverySuffixReplay: recovery rebuilds from the durable sidecar
// prefix and replays only the WAL suffix past it. Deleting the trailing
// sidecars (as a crash between compactor passes would leave things)
// must shift exactly those edges to WAL replay — and the stale
// checkpoint meta, which claims more chunks than survive, must be
// rejected by the fold-cache seeding without breaking recovery.
func TestRecoverySuffixReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	edges := testLog(rng, 20, 300)
	cfg := Config{Omega: 40, Precision: 4, ChunkEdges: 40, CheckpointEvery: -1}
	dir := t.TempDir()
	ingestAll(t, dir, edges, cfg)
	// 300 edges in 40-edge chunks: sidecars 0..6 hold 280, sidecar 7 the
	// final 20. Drop the last two; their 60 edges fall back to the WAL.
	for _, i := range []int{6, 7} {
		if err := os.Remove(chunkFileName(dir, i)); err != nil {
			t.Fatal(err)
		}
	}
	recovered, in2 := recoverPublished(t, dir, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer in2.Close(ctx)
	st := in2.Stats()
	if st.RecoveredChunkEdges != 240 || st.RecoveredWALEdges != 60 {
		t.Fatalf("recovered %d chunk / %d wal edges, want 240 / 60",
			st.RecoveredChunkEdges, st.RecoveredWALEdges)
	}
	if !bytes.Equal(summaryBytes(t, recovered), offlineBytes(t, edges, 0, 40, 4)) {
		t.Fatal("suffix-replay recovery differs from offline scan")
	}
}

// TestChunkOrphanCleanup: a sidecar past a gap in the index sequence is
// a rename that beat its batch's dir fsync into a crash; loadChunks
// keeps the contiguous prefix, deletes the orphan and any stray tmp
// files, and leaves the orphaned edges to WAL replay.
func TestChunkOrphanCleanup(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	edges := testLog(rng, 15, 120)
	cfg := Config{Omega: 15, Precision: 4, ChunkEdges: 40, CheckpointEvery: -1}
	dir := t.TempDir()
	ingestAll(t, dir, edges, cfg) // seals chunks 0,1,2
	if err := os.Rename(chunkFileName(dir, 2), chunkFileName(dir, 4)); err != nil {
		t.Fatal(err)
	}
	stray := chunkFileName(dir, 1) + ".tmp"
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	chunks, err := loadChunks(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 2 {
		t.Fatalf("loaded %d chunks, want the contiguous prefix of 2", len(chunks))
	}
	for _, name := range []string{chunkFileName(dir, 4), stray} {
		if _, err := os.Stat(name); !os.IsNotExist(err) {
			t.Fatalf("%s survived cleanup", filepath.Base(name))
		}
	}
	// Full recovery over the pruned directory still sees every edge: the
	// orphan's edges come back through the WAL.
	recovered, in2 := recoverPublished(t, dir, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer in2.Close(ctx)
	if !bytes.Equal(summaryBytes(t, recovered), offlineBytes(t, edges, 0, 15, 4)) {
		t.Fatal("recovery after orphan cleanup differs from offline scan")
	}
}

// TestDirSyncsObserved: the durability paths — checkpoint rename, WAL
// rotation, sidecar batches, covered-segment deletion — must each fsync
// the directory; the shared counter observing them proves the calls are
// wired (the old code never synced directories at all).
func TestDirSyncsObserved(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	edges := testLog(rng, 10, 200)
	reg := obs.NewRegistry()
	cfg := Config{Omega: 10, Precision: 4, ChunkEdges: 20, CheckpointEvery: -1,
		SegmentBytes: 512, SyncEvery: -1, Registry: reg}
	ingestAll(t, t.TempDir(), edges, cfg)
	snap := reg.Snapshot()
	if v := snap[MetricDirSyncs].(int64); v < 3 {
		t.Fatalf("only %d directory fsyncs across rotate+sidecar+checkpoint+delete paths", v)
	}
}
