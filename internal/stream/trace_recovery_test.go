package stream

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ipin/internal/core"
	"ipin/internal/graph"
	"ipin/internal/trace"
)

// Exactly-once across crash/recovery: a traced edge that crosses a WAL
// replay must reach serve-visible exactly once — survivors complete
// through the recovery checkpoint, edges the tear destroyed retire as
// lost, and no record is double-counted or stamped out of order.
func TestTraceRecoveryExactlyOnce(t *testing.T) {
	const m = 400
	rng := rand.New(rand.NewSource(77))
	edges := testLog(rng, 20, m)
	tr := trace.New(trace.Config{SampleEvery: 1, RingSize: 2 * m, MaxInflight: 2 * m})
	cfg := Config{
		Omega: 25, Precision: 4, ChunkEdges: 64,
		CheckpointEvery: -1, // only recovery/forced/final checkpoints
		IdleFlush:       10 * time.Millisecond,
		SegmentBytes:    2048, // several segments, so a torn tail loses a bounded suffix
		Tracer:          tr,
	}

	// First life: ingest everything, then "crash" — the ingester is
	// abandoned without Close, so no checkpoint ever published and every
	// traced record is still inflight.
	dir1 := t.TempDir()
	cfgA := cfg
	cfgA.Dir = dir1
	inA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := inA.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for inA.Stats().Emitted < m {
		if time.Now().After(deadline) {
			t.Fatalf("emitted %d of %d before deadline", inA.Stats().Emitted, m)
		}
		time.Sleep(5 * time.Millisecond)
	}
	c := tr.CountsNow()
	if c.Sampled != m || c.Inflight != m || c.Completed != 0 {
		t.Fatalf("pre-crash counts = %+v", c)
	}

	// The crash scene: copy the directory (SyncEvery defaults to
	// every-record, so the WAL bytes are complete), drop the durable
	// sidecars, and tear the final segment's tail in half.
	dir2 := t.TempDir()
	for _, name := range segFiles(t, dir1) {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir2, filepath.Base(name)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wipeDurable(t, dir2)
	segs := segFiles(t, dir2)
	final := segs[len(segs)-1]
	fi, err := os.Stat(final)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(final, fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	// Second life over the torn directory, same tracer. New reconciles:
	// records past the recovered prefix retire as lost, survivors complete
	// through the recovery checkpoint's publish.
	var published *core.ApproxSummaries
	cfgB := cfg
	cfgB.Dir = dir2
	cfgB.Publish = func(s *core.ApproxSummaries) { published = s }
	inB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer inB.Close(ctx)
	if published == nil {
		t.Fatal("no recovery checkpoint published")
	}
	survivors := inB.Stats().Emitted
	if survivors <= 0 || survivors >= m {
		t.Fatalf("tear recovered %d of %d edges, want a proper subset", survivors, m)
	}
	c = tr.CountsNow()
	if c.Completed != survivors {
		t.Fatalf("completed = %d, want the %d survivors", c.Completed, survivors)
	}
	if c.Lost != m-survivors {
		t.Fatalf("lost = %d, want %d", c.Lost, m-survivors)
	}
	if c.Inflight != 0 || c.Evicted != 0 || c.Cancelled != 0 {
		t.Fatalf("post-recovery counts = %+v", c)
	}

	// New edges through the recovered pipeline complete like any others.
	const extra = 50
	base := edges[len(edges)-1].At
	for i := 0; i < extra; i++ {
		e := graph.Interaction{Src: graph.NodeID(i % 20), Dst: graph.NodeID((i + 1) % 20), At: base + graph.Time(i+1)}
		if err := inB.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := inB.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	c = tr.CountsNow()
	if c.Sampled != m+extra {
		t.Fatalf("sampled = %d, want %d", c.Sampled, m+extra)
	}
	if c.Completed != survivors+extra || c.Inflight != 0 {
		t.Fatalf("final counts = %+v (survivors %d)", c, survivors)
	}
	if got := c.Completed + c.Cancelled + c.Lost + c.Evicted + c.Inflight; got != c.Sampled {
		t.Fatalf("accounting leak: %+v", c)
	}

	// Every completed record reached serve-visible with a distinct emit
	// index and monotone stamps — no phantoms, no double stamping.
	seen := make(map[int64]bool)
	var completed int
	for _, rec := range tr.Recent(2 * m) {
		if rec.Outcome != trace.OutcomeCompleted {
			continue
		}
		completed++
		if seen[rec.EmitIndex] {
			t.Fatalf("emit index %d completed twice", rec.EmitIndex)
		}
		seen[rec.EmitIndex] = true
		if rec.Stamps[trace.StageServeVisible] == 0 {
			t.Fatalf("completed record %d missing serve_visible", rec.EmitIndex)
		}
		prev := int64(0)
		for s := trace.StageAccept; s < trace.NumStages; s++ {
			at := rec.Stamps[s]
			if at == 0 {
				continue
			}
			if at < prev {
				t.Fatalf("record %d: stage %s stamp regresses", rec.EmitIndex, s)
			}
			prev = at
		}
	}
	if int64(completed) != c.Completed {
		t.Fatalf("ring holds %d completed, counters say %d", completed, c.Completed)
	}
}
