package obs

import (
	"fmt"
	"net/http"
	"time"
)

// HTTP metric names produced by Middleware. Per-route series carry a
// route label (and, for requests, the status code class).
const (
	MetricHTTPRequests  = "http_requests_total"
	MetricHTTPErrors    = "http_errors_total"
	MetricHTTPInFlight  = "http_in_flight_requests"
	MetricHTTPDurations = "http_request_duration_seconds"
)

// Middleware wraps next with per-route HTTP telemetry:
//
//	http_requests_total{route,code}        requests by route and status
//	http_errors_total{route}               responses with status >= 400
//	http_in_flight_requests                gauge of running requests
//	http_request_duration_seconds{route}   latency histogram by route
//
// routes is the closed set of URL paths worth individual series; any
// other path (scrapes of bogus URLs, crawlers) is folded into
// route="other" so the metric namespace stays bounded. With a nil
// registry, Middleware returns next unchanged.
func Middleware(reg *Registry, routes []string, next http.Handler) http.Handler {
	if reg == nil {
		return next
	}
	known := make(map[string]bool, len(routes))
	for _, r := range routes {
		known[r] = true
	}
	inFlight := reg.Gauge(MetricHTTPInFlight, "Number of HTTP requests currently being served.")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := r.URL.Path
		if !known[route] {
			route = "other"
		}
		inFlight.Inc()
		defer inFlight.Dec()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start).Seconds()
		reg.Counter(
			fmt.Sprintf(`%s{route=%q,code="%d"}`, MetricHTTPRequests, route, rec.code),
			"HTTP requests served, by route and status code.",
		).Inc()
		if rec.code >= 400 {
			reg.Counter(
				fmt.Sprintf(`%s{route=%q}`, MetricHTTPErrors, route),
				"HTTP responses with a 4xx or 5xx status, by route.",
			).Inc()
		}
		reg.Histogram(
			fmt.Sprintf(`%s{route=%q}`, MetricHTTPDurations, route),
			"HTTP request latency in seconds, by route.",
			nil,
		).Observe(elapsed)
	})
}

// statusRecorder captures the status code written by the handler.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer when it supports streaming, so
// wrapping does not break handlers (pprof's, for one) that flush.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
