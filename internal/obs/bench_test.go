package obs

import "testing"

// The disabled-path benchmarks back the package's central promise:
// instrumentation left uninstalled costs well under 5 ns per event, so
// the hot scans can record unconditionally. Instruments live in package
// vars so the compiler cannot fold the nil checks away.
var (
	disabledCounter   *Counter
	disabledGauge     *Gauge
	disabledHistogram *Histogram
	disabledSpan      *Span
)

func BenchmarkDisabledCounter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		disabledCounter.Inc()
	}
}

func BenchmarkDisabledCounterAdd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		disabledCounter.Add(int64(i))
	}
}

func BenchmarkDisabledGauge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		disabledGauge.Inc()
	}
}

func BenchmarkDisabledHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		disabledHistogram.Observe(0.5)
	}
}

func BenchmarkDisabledSpanDue(b *testing.B) {
	due := false
	for i := 0; i < b.N; i++ {
		due = due || disabledSpan.Due()
	}
	if due {
		b.Fatal("nil span became due")
	}
}

func BenchmarkEnabledCounter(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkEnabledCounterParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkEnabledHistogram(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}
