// Package obs is the repository's zero-dependency telemetry layer: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// latency histograms), Prometheus text-format and expvar exposition, a
// span/phase-timer API for structured progress logging, and net/http
// middleware — all on the Go standard library alone.
//
// The package is built around one rule: every instrument is a no-op on
// its nil receiver. Instrumented packages hold *obs.Counter (etc.) fields
// that stay nil until a collector is installed, so library users and
// benchmarks that never opt in pay only a nil check per event — a few
// hundred picoseconds, verified by BenchmarkDisabled* in this package.
// The enabled hot path is a single atomic add; aggregation, sorting and
// formatting all happen at read (scrape) time, never at write time.
//
// Typical wiring:
//
//	reg := obs.NewRegistry()
//	core.InstallMetrics(reg)              // package opts in
//	http.Handle("/metrics", obs.Handler(reg))
//
// See DESIGN.md ("no-op-by-default collector") for the rationale.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; a nil *Counter is a no-op.
type Counter struct {
	v    atomic.Int64
	name string
	help string
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready to
// use; a nil *Gauge is a no-op.
type Gauge struct {
	v    atomic.Int64
	name string
	help string
}

// Set replaces the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (may be negative). No-op on a nil receiver.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc moves the gauge up by one. No-op on a nil receiver.
func (g *Gauge) Inc() { g.Add(1) }

// Dec moves the gauge down by one. No-op on a nil receiver.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value; 0 on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// GaugeFunc is a gauge whose value is computed by a callback at read
// (scrape) time instead of being pushed by the instrumented code. Use it
// for values that are a function of the current clock or of other state
// — e.g. "seconds since X" — which a Set-style gauge can only ever
// report as of its last incidental update. A nil *GaugeFunc is a no-op.
type GaugeFunc struct {
	name string
	help string
	fn   func() int64
}

// Value computes the current value; 0 on a nil receiver.
func (g *GaugeFunc) Value() int64 {
	if g == nil {
		return 0
	}
	return g.fn()
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: bucket i counts observations ≤ bounds[i], plus an implicit +Inf
// bucket. Observations take one binary search over the (small, immutable)
// bound slice and two atomic adds; snapshots are taken at read time. A
// nil *Histogram is a no-op.
type Histogram struct {
	name    string
	help    string
	bounds  []float64 // strictly ascending upper bounds, excludes +Inf
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomicFloat
}

// DefBuckets are latency bounds in seconds, from 100µs to ~10s, suitable
// for both in-process phase timings and HTTP request latencies.
var DefBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// NewHistogram returns a standalone histogram (not registered anywhere)
// with the given upper bounds; nil bounds selects DefBuckets. Bounds must
// be strictly ascending.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	bounds = append([]float64(nil), bounds...)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		name:    name,
		help:    help,
		bounds:  bounds,
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one observation. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; the last slot is +Inf.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, excluding +Inf
	Counts []int64   // cumulative per-bucket counts, including +Inf last
	Count  int64
	Sum    float64
}

// Snapshot copies the histogram state. Counts come back cumulative
// (Prometheus le semantics). Zero-valued on a nil receiver.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.sum.load(),
	}
	cum := int64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		s.Counts[i] = cum
	}
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of a histogram snapshot
// by linear interpolation inside the bucket holding the target rank. An
// empty snapshot returns 0; ranks landing in the +Inf bucket return the
// largest finite bound (the histogram cannot resolve beyond it).
func Quantile(s HistogramSnapshot, q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	for i, cum := range s.Counts {
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: the best defensible answer is the largest
			// finite bound.
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		prev := int64(0)
		if i > 0 {
			lo = s.Bounds[i-1]
			prev = s.Counts[i-1]
		}
		hi := s.Bounds[i]
		inBucket := float64(s.Counts[i] - prev)
		if inBucket <= 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/inBucket
	}
	return s.Bounds[len(s.Bounds)-1]
}

// HistogramFunc is a histogram whose state is computed by a callback at
// read (scrape) time — the histogram analogue of GaugeFunc. Use it to
// expose distributions an external collector already maintains (e.g. the
// runtime/metrics GC-pause histogram) without double bookkeeping. The
// callback must return cumulative counts in HistogramSnapshot shape and
// be safe to call from any goroutine. A nil *HistogramFunc is a no-op.
type HistogramFunc struct {
	name string
	help string
	fn   func() HistogramSnapshot
}

// Snapshot computes the current state; zero-valued on a nil receiver.
func (h *HistogramFunc) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return h.fn()
}

// atomicFloat is a float64 with atomic add, via CAS on the bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Registry owns a namespace of metrics. Get-or-create accessors are safe
// for concurrent use and idempotent: asking twice for the same full name
// returns the same instrument. All accessors on a nil *Registry return
// nil instruments, which chains the no-op guarantee outward — a package
// can InstallMetrics(nil) and every recording site stays free.
//
// Metric names follow Prometheus conventions and may carry a label set
// inline: `http_requests_total{route="/spread",code="200"}`. Metrics
// sharing a base name (the part before '{') must share a type and are
// grouped under one HELP/TYPE header at exposition time.
type Registry struct {
	mu     sync.Mutex
	order  []string // full names in creation order
	metric map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metric: make(map[string]any)}
}

// Counter returns the counter with the given full name, creating it if
// needed. help is used on first creation only. Nil registry → nil counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metric[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic("obs: metric " + name + " already registered with a different type")
		}
		return c
	}
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// Gauge returns the gauge with the given full name, creating it if
// needed. Nil registry → nil gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metric[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic("obs: metric " + name + " already registered with a different type")
		}
		return g
	}
	g := &Gauge{name: name, help: help}
	r.register(name, g)
	return g
}

// GaugeFunc registers a computed gauge under the given full name whose
// value is fn() at every exposition. Asking twice for the same name
// returns the existing instrument (the first fn wins). The callback must
// be safe to call from any goroutine. Nil registry → nil instrument.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) *GaugeFunc {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metric[name]; ok {
		g, ok := m.(*GaugeFunc)
		if !ok {
			panic("obs: metric " + name + " already registered with a different type")
		}
		return g
	}
	g := &GaugeFunc{name: name, help: help, fn: fn}
	r.register(name, g)
	return g
}

// Histogram returns the histogram with the given full name, creating it
// with the given bounds (nil selects DefBuckets) if needed. Nil registry
// → nil histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metric[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic("obs: metric " + name + " already registered with a different type")
		}
		return h
	}
	h := NewHistogram(name, help, bounds)
	r.register(name, h)
	return h
}

// HistogramFunc registers a computed histogram under the given full name
// whose state is fn() at every exposition. Asking twice for the same name
// returns the existing instrument (the first fn wins). Nil registry → nil
// instrument.
func (r *Registry) HistogramFunc(name, help string, fn func() HistogramSnapshot) *HistogramFunc {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metric[name]; ok {
		h, ok := m.(*HistogramFunc)
		if !ok {
			panic("obs: metric " + name + " already registered with a different type")
		}
		return h
	}
	h := &HistogramFunc{name: name, help: help, fn: fn}
	r.register(name, h)
	return h
}

// register records a new metric; callers hold r.mu.
func (r *Registry) register(name string, m any) {
	r.metric[name] = m
	r.order = append(r.order, name)
}

// each calls f for every registered metric under the lock, in creation
// order. Snapshot-style readers copy what they need inside f.
func (r *Registry) each(f func(name string, m any)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f(name, r.metric[name])
	}
}
