package obs

import (
	"runtime"
	"strings"
	"testing"
)

func TestQuantile(t *testing.T) {
	h := NewRegistry().Histogram("q_seconds", "", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all 100 in the (1,2] bucket
	}
	s := h.Snapshot()
	// Rank 50 of 100 lands mid-bucket: linear interpolation inside (1,2].
	if got := Quantile(s, 0.5); got != 1.5 {
		t.Fatalf("p50 = %v, want 1.5", got)
	}
	if got := Quantile(s, 1); got != 2 {
		t.Fatalf("p100 = %v, want 2", got)
	}
	// Observations past every bound resolve to the largest finite bound.
	h2 := NewRegistry().Histogram("q2_seconds", "", []float64{1, 2})
	h2.Observe(100)
	if got := Quantile(h2.Snapshot(), 0.99); got != 2 {
		t.Fatalf("+Inf-bucket quantile = %v, want 2", got)
	}
	if got := Quantile(HistogramSnapshot{}, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestHistogramFunc(t *testing.T) {
	reg := NewRegistry()
	snap := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []int64{3, 5, 6}, Count: 6, Sum: 9}
	hf := reg.HistogramFunc("hf_seconds", "computed at read time", func() HistogramSnapshot { return snap })
	if got := hf.Snapshot(); got.Count != 6 || got.Sum != 9 {
		t.Fatalf("snapshot = %+v", got)
	}
	// Get-or-create returns the same instrument; the first fn wins.
	again := reg.HistogramFunc("hf_seconds", "", func() HistogramSnapshot { return HistogramSnapshot{} })
	if again != hf {
		t.Fatal("get-or-create returned a different instrument")
	}
	if got := again.Snapshot(); got.Count != 6 {
		t.Fatal("second fn replaced the first")
	}
	var nilHF *HistogramFunc
	if got := nilHF.Snapshot(); got.Count != 0 {
		t.Fatal("nil HistogramFunc not zero")
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE hf_seconds histogram",
		`hf_seconds_bucket{le="1"} 3`,
		`hf_seconds_bucket{le="2"} 5`,
		`hf_seconds_bucket{le="+Inf"} 6`,
		"hf_seconds_sum 9",
		"hf_seconds_count 6",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestInstallRuntimeMetrics(t *testing.T) {
	InstallRuntimeMetrics(nil) // nil-safe

	reg := NewRegistry()
	InstallRuntimeMetrics(reg)
	runtime.GC() // make the GC series nonzero
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, name := range []string{
		MetricGoGoroutines, MetricGoHeapBytes, MetricGoMemoryBytes,
		MetricGoGCCycles, MetricGoGCPause, MetricGoSchedLatency,
	} {
		if !strings.Contains(text, "\n"+name) && !strings.HasPrefix(text, name) {
			t.Fatalf("exposition missing %s:\n%s", name, text)
		}
	}
	snap := reg.Snapshot()
	if g, ok := snap[MetricGoGoroutines].(int64); !ok || g < 1 {
		t.Fatalf("goroutines = %v", snap[MetricGoGoroutines])
	}
	if h, ok := snap[MetricGoHeapBytes].(int64); !ok || h <= 0 {
		t.Fatalf("heap bytes = %v", snap[MetricGoHeapBytes])
	}
}

func TestRebinHistogramShape(t *testing.T) {
	reg := NewRegistry()
	InstallRuntimeMetrics(reg)
	runtime.GC()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	// The rebinned GC-pause histogram must render cumulative buckets
	// ending in +Inf with a consistent count.
	text := b.String()
	if !strings.Contains(text, MetricGoGCPause+`_bucket{le="+Inf"}`) {
		t.Fatalf("gc pause histogram missing +Inf bucket:\n%s", text)
	}
}
