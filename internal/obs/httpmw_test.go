package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddleware(t *testing.T) {
	reg := NewRegistry()
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/fail" {
			http.Error(w, "nope", http.StatusBadRequest)
			return
		}
		w.Write([]byte("ok"))
	})
	h := Middleware(reg, []string{"/spread", "/fail"}, next)
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	get("/spread")
	get("/spread")
	get("/fail")
	get("/bogus/route")

	snap := reg.Snapshot()
	if got := snap[`http_requests_total{route="/spread",code="200"}`]; got != int64(2) {
		t.Fatalf("spread requests = %v, want 2", got)
	}
	if got := snap[`http_requests_total{route="/fail",code="400"}`]; got != int64(1) {
		t.Fatalf("fail requests = %v, want 1", got)
	}
	if got := snap[`http_errors_total{route="/fail"}`]; got != int64(1) {
		t.Fatalf("errors = %v, want 1", got)
	}
	// Unknown paths fold into route="other" so series stay bounded.
	if got := snap[`http_requests_total{route="other",code="200"}`]; got != int64(1) {
		t.Fatalf("other requests = %v, want 1", got)
	}
	if got := snap[MetricHTTPInFlight]; got != int64(0) {
		t.Fatalf("in-flight after drain = %v, want 0", got)
	}
	hs, ok := snap[`http_request_duration_seconds{route="/spread"}`].(HistogramSnapshot)
	if !ok || hs.Count != 2 {
		t.Fatalf("latency histogram = %+v", snap[`http_request_duration_seconds{route="/spread"}`])
	}
}

func TestMiddlewareInFlight(t *testing.T) {
	reg := NewRegistry()
	release := make(chan struct{})
	entered := make(chan struct{})
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
	})
	srv := httptest.NewServer(Middleware(reg, []string{"/slow"}, next))
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		resp, err := http.Get(srv.URL + "/slow")
		if err == nil {
			resp.Body.Close()
		}
		close(done)
	}()
	<-entered
	if got := reg.Gauge(MetricHTTPInFlight, "").Value(); got != 1 {
		t.Fatalf("in-flight during request = %d, want 1", got)
	}
	close(release)
	<-done
	if got := reg.Gauge(MetricHTTPInFlight, "").Value(); got != 0 {
		t.Fatalf("in-flight after request = %d, want 0", got)
	}
}

func TestMiddlewareNilRegistry(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok")) })
	h := Middleware(nil, nil, next)
	// With no registry the handler must come back unwrapped.
	if _, ok := h.(http.HandlerFunc); !ok {
		t.Fatalf("nil registry wrapped the handler: %T", h)
	}
	req := httptest.NewRequest("GET", "/x", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Body.String() != "ok" {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func TestHandlerExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "help").Add(3)
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	Handler(reg).ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "a_total 3") {
		t.Fatalf("exposition body:\n%s", rec.Body.String())
	}
	// A nil registry must still serve a valid (empty) exposition.
	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Body.Len() != 0 {
		t.Fatalf("nil registry: code %d body %q", rec.Code, rec.Body.String())
	}
}
