package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// Go runtime telemetry, bridged from runtime/metrics into the registry
// behind an explicit InstallRuntimeMetrics toggle. Scalar samples become
// computed gauges and the runtime's native distribution samples (GC
// pauses, scheduler latency) become computed histograms, all read lazily
// at exposition time — installing them adds zero cost to any hot path.

// Runtime metric names. The go_ prefix matches the conventional Prometheus
// Go-collector namespace so dashboards transfer.
const (
	MetricGoGoroutines   = "go_goroutines"
	MetricGoHeapBytes    = "go_heap_live_bytes"
	MetricGoMemoryBytes  = "go_memory_total_bytes"
	MetricGoGCCycles     = "go_gc_cycles"
	MetricGoGCPause      = "go_gc_pause_seconds"
	MetricGoSchedLatency = "go_sched_latency_seconds"
)

// runtimeBounds are the fixed upper bounds (seconds) runtime histograms
// are rebinned into: powers of four from 1µs to ~1s. Rebinning keeps the
// exposition compact and its shape stable across Go versions, whose
// native bucket layouts differ.
var runtimeBounds = []float64{
	1e-6, 4e-6, 1.6e-5, 6.4e-5, 2.56e-4, 1.024e-3,
	4.096e-3, 1.6384e-2, 6.5536e-2, 2.62144e-1, 1.048576,
}

// runtimeSampler reads one batch of runtime/metrics samples, refreshed at
// most every refreshEvery so one scrape triggers one runtime read no
// matter how many instruments it visits.
type runtimeSampler struct {
	mu      sync.Mutex
	samples []metrics.Sample
	index   map[string]int
	last    time.Time
}

const runtimeRefresh = 100 * time.Millisecond

func newRuntimeSampler(names []string) *runtimeSampler {
	available := make(map[string]bool)
	for _, d := range metrics.All() {
		available[d.Name] = true
	}
	s := &runtimeSampler{index: make(map[string]int)}
	for _, name := range names {
		if !available[name] {
			continue
		}
		s.index[name] = len(s.samples)
		s.samples = append(s.samples, metrics.Sample{Name: name})
	}
	return s
}

// value returns the current sample for name, refreshing the batch when
// stale. The second result is false when the runtime does not provide the
// metric (older toolchain).
func (s *runtimeSampler) value(name string) (metrics.Value, bool) {
	i, ok := s.index[name]
	if !ok {
		return metrics.Value{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.last) >= runtimeRefresh {
		metrics.Read(s.samples)
		s.last = time.Now()
	}
	return s.samples[i].Value, true
}

// scalarInt64 renders a scalar sample as int64 for gauge exposition.
func scalarInt64(v metrics.Value) int64 {
	switch v.Kind() {
	case metrics.KindUint64:
		u := v.Uint64()
		if u > math.MaxInt64 {
			return math.MaxInt64
		}
		return int64(u)
	case metrics.KindFloat64:
		return int64(v.Float64())
	default:
		return 0
	}
}

// rebinHistogram converts a runtime float64 histogram into an obs
// HistogramSnapshot over runtimeBounds. Each native bucket's count lands
// in the first fixed bound at or above its upper edge. The runtime does
// not track a sum, so Sum is estimated from bucket midpoints — good
// enough for rate dashboards, documented in DESIGN.md.
func rebinHistogram(h *metrics.Float64Histogram) HistogramSnapshot {
	snap := HistogramSnapshot{Bounds: runtimeBounds, Counts: make([]int64, len(runtimeBounds)+1)}
	if h == nil {
		return snap
	}
	raw := make([]int64, len(runtimeBounds)+1)
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		slot := len(runtimeBounds) // +Inf by default
		for b, bound := range runtimeBounds {
			if hi <= bound {
				slot = b
				break
			}
		}
		n := int64(c)
		raw[slot] += n
		snap.Count += n
		// Midpoint estimate, degrading gracefully at the ±Inf edges.
		mid := (lo + hi) / 2
		if math.IsInf(lo, -1) {
			mid = hi
		}
		if math.IsInf(hi, 1) {
			mid = lo
		}
		snap.Sum += float64(n) * mid
	}
	cum := int64(0)
	for i, n := range raw {
		cum += n
		snap.Counts[i] = cum
	}
	return snap
}

// InstallRuntimeMetrics registers Go runtime telemetry — goroutine count,
// live heap bytes, total memory, GC cycle count, and the GC-pause and
// scheduler-latency distributions — as computed instruments on reg. All
// values are read lazily from runtime/metrics at exposition time; nothing
// is polled in the background. No-op on a nil registry; safe to call more
// than once (the first installation wins).
func InstallRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	gcPause := "/sched/pauses/total/gc:seconds"
	if s := newRuntimeSampler([]string{gcPause}); len(s.samples) == 0 {
		gcPause = "/gc/pauses:seconds" // pre-1.22 name
	}
	sampler := newRuntimeSampler([]string{
		"/sched/goroutines:goroutines",
		"/memory/classes/heap/objects:bytes",
		"/memory/classes/total:bytes",
		"/gc/cycles/total:gc-cycles",
		gcPause,
		"/sched/latencies:seconds",
	})
	gauge := func(name, help, src string) {
		reg.GaugeFunc(name, help, func() int64 {
			v, ok := sampler.value(src)
			if !ok {
				return 0
			}
			return scalarInt64(v)
		})
	}
	hist := func(name, help, src string) {
		reg.HistogramFunc(name, help, func() HistogramSnapshot {
			v, ok := sampler.value(src)
			if !ok || v.Kind() != metrics.KindFloat64Histogram {
				return HistogramSnapshot{Bounds: runtimeBounds, Counts: make([]int64, len(runtimeBounds)+1)}
			}
			return rebinHistogram(v.Float64Histogram())
		})
	}
	gauge(MetricGoGoroutines, "Live goroutines.", "/sched/goroutines:goroutines")
	gauge(MetricGoHeapBytes, "Bytes of live heap objects.", "/memory/classes/heap/objects:bytes")
	gauge(MetricGoMemoryBytes, "Total bytes of memory mapped by the Go runtime.", "/memory/classes/total:bytes")
	gauge(MetricGoGCCycles, "Completed GC cycles since process start.", "/gc/cycles/total:gc-cycles")
	hist(MetricGoGCPause, "Stop-the-world GC pause latency in seconds.", gcPause)
	hist(MetricGoSchedLatency, "Time goroutines spend runnable before running, in seconds.", "/sched/latencies:seconds")
}
