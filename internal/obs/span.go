package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one structured progress report from a Span: a phase name, a
// free-form message ("1.2M/4.8M edges, 310k summaries"), the time since
// the span started, and whether the phase is finished.
type Event struct {
	Phase   string
	Message string
	Elapsed time.Duration
	Done    bool
}

// Sink consumes progress events. Sinks must be safe for use from the
// goroutine running the instrumented phase; the provided TextSink is
// additionally safe for concurrent spans.
type Sink func(Event)

// Span times one phase of work and reports progress to a sink. A nil
// *Span (from a nil sink) is a no-op, so instrumented code can create
// and drive spans unconditionally. Spans are not safe for concurrent
// use; each goroutine should own its own.
type Span struct {
	phase string
	sink  Sink
	start time.Time
	every time.Duration
	last  time.Time
}

// defaultInterval rate-limits progress events so hot loops can call
// Due() freely without flooding the sink.
const defaultInterval = 500 * time.Millisecond

// NewSpan starts a phase timer reporting to sink. A nil sink returns a
// nil span, on which every method is a no-op.
func NewSpan(sink Sink, phase string) *Span {
	if sink == nil {
		return nil
	}
	now := time.Now()
	return &Span{phase: phase, sink: sink, start: now, every: defaultInterval, last: now}
}

// SetInterval overrides the minimum delay between progress events.
func (s *Span) SetInterval(d time.Duration) {
	if s == nil {
		return
	}
	s.every = d
}

// Due reports whether enough time has passed since the last event that a
// progress report is worth emitting. Hot loops gate the (comparatively
// expensive) message formatting on Due():
//
//	if i&0xffff == 0 && span.Due() {
//		span.Progressf("%d/%d edges", done, total)
//	}
//
// Always false on a nil span.
func (s *Span) Due() bool {
	return s != nil && time.Since(s.last) >= s.every
}

// Progressf emits an intermediate progress event. No-op on a nil span.
func (s *Span) Progressf(format string, args ...any) {
	if s == nil {
		return
	}
	s.last = time.Now()
	s.sink(Event{Phase: s.phase, Message: fmt.Sprintf(format, args...), Elapsed: s.last.Sub(s.start)})
}

// Endf emits the final event of the phase with Done set. No-op on a nil
// span.
func (s *Span) Endf(format string, args ...any) {
	if s == nil {
		return
	}
	s.sink(Event{Phase: s.phase, Message: fmt.Sprintf(format, args...), Elapsed: time.Since(s.start), Done: true})
}

// TextSink returns a sink that renders events as single prefixed lines:
//
//	irs: scan/approx: … 1.2M/4.8M edges (1.4s)
//	irs: scan/approx: done: 4.8M edges (5.2s)
//
// The sink serializes writes, so concurrent spans interleave cleanly.
func TextSink(w io.Writer, prefix string) Sink {
	var mu sync.Mutex
	return func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		state := "…"
		if e.Done {
			state = "done:"
		}
		fmt.Fprintf(w, "%s%s: %s %s (%.1fs)\n", prefix, e.Phase, state, e.Message, e.Elapsed.Seconds())
	}
}

// Count renders n compactly for progress messages: 1234 → "1.2k",
// 4800000 → "4.8M". Exact below 1000.
func Count(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.1fG", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Bytes renders a byte count compactly: 44040192 → "42.0 MB".
func Bytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
