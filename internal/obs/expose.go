package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// splitName separates a full metric name into its base name and the
// inline label block (without braces): "a_total{route=\"/x\"}" →
// ("a_total", `route="/x"`).
func splitName(full string) (base, labels string) {
	if i := strings.IndexByte(full, '{'); i >= 0 {
		return full[:i], strings.TrimSuffix(full[i+1:], "}")
	}
	return full, ""
}

// joinLabels renders a label block from pre-rendered pairs plus an
// optional extra pair (used for the histogram "le" label).
func joinLabels(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	default:
		return "{" + labels + "," + extra + "}"
	}
}

// formatFloat renders a float the way Prometheus text format expects.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus writes every metric in the registry in the Prometheus
// text exposition format (version 0.0.4). Metrics sharing a base name
// are grouped under a single HELP/TYPE header; groups appear sorted by
// base name, series sorted by full name, so output is deterministic.
// No-op on a nil registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	type series struct {
		full string
		m    any
	}
	groups := make(map[string][]series)
	var bases []string
	r.each(func(name string, m any) {
		base, _ := splitName(name)
		if _, ok := groups[base]; !ok {
			bases = append(bases, base)
		}
		groups[base] = append(groups[base], series{full: name, m: m})
	})
	sort.Strings(bases)

	var b strings.Builder
	for _, base := range bases {
		g := groups[base]
		sort.Slice(g, func(i, j int) bool { return g[i].full < g[j].full })
		typ, help := "untyped", ""
		switch m := g[0].m.(type) {
		case *Counter:
			typ, help = "counter", m.help
		case *Gauge:
			typ, help = "gauge", m.help
		case *GaugeFunc:
			typ, help = "gauge", m.help
		case *Histogram:
			typ, help = "histogram", m.help
		case *HistogramFunc:
			typ, help = "histogram", m.help
		}
		if help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", base, help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", base, typ)
		for _, s := range g {
			_, labels := splitName(s.full)
			switch m := s.m.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", base, joinLabels(labels, ""), m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %d\n", base, joinLabels(labels, ""), m.Value())
			case *GaugeFunc:
				fmt.Fprintf(&b, "%s%s %d\n", base, joinLabels(labels, ""), m.Value())
			case *Histogram:
				writeHistogram(&b, base, labels, m.Snapshot())
			case *HistogramFunc:
				writeHistogram(&b, base, labels, m.Snapshot())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series in exposition format.
func writeHistogram(b *strings.Builder, base, labels string, snap HistogramSnapshot) {
	if len(snap.Counts) == 0 {
		// A computed histogram may legitimately return an empty snapshot
		// (e.g. its source has not been sampled yet); render a valid
		// zero-observation series.
		fmt.Fprintf(b, "%s_bucket%s 0\n", base, joinLabels(labels, `le="+Inf"`))
		fmt.Fprintf(b, "%s_sum%s 0\n", base, joinLabels(labels, ""))
		fmt.Fprintf(b, "%s_count%s 0\n", base, joinLabels(labels, ""))
		return
	}
	for i, bound := range snap.Bounds {
		le := `le="` + formatFloat(bound) + `"`
		fmt.Fprintf(b, "%s_bucket%s %d\n", base, joinLabels(labels, le), snap.Counts[i])
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", base, joinLabels(labels, `le="+Inf"`), snap.Counts[len(snap.Counts)-1])
	fmt.Fprintf(b, "%s_sum%s %s\n", base, joinLabels(labels, ""), formatFloat(snap.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", base, joinLabels(labels, ""), snap.Count)
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format — mount it at /metrics. A nil registry serves an empty
// (valid) exposition.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Snapshot returns a point-in-time copy of every metric keyed by full
// name: int64 for counters and gauges, HistogramSnapshot for histograms.
// Empty on a nil registry.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	r.each(func(name string, m any) {
		switch m := m.(type) {
		case *Counter:
			out[name] = m.Value()
		case *Gauge:
			out[name] = m.Value()
		case *GaugeFunc:
			out[name] = m.Value()
		case *Histogram:
			out[name] = m.Snapshot()
		case *HistogramFunc:
			out[name] = m.Snapshot()
		}
	})
	return out
}

// jsonHistogram is the JSON shape of a histogram snapshot.
type jsonHistogram struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets map[string]int64 `json:"buckets"` // le → cumulative count
}

// jsonValue renders the snapshot into plain JSON-encodable values.
func (r *Registry) jsonValue() map[string]any {
	out := make(map[string]any)
	for name, v := range r.Snapshot() {
		switch v := v.(type) {
		case int64:
			out[name] = v
		case HistogramSnapshot:
			h := jsonHistogram{Count: v.Count, Sum: v.Sum, Buckets: make(map[string]int64, len(v.Counts))}
			for i, bound := range v.Bounds {
				h.Buckets[formatFloat(bound)] = v.Counts[i]
			}
			h.Buckets["+Inf"] = v.Counts[len(v.Counts)-1]
			out[name] = h
		}
	}
	return out
}

// WriteJSON writes the full metric state as one indented JSON object
// keyed by metric name — the shape `irs -metrics-out` dumps for BENCH
// trajectories. Writes "{}" on a nil registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.jsonValue())
}

// PublishExpvar publishes the registry under the given expvar name, so
// the standard /debug/vars endpoint includes a live JSON view of every
// metric. expvar forbids duplicate names (it panics), so call this once
// per process per name. No-op on a nil registry.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.jsonValue() }))
}
