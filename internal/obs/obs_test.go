package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "a counter")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("g", "a gauge")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("inflight", "in flight")
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0 after balanced inc/dec", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("h", "help", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Cumulative: le=1 → {0.5, 1}, le=2 → +{1.5}, le=4 → +{3}, +Inf → +{100}.
	want := []int64{2, 3, 4, 5}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 0.5+1+1.5+3+100 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "latency", []float64{0.001, 0.01, 0.1})
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w%4) * 0.004)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	if s.Counts[len(s.Counts)-1] != workers*per {
		t.Fatalf("+Inf bucket = %d, want %d", s.Counts[len(s.Counts)-1], workers*per)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "x")
	b := reg.Counter("x_total", "different help ignored")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type clash did not panic")
		}
	}()
	reg.Gauge("x_total", "now a gauge")
}

// TestNoop pins the package's core contract: every instrument, span, and
// registry accessor is safe and free on its nil receiver.
func TestNoop(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(1)
	g.Inc()
	g.Dec()
	g.Add(2)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 {
		t.Fatal("nil histogram has observations")
	}

	var reg *Registry
	if reg.Counter("a", "") != nil || reg.Gauge("b", "") != nil || reg.Histogram("c", "", nil) != nil {
		t.Fatal("nil registry returned a live instrument")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition: %q, %v", sb.String(), err)
	}
	sb.Reset()
	if err := reg.WriteJSON(&sb); err != nil || strings.TrimSpace(sb.String()) != "{}" {
		t.Fatalf("nil registry JSON: %q, %v", sb.String(), err)
	}
	reg.PublishExpvar("never-registered")

	span := NewSpan(nil, "phase")
	if span != nil {
		t.Fatal("nil sink produced a live span")
	}
	span.SetInterval(time.Second)
	if span.Due() {
		t.Fatal("nil span is due")
	}
	span.Progressf("x %d", 1)
	span.Endf("y")
}

func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`requests_total{route="/b"}`, "Requests by route.").Add(2)
	reg.Counter(`requests_total{route="/a"}`, "Requests by route.").Add(1)
	reg.Gauge("in_flight", "In-flight requests.").Set(3)
	reg.Histogram("latency_seconds", "Latency.", []float64{0.1, 0.5}).Observe(0.2)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP in_flight In-flight requests.
# TYPE in_flight gauge
in_flight 3
# HELP latency_seconds Latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 0
latency_seconds_bucket{le="0.5"} 1
latency_seconds_bucket{le="+Inf"} 1
latency_seconds_sum 0.2
latency_seconds_count 1
# HELP requests_total Requests by route.
# TYPE requests_total counter
requests_total{route="/a"} 1
requests_total{route="/b"} 2
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("edges_total", "").Add(42)
	reg.Histogram("lat", "", []float64{1}).Observe(0.5)
	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"edges_total": 42`, `"count": 1`, `"+Inf": 1`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out)
		}
	}
}

func TestSpanEvents(t *testing.T) {
	var events []Event
	span := NewSpan(func(e Event) { events = append(events, e) }, "scan")
	span.SetInterval(0) // every Progressf is due
	if !span.Due() {
		t.Fatal("zero-interval span not due")
	}
	span.Progressf("%d/%d edges", 1, 2)
	span.Endf("%d edges", 2)
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Phase != "scan" || events[0].Message != "1/2 edges" || events[0].Done {
		t.Fatalf("progress event = %+v", events[0])
	}
	if !events[1].Done || events[1].Message != "2 edges" {
		t.Fatalf("end event = %+v", events[1])
	}
	if events[1].Elapsed < 0 {
		t.Fatalf("negative elapsed: %v", events[1].Elapsed)
	}
}

func TestSpanRateLimit(t *testing.T) {
	n := 0
	span := NewSpan(func(Event) { n++ }, "scan")
	span.SetInterval(time.Hour)
	if span.Due() {
		t.Fatal("due immediately after start")
	}
}

func TestTextSink(t *testing.T) {
	var sb strings.Builder
	sink := TextSink(&sb, "irs: ")
	sink(Event{Phase: "scan/exact", Message: "10 edges", Elapsed: 1500 * time.Millisecond})
	sink(Event{Phase: "scan/exact", Message: "20 edges", Elapsed: 3 * time.Second, Done: true})
	out := sb.String()
	if !strings.Contains(out, "irs: scan/exact: … 10 edges (1.5s)") {
		t.Fatalf("progress line:\n%s", out)
	}
	if !strings.Contains(out, "irs: scan/exact: done: 20 edges (3.0s)") {
		t.Fatalf("done line:\n%s", out)
	}
}

func TestCountAndBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{7, "7"}, {1234, "1.2k"}, {4_800_000, "4.8M"}, {2_500_000_000, "2.5G"},
	}
	for _, c := range cases {
		if got := Count(c.n); got != c.want {
			t.Errorf("Count(%d) = %q, want %q", c.n, got, c.want)
		}
	}
	if got := Bytes(44040192); got != "42.0 MB" {
		t.Errorf("Bytes = %q", got)
	}
	if got := Bytes(512); got != "512 B" {
		t.Errorf("Bytes = %q", got)
	}
}
