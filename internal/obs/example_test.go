package obs_test

import (
	"os"

	"ipin/internal/obs"
)

func ExampleRegistry_WritePrometheus() {
	reg := obs.NewRegistry()
	served := reg.Counter("example_requests_total", "Requests served.")
	served.Add(3)
	reg.Gauge("example_queue_depth", "Requests waiting.").Set(1)

	_ = reg.WritePrometheus(os.Stdout)
	// Output:
	// # HELP example_queue_depth Requests waiting.
	// # TYPE example_queue_depth gauge
	// example_queue_depth 1
	// # HELP example_requests_total Requests served.
	// # TYPE example_requests_total counter
	// example_requests_total 3
}
