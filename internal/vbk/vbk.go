// Package vbk implements a versioned bottom-k sketch: the bottom-k
// distinct-counting sketch of Cohen (the estimator behind reference [5]
// of the paper, and the machinery inside SKIM and ConTinEst), extended
// with per-pair timestamps so that it answers the same window-constrained
// cardinality queries as the paper's versioned HyperLogLog.
//
// It exists as the natural alternative design point to internal/vhll:
// same reverse-chronological ingestion contract, same dominance idea,
// different accuracy/memory profile (relative error ≈ 1/√(k−2) with no
// fixed cell array, making it cheaper for nodes with small reach and more
// accurate per byte at small cardinalities). Ablation A4 of the
// experiment harness compares the two under matched memory.
//
// Invariant. Pairs (hash, time) are kept sorted by ascending time with
// pairwise-distinct hashes, and every pair's hash is among the k smallest
// of its prefix (all pairs with earlier-or-equal time). Under reverse
// ingestion every admissible window that contains a pair also contains
// its whole prefix, so a pair outside its prefix's bottom-k can never
// enter any queried bottom-k — dropping it is lossless, which the tests
// verify against a keep-everything reference.
package vbk

import (
	"fmt"

	"ipin/internal/hll"
)

// pair is one retained (hash, time) observation.
type pair struct {
	at   int64
	hash uint64
}

// PairBytes is the payload size of one retained pair for memory
// accounting: an 8-byte timestamp plus an 8-byte hash.
const PairBytes = 16

// Sketch is a versioned bottom-k sketch. The zero value is unusable;
// construct with New.
type Sketch struct {
	k     int
	pairs []pair // ascending time, distinct hashes, bottom-k staircase
}

// New returns an empty sketch retaining the k smallest hashes per
// admissible window. The estimator needs k ≥ 3.
func New(k int) (*Sketch, error) {
	if k < 3 {
		return nil, fmt.Errorf("vbk: k must be >= 3, got %d", k)
	}
	return &Sketch{k: k}, nil
}

// MustNew is New for statically known k; it panics on error.
func MustNew(k int) *Sketch {
	s, err := New(k)
	if err != nil {
		panic(err)
	}
	return s
}

// K returns the sketch size parameter.
func (s *Sketch) K() int { return s.k }

// Add inserts an item identified by a 64-bit value observed at time t.
func (s *Sketch) Add(item uint64, t int64) { s.AddHash(hll.Hash64(item), t) }

// AddHash inserts a pre-hashed item observed at time t.
func (s *Sketch) AddHash(hash uint64, t int64) { s.insert(pair{at: t, hash: hash}) }

// insert places p, maintaining the bottom-k staircase.
func (s *Sketch) insert(p pair) {
	// Dedup by hash: a same-hash pair with earlier-or-equal time covers
	// every window the new pair is in; a later one is covered by the new.
	for i, q := range s.pairs {
		if q.hash != p.hash {
			continue
		}
		if q.at <= p.at {
			return
		}
		s.pairs = append(s.pairs[:i], s.pairs[i+1:]...)
		break
	}
	// Position by time; count strictly smaller hashes in the prefix.
	idx := 0
	smaller := 0
	for idx < len(s.pairs) && s.pairs[idx].at <= p.at {
		if s.pairs[idx].hash < p.hash {
			smaller++
		}
		idx++
	}
	if smaller >= s.k {
		return // dominated in every admissible window
	}
	s.pairs = append(s.pairs, pair{})
	copy(s.pairs[idx+1:], s.pairs[idx:])
	s.pairs[idx] = p
	s.reprune()
}

// reprune re-establishes the staircase: walk in time order keeping each
// pair only if its hash is among the k smallest of the walked prefix,
// tracked with a max-heap of the k smallest hashes seen so far
// (O(L log k) per pass).
func (s *Sketch) reprune() {
	topk := make([]uint64, 0, s.k) // max-heap of the k smallest hashes
	w := 0
	for _, p := range s.pairs {
		switch {
		case len(topk) < s.k:
			heapPush(&topk, p.hash)
			s.pairs[w] = p
			w++
		case p.hash < topk[0]:
			topk[0] = p.hash
			heapSiftDown(topk, 0)
			s.pairs[w] = p
			w++
		default:
			// Not in the bottom-k of its prefix: lossless to drop.
		}
	}
	s.pairs = s.pairs[:w]
}

// heapPush adds h to the max-heap.
func heapPush(h *[]uint64, v uint64) {
	*h = append(*h, v)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent] >= (*h)[i] {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

// heapSiftDown restores the max-heap property from index i.
func heapSiftDown(h []uint64, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h) && h[l] > h[largest] {
			largest = l
		}
		if r < len(h) && h[r] > h[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}

// hashToUnit maps a hash to (0, 1].
func hashToUnit(h uint64) float64 {
	return (float64(h) + 1) / (1 << 63) / 2
}

// estimateFrom computes the bottom-k estimate from the collected
// in-window hashes (unsorted): exact count when fewer than k, otherwise
// (k−1)/h_(k) with h_(k) the k-th smallest normalized hash.
func (s *Sketch) estimateFrom(hashes []uint64) float64 {
	if len(hashes) < s.k {
		return float64(len(hashes))
	}
	// Partial selection of the k-th smallest; len(hashes) stays small
	// because the staircase already filtered to candidates.
	kth := selectKth(hashes, s.k)
	return float64(s.k-1) / hashToUnit(kth)
}

// selectKth returns the k-th smallest element (1-based) of hs, mutating
// hs (quickselect with middle pivot; inputs are hashes, so adversarial
// orderings do not occur).
func selectKth(hs []uint64, k int) uint64 {
	lo, hi := 0, len(hs)-1
	for {
		if lo == hi {
			return hs[lo]
		}
		pivot := hs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for hs[i] < pivot {
				i++
			}
			for hs[j] > pivot {
				j--
			}
			if i <= j {
				hs[i], hs[j] = hs[j], hs[i]
				i++
				j--
			}
		}
		if k-1 <= j {
			hi = j
		} else if k-1 >= i {
			lo = i
		} else {
			return hs[k-1]
		}
	}
}

// EstimateWindow approximates the number of distinct items whose
// timestamp lies in [t, t+omega−1]. As with the versioned HyperLogLog,
// the anchor t must not exceed the earliest inserted timestamp.
func (s *Sketch) EstimateWindow(t, omega int64) float64 {
	hi := t + omega - 1
	var hashes []uint64
	for _, p := range s.pairs {
		if p.at > hi {
			break
		}
		if p.at >= t {
			hashes = append(hashes, p.hash)
		}
	}
	return s.estimateFrom(hashes)
}

// Estimate approximates the number of distinct items ever inserted.
func (s *Sketch) Estimate() float64 {
	hashes := make([]uint64, len(s.pairs))
	for i, p := range s.pairs {
		hashes[i] = p.hash
	}
	return s.estimateFrom(hashes)
}

// MergeWindow folds other into s keeping entries with t_x − t < omega,
// the bottom-k counterpart of the vHLL ApproxMerge.
func (s *Sketch) MergeWindow(other *Sketch, t, omega int64) error {
	if other.k != s.k {
		return fmt.Errorf("vbk: cannot merge k=%d into k=%d", other.k, s.k)
	}
	for _, p := range other.pairs {
		if p.at-t < omega {
			s.insert(p)
		}
	}
	return nil
}

// Merge folds every entry of other into s.
func (s *Sketch) Merge(other *Sketch) error {
	if other.k != s.k {
		return fmt.Errorf("vbk: cannot merge k=%d into k=%d", other.k, s.k)
	}
	for _, p := range other.pairs {
		s.insert(p)
	}
	return nil
}

// PairCount returns the number of retained pairs.
func (s *Sketch) PairCount() int { return len(s.pairs) }

// MemoryBytes returns the payload size: PairBytes per retained pair.
func (s *Sketch) MemoryBytes() int { return len(s.pairs) * PairBytes }

// Clone returns a deep copy.
func (s *Sketch) Clone() *Sketch {
	return &Sketch{k: s.k, pairs: append([]pair(nil), s.pairs...)}
}

// CheckInvariant verifies the staircase: ascending times, distinct
// hashes, and every pair within the bottom-k of its prefix.
func (s *Sketch) CheckInvariant() error {
	seen := make(map[uint64]bool, len(s.pairs))
	for i, p := range s.pairs {
		if i > 0 && p.at < s.pairs[i-1].at {
			return fmt.Errorf("vbk: pair %d breaks time order", i)
		}
		if seen[p.hash] {
			return fmt.Errorf("vbk: duplicate hash at pair %d", i)
		}
		seen[p.hash] = true
		smaller := 0
		for j := 0; j < i; j++ {
			if s.pairs[j].hash < p.hash {
				smaller++
			}
		}
		if smaller >= s.k {
			return fmt.Errorf("vbk: pair %d dominated by %d smaller hashes", i, smaller)
		}
	}
	return nil
}
