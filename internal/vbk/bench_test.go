package vbk

import (
	"testing"

	"ipin/internal/hll"
)

func BenchmarkAddReverseStream(b *testing.B) {
	s := MustNew(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.AddHash(hll.Hash64(uint64(i%65536)), int64(1<<40-i))
	}
}

func BenchmarkEstimateWindow(b *testing.B) {
	s := MustNew(64)
	for i := 0; i < 50000; i++ {
		s.AddHash(hll.Hash64(uint64(i)), int64(1<<30-i))
	}
	anchor := int64(1<<30 - 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.EstimateWindow(anchor, 25000)
	}
}

func BenchmarkMergeWindow(b *testing.B) {
	src := MustNew(64)
	for i := 0; i < 5000; i++ {
		src.AddHash(hll.Hash64(uint64(i)), int64(1<<20-i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := MustNew(64)
		if err := dst.MergeWindow(src, 1<<20-5000, 4000); err != nil {
			b.Fatal(err)
		}
	}
}
