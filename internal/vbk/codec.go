package vbk

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Binary format: 4-byte magic "VBK1", uvarint k, uvarint pair count, then
// pairs as (zigzag-varint timestamp delta, uvarint hash) in time order.
var vbkMagic = [4]byte{'V', 'B', 'K', '1'}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(vbkMagic[:])
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(s.k))
	buf.Write(tmp[:n])
	n = binary.PutUvarint(tmp[:], uint64(len(s.pairs)))
	buf.Write(tmp[:n])
	prev := int64(0)
	for _, p := range s.pairs {
		n = binary.PutVarint(tmp[:], p.at-prev)
		buf.Write(tmp[:n])
		n = binary.PutUvarint(tmp[:], p.hash)
		buf.Write(tmp[:n])
		prev = p.at
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. Decoded sketches
// are verified against the bottom-k staircase invariant.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 5 || !bytes.Equal(data[:4], vbkMagic[:]) {
		return fmt.Errorf("vbk: bad magic")
	}
	r := bytes.NewReader(data[4:])
	k64, err := binary.ReadUvarint(r)
	if err != nil || k64 < 3 || k64 > 1<<20 {
		return fmt.Errorf("vbk: bad k")
	}
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("vbk: pair count: %v", err)
	}
	if count > uint64(r.Len()) {
		return fmt.Errorf("vbk: pair count %d exceeds remaining input", count)
	}
	pairs := make([]pair, count)
	prev := int64(0)
	for i := range pairs {
		delta, err := binary.ReadVarint(r)
		if err != nil {
			return fmt.Errorf("vbk: pair %d time: %v", i, err)
		}
		hash, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("vbk: pair %d hash: %v", i, err)
		}
		prev += delta
		pairs[i] = pair{at: prev, hash: hash}
	}
	if r.Len() != 0 {
		return fmt.Errorf("vbk: %d trailing bytes", r.Len())
	}
	decoded := &Sketch{k: int(k64), pairs: pairs}
	if err := decoded.CheckInvariant(); err != nil {
		return fmt.Errorf("vbk: corrupt payload: %v", err)
	}
	*s = *decoded
	return nil
}
