package vbk

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"ipin/internal/hll"
)

func TestNewValidates(t *testing.T) {
	if _, err := New(2); err == nil {
		t.Error("k=2 accepted")
	}
	s, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 8 {
		t.Fatalf("K = %d", s.K())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestSmallCardinalityIsExact(t *testing.T) {
	s := MustNew(16)
	cur := int64(1000)
	for i := 0; i < 10; i++ {
		cur--
		s.Add(uint64(i), cur)
	}
	if got := s.Estimate(); got != 10 {
		t.Fatalf("estimate %.2f for 10 items below k, want exact 10", got)
	}
	// Duplicates do not change the count.
	s.Add(3, cur-1)
	if got := s.Estimate(); got != 10 {
		t.Fatalf("estimate %.2f after duplicate", got)
	}
}

func TestLargeCardinalityAccuracy(t *testing.T) {
	s := MustNew(128)
	cur := int64(1 << 40)
	const n = 20000
	for i := 0; i < n; i++ {
		cur--
		s.Add(uint64(i), cur)
	}
	est := s.Estimate()
	// Relative error ~1/sqrt(k-2) ≈ 8.9%; allow 5 sigma.
	if rel := math.Abs(est-n) / n; rel > 0.45 {
		t.Fatalf("estimate %.0f for %d items (rel %.3f)", est, n, rel)
	}
}

func TestWindowQueries(t *testing.T) {
	s := MustNew(32)
	// Items at times 1000, 999, ..., 801 (reverse ingestion).
	for i := 0; i < 200; i++ {
		s.Add(uint64(i), int64(1000-i))
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	// Window covering the 20 earliest-ingested... the pairs in
	// [801, 820] are the last 20 ingested: exact below k.
	if got := s.EstimateWindow(801, 20); got != 20 {
		t.Fatalf("small-window estimate %.2f, want exact 20", got)
	}
	if got := s.EstimateWindow(1, 10); got != 0 {
		t.Fatalf("empty-window estimate %.2f", got)
	}
	full := s.EstimateWindow(801, 200)
	if rel := math.Abs(full-200) / 200; rel > 0.6 {
		t.Fatalf("full-window estimate %.1f for 200 items", full)
	}
}

// naiveBK retains everything and answers window bottom-k queries exactly.
type naiveBK struct {
	k     int
	pairs map[uint64]int64 // hash → earliest time
}

func (n *naiveBK) add(h uint64, t int64) {
	if old, ok := n.pairs[h]; !ok || t < old {
		n.pairs[h] = t
	}
}

func (n *naiveBK) estimateWindow(t, omega int64) float64 {
	hi := t + omega - 1
	var hs []uint64
	for h, at := range n.pairs {
		if at >= t && at <= hi {
			hs = append(hs, h)
		}
	}
	if len(hs) < n.k {
		return float64(len(hs))
	}
	sort.Slice(hs, func(a, b int) bool { return hs[a] < hs[b] })
	return float64(n.k-1) / hashToUnit(hs[n.k-1])
}

// TestMatchesNaiveReference: the staircase pruning must be lossless —
// exact agreement with the keep-everything reference on admissible
// window queries over random reverse streams.
func TestMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		k := 3 + rng.Intn(12)
		s := MustNew(k)
		naive := &naiveBK{k: k, pairs: map[uint64]int64{}}
		cur := int64(1 << 30)
		for i := 0; i < 250; i++ {
			cur -= int64(1 + rng.Intn(4))
			h := hll.Hash64(uint64(rng.Intn(120)))
			s.AddHash(h, cur)
			naive.add(h, cur)
		}
		if err := s.CheckInvariant(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for q := 0; q < 40; q++ {
			anchor := cur - int64(rng.Intn(5))
			omega := int64(1 + rng.Intn(1200))
			got := s.EstimateWindow(anchor, omega)
			want := naive.estimateWindow(anchor, omega)
			if got != want {
				t.Fatalf("trial %d (t=%d ω=%d): got %.6f want %.6f", trial, anchor, omega, got, want)
			}
		}
	}
}

// TestNaiveHashDedupKeepsEarliest: a repeated item must count once with
// its earliest (most-window-covering) time.
func TestDuplicateHashKeepsEarliest(t *testing.T) {
	s := MustNew(4)
	s.AddHash(hll.Hash64(42), 100)
	s.AddHash(hll.Hash64(42), 50) // earlier re-observation replaces
	if s.PairCount() != 1 {
		t.Fatalf("pair count %d, want 1", s.PairCount())
	}
	if got := s.EstimateWindow(50, 10); got != 1 {
		t.Fatalf("estimate %.1f at earliest time", got)
	}
	// A later-time duplicate of an existing pair is ignored outright.
	s.AddHash(hll.Hash64(42), 80)
	if s.PairCount() != 1 {
		t.Fatalf("pair count %d after redundant insert", s.PairCount())
	}
}

func TestMergeMatchesInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 15; trial++ {
		a, b, both := MustNew(8), MustNew(8), MustNew(8)
		cur := int64(1 << 20)
		for i := 0; i < 150; i++ {
			cur -= int64(1 + rng.Intn(3))
			h := hll.Hash64(uint64(rng.Intn(80)))
			if rng.Intn(2) == 0 {
				a.AddHash(h, cur)
			} else {
				b.AddHash(h, cur)
			}
			both.AddHash(h, cur)
		}
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		if err := a.CheckInvariant(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for q := 0; q < 15; q++ {
			omega := int64(1 + rng.Intn(3000))
			if got, want := a.EstimateWindow(cur, omega), both.EstimateWindow(cur, omega); got != want {
				t.Fatalf("trial %d ω=%d: merged %.6f != interleaved %.6f", trial, omega, got, want)
			}
		}
	}
}

func TestMergeWindowFilters(t *testing.T) {
	a, b := MustNew(4), MustNew(4)
	b.AddHash(hll.Hash64(1), 100)
	b.AddHash(hll.Hash64(2), 104)
	b.AddHash(hll.Hash64(3), 110)
	if err := a.MergeWindow(b, 100, 5); err != nil {
		t.Fatal(err)
	}
	if a.PairCount() != 2 {
		t.Fatalf("pair count %d, want 2 (110 filtered)", a.PairCount())
	}
}

func TestMergeKMismatch(t *testing.T) {
	if err := MustNew(4).Merge(MustNew(5)); err == nil {
		t.Error("k mismatch accepted by Merge")
	}
	if err := MustNew(4).MergeWindow(MustNew(5), 0, 1); err == nil {
		t.Error("k mismatch accepted by MergeWindow")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := MustNew(4)
	a.AddHash(hll.Hash64(1), 10)
	c := a.Clone()
	c.AddHash(hll.Hash64(2), 5)
	if a.PairCount() != 1 || c.PairCount() != 2 {
		t.Fatalf("clone sharing state: %d vs %d", a.PairCount(), c.PairCount())
	}
}

func TestMemoryAccounting(t *testing.T) {
	s := MustNew(4)
	s.AddHash(hll.Hash64(1), 10)
	s.AddHash(hll.Hash64(2), 9)
	if s.MemoryBytes() != 2*PairBytes {
		t.Fatalf("MemoryBytes = %d", s.MemoryBytes())
	}
}

func TestSelectKth(t *testing.T) {
	hs := []uint64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	for k := 1; k <= len(hs); k++ {
		cp := append([]uint64(nil), hs...)
		if got := selectKth(cp, k); got != uint64(k) {
			t.Fatalf("selectKth(%d) = %d", k, got)
		}
	}
}

// TestStaircaseStaysSmall: the retained pair count grows like k·ln(n),
// not n.
func TestStaircaseStaysSmall(t *testing.T) {
	s := MustNew(16)
	cur := int64(1 << 40)
	for i := 0; i < 30000; i++ {
		cur--
		s.Add(uint64(i), cur)
	}
	// k·ln(n) ≈ 16 · 10.3 ≈ 165; allow generous slack.
	if n := s.PairCount(); n > 600 {
		t.Fatalf("retained %d pairs for 30k inserts", n)
	}
}
