package vbk

import (
	"math/rand"
	"testing"

	"ipin/internal/hll"
)

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := MustNew(16)
	cur := int64(1 << 30)
	for i := 0; i < 500; i++ {
		cur -= int64(1 + rng.Intn(3))
		s.AddHash(hll.Hash64(uint64(rng.Intn(200))), cur)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Sketch
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.K() != s.K() || got.PairCount() != s.PairCount() {
		t.Fatalf("shape changed: k %d/%d pairs %d/%d", got.K(), s.K(), got.PairCount(), s.PairCount())
	}
	if got.Estimate() != s.Estimate() {
		t.Fatal("estimate changed across round trip")
	}
	if got.EstimateWindow(cur, 500) != s.EstimateWindow(cur, 500) {
		t.Fatal("windowed estimate changed")
	}
}

func TestCodecRoundTripEmpty(t *testing.T) {
	s := MustNew(8)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Sketch
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.PairCount() != 0 || got.K() != 8 {
		t.Fatalf("empty round trip: %d pairs, k=%d", got.PairCount(), got.K())
	}
}

func TestCodecRejectsBadInput(t *testing.T) {
	var s Sketch
	if err := s.UnmarshalBinary(nil); err == nil {
		t.Error("nil accepted")
	}
	if err := s.UnmarshalBinary([]byte("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	if err := s.UnmarshalBinary([]byte{'V', 'B', 'K', '1', 1}); err == nil {
		t.Error("k below minimum accepted")
	}
	good, err := func() ([]byte, error) {
		src := MustNew(4)
		src.AddHash(hll.Hash64(1), 10)
		src.AddHash(hll.Hash64(2), 5)
		return src.MarshalBinary()
	}()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.UnmarshalBinary(good[:len(good)-1]); err == nil {
		t.Error("truncation accepted")
	}
	if err := s.UnmarshalBinary(append(good, 7)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestCodecRejectsDuplicateHashes(t *testing.T) {
	// Hand-craft a payload with two identical hashes — the invariant
	// check must refuse it.
	payload := []byte{'V', 'B', 'K', '1',
		3,    // k
		2,    // two pairs
		2, 9, // (t=1, hash 9)
		2, 9, // (t=2, hash 9) duplicate
	}
	var s Sketch
	if err := s.UnmarshalBinary(payload); err == nil {
		t.Fatal("duplicate hashes accepted")
	}
}
