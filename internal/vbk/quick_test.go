package vbk

import (
	"testing"
	"testing/quick"

	"ipin/internal/hll"
)

// Property: the bottom-k staircase invariant survives arbitrary
// reverse-ordered insertion sequences, at several k.
func TestQuickInvariantUnderInsertion(t *testing.T) {
	f := func(items []uint16, kSeed uint8) bool {
		k := 3 + int(kSeed%10)
		s := MustNew(k)
		cur := int64(1 << 30)
		for _, it := range items {
			cur--
			s.AddHash(hll.Hash64(uint64(it)), cur)
		}
		return s.CheckInvariant() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: below k the sketch counts exactly.
func TestQuickExactBelowK(t *testing.T) {
	f := func(items []uint16) bool {
		distinct := map[uint16]bool{}
		for _, it := range items {
			distinct[it] = true
		}
		if len(distinct) >= 64 {
			return true
		}
		s := MustNew(64)
		cur := int64(1 << 30)
		for _, it := range items {
			cur--
			s.Add(uint64(it), cur)
		}
		return s.Estimate() == float64(len(distinct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
