package swhll_test

import (
	"fmt"

	"ipin/internal/swhll"
)

// A live counter over the trailing 60-tick window of a forward stream.
func ExampleCounter() {
	c := swhll.MustNew(10, 60)
	// One new item per tick for 200 ticks.
	for t := int64(1); t <= 200; t++ {
		if err := c.Add(uint64(t), t); err != nil {
			panic(err)
		}
	}
	// Only the last 60 ticks are in the window.
	est := c.Estimate()
	fmt.Println(est > 45 && est < 75)
	// Long after the stream went quiet, the window is empty.
	fmt.Println(c.EstimateAt(1000))
	// Output:
	// true
	// 0
}
