package swhll

import (
	"math"
	"math/rand"
	"testing"

	"ipin/internal/graph"
	"ipin/internal/hll"
)

func TestNewValidates(t *testing.T) {
	if _, err := New(9, 0); err == nil {
		t.Error("window 0 accepted")
	}
	if _, err := New(1, 100); err == nil {
		t.Error("precision 1 accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(9, 0)
}

func TestEmptyCounter(t *testing.T) {
	c := MustNew(9, 100)
	if c.Estimate() != 0 {
		t.Fatalf("empty estimate %.3f", c.Estimate())
	}
	if c.Window() != 100 {
		t.Fatalf("window %d", c.Window())
	}
}

func TestTimeRegressionRejected(t *testing.T) {
	c := MustNew(9, 100)
	if err := c.Add(1, 50); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(2, 49); err == nil {
		t.Fatal("time regression accepted")
	}
	// Equal time is fine.
	if err := c.Add(3, 50); err != nil {
		t.Fatal(err)
	}
}

func TestSlidingWindowBehaviour(t *testing.T) {
	c := MustNew(10, 100)
	// 200 distinct items, one per tick at t=1..200.
	for i := 0; i < 200; i++ {
		if err := c.Add(uint64(i), int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	// The last 100 ticks (101..200) hold exactly 100 distinct items.
	got := c.Estimate()
	if got < 80 || got > 120 {
		t.Fatalf("window estimate %.1f for 100 items", got)
	}
	// Querying at a later now shrinks the window population.
	at250 := c.EstimateAt(250)
	if at250 >= got {
		t.Fatalf("estimate did not decay: %.1f at 200 vs %.1f at 250", got, at250)
	}
	// Far in the future the window is empty.
	if e := c.EstimateAt(1000); e != 0 {
		t.Fatalf("estimate %.1f long after the stream ended", e)
	}
}

func TestRepeatsRefreshRecency(t *testing.T) {
	c := MustNew(10, 50)
	// One item observed at t=1, then re-observed at t=100.
	if err := c.Add(42, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(42, 100); err != nil {
		t.Fatal(err)
	}
	// At t=100 the item is in-window thanks to the refresh.
	if e := c.EstimateAt(100); math.Abs(e-1) > 0.3 {
		t.Fatalf("estimate %.2f at 100, want ≈1", e)
	}
	// At t=160 even the refresh has aged out.
	if e := c.EstimateAt(160); e != 0 {
		t.Fatalf("estimate %.2f at 160, want 0", e)
	}
}

// naiveWindow is the keep-everything reference counter.
type naiveWindow struct {
	window int64
	obs    map[uint64]int64 // item hash → latest observation time
	regs   int
}

func (n *naiveWindow) add(hash uint64, t int64) {
	if old, ok := n.obs[hash]; !ok || t > old {
		n.obs[hash] = t
	}
}

func (n *naiveWindow) estimateAt(precision int, now int64) float64 {
	regs := make([]uint8, 1<<precision)
	for h, t := range n.obs {
		if t > now-n.window && t <= now {
			cell, rank := hll.Split(h, precision)
			if rank > regs[cell] {
				regs[cell] = rank
			}
		}
	}
	return hll.EstimateRegisters(regs)
}

// TestMatchesNaiveReference drives random forward streams into both
// implementations and requires exact agreement at the current time, the
// only query anchor the forward counter promises.
func TestMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		precision := 4 + rng.Intn(3)
		window := int64(1 + rng.Intn(300))
		c := MustNew(precision, window)
		naive := &naiveWindow{window: window, obs: map[uint64]int64{}}
		now := int64(0)
		for i := 0; i < 400; i++ {
			now += int64(rng.Intn(4))
			h := hll.Hash64(uint64(rng.Intn(150)))
			if err := c.AddHash(h, now); err != nil {
				t.Fatal(err)
			}
			naive.add(h, now)
			if i%37 == 0 {
				c.Prune() // pruning must never change results
			}
			got := c.EstimateAt(now)
			want := naive.estimateAt(precision, now)
			if got != want {
				t.Fatalf("trial %d step %d (now=%d, ω=%d): got %.6f, want %.6f",
					trial, i, now, window, got, want)
			}
		}
	}
}

func TestMergeCombinesStreams(t *testing.T) {
	a := MustNew(10, 100)
	b := MustNew(10, 100)
	both := MustNew(10, 100)
	for i := 0; i < 60; i++ {
		tm := int64(i + 1)
		if i%2 == 0 {
			if err := a.Add(uint64(i), tm); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := b.Add(uint64(i), tm); err != nil {
				t.Fatal(err)
			}
		}
		if err := both.Add(uint64(i), tm); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got, want := a.Estimate(), both.Estimate(); got != want {
		t.Fatalf("merged %.3f != combined %.3f", got, want)
	}
	// Mismatched windows refuse to merge.
	if err := a.Merge(MustNew(10, 99)); err == nil {
		t.Fatal("window mismatch accepted")
	}
	if err := a.Merge(MustNew(9, 100)); err == nil {
		t.Fatal("precision mismatch accepted")
	}
}

func TestPruneBoundsMemory(t *testing.T) {
	c := MustNew(8, 50)
	for i := 0; i < 100000; i++ {
		if err := c.Add(uint64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
		if i%1000 == 0 {
			c.Prune()
		}
	}
	c.Prune()
	// After pruning, only entries within the window survive; with ω=50
	// and one distinct item per tick, that is at most ~50 entries (plus
	// staircase slack).
	if n := c.EntryCount(); n > 256 {
		t.Fatalf("entry count %d not bounded by pruning", n)
	}
	if c.PayloadBytes() != c.EntryCount()*9 {
		t.Fatal("payload accounting inconsistent")
	}
	// Truthful retained bytes must also stay bounded by the window: the
	// arena self-compacts once relocation garbage dominates, so a counter
	// pruned down to ~ω entries cannot keep the whole stream's storage.
	if got := c.MemoryBytes(); got > 64<<10 {
		t.Fatalf("retained MemoryBytes = %d not bounded by pruning", got)
	}
}

func TestProfiles(t *testing.T) {
	p, err := NewProfiles(10, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 contacts 5 distinct nodes; node 1 contacts 2; node 2 repeats
	// the same contact.
	tm := graph.Time(1)
	for _, dst := range []graph.NodeID{1, 2, 3, 4, 5} {
		if err := p.Observe(0, dst, tm); err != nil {
			t.Fatal(err)
		}
		tm++
	}
	for _, dst := range []graph.NodeID{6, 7} {
		if err := p.Observe(1, dst, tm); err != nil {
			t.Fatal(err)
		}
		tm++
	}
	for i := 0; i < 4; i++ {
		if err := p.Observe(2, 9, tm); err != nil {
			t.Fatal(err)
		}
		tm++
	}
	if got := p.Profile(0); math.Abs(got-5) > 1 {
		t.Errorf("profile(0) = %.2f, want ≈5", got)
	}
	if got := p.Profile(1); math.Abs(got-2) > 0.5 {
		t.Errorf("profile(1) = %.2f, want ≈2", got)
	}
	if got := p.Profile(2); math.Abs(got-1) > 0.5 {
		t.Errorf("profile(2) = %.2f, want ≈1 (repeats)", got)
	}
	if got := p.Profile(5); got != 0 {
		t.Errorf("profile(5) = %.2f, want 0 (never a source)", got)
	}
	top := p.Top(2)
	if len(top) != 2 || top[0] != 0 || top[1] != 1 {
		t.Errorf("Top(2) = %v, want [0 1]", top)
	}
	if p.MemoryBytes() == 0 {
		t.Error("no memory reported")
	}
}

func TestProfilesWindowDecay(t *testing.T) {
	p, err := NewProfiles(4, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 contacts 1,2,3 at t=1..3, then nothing until t=50 when it
	// contacts only node 3 again.
	for i, dst := range []graph.NodeID{1, 2, 3} {
		if err := p.Observe(0, dst, graph.Time(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Profile(0); math.Abs(got-3) > 0.5 {
		t.Fatalf("profile = %.2f before decay, want ≈3", got)
	}
	if err := p.Observe(0, 3, 50); err != nil {
		t.Fatal(err)
	}
	if got := p.Profile(0); math.Abs(got-1) > 0.5 {
		t.Fatalf("profile = %.2f after decay, want ≈1", got)
	}
}

func TestProfilesValidation(t *testing.T) {
	if _, err := NewProfiles(-1, 9, 10); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := NewProfiles(5, 9, 0); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewProfiles(5, 1, 10); err == nil {
		t.Error("bad precision accepted")
	}
	p, err := NewProfiles(5, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Observe(0, 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.Observe(0, 1, 5); err == nil {
		t.Error("time regression accepted")
	}
}
