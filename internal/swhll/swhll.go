// Package swhll implements a sliding-window HyperLogLog: approximate
// distinct counting over the most recent ω ticks of a FORWARD stream.
//
// This is the structure of Kumar, Calders, Gionis and Tatti, "Maintaining
// sliding-window neighborhood profiles in interaction networks" (ECML
// PKDD 2015) — the paper's reference [15], which its versioned sketch "is
// based on the same notion as". Where internal/vhll serves the
// reverse-chronological IRS scan (queries anchored at ever-earlier
// times), this package serves live forward streams: items arrive in
// non-decreasing time order and queries ask "how many distinct items in
// the last ω ticks?".
//
// The two directions are mirror images: a forward stream with
// non-decreasing timestamps t is a reverse stream with non-increasing
// keys −t, and a trailing window [now−ω+1, now] maps to the leading
// window [−now, −now+ω−1]. The implementation therefore delegates to the
// versioned sketch with negated timestamps, inheriting its
// dominance-staircase invariant, its O(log ω) expected cell size, and its
// property-tested window queries — one mechanism, both scan directions.
package swhll

import (
	"fmt"

	"ipin/internal/hll"
	"ipin/internal/vhll"
)

// Counter approximately counts distinct items within a trailing time
// window of a forward stream. The zero value is unusable; construct with
// New.
type Counter struct {
	inner  *vhll.Sketch
	window int64
	last   int64
	seen   bool
}

// New returns a counter with 2^precision cells and the given window
// length in ticks.
func New(precision int, window int64) (*Counter, error) {
	if window < 1 {
		return nil, fmt.Errorf("swhll: window must be >= 1, got %d", window)
	}
	inner, err := vhll.New(precision)
	if err != nil {
		return nil, fmt.Errorf("swhll: %v", err)
	}
	return &Counter{inner: inner, window: window}, nil
}

// MustNew is New for statically known parameters; it panics on error.
func MustNew(precision int, window int64) *Counter {
	c, err := New(precision, window)
	if err != nil {
		panic(err)
	}
	return c
}

// Window returns the window length in ticks.
func (c *Counter) Window() int64 { return c.window }

// Add records an item observation at time t. Timestamps must be
// non-decreasing; Add returns an error on time regression, the condition
// under which the mirrored dominance rule would silently discard
// information.
func (c *Counter) Add(item uint64, t int64) error {
	return c.AddHash(hll.Hash64(item), t)
}

// AddHash is Add for a pre-hashed item.
func (c *Counter) AddHash(hash uint64, t int64) error {
	if c.seen && t < c.last {
		m().regressions.Inc()
		return fmt.Errorf("swhll: time regressed from %d to %d", c.last, t)
	}
	m().adds.Inc()
	c.last = t
	c.seen = true
	c.inner.AddHash(hash, -t)
	return nil
}

// AddHashBatch records pre-hashed items, hashes[i] at ats[i]. Timestamps
// must be non-decreasing within the batch and against earlier adds; the
// whole batch is validated before any item lands, so a regression
// mid-batch rejects it atomically (unlike a caller loop over AddHash,
// which would apply a prefix).
func (c *Counter) AddHashBatch(hashes []uint64, ats []int64) error {
	if len(hashes) != len(ats) {
		return fmt.Errorf("swhll: batch of %d hashes with %d timestamps", len(hashes), len(ats))
	}
	if len(ats) == 0 {
		return nil
	}
	prev := ats[0]
	if c.seen && prev < c.last {
		m().regressions.Inc()
		return fmt.Errorf("swhll: time regressed from %d to %d", c.last, prev)
	}
	for _, t := range ats[1:] {
		if t < prev {
			m().regressions.Inc()
			return fmt.Errorf("swhll: time regressed from %d to %d", prev, t)
		}
		prev = t
	}
	m().adds.Add(int64(len(hashes)))
	c.last = prev
	c.seen = true
	for i, h := range hashes {
		c.inner.AddHash(h, -ats[i])
	}
	return nil
}

// Estimate approximates the number of distinct items observed in
// (now−window, now], evaluated at the time of the latest Add.
func (c *Counter) Estimate() float64 {
	if !c.seen {
		return 0
	}
	return c.EstimateAt(c.last)
}

// EstimateAt approximates the number of distinct items observed in
// (now−window, now] for a caller-chosen now. now must not precede the
// latest Add — the mirrored sketch discards exactly the entries that can
// no longer matter for such queries.
func (c *Counter) EstimateAt(now int64) float64 {
	// Trailing window [now−window+1, now] in stream time is the leading
	// window [−now, −now+window−1] in mirrored time.
	return c.inner.EstimateWindow(-now, c.window)
}

// Prune discards entries that can no longer influence any admissible
// query (older than window before the latest Add). It is the periodic
// cleanup step of the sliding-window sketch; estimates are unchanged.
//
// The horizon is anchored at c.last, which Merge advances to the maximum
// of the two inputs. That is the correct anchor: EstimateAt requires
// now ≥ last, so after a merge the earlier input's trailing entries may
// be dropped against the LATER input's clock — any query the merged
// counter admits already has them out of window. The consequence is that
// prune and merge commute only up to observable state: pruning two
// counters separately and then merging can retain entries that pruning
// after the merge would drop, but every admissible estimate agrees, and
// one more Prune on the merged counter converges the bytes. The property
// test in prune_merge_test.go pins both facts.
func (c *Counter) Prune() {
	if c.seen {
		m().prunes.Inc()
		c.inner.Prune(-c.last, c.window)
	}
}

// Merge folds other into c: the result answers queries as if both
// streams had been observed. Both counters must share precision and
// window length.
func (c *Counter) Merge(other *Counter) error {
	if other.window != c.window {
		return fmt.Errorf("swhll: window mismatch %d vs %d", other.window, c.window)
	}
	if err := c.inner.Merge(other.inner); err != nil {
		return fmt.Errorf("swhll: %v", err)
	}
	if other.seen && (!c.seen || other.last > c.last) {
		c.last = other.last
	}
	c.seen = c.seen || other.seen
	return nil
}

// MemoryBytes returns the bytes the counter actually retains (arena
// capacity, cell index, slot map), mirroring vhll.MemoryBytes.
func (c *Counter) MemoryBytes() int { return c.inner.MemoryBytes() }

// PayloadBytes returns the implementation-neutral payload size —
// vhll.EntryBytes per stored pair.
func (c *Counter) PayloadBytes() int { return c.inner.PayloadBytes() }

// EntryCount returns the number of stored (rank, timestamp) pairs.
func (c *Counter) EntryCount() int { return c.inner.EntryCount() }
