package swhll

import (
	"fmt"

	"ipin/internal/graph"
	"ipin/internal/hll"
)

// Profiles maintains sliding-window neighborhood profiles over a forward
// interaction stream: for every node, an approximate count of the
// DISTINCT nodes it interacted with (as a source) during the trailing ω
// ticks. This is the end-to-end application of the paper's reference
// [15], and the live-monitoring counterpart of the offline IRS pipeline:
// feed interactions as they happen, read off the current out-neighborhood
// sizes at any moment.
type Profiles struct {
	precision int
	window    int64
	counters  []*Counter // lazily allocated per node
	// hashes caches hll.Hash64 of each node ID (a pure function of the
	// index), so the batch intake hashes each node once ever instead of
	// once per observed edge.
	hashes []uint64
	last   int64
	seen   bool
	// sinceProne counts observations since the last amortized prune.
	sincePrune int
}

// NewProfiles returns a profile maintainer for n nodes with the given
// sketch precision and window length in ticks.
func NewProfiles(n, precision int, window int64) (*Profiles, error) {
	if n < 0 {
		return nil, fmt.Errorf("swhll: negative node count %d", n)
	}
	if window < 1 {
		return nil, fmt.Errorf("swhll: window must be >= 1, got %d", window)
	}
	if precision < hll.MinPrecision || precision > hll.MaxPrecision {
		return nil, fmt.Errorf("swhll: precision %d outside [%d,%d]", precision, hll.MinPrecision, hll.MaxPrecision)
	}
	p := &Profiles{precision: precision, window: window, counters: make([]*Counter, n)}
	p.fillHashes(n)
	return p, nil
}

// fillHashes extends the node-hash cache to cover n nodes.
func (p *Profiles) fillHashes(n int) {
	for u := len(p.hashes); u < n; u++ {
		p.hashes = append(p.hashes, hll.Hash64(uint64(u)))
	}
}

// Observe records interaction (src, dst, t). Timestamps must be
// non-decreasing across calls.
func (p *Profiles) Observe(src, dst graph.NodeID, t graph.Time) error {
	// Destinations beyond the node table are legal (only sources need a
	// counter); hash those directly instead of through the cache.
	if int(dst) < len(p.hashes) {
		return p.observeHashed(src, p.hashes[dst], int64(t))
	}
	return p.observeHashed(src, hll.Hash64(uint64(dst)), int64(t))
}

// observeHashed is Observe with the destination already hashed; the batch
// intake resolves hashes through the node cache before calling it.
func (p *Profiles) observeHashed(src graph.NodeID, dstHash uint64, t int64) error {
	if p.seen && t < p.last {
		return fmt.Errorf("swhll: time regressed from %d to %d", p.last, t)
	}
	p.last = t
	p.seen = true
	c := p.counters[src]
	if c == nil {
		c = MustNew(p.precision, p.window)
		p.counters[src] = c
	}
	if err := c.AddHash(dstHash, t); err != nil {
		return err
	}
	// Amortized cleanup: every ~4096 observations, drop entries that have
	// aged out of every counter's window.
	p.sincePrune++
	if p.sincePrune >= 4096 {
		p.sincePrune = 0
		for _, c := range p.counters {
			if c != nil {
				c.Prune()
			}
		}
	}
	return nil
}

// Grow extends the profile table to cover n nodes; node counts never
// shrink. Live streams introduce node IDs as they go, so the maintainers
// behind them (internal/stream) cannot size the table up front.
func (p *Profiles) Grow(n int) {
	for len(p.counters) < n {
		p.counters = append(p.counters, nil)
	}
	p.fillHashes(n)
}

// ObserveBatch records a time-ordered batch of interactions, growing the
// node table to fit any new IDs first. It is the bulk intake entry the
// streaming ingester feeds with each drained watermark batch; one call
// amortizes the per-edge bookkeeping of Observe over the batch.
func (p *Profiles) ObserveBatch(edges []graph.Interaction) error {
	// Size the node table for the whole batch up front: the hash cache
	// then covers every destination, and the per-edge loop is pure insert
	// work with no growth checks.
	n := len(p.counters)
	for _, e := range edges {
		if m := int(max(e.Src, e.Dst)) + 1; m > n {
			n = m
		}
	}
	p.Grow(n)
	for _, e := range edges {
		if err := p.observeHashed(e.Src, p.hashes[e.Dst], int64(e.At)); err != nil {
			return err
		}
	}
	return nil
}

// Profile returns the estimated number of distinct out-neighbours of u
// within the window ending at the latest observation.
func (p *Profiles) Profile(u graph.NodeID) float64 {
	c := p.counters[u]
	if c == nil || !p.seen {
		return 0
	}
	return c.EstimateAt(p.last)
}

// Prune forces the amortized window cleanup on every counter now,
// resetting the observation countdown. Callers with a natural batch
// boundary (the streaming ingester seals chunks) use it to keep sketch
// memory proportional to the window instead of waiting out the
// observation-count trigger.
func (p *Profiles) Prune() {
	p.sincePrune = 0
	for _, c := range p.counters {
		if c != nil {
			c.Prune()
		}
	}
}

// TopEntry is one row of the live top-k view: a node and its estimated
// distinct out-neighbour count within the current window.
type TopEntry struct {
	Node  graph.NodeID
	Score float64
}

// TopEntries returns the k nodes with the largest current profiles with
// their scores, descending, ties broken by smaller NodeID.
func (p *Profiles) TopEntries(k int) []TopEntry {
	var all []TopEntry
	for u, c := range p.counters {
		if c == nil {
			continue
		}
		if s := c.EstimateAt(p.last); s > 0 {
			all = append(all, TopEntry{Node: graph.NodeID(u), Score: s})
		}
	}
	// Insertion-sort into the top-k prefix; k is small in practice.
	if k > len(all) {
		k = len(all)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].Score > all[best].Score ||
				(all[j].Score == all[best].Score && all[j].Node < all[best].Node) {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	return all[:k:k]
}

// Top returns the k nodes with the largest current profiles, descending,
// ties broken by smaller NodeID.
func (p *Profiles) Top(k int) []graph.NodeID {
	entries := p.TopEntries(k)
	out := make([]graph.NodeID, len(entries))
	for i, e := range entries {
		out[i] = e.Node
	}
	return out
}

// MemoryBytes returns the bytes the profile table actually retains: every
// counter's retained footprint plus the node table and hash cache.
func (p *Profiles) MemoryBytes() int {
	n := cap(p.counters)*8 + cap(p.hashes)*8
	for _, c := range p.counters {
		if c != nil {
			n += c.MemoryBytes()
		}
	}
	return n
}
