package swhll

import (
	"bytes"
	"math/rand"
	"testing"
)

// cloneCounter deep-copies a counter so one stream can be pruned/merged
// along two different orders.
func cloneCounter(c *Counter) *Counter {
	return &Counter{inner: c.inner.Clone(), window: c.window, last: c.last, seen: c.seen}
}

func counterBytes(t *testing.T, c *Counter) []byte {
	t.Helper()
	data, err := c.inner.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	return data
}

// feedCounter streams n random observations with non-decreasing
// timestamps starting at base, returning the counter and its last tick.
func feedCounter(t *testing.T, rng *rand.Rand, base int64, n int, window int64) *Counter {
	t.Helper()
	c := MustNew(9, window)
	now := base
	for i := 0; i < n; i++ {
		now += rng.Int63n(4)
		if err := c.Add(rng.Uint64()%512, now); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	return c
}

// TestPruneMergeCommutes pins the audited contract of Counter.Prune
// after Merge (the prune horizon is c.last, which Merge advances):
//
//  1. Observable equivalence — pruning each input before the merge
//     versus pruning nothing changes no admissible estimate. Queries
//     require now ≥ the merged last tick, and prune drops only entries
//     out of window at that horizon.
//  2. Byte convergence — the two orders may retain different entry sets
//     (prune-each-then-merge prunes the earlier input against its own,
//     earlier clock), but one Prune on the merged counter lands both on
//     identical bytes.
func TestPruneMergeCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		window := int64(8 + rng.Int63n(64))
		// Stagger the bases so the two streams usually end at different
		// ticks — the case where the prune horizons genuinely differ.
		a := feedCounter(t, rng, 1000, 40+rng.Intn(80), window)
		b := feedCounter(t, rng, 1000+rng.Int63n(2*window), 40+rng.Intn(80), window)

		// Order 1: merge the raw counters, then prune.
		mergedRaw := cloneCounter(a)
		if err := mergedRaw.Merge(cloneCounter(b)); err != nil {
			t.Fatalf("merge raw: %v", err)
		}
		// Order 2: prune each input first, then merge.
		pa, pb := cloneCounter(a), cloneCounter(b)
		pa.Prune()
		pb.Prune()
		mergedPruned := pa
		if err := mergedPruned.Merge(pb); err != nil {
			t.Fatalf("merge pruned: %v", err)
		}

		if mergedRaw.last != mergedPruned.last {
			t.Fatalf("trial %d: merged last diverged: %d vs %d", trial, mergedRaw.last, mergedPruned.last)
		}
		// Property 1: every admissible query (now ≥ merged last) agrees,
		// whether or not either side pruned, and whether or not the merged
		// counter prunes afterwards.
		prunedAfter := cloneCounter(mergedRaw)
		prunedAfter.Prune()
		for _, dt := range []int64{0, 1, window / 2, window - 1, window, 3 * window} {
			now := mergedRaw.last + dt
			want := mergedRaw.EstimateAt(now)
			if got := mergedPruned.EstimateAt(now); got != want {
				t.Fatalf("trial %d: EstimateAt(last+%d) diverged: pruned-then-merged %v vs merged %v",
					trial, dt, got, want)
			}
			if got := prunedAfter.EstimateAt(now); got != want {
				t.Fatalf("trial %d: EstimateAt(last+%d) diverged after post-merge prune: %v vs %v",
					trial, dt, got, want)
			}
		}
		// Property 2: one prune on the merged counter converges both
		// orders to identical bytes.
		mergedRaw.Prune()
		mergedPruned.Prune()
		if !bytes.Equal(counterBytes(t, mergedRaw), counterBytes(t, mergedPruned)) {
			t.Fatalf("trial %d: pruned merged counters are not byte-identical", trial)
		}
	}
}
