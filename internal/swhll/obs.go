package swhll

import (
	"sync/atomic"

	"ipin/internal/obs"
)

// metrics are the package's telemetry instruments; nil fields (the
// default) make every record site a no-op. Register-level costs of the
// sliding counter surface through the ipin_vhll_* metrics of the inner
// sketch — this package adds only the stream-facing events.
type metrics struct {
	adds        *obs.Counter
	regressions *obs.Counter
	prunes      *obs.Counter
}

var (
	installed atomic.Pointer[metrics]
	noop      = new(metrics)
)

// m returns the active metrics set, never nil.
func m() *metrics {
	if p := installed.Load(); p != nil {
		return p
	}
	return noop
}

// InstallMetrics registers this package's instruments in reg and starts
// recording into them; nil uninstalls. Install vhll's metrics alongside
// to see the inner register updates and dominance prunes.
func InstallMetrics(reg *obs.Registry) {
	if reg == nil {
		installed.Store(nil)
		return
	}
	installed.Store(&metrics{
		adds:        reg.Counter("ipin_swhll_adds_total", "Item observations recorded by sliding-window counters."),
		regressions: reg.Counter("ipin_swhll_time_regressions_total", "Observations rejected because their timestamp regressed."),
		prunes:      reg.Counter("ipin_swhll_prunes_total", "Prune passes over sliding-window counters."),
	})
}
