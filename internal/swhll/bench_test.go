package swhll

import "testing"

func BenchmarkCounterAdd(b *testing.B) {
	c := MustNew(9, 100000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.Add(uint64(i%65536), int64(i)); err != nil {
			b.Fatal(err)
		}
		if i%8192 == 0 {
			c.Prune()
		}
	}
}

func BenchmarkCounterEstimate(b *testing.B) {
	c := MustNew(9, 100000)
	for i := 0; i < 200000; i++ {
		_ = c.Add(uint64(i), int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Estimate()
	}
}
