package gen

import "math/rand/v2"

// newTestRand returns a fixed-seed RNG for white-box tests.
func newTestRand() *rand.Rand {
	return rand.New(rand.NewPCG(7, 0x9e0))
}
