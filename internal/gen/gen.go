// Package gen generates synthetic interaction networks that stand in for
// the six real datasets of the paper's Table 2 (Enron, Lkml, Facebook,
// Higgs, Slashdot, US-2016), which are not redistributable here.
//
// Three structural models cover the dataset families the paper evaluates:
//
//   - ModelEmail (Enron, Lkml): community-structured mail traffic with
//     Zipf sender activity and reply bursts, which create the long
//     time-respecting chains email networks are known for.
//   - ModelSocial (Facebook, Slashdot): a preferential-attachment backbone
//     whose edges are re-used with heavy-tailed repetition, mimicking wall
//     posts / comment threads.
//   - ModelCascade (Higgs, US-2016): burst-driven retweet-style cascades —
//     branching trees of interactions packed into short time windows,
//     anchored at Zipf-popular roots.
//
// Every generator is fully deterministic given Config.Seed, emits strictly
// increasing timestamps (so the paper's distinct-timestamps assumption
// holds), and scales its node and interaction counts from the Table 2
// figures through Registry.
package gen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"ipin/internal/graph"
)

// Model selects the structural family of a generated network.
type Model int

// The available structural models.
const (
	ModelEmail Model = iota
	ModelSocial
	ModelCascade
	ModelUniform
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case ModelEmail:
		return "email"
	case ModelSocial:
		return "social"
	case ModelCascade:
		return "cascade"
	case ModelUniform:
		return "uniform"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Config parameterizes one synthetic dataset.
type Config struct {
	// Name identifies the dataset in experiment output.
	Name string
	// Model selects the structural family.
	Model Model
	// Nodes and Interactions set |V| and |E|.
	Nodes        int
	Interactions int
	// SpanTicks is the total time span (last − first + 1) of the emitted
	// log, matching the paper's "Days" column at 86400 ticks per day.
	SpanTicks int64
	// Seed makes the dataset reproducible.
	Seed uint64

	// Communities is the number of communities (email model).
	Communities int
	// ZipfS is the Zipf skew exponent for node activity/popularity
	// (must be > 1; typical social-media skew is 1.2–2).
	ZipfS float64
	// ReplyProb is the probability that an interaction triggers a reply
	// shortly after (email model).
	ReplyProb float64
	// BranchMean is the mean offspring count per cascade participant
	// (cascade model).
	BranchMean float64
	// BurstTicks is the time scale of one cascade or reply burst.
	BurstTicks int64
}

// Validate reports the first configuration problem.
func (c Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("gen: %s: need at least 2 nodes, got %d", c.Name, c.Nodes)
	}
	if c.Interactions < 1 {
		return fmt.Errorf("gen: %s: need at least 1 interaction, got %d", c.Name, c.Interactions)
	}
	if c.SpanTicks < int64(c.Interactions) {
		return fmt.Errorf("gen: %s: span %d too small for %d distinct timestamps", c.Name, c.SpanTicks, c.Interactions)
	}
	if c.ZipfS != 0 && c.ZipfS <= 1 {
		return fmt.Errorf("gen: %s: ZipfS must be > 1, got %g", c.Name, c.ZipfS)
	}
	return nil
}

// Generate produces the dataset described by cfg: a sorted log with
// strictly increasing timestamps over exactly cfg.Nodes nodes.
func Generate(cfg Config) (*graph.Log, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x9e0))
	var l *graph.Log
	switch cfg.Model {
	case ModelEmail:
		l = genEmail(cfg, rng)
	case ModelSocial:
		l = genSocial(cfg, rng)
	case ModelCascade:
		l = genCascade(cfg, rng)
	case ModelUniform:
		l = genUniform(cfg, rng)
	default:
		return nil, fmt.Errorf("gen: %s: unknown model %d", cfg.Name, int(cfg.Model))
	}
	l.Sort()
	l.Detie()
	return l, nil
}

// zipf draws Zipf-distributed node indices with exponent s over n nodes.
// Index 0 is the most popular. Implemented by inverse-transform over the
// precomputed CDF so it works with math/rand/v2 sources.
type zipf struct {
	cdf []float64
}

func newZipf(n int, s float64) *zipf {
	if s == 0 {
		s = 1.5
	}
	z := &zipf{cdf: make([]float64, n)}
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += 1.0 / math.Pow(float64(i+1), s)
		z.cdf[i] = acc
	}
	for i := range z.cdf {
		z.cdf[i] /= acc
	}
	return z
}

func (z *zipf) draw(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
