package gen

import (
	"math/rand/v2"
	"sort"

	"ipin/internal/graph"
)

// event is a raw generated interaction before timestamps are normalized
// onto the configured span.
type event struct {
	src, dst graph.NodeID
	at       float64 // raw time, arbitrary scale
}

// finalize sorts events by raw time, rescales onto [0, SpanTicks) and
// builds the log. Detie (called by Generate) separates collisions created
// by the integer flooring.
func finalize(cfg Config, events []event) *graph.Log {
	sort.Slice(events, func(i, j int) bool { return events[i].at < events[j].at })
	lo := events[0].at
	hi := events[len(events)-1].at
	scale := float64(cfg.SpanTicks-1) / (hi - lo)
	if hi == lo {
		scale = 0
	}
	l := graph.New(cfg.Nodes)
	for _, e := range events {
		l.Add(e.src, e.dst, graph.Time((e.at-lo)*scale))
	}
	return l
}

// genEmail models mail traffic: Zipf-active senders pick recipients mostly
// within their community; each mail triggers a reply with probability
// ReplyProb after a short exponential pause. Reply chains are what give
// email networks their long information channels.
func genEmail(cfg Config, rng *rand.Rand) *graph.Log {
	communities := cfg.Communities
	if communities < 1 {
		communities = 1 + cfg.Nodes/400
	}
	comm := make([]int, cfg.Nodes)
	for i := range comm {
		comm[i] = rng.IntN(communities)
	}
	members := make([][]graph.NodeID, communities)
	for i, c := range comm {
		members[c] = append(members[c], graph.NodeID(i))
	}
	activity := newZipf(cfg.Nodes, cfg.ZipfS)
	burst := float64(cfg.BurstTicks)
	if burst <= 0 {
		burst = float64(cfg.SpanTicks) / 2000
	}

	events := make([]event, 0, cfg.Interactions)
	clock := 0.0
	meanGap := float64(cfg.SpanTicks) / float64(cfg.Interactions)
	for len(events) < cfg.Interactions {
		clock += rng.ExpFloat64() * meanGap
		src := graph.NodeID(activity.draw(rng))
		var dst graph.NodeID
		if own := members[comm[src]]; len(own) > 1 && rng.Float64() < 0.8 {
			dst = own[rng.IntN(len(own))]
		} else {
			dst = graph.NodeID(activity.draw(rng))
		}
		if dst == src {
			dst = graph.NodeID((int(src) + 1 + rng.IntN(cfg.Nodes-1)) % cfg.Nodes)
		}
		events = append(events, event{src: src, dst: dst, at: clock})
		// Reply chain: each hop continues with probability ReplyProb.
		from, to := dst, src
		t := clock
		for len(events) < cfg.Interactions && rng.Float64() < cfg.ReplyProb {
			t += rng.ExpFloat64() * burst
			events = append(events, event{src: from, dst: to, at: t})
			// Occasionally the reply is forwarded onwards instead of
			// bouncing back, extending the temporal path.
			if rng.Float64() < 0.3 {
				next := own3rd(members[comm[from]], from, to, rng, cfg.Nodes)
				from, to = to, next
			} else {
				from, to = to, from
			}
		}
	}
	return finalize(cfg, events[:cfg.Interactions])
}

// own3rd picks a community member different from a and b when possible.
func own3rd(member []graph.NodeID, a, b graph.NodeID, rng *rand.Rand, n int) graph.NodeID {
	for try := 0; try < 4; try++ {
		var c graph.NodeID
		if len(member) > 0 {
			c = member[rng.IntN(len(member))]
		} else {
			c = graph.NodeID(rng.IntN(n))
		}
		if c != a && c != b {
			return c
		}
	}
	return graph.NodeID((int(a) + 1) % n)
}

// genSocial models wall-post/comment traffic: a preferential-attachment
// backbone is grown first, then interactions re-use backbone edges with
// heavy-tailed repetition and uniform-ish timing.
func genSocial(cfg Config, rng *rand.Rand) *graph.Log {
	// Grow the backbone: each node attaches to ~3 earlier endpoints chosen
	// preferentially (by sampling from the running endpoint multiset).
	var endpoints []graph.NodeID
	type edge struct{ u, v graph.NodeID }
	var backbone []edge
	attach := 3
	for v := 1; v < cfg.Nodes; v++ {
		for a := 0; a < attach; a++ {
			var u graph.NodeID
			if len(endpoints) > 0 && rng.Float64() < 0.8 {
				u = endpoints[rng.IntN(len(endpoints))]
			} else {
				u = graph.NodeID(rng.IntN(v))
			}
			if u == graph.NodeID(v) {
				continue
			}
			backbone = append(backbone, edge{u: graph.NodeID(v), v: u})
			endpoints = append(endpoints, graph.NodeID(v), u)
		}
	}
	// Re-use backbone edges with Zipf repetition; half the traffic flows
	// against the attachment direction so influence can travel both ways.
	edgePick := newZipf(len(backbone), cfg.ZipfS)
	events := make([]event, 0, cfg.Interactions)
	for len(events) < cfg.Interactions {
		e := backbone[edgePick.draw(rng)]
		at := rng.Float64() * float64(cfg.SpanTicks)
		if rng.Float64() < 0.5 {
			events = append(events, event{src: e.u, dst: e.v, at: at})
		} else {
			events = append(events, event{src: e.v, dst: e.u, at: at})
		}
	}
	return finalize(cfg, events)
}

// genCascade models retweet bursts: Zipf-popular roots start cascades at
// random times; each participant recruits a geometric number of children
// within a short burst window, producing the deep time-respecting trees
// of the Higgs/US-2016 datasets.
func genCascade(cfg Config, rng *rand.Rand) *graph.Log {
	popularity := newZipf(cfg.Nodes, cfg.ZipfS)
	branch := cfg.BranchMean
	if branch <= 0 {
		branch = 1.2
	}
	burst := float64(cfg.BurstTicks)
	if burst <= 0 {
		burst = float64(cfg.SpanTicks) / 500
	}
	events := make([]event, 0, cfg.Interactions)
	type frontier struct {
		node graph.NodeID
		at   float64
	}
	for len(events) < cfg.Interactions {
		root := graph.NodeID(popularity.draw(rng))
		start := rng.Float64() * float64(cfg.SpanTicks)
		queue := []frontier{{node: root, at: start}}
		// Cap each cascade so a single tree cannot swallow the budget.
		capLeft := 1 + rng.IntN(256)
		for len(queue) > 0 && len(events) < cfg.Interactions && capLeft > 0 {
			f := queue[0]
			queue = queue[1:]
			// Geometric offspring with mean `branch`.
			kids := 0
			p := 1 / (1 + branch)
			for rng.Float64() > p {
				kids++
			}
			for c := 0; c < kids && len(events) < cfg.Interactions && capLeft > 0; c++ {
				// Retweeters are mostly fresh accounts: real cascade
				// datasets (Higgs, US-2016) repeat an edge barely ever,
				// so children draw uniformly with only a small popular
				// component.
				var child graph.NodeID
				if rng.Float64() < 0.15 {
					child = graph.NodeID(popularity.draw(rng))
				} else {
					child = graph.NodeID(rng.IntN(cfg.Nodes))
				}
				if child == f.node {
					continue
				}
				at := f.at + rng.ExpFloat64()*burst
				events = append(events, event{src: f.node, dst: child, at: at})
				queue = append(queue, frontier{node: child, at: at})
				capLeft--
			}
		}
	}
	return finalize(cfg, events)
}

// genUniform is the structureless control: uniform random endpoints and
// uniform random times.
func genUniform(cfg Config, rng *rand.Rand) *graph.Log {
	events := make([]event, 0, cfg.Interactions)
	for len(events) < cfg.Interactions {
		src := graph.NodeID(rng.IntN(cfg.Nodes))
		dst := graph.NodeID(rng.IntN(cfg.Nodes))
		if src == dst {
			continue
		}
		events = append(events, event{src: src, dst: dst, at: rng.Float64() * float64(cfg.SpanTicks)})
	}
	return finalize(cfg, events)
}
