package gen

import "testing"

func benchConfig(m Model) Config {
	return Config{
		Name: "bench", Model: m,
		Nodes: 2000, Interactions: 20000, SpanTicks: 10_000_000,
		Seed: 1, ZipfS: 1.4, ReplyProb: 0.4, BranchMean: 1.2,
	}
}

func BenchmarkGenerateEmail(b *testing.B) {
	cfg := benchConfig(ModelEmail)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateSocial(b *testing.B) {
	cfg := benchConfig(ModelSocial)
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateCascade(b *testing.B) {
	cfg := benchConfig(ModelCascade)
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
