package gen

import "fmt"

// TicksPerDay converts the paper's "Days" column into ticks (seconds).
const TicksPerDay = 86400

// table2 holds the characteristics of the paper's Table 2 at full scale:
// nodes and interactions in thousands, span in days, and the structural
// model that family of dataset follows.
var table2 = []struct {
	name         string
	model        Model
	nodesK       float64
	interactionK float64
	days         int64
	zipfS        float64
	replyProb    float64
	branchMean   float64
	extraScale   int // additional down-scaling (US-2016 is 50× the rest)
}{
	{name: "enron", model: ModelEmail, nodesK: 87.3, interactionK: 1148.1, days: 8767, zipfS: 1.3, replyProb: 0.45},
	{name: "lkml", model: ModelEmail, nodesK: 27.4, interactionK: 1048.6, days: 2923, zipfS: 1.25, replyProb: 0.55},
	{name: "facebook", model: ModelSocial, nodesK: 46.9, interactionK: 877.0, days: 1592, zipfS: 1.4},
	{name: "higgs", model: ModelCascade, nodesK: 304.7, interactionK: 526.2, days: 7, zipfS: 1.6, branchMean: 1.3},
	{name: "slashdot", model: ModelSocial, nodesK: 51.1, interactionK: 140.8, days: 978, zipfS: 1.5},
	{name: "us2016", model: ModelCascade, nodesK: 4468, interactionK: 44638, days: 16, zipfS: 1.7, branchMean: 1.4, extraScale: 10},
}

// Dataset returns the generator config for one of the six Table 2 datasets
// at the given down-scaling factor (scale 1 = the paper's full size;
// scale 20 is the default laptop-friendly size used by cmd/experiments).
// US-2016 carries an extra 10× reduction because it is 50× larger than
// the other datasets. The seed is fixed so datasets are identical across
// runs.
func Dataset(name string, scale int) (Config, error) {
	if scale < 1 {
		scale = 1
	}
	for _, d := range table2 {
		if d.name != name {
			continue
		}
		s := scale
		if d.extraScale > 0 {
			s *= d.extraScale
		}
		nodes := int(d.nodesK * 1000 / float64(s))
		interactions := int(d.interactionK * 1000 / float64(s))
		if nodes < 16 {
			nodes = 16
		}
		if interactions < nodes {
			interactions = nodes
		}
		return Config{
			Name:         d.name,
			Model:        d.model,
			Nodes:        nodes,
			Interactions: interactions,
			SpanTicks:    d.days * TicksPerDay,
			Seed:         fixedSeed(d.name),
			ZipfS:        d.zipfS,
			ReplyProb:    d.replyProb,
			BranchMean:   d.branchMean,
		}, nil
	}
	return Config{}, fmt.Errorf("gen: unknown dataset %q (want one of %v)", name, Names())
}

// Names lists the Table 2 dataset names in paper order.
func Names() []string {
	out := make([]string, len(table2))
	for i, d := range table2 {
		out[i] = d.name
	}
	return out
}

// Registry returns all six Table 2 configs at the given scale.
func Registry(scale int) []Config {
	out := make([]Config, 0, len(table2))
	for _, d := range table2 {
		cfg, err := Dataset(d.name, scale)
		if err != nil {
			// Unreachable: Dataset only fails on unknown names.
			panic(err)
		}
		out = append(out, cfg)
	}
	return out
}

// fixedSeed derives a stable per-dataset seed from the name, so that the
// same dataset is generated in every run and every process.
func fixedSeed(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
