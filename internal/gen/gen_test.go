package gen

import (
	"testing"

	"ipin/internal/graph"
)

func smallConfig(model Model) Config {
	return Config{
		Name:         "test-" + model.String(),
		Model:        model,
		Nodes:        200,
		Interactions: 2000,
		SpanTicks:    1_000_000,
		Seed:         42,
		ZipfS:        1.4,
		ReplyProb:    0.4,
		BranchMean:   1.2,
	}
}

func TestGenerateAllModels(t *testing.T) {
	for _, m := range []Model{ModelEmail, ModelSocial, ModelCascade, ModelUniform} {
		cfg := smallConfig(m)
		l, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if l.NumNodes != cfg.Nodes {
			t.Errorf("%v: %d nodes, want %d", m, l.NumNodes, cfg.Nodes)
		}
		if l.Len() != cfg.Interactions {
			t.Errorf("%v: %d interactions, want %d", m, l.Len(), cfg.Interactions)
		}
		if !l.Sorted() {
			t.Errorf("%v: log not sorted", m)
		}
		if !l.HasDistinctTimes() {
			t.Errorf("%v: timestamps not distinct", m)
		}
		_, _, span := l.Span()
		if span < 1 || span > cfg.SpanTicks+int64(cfg.Interactions) {
			t.Errorf("%v: span %d outside expectation (cfg %d)", m, span, cfg.SpanTicks)
		}
		if err := l.Validate(false); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, m := range []Model{ModelEmail, ModelSocial, ModelCascade, ModelUniform} {
		cfg := smallConfig(m)
		a, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Interactions {
			if a.Interactions[i] != b.Interactions[i] {
				t.Fatalf("%v: interaction %d differs between runs", m, i)
			}
		}
	}
}

func TestGenerateSeedChangesOutput(t *testing.T) {
	cfg := smallConfig(ModelEmail)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 43
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Interactions {
		if a.Interactions[i].Src == b.Interactions[i].Src && a.Interactions[i].Dst == b.Interactions[i].Dst {
			same++
		}
	}
	if same == len(a.Interactions) {
		t.Fatal("different seeds produced identical interaction structure")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Name: "n", Nodes: 1, Interactions: 10, SpanTicks: 100},
		{Name: "i", Nodes: 10, Interactions: 0, SpanTicks: 100},
		{Name: "s", Nodes: 10, Interactions: 100, SpanTicks: 50},
		{Name: "z", Nodes: 10, Interactions: 10, SpanTicks: 100, ZipfS: 0.5},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q accepted", cfg.Name)
		}
	}
}

func TestGenerateUnknownModel(t *testing.T) {
	cfg := smallConfig(Model(99))
	if _, err := Generate(cfg); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestActivityIsHeavyTailed(t *testing.T) {
	// The most active sender in an email network must dominate the
	// median sender by a wide margin — that skew is what makes influence
	// maximization non-trivial.
	l, err := Generate(smallConfig(ModelEmail))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, l.NumNodes)
	for _, e := range l.Interactions {
		counts[e.Src]++
	}
	max := 0
	nonzero := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c > 0 {
			nonzero++
		}
	}
	mean := float64(l.Len()) / float64(nonzero)
	if float64(max) < 4*mean {
		t.Errorf("max sender activity %d not heavy-tailed vs mean %.1f", max, mean)
	}
}

func TestCascadeHasTemporalDepth(t *testing.T) {
	// Cascades must contain time-respecting chains of length ≥ 2:
	// some interaction's source was a destination of an earlier one.
	l, err := Generate(smallConfig(ModelCascade))
	if err != nil {
		t.Fatal(err)
	}
	seenAsDst := make([]bool, l.NumNodes)
	chained := 0
	for _, e := range l.Interactions {
		if seenAsDst[e.Src] {
			chained++
		}
		seenAsDst[e.Dst] = true
	}
	if chained < l.Len()/20 {
		t.Errorf("only %d/%d interactions continue a chain", chained, l.Len())
	}
}

func TestModelString(t *testing.T) {
	if ModelEmail.String() != "email" || ModelCascade.String() != "cascade" {
		t.Fatal("Model.String broken")
	}
	if Model(42).String() == "" {
		t.Fatal("unknown model has empty String")
	}
}

func TestRegistryAndDataset(t *testing.T) {
	cfgs := Registry(20)
	if len(cfgs) != 6 {
		t.Fatalf("Registry has %d configs, want 6", len(cfgs))
	}
	names := Names()
	for i, cfg := range cfgs {
		if cfg.Name != names[i] {
			t.Errorf("config %d name %q, want %q", i, cfg.Name, names[i])
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	// Scaled sizes track Table 2 ratios: Enron at scale 20 ≈ 4365 nodes.
	enron, err := Dataset("enron", 20)
	if err != nil {
		t.Fatal(err)
	}
	if enron.Nodes < 4000 || enron.Nodes > 4700 {
		t.Errorf("enron/20 nodes = %d, want ≈4365", enron.Nodes)
	}
	if enron.SpanTicks != 8767*TicksPerDay {
		t.Errorf("enron span = %d ticks, want 8767 days", enron.SpanTicks)
	}
	// US-2016 carries the extra 10× reduction.
	us, err := Dataset("us2016", 20)
	if err != nil {
		t.Fatal(err)
	}
	if us.Nodes > enron.Nodes*6 {
		t.Errorf("us2016/20 nodes = %d not extra-scaled (enron %d)", us.Nodes, enron.Nodes)
	}
	if _, err := Dataset("nosuch", 20); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRegistryDatasetsGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("generation of all registry datasets is slow")
	}
	// Use an aggressive scale so the test stays fast while still running
	// every model end to end with its registry parameters.
	for _, cfg := range Registry(400) {
		l, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if l.Len() != cfg.Interactions || !l.HasDistinctTimes() {
			t.Fatalf("%s: bad output (%d interactions)", cfg.Name, l.Len())
		}
	}
}

// TestRegistryShapesMatchFamilies validates the structural claims of
// DESIGN.md §3: email networks repeat edges heavily (reply traffic),
// social networks re-use a backbone, cascades barely repeat; all have a
// dominant hub far above the median.
func TestRegistryShapesMatchFamilies(t *testing.T) {
	wantRepetition := map[string]struct{ min, max float64 }{
		"enron":    {1.5, 100}, // email: heavy repetition
		"lkml":     {1.5, 100}, //
		"facebook": {1.5, 100}, // social: backbone re-use
		"slashdot": {1.2, 100}, //
		"higgs":    {1.0, 2.0}, // cascade: barely repeats
		"us2016":   {1.0, 2.0}, //
	}
	for _, cfg := range Registry(100) {
		l, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		s := graph.ComputeStats(l)
		w := wantRepetition[cfg.Name]
		if s.RepetitionRatio < w.min || s.RepetitionRatio > w.max {
			t.Errorf("%s: repetition ratio %.2f outside [%g,%g]", cfg.Name, s.RepetitionRatio, w.min, w.max)
		}
		if s.MaxOutActivity < 4*s.MedianOutActivity {
			t.Errorf("%s: activity not heavy-tailed (max %d, median %d)", cfg.Name, s.MaxOutActivity, s.MedianOutActivity)
		}
	}
}

func TestFixedSeedStable(t *testing.T) {
	if fixedSeed("enron") != fixedSeed("enron") {
		t.Fatal("fixedSeed not stable")
	}
	if fixedSeed("enron") == fixedSeed("lkml") {
		t.Fatal("fixedSeed collides on dataset names")
	}
}

func TestZipfDrawRange(t *testing.T) {
	z := newZipf(50, 1.5)
	rng := newTestRand()
	seen0 := false
	for i := 0; i < 5000; i++ {
		v := z.draw(rng)
		if v < 0 || v >= 50 {
			t.Fatalf("zipf draw %d out of range", v)
		}
		if v == 0 {
			seen0 = true
		}
	}
	if !seen0 {
		t.Fatal("most popular rank never drawn in 5000 samples")
	}
}

// TestZipfSkew: rank 0 must be drawn far more often than rank 25.
func TestZipfSkew(t *testing.T) {
	z := newZipf(50, 1.5)
	rng := newTestRand()
	counts := make([]int, 50)
	for i := 0; i < 20000; i++ {
		counts[z.draw(rng)]++
	}
	if counts[0] < 4*counts[25] {
		t.Errorf("zipf not skewed: rank0=%d rank25=%d", counts[0], counts[25])
	}
}

func TestFinalizeEdgeCases(t *testing.T) {
	// A single event: scale factor degenerates but must not divide by
	// zero; the log still carries exactly one interaction.
	cfg := Config{Name: "one", Model: ModelUniform, Nodes: 4, Interactions: 1, SpanTicks: 100, Seed: 1}
	l, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Fatalf("got %d interactions", l.Len())
	}
}

func TestGenerateTinySpan(t *testing.T) {
	// SpanTicks exactly equal to Interactions: every tick carries one
	// interaction after de-tying.
	cfg := Config{Name: "tight", Model: ModelUniform, Nodes: 8, Interactions: 64, SpanTicks: 64, Seed: 2}
	l, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !l.HasDistinctTimes() {
		t.Fatal("ties survived a tight span")
	}
}

func TestEmailModelHasReplyStructure(t *testing.T) {
	cfg := smallConfig(ModelEmail)
	cfg.ReplyProb = 0.6
	l, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count interactions that reverse a recent interaction (a reply):
	// (u,v) closely following (v,u).
	type pair struct{ a, b graph.NodeID }
	lastAt := map[pair]graph.Time{}
	replies := 0
	for _, e := range l.Interactions {
		if at, ok := lastAt[pair{e.Dst, e.Src}]; ok && e.At-at < graph.Time(cfg.SpanTicks/50) {
			replies++
		}
		lastAt[pair{e.Src, e.Dst}] = e.At
	}
	if replies < l.Len()/20 {
		t.Errorf("only %d/%d reply-like interactions at ReplyProb=0.6", replies, l.Len())
	}
}

func TestGraphTypeIntegration(t *testing.T) {
	// The generated logs feed straight into the static projections.
	l, err := Generate(smallConfig(ModelSocial))
	if err != nil {
		t.Fatal(err)
	}
	s := graph.StaticFrom(l)
	if s.NumEdges() == 0 {
		t.Fatal("static projection empty")
	}
	ws := graph.WeightedFrom(l)
	if ws.NumEdges() == 0 {
		t.Fatal("weighted projection empty")
	}
}
