package exp

import (
	"fmt"
	"time"

	"ipin/internal/core"
	"ipin/internal/graph"
	"ipin/internal/stats"
)

// Table3Row is one cell of the paper's Table 3: the average relative
// error of the sketch estimate of |σω(u)| over all nodes with a non-empty
// IRS, for one dataset, one β and one window length.
type Table3Row struct {
	Dataset   string
	Beta      int
	WindowPct float64
	AvgRelErr float64
}

// Table3 reproduces the accuracy study: for every β = 2^p and window
// percentage it compares the approximate IRS sizes against the exact
// algorithm. The paper runs this on Higgs and Slashdot, the two datasets
// small enough for the exact algorithm.
func Table3(d Dataset, precisions []int, windowPcts []float64) ([]Table3Row, error) {
	var rows []Table3Row
	for _, pct := range windowPcts {
		omega := d.Omega(pct)
		exact := core.ComputeExact(d.Log, omega)
		truth := make([]float64, d.Log.NumNodes)
		for u := range truth {
			truth[u] = float64(exact.IRSSize(graph.NodeID(u)))
		}
		for _, p := range precisions {
			approx, err := core.ComputeApprox(d.Log, omega, p)
			if err != nil {
				return nil, fmt.Errorf("exp: table3 %s β=%d: %v", d.Name, 1<<p, err)
			}
			var errs []float64
			for u := range truth {
				if truth[u] == 0 {
					continue
				}
				errs = append(errs, stats.RelErr(approx.EstimateIRS(graph.NodeID(u)), truth[u]))
			}
			rows = append(rows, Table3Row{
				Dataset:   d.Name,
				Beta:      1 << p,
				WindowPct: pct,
				AvgRelErr: stats.Mean(errs),
			})
		}
	}
	return rows, nil
}

// Table4Row is one cell of the paper's Table 4: sketch memory for one
// dataset at one window length.
type Table4Row struct {
	Dataset   string
	WindowPct float64
	Bytes     int
	// Entries is the number of stored (rank, timestamp) pairs, the
	// implementation-neutral size the byte count derives from.
	Entries int
}

// Table4 reproduces the memory study: the total payload bytes of all
// per-node sketches after processing the full log.
func Table4(d Dataset, windowPcts []float64, precision int) ([]Table4Row, error) {
	rows := make([]Table4Row, 0, len(windowPcts))
	for _, pct := range windowPcts {
		approx, err := core.ComputeApprox(d.Log, d.Omega(pct), precision)
		if err != nil {
			return nil, fmt.Errorf("exp: table4 %s ω=%g%%: %v", d.Name, pct, err)
		}
		rows = append(rows, Table4Row{
			Dataset:   d.Name,
			WindowPct: pct,
			Bytes:     approx.MemoryBytes(),
			Entries:   approx.EntryCount(),
		})
	}
	return rows, nil
}

// Table5Row reports, for one dataset, how many of the top-K seeds two
// window lengths share — the paper's Table 5 with K = 10 and the pairs
// (1,10), (1,20), (10,20).
type Table5Row struct {
	Dataset string
	PctA    float64
	PctB    float64
	TopK    int
	Common  int
}

// Table5 reproduces the seed-stability study using the approximate IRS
// selection at each window length.
func Table5(d Dataset, windowPcts []float64, topK, precision int) ([]Table5Row, error) {
	seedSets := make([][]graph.NodeID, len(windowPcts))
	for i, pct := range windowPcts {
		s, err := core.ComputeApprox(d.Log, d.Omega(pct), precision)
		if err != nil {
			return nil, fmt.Errorf("exp: table5 %s ω=%g%%: %v", d.Name, pct, err)
		}
		seedSets[i] = core.TopKApproxSeeds(s, topK)
	}
	var rows []Table5Row
	for i := 0; i < len(windowPcts); i++ {
		for j := i + 1; j < len(windowPcts); j++ {
			rows = append(rows, Table5Row{
				Dataset: d.Name,
				PctA:    windowPcts[i],
				PctB:    windowPcts[j],
				TopK:    topK,
				Common:  stats.Overlap(seedSets[i], seedSets[j]),
			})
		}
	}
	return rows, nil
}

// Table6Row reports the wall-clock time one method needs to select the
// top-k seeds on one dataset — the paper's Table 6 with k = 50.
type Table6Row struct {
	Dataset string
	Method  Method
	Elapsed time.Duration
	Skipped bool
}

// Table6 reproduces the seed-selection-time study across all methods.
func Table6(d Dataset, methods []Method, k int, windowPct float64, cfg MethodConfig) ([]Table6Row, error) {
	omega := d.Omega(windowPct)
	rows := make([]Table6Row, 0, len(methods))
	for _, m := range methods {
		sel, err := SelectSeeds(m, d, k, omega, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table6Row{Dataset: d.Name, Method: m, Elapsed: sel.Elapsed, Skipped: sel.Skipped})
	}
	return rows, nil
}
