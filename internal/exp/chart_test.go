package exp

import (
	"strings"
	"testing"
	"time"
)

func TestChartRendersSeries(t *testing.T) {
	c := Chart{
		Title:  "demo",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "linear", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
			{Name: "flat", X: []float64{0, 1, 2, 3}, Y: []float64{1, 1, 1, 1}},
		},
	}
	out := c.Text()
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* linear") || !strings.Contains(out, "o flat") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Error("no plotted points")
	}
	// The linear series' highest point sits on the top row, its lowest on
	// the bottom plot row.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "*") {
		t.Errorf("top row has no point:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart{Title: "empty"}.Text()
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart rendered %q", out)
	}
}

func TestChartLogYSkipsNonPositive(t *testing.T) {
	c := Chart{
		LogY: true,
		Series: []Series{
			{Name: "s", X: []float64{1, 2, 3}, Y: []float64{0, 10, 100}},
		},
	}
	out := c.Text()
	if !strings.Contains(out, "*") {
		t.Errorf("log chart lost all points:\n%s", out)
	}
}

func TestChartSingleValueRanges(t *testing.T) {
	c := Chart{
		Series: []Series{{Name: "dot", X: []float64{5}, Y: []float64{7}}},
	}
	out := c.Text()
	if !strings.Contains(out, "*") {
		t.Errorf("single point lost:\n%s", out)
	}
}

func TestChartFig3GroupsByDataset(t *testing.T) {
	pts := []Fig3Point{
		{Dataset: "a", WindowPct: 1, Elapsed: time.Millisecond},
		{Dataset: "a", WindowPct: 10, Elapsed: 2 * time.Millisecond},
		{Dataset: "b", WindowPct: 1, Elapsed: 3 * time.Millisecond},
	}
	c := ChartFig3(pts)
	if len(c.Series) != 2 {
		t.Fatalf("got %d series", len(c.Series))
	}
	if !c.LogY {
		t.Error("figure 3 should use a log y axis")
	}
	if out := c.Text(); !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Errorf("chart legend:\n%s", out)
	}
}

func TestChartFig4(t *testing.T) {
	pts := []Fig4Point{
		{Dataset: "a", Seeds: 1, Elapsed: time.Microsecond},
		{Dataset: "a", Seeds: 1000, Elapsed: time.Millisecond},
	}
	c := ChartFig4(pts)
	if len(c.Series) != 1 || len(c.Series[0].X) != 2 {
		t.Fatalf("series = %+v", c.Series)
	}
}

func TestChartFig5(t *testing.T) {
	pts := []Fig5Point{
		{Dataset: "lkml", Method: MethodPR, K: 5, WindowPct: 1, P: 0.5, Spread: 10},
		{Dataset: "lkml", Method: MethodPR, K: 10, WindowPct: 1, P: 0.5, Spread: 20},
		{Dataset: "lkml", Method: MethodIRSExact, K: 5, WindowPct: 1, P: 0.5, Spread: 30},
		{Dataset: "lkml", Method: MethodCTE, K: 5, Skipped: true},
	}
	c := ChartFig5(pts)
	if len(c.Series) != 2 {
		t.Fatalf("got %d series (skipped method must be dropped)", len(c.Series))
	}
	if !strings.Contains(c.Title, "lkml") {
		t.Errorf("title %q", c.Title)
	}
}
