package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipin/internal/core"
	"ipin/internal/gen"
	"ipin/internal/graph"
)

// tinyDataset generates a small but structured network for fast harness
// tests.
func tinyDataset(t *testing.T) Dataset {
	t.Helper()
	cfg := gen.Config{
		Name:         "tiny",
		Model:        gen.ModelEmail,
		Nodes:        150,
		Interactions: 1500,
		SpanTicks:    500_000,
		Seed:         5,
		ZipfS:        1.3,
		ReplyProb:    0.4,
	}
	l, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return Dataset{Name: "tiny", Log: l}
}

// fastMethodConfig keeps the baselines cheap in tests.
func fastMethodConfig() MethodConfig {
	cfg := DefaultMethodConfig()
	cfg.SKIM.Instances = 8
	cfg.SKIM.K = 8
	cfg.CTE.Samples = 2
	cfg.CTE.Labels = 4
	return cfg
}

func TestLoadFromPrefersFiles(t *testing.T) {
	dir := t.TempDir()
	// A tiny "real" enron with tied timestamps that must be de-tied.
	content := "a b 10\nb c 10\nc a 30\n"
	if err := os.WriteFile(filepath.Join(dir, "enron.txt"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadFrom(dir, "enron", 20)
	if err != nil {
		t.Fatal(err)
	}
	if d.Log.Len() != 3 || d.Log.NumNodes != 3 {
		t.Fatalf("file dataset: %d interactions / %d nodes", d.Log.Len(), d.Log.NumNodes)
	}
	if !d.Log.HasDistinctTimes() {
		t.Fatal("ties not separated")
	}
	// Names without a file fall back to the generator.
	d2, err := LoadFrom(dir, "slashdot", 400)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Log.Len() < 100 {
		t.Fatalf("generator fallback produced %d interactions", d2.Log.Len())
	}
	// Malformed files error out rather than silently falling back.
	if err := os.WriteFile(filepath.Join(dir, "lkml.txt"), []byte("broken line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFrom(dir, "lkml", 20); err == nil {
		t.Fatal("malformed file accepted")
	}
}

func TestLoadKnownAndUnknown(t *testing.T) {
	d, err := Load("slashdot", 400)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "slashdot" || d.Log.Len() == 0 {
		t.Fatal("slashdot load broken")
	}
	if _, err := Load("nosuch", 10); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestTable2(t *testing.T) {
	d := tinyDataset(t)
	rows := Table2([]Dataset{d})
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r.Nodes != 150 || r.Interactions != 1500 {
		t.Fatalf("row = %+v", r)
	}
	if r.Days <= 0 {
		t.Fatalf("days = %g", r.Days)
	}
	txt := RenderTable2(rows).Text()
	if !strings.Contains(txt, "tiny") || !strings.Contains(txt, "1500") {
		t.Fatalf("render missing content:\n%s", txt)
	}
}

func TestTable3ErrorShrinksWithBeta(t *testing.T) {
	d := tinyDataset(t)
	rows, err := Table3(d, []int{4, 9}, []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Beta != 16 || rows[1].Beta != 512 {
		t.Fatalf("betas = %d,%d", rows[0].Beta, rows[1].Beta)
	}
	if rows[1].AvgRelErr >= rows[0].AvgRelErr {
		t.Errorf("error did not shrink with beta: %.4f → %.4f", rows[0].AvgRelErr, rows[1].AvgRelErr)
	}
	if rows[1].AvgRelErr > 0.15 {
		t.Errorf("β=512 error %.4f too large", rows[1].AvgRelErr)
	}
}

func TestTable4MemoryGrowsWithWindow(t *testing.T) {
	d := tinyDataset(t)
	rows, err := Table4(d, []float64{1, 20}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Bytes <= 0 {
		t.Fatal("zero memory reported")
	}
	if rows[1].Bytes < rows[0].Bytes {
		t.Errorf("memory shrank with window: %d → %d", rows[0].Bytes, rows[1].Bytes)
	}
	if rows[0].Bytes != rows[0].Entries*9 {
		t.Errorf("bytes %d != 9·entries %d", rows[0].Bytes, rows[0].Entries)
	}
}

func TestFig3ProducesAllPoints(t *testing.T) {
	d := tinyDataset(t)
	pts, err := Fig3(d, []float64{1, 10, 50}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.Elapsed <= 0 {
			t.Errorf("window %g%%: non-positive elapsed", p.WindowPct)
		}
	}
}

func TestFig4QueryTimes(t *testing.T) {
	d := tinyDataset(t)
	pts, err := Fig4(d, []int{1, 10, 100}, 20, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.Elapsed < 0 {
			t.Errorf("seeds %d: negative elapsed", p.Seeds)
		}
	}
}

func TestFig5AllMethods(t *testing.T) {
	d := tinyDataset(t)
	params := Fig5Params{
		Methods:     AllMethods(),
		Ks:          []int{2, 5},
		WindowPct:   20,
		P:           0.5,
		Trials:      4,
		Parallelism: 2,
		Seed:        1,
	}
	pts, err := Fig5(d, params, fastMethodConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(params.Methods) * len(params.Ks); len(pts) != want {
		t.Fatalf("got %d points, want %d", len(pts), want)
	}
	byMethod := map[Method][]Fig5Point{}
	for _, p := range pts {
		if p.Skipped {
			t.Fatalf("method %s skipped on tiny dataset", p.Method)
		}
		if p.Spread < 0 || p.Spread > float64(d.Log.NumNodes) {
			t.Fatalf("spread %.1f out of range", p.Spread)
		}
		byMethod[p.Method] = append(byMethod[p.Method], p)
	}
	// More seeds never hurt (averaged spreads; allow small noise).
	for m, ps := range byMethod {
		if ps[1].Spread < ps[0].Spread-2 {
			t.Errorf("%s: spread fell from %.1f (k=2) to %.1f (k=5)", m, ps[0].Spread, ps[1].Spread)
		}
	}
}

func TestFig5CTESkipsOversized(t *testing.T) {
	d := tinyDataset(t)
	cfg := fastMethodConfig()
	cfg.CTEMaxNodes = 10 // force the skip path
	params := Fig5Params{Methods: []Method{MethodCTE}, Ks: []int{2}, WindowPct: 20, P: 1, Trials: 1, Seed: 1}
	pts, err := Fig5(d, params, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || !pts[0].Skipped {
		t.Fatalf("expected a skipped point, got %+v", pts)
	}
}

func TestFig5RejectsEmptyKs(t *testing.T) {
	d := tinyDataset(t)
	if _, err := Fig5(d, Fig5Params{Methods: AllMethods()}, fastMethodConfig()); err == nil {
		t.Fatal("empty Ks accepted")
	}
}

func TestTable5PairsAndBounds(t *testing.T) {
	d := tinyDataset(t)
	rows, err := Table5(d, []float64{1, 10, 20}, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 pairs", len(rows))
	}
	for _, r := range rows {
		if r.Common < 0 || r.Common > r.TopK {
			t.Fatalf("common %d out of [0,%d]", r.Common, r.TopK)
		}
	}
}

func TestTable6AllMethods(t *testing.T) {
	d := tinyDataset(t)
	rows, err := Table6(d, AllMethods(), 5, 20, fastMethodConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AllMethods()) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Skipped && r.Elapsed <= 0 {
			t.Errorf("%s: non-positive elapsed", r.Method)
		}
	}
}

func TestSelectSeedsUnknownMethod(t *testing.T) {
	d := tinyDataset(t)
	if _, err := SelectSeeds(Method("nope"), d, 3, 100, fastMethodConfig()); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestSelectSeedsIRSVariantsAgreeOnTop1(t *testing.T) {
	// On a heavily skewed network the clear winner must be found by both
	// the exact and the sketch selection.
	d := tinyDataset(t)
	omega := d.Omega(20)
	cfg := fastMethodConfig()
	exact, err := SelectSeeds(MethodIRSExact, d, 1, omega, cfg)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := SelectSeeds(MethodIRSApprox, d, 1, omega, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Seeds[0] != approx.Seeds[0] {
		t.Logf("note: exact top-1 %d vs approx top-1 %d (allowed on near-ties)", exact.Seeds[0], approx.Seeds[0])
	}
	if len(exact.Seeds) != 1 || len(approx.Seeds) != 1 {
		t.Fatal("wrong seed counts")
	}
}

func TestAblations(t *testing.T) {
	d := tinyDataset(t)
	v, err := AblationVersioning(d, []float64{1, 20}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 2 {
		t.Fatalf("versioning rows = %d", len(v))
	}
	// At the small window the window-less sketch must be much worse.
	if v[0].PlainHLLErr <= v[0].VHLLErr {
		t.Errorf("plain HLL err %.4f not worse than vHLL %.4f at ω=1%%", v[0].PlainHLLErr, v[0].VHLLErr)
	}

	c, err := AblationCELF(d, []int{3, 6}, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range c {
		if r.GreedySpread != r.CELFSpread {
			t.Errorf("k=%d: greedy %g != CELF %g", r.K, r.GreedySpread, r.CELFSpread)
		}
	}

	b, err := AblationBeta(d, []int{4, 6, 9}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 3 {
		t.Fatalf("beta rows = %d", len(b))
	}
	if b[2].Bytes <= b[0].Bytes {
		t.Errorf("memory did not grow with beta: %d → %d", b[0].Bytes, b[2].Bytes)
	}

	sk, err := AblationSketchFamilies(d, []float64{10}, 9, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(sk) != 1 {
		t.Fatalf("sketch rows = %d", len(sk))
	}
	r := sk[0]
	if r.VHLLErr <= 0 && r.BKErr <= 0 {
		t.Error("both sketch families report zero error — suspicious")
	}
	if r.VHLLBytes <= 0 || r.BKBytes <= 0 {
		t.Error("missing memory accounting")
	}
	if r.VHLLErr > 0.2 || r.BKErr > 0.2 {
		t.Errorf("sketch errors too large: vHLL %.4f, vBK %.4f", r.VHLLErr, r.BKErr)
	}
	if txt := RenderAblationSketch(sk).Text(); !strings.Contains(txt, "vBK") {
		t.Errorf("A4 render:\n%s", txt)
	}
}

func TestRenderersCoverRows(t *testing.T) {
	d := tinyDataset(t)
	t3, err := Table3(d, []int{6}, []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	if txt := RenderTable3(t3).Text(); !strings.Contains(txt, "64") {
		t.Errorf("table3 render:\n%s", txt)
	}
	t4, err := Table4(d, []float64{10}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if txt := RenderTable4(t4).Text(); !strings.Contains(txt, "tiny") {
		t.Errorf("table4 render:\n%s", txt)
	}
	rows := []Table6Row{{Dataset: "x", Method: MethodCTE, Skipped: true}}
	if txt := RenderTable6(rows).Text(); !strings.Contains(txt, "-") {
		t.Errorf("table6 skip render:\n%s", txt)
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "x,y"}, {"2", `quote"inside`}},
	}
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "a,b\n1,\"x,y\"\n2,\"quote\"\"inside\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

// TestLargeScaleSmoke drives the full approximate pipeline on the
// largest scaled dataset to guard the size-dependent code paths (sparse
// cell iteration, lazy sketch allocation, greedy over tens of thousands
// of candidates).
func TestLargeScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale smoke is slow")
	}
	d, err := Load("us2016", 100) // ~4.5k nodes, ~45k interactions
	if err != nil {
		t.Fatal(err)
	}
	omega := d.Omega(10)
	approx, err := core.ComputeApprox(d.Log, omega, 9)
	if err != nil {
		t.Fatal(err)
	}
	// CELF: the lazy greedy is the scalable selection path.
	seeds := core.TopKApproxCELF(approx, 25)
	if len(seeds) != 25 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	oracle := core.NewApproxOracle(approx)
	spread := oracle.Spread(seeds)
	// The estimate may overshoot n by sketch error, but not wildly.
	if spread <= 0 || spread > 1.3*float64(d.Log.NumNodes) {
		t.Fatalf("spread %.1f out of range for %d nodes", spread, d.Log.NumNodes)
	}
	// The combined spread is consistent with the best single seed up to
	// estimator noise.
	if best := oracle.InfluenceSize(seeds[0]); spread < 0.8*best {
		t.Fatalf("spread %.1f far below top seed's own reach %.1f", spread, best)
	}
}

func TestOmegaHelper(t *testing.T) {
	l := graph.New(2)
	l.Add(0, 1, 0)
	l.Add(1, 0, 999)
	l.Sort()
	d := Dataset{Name: "x", Log: l}
	if got := d.Omega(10); got != 100 {
		t.Fatalf("Omega(10) = %d, want 100", got)
	}
}
