package exp

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a rendered experiment result: a caption, a header row and the
// data rows, ready for text or CSV output.
type Table struct {
	Caption string
	Header  []string
	Rows    [][]string
}

// Text renders the table with aligned columns.
func (t Table) Text() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table,
// caption first as a bold paragraph.
func (t Table) Markdown() string {
	var b strings.Builder
	if t.Caption != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Caption)
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	row := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" " + esc(c) + " |")
		}
		b.WriteByte('\n')
	}
	row(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// WriteCSV writes the table as CSV (header first). Cells are escaped only
// as far as the simple numeric/identifier content of this harness needs.
func (t Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// RenderTable2 formats Table 2 rows.
func RenderTable2(rows []Table2Row) Table {
	t := Table{
		Caption: "Table 2: characteristics of the generated interaction networks",
		Header:  []string{"dataset", "|V|", "|E|", "days"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Name,
			fmt.Sprintf("%d", r.Nodes),
			fmt.Sprintf("%d", r.Interactions),
			fmt.Sprintf("%.0f", r.Days),
		})
	}
	return t
}

// RenderTable3 formats Table 3 rows.
func RenderTable3(rows []Table3Row) Table {
	t := Table{
		Caption: "Table 3: average relative error of the IRS size estimate",
		Header:  []string{"dataset", "beta", "window%", "avg rel err"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Dataset,
			fmt.Sprintf("%d", r.Beta),
			fmt.Sprintf("%g", r.WindowPct),
			fmt.Sprintf("%.4f", r.AvgRelErr),
		})
	}
	return t
}

// RenderTable4 formats Table 4 rows.
func RenderTable4(rows []Table4Row) Table {
	t := Table{
		Caption: "Table 4: sketch memory after processing all interactions",
		Header:  []string{"dataset", "window%", "memory", "entries"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Dataset,
			fmt.Sprintf("%g", r.WindowPct),
			fmtBytes(r.Bytes),
			fmt.Sprintf("%d", r.Entries),
		})
	}
	return t
}

// RenderTable5 formats Table 5 rows.
func RenderTable5(rows []Table5Row) Table {
	t := Table{
		Caption: "Table 5: common seeds between window lengths (top 10)",
		Header:  []string{"dataset", "pair", "common"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Dataset,
			fmt.Sprintf("%g%% - %g%%", r.PctA, r.PctB),
			fmt.Sprintf("%d/%d", r.Common, r.TopK),
		})
	}
	return t
}

// RenderTable6 formats Table 6 rows.
func RenderTable6(rows []Table6Row) Table {
	t := Table{
		Caption: "Table 6: time to find the top-k seeds",
		Header:  []string{"dataset", "method", "time"},
	}
	for _, r := range rows {
		elapsed := fmtDur(r.Elapsed)
		if r.Skipped {
			elapsed = "-"
		}
		t.Rows = append(t.Rows, []string{r.Dataset, string(r.Method), elapsed})
	}
	return t
}

// RenderFig3 formats Figure 3 points.
func RenderFig3(points []Fig3Point) Table {
	t := Table{
		Caption: "Figure 3: time to process all interactions vs window length",
		Header:  []string{"dataset", "window%", "time"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{p.Dataset, fmt.Sprintf("%g", p.WindowPct), fmtDur(p.Elapsed)})
	}
	return t
}

// RenderFig4 formats Figure 4 points.
func RenderFig4(points []Fig4Point) Table {
	t := Table{
		Caption: "Figure 4: influence-oracle query time vs seed-set size",
		Header:  []string{"dataset", "seeds", "time"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{p.Dataset, fmt.Sprintf("%d", p.Seeds), fmtDur(p.Elapsed)})
	}
	return t
}

// RenderFig5 formats Figure 5 points.
func RenderFig5(points []Fig5Point) Table {
	t := Table{
		Caption: "Figure 5: TCIC spread of the top-k seeds",
		Header:  []string{"dataset", "window%", "p", "method", "k", "spread", "±σ"},
	}
	for _, p := range points {
		spread, sigma := fmt.Sprintf("%.1f", p.Spread), fmt.Sprintf("%.1f", p.SpreadStddev)
		if p.Skipped {
			spread, sigma = "-", "-"
		}
		t.Rows = append(t.Rows, []string{
			p.Dataset,
			fmt.Sprintf("%g", p.WindowPct),
			fmt.Sprintf("%g", p.P),
			string(p.Method),
			fmt.Sprintf("%d", p.K),
			spread,
			sigma,
		})
	}
	return t
}

// RenderAblationVersioning formats ablation A1 rows.
func RenderAblationVersioning(rows []AblationVersioningRow) Table {
	t := Table{
		Caption: "Ablation A1: windowed estimation error, versioned vs plain HLL",
		Header:  []string{"dataset", "window%", "vHLL err", "plain HLL err"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Dataset,
			fmt.Sprintf("%g", r.WindowPct),
			fmt.Sprintf("%.4f", r.VHLLErr),
			fmt.Sprintf("%.4f", r.PlainHLLErr),
		})
	}
	return t
}

// RenderAblationCELF formats ablation A2 rows.
func RenderAblationCELF(rows []AblationCELFRow) Table {
	t := Table{
		Caption: "Ablation A2: Algorithm 4 greedy vs CELF lazy greedy",
		Header:  []string{"dataset", "k", "greedy time", "CELF time", "greedy spread", "CELF spread"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Dataset,
			fmt.Sprintf("%d", r.K),
			fmtDur(r.GreedyTime),
			fmtDur(r.CELFTime),
			fmt.Sprintf("%.0f", r.GreedySpread),
			fmt.Sprintf("%.0f", r.CELFSpread),
		})
	}
	return t
}

// RenderAblationSketch formats ablation A4 rows.
func RenderAblationSketch(rows []AblationSketchRow) Table {
	t := Table{
		Caption: "Ablation A4: sketch families — versioned HLL vs versioned bottom-k",
		Header:  []string{"dataset", "window%", "vHLL(beta)", "vHLL err", "vHLL mem", "vBK(k)", "vBK err", "vBK mem"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Dataset,
			fmt.Sprintf("%g", r.WindowPct),
			fmt.Sprintf("%d", r.VHLLBeta),
			fmt.Sprintf("%.4f", r.VHLLErr),
			fmtBytes(r.VHLLBytes),
			fmt.Sprintf("%d", r.BKK),
			fmt.Sprintf("%.4f", r.BKErr),
			fmtBytes(r.BKBytes),
		})
	}
	return t
}

// RenderAblationBeta formats ablation A3 rows.
func RenderAblationBeta(dataset string, rows []AblationBetaRow) Table {
	t := Table{
		Caption: fmt.Sprintf("Ablation A3: precision sweep on %s", dataset),
		Header:  []string{"beta", "avg rel err", "memory", "build time"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Beta),
			fmt.Sprintf("%.4f", r.AvgRelErr),
			fmtBytes(r.Bytes),
			fmtDur(r.BuildTime),
		})
	}
	return t
}
