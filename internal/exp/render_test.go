package exp

import (
	"strings"
	"testing"
	"time"
)

func TestFmtDur(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{500 * time.Nanosecond, "0µs"},
		{42 * time.Microsecond, "42µs"},
		{3500 * time.Microsecond, "3.50ms"},
		{2500 * time.Millisecond, "2.50s"},
	}
	for _, tc := range cases {
		if got := fmtDur(tc.d); got != tc.want {
			t.Errorf("fmtDur(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

func TestFmtBytes(t *testing.T) {
	cases := []struct {
		n    int
		want string
	}{
		{512, "512B"},
		{2048, "2.0KB"},
		{3 << 20, "3.0MB"},
	}
	for _, tc := range cases {
		if got := fmtBytes(tc.n); got != tc.want {
			t.Errorf("fmtBytes(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

func TestTableTextAlignment(t *testing.T) {
	tab := Table{
		Caption: "cap",
		Header:  []string{"a", "longheader"},
		Rows:    [][]string{{"xxxxxxxx", "1"}},
	}
	out := tab.Text()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Separator matches column widths.
	if !strings.Contains(lines[2], "--------") {
		t.Errorf("separator: %q", lines[2])
	}
}

func TestRenderFig5SkippedAndSigma(t *testing.T) {
	pts := []Fig5Point{
		{Dataset: "d", Method: MethodPR, K: 5, WindowPct: 1, P: 0.5, Spread: 10.25, SpreadStddev: 1.5},
		{Dataset: "d", Method: MethodCTE, K: 5, WindowPct: 1, P: 0.5, Skipped: true},
	}
	out := RenderFig5(pts).Text()
	if !strings.Contains(out, "10.2") || !strings.Contains(out, "1.5") {
		t.Errorf("spread/sigma missing:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("skipped marker missing:\n%s", out)
	}
}

func TestRenderTable5Format(t *testing.T) {
	out := RenderTable5([]Table5Row{{Dataset: "x", PctA: 1, PctB: 10, TopK: 10, Common: 3}}).Text()
	if !strings.Contains(out, "1% - 10%") || !strings.Contains(out, "3/10") {
		t.Errorf("table5 format:\n%s", out)
	}
}
