package exp

import (
	"fmt"
	"time"

	"ipin/internal/baseline"
	"ipin/internal/continest"
	"ipin/internal/core"
	"ipin/internal/graph"
	"ipin/internal/skim"
)

// Method identifies one seed-selection strategy of the paper's comparison.
type Method string

// The seven methods of the paper's Figure 5 / Table 6.
const (
	MethodPR        Method = "PR"
	MethodHD        Method = "HD"
	MethodSHD       Method = "SHD"
	MethodSKIM      Method = "SKIM"
	MethodCTE       Method = "CTE"
	MethodIRSApprox Method = "IRS(Approx)"
	MethodIRSExact  Method = "IRS(Exact)"
)

// AllMethods lists every method in the paper's plotting order.
func AllMethods() []Method {
	return []Method{MethodPR, MethodHD, MethodSHD, MethodSKIM, MethodIRSApprox, MethodIRSExact, MethodCTE}
}

// MethodConfig bundles the per-method parameters used across experiments.
type MethodConfig struct {
	// Precision is the IRS sketch precision (β = 2^Precision).
	Precision int
	// SKIM carries the SKIM parameters; P should match the cascade
	// infection probability of the evaluation.
	SKIM skim.Config
	// CTE carries the ConTinEst parameters; T is overridden with the
	// experiment's ω at selection time.
	CTE continest.Config
	// PageRank carries the PageRank parameters.
	PageRank baseline.PageRankConfig
	// CTEMaxNodes skips ConTinEst on datasets larger than this, mirroring
	// the paper's Table 6 where ConTinEst could not finish US-2016.
	// Zero means no limit.
	CTEMaxNodes int
}

// DefaultMethodConfig mirrors the paper's settings: β = 512, SKIM with
// Cohen et al.'s defaults, moderate ConTinEst sampling, and the paper's
// PageRank parameters.
func DefaultMethodConfig() MethodConfig {
	return MethodConfig{
		Precision:   core.DefaultPrecision,
		SKIM:        skim.DefaultConfig(),
		CTE:         continest.DefaultConfig(0),
		PageRank:    baseline.DefaultPageRank(),
		CTEMaxNodes: 60_000,
	}
}

// Selection is the outcome of running one method on one dataset.
type Selection struct {
	Method  Method
	Seeds   []graph.NodeID
	Elapsed time.Duration
	// Skipped is set when the method was deliberately not run (e.g.
	// ConTinEst on an oversized dataset), mirroring the "-" entries of
	// the paper's Table 6.
	Skipped bool
}

// SelectSeeds runs one method end to end — including any preprocessing
// the method needs, exactly like the paper's timing — and returns the
// chosen seeds with the wall-clock cost.
func SelectSeeds(m Method, d Dataset, k int, omega int64, cfg MethodConfig) (Selection, error) {
	start := time.Now()
	var seeds []graph.NodeID
	switch m {
	case MethodPR:
		seeds = baseline.TopKPageRank(d.Log, k, cfg.PageRank)
	case MethodHD:
		seeds = baseline.TopKHighDegree(graph.StaticFrom(d.Log), k)
	case MethodSHD:
		seeds = baseline.TopKSmartHighDegree(graph.StaticFrom(d.Log), k)
	case MethodSKIM:
		var err error
		seeds, err = skim.TopK(graph.StaticFrom(d.Log), k, cfg.SKIM)
		if err != nil {
			return Selection{}, fmt.Errorf("exp: SKIM on %s: %v", d.Name, err)
		}
	case MethodCTE:
		if cfg.CTEMaxNodes > 0 && d.Log.NumNodes > cfg.CTEMaxNodes {
			return Selection{Method: m, Skipped: true}, nil
		}
		cteCfg := cfg.CTE
		cteCfg.T = float64(omega)
		var err error
		seeds, err = continest.TopK(graph.WeightedFrom(d.Log), k, cteCfg)
		if err != nil {
			return Selection{}, fmt.Errorf("exp: ConTinEst on %s: %v", d.Name, err)
		}
	case MethodIRSApprox:
		s, err := core.ComputeApprox(d.Log, omega, cfg.Precision)
		if err != nil {
			return Selection{}, fmt.Errorf("exp: IRS approx on %s: %v", d.Name, err)
		}
		seeds = core.TopKApproxSeeds(s, k)
	case MethodIRSExact:
		seeds = core.TopKExact(core.ComputeExact(d.Log, omega), k)
	default:
		return Selection{}, fmt.Errorf("exp: unknown method %q", m)
	}
	return Selection{Method: m, Seeds: seeds, Elapsed: time.Since(start)}, nil
}
