package exp

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named line of a chart: parallel X/Y slices.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart renders one or more series as an ASCII line chart, giving the
// harness a way to show the paper's figures as figures, not just tables.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// LogY plots log10(y), matching the paper's Figure 3 axis.
	LogY   bool
	Series []Series
	// Width and Height are the plot-area dimensions in characters;
	// zero selects 64×16.
	Width  int
	Height int
}

// seriesMarks assigns one rune per series, cycling if necessary.
var seriesMarks = []rune{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// Text renders the chart.
func (c Chart) Text() string {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	// Collect bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	value := func(y float64) float64 {
		if c.LogY {
			if y <= 0 {
				return math.Inf(1) // skipped below
			}
			return math.Log10(y)
		}
		return y
	}
	for _, s := range c.Series {
		for i := range s.X {
			y := value(s.Y[i])
			if math.IsInf(y, 1) {
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if minX > maxX {
		return c.Title + "\n(no data)\n"
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		// Plot points and connect consecutive ones with interpolation.
		type pt struct{ col, row int }
		var pts []pt
		for i := range s.X {
			y := value(s.Y[i])
			if math.IsInf(y, 1) {
				continue
			}
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			pts = append(pts, pt{col: col, row: row})
		}
		sort.Slice(pts, func(a, b int) bool { return pts[a].col < pts[b].col })
		for i, p := range pts {
			grid[p.row][p.col] = mark
			if i > 0 {
				// Linear interpolation between consecutive columns.
				prev := pts[i-1]
				for col := prev.col + 1; col < p.col; col++ {
					frac := float64(col-prev.col) / float64(p.col-prev.col)
					row := prev.row + int(math.Round(frac*float64(p.row-prev.row)))
					if grid[row][col] == ' ' {
						grid[row][col] = '.'
					}
				}
			}
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yTop, yBot := maxY, minY
	unlog := func(v float64) float64 {
		if c.LogY {
			return math.Pow(10, v)
		}
		return v
	}
	axisW := 10
	for r, row := range grid {
		label := strings.Repeat(" ", axisW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*.3g", axisW, unlog(yTop))
		case height - 1:
			label = fmt.Sprintf("%*.3g", axisW, unlog(yBot))
		case height / 2:
			label = fmt.Sprintf("%*.3g", axisW, unlog((yTop+yBot)/2))
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", axisW), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.4g%*.4g\n", strings.Repeat(" ", axisW), width/2, minX, width-width/2, maxX)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s", strings.Repeat(" ", axisW), c.XLabel)
		if c.YLabel != "" {
			fmt.Fprintf(&b, "   y: %s", c.YLabel)
		}
		b.WriteByte('\n')
	}
	// Legend.
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", axisW), seriesMarks[si%len(seriesMarks)], s.Name)
	}
	return b.String()
}

// ChartFig3 turns Figure 3 points into a log-y chart, one series per
// dataset, matching the paper's presentation.
func ChartFig3(points []Fig3Point) Chart {
	byDataset := map[string]*Series{}
	var order []string
	for _, p := range points {
		s, ok := byDataset[p.Dataset]
		if !ok {
			s = &Series{Name: p.Dataset}
			byDataset[p.Dataset] = s
			order = append(order, p.Dataset)
		}
		s.X = append(s.X, p.WindowPct)
		s.Y = append(s.Y, p.Elapsed.Seconds())
	}
	c := Chart{
		Title:  "Figure 3: processing time vs window length",
		XLabel: "window (%)",
		YLabel: "time (s, log scale)",
		LogY:   true,
	}
	for _, name := range order {
		c.Series = append(c.Series, *byDataset[name])
	}
	return c
}

// ChartFig4 turns Figure 4 points into a chart, one series per dataset.
func ChartFig4(points []Fig4Point) Chart {
	byDataset := map[string]*Series{}
	var order []string
	for _, p := range points {
		s, ok := byDataset[p.Dataset]
		if !ok {
			s = &Series{Name: p.Dataset}
			byDataset[p.Dataset] = s
			order = append(order, p.Dataset)
		}
		s.X = append(s.X, float64(p.Seeds))
		s.Y = append(s.Y, float64(p.Elapsed.Microseconds())/1000)
	}
	c := Chart{
		Title:  "Figure 4: oracle query time vs seed-set size",
		XLabel: "seeds",
		YLabel: "time (ms)",
	}
	for _, name := range order {
		c.Series = append(c.Series, *byDataset[name])
	}
	return c
}

// ChartFig5 turns the Figure 5 points of ONE panel (one dataset, window
// and probability) into a chart, one series per method.
func ChartFig5(points []Fig5Point) Chart {
	byMethod := map[Method]*Series{}
	var order []Method
	title := "Figure 5"
	for _, p := range points {
		if p.Skipped {
			continue
		}
		title = fmt.Sprintf("Figure 5: %s (ω=%g%%, p=%g)", p.Dataset, p.WindowPct, p.P)
		s, ok := byMethod[p.Method]
		if !ok {
			s = &Series{Name: string(p.Method)}
			byMethod[p.Method] = s
			order = append(order, p.Method)
		}
		s.X = append(s.X, float64(p.K))
		s.Y = append(s.Y, p.Spread)
	}
	c := Chart{Title: title, XLabel: "top k", YLabel: "spread"}
	for _, m := range order {
		c.Series = append(c.Series, *byMethod[m])
	}
	return c
}
