package exp

import (
	"fmt"
	"time"

	"ipin/internal/core"
	"ipin/internal/graph"
	"ipin/internal/stats"
)

// The ablations quantify the design choices DESIGN.md calls out: the
// versioned cell lists of the sketch (A1), the greedy strategy (A2), and
// the precision/size/accuracy trade-off (A3).

// AblationVersioningRow compares windowed IRS estimation with the
// versioned sketch against a plain HyperLogLog that ignores the window
// (equivalent to running the sketch with ω = full span).
type AblationVersioningRow struct {
	Dataset     string
	WindowPct   float64
	VHLLErr     float64
	PlainHLLErr float64
}

// AblationVersioning measures why the versioned sketch exists: without
// per-entry timestamps, window-constrained reachability degenerates to
// unconstrained reachability and the estimates blow up for small ω.
func AblationVersioning(d Dataset, windowPcts []float64, precision int) ([]AblationVersioningRow, error) {
	_, _, span := d.Log.Span()
	plain, err := core.ComputeApprox(d.Log, span, precision)
	if err != nil {
		return nil, fmt.Errorf("exp: ablation versioning %s: %v", d.Name, err)
	}
	rows := make([]AblationVersioningRow, 0, len(windowPcts))
	for _, pct := range windowPcts {
		omega := d.Omega(pct)
		exact := core.ComputeExact(d.Log, omega)
		vhll, err := core.ComputeApprox(d.Log, omega, precision)
		if err != nil {
			return nil, fmt.Errorf("exp: ablation versioning %s ω=%g%%: %v", d.Name, pct, err)
		}
		var vErrs, pErrs []float64
		for u := 0; u < d.Log.NumNodes; u++ {
			truth := float64(exact.IRSSize(graph.NodeID(u)))
			if truth == 0 {
				continue
			}
			vErrs = append(vErrs, stats.RelErr(vhll.EstimateIRS(graph.NodeID(u)), truth))
			pErrs = append(pErrs, stats.RelErr(plain.EstimateIRS(graph.NodeID(u)), truth))
		}
		rows = append(rows, AblationVersioningRow{
			Dataset:     d.Name,
			WindowPct:   pct,
			VHLLErr:     stats.Mean(vErrs),
			PlainHLLErr: stats.Mean(pErrs),
		})
	}
	return rows, nil
}

// AblationCELFRow compares the paper's Algorithm 4 greedy with the CELF
// lazy greedy this repository adds: identical coverage, different cost.
type AblationCELFRow struct {
	Dataset      string
	K            int
	GreedyTime   time.Duration
	CELFTime     time.Duration
	GreedySpread float64
	CELFSpread   float64
}

// AblationCELF times both selection strategies over exact summaries and
// reports the exact coverage both achieve.
func AblationCELF(d Dataset, ks []int, windowPct float64) ([]AblationCELFRow, error) {
	s := core.ComputeExact(d.Log, d.Omega(windowPct))
	rows := make([]AblationCELFRow, 0, len(ks))
	for _, k := range ks {
		start := time.Now()
		greedy := core.TopKExact(s, k)
		greedyTime := time.Since(start)
		start = time.Now()
		celf := core.TopKExactCELF(s, k)
		celfTime := time.Since(start)
		rows = append(rows, AblationCELFRow{
			Dataset:      d.Name,
			K:            k,
			GreedyTime:   greedyTime,
			CELFTime:     celfTime,
			GreedySpread: float64(s.SpreadExact(greedy)),
			CELFSpread:   float64(s.SpreadExact(celf)),
		})
	}
	return rows, nil
}

// AblationSketchRow compares the two sketch families — versioned
// HyperLogLog and versioned bottom-k — on IRS estimation error and
// memory, at one parameter point each.
type AblationSketchRow struct {
	Dataset   string
	WindowPct float64
	// VHLL columns: β = 2^precision cells.
	VHLLBeta  int
	VHLLErr   float64
	VHLLBytes int
	// VBK columns: bottom-k size.
	BKK     int
	BKErr   float64
	BKBytes int
}

// AblationSketchFamilies runs ablation A4: the same one-pass IRS
// computation with both sketch families against the exact truth. The
// default pairing (β=512 vs k=64) puts the bottom-k variant at a similar
// or smaller memory footprint so the error columns are comparable.
func AblationSketchFamilies(d Dataset, windowPcts []float64, precision, k int) ([]AblationSketchRow, error) {
	rows := make([]AblationSketchRow, 0, len(windowPcts))
	for _, pct := range windowPcts {
		omega := d.Omega(pct)
		exact := core.ComputeExact(d.Log, omega)
		vh, err := core.ComputeApprox(d.Log, omega, precision)
		if err != nil {
			return nil, fmt.Errorf("exp: ablation sketch %s ω=%g%%: %v", d.Name, pct, err)
		}
		bk, err := core.ComputeApproxBK(d.Log, omega, k)
		if err != nil {
			return nil, fmt.Errorf("exp: ablation sketch %s ω=%g%%: %v", d.Name, pct, err)
		}
		var vErrs, bErrs []float64
		for u := 0; u < d.Log.NumNodes; u++ {
			truth := float64(exact.IRSSize(graph.NodeID(u)))
			if truth == 0 {
				continue
			}
			vErrs = append(vErrs, stats.RelErr(vh.EstimateIRS(graph.NodeID(u)), truth))
			bErrs = append(bErrs, stats.RelErr(bk.EstimateIRS(graph.NodeID(u)), truth))
		}
		rows = append(rows, AblationSketchRow{
			Dataset:   d.Name,
			WindowPct: pct,
			VHLLBeta:  1 << precision,
			VHLLErr:   stats.Mean(vErrs),
			VHLLBytes: vh.MemoryBytes(),
			BKK:       k,
			BKErr:     stats.Mean(bErrs),
			BKBytes:   bk.MemoryBytes(),
		})
	}
	return rows, nil
}

// AblationBetaRow reports the accuracy/size/time trade-off of one sketch
// precision.
type AblationBetaRow struct {
	Beta      int
	AvgRelErr float64
	Bytes     int
	BuildTime time.Duration
}

// AblationBeta sweeps the sketch precision at a fixed window, extending
// Table 3 with the memory and build-time axes.
func AblationBeta(d Dataset, precisions []int, windowPct float64) ([]AblationBetaRow, error) {
	omega := d.Omega(windowPct)
	exact := core.ComputeExact(d.Log, omega)
	rows := make([]AblationBetaRow, 0, len(precisions))
	for _, p := range precisions {
		start := time.Now()
		approx, err := core.ComputeApprox(d.Log, omega, p)
		if err != nil {
			return nil, fmt.Errorf("exp: ablation beta %s β=%d: %v", d.Name, 1<<p, err)
		}
		build := time.Since(start)
		var errs []float64
		for u := 0; u < d.Log.NumNodes; u++ {
			truth := float64(exact.IRSSize(graph.NodeID(u)))
			if truth == 0 {
				continue
			}
			errs = append(errs, stats.RelErr(approx.EstimateIRS(graph.NodeID(u)), truth))
		}
		rows = append(rows, AblationBetaRow{
			Beta:      1 << p,
			AvgRelErr: stats.Mean(errs),
			Bytes:     approx.MemoryBytes(),
			BuildTime: build,
		})
	}
	return rows, nil
}
