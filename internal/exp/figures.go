package exp

import (
	"fmt"
	"math/rand/v2"
	"time"

	"ipin/internal/cascade"
	"ipin/internal/core"
	"ipin/internal/graph"
)

// Fig3Point is one point of the paper's Figure 3: time to process all
// interactions with the approximate algorithm, as a function of the
// window length.
type Fig3Point struct {
	Dataset   string
	WindowPct float64
	Elapsed   time.Duration
}

// Fig3 reproduces the processing-time curve. The paper sweeps ω from 1%
// to 100% of the time span and observes the cost flattening beyond ~10%.
func Fig3(d Dataset, windowPcts []float64, precision int) ([]Fig3Point, error) {
	points := make([]Fig3Point, 0, len(windowPcts))
	for _, pct := range windowPcts {
		start := time.Now()
		if _, err := core.ComputeApprox(d.Log, d.Omega(pct), precision); err != nil {
			return nil, fmt.Errorf("exp: fig3 %s ω=%g%%: %v", d.Name, pct, err)
		}
		points = append(points, Fig3Point{Dataset: d.Name, WindowPct: pct, Elapsed: time.Since(start)})
	}
	return points, nil
}

// Fig4Point is one point of the paper's Figure 4: influence-oracle query
// latency as a function of the seed-set size.
type Fig4Point struct {
	Dataset string
	Seeds   int
	// Elapsed is the mean latency of one Spread query at this size.
	Elapsed time.Duration
}

// Fig4 reproduces the query-time curve: after the one-off preprocessing
// (sketch computation and collapse), random seed sets of growing size are
// posed to the oracle. The paper observes latency that is linear in |S|
// and independent of the graph size, a few milliseconds even at 10 000
// seeds.
func Fig4(d Dataset, seedCounts []int, windowPct float64, precision int, repeats int) ([]Fig4Point, error) {
	approx, err := core.ComputeApprox(d.Log, d.Omega(windowPct), precision)
	if err != nil {
		return nil, fmt.Errorf("exp: fig4 %s: %v", d.Name, err)
	}
	oracle := core.NewApproxOracle(approx)
	rng := rand.New(rand.NewPCG(7, 0xf19))
	if repeats < 1 {
		repeats = 1
	}
	points := make([]Fig4Point, 0, len(seedCounts))
	for _, sc := range seedCounts {
		seeds := make([]graph.NodeID, sc)
		for i := range seeds {
			seeds[i] = graph.NodeID(rng.IntN(d.Log.NumNodes))
		}
		start := time.Now()
		for r := 0; r < repeats; r++ {
			_ = oracle.Spread(seeds)
		}
		points = append(points, Fig4Point{
			Dataset: d.Name,
			Seeds:   sc,
			Elapsed: time.Since(start) / time.Duration(repeats),
		})
	}
	return points, nil
}

// Fig5Point is one point of the paper's Figure 5: the TCIC-simulated
// spread of the top-k seeds chosen by one method.
type Fig5Point struct {
	Dataset   string
	Method    Method
	K         int
	WindowPct float64
	P         float64
	Spread    float64
	// SpreadStddev is the standard deviation over the simulation trials,
	// the error bar of the point.
	SpreadStddev float64
	Skipped      bool
}

// Fig5Params bundles the evaluation grid of Figure 5.
type Fig5Params struct {
	Methods []Method
	// Ks are the seed-set sizes; the paper plots 5,10,…,50.
	Ks []int
	// WindowPct and P select one of the paper's panels (ω ∈ {1,20}%,
	// p ∈ {0.5, 1.0}).
	WindowPct float64
	P         float64
	// Trials is the number of TCIC simulations averaged per point.
	Trials int
	// Parallelism caps the simulation fan-out; ≤0 means GOMAXPROCS.
	Parallelism int
	// Seed seeds the simulations.
	Seed uint64
}

// Fig5 reproduces one panel of Figure 5. Seeds are selected once per
// method at the largest k (greedy selections are prefix-consistent), and
// every prefix is simulated under the Time-Constrained Information
// Cascade model.
func Fig5(d Dataset, params Fig5Params, cfg MethodConfig) ([]Fig5Point, error) {
	if len(params.Ks) == 0 {
		return nil, fmt.Errorf("exp: fig5: no seed-set sizes")
	}
	maxK := 0
	for _, k := range params.Ks {
		if k > maxK {
			maxK = k
		}
	}
	omega := d.Omega(params.WindowPct)
	// SKIM's live-edge probability matches the simulated infection
	// probability, as in the paper.
	cfg.SKIM.P = params.P
	simCfg := cascade.Config{Omega: omega, P: params.P, Seed: params.Seed}

	var points []Fig5Point
	for _, m := range params.Methods {
		sel, err := SelectSeeds(m, d, maxK, omega, cfg)
		if err != nil {
			return nil, err
		}
		for _, k := range params.Ks {
			if sel.Skipped {
				points = append(points, Fig5Point{
					Dataset: d.Name, Method: m, K: k,
					WindowPct: params.WindowPct, P: params.P, Skipped: true,
				})
				continue
			}
			seeds := sel.Seeds
			if k < len(seeds) {
				seeds = seeds[:k]
			}
			st := cascade.RunTrials(d.Log, seeds, simCfg, params.Trials, params.Parallelism)
			points = append(points, Fig5Point{
				Dataset: d.Name, Method: m, K: k,
				WindowPct: params.WindowPct, P: params.P,
				Spread: st.Mean, SpreadStddev: st.Stddev,
			})
		}
	}
	return points, nil
}
