package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSuiteSubset(t *testing.T) {
	var out bytes.Buffer
	dir := t.TempDir()
	cfg := SuiteConfig{
		Experiments: []string{"table2", "table4"},
		Scale:       400,
		CSVDir:      dir,
		Trials:      2,
		MaxK:        5,
		Precision:   6,
		Out:         &out,
	}
	if err := RunSuite(cfg); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "== table2 ==") || !strings.Contains(text, "== table4 ==") {
		t.Fatalf("missing sections:\n%s", text)
	}
	if strings.Contains(text, "== fig3 ==") {
		t.Fatal("unselected experiment ran")
	}
	for _, f := range []string{"table2.csv", "table4.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("%s not written: %v", f, err)
		}
	}
}

func TestRunSuiteReportFile(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "report.md")
	cfg := SuiteConfig{
		Experiments: []string{"table2"},
		Scale:       400,
		ReportFile:  report,
		Out:         &bytes.Buffer{},
	}
	if err := RunSuite(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	md := string(data)
	if !strings.Contains(md, "# Evaluation report") {
		t.Fatalf("report header missing:\n%.200s", md)
	}
	if !strings.Contains(md, "| enron |") {
		t.Fatalf("markdown table missing:\n%s", md)
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := Table{
		Caption: "cap",
		Header:  []string{"a", "b"},
		Rows:    [][]string{{"1", "x|y"}},
	}
	md := tab.Markdown()
	if !strings.Contains(md, "**cap**") {
		t.Errorf("caption missing: %q", md)
	}
	if !strings.Contains(md, "| --- | --- |") {
		t.Errorf("separator missing: %q", md)
	}
	if !strings.Contains(md, `x\|y`) {
		t.Errorf("pipe not escaped: %q", md)
	}
}

func TestRunSuiteRejectsUnknownExperiment(t *testing.T) {
	err := RunSuite(SuiteConfig{Experiments: []string{"nosuch"}, Scale: 400, Out: &bytes.Buffer{}})
	if err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("unknown experiment not rejected: %v", err)
	}
}

func TestRunSuiteFig5WithCharts(t *testing.T) {
	var out bytes.Buffer
	cfg := SuiteConfig{
		Experiments: []string{"fig5"},
		Scale:       400,
		Trials:      2,
		MaxK:        5,
		Precision:   6,
		Charts:      true,
		Out:         &out,
	}
	if err := RunSuite(cfg); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "Figure 5: lkml") {
		t.Fatalf("fig5 chart missing:\n%.400s", text)
	}
	if !strings.Contains(text, "IRS(Exact)") {
		t.Fatal("method legend missing")
	}
}

func TestRunSuiteUsesFilesDir(t *testing.T) {
	dir := t.TempDir()
	content := "a b 1\nb c 2\nc a 3\n"
	for _, name := range []string{"enron", "lkml", "facebook", "higgs", "slashdot", "us2016"} {
		if err := os.WriteFile(filepath.Join(dir, name+".txt"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	cfg := SuiteConfig{
		Experiments: []string{"table2"},
		Scale:       400,
		FilesDir:    dir,
		Out:         &out,
	}
	if err := RunSuite(cfg); err != nil {
		t.Fatal(err)
	}
	// Every dataset row now shows the 3-node file.
	rows := 0
	for _, line := range strings.Split(out.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 4 && fields[1] == "3" && fields[2] == "3" {
			rows++
		}
	}
	if rows != 6 {
		t.Fatalf("%d rows reflect the files, want 6:\n%s", rows, out.String())
	}
}
