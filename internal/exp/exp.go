// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§6) over the synthetic stand-ins for
// the six datasets of Table 2, plus three ablations this repository adds.
//
// Each experiment is a pure function from a Dataset (plus parameters) to a
// slice of typed rows; rendering to aligned text and CSV lives in
// render.go, and orchestration (which datasets, which scale) in
// cmd/experiments. bench_test.go at the repository root exposes each
// experiment as a testing.B benchmark on reduced parameters.
package exp

import (
	"fmt"
	"os"
	"path/filepath"

	"ipin/internal/gen"
	"ipin/internal/graph"
)

// Dataset is a generated interaction network plus its identity.
type Dataset struct {
	Name string
	Log  *graph.Log
}

// Load generates the named Table 2 dataset at the given scale divisor.
func Load(name string, scale int) (Dataset, error) {
	cfg, err := gen.Dataset(name, scale)
	if err != nil {
		return Dataset{}, err
	}
	l, err := gen.Generate(cfg)
	if err != nil {
		return Dataset{}, fmt.Errorf("exp: generating %s: %v", name, err)
	}
	return Dataset{Name: name, Log: l}, nil
}

// LoadFrom returns the named dataset, preferring a real interaction log
// at dir/<name>.txt (whitespace "src dst time" format) over the synthetic
// generator. This is the drop-in path for the actual SNAP/KONECT datasets
// the paper used: place e.g. enron.txt in dir and every experiment runs
// against it unchanged. Files with tied timestamps are de-tied, as the
// paper's distinct-timestamps assumption requires. An empty dir always
// generates.
func LoadFrom(dir, name string, scale int) (Dataset, error) {
	if dir != "" {
		path := filepath.Join(dir, name+".txt")
		f, err := os.Open(path)
		switch {
		case err == nil:
			defer f.Close()
			l, _, err := graph.ReadLog(f)
			if err != nil {
				return Dataset{}, fmt.Errorf("exp: reading %s: %v", path, err)
			}
			if !l.HasDistinctTimes() {
				l.Detie()
			}
			return Dataset{Name: name, Log: l}, nil
		case !os.IsNotExist(err):
			return Dataset{}, fmt.Errorf("exp: opening %s: %v", path, err)
		}
	}
	return Load(name, scale)
}

// LoadAll generates every Table 2 dataset at the given scale. A non-empty
// dir overrides individual datasets with real files, as in LoadFrom.
func LoadAll(scale int, dir ...string) ([]Dataset, error) {
	fromDir := ""
	if len(dir) > 0 {
		fromDir = dir[0]
	}
	names := gen.Names()
	out := make([]Dataset, 0, len(names))
	for _, n := range names {
		d, err := LoadFrom(fromDir, n, scale)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// Omega converts a window percentage into absolute ticks for d.
func (d Dataset) Omega(pct float64) int64 { return d.Log.WindowFromPercent(pct) }

// Table2Row mirrors one row of the paper's Table 2: dataset
// characteristics.
type Table2Row struct {
	Name         string
	Nodes        int
	Interactions int
	Days         float64
}

// Table2 reports the characteristics of the generated datasets, the
// counterpart of the paper's Table 2.
func Table2(datasets []Dataset) []Table2Row {
	rows := make([]Table2Row, 0, len(datasets))
	for _, d := range datasets {
		_, _, span := d.Log.Span()
		rows = append(rows, Table2Row{
			Name:         d.Name,
			Nodes:        d.Log.NumNodes,
			Interactions: d.Log.Len(),
			Days:         float64(span) / float64(gen.TicksPerDay),
		})
	}
	return rows
}
