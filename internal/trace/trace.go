// Package trace is the pipeline observability layer: sampled end-to-end
// edge tracing through the live ingestion pipeline, a freshness SLO
// tracker, a structured lifecycle event journal, and the /debug/pipeline
// health surface that renders them.
//
// Tracing works by co-travel, not by payload: edges are plain value
// structs with no room for a context, so every Nth accepted edge gets a
// *Record allocated beside it that rides the reorder buffer's heap entry
// and is thereafter addressed by its emit index — the edge's position in
// the emitted sequence, which is exactly the coordinate the WAL, the
// chunk builder, and checkpoints already speak. Each pipeline stage
// stamps the records it covers with a monotonic offset from the tracer's
// start; stamps are written at most once (a stage only fills an empty
// slot), so batch-level stamping is idempotent by construction and a
// record reaches the terminal serve-visible stage exactly once, even
// across a crash/recovery restart (see Recovered).
//
// The stage taxonomy, in pipeline order (DESIGN.md is normative):
//
//	accept           edge admitted from a source into the reorder buffer
//	reorder_emit     released past the watermark into the emitted sequence
//	wal_append       written into the current WAL segment
//	wal_fsync        covered by a WAL fsync (absent when fsync is disabled)
//	chunk_seal       sealed into an immutable sketch chunk
//	fold             covered by a compactor fold
//	checkpoint_write checkpoint.irx covering the edge is durable
//	publish          handed to the Publish callback
//	serve_visible    a serving generation including the edge is queryable
//
// Completed records feed per-stage latency histograms (each stage's
// histogram observes the gap from the previous stamped stage), an
// end-to-end freshness histogram, the SLO tracker, and a bounded ring of
// full records for /debug/pipeline and postmortems.
//
// Like the rest of the obs layer, everything is a nil-safe no-op: a nil
// *Tracer costs one predictable branch per call site, so pipelines that
// never install tracing pay nothing.
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"ipin/internal/graph"
	"ipin/internal/obs"
)

// Stage identifies one pipeline stage a trace record can be stamped at.
type Stage uint8

// Stages in pipeline order. NumStages bounds per-record stamp arrays.
const (
	StageAccept Stage = iota
	StageReorderEmit
	StageWALAppend
	StageWALFsync
	StageChunkSeal
	StageFold
	StageCheckpointWrite
	StagePublish
	StageServeVisible
	NumStages
)

var stageNames = [NumStages]string{
	"accept", "reorder_emit", "wal_append", "wal_fsync", "chunk_seal",
	"fold", "checkpoint_write", "publish", "serve_visible",
}

// String returns the snake_case stage name used in metric labels and
// health payloads.
func (s Stage) String() string {
	if s >= NumStages {
		return "invalid"
	}
	return stageNames[s]
}

// Outcome classifies how a record left the inflight set.
type Outcome string

const (
	// OutcomeCompleted: the edge reached serve-visible.
	OutcomeCompleted Outcome = "completed"
	// OutcomeCancelled: the edge was dropped by the reorder buffer (too
	// late for the slack) and never entered the pipeline.
	OutcomeCancelled Outcome = "cancelled"
	// OutcomeLost: the edge was lost in a crash (never durable before the
	// restart) and its record was retired during recovery.
	OutcomeLost Outcome = "lost"
	// OutcomeEvicted: the inflight table hit its bound and retired the
	// record early (a stalled pipeline holding thousands of open traces).
	OutcomeEvicted Outcome = "evicted"
)

// Record is one traced edge's stamp sheet. Stamps are nanosecond offsets
// from the tracer's start; zero means "not stamped". Records are owned by
// the tracer: stages hand them back through Tracer methods and must not
// retain them after completion.
type Record struct {
	Src, Dst graph.NodeID
	At       graph.Time
	// EmitIndex is the edge's position in the emitted sequence, -1 until
	// the reorder buffer releases it. It is the key every batch-level
	// stage uses to find the records it covers.
	EmitIndex int64
	Stamps    [NumStages]int64
	Outcome   Outcome

	pendingVisible bool
}

// Trace metric names.
const (
	MetricSampled    = "trace_records_sampled_total"
	MetricCompleted  = "trace_records_completed_total"
	MetricCancelled  = "trace_records_cancelled_total"
	MetricLost       = "trace_records_lost_total"
	MetricEvicted    = "trace_records_evicted_total"
	MetricInflight   = "trace_records_inflight"
	MetricStage      = "trace_stage_seconds"
	MetricEndToEnd   = "trace_e2e_seconds"
	MetricSLOOK      = "trace_slo_observed_total"
	MetricSLOBreach  = "trace_slo_breaches_total"
	MetricSLOObj     = "trace_slo_objective_ms"
	MetricSLOTarget  = "trace_slo_target_ppm"
	MetricSLOAttain  = "trace_slo_attainment_ppm"
	MetricSLOBudget  = "trace_slo_budget_remaining_ppm"
	MetricSLOBurn    = "trace_slo_burn_rate_ppm"
	MetricJournalEvt = "trace_journal_events_total"
)

// traceBuckets extend obs.DefBuckets upward: freshness spans from
// sub-millisecond stage hops to multi-minute checkpoint intervals.
var traceBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 180, 600,
}

// Config parameterizes a Tracer; the zero value samples every 1024th
// accepted edge with no SLO tracking and no metrics.
type Config struct {
	// SampleEvery traces every Nth accepted edge; 0 selects 1024, 1
	// traces everything (tests and short benches).
	SampleEvery int
	// RingSize bounds the completed-record ring; 0 selects 256.
	RingSize int
	// MaxInflight bounds open (emitted, not yet completed) records; 0
	// selects 4096. Overflow retires the oldest record as evicted.
	MaxInflight int
	// SLO, when Objective > 0, enables the freshness SLO tracker over the
	// end-to-end (accept → terminal stage) latency.
	SLO SLOConfig
	// Registry receives the trace_* metrics; nil disables them.
	Registry *obs.Registry
}

// Tracer owns the sampled records of one live pipeline. One Tracer serves
// one pipeline at a time, but it outlives ingester restarts: hand the
// same Tracer to the next ingester over the same directory and Recovered
// reconciles the records that were open across the crash.
type Tracer struct {
	every    uint64
	t0       time.Time
	arrivals atomic.Uint64

	// maxEmit is one past the highest registered emit index; stampedUpto
	// is the per-stage bound below which every inflight record already
	// carries the stamp. Together they give StampThrough a lock-free skip
	// for the common batch that emitted no new traced record.
	maxEmit     atomic.Int64
	stampedUpto [NumStages]atomic.Int64

	mu        sync.Mutex
	unemitted []*Record // accepted, still inside the reorder buffer
	inflight  []*Record // emitted, ascending EmitIndex
	ring      []*Record // retired records, ringNext is the next slot
	ringNext  int
	ringLen   int
	maxOpen   int

	slo *SLO

	sampled, completed, cancelled, lost, evicted *obs.Counter
	stageHist                                    [NumStages]*obs.Histogram
	e2e                                          *obs.Histogram
}

// New returns a Tracer. Nil is a valid *Tracer everywhere; construct one
// only when tracing is actually wanted.
func New(cfg Config) *Tracer {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 1024
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4096
	}
	t := &Tracer{
		every: uint64(cfg.SampleEvery),
		// Start the clock strictly before any stamp so a stamp of 0 can
		// only ever mean "not stamped".
		t0:      time.Now().Add(-time.Microsecond),
		ring:    make([]*Record, cfg.RingSize),
		maxOpen: cfg.MaxInflight,
	}
	reg := cfg.Registry
	if reg == nil {
		// A private throwaway registry: the instruments stay functional
		// (CountsNow, Snapshot, the health endpoint), nothing is exposed.
		reg = obs.NewRegistry()
	}
	t.sampled = reg.Counter(MetricSampled, "Accepted edges sampled into trace records.")
	t.completed = reg.Counter(MetricCompleted, "Trace records that reached the terminal serve-visible stage.")
	t.cancelled = reg.Counter(MetricCancelled, "Trace records retired because the reorder buffer dropped the edge.")
	t.lost = reg.Counter(MetricLost, "Trace records retired during recovery because the crash lost the edge.")
	t.evicted = reg.Counter(MetricEvicted, "Trace records retired early by the inflight bound.")
	reg.GaugeFunc(MetricInflight, "Open trace records (accepted or emitted, not yet retired).", func() int64 {
		t.mu.Lock()
		defer t.mu.Unlock()
		return int64(len(t.unemitted) + len(t.inflight))
	})
	for s := StageReorderEmit; s < NumStages; s++ {
		t.stageHist[s] = reg.Histogram(MetricStage+`{stage="`+s.String()+`"}`,
			"Latency from the previous stamped stage to this stage, seconds.", traceBuckets)
	}
	t.e2e = reg.Histogram(MetricEndToEnd, "End-to-end accept → serve-visible latency, seconds.", traceBuckets)
	if cfg.SLO.Objective > 0 {
		t.slo = newSLO(cfg.SLO, reg)
	}
	return t
}

// SampleEveryN returns the sampling cadence (0 on a nil tracer).
func (t *Tracer) SampleEveryN() int {
	if t == nil {
		return 0
	}
	return int(t.every)
}

// SLOTracker returns the tracer's SLO tracker, nil when not configured.
func (t *Tracer) SLOTracker() *SLO {
	if t == nil {
		return nil
	}
	return t.slo
}

func (t *Tracer) since() int64 { return int64(time.Since(t.t0)) }

// SampleAccept decides whether this arrival is traced. It returns nil for
// unsampled edges (and always on a nil tracer) — the nil check is the
// entire disabled-path cost, pinned ≤ 5 ns by BenchmarkDisabledSample.
// The returned record is already stamped at accept; the caller threads it
// through the reorder buffer and back via Emitted or Cancel.
func (t *Tracer) SampleAccept(e graph.Interaction) *Record {
	if t == nil {
		return nil
	}
	if t.arrivals.Add(1)%t.every != 0 {
		return nil
	}
	rec := &Record{Src: e.Src, Dst: e.Dst, At: e.At, EmitIndex: -1}
	rec.Stamps[StageAccept] = t.since()
	t.mu.Lock()
	t.unemitted = append(t.unemitted, rec)
	t.mu.Unlock()
	t.sampled.Inc()
	return rec
}

// Cancel retires a sampled record whose edge the reorder buffer dropped.
// Nil-safe on both receiver and record.
func (t *Tracer) Cancel(rec *Record) {
	if t == nil || rec == nil {
		return
	}
	t.mu.Lock()
	t.dropUnemittedLocked(rec)
	t.retireLocked(rec, OutcomeCancelled)
	t.mu.Unlock()
}

// dropUnemittedLocked removes rec from the unemitted set by identity.
func (t *Tracer) dropUnemittedLocked(rec *Record) {
	for i, r := range t.unemitted {
		if r == rec {
			t.unemitted = append(t.unemitted[:i], t.unemitted[i+1:]...)
			return
		}
	}
}

// Emitted stamps reorder_emit and registers the record under its emit
// index. Emit indices must be assigned in ascending order — they are the
// edge's position in the emitted sequence, which only grows.
func (t *Tracer) Emitted(rec *Record, emitIndex int64) {
	if t == nil || rec == nil {
		return
	}
	t.mu.Lock()
	t.dropUnemittedLocked(rec)
	rec.EmitIndex = emitIndex
	rec.Stamps[StageReorderEmit] = t.since()
	if len(t.inflight) >= t.maxOpen {
		old := t.inflight[0]
		t.inflight = t.inflight[1:]
		t.retireLocked(old, OutcomeEvicted)
	}
	t.inflight = append(t.inflight, rec)
	t.maxEmit.Store(emitIndex + 1)
	t.mu.Unlock()
}

// StampThrough stamps stage on every inflight record with EmitIndex <
// uptoEmit that does not carry the stamp yet. Stages call it right after
// the operation that covered those edges (a WAL append, an fsync, a
// chunk seal, a fold, a checkpoint write), so re-stamping is impossible:
// a filled slot is never overwritten.
func (t *Tracer) StampThrough(stage Stage, uptoEmit int64) {
	if t == nil || stage >= NumStages {
		return
	}
	// Records only exist below maxEmit, so clamp the bound there; if
	// everything below it is already stamped, this batch emitted no new
	// traced record and the call costs two atomic loads — the price the
	// WAL path pays per batch at production sampling rates.
	if hi := t.maxEmit.Load(); uptoEmit > hi {
		uptoEmit = hi
	}
	if uptoEmit <= t.stampedUpto[stage].Load() {
		return
	}
	now := t.since()
	t.mu.Lock()
	// Backward from the tail: every StampThrough call fills all covered
	// records, so per stage the stamped records always form a prefix of
	// the inflight list and the first stamped record ends the scan. The
	// per-batch call on the WAL hot path therefore costs O(records newly
	// covered), not O(inflight) — checkpoints hold records open for whole
	// checkpoint intervals, and a front-to-back rescan of those per WAL
	// batch is what the ≤5% tracing-overhead gate would catch.
	for i := len(t.inflight) - 1; i >= 0; i-- {
		rec := t.inflight[i]
		if rec.EmitIndex >= uptoEmit {
			continue // not covered yet; older records may be
		}
		if rec.Stamps[stage] != 0 {
			break
		}
		rec.Stamps[stage] = now
	}
	t.stampedUpto[stage].Store(uptoEmit)
	t.mu.Unlock()
}

// BeginPublish is called by the pipeline immediately before it hands a
// checkpoint covering the first uptoEmit emitted edges to the Publish
// callback: it stamps publish and marks the covered records as awaiting
// visibility. The serving layer's StampVisible (or, failing that, the
// pipeline's FinishPublish) then completes them — each exactly once,
// because completion removes the record from the inflight set.
func (t *Tracer) BeginPublish(uptoEmit int64) {
	if t == nil {
		return
	}
	now := t.since()
	t.mu.Lock()
	for _, rec := range t.inflight {
		if rec.EmitIndex >= uptoEmit {
			break
		}
		if rec.Stamps[StagePublish] == 0 {
			rec.Stamps[StagePublish] = now
		}
		rec.pendingVisible = true
	}
	t.mu.Unlock()
}

// StampVisible is called by the serving layer after a generation swap
// completes: every record awaiting visibility is stamped serve_visible
// and completed. Safe to call on swaps that carry no traced edges.
func (t *Tracer) StampVisible() { t.completeVisible() }

// FinishPublish is called by the pipeline after the Publish callback
// returns. Records still awaiting visibility — no serving layer is
// attached, or the publisher is not the tracer-aware server — complete
// here: with nothing downstream, published is as queryable as it gets.
func (t *Tracer) FinishPublish() { t.completeVisible() }

func (t *Tracer) completeVisible() {
	if t == nil {
		return
	}
	now := t.since()
	t.mu.Lock()
	kept := t.inflight[:0]
	var done []*Record
	for _, rec := range t.inflight {
		if rec.pendingVisible {
			if rec.Stamps[StageServeVisible] == 0 {
				rec.Stamps[StageServeVisible] = now
			}
			done = append(done, rec)
			continue
		}
		kept = append(kept, rec)
	}
	clear(t.inflight[len(kept):])
	t.inflight = kept
	for _, rec := range done {
		t.retireLocked(rec, OutcomeCompleted)
	}
	t.mu.Unlock()
}

// Recovered reconciles the tracer with a restarted pipeline that replayed
// its WAL: emittedRecovered is the number of emitted edges the replay
// reconstructed. Records the crash caught inside the reorder buffer, and
// emitted records past the recovered prefix, are retired as lost — their
// edges do not exist anymore, and keeping them would let the restarted
// pipeline's fresh edges collide with their emit indices and stamp
// phantoms. Surviving records stay open and complete through the recovery
// checkpoint like any other edge.
func (t *Tracer) Recovered(emittedRecovered int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for _, rec := range t.unemitted {
		t.retireLocked(rec, OutcomeLost)
	}
	t.unemitted = t.unemitted[:0]
	kept := t.inflight[:0]
	for _, rec := range t.inflight {
		if rec.EmitIndex >= emittedRecovered {
			t.retireLocked(rec, OutcomeLost)
			continue
		}
		kept = append(kept, rec)
	}
	clear(t.inflight[len(kept):])
	t.inflight = kept
	// The successor assigns emit indices from emittedRecovered, below the
	// crashed run's frontier, and its checkpoints must re-stamp survivor
	// stages the crash left empty — both skip bounds start over.
	t.maxEmit.Store(emittedRecovered)
	for s := range t.stampedUpto {
		t.stampedUpto[s].Store(0)
	}
	t.mu.Unlock()
}

// retireLocked finalizes one record: outcome, counters, ring, and — for
// completions — the per-stage and end-to-end histograms plus the SLO.
func (t *Tracer) retireLocked(rec *Record, outcome Outcome) {
	rec.Outcome = outcome
	rec.pendingVisible = false
	t.ring[t.ringNext] = rec
	t.ringNext = (t.ringNext + 1) % len(t.ring)
	if t.ringLen < len(t.ring) {
		t.ringLen++
	}
	switch outcome {
	case OutcomeCompleted:
		t.completed.Inc()
	case OutcomeCancelled:
		t.cancelled.Inc()
	case OutcomeLost:
		t.lost.Inc()
	case OutcomeEvicted:
		t.evicted.Inc()
	}
	if outcome != OutcomeCompleted {
		return
	}
	prev := rec.Stamps[StageAccept]
	last := prev
	for s := StageReorderEmit; s < NumStages; s++ {
		at := rec.Stamps[s]
		if at == 0 {
			continue
		}
		d := at - prev
		if d < 0 {
			d = 0
		}
		t.stageHist[s].Observe(float64(d) / 1e9)
		prev = at
		last = at
	}
	e2e := float64(last-rec.Stamps[StageAccept]) / 1e9
	t.e2e.Observe(e2e)
	t.slo.Observe(time.Duration(last - rec.Stamps[StageAccept]))
}

// Counts is the tracer's record accounting. Sampled = Completed +
// Cancelled + Lost + Evicted + Inflight at every instant.
type Counts struct {
	Sampled   int64 `json:"sampled"`
	Completed int64 `json:"completed"`
	Cancelled int64 `json:"cancelled"`
	Lost      int64 `json:"lost"`
	Evicted   int64 `json:"evicted"`
	Inflight  int64 `json:"inflight"`
}

// CountsNow returns the current accounting; zero on a nil tracer.
func (t *Tracer) CountsNow() Counts {
	if t == nil {
		return Counts{}
	}
	t.mu.Lock()
	open := int64(len(t.unemitted) + len(t.inflight))
	t.mu.Unlock()
	return Counts{
		Sampled:   t.sampled.Value(),
		Completed: t.completed.Value(),
		Cancelled: t.cancelled.Value(),
		Lost:      t.lost.Value(),
		Evicted:   t.evicted.Value(),
		Inflight:  open,
	}
}

// Recent returns copies of up to n retired records, newest first. Empty
// on a nil tracer.
func (t *Tracer) Recent(n int) []Record {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > t.ringLen {
		n = t.ringLen
	}
	out := make([]Record, 0, n)
	for i := 1; i <= n; i++ {
		idx := (t.ringNext - i + len(t.ring)) % len(t.ring)
		out = append(out, *t.ring[idx])
	}
	return out
}

// StageSnapshot returns the named stage's histogram snapshot (zero-valued
// on a nil tracer or the accept stage, which has no latency of its own).
func (t *Tracer) StageSnapshot(s Stage) obs.HistogramSnapshot {
	if t == nil || s >= NumStages {
		return obs.HistogramSnapshot{}
	}
	return t.stageHist[s].Snapshot()
}

// EndToEndSnapshot returns the e2e freshness histogram snapshot.
func (t *Tracer) EndToEndSnapshot() obs.HistogramSnapshot {
	if t == nil {
		return obs.HistogramSnapshot{}
	}
	return t.e2e.Snapshot()
}
