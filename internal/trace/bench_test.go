package trace

import (
	"testing"

	"ipin/internal/graph"
)

// The disabled-path benchmark backs the tracer's central promise: a
// pipeline built without tracing pays one nil check per accepted edge,
// well under 5 ns. The tracer lives in a package var so the compiler
// cannot fold the nil check away.
var disabledTracer *Tracer

func BenchmarkDisabledSampleAccept(b *testing.B) {
	e := graph.Interaction{Src: 1, Dst: 2, At: 3}
	for i := 0; i < b.N; i++ {
		if rec := disabledTracer.SampleAccept(e); rec != nil {
			b.Fatal("nil tracer sampled")
		}
	}
}

// BenchmarkUnsampledAccept is the 1/1024 configuration's common case: the
// tracer exists but this edge is not the Nth — one atomic add and a mod.
func BenchmarkUnsampledAccept(b *testing.B) {
	tr := New(Config{SampleEvery: 1 << 30})
	e := graph.Interaction{Src: 1, Dst: 2, At: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec := tr.SampleAccept(e); rec != nil {
			b.Fatal("sampled")
		}
	}
}
