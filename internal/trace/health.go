package trace

import (
	"encoding/json"
	"net/http"

	"ipin/internal/obs"
)

// The /debug/pipeline health surface: one JSON document an operator (or a
// dashboard) reads to answer "how fresh is the answer right now, and
// why?" — current per-stage latencies, SLO budget and burn, pipeline
// status (watermark lag, disk footprint) from a caller-supplied callback,
// the recent lifecycle event tail, and the last few complete traces.

// StageStats summarizes one stage's latency distribution.
type StageStats struct {
	Count  int64   `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
}

func statsOf(s obs.HistogramSnapshot) StageStats {
	st := StageStats{
		Count: s.Count,
		P50Ms: obs.Quantile(s, 0.5) * 1e3,
		P90Ms: obs.Quantile(s, 0.9) * 1e3,
		P99Ms: obs.Quantile(s, 0.99) * 1e3,
	}
	if s.Count > 0 {
		st.MeanMs = s.Sum / float64(s.Count) * 1e3
	}
	return st
}

// StageLatency pairs a stage name with its stats, in pipeline order.
type StageLatency struct {
	Stage string `json:"stage"`
	StageStats
}

// StampView is one stamped stage of a RecordView, as an offset from
// accept.
type StampView struct {
	Stage    string  `json:"stage"`
	OffsetMs float64 `json:"offset_ms"`
}

// RecordView is the JSON shape of one retired trace record.
type RecordView struct {
	Src       int64       `json:"src"`
	Dst       int64       `json:"dst"`
	At        int64       `json:"at"`
	EmitIndex int64       `json:"emit_index"`
	Outcome   string      `json:"outcome"`
	Stages    []StampView `json:"stages"`
}

func viewOf(rec Record) RecordView {
	v := RecordView{
		Src: int64(rec.Src), Dst: int64(rec.Dst), At: int64(rec.At),
		EmitIndex: rec.EmitIndex, Outcome: string(rec.Outcome),
	}
	accept := rec.Stamps[StageAccept]
	for s := StageAccept; s < NumStages; s++ {
		if at := rec.Stamps[s]; at != 0 {
			v.Stages = append(v.Stages, StampView{Stage: s.String(), OffsetMs: float64(at-accept) / 1e6})
		}
	}
	return v
}

// TracerSnapshot is the tracer section of the health payload.
type TracerSnapshot struct {
	SampleEvery int            `json:"sample_every"`
	Counts      Counts         `json:"counts"`
	Stages      []StageLatency `json:"stages"`
	EndToEnd    StageStats     `json:"e2e"`
	SLO         *SLOSnapshot   `json:"slo,omitempty"`
	Recent      []RecordView   `json:"recent,omitempty"`
}

// Snapshot renders the tracer's current state; zero-valued on nil.
func (t *Tracer) Snapshot(recent int) TracerSnapshot {
	if t == nil {
		return TracerSnapshot{}
	}
	snap := TracerSnapshot{SampleEvery: int(t.every), Counts: t.CountsNow()}
	for s := StageReorderEmit; s < NumStages; s++ {
		snap.Stages = append(snap.Stages, StageLatency{Stage: s.String(), StageStats: statsOf(t.StageSnapshot(s))})
	}
	snap.EndToEnd = statsOf(t.EndToEndSnapshot())
	if t.slo != nil {
		s := t.slo.Snapshot()
		snap.SLO = &s
	}
	for _, rec := range t.Recent(recent) {
		snap.Recent = append(snap.Recent, viewOf(rec))
	}
	return snap
}

// Health is the /debug/pipeline endpoint: mount it on any mux. Every
// field is optional — absent sections are simply omitted from the
// payload, so the same handler serves an ingest-only process, a
// serve-only process, or both.
type Health struct {
	// Tracer contributes stage latencies, SLO state, and recent traces.
	Tracer *Tracer
	// Journal contributes the recent lifecycle event tail.
	Journal *Journal
	// Status contributes pipeline-specific live state (watermark lag,
	// WAL/sidecar disk footprint, generation); called per request.
	Status func() map[string]any
	// Events bounds the journal tail; 0 selects 32.
	Events int
	// RecentTraces bounds the trace tail; 0 selects 8.
	RecentTraces int
}

// ServeHTTP renders the health document.
func (h *Health) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	events := h.Events
	if events <= 0 {
		events = 32
	}
	recent := h.RecentTraces
	if recent <= 0 {
		recent = 8
	}
	doc := make(map[string]any)
	if h.Tracer != nil {
		doc["trace"] = h.Tracer.Snapshot(recent)
	}
	if h.Journal != nil {
		doc["events"] = h.Journal.Tail(events)
	}
	if h.Status != nil {
		doc["status"] = h.Status()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}
