package trace

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"ipin/internal/graph"
)

// TestHealthEndpoint drives one traced edge through the pipeline and
// checks /debug/pipeline renders every section.
func TestHealthEndpoint(t *testing.T) {
	tr := New(Config{SampleEvery: 1, SLO: SLOConfig{Objective: time.Hour}})
	rec := tr.SampleAccept(graph.Interaction{Src: 1, Dst: 2, At: 9})
	tr.Emitted(rec, 0)
	tr.StampThrough(StageWALAppend, 1)
	tr.BeginPublish(1)
	tr.StampVisible()
	j := NewJournal(JournalConfig{Size: 8})
	j.Record(EventCheckpoint, "interval", time.Millisecond, map[string]any{"edges": 1})

	h := &Health{
		Tracer:  tr,
		Journal: j,
		Status:  func() map[string]any { return map[string]any{"watermark_lag": 3} },
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pipeline", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var doc struct {
		Trace  TracerSnapshot `json:"trace"`
		Events []Event        `json:"events"`
		Status map[string]any `json:"status"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("payload: %v\n%s", err, rr.Body.String())
	}
	if doc.Trace.Counts.Completed != 1 || doc.Trace.SampleEvery != 1 {
		t.Fatalf("trace section = %+v", doc.Trace)
	}
	if doc.Trace.SLO == nil || doc.Trace.SLO.Observed != 1 {
		t.Fatalf("slo section = %+v", doc.Trace.SLO)
	}
	if len(doc.Trace.Recent) != 1 || doc.Trace.Recent[0].Outcome != "completed" {
		t.Fatalf("recent section = %+v", doc.Trace.Recent)
	}
	// Stage offsets are relative to accept and nondecreasing.
	stages := doc.Trace.Recent[0].Stages
	if len(stages) == 0 || stages[0].Stage != "accept" || stages[0].OffsetMs != 0 {
		t.Fatalf("stages = %+v", stages)
	}
	for i := 1; i < len(stages); i++ {
		if stages[i].OffsetMs < stages[i-1].OffsetMs {
			t.Fatalf("stage offsets regress: %+v", stages)
		}
	}
	if len(doc.Events) != 1 || doc.Events[0].Type != EventCheckpoint {
		t.Fatalf("events section = %+v", doc.Events)
	}
	if doc.Status["watermark_lag"] != float64(3) {
		t.Fatalf("status section = %+v", doc.Status)
	}
}

// TestHealthEmpty: a Health with nothing attached renders an empty JSON
// object, not a panic.
func TestHealthEmpty(t *testing.T) {
	rr := httptest.NewRecorder()
	(&Health{}).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pipeline", nil))
	var doc map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("payload: %v", err)
	}
	if len(doc) != 0 {
		t.Fatalf("doc = %v", doc)
	}
}
