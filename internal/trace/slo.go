package trace

import (
	"sync"
	"time"

	"ipin/internal/obs"
)

// Freshness SLO tracking: the objective is a statement like "99% of edges
// become queryable within 30 s". Every completed trace feeds one
// observation; the tracker maintains lifetime attainment, the remaining
// error budget, and a windowed burn rate — the three numbers an on-call
// needs to decide between "ignore", "watch", and "page".

// SLOConfig parameterizes the freshness objective.
type SLOConfig struct {
	// Objective is the freshness threshold an observation must meet
	// (e.g. 30s for "edge-to-queryable < 30 s"). 0 disables tracking.
	Objective time.Duration
	// Target is the fraction of observations that must meet it; 0 selects
	// 0.99.
	Target float64
	// BurnWindow is the lookback for the burn-rate signal; 0 selects 5m.
	BurnWindow time.Duration
}

// sloBuckets is the burn-window resolution: the window is split into this
// many rotating time buckets.
const sloBuckets = 30

// SLO tracks one freshness objective. A nil *SLO is a no-op.
type SLO struct {
	cfg SLOConfig

	mu      sync.Mutex
	buckets [sloBuckets]sloBucket
	cur     int
	curEnd  time.Time

	observed, breaches *obs.Counter
}

type sloBucket struct {
	total, breaches int64
}

func newSLO(cfg SLOConfig, reg *obs.Registry) *SLO {
	if cfg.Target <= 0 || cfg.Target >= 1 {
		cfg.Target = 0.99
	}
	if cfg.BurnWindow <= 0 {
		cfg.BurnWindow = 5 * time.Minute
	}
	s := &SLO{cfg: cfg}
	s.observed = reg.Counter(MetricSLOOK, "Freshness observations judged against the SLO objective.")
	s.breaches = reg.Counter(MetricSLOBreach, "Freshness observations that exceeded the SLO objective.")
	if s.observed == nil {
		// No registry: standalone counters keep the tracker functional
		// (snapshots still work, nothing is exposed).
		s.observed, s.breaches = &obs.Counter{}, &obs.Counter{}
	}
	reg.Gauge(MetricSLOObj, "Freshness SLO objective in milliseconds.").Set(cfg.Objective.Milliseconds())
	reg.Gauge(MetricSLOTarget, "Freshness SLO target in parts per million (990000 = 99%).").Set(int64(cfg.Target * 1e6))
	reg.GaugeFunc(MetricSLOAttain, "Lifetime SLO attainment in parts per million (1000000 with no observations).", func() int64 {
		return int64(s.Snapshot().Attainment * 1e6)
	})
	reg.GaugeFunc(MetricSLOBudget, "Fraction of the error budget remaining, in parts per million (negative = overspent).", func() int64 {
		return int64(s.Snapshot().BudgetRemaining * 1e6)
	})
	reg.GaugeFunc(MetricSLOBurn, "Error-budget burn rate over the burn window, in parts per million (1000000 = exactly sustainable).", func() int64 {
		return int64(s.Snapshot().BurnRate * 1e6)
	})
	return s
}

// rotateLocked advances the bucket ring so cur covers now.
func (s *SLO) rotateLocked(now time.Time) {
	per := s.cfg.BurnWindow / sloBuckets
	if s.curEnd.IsZero() {
		s.curEnd = now.Add(per)
		return
	}
	for !now.Before(s.curEnd) {
		s.cur = (s.cur + 1) % sloBuckets
		s.buckets[s.cur] = sloBucket{}
		s.curEnd = s.curEnd.Add(per)
		if s.curEnd.Add(s.cfg.BurnWindow).Before(now) {
			// Idle far longer than the window: everything is stale.
			for i := range s.buckets {
				s.buckets[i] = sloBucket{}
			}
			s.curEnd = now.Add(per)
			break
		}
	}
}

// Observe judges one freshness measurement against the objective. No-op
// on a nil receiver.
func (s *SLO) Observe(d time.Duration) {
	if s == nil {
		return
	}
	breach := d > s.cfg.Objective
	s.observed.Inc()
	if breach {
		s.breaches.Inc()
	}
	s.mu.Lock()
	s.rotateLocked(time.Now())
	s.buckets[s.cur].total++
	if breach {
		s.buckets[s.cur].breaches++
	}
	s.mu.Unlock()
}

// SLOSnapshot is a point-in-time view of the objective's health.
type SLOSnapshot struct {
	ObjectiveMs float64 `json:"objective_ms"`
	Target      float64 `json:"target"`
	Observed    int64   `json:"observed"`
	Breaches    int64   `json:"breaches"`
	// Attainment is the lifetime fraction of observations meeting the
	// objective; 1 with no observations.
	Attainment float64 `json:"attainment"`
	// BudgetRemaining is the fraction of the lifetime error budget left:
	// 1 = untouched, 0 = exhausted, negative = overspent.
	BudgetRemaining float64 `json:"budget_remaining"`
	// BurnRate is the breach rate over the burn window relative to the
	// sustainable rate (1−Target): 1 means breaching exactly as fast as
	// the budget replenishes; >1 means the budget is shrinking.
	BurnRate float64 `json:"burn_rate"`
	// WindowObserved/WindowBreaches are the burn-window sample counts
	// behind BurnRate.
	WindowObserved int64 `json:"window_observed"`
	WindowBreaches int64 `json:"window_breaches"`
}

// Snapshot computes the current SLO state; zero-valued on a nil receiver.
func (s *SLO) Snapshot() SLOSnapshot {
	if s == nil {
		return SLOSnapshot{}
	}
	snap := SLOSnapshot{
		ObjectiveMs: float64(s.cfg.Objective) / 1e6,
		Target:      s.cfg.Target,
		Observed:    s.observed.Value(),
		Breaches:    s.breaches.Value(),
		Attainment:  1,
		BurnRate:    0,
	}
	if snap.Observed > 0 {
		snap.Attainment = 1 - float64(snap.Breaches)/float64(snap.Observed)
	}
	allowed := (1 - s.cfg.Target) * float64(snap.Observed)
	snap.BudgetRemaining = 1.0
	if allowed > 0 {
		snap.BudgetRemaining = 1 - float64(snap.Breaches)/allowed
	} else if snap.Breaches > 0 {
		snap.BudgetRemaining = 0
	}
	s.mu.Lock()
	s.rotateLocked(time.Now())
	var wt, wb int64
	for _, b := range s.buckets {
		wt += b.total
		wb += b.breaches
	}
	s.mu.Unlock()
	snap.WindowObserved, snap.WindowBreaches = wt, wb
	if wt > 0 {
		snap.BurnRate = (float64(wb) / float64(wt)) / (1 - s.cfg.Target)
	}
	return snap
}
