package trace

import (
	"strings"
	"testing"
	"time"

	"ipin/internal/graph"
	"ipin/internal/obs"
)

// sampleOne pushes arrivals until the tracer samples one (cadence 1 makes
// that the first arrival).
func sampleOne(t *testing.T, tr *Tracer, e graph.Interaction) *Record {
	t.Helper()
	rec := tr.SampleAccept(e)
	if rec == nil {
		t.Fatal("cadence-1 tracer did not sample")
	}
	return rec
}

func TestStageNames(t *testing.T) {
	want := []string{
		"accept", "reorder_emit", "wal_append", "wal_fsync", "chunk_seal",
		"fold", "checkpoint_write", "publish", "serve_visible",
	}
	for s := StageAccept; s < NumStages; s++ {
		if s.String() != want[s] {
			t.Fatalf("stage %d = %q, want %q", s, s.String(), want[s])
		}
	}
	if NumStages.String() != "invalid" {
		t.Fatalf("out-of-range stage = %q", NumStages.String())
	}
}

// TestNilSafety: every exported method must be a no-op on a nil receiver —
// the contract that lets pipelines instrument unconditionally.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if rec := tr.SampleAccept(graph.Interaction{}); rec != nil {
		t.Fatal("nil tracer sampled")
	}
	tr.Cancel(nil)
	tr.Emitted(nil, 0)
	tr.StampThrough(StageWALAppend, 10)
	tr.BeginPublish(10)
	tr.StampVisible()
	tr.FinishPublish()
	tr.Recovered(0)
	if c := tr.CountsNow(); c != (Counts{}) {
		t.Fatalf("nil counts = %+v", c)
	}
	if tr.Recent(5) != nil || tr.SampleEveryN() != 0 || tr.SLOTracker() != nil {
		t.Fatal("nil tracer leaked state")
	}
	if snap := tr.Snapshot(4); snap.SampleEvery != 0 {
		t.Fatal("nil tracer snapshot not zero")
	}

	var j *Journal
	j.Record(EventCheckpoint, "x", time.Second, nil)
	if j.Tail(3) != nil || j.Len() != 0 {
		t.Fatal("nil journal leaked state")
	}

	var s *SLO
	s.Observe(time.Second)
	if s.Snapshot() != (SLOSnapshot{}) {
		t.Fatal("nil SLO snapshot not zero")
	}
}

func TestSamplingCadence(t *testing.T) {
	tr := New(Config{SampleEvery: 3})
	var sampled int
	for i := 0; i < 30; i++ {
		if tr.SampleAccept(graph.Interaction{Src: 0, Dst: 1, At: graph.Time(i)}) != nil {
			sampled++
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 30 at cadence 3, want 10", sampled)
	}
}

// TestLifecycle walks one record through every stage and checks the
// stamps are monotone, the record completes exactly once, and the
// histograms and ring see it.
func TestLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Config{SampleEvery: 1, Registry: reg, SLO: SLOConfig{Objective: time.Hour}})
	rec := sampleOne(t, tr, graph.Interaction{Src: 3, Dst: 7, At: 42})
	tr.Emitted(rec, 0)
	tr.StampThrough(StageWALAppend, 1)
	tr.StampThrough(StageWALFsync, 1)
	tr.StampThrough(StageChunkSeal, 1)
	tr.StampThrough(StageFold, 1)
	tr.StampThrough(StageCheckpointWrite, 1)
	tr.BeginPublish(1)
	tr.StampVisible()
	tr.FinishPublish() // second completion attempt must be a no-op

	c := tr.CountsNow()
	if c.Sampled != 1 || c.Completed != 1 || c.Inflight != 0 {
		t.Fatalf("counts = %+v", c)
	}
	recent := tr.Recent(10)
	if len(recent) != 1 || recent[0].Outcome != OutcomeCompleted {
		t.Fatalf("recent = %+v", recent)
	}
	got := recent[0]
	if got.Src != 3 || got.Dst != 7 || got.At != 42 || got.EmitIndex != 0 {
		t.Fatalf("record identity = %+v", got)
	}
	prev := int64(0)
	for s := StageAccept; s < NumStages; s++ {
		at := got.Stamps[s]
		if at == 0 {
			t.Fatalf("stage %s unstamped", s)
		}
		if at < prev {
			t.Fatalf("stage %s stamp %d before previous %d", s, at, prev)
		}
		prev = at
	}
	if snap := tr.EndToEndSnapshot(); snap.Count != 1 {
		t.Fatalf("e2e count = %d", snap.Count)
	}
	if snap := tr.StageSnapshot(StageServeVisible); snap.Count != 1 {
		t.Fatalf("serve_visible count = %d", snap.Count)
	}
	if slo := tr.SLOTracker().Snapshot(); slo.Observed != 1 || slo.Breaches != 0 {
		t.Fatalf("slo = %+v", slo)
	}
}

// TestWriteOnceStamps: re-stamping a stage must not move the stamp; the
// property that makes batch stamping idempotent.
func TestWriteOnceStamps(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	rec := sampleOne(t, tr, graph.Interaction{At: 1})
	tr.Emitted(rec, 0)
	tr.StampThrough(StageWALAppend, 1)
	first := rec.Stamps[StageWALAppend]
	time.Sleep(time.Millisecond)
	tr.StampThrough(StageWALAppend, 1)
	if rec.Stamps[StageWALAppend] != first {
		t.Fatal("stamp overwritten")
	}
}

// TestStampThroughBound: only records below the emit bound are stamped.
func TestStampThroughBound(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	a := sampleOne(t, tr, graph.Interaction{At: 1})
	b := sampleOne(t, tr, graph.Interaction{At: 2})
	tr.Emitted(a, 0)
	tr.Emitted(b, 1)
	tr.StampThrough(StageWALAppend, 1)
	if a.Stamps[StageWALAppend] == 0 {
		t.Fatal("covered record not stamped")
	}
	if b.Stamps[StageWALAppend] != 0 {
		t.Fatal("uncovered record stamped")
	}
}

func TestCancel(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	rec := sampleOne(t, tr, graph.Interaction{At: 5})
	tr.Cancel(rec)
	c := tr.CountsNow()
	if c.Cancelled != 1 || c.Inflight != 0 {
		t.Fatalf("counts = %+v", c)
	}
	if snap := tr.EndToEndSnapshot(); snap.Count != 0 {
		t.Fatal("cancelled record fed the e2e histogram")
	}
}

func TestInflightEviction(t *testing.T) {
	tr := New(Config{SampleEvery: 1, MaxInflight: 2})
	recs := make([]*Record, 3)
	for i := range recs {
		recs[i] = sampleOne(t, tr, graph.Interaction{At: graph.Time(i)})
		tr.Emitted(recs[i], int64(i))
	}
	c := tr.CountsNow()
	if c.Evicted != 1 || c.Inflight != 2 {
		t.Fatalf("counts = %+v", c)
	}
	if recs[0].Outcome != OutcomeEvicted {
		t.Fatalf("oldest record outcome = %q", recs[0].Outcome)
	}
}

// TestRecovered: records the crash caught unemitted, and emitted records
// past the recovered prefix, retire as lost; survivors stay open and can
// still complete.
func TestRecovered(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	survivor := sampleOne(t, tr, graph.Interaction{At: 1})
	tr.Emitted(survivor, 0)
	tr.StampThrough(StageWALAppend, 1)
	gone := sampleOne(t, tr, graph.Interaction{At: 2})
	tr.Emitted(gone, 1)
	buffered := sampleOne(t, tr, graph.Interaction{At: 3}) // never emitted

	tr.Recovered(1) // replay reconstructed only emit index 0
	c := tr.CountsNow()
	if c.Lost != 2 || c.Inflight != 1 {
		t.Fatalf("counts after recovery = %+v", c)
	}
	if gone.Outcome != OutcomeLost || buffered.Outcome != OutcomeLost {
		t.Fatal("lost records not retired as lost")
	}
	// The survivor completes through the recovery checkpoint.
	tr.StampThrough(StageFold, 1)
	tr.StampThrough(StageCheckpointWrite, 1)
	tr.BeginPublish(1)
	tr.FinishPublish()
	c = tr.CountsNow()
	if c.Completed != 1 || c.Inflight != 0 {
		t.Fatalf("counts after completion = %+v", c)
	}
}

func TestSLOBreachAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	s := newSLO(SLOConfig{Objective: 10 * time.Millisecond, Target: 0.5, BurnWindow: time.Minute}, reg)
	s.Observe(time.Millisecond)      // ok
	s.Observe(time.Second)           // breach
	s.Observe(2 * time.Millisecond)  // ok
	s.Observe(20 * time.Millisecond) // breach
	snap := s.Snapshot()
	if snap.Observed != 4 || snap.Breaches != 2 {
		t.Fatalf("observed/breaches = %d/%d", snap.Observed, snap.Breaches)
	}
	if snap.Attainment != 0.5 {
		t.Fatalf("attainment = %v", snap.Attainment)
	}
	// Target 0.5 allows 2 breaches in 4: budget exactly spent.
	if snap.BudgetRemaining != 0 {
		t.Fatalf("budget = %v", snap.BudgetRemaining)
	}
	// Breaching at exactly the sustainable rate: burn rate 1.
	if snap.BurnRate != 1 {
		t.Fatalf("burn rate = %v", snap.BurnRate)
	}
	if snap.WindowObserved != 4 || snap.WindowBreaches != 2 {
		t.Fatalf("window = %d/%d", snap.WindowObserved, snap.WindowBreaches)
	}
	// The ppm gauges render through the registry.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		MetricSLOAttain + " 500000",
		MetricSLOBudget + " 0",
		MetricSLOBurn + " 1000000",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestJournalRingAndSink(t *testing.T) {
	var sink strings.Builder
	reg := obs.NewRegistry()
	j := NewJournal(JournalConfig{Size: 3, Sink: &sink, Registry: reg})
	j.Record(EventChunkSeal, "", 0, map[string]any{"edges": 10})
	j.Record(EventCheckpoint, "interval", 2*time.Millisecond, nil)
	j.Record(EventCheckpoint, "forced", 0, nil)
	j.Record(EventShed, "queue_full", 0, nil) // rolls the first event out
	if j.Len() != 3 {
		t.Fatalf("len = %d, want 3", j.Len())
	}
	tail := j.Tail(10)
	if len(tail) != 3 {
		t.Fatalf("tail = %d events", len(tail))
	}
	want := []string{EventCheckpoint, EventCheckpoint, EventShed}
	for i, ev := range tail {
		if ev.Type != want[i] {
			t.Fatalf("tail[%d] = %q, want %q", i, ev.Type, want[i])
		}
	}
	if tail[0].Cause != "interval" || tail[0].DurationMs != 2 {
		t.Fatalf("tail[0] = %+v", tail[0])
	}
	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("sink got %d lines, want 4", len(lines))
	}
	if !strings.Contains(lines[0], `"type":"chunk_seal"`) || !strings.Contains(lines[0], `"edges":10`) {
		t.Fatalf("sink line 0 = %s", lines[0])
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, MetricJournalEvt+`{type="checkpoint"} 2`) {
		t.Fatalf("journal counters missing:\n%s", text)
	}
}

// TestAccountingInvariant: Sampled = Completed + Cancelled + Lost +
// Evicted + Inflight under a mixed workload.
func TestAccountingInvariant(t *testing.T) {
	tr := New(Config{SampleEvery: 1, MaxInflight: 4})
	emit := int64(0)
	for i := 0; i < 100; i++ {
		rec := tr.SampleAccept(graph.Interaction{At: graph.Time(i)})
		switch i % 5 {
		case 0:
			tr.Cancel(rec)
		default:
			tr.Emitted(rec, emit)
			emit++
		}
		if i%10 == 9 {
			tr.StampThrough(StageWALAppend, emit)
			tr.BeginPublish(emit)
			tr.StampVisible()
		}
	}
	c := tr.CountsNow()
	if got := c.Completed + c.Cancelled + c.Lost + c.Evicted + c.Inflight; got != c.Sampled {
		t.Fatalf("accounting leak: %+v (sum %d != sampled %d)", c, got, c.Sampled)
	}
	if c.Cancelled != 20 {
		t.Fatalf("cancelled = %d, want 20", c.Cancelled)
	}
}
