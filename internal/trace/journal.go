package trace

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"ipin/internal/obs"
)

// The lifecycle event journal: a bounded in-memory ring of structured
// events (segment rotations, chunk seals, checkpoints, compaction
// deletions, snapshot reloads, shed decisions — each with cause and
// duration) plus an optional JSON-lines sink for durable postmortems.
// Event rates are operator-scale (rotations and checkpoints, not edges),
// so a mutex and a map per event are fine; the hot path never touches
// the journal.

// Event is one journal entry. Fields carries event-specific detail
// (counts, byte sizes, sequence numbers).
type Event struct {
	At         time.Time      `json:"ts"`
	Type       string         `json:"type"`
	Cause      string         `json:"cause,omitempty"`
	DurationMs float64        `json:"duration_ms,omitempty"`
	Fields     map[string]any `json:"fields,omitempty"`
}

// Journal event types emitted by the pipeline and serving layers.
const (
	EventSegmentRotate    = "segment_rotate"
	EventWALTruncate      = "wal_truncate"
	EventChunkSeal        = "chunk_seal"
	EventChunkPersist     = "chunk_persist"
	EventChunkRetire      = "chunk_retire"
	EventCheckpoint       = "checkpoint"
	EventCompactionDelete = "compaction_delete"
	EventRecovery         = "recovery"
	EventSnapshotReload   = "snapshot_reload"
	EventShed             = "shed"

	// Replication lifecycle (internal/repl): a replica session attached
	// to the primary, a replica finished syncing to the primary's
	// position, a replica lost its primary, and a replica was promoted.
	EventReplAttach  = "repl_attach"
	EventReplSync    = "repl_sync"
	EventReplLost    = "repl_lost"
	EventReplPromote = "repl_promote"
)

// JournalConfig parameterizes a Journal.
type JournalConfig struct {
	// Size bounds the in-memory ring; 0 selects 512.
	Size int
	// Sink, when non-nil, additionally receives every event as one JSON
	// line. Writes happen under the journal lock in event order; hand it
	// an *os.File or a buffered writer the caller flushes on shutdown.
	Sink io.Writer
	// Registry receives trace_journal_events_total{type=...}; nil
	// disables metrics.
	Registry *obs.Registry
}

// Journal is the bounded lifecycle event log. A nil *Journal is a no-op,
// so pipelines record events unconditionally.
type Journal struct {
	mu   sync.Mutex
	ring []Event
	next int
	n    int
	sink io.Writer
	reg  *obs.Registry
}

// NewJournal returns a Journal over the given configuration.
func NewJournal(cfg JournalConfig) *Journal {
	if cfg.Size <= 0 {
		cfg.Size = 512
	}
	return &Journal{ring: make([]Event, cfg.Size), sink: cfg.Sink, reg: cfg.Registry}
}

// Record appends one event, stamped now. No-op on a nil receiver. The
// fields map is retained; callers must not mutate it afterwards.
func (j *Journal) Record(typ, cause string, d time.Duration, fields map[string]any) {
	if j == nil {
		return
	}
	ev := Event{At: time.Now(), Type: typ, Cause: cause, Fields: fields}
	if d > 0 {
		ev.DurationMs = float64(d) / 1e6
	}
	// Counter lookup is get-or-create by full name; event rates are low.
	j.reg.Counter(MetricJournalEvt+`{type="`+typ+`"}`, "Lifecycle events recorded in the journal.").Inc()
	j.mu.Lock()
	j.ring[j.next] = ev
	j.next = (j.next + 1) % len(j.ring)
	if j.n < len(j.ring) {
		j.n++
	}
	if j.sink != nil {
		if b, err := json.Marshal(ev); err == nil {
			b = append(b, '\n')
			_, _ = j.sink.Write(b)
		}
	}
	j.mu.Unlock()
}

// Tail returns up to n most recent events, oldest first (log order).
// Empty on a nil receiver.
func (j *Journal) Tail(n int) []Event {
	if j == nil || n <= 0 {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if n > j.n {
		n = j.n
	}
	out := make([]Event, 0, n)
	for i := n; i >= 1; i-- {
		idx := (j.next - i + len(j.ring)) % len(j.ring)
		out = append(out, j.ring[idx])
	}
	return out
}

// Len returns the number of retained events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}
