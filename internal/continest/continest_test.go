package continest

import (
	"math"
	"testing"

	"ipin/internal/graph"
)

// starWeighted builds an instant star: node 0 transmits instantly to
// 1..10 (all interactions at the source's first-appearance time).
func starWeighted(leaves int) *graph.WeightedStatic {
	l := graph.New(leaves + 1)
	for v := 1; v <= leaves; v++ {
		l.Add(0, graph.NodeID(v), graph.Time(v))
	}
	l.Sort()
	// Node 0's first source time is its first interaction, so the first
	// edge has weight 0 and the rest grow: weights 0, 1, 2, ...
	return graph.WeightedFrom(l)
}

func TestConfigValidation(t *testing.T) {
	ws := starWeighted(3)
	if _, err := New(ws, Config{Samples: 0, Labels: 4, T: 1}); err == nil {
		t.Error("Samples=0 accepted")
	}
	if _, err := New(ws, Config{Samples: 2, Labels: 1, T: 1}); err == nil {
		t.Error("Labels=1 accepted")
	}
	if _, err := New(ws, Config{Samples: 2, Labels: 4, T: -1}); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestSingleNodeInfluenceIncludesSelf(t *testing.T) {
	// An isolated node influences exactly itself (distance 0 ≤ T).
	l := graph.New(2)
	l.Add(0, 1, 1)
	l.Sort()
	ws := graph.WeightedFrom(l)
	e, err := New(ws, Config{Samples: 4, Labels: 16, T: 0.0001, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 has no out-edges: neighbourhood = {1}.
	got := e.Influence([]graph.NodeID{1})
	if math.Abs(got-1) > 0.6 {
		t.Errorf("isolated influence %.2f, want ≈1", got)
	}
}

func TestStarCenterEstimate(t *testing.T) {
	ws := starWeighted(20)
	// Edge weights are 0..19; with a generous budget the center reaches
	// all 21 nodes.
	e, err := New(ws, Config{Samples: 6, Labels: 24, T: 1e6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Influence([]graph.NodeID{0})
	if got < 12 || got > 32 {
		t.Errorf("star center influence %.2f, want ≈21", got)
	}
	// A leaf reaches only itself.
	leaf := e.Influence([]graph.NodeID{5})
	if leaf < 0.3 || leaf > 2.5 {
		t.Errorf("leaf influence %.2f, want ≈1", leaf)
	}
}

func TestInfluenceMonotoneInBudget(t *testing.T) {
	ws := starWeighted(20)
	small, err := New(ws, Config{Samples: 4, Labels: 16, T: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(ws, Config{Samples: 4, Labels: 16, T: 1e6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := small.Influence([]graph.NodeID{0})
	b := big.Influence([]graph.NodeID{0})
	if b < s {
		t.Errorf("influence shrank with budget: T=1 → %.2f, T=1e6 → %.2f", s, b)
	}
}

func TestInfluenceMonotoneInSeeds(t *testing.T) {
	ws := starWeighted(10)
	e, err := New(ws, Config{Samples: 4, Labels: 16, T: 1e6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	one := e.Influence([]graph.NodeID{1})
	two := e.Influence([]graph.NodeID{1, 2})
	if two < one {
		t.Errorf("adding a seed shrank influence: %.2f → %.2f", one, two)
	}
	if e.Influence(nil) != 0 {
		t.Error("empty seed set has nonzero influence")
	}
}

func TestTopKPicksStarCenterFirst(t *testing.T) {
	ws := starWeighted(20)
	seeds, err := TopK(ws, 3, Config{Samples: 6, Labels: 24, T: 1e6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 3 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	if seeds[0] != 0 {
		t.Fatalf("first seed = %d, want star center 0", seeds[0])
	}
	seen := map[graph.NodeID]bool{}
	for _, u := range seeds {
		if seen[u] {
			t.Fatalf("duplicate seed in %v", seeds)
		}
		seen[u] = true
	}
}

func TestTwoStarsGreedyOrder(t *testing.T) {
	// Star 0 → 1..12 (instant), star 20 → 21..26 (instant), and a chain
	// linking nothing else. Greedy must take both centers first.
	l := graph.New(27)
	tt := graph.Time(1)
	for v := 1; v <= 12; v++ {
		l.Add(0, graph.NodeID(v), tt)
	}
	for v := 21; v <= 26; v++ {
		l.Add(20, graph.NodeID(v), tt+1)
	}
	l.Sort()
	l.Detie()
	ws := graph.WeightedFrom(l)
	seeds, err := TopK(ws, 2, Config{Samples: 6, Labels: 24, T: 1e9, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if seeds[0] != 0 || seeds[1] != 20 {
		t.Fatalf("seeds = %v, want [0 20]", seeds)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	ws := starWeighted(15)
	cfg := Config{Samples: 4, Labels: 8, T: 100, Seed: 21}
	a, err := TopK(ws, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TopK(ws, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: %v vs %v", a, b)
		}
	}
}

func TestQueryLeastLabel(t *testing.T) {
	list := []labelEntry{{dist: 10, label: 0.1}, {dist: 5, label: 0.4}, {dist: 1, label: 0.9}}
	if got := queryLeastLabel(list, 20); got != 0.1 {
		t.Errorf("T=20 → %.2f, want 0.1", got)
	}
	if got := queryLeastLabel(list, 7); got != 0.4 {
		t.Errorf("T=7 → %.2f, want 0.4", got)
	}
	if got := queryLeastLabel(list, 1); got != 0.9 {
		t.Errorf("T=1 → %.2f, want 0.9", got)
	}
	if got := queryLeastLabel(list, 0.5); !math.IsInf(got, 1) {
		t.Errorf("T=0.5 → %.2f, want +Inf", got)
	}
	if got := queryLeastLabel(nil, 10); !math.IsInf(got, 1) {
		t.Errorf("empty list → %.2f, want +Inf", got)
	}
}
