// Package continest reimplements ConTinEst — scalable influence estimation
// in continuous-time diffusion networks (Du, Song, Gomez-Rodriguez, Zha,
// NIPS 2013) — the data-driven competitor of the paper's evaluation (§6).
//
// ConTinEst consumes a weighted static graph in which every edge carries a
// transmission delay. The paper derives that graph from the interaction
// network (graph.WeightedFrom): the first time a node u appears as a
// source fixes its infection time u_i, and each interaction (u,v,t)
// becomes edge (u,v) with weight t − u_i; duplicates keep the fastest
// transmission.
//
// The influence of a seed set S with time budget T is the expected number
// of nodes whose shortest transmission-time distance from S is at most T,
// where edge transmission times are random (here exponential with the edge
// weight as mean, the canonical ConTinEst setting). The estimation stack,
// rebuilt from scratch:
//
//  1. Draw Samples independent transmission-time assignments.
//  2. Per assignment, draw Labels independent Exp(1) node labelings and
//     build Cohen's least-label lists with pruned reverse Dijkstra runs in
//     ascending label order.
//  3. The least label within distance T of u across a labeling is r*(u);
//     for L labelings, |N(u,T)| ≈ (L−1)/Σ r*. Minimum composes over seed
//     sets, so greedy marginal gains come from component-wise minima.
package continest

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"ipin/internal/graph"
)

// Config parameterizes ConTinEst.
type Config struct {
	// Samples is the number of independent transmission-time assignments.
	Samples int
	// Labels is the number of random labelings per assignment. The
	// estimator needs at least 2.
	Labels int
	// T is the time budget: a node counts as influenced when its shortest
	// transmission-time distance from the seed set is at most T. The
	// paper's harness sets T to the window ω.
	T float64
	// Seed seeds the deterministic RNG.
	Seed uint64
}

// DefaultConfig returns moderate sampling settings (64 effective
// repetitions) suitable for the scaled datasets.
func DefaultConfig(t float64) Config {
	return Config{Samples: 8, Labels: 8, T: t, Seed: 1}
}

// labelEntry is one (distance, label) pair of a least-label list: entries
// are appended in ascending label order with strictly decreasing distance.
type labelEntry struct {
	dist  float64
	label float64
}

// Estimator holds per-node least-label vectors and answers influence
// queries. Build one with New, then call Influence or TopK.
type Estimator struct {
	n   int
	cfg Config
	// leastLabel[u][j] is r*_j(u): the least label within distance T of u
	// in repetition j, or +Inf when the labeling assigned none (cannot
	// happen in practice: u is within distance 0 of itself).
	leastLabel [][]float64
	reps       int
}

// New builds the estimation state over the weighted graph. The cost is
// Samples×Labels pruned multi-source Dijkstra sweeps.
func New(ws *graph.WeightedStatic, cfg Config) (*Estimator, error) {
	if cfg.Samples < 1 {
		return nil, fmt.Errorf("continest: samples must be >= 1, got %d", cfg.Samples)
	}
	if cfg.Labels < 2 {
		return nil, fmt.Errorf("continest: labels must be >= 2, got %d", cfg.Labels)
	}
	if cfg.T < 0 {
		return nil, fmt.Errorf("continest: time budget must be >= 0, got %g", cfg.T)
	}
	n := ws.NumNodes
	e := &Estimator{n: n, cfg: cfg, reps: cfg.Samples * cfg.Labels}
	e.leastLabel = make([][]float64, n)
	for u := range e.leastLabel {
		e.leastLabel[u] = make([]float64, e.reps)
		for j := range e.leastLabel[u] {
			e.leastLabel[u][j] = math.Inf(1)
		}
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xc7e))
	rev := reverseWeighted(ws)
	for s := 0; s < cfg.Samples; s++ {
		times := sampleTransmissionTimes(rev, rng)
		for lr := 0; lr < cfg.Labels; lr++ {
			rep := s*cfg.Labels + lr
			lists := buildLeastLabelLists(rev, times, cfg.T, rng)
			for u := 0; u < n; u++ {
				e.leastLabel[u][rep] = queryLeastLabel(lists[u], cfg.T)
			}
		}
	}
	return e, nil
}

// revEdge is one reverse edge with its mean transmission delay.
type revEdge struct {
	to   graph.NodeID
	mean float64
}

type revGraph struct {
	n     int
	start []int32
	edges []revEdge
}

func reverseWeighted(ws *graph.WeightedStatic) *revGraph {
	n := ws.NumNodes
	deg := make([]int32, n+1)
	for _, adj := range ws.Out {
		for _, e := range adj {
			deg[e.Dst]++
		}
	}
	g := &revGraph{n: n, start: make([]int32, n+1)}
	var acc int32
	for v := 0; v <= n; v++ {
		g.start[v] = acc
		if v < n {
			acc += deg[v]
		}
	}
	g.edges = make([]revEdge, acc)
	fill := make([]int32, n)
	for u, adj := range ws.Out {
		for _, e := range adj {
			pos := g.start[e.Dst] + fill[e.Dst]
			g.edges[pos] = revEdge{to: graph.NodeID(u), mean: e.Weight}
			fill[e.Dst]++
		}
	}
	return g
}

// sampleTransmissionTimes draws one exponential transmission time per
// reverse edge, with the edge weight as the mean. Zero-weight edges
// transmit instantly.
func sampleTransmissionTimes(g *revGraph, rng *rand.Rand) []float64 {
	times := make([]float64, len(g.edges))
	for i, e := range g.edges {
		if e.mean <= 0 {
			times[i] = 0
			continue
		}
		times[i] = rng.ExpFloat64() * e.mean
	}
	return times
}

// distHeap is a min-heap over (node, dist) pairs for Dijkstra.
type distItem struct {
	node graph.NodeID
	dist float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// buildLeastLabelLists draws Exp(1) labels for all nodes, then processes
// nodes in ascending label order, running from each a reverse Dijkstra
// (bounded by budget t) that is pruned at nodes whose list already holds a
// closer entry — Cohen's classic least-label construction. The returned
// lists have strictly decreasing distances and ascending labels.
func buildLeastLabelLists(g *revGraph, times []float64, t float64, rng *rand.Rand) [][]labelEntry {
	n := g.n
	labels := make([]float64, n)
	for i := range labels {
		labels[i] = rng.ExpFloat64()
	}
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sort.Slice(order, func(a, b int) bool { return labels[order[a]] < labels[order[b]] })

	lists := make([][]labelEntry, n)
	var h distHeap
	dist := make([]float64, n)
	seen := make([]int32, n)
	var epoch int32
	for _, v := range order {
		lab := labels[v]
		epoch++
		h = h[:0]
		heap.Push(&h, distItem{node: v, dist: 0})
		dist[v] = 0
		seen[v] = epoch
		for h.Len() > 0 {
			it := heap.Pop(&h).(distItem)
			if it.dist > t {
				break
			}
			if it.dist > dist[it.node] && seen[it.node] == epoch {
				continue // stale heap entry
			}
			l := lists[it.node]
			if len(l) > 0 && l[len(l)-1].dist <= it.dist {
				// An earlier (smaller) label is already at least this
				// close; this search cannot improve it.node or anything
				// behind it. Prune.
				continue
			}
			lists[it.node] = append(l, labelEntry{dist: it.dist, label: lab})
			for ei := g.start[it.node]; ei < g.start[it.node+1]; ei++ {
				e := g.edges[ei]
				nd := it.dist + times[ei]
				if nd > t {
					continue
				}
				if seen[e.to] != epoch || nd < dist[e.to] {
					seen[e.to] = epoch
					dist[e.to] = nd
					heap.Push(&h, distItem{node: e.to, dist: nd})
				}
			}
		}
	}
	return lists
}

// queryLeastLabel returns the least label within distance t: the first
// entry (ascending label order) whose distance is ≤ t. Distances decrease
// along the list, so the qualifying entries form a suffix.
func queryLeastLabel(list []labelEntry, t float64) float64 {
	// Binary search the first index with dist <= t.
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid].dist <= t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(list) {
		return math.Inf(1)
	}
	return list[lo].label
}

// NumNodes returns n.
func (e *Estimator) NumNodes() int { return e.n }

// Influence estimates the expected number of nodes within time budget T of
// the seed set: per transmission sample, (L−1)/Σ_j min_{u∈S} r*_j(u),
// averaged over samples. An empty seed set has influence 0.
func (e *Estimator) Influence(seeds []graph.NodeID) float64 {
	if len(seeds) == 0 {
		return 0
	}
	cur := make([]float64, e.reps)
	for j := range cur {
		cur[j] = math.Inf(1)
	}
	for _, u := range seeds {
		for j, r := range e.leastLabel[u] {
			if r < cur[j] {
				cur[j] = r
			}
		}
	}
	return e.estimate(cur)
}

// estimate turns a vector of per-repetition least labels into the averaged
// neighbourhood-size estimate.
func (e *Estimator) estimate(least []float64) float64 {
	total := 0.0
	l := e.cfg.Labels
	for s := 0; s < e.cfg.Samples; s++ {
		sum := 0.0
		for lr := 0; lr < l; lr++ {
			r := least[s*l+lr]
			if math.IsInf(r, 1) {
				// No label within budget: treat the repetition as seeing
				// an empty neighbourhood by letting the term dominate.
				sum = math.Inf(1)
				break
			}
			sum += r
		}
		if !math.IsInf(sum, 1) && sum > 0 {
			total += float64(l-1) / sum
		}
	}
	return total / float64(e.cfg.Samples)
}

// TopK selects k seeds greedily: each round adds the node with the largest
// marginal estimated influence, computed in O(n·reps) from component-wise
// minima of the least-label vectors.
func (e *Estimator) TopK(k int) []graph.NodeID {
	if k > e.n {
		k = e.n
	}
	cur := make([]float64, e.reps)
	for j := range cur {
		cur[j] = math.Inf(1)
	}
	curVal := 0.0
	chosen := make([]bool, e.n)
	selected := make([]graph.NodeID, 0, k)
	cand := make([]float64, e.reps)
	for len(selected) < k {
		best := graph.NodeID(-1)
		bestVal := curVal
		for u := 0; u < e.n; u++ {
			if chosen[u] {
				continue
			}
			copy(cand, cur)
			for j, r := range e.leastLabel[u] {
				if r < cand[j] {
					cand[j] = r
				}
			}
			if v := e.estimate(cand); v > bestVal {
				bestVal = v
				best = graph.NodeID(u)
			}
		}
		if best < 0 {
			// No remaining node improves the estimate; fill with the
			// smallest unchosen IDs for determinism.
			for u := 0; u < e.n && len(selected) < k; u++ {
				if !chosen[u] {
					chosen[u] = true
					selected = append(selected, graph.NodeID(u))
				}
			}
			break
		}
		chosen[best] = true
		for j, r := range e.leastLabel[best] {
			if r < cur[j] {
				cur[j] = r
			}
		}
		curVal = bestVal
		selected = append(selected, best)
	}
	return selected
}

// TopK is the one-shot convenience: build the estimator over the weighted
// projection and select k seeds.
func TopK(ws *graph.WeightedStatic, k int, cfg Config) ([]graph.NodeID, error) {
	e, err := New(ws, cfg)
	if err != nil {
		return nil, err
	}
	return e.TopK(k), nil
}
