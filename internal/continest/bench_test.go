package continest

import (
	"math/rand"
	"testing"

	"ipin/internal/graph"
)

var benchWeighted = func() *graph.WeightedStatic {
	rng := rand.New(rand.NewSource(6))
	l := graph.New(1000)
	for i := 0; i < 10000; i++ {
		l.Add(graph.NodeID(rng.Intn(1000)), graph.NodeID(rng.Intn(1000)), graph.Time(i+1))
	}
	l.Sort()
	return graph.WeightedFrom(l)
}()

func BenchmarkBuildEstimator(b *testing.B) {
	cfg := Config{Samples: 2, Labels: 4, T: 5000, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := New(benchWeighted, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopK10(b *testing.B) {
	e, err := New(benchWeighted, Config{Samples: 2, Labels: 4, T: 5000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.TopK(10)
	}
}
