package continest

import (
	"math"
	"math/rand/v2"
	"testing"

	"ipin/internal/graph"
)

// White-box tests of the ConTinEst internals.

func TestReverseWeighted(t *testing.T) {
	l := graph.New(3)
	l.Add(0, 1, 10)
	l.Add(0, 2, 20)
	l.Add(1, 2, 30)
	l.Sort()
	ws := graph.WeightedFrom(l)
	rev := reverseWeighted(ws)
	if rev.n != 3 {
		t.Fatalf("n = %d", rev.n)
	}
	// Node 2 has two incoming edges (from 0 and 1); reversed, node 2's
	// adjacency holds both.
	deg2 := rev.start[3] - rev.start[2]
	if deg2 != 2 {
		t.Fatalf("rev degree of node 2 = %d, want 2", deg2)
	}
	// Node 0 has no incoming edges.
	if rev.start[1]-rev.start[0] != 0 {
		t.Fatalf("rev degree of node 0 = %d, want 0", rev.start[1]-rev.start[0])
	}
	// Weights survive the reversal: edge 0→1 has weight 0 (first source
	// appearance), edge 0→2 weight 10, edge 1→2 weight 0.
	for ei := rev.start[2]; ei < rev.start[3]; ei++ {
		e := rev.edges[ei]
		switch e.to {
		case 0:
			if e.mean != 10 {
				t.Errorf("edge 2←0 mean %g, want 10", e.mean)
			}
		case 1:
			if e.mean != 0 {
				t.Errorf("edge 2←1 mean %g, want 0", e.mean)
			}
		}
	}
}

func TestSampleTransmissionTimes(t *testing.T) {
	l := graph.New(3)
	l.Add(0, 1, 10)
	l.Add(0, 2, 110)
	l.Sort()
	rev := reverseWeighted(graph.WeightedFrom(l))
	rng := rand.New(rand.NewPCG(1, 2))
	sum := 0.0
	const draws = 2000
	for i := 0; i < draws; i++ {
		times := sampleTransmissionTimes(rev, rng)
		for ei, tm := range times {
			if tm < 0 {
				t.Fatal("negative transmission time")
			}
			if rev.edges[ei].mean == 0 && tm != 0 {
				t.Fatal("zero-mean edge transmitted late")
			}
			sum += tm
		}
	}
	// One edge has mean 100, the other 0: the empirical mean of the sum
	// should be ≈100 per draw.
	if avg := sum / draws; math.Abs(avg-100) > 10 {
		t.Errorf("mean sampled delay %.1f, want ≈100", avg)
	}
}

func TestLeastLabelListsInvariants(t *testing.T) {
	l := graph.New(4)
	l.Add(0, 1, 10)
	l.Add(1, 2, 20)
	l.Add(2, 3, 30)
	l.Sort()
	rev := reverseWeighted(graph.WeightedFrom(l))
	rng := rand.New(rand.NewPCG(3, 4))
	times := sampleTransmissionTimes(rev, rng)
	lists := buildLeastLabelLists(rev, times, 1e9, rng)
	for u, list := range lists {
		if len(list) == 0 {
			t.Fatalf("node %d has no least-label entries (it is within distance 0 of itself)", u)
		}
		for i := 1; i < len(list); i++ {
			if list[i].dist >= list[i-1].dist {
				t.Fatalf("node %d: distances not strictly decreasing", u)
			}
			if list[i].label <= list[i-1].label {
				t.Fatalf("node %d: labels not ascending", u)
			}
		}
	}
}

func TestEstimateHandlesUnreachableReps(t *testing.T) {
	e := &Estimator{
		n:    1,
		cfg:  Config{Samples: 2, Labels: 2, T: 1},
		reps: 4,
	}
	// Sample 0 has finite labels; sample 1 is entirely unreachable.
	least := []float64{0.5, 0.5, math.Inf(1), math.Inf(1)}
	got := e.estimate(least)
	// Sample 0 contributes (2−1)/1.0 = 1; sample 1 contributes 0;
	// averaged over 2 samples → 0.5.
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("estimate = %g, want 0.5", got)
	}
}
