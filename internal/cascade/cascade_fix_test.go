package cascade

import (
	"testing"

	"ipin/internal/graph"
)

// star returns a log where node 0 sources one interaction to each of
// 1..n-1 at ascending times, all inside one window.
func star(n int) *graph.Log {
	l := graph.New(n)
	for i := 1; i < n; i++ {
		l.Add(0, graph.NodeID(i), graph.Time(i))
	}
	l.Sort()
	return l
}

// TestRandomPerNodeStableAcrossTrials is the regression test for the
// per-trial probability resampling bug: RunTrials derives a fresh
// cfg.Seed per trial, and the RandomPerNode draw used to key off it, so
// every trial simulated a DIFFERENT network. On a star with P=1 the
// spread is 1 + Binomial(200, p₀) with p₀ node 0's drawn probability:
// with p₀ fixed across trials the standard deviation is at most
// √(200·¼) ≈ 7, while resampling p₀ ~ U[0,1) each trial pushes it to
// ≈ 200·√(1/12) ≈ 58. The threshold between them fails on the old
// behaviour for any RNG stream.
func TestRandomPerNodeStableAcrossTrials(t *testing.T) {
	l := star(201)
	cfg := Config{Omega: 1 << 30, P: 1, Seed: 5, RandomPerNode: true}
	st := RunTrials(l, []graph.NodeID{0}, cfg, 60, 4)
	if st.Stddev > 25 {
		t.Fatalf("stddev %.1f: per-node probabilities are being resampled across trials", st.Stddev)
	}
	// The spreads must still vary: the coin flips, unlike the
	// probabilities, are per-trial. (Guards against accidentally freezing
	// the whole RNG.) A degenerate p₀ near 0 or 1 could legitimately
	// produce zero variance, but seed 5 draws an interior probability.
	if st.Min == st.Max {
		t.Fatalf("all %d trials spread identically (%d); trial RNGs are not independent", st.Trials, st.Min)
	}
}

// TestProbTableIgnoresTrialSeed pins the draw's seed split: the table is
// a function of ProbSeed (falling back to Seed) and never of a derived
// trial Seed.
func TestProbTableIgnoresTrialSeed(t *testing.T) {
	base := Config{P: 0.8, Seed: 7, RandomPerNode: true}
	trial := base
	trial.Seed = base.Seed + 13
	trial.ProbSeed = base.probSeed()
	a, b := base.probTable(50), trial.probTable(50)
	for u := range a {
		if a[u] != b[u] {
			t.Fatalf("node %d: base %v, trial %v — trial seed leaked into the draw", u, a[u], b[u])
		}
	}
	other := base
	other.ProbSeed = 99
	c := other.probTable(50)
	diff := false
	for u := range a {
		if a[u] != c[u] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("distinct ProbSeed produced identical tables")
	}
	if got := base.probTable(0); len(got) != 0 {
		t.Fatalf("probTable on zero nodes: %v", got)
	}
	plain := Config{P: 0.8, Seed: 7}
	if plain.probTable(50) != nil {
		t.Fatal("probTable without RandomPerNode should be nil")
	}
}

// TestSimulateAllocsScaleWithNodes pins the probability-table fix: the
// RandomPerNode draw used to construct a fresh RNG per interaction, so
// Simulate's allocations grew with the log size. With the table drawn
// once they are a function of the node count only.
func TestSimulateAllocsScaleWithNodes(t *testing.T) {
	cfg := Config{Omega: 1 << 30, P: 0.5, Seed: 3, RandomPerNode: true}
	seeds := []graph.NodeID{0}
	small := star(64)
	big := graph.New(64)
	for i := 0; i < 4000; i++ {
		big.Add(0, graph.NodeID(1+i%63), graph.Time(i+1))
	}
	big.Sort()
	allocSmall := testing.AllocsPerRun(10, func() { Simulate(small, seeds, cfg) })
	allocBig := testing.AllocsPerRun(10, func() { Simulate(big, seeds, cfg) })
	// Same node count ⇒ same allocation budget, log size notwithstanding.
	// The old per-interaction RNG put ~2 allocations on every one of the
	// ~4000 transmission attempts.
	if allocBig > allocSmall+32 {
		t.Fatalf("allocations grew with the log: %d edges → %.0f allocs, 63 edges → %.0f",
			big.Len(), allocBig, allocSmall)
	}
}

// BenchmarkSimulateRandomPerNode tracks the per-trial cost of the
// RandomPerNode variant; allocs/op is the number to watch (O(n), not
// O(m)).
func BenchmarkSimulateRandomPerNode(b *testing.B) {
	l := star(256)
	cfg := Config{Omega: 1 << 30, P: 0.7, Seed: 11, RandomPerNode: true}
	seeds := []graph.NodeID{0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Simulate(l, seeds, cfg)
	}
}
