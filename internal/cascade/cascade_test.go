package cascade

import (
	"testing"

	"ipin/internal/graph"
)

func chain() *graph.Log {
	// 0→1@10, 1→2@12, 2→3@15, 3→4@30.
	l := graph.New(5)
	l.Add(0, 1, 10)
	l.Add(1, 2, 12)
	l.Add(2, 3, 15)
	l.Add(3, 4, 30)
	l.Sort()
	return l
}

func TestDeterministicChainP1(t *testing.T) {
	l := chain()
	// ω=10 from the seed's activation at t=10: 1@12 and 2@15 and 3@15 are
	// within [10,20]; the hop 3→4@30 exceeds the inherited window
	// (30−10 > 10), so 4 stays clean. Infected: 0,1,2,3.
	got := Simulate(l, []graph.NodeID{0}, Config{Omega: 10, P: 1, Seed: 1})
	if got != 4 {
		t.Fatalf("spread = %d, want 4", got)
	}
	// ω=25 admits the last hop too.
	got = Simulate(l, []graph.NodeID{0}, Config{Omega: 25, P: 1, Seed: 1})
	if got != 5 {
		t.Fatalf("spread = %d, want 5", got)
	}
	// ω=1: only 0→1 (12−10 > 1 stops 1→2).
	got = Simulate(l, []graph.NodeID{0}, Config{Omega: 1, P: 1, Seed: 1})
	if got != 2 {
		t.Fatalf("spread = %d, want 2", got)
	}
}

func TestWindowAnchorsAtSeedActivation(t *testing.T) {
	// Algorithm 1 inherits the infector's activation time, so the window
	// constrains the WHOLE cascade, not each hop: 0 activates at 10;
	// 1 inherits 10; the hop 1→2@25 has 25−10 = 15 > ω=12 even though the
	// hop itself is only 15 ticks after 1's infection event.
	l := graph.New(3)
	l.Add(0, 1, 10)
	l.Add(1, 2, 25)
	l.Sort()
	got := Simulate(l, []graph.NodeID{0}, Config{Omega: 12, P: 1, Seed: 1})
	if got != 2 {
		t.Fatalf("spread = %d, want 2 (window anchored at seed)", got)
	}
}

func TestSeedActivatesAtFirstInteraction(t *testing.T) {
	// The seed's LAST interaction is in range of node 2, but its window
	// starts at its FIRST interaction.
	l := graph.New(3)
	l.Add(0, 1, 5)
	l.Add(0, 2, 100)
	l.Sort()
	got := Simulate(l, []graph.NodeID{0}, Config{Omega: 10, P: 1, Seed: 1})
	if got != 2 { // 0 and 1; the interaction at 100 is outside [5,15]
		t.Fatalf("spread = %d, want 2", got)
	}
}

func TestLaterInfectorRefreshesWindow(t *testing.T) {
	// Node 2 is first infected through seed 0 (activation 1). Seed 3
	// activates later (t=50) and re-infects 2, refreshing its inherited
	// activation to 50, which re-opens the window for the hop 2→4@55.
	l := graph.New(5)
	l.Add(0, 2, 1)
	l.Add(3, 2, 50)
	l.Add(2, 4, 55)
	l.Sort()
	cfg := Config{Omega: 10, P: 1, Seed: 1}
	if got := Simulate(l, []graph.NodeID{0, 3}, cfg); got != 4 {
		t.Fatalf("spread = %d, want 4 (refreshed window)", got)
	}
	// Without seed 3 the hop 2→4@55 is far outside [1,11].
	if got := Simulate(l, []graph.NodeID{0}, cfg); got != 2 {
		t.Fatalf("spread = %d, want 2", got)
	}
}

func TestSeedWithoutInteractionsNeverActivates(t *testing.T) {
	l := chain()
	// Node 4 never appears as a source.
	got := Simulate(l, []graph.NodeID{4}, Config{Omega: 100, P: 1, Seed: 1})
	if got != 0 {
		t.Fatalf("spread = %d, want 0", got)
	}
}

func TestProbabilityZeroInfectsOnlySeeds(t *testing.T) {
	l := chain()
	got := Simulate(l, []graph.NodeID{0}, Config{Omega: 100, P: 0, Seed: 1})
	if got != 1 {
		t.Fatalf("spread = %d, want 1 (just the seed)", got)
	}
}

func TestSelfLoopDoesNotSpread(t *testing.T) {
	l := graph.New(2)
	l.Add(0, 0, 1)
	l.Add(0, 1, 2)
	l.Sort()
	got := Simulate(l, []graph.NodeID{0}, Config{Omega: 10, P: 1, Seed: 1})
	if got != 2 {
		t.Fatalf("spread = %d, want 2", got)
	}
}

func TestPerNodeProbabilities(t *testing.T) {
	l := chain()
	// Node 1 never transmits; the chain stops there even at P=1.
	cfg := Config{Omega: 100, P: 1, Seed: 1, PerNodeP: map[graph.NodeID]float64{1: 0}}
	got := Simulate(l, []graph.NodeID{0}, cfg)
	if got != 2 {
		t.Fatalf("spread = %d, want 2 (node 1 blocked)", got)
	}
}

func TestSimulateDeterministicPerSeed(t *testing.T) {
	l := chain()
	cfg := Config{Omega: 100, P: 0.5, Seed: 42}
	a := Simulate(l, []graph.NodeID{0}, cfg)
	b := Simulate(l, []graph.NodeID{0}, cfg)
	if a != b {
		t.Fatalf("same RNG seed produced %d and %d", a, b)
	}
}

func TestAverageSpread(t *testing.T) {
	l := chain()
	cfg := Config{Omega: 100, P: 1, Seed: 1}
	// Deterministic at P=1: every trial spreads to all 5 nodes.
	if got := AverageSpread(l, []graph.NodeID{0}, cfg, 8, 4); got != 5 {
		t.Fatalf("average = %.2f, want 5", got)
	}
	// Result is independent of the parallelism level (per-trial seeds).
	cfg.P = 0.5
	s1 := AverageSpread(l, []graph.NodeID{0}, cfg, 64, 1)
	s8 := AverageSpread(l, []graph.NodeID{0}, cfg, 64, 8)
	if s1 != s8 {
		t.Fatalf("parallelism changed the result: %.3f vs %.3f", s1, s8)
	}
	// P=0.5 average sits strictly between the extremes.
	if s1 < 1 || s1 > 5 {
		t.Fatalf("average %.3f out of range", s1)
	}
	if got := AverageSpread(l, []graph.NodeID{0}, cfg, 0, 4); got != 0 {
		t.Fatalf("zero trials → %.2f, want 0", got)
	}
}

func TestLiteralSeedRefresh(t *testing.T) {
	// Seed 0 interacts at t=5 and t=100; with the default semantics its
	// window is anchored at 5, so the t=100 interaction is dead. With the
	// literal Algorithm 1 refresh the second interaction re-opens it.
	l := graph.New(3)
	l.Add(0, 1, 5)
	l.Add(0, 2, 100)
	l.Sort()
	base := Config{Omega: 10, P: 1, Seed: 1}
	if got := Simulate(l, []graph.NodeID{0}, base); got != 2 {
		t.Fatalf("default semantics spread = %d, want 2", got)
	}
	literal := base
	literal.LiteralSeedRefresh = true
	if got := Simulate(l, []graph.NodeID{0}, literal); got != 3 {
		t.Fatalf("literal semantics spread = %d, want 3", got)
	}
}

func TestRandomPerNode(t *testing.T) {
	l := chain()
	cfg := Config{Omega: 100, P: 1, Seed: 9, RandomPerNode: true}
	// Deterministic for a fixed seed.
	a := Simulate(l, []graph.NodeID{0}, cfg)
	b := Simulate(l, []graph.NodeID{0}, cfg)
	if a != b {
		t.Fatalf("RandomPerNode not reproducible: %d vs %d", a, b)
	}
	// With P=0 the uniform draw is in [0,0): nothing spreads.
	cfg.P = 0
	if got := Simulate(l, []graph.NodeID{0}, cfg); got != 1 {
		t.Fatalf("spread = %d with zero ceiling", got)
	}
	// Explicit PerNodeP still wins over the random draw.
	cfg.P = 1
	cfg.PerNodeP = map[graph.NodeID]float64{0: 0}
	if got := Simulate(l, []graph.NodeID{0}, cfg); got != 1 {
		t.Fatalf("PerNodeP override failed: spread %d", got)
	}
}

func TestRunTrialsStats(t *testing.T) {
	l := chain()
	// Deterministic at P=1: stddev must be zero, min == max == 5.
	st := RunTrials(l, []graph.NodeID{0}, Config{Omega: 100, P: 1, Seed: 1}, 16, 4)
	if st.Mean != 5 || st.Stddev != 0 || st.Min != 5 || st.Max != 5 || st.Trials != 16 {
		t.Fatalf("deterministic stats: %+v", st)
	}
	// Stochastic at P=0.5: spread varies, bounds are consistent.
	st = RunTrials(l, []graph.NodeID{0}, Config{Omega: 100, P: 0.5, Seed: 1}, 64, 4)
	if st.Min > st.Max || st.Mean < float64(st.Min) || st.Mean > float64(st.Max) {
		t.Fatalf("inconsistent stats: %+v", st)
	}
	if st.Stddev <= 0 {
		t.Fatalf("stochastic run has zero variance: %+v", st)
	}
	// Zero trials.
	if st := RunTrials(l, []graph.NodeID{0}, Config{Omega: 1, P: 1}, 0, 1); st.Trials != 0 {
		t.Fatalf("zero-trial stats: %+v", st)
	}
}
