package cascade

import (
	"sync/atomic"

	"ipin/internal/obs"
)

// metrics are the package's telemetry instruments; nil fields (the
// default) make every record site a no-op. Simulate runs on many
// goroutines under RunTrials, so the instruments' atomic hot path is the
// only synchronization needed.
type metrics struct {
	trials        *obs.Counter
	activations   *obs.Counter
	transmissions *obs.Counter
}

var (
	installed atomic.Pointer[metrics]
	noop      = new(metrics)
)

// m returns the active metrics set, never nil.
func m() *metrics {
	if p := installed.Load(); p != nil {
		return p
	}
	return noop
}

// InstallMetrics registers this package's instruments in reg and starts
// recording into them; nil uninstalls.
func InstallMetrics(reg *obs.Registry) {
	if reg == nil {
		installed.Store(nil)
		return
	}
	installed.Store(&metrics{
		trials:        reg.Counter("ipin_cascade_trials_total", "TCIC simulation runs."),
		activations:   reg.Counter("ipin_cascade_activations_total", "Nodes activated across all TCIC simulation runs."),
		transmissions: reg.Counter("ipin_cascade_transmissions_total", "Successful infection transmissions along interactions."),
	})
}
