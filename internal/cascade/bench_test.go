package cascade

import (
	"math/rand"
	"testing"

	"ipin/internal/graph"
)

var benchLog = func() *graph.Log {
	rng := rand.New(rand.NewSource(2))
	l := graph.New(2000)
	for i := 0; i < 20000; i++ {
		l.Add(graph.NodeID(rng.Intn(2000)), graph.NodeID(rng.Intn(2000)), graph.Time(i+1))
	}
	l.Sort()
	return l
}()

func BenchmarkSimulate(b *testing.B) {
	seeds := []graph.NodeID{0, 1, 2, 3, 4}
	cfg := Config{Omega: 2000, P: 0.5, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		_ = Simulate(benchLog, seeds, cfg)
	}
}

func BenchmarkAverageSpreadParallel(b *testing.B) {
	seeds := []graph.NodeID{0, 1, 2, 3, 4}
	cfg := Config{Omega: 2000, P: 0.5, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AverageSpread(benchLog, seeds, cfg, 16, 0)
	}
}
