// Package cascade implements the Time-Constrained Information Cascade
// (TCIC) model the paper introduces in §2 (Algorithm 1) as the evaluation
// model for seed quality on interaction networks.
//
// TCIC adapts the Independent Cascade model to interaction data: a seed
// node becomes infected at its first interaction in the network; an
// infected node spreads the infection along each of its subsequent
// interactions with a fixed probability p, but only while the interaction
// falls within ω ticks of the node's activation time. A newly infected
// node inherits the later of its own and its infector's activation time,
// so the window constrains the whole cascade from its start, mirroring the
// bounded duration of information channels.
//
// Simulate follows Algorithm 1 literally (including the activation-time
// inheritance rule); AverageSpread repeats it over independent trials, in
// parallel, and reports the mean spread.
package cascade

import (
	"math"
	"math/rand/v2"
	"runtime"
	"sync"

	"ipin/internal/graph"
)

// Config parameterizes a TCIC simulation.
type Config struct {
	// Omega is the spread window in ticks: an infected node u spreads via
	// interaction (u,v,t) only while t − activateTime(u) ≤ Omega.
	Omega int64
	// P is the infection probability applied per interaction. Ignored for
	// a node that has an entry in PerNodeP.
	P float64
	// PerNodeP optionally overrides P for individual source nodes,
	// realizing the paper's remark that "node specific probabilities …
	// could easily be used as well". May be nil.
	PerNodeP map[graph.NodeID]float64
	// RandomPerNode draws every node's transmission probability uniformly
	// from [0, P) instead of using P directly — the paper's "random
	// probabilities" variant. The draw is a pure function of ProbSeed
	// (falling back to Seed) and the node ID, so trials stay reproducible.
	// PerNodeP entries still win.
	RandomPerNode bool
	// LiteralSeedRefresh follows the paper's Algorithm 1 pseudocode to
	// the letter: a seed's activation time is reset at EVERY interaction
	// it sources, keeping seeds perpetually fresh spreaders. The default
	// (false) follows the paper's prose — "we start by infecting the seed
	// nodes at their first interaction" — which anchors each seed's
	// window once. See DESIGN.md for the discrepancy note.
	LiteralSeedRefresh bool
	// Seed seeds the deterministic RNG.
	Seed uint64
	// ProbSeed, when nonzero, seeds the RandomPerNode probability draw
	// independently of Seed. The model's "random probabilities" are a
	// property of the NETWORK, not of an individual trial, so repeated
	// trials must flip fresh coins against the same per-node
	// probabilities. RunTrials pins ProbSeed to the base Seed before
	// deriving per-trial Seeds; zero means "follow Seed".
	ProbSeed uint64
}

// probSeed returns the seed of the RandomPerNode probability draw.
func (cfg Config) probSeed() uint64 {
	if cfg.ProbSeed != 0 {
		return cfg.ProbSeed
	}
	return cfg.Seed
}

// probTable draws the per-node transmission probabilities once, or
// returns nil when prob lookups need no RNG. One small RNG per node at
// simulation start replaces the per-interaction construction that used to
// dominate RandomPerNode runs (and the table is what keeps Simulate's
// allocations O(n) instead of O(m); TestSimulateAllocsScaleWithNodes
// pins that).
func (cfg Config) probTable(n int) []float64 {
	if !cfg.RandomPerNode {
		return nil
	}
	probs := make([]float64, n)
	base := cfg.probSeed()
	for u := range probs {
		// The (seed, node) PCG stream reproduces the historical draw
		// bit-for-bit; results for a fixed seed are unchanged.
		probs[u] = rand.New(rand.NewPCG(base, uint64(u)|1<<32)).Float64() * cfg.P
	}
	return probs
}

// Simulate runs one TCIC trial over the sorted log and returns the number
// of infected (active) nodes at the end, exactly as Algorithm 1 counts it.
// Seed nodes that never appear as an interaction source never activate and
// contribute nothing, again matching the model.
func Simulate(l *graph.Log, seeds []graph.NodeID, cfg Config) int {
	return simulate(l, seeds, cfg, cfg.probTable(l.NumNodes))
}

// simulate is Simulate with the probability table supplied by the caller,
// so RunTrials can draw it once from the base configuration and share it
// across every trial.
func simulate(l *graph.Log, seeds []graph.NodeID, cfg Config, probs []float64) int {
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x1c1c))
	active := make([]bool, l.NumNodes)
	// activateTime; only meaningful where active is true.
	act := make([]graph.Time, l.NumNodes)
	isSeed := make([]bool, l.NumNodes)
	for _, u := range seeds {
		isSeed[u] = true
	}
	prob := func(u graph.NodeID) float64 {
		if cfg.PerNodeP != nil {
			if p, ok := cfg.PerNodeP[u]; ok {
				return p
			}
		}
		if probs != nil {
			return probs[u]
		}
		return cfg.P
	}
	count := 0
	transmissions := 0
	for _, e := range l.Interactions {
		if isSeed[e.Src] && !active[e.Src] {
			// "We start by infecting the seed nodes at their first
			// interaction in the network."
			active[e.Src] = true
			act[e.Src] = e.At
			count++
		} else if isSeed[e.Src] && cfg.LiteralSeedRefresh {
			// Algorithm 1 as printed re-assigns the activation time on
			// every interaction a seed sources.
			act[e.Src] = e.At
		}
		if !active[e.Src] || int64(e.At-act[e.Src]) > cfg.Omega {
			continue
		}
		if e.Src == e.Dst {
			continue
		}
		p := prob(e.Src)
		if p < 1.0 && rng.Float64() >= p {
			continue
		}
		transmissions++
		if !active[e.Dst] {
			active[e.Dst] = true
			act[e.Dst] = act[e.Src]
			count++
		} else if act[e.Src] > act[e.Dst] {
			// Algorithm 1's inheritance rule: the infected node adopts the
			// later activation time, extending its remaining window.
			act[e.Dst] = act[e.Src]
		}
	}
	// One flush per trial keeps the parallel trial loop free of per-edge
	// atomics; the instruments are themselves atomic across goroutines.
	mx := m()
	mx.trials.Inc()
	mx.activations.Add(int64(count))
	mx.transmissions.Add(int64(transmissions))
	return count
}

// SpreadStats summarizes repeated TCIC trials.
type SpreadStats struct {
	Mean   float64
	Stddev float64
	Min    int
	Max    int
	Trials int
}

// RunTrials runs trials independent TCIC simulations (with seeds
// cfg.Seed, cfg.Seed+1, …) and returns spread statistics. Trials fan out
// over parallelism goroutines; parallelism ≤ 0 selects GOMAXPROCS. The
// result is independent of the parallelism level because every trial's
// RNG seed is fixed by its index. The RandomPerNode probability draw is
// pinned to the base configuration's probSeed, NOT the per-trial seed:
// trials vary only the cascade coin flips, never the network's
// transmission probabilities.
func RunTrials(l *graph.Log, seeds []graph.NodeID, cfg Config, trials, parallelism int) SpreadStats {
	if trials <= 0 {
		return SpreadStats{}
	}
	// Drawn once from the base configuration: per-trial Seeds must never
	// resample the network's transmission probabilities.
	probs := cfg.probTable(l.NumNodes)
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > trials {
		parallelism = trials
	}
	results := make([]int, trials)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				c := cfg
				c.Seed = cfg.Seed + uint64(i)
				results[i] = simulate(l, seeds, c, probs)
			}
		}()
	}
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	st := SpreadStats{Trials: trials, Min: results[0], Max: results[0]}
	sum := 0
	for _, r := range results {
		sum += r
		if r < st.Min {
			st.Min = r
		}
		if r > st.Max {
			st.Max = r
		}
	}
	st.Mean = float64(sum) / float64(trials)
	if trials > 1 {
		var ss float64
		for _, r := range results {
			d := float64(r) - st.Mean
			ss += d * d
		}
		st.Stddev = math.Sqrt(ss / float64(trials))
	}
	return st
}

// AverageSpread is RunTrials reduced to the mean spread.
func AverageSpread(l *graph.Log, seeds []graph.NodeID, cfg Config, trials, parallelism int) float64 {
	return RunTrials(l, seeds, cfg, trials, parallelism).Mean
}
