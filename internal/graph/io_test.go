package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadLogBasic(t *testing.T) {
	in := `
# comment line
alice bob 30
bob carol 10

carol alice 20
`
	l, tab, err := ReadLog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if l.NumNodes != 3 || l.Len() != 3 {
		t.Fatalf("got %d nodes / %d interactions, want 3/3", l.NumNodes, l.Len())
	}
	if !l.Sorted() {
		t.Fatal("ReadLog did not sort")
	}
	// First interaction is the earliest: bob→carol at 10.
	first := l.Interactions[0]
	if tab.Name(first.Src) != "bob" || tab.Name(first.Dst) != "carol" || first.At != 10 {
		t.Fatalf("first interaction = %s→%s@%d", tab.Name(first.Src), tab.Name(first.Dst), first.At)
	}
}

func TestReadLogErrors(t *testing.T) {
	if _, _, err := ReadLog(strings.NewReader("a b\n")); err == nil {
		t.Error("missing field not caught")
	}
	if _, _, err := ReadLog(strings.NewReader("a b xyz\n")); err == nil {
		t.Error("bad timestamp not caught")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	l := New(4)
	l.Add(0, 1, 100)
	l.Add(1, 2, 200)
	l.Add(2, 3, 300)
	l.Add(3, 0, 400)
	l.Sort()

	var buf bytes.Buffer
	if err := WriteLog(&buf, l, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != l.Len() || got.NumNodes != l.NumNodes {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d", got.Len(), got.NumNodes, l.Len(), l.NumNodes)
	}
	for i := range l.Interactions {
		if got.Interactions[i].At != l.Interactions[i].At {
			t.Fatalf("interaction %d time %d, want %d", i, got.Interactions[i].At, l.Interactions[i].At)
		}
	}
}

func TestWriteLogWithTable(t *testing.T) {
	tab := NewNodeTable()
	a, b := tab.Intern("a@x.org"), tab.Intern("b@x.org")
	l := New(2)
	l.Add(a, b, 7)
	var buf bytes.Buffer
	if err := WriteLog(&buf, l, tab); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "a@x.org b@x.org 7\n"; got != want {
		t.Fatalf("wrote %q, want %q", got, want)
	}
}

func TestReadCSVLog(t *testing.T) {
	in := "u1,u2,500\nu2,u3,100\n# trailer\n"
	l, tab, err := ReadCSVLog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 || tab.Len() != 3 {
		t.Fatalf("got %d interactions / %d nodes", l.Len(), tab.Len())
	}
	if l.Interactions[0].At != 100 {
		t.Fatalf("first time %d, want 100", l.Interactions[0].At)
	}
	if _, _, err := ReadCSVLog(strings.NewReader("a,b\n")); err == nil {
		t.Error("short CSV line not caught")
	}
	if _, _, err := ReadCSVLog(strings.NewReader("a,b,zzz\n")); err == nil {
		t.Error("bad CSV timestamp not caught")
	}
}
