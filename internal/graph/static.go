package graph

import "sort"

// Static is the flattened, deduplicated static projection of an interaction
// network: the directed graph whose edge set is {(u,v) | ∃t: (u,v,t) ∈ E}.
// This is the input the paper feeds its static-graph competitors — SKIM,
// PageRank, HighDegree (§6: "we convert the interaction network data into
// the required static graph format by removing repeated interactions and
// the time stamp of every interaction").
type Static struct {
	NumNodes int
	// Out[u] lists the distinct out-neighbours of u in ascending order.
	Out [][]NodeID
}

// StaticFrom flattens a log into its static projection. Self-loops are
// dropped: they carry no influence. Runs in O(m log m).
func StaticFrom(l *Log) *Static {
	s := &Static{NumNodes: l.NumNodes, Out: make([][]NodeID, l.NumNodes)}
	for _, e := range l.Interactions {
		if e.Src == e.Dst {
			continue
		}
		s.Out[e.Src] = append(s.Out[e.Src], e.Dst)
	}
	for u := range s.Out {
		s.Out[u] = dedupSorted(s.Out[u])
	}
	return s
}

// dedupSorted sorts ids and removes duplicates in place.
func dedupSorted(ids []NodeID) []NodeID {
	if len(ids) < 2 {
		return ids
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w := 1
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1] {
			ids[w] = ids[i]
			w++
		}
	}
	return ids[:w]
}

// NumEdges returns the number of distinct directed edges.
func (s *Static) NumEdges() int {
	n := 0
	for _, adj := range s.Out {
		n += len(adj)
	}
	return n
}

// OutDegree returns the number of distinct out-neighbours of u.
func (s *Static) OutDegree(u NodeID) int { return len(s.Out[u]) }

// Reversed returns the transpose graph (every edge direction flipped). The
// paper reverses edges before running PageRank so that incoming importance
// measures outgoing influence (§6).
func (s *Static) Reversed() *Static {
	r := &Static{NumNodes: s.NumNodes, Out: make([][]NodeID, s.NumNodes)}
	for u, adj := range s.Out {
		for _, v := range adj {
			r.Out[v] = append(r.Out[v], NodeID(u))
		}
	}
	for v := range r.Out {
		// Already duplicate-free because s was; only order is needed.
		sort.Slice(r.Out[v], func(i, j int) bool { return r.Out[v][i] < r.Out[v][j] })
	}
	return r
}

// WeightedEdge is a directed edge carrying a non-negative delay weight.
type WeightedEdge struct {
	Dst    NodeID
	Weight float64
}

// WeightedStatic is the weighted static projection consumed by the
// ConTinEst baseline. Edge weights are propagation delays.
type WeightedStatic struct {
	NumNodes int
	Out      [][]WeightedEdge
}

// WeightedFrom builds the transform the paper describes for ConTinEst (§6):
// the first time a node u appears as the source of an interaction fixes u's
// infection time u_i; each interaction (u,v,t) then becomes a weighted edge
// (u,v) with weight t − u_i. Duplicate (u,v) edges keep the minimum weight
// (the fastest observed transmission). Self-loops are dropped. Weights of
// zero are kept as zero; consumers that need a positive rate clamp.
func WeightedFrom(l *Log) *WeightedStatic {
	first := make([]Time, l.NumNodes)
	seen := make([]bool, l.NumNodes)
	type key struct{ u, v NodeID }
	best := make(map[key]float64)
	for _, e := range l.Interactions {
		if !seen[e.Src] {
			seen[e.Src] = true
			first[e.Src] = e.At
		}
		if e.Src == e.Dst {
			continue
		}
		w := float64(e.At - first[e.Src])
		k := key{e.Src, e.Dst}
		if old, ok := best[k]; !ok || w < old {
			best[k] = w
		}
	}
	ws := &WeightedStatic{NumNodes: l.NumNodes, Out: make([][]WeightedEdge, l.NumNodes)}
	for k, w := range best {
		ws.Out[k.u] = append(ws.Out[k.u], WeightedEdge{Dst: k.v, Weight: w})
	}
	for u := range ws.Out {
		adj := ws.Out[u]
		sort.Slice(adj, func(i, j int) bool { return adj[i].Dst < adj[j].Dst })
	}
	return ws
}

// NumEdges returns the number of distinct weighted edges.
func (s *WeightedStatic) NumEdges() int {
	n := 0
	for _, adj := range s.Out {
		n += len(adj)
	}
	return n
}
