package graph

import (
	"testing"
	"testing/quick"
)

// fig1a builds the toy interaction network of the paper's Figure 1a:
// nodes a..f (0..5) and edges (a,d,1),(e,f,2),(d,e,3),(e,b,4),(a,b,5),
// (b,e,6),(e,c,7),(b,c,8).
func fig1a() *Log {
	l := New(6)
	const a, b, c, d, e, f = 0, 1, 2, 3, 4, 5
	l.Add(a, d, 1)
	l.Add(e, f, 2)
	l.Add(d, e, 3)
	l.Add(e, b, 4)
	l.Add(a, b, 5)
	l.Add(b, e, 6)
	l.Add(e, c, 7)
	l.Add(b, c, 8)
	return l
}

func TestLogSortAndValidate(t *testing.T) {
	l := New(3)
	l.Add(0, 1, 30)
	l.Add(1, 2, 10)
	l.Add(2, 0, 20)
	if l.Sorted() {
		t.Fatal("log unexpectedly sorted before Sort")
	}
	l.Sort()
	if !l.Sorted() {
		t.Fatal("log not sorted after Sort")
	}
	if err := l.Validate(true); err != nil {
		t.Fatalf("Validate(strict): %v", err)
	}
	want := []Time{10, 20, 30}
	for i, e := range l.Interactions {
		if e.At != want[i] {
			t.Errorf("interaction %d at %d, want %d", i, e.At, want[i])
		}
	}
}

func TestLogAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	New(2).Add(0, 2, 1)
}

func TestHasDistinctTimesAndDetie(t *testing.T) {
	l := New(3)
	l.Add(0, 1, 5)
	l.Add(1, 2, 5)
	l.Add(2, 0, 5)
	l.Add(0, 2, 9)
	l.Sort()
	if l.HasDistinctTimes() {
		t.Fatal("expected duplicate timestamps")
	}
	if got := l.Detie(); got != 2 {
		t.Fatalf("Detie adjusted %d, want 2", got)
	}
	if !l.HasDistinctTimes() {
		t.Fatal("timestamps still tied after Detie")
	}
	if !l.Sorted() {
		t.Fatal("Detie broke sort order")
	}
	if err := l.Validate(true); err != nil {
		t.Fatalf("Validate after Detie: %v", err)
	}
}

func TestSpanAndWindowFromPercent(t *testing.T) {
	l := fig1a()
	l.Sort()
	first, last, span := l.Span()
	if first != 1 || last != 8 || span != 8 {
		t.Fatalf("Span = (%d,%d,%d), want (1,8,8)", first, last, span)
	}
	if w := l.WindowFromPercent(50); w != 4 {
		t.Errorf("WindowFromPercent(50) = %d, want 4", w)
	}
	if w := l.WindowFromPercent(100); w != 8 {
		t.Errorf("WindowFromPercent(100) = %d, want 8", w)
	}
	// Tiny percentages still yield a usable window of at least 1.
	if w := l.WindowFromPercent(0.001); w != 1 {
		t.Errorf("WindowFromPercent(0.001) = %d, want 1", w)
	}
}

func TestSpanEmpty(t *testing.T) {
	var l *Log
	if _, _, span := l.Span(); span != 0 {
		t.Fatalf("nil log span = %d, want 0", span)
	}
	if _, _, span := New(3).Span(); span != 0 {
		t.Fatalf("empty log span = %d, want 0", span)
	}
}

func TestValidateErrors(t *testing.T) {
	l := &Log{NumNodes: 2, Interactions: []Interaction{{Src: 0, Dst: 5, At: 1}}}
	if err := l.Validate(false); err == nil {
		t.Error("out-of-range endpoint not caught")
	}
	l = &Log{NumNodes: 2, Interactions: []Interaction{{Src: 0, Dst: 1, At: 5}, {Src: 1, Dst: 0, At: 4}}}
	if err := l.Validate(false); err == nil {
		t.Error("descending timestamps not caught")
	}
	l = &Log{NumNodes: 2, Interactions: []Interaction{{Src: 1, Dst: 1, At: 4}}}
	if err := l.Validate(true); err == nil {
		t.Error("self-loop not caught in strict mode")
	}
	if err := l.Validate(false); err != nil {
		t.Errorf("self-loop rejected in non-strict mode: %v", err)
	}
}

func TestReversed(t *testing.T) {
	l := fig1a()
	l.Sort()
	r := l.Reversed()
	if len(r) != l.Len() {
		t.Fatalf("Reversed length %d, want %d", len(r), l.Len())
	}
	for i := range r {
		if r[i] != l.Interactions[l.Len()-1-i] {
			t.Fatalf("Reversed[%d] = %+v mismatch", i, r[i])
		}
	}
	// The source log is untouched.
	if !l.Sorted() {
		t.Fatal("Reversed mutated the log")
	}
}

func TestClone(t *testing.T) {
	l := fig1a()
	c := l.Clone()
	c.Interactions[0].At = 999
	if l.Interactions[0].At == 999 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestTimeSlice(t *testing.T) {
	l := fig1a()
	l.Sort()
	mid := l.TimeSlice(3, 6)
	if mid.Len() != 4 {
		t.Fatalf("slice [3,6] has %d interactions, want 4", mid.Len())
	}
	for _, e := range mid.Interactions {
		if e.At < 3 || e.At > 6 {
			t.Fatalf("interaction at %d outside slice", e.At)
		}
	}
	if mid.NumNodes != l.NumNodes {
		t.Fatal("slice changed node universe")
	}
	// Empty and full slices.
	if l.TimeSlice(100, 200).Len() != 0 {
		t.Fatal("out-of-range slice not empty")
	}
	if l.TimeSlice(1, 8).Len() != l.Len() {
		t.Fatal("full slice lost interactions")
	}
	// No storage sharing.
	mid.Interactions[0].At = 999
	if !l.Sorted() {
		t.Fatal("slice mutated the source log")
	}
}

func TestNodeTable(t *testing.T) {
	tab := NewNodeTable()
	a := tab.Intern("alice")
	b := tab.Intern("bob")
	if a == b {
		t.Fatal("distinct names share an ID")
	}
	if got := tab.Intern("alice"); got != a {
		t.Fatalf("re-intern alice = %d, want %d", got, a)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if tab.Name(a) != "alice" || tab.Name(b) != "bob" {
		t.Fatal("Name round-trip failed")
	}
	if _, ok := tab.Lookup("carol"); ok {
		t.Fatal("Lookup invented carol")
	}
	if id, ok := tab.Lookup("bob"); !ok || id != b {
		t.Fatal("Lookup lost bob")
	}
}

func TestNodeTableNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Name on unknown ID did not panic")
		}
	}()
	NewNodeTable().Name(0)
}

// TestSortIsDeterministicUnderTies checks the documented tie-break order.
func TestSortIsDeterministicUnderTies(t *testing.T) {
	mk := func(perm []int) *Log {
		base := []Interaction{
			{Src: 2, Dst: 0, At: 7},
			{Src: 0, Dst: 1, At: 7},
			{Src: 0, Dst: 2, At: 7},
			{Src: 1, Dst: 2, At: 3},
		}
		l := New(3)
		for _, i := range perm {
			l.Interactions = append(l.Interactions, base[i])
		}
		l.Sort()
		return l
	}
	want := mk([]int{0, 1, 2, 3})
	for _, perm := range [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}} {
		got := mk(perm)
		for i := range want.Interactions {
			if got.Interactions[i] != want.Interactions[i] {
				t.Fatalf("perm %v: interaction %d = %+v, want %+v", perm, i, got.Interactions[i], want.Interactions[i])
			}
		}
	}
}

// Property: Detie never reorders interactions and always yields strictly
// increasing timestamps.
func TestDetieProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		l := New(4)
		for i, r := range raw {
			l.Add(NodeID(i%4), NodeID((i+1)%4), Time(r%16))
		}
		l.Sort()
		before := make([]Interaction, len(l.Interactions))
		copy(before, l.Interactions)
		l.Detie()
		if !l.HasDistinctTimes() || !l.Sorted() {
			return false
		}
		// Endpoints preserved in order.
		for i := range before {
			if before[i].Src != l.Interactions[i].Src || before[i].Dst != l.Interactions[i].Dst {
				return false
			}
			if l.Interactions[i].At < before[i].At {
				return false // Detie only moves time forwards
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
