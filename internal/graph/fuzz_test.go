package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadLog: arbitrary text either fails cleanly or yields a log whose
// invariants hold and which round-trips through WriteLog.
func FuzzReadLog(f *testing.F) {
	f.Add("a b 1\nb c 2\n")
	f.Add("# comment\n\nx y 100\n")
	f.Add("a b\n")
	f.Add("a b notanumber\n")
	f.Add("self self 5\n")
	f.Add("a b -9223372036854775808\n")
	f.Fuzz(func(t *testing.T, input string) {
		l, table, err := ReadLog(strings.NewReader(input))
		if err != nil {
			return
		}
		if !l.Sorted() {
			t.Fatal("parsed log not sorted")
		}
		if err := l.Validate(false); err != nil {
			t.Fatalf("parsed log invalid: %v", err)
		}
		if table.Len() != l.NumNodes {
			t.Fatalf("table has %d names for %d nodes", table.Len(), l.NumNodes)
		}
		var buf bytes.Buffer
		if err := WriteLog(&buf, l, table); err != nil {
			t.Fatalf("write-back: %v", err)
		}
		l2, _, err := ReadLog(&buf)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if l2.Len() != l.Len() {
			t.Fatalf("round trip lost interactions: %d vs %d", l2.Len(), l.Len())
		}
	})
}

// FuzzReadCSVLog mirrors FuzzReadLog for the CSV variant.
func FuzzReadCSVLog(f *testing.F) {
	f.Add("a,b,1\nb,c,2\n")
	f.Add("a,b\n")
	f.Add(",,,\n")
	f.Fuzz(func(t *testing.T, input string) {
		l, _, err := ReadCSVLog(strings.NewReader(input))
		if err != nil {
			return
		}
		if !l.Sorted() {
			t.Fatal("parsed log not sorted")
		}
		if err := l.Validate(false); err != nil {
			t.Fatalf("parsed log invalid: %v", err)
		}
	})
}
