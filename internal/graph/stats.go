package graph

import "sort"

// Stats summarizes the structural shape of an interaction network — the
// quantities the synthetic generators are tuned to reproduce and the
// numbers gennet reports so a generated dataset can be eyeballed against
// its real counterpart.
type Stats struct {
	Nodes        int
	Interactions int
	// ActiveSources and ActiveSinks count nodes appearing at least once
	// as a source / destination.
	ActiveSources int
	ActiveSinks   int
	// StaticEdges is the number of distinct directed (src, dst) pairs.
	StaticEdges int
	// MaxOutActivity is the largest number of interactions sent by one
	// node; MedianOutActivity the median over active sources.
	MaxOutActivity    int
	MedianOutActivity int
	// MaxOutDegree is the largest number of distinct out-neighbours.
	MaxOutDegree int
	// RepetitionRatio is interactions per distinct edge (≥ 1); email and
	// social networks repeat edges heavily, cascades barely.
	RepetitionRatio float64
	// SpanTicks is last − first + 1.
	SpanTicks int64
}

// ComputeStats scans the log once (plus a static projection).
func ComputeStats(l *Log) Stats {
	s := Stats{Nodes: l.NumNodes, Interactions: l.Len()}
	_, _, s.SpanTicks = l.Span()
	outActivity := make([]int, l.NumNodes)
	isSink := make([]bool, l.NumNodes)
	for _, e := range l.Interactions {
		outActivity[e.Src]++
		isSink[e.Dst] = true
	}
	var active []int
	for _, c := range outActivity {
		if c > 0 {
			s.ActiveSources++
			active = append(active, c)
			if c > s.MaxOutActivity {
				s.MaxOutActivity = c
			}
		}
	}
	for _, b := range isSink {
		if b {
			s.ActiveSinks++
		}
	}
	if len(active) > 0 {
		sort.Ints(active)
		s.MedianOutActivity = active[len(active)/2]
	}
	st := StaticFrom(l)
	s.StaticEdges = st.NumEdges()
	for u := 0; u < st.NumNodes; u++ {
		if d := st.OutDegree(NodeID(u)); d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
	}
	if s.StaticEdges > 0 {
		s.RepetitionRatio = float64(s.Interactions) / float64(s.StaticEdges)
	}
	return s
}
