package graph

import "testing"

func TestComputeStats(t *testing.T) {
	l := New(5)
	l.Add(0, 1, 10)
	l.Add(0, 1, 20) // repeated edge
	l.Add(0, 2, 30)
	l.Add(1, 2, 40)
	l.Sort()
	s := ComputeStats(l)
	if s.Nodes != 5 || s.Interactions != 4 {
		t.Fatalf("counts: %+v", s)
	}
	if s.ActiveSources != 2 {
		t.Errorf("ActiveSources = %d, want 2", s.ActiveSources)
	}
	if s.ActiveSinks != 2 {
		t.Errorf("ActiveSinks = %d, want 2", s.ActiveSinks)
	}
	if s.StaticEdges != 3 {
		t.Errorf("StaticEdges = %d, want 3", s.StaticEdges)
	}
	if s.MaxOutActivity != 3 {
		t.Errorf("MaxOutActivity = %d, want 3", s.MaxOutActivity)
	}
	if s.MedianOutActivity != 3 { // activities sorted: [1,3] → median idx 1
		t.Errorf("MedianOutActivity = %d, want 3", s.MedianOutActivity)
	}
	if s.MaxOutDegree != 2 {
		t.Errorf("MaxOutDegree = %d, want 2", s.MaxOutDegree)
	}
	if s.RepetitionRatio != 4.0/3 {
		t.Errorf("RepetitionRatio = %g", s.RepetitionRatio)
	}
	if s.SpanTicks != 31 {
		t.Errorf("SpanTicks = %d, want 31", s.SpanTicks)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(New(3))
	if s.Interactions != 0 || s.RepetitionRatio != 0 || s.SpanTicks != 0 {
		t.Fatalf("empty stats: %+v", s)
	}
}
