package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is one interaction per line, whitespace separated:
//
//	<src> <dst> <time>
//
// where src and dst are arbitrary tokens (interned to NodeIDs) and time is
// a decimal integer. Lines that are empty or start with '#' are skipped.
// This matches the layout of SNAP/KONECT edge lists closely enough that
// real datasets drop in with a cut(1) invocation.

// ReadLog parses the text format from r. It returns the log (sorted
// ascending by time, ties broken deterministically) and the node table
// mapping external tokens to NodeIDs.
func ReadLog(r io.Reader) (*Log, *NodeTable, error) {
	table := NewNodeTable()
	var interactions []Interaction
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, nil, fmt.Errorf("graph: line %d: want at least 3 fields, got %d", lineNo, len(fields))
		}
		t, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad timestamp %q: %v", lineNo, fields[2], err)
		}
		interactions = append(interactions, Interaction{
			Src: table.Intern(fields[0]),
			Dst: table.Intern(fields[1]),
			At:  Time(t),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: read: %v", err)
	}
	l := &Log{Interactions: interactions, NumNodes: table.Len()}
	l.Sort()
	return l, table, nil
}

// WriteLog writes the log in the text format. If table is nil, NodeIDs are
// written as decimal integers.
func WriteLog(w io.Writer, l *Log, table *NodeTable) error {
	bw := bufio.NewWriter(w)
	for _, e := range l.Interactions {
		var src, dst string
		if table != nil {
			src, dst = table.Name(e.Src), table.Name(e.Dst)
		} else {
			src, dst = strconv.Itoa(int(e.Src)), strconv.Itoa(int(e.Dst))
		}
		if _, err := fmt.Fprintf(bw, "%s %s %d\n", src, dst, e.At); err != nil {
			return fmt.Errorf("graph: write: %v", err)
		}
	}
	return bw.Flush()
}

// ReadCSVLog parses a comma-separated variant ("src,dst,time"), the layout
// of the SNAP Higgs activity files.
func ReadCSVLog(r io.Reader) (*Log, *NodeTable, error) {
	table := NewNodeTable()
	var interactions []Interaction
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 3 {
			return nil, nil, fmt.Errorf("graph: line %d: want at least 3 comma-separated fields, got %d", lineNo, len(fields))
		}
		t, err := strconv.ParseInt(strings.TrimSpace(fields[2]), 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad timestamp %q: %v", lineNo, fields[2], err)
		}
		interactions = append(interactions, Interaction{
			Src: table.Intern(strings.TrimSpace(fields[0])),
			Dst: table.Intern(strings.TrimSpace(fields[1])),
			At:  Time(t),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: read: %v", err)
	}
	l := &Log{Interactions: interactions, NumNodes: table.Len()}
	l.Sort()
	return l, table, nil
}
