package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

func benchLog(n, m int) *Log {
	rng := rand.New(rand.NewSource(10))
	l := New(n)
	for i := 0; i < m; i++ {
		l.Add(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), Time(rng.Intn(10*m)))
	}
	return l
}

func BenchmarkSort(b *testing.B) {
	src := benchLog(5000, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := src.Clone()
		l.Sort()
	}
}

func BenchmarkStaticFrom(b *testing.B) {
	l := benchLog(5000, 100000)
	l.Sort()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = StaticFrom(l)
	}
}

func BenchmarkWeightedFrom(b *testing.B) {
	l := benchLog(5000, 100000)
	l.Sort()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = WeightedFrom(l)
	}
}

func BenchmarkReadWriteRoundTrip(b *testing.B) {
	l := benchLog(1000, 20000)
	l.Sort()
	var buf bytes.Buffer
	if err := WriteLog(&buf, l, nil); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadLog(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
