// Package graph provides the interaction-network substrate used by every
// other package in this repository.
//
// An interaction network (paper §2) is a set of nodes V together with a set
// E of directed, timestamped interactions (u, v, t). The package offers:
//
//   - Interaction and Log: the core value types, with sorting and validation.
//   - NodeTable: interning of external string identifiers to dense NodeIDs.
//   - Static and WeightedStatic: the flattened projections that the paper's
//     static-graph competitors (SKIM, PageRank, HighDegree, ConTinEst)
//     consume.
//   - Text IO in a simple "src dst time" format plus CSV.
//
// Timestamps are opaque int64 ticks. The paper assumes every interaction has
// a distinct timestamp; Log.Detie enforces that property when input data
// violates it.
package graph

import (
	"fmt"
	"sort"
)

// NodeID is a dense internal node identifier. External string names are
// mapped to NodeIDs by a NodeTable. IDs are dense: a network with n nodes
// uses IDs 0..n-1, which lets algorithm state live in flat slices.
type NodeID int32

// Time is an interaction timestamp in opaque ticks. Real datasets use Unix
// seconds; synthetic generators use abstract ticks. All algorithms only
// compare and subtract timestamps, so the unit never matters.
type Time int64

// Interaction is a single directed, timestamped interaction (u, v, t):
// node Src interacted with node Dst at time At (paper §2). An interaction
// could denote, for instance, the sending of one email.
type Interaction struct {
	Src NodeID
	Dst NodeID
	At  Time
}

// Log is an ordered list of interactions. The canonical order — required by
// every algorithm in this repository — is ascending by timestamp. Use Sort
// to establish it and Sorted to verify it.
type Log struct {
	// Interactions in ascending time order once Sort has been called.
	Interactions []Interaction
	// NumNodes is the number of distinct nodes; valid NodeIDs are
	// 0..NumNodes-1. It may exceed the number of nodes that actually appear
	// in Interactions (isolated nodes are permitted).
	NumNodes int
}

// New returns an empty log over n nodes.
func New(n int) *Log {
	return &Log{NumNodes: n}
}

// Add appends an interaction. It does not keep the log sorted; call Sort
// once after the final Add. Add panics if either endpoint is out of range,
// because an out-of-range ID is always a programming error, not input error
// (loaders validate input and return errors instead).
func (l *Log) Add(src, dst NodeID, at Time) {
	if int(src) < 0 || int(src) >= l.NumNodes || int(dst) < 0 || int(dst) >= l.NumNodes {
		panic(fmt.Sprintf("graph: interaction (%d,%d,%d) out of range for %d nodes", src, dst, at, l.NumNodes))
	}
	l.Interactions = append(l.Interactions, Interaction{Src: src, Dst: dst, At: at})
}

// Len returns the number of interactions m = |E|.
func (l *Log) Len() int { return len(l.Interactions) }

// Sort orders the interactions ascending by time. Ties are broken by
// (src, dst) so sorting is deterministic; Detie can then separate ties.
func (l *Log) Sort() {
	sort.Slice(l.Interactions, func(i, j int) bool {
		a, b := l.Interactions[i], l.Interactions[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
}

// Sorted reports whether the log is in ascending time order.
func (l *Log) Sorted() bool {
	for i := 1; i < len(l.Interactions); i++ {
		if l.Interactions[i].At < l.Interactions[i-1].At {
			return false
		}
	}
	return true
}

// HasDistinctTimes reports whether all timestamps are pairwise distinct,
// the assumption the paper makes about its input (§2). The log must be
// sorted.
func (l *Log) HasDistinctTimes() bool {
	for i := 1; i < len(l.Interactions); i++ {
		if l.Interactions[i].At == l.Interactions[i-1].At {
			return false
		}
	}
	return true
}

// Detie rewrites timestamps so they are strictly increasing while
// preserving order, by bumping each tied timestamp one tick past its
// predecessor. The log must be sorted first. Detie reports how many
// timestamps were adjusted.
//
// The adjustment dilates time by at most the number of ties, which is
// negligible against the spans (days to years) of realistic datasets.
func (l *Log) Detie() int {
	bumped := 0
	for i := 1; i < len(l.Interactions); i++ {
		if l.Interactions[i].At <= l.Interactions[i-1].At {
			l.Interactions[i].At = l.Interactions[i-1].At + 1
			bumped++
		}
	}
	return bumped
}

// Span returns the first timestamp, the last timestamp, and the total time
// span (last − first + 1) of the sorted log. A nil or empty log spans zero.
func (l *Log) Span() (first, last Time, span int64) {
	if l == nil || len(l.Interactions) == 0 {
		return 0, 0, 0
	}
	first = l.Interactions[0].At
	last = l.Interactions[len(l.Interactions)-1].At
	return first, last, int64(last-first) + 1
}

// WindowFromPercent converts a window length expressed as a percentage of
// the log's total time span — the convention of the paper's evaluation
// (§6.1) — into absolute ticks. The result is always at least 1 so that a
// single interaction forms an admissible channel.
func (l *Log) WindowFromPercent(pct float64) int64 {
	_, _, span := l.Span()
	w := int64(float64(span) * pct / 100.0)
	if w < 1 {
		w = 1
	}
	return w
}

// Validate checks structural invariants: endpoints in range, sorted order,
// and (if strict) distinct timestamps and no self-loops. It returns the
// first violation found.
func (l *Log) Validate(strict bool) error {
	var prev Time
	for i, e := range l.Interactions {
		if int(e.Src) < 0 || int(e.Src) >= l.NumNodes || int(e.Dst) < 0 || int(e.Dst) >= l.NumNodes {
			return fmt.Errorf("graph: interaction %d (%d,%d,%d) out of range for %d nodes", i, e.Src, e.Dst, e.At, l.NumNodes)
		}
		if i > 0 && e.At < prev {
			return fmt.Errorf("graph: interaction %d at time %d breaks ascending order (previous %d)", i, e.At, prev)
		}
		if strict {
			if i > 0 && e.At == prev {
				return fmt.Errorf("graph: interaction %d duplicates timestamp %d", i, e.At)
			}
			if e.Src == e.Dst {
				return fmt.Errorf("graph: interaction %d is a self-loop on node %d", i, e.Src)
			}
		}
		prev = e.At
	}
	return nil
}

// Clone returns a deep copy of the log.
func (l *Log) Clone() *Log {
	c := &Log{NumNodes: l.NumNodes}
	c.Interactions = append([]Interaction(nil), l.Interactions...)
	return c
}

// Reversed returns the interactions in descending time order as a fresh
// slice, the scan order required by the one-pass IRS algorithms (the paper
// processes Table 1b, the reverse-ordered interaction list).
func (l *Log) Reversed() []Interaction {
	r := make([]Interaction, len(l.Interactions))
	for i, e := range l.Interactions {
		r[len(l.Interactions)-1-i] = e
	}
	return r
}

// TimeSlice returns a new log over the same node set containing exactly
// the interactions with from ≤ t ≤ to — e.g. one month of an email
// archive. The log must be sorted; the result shares no storage with l.
func (l *Log) TimeSlice(from, to Time) *Log {
	lo := sort.Search(len(l.Interactions), func(i int) bool { return l.Interactions[i].At >= from })
	hi := sort.Search(len(l.Interactions), func(i int) bool { return l.Interactions[i].At > to })
	out := &Log{NumNodes: l.NumNodes}
	if lo < hi {
		out.Interactions = append([]Interaction(nil), l.Interactions[lo:hi]...)
	}
	return out
}
