package graph

import "fmt"

// NodeTable interns external string node identifiers (email addresses, user
// names, …) into dense NodeIDs and remembers the reverse mapping. The zero
// value is not usable; construct with NewNodeTable.
type NodeTable struct {
	ids   map[string]NodeID
	names []string
}

// NewNodeTable returns an empty table.
func NewNodeTable() *NodeTable {
	return &NodeTable{ids: make(map[string]NodeID)}
}

// Intern returns the NodeID for name, allocating the next dense ID on first
// sight.
func (t *NodeTable) Intern(name string) NodeID {
	if id, ok := t.ids[name]; ok {
		return id
	}
	id := NodeID(len(t.names))
	t.ids[name] = id
	t.names = append(t.names, name)
	return id
}

// Lookup returns the NodeID for name without allocating; ok is false if the
// name has never been interned.
func (t *NodeTable) Lookup(name string) (id NodeID, ok bool) {
	id, ok = t.ids[name]
	return id, ok
}

// Name returns the external name of id. It panics on an ID the table never
// issued, which is always a programming error.
func (t *NodeTable) Name(id NodeID) string {
	if int(id) < 0 || int(id) >= len(t.names) {
		panic(fmt.Sprintf("graph: NodeTable has no id %d", id))
	}
	return t.names[id]
}

// Len returns the number of interned nodes.
func (t *NodeTable) Len() int { return len(t.names) }

// Names returns the external names indexed by NodeID. The returned slice
// is shared with the table; callers must not modify it.
func (t *NodeTable) Names() []string { return t.names }
