package graph

import (
	"reflect"
	"testing"
)

func TestStaticFromDeduplicates(t *testing.T) {
	l := New(4)
	l.Add(0, 1, 1)
	l.Add(0, 1, 5) // repeated interaction → one static edge
	l.Add(0, 2, 3)
	l.Add(1, 2, 4)
	l.Add(2, 2, 6) // self-loop dropped
	l.Sort()
	s := StaticFrom(l)
	if got := s.NumEdges(); got != 3 {
		t.Fatalf("NumEdges = %d, want 3", got)
	}
	if want := []NodeID{1, 2}; !reflect.DeepEqual(s.Out[0], want) {
		t.Errorf("Out[0] = %v, want %v", s.Out[0], want)
	}
	if s.OutDegree(0) != 2 || s.OutDegree(1) != 1 || s.OutDegree(2) != 0 || s.OutDegree(3) != 0 {
		t.Errorf("degrees = %d,%d,%d,%d", s.OutDegree(0), s.OutDegree(1), s.OutDegree(2), s.OutDegree(3))
	}
}

func TestStaticReversed(t *testing.T) {
	l := New(3)
	l.Add(0, 1, 1)
	l.Add(0, 2, 2)
	l.Add(1, 2, 3)
	l.Sort()
	r := StaticFrom(l).Reversed()
	if want := []NodeID{0}; !reflect.DeepEqual(r.Out[1], want) {
		t.Errorf("rev Out[1] = %v, want %v", r.Out[1], want)
	}
	if want := []NodeID{0, 1}; !reflect.DeepEqual(r.Out[2], want) {
		t.Errorf("rev Out[2] = %v, want %v", r.Out[2], want)
	}
	if len(r.Out[0]) != 0 {
		t.Errorf("rev Out[0] = %v, want empty", r.Out[0])
	}
	if r.NumEdges() != 3 {
		t.Errorf("rev NumEdges = %d, want 3", r.NumEdges())
	}
}

func TestWeightedFromUsesFirstSourceTime(t *testing.T) {
	// Paper §6 ConTinEst transform: u's infection time is its first
	// appearance as a source; edge weight is t − u_i; duplicates keep the
	// minimum.
	l := New(3)
	l.Add(0, 1, 10) // node 0 first source at 10 → weight 0
	l.Add(0, 2, 25) // weight 15
	l.Add(0, 1, 40) // weight 30, loses to the earlier weight 0
	l.Add(1, 2, 50) // node 1 first source at 50 → weight 0
	l.Sort()
	ws := WeightedFrom(l)
	if ws.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", ws.NumEdges())
	}
	get := func(u, v NodeID) float64 {
		for _, e := range ws.Out[u] {
			if e.Dst == v {
				return e.Weight
			}
		}
		t.Fatalf("edge (%d,%d) missing", u, v)
		return 0
	}
	if w := get(0, 1); w != 0 {
		t.Errorf("weight(0,1) = %g, want 0", w)
	}
	if w := get(0, 2); w != 15 {
		t.Errorf("weight(0,2) = %g, want 15", w)
	}
	if w := get(1, 2); w != 0 {
		t.Errorf("weight(1,2) = %g, want 0", w)
	}
}

func TestWeightedFromDropsSelfLoops(t *testing.T) {
	l := New(2)
	l.Add(0, 0, 1)
	l.Add(0, 1, 2)
	l.Sort()
	ws := WeightedFrom(l)
	if ws.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", ws.NumEdges())
	}
	// The self-loop still fixed node 0's first-source time at t=1, so the
	// (0,1) edge weight is 2−1=1.
	if w := ws.Out[0][0].Weight; w != 1 {
		t.Errorf("weight(0,1) = %g, want 1", w)
	}
}
