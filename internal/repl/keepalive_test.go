package repl

import (
	"context"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"ipin/internal/stream"
)

// countingListener counts accepted connections: each replica attach is
// one accept, so the counter distinguishes a session that survived from
// one that was dropped and quietly re-established.
type countingListener struct {
	net.Listener
	accepts atomic.Int64
}

func (l *countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.accepts.Add(1)
	}
	return c, err
}

// TestKeepaliveOutlivesAckTimeout pins the liveness/progress split: a
// replica that processes no frames for longer than the primary's
// AckTimeout (here: an idle stream with heartbeats far apart, standing
// in for a replica parked inside a multi-second checkpoint fold) must
// keep its session alive through timer-driven keepalive acks. Before
// keepalives, the primary read the silence as a dead replica, dropped
// the session, and the replica thrashed through re-attach cycles — each
// one re-shipping backlog — exactly when it could least afford to.
func TestKeepaliveOutlivesAckTimeout(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	edges := testLog(rng, 200, 2_000)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	ing, err := stream.New(stream.Config{
		Dir: t.TempDir(), Omega: 50, Precision: 4, NumNodes: 200,
		CheckpointEvery: -1, IdleFlush: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close(ctx)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := &countingListener{Listener: ln}
	p, err := NewPrimary(PrimaryConfig{
		Ingester: ing,
		Listener: cl,
		// Heartbeats far apart so nothing but the keepalive ticker can
		// generate acks during the quiet stretch; AckTimeout at twice
		// the keepalive cadence so only timer acks keep the session up.
		HeartbeatEvery: time.Minute,
		AckTimeout:     2 * ackKeepaliveEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rep, err := NewReplica(ReplicaConfig{
		Dir: t.TempDir(), PrimaryAddr: p.Addr(),
		CheckpointEvery: -1,
		// The replica tolerates the frame gap; it is the primary's
		// patience under ack silence that is being measured.
		HeartbeatTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close(ctx)

	pushAll(t, ing, edges)
	if err := ing.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	fed := ing.Stats().Emitted
	if fed == 0 {
		t.Fatal("nothing emitted")
	}
	waitPos(t, rep, fed, 15*time.Second)

	// Quiet stretch: several AckTimeout windows with no frames flowing.
	quiet := 5 * ackKeepaliveEvery
	deadline := time.Now().Add(quiet)
	for time.Now().Before(deadline) {
		if n := p.Sessions(); n != 1 {
			t.Fatalf("session dropped during ack-silent stretch (sessions=%d, attaches=%d)", n, cl.accepts.Load())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if n := cl.accepts.Load(); n != 1 {
		t.Fatalf("replica re-attached %d times during a quiet stretch; keepalive acks should have held one session", n)
	}
	if pos := rep.Position(); pos != fed {
		t.Fatalf("replica at %d, want %d", pos, fed)
	}
}
